package autocomp

// End-to-end integration tests across every substrate: storage quotas,
// the LST commit protocol, the catalog, the engine's untuned writers, and
// the AutoComp pipeline — reproducing the §7 production narrative where
// quota breaches caused user-visible failures until compaction relieved
// the namespace pressure.

import (
	"errors"
	"testing"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func TestQuotaBreachRelievedByCompaction(t *testing.T) {
	lake := testkit.NewLake(3)
	clock, fs, cp := lake.Clock, lake.FS, lake.CP
	compCl, eng := lake.CompactionCluster, lake.Engine

	// A tenant with a tight namespace quota.
	if _, err := cp.CreateDatabase("tenant", "team", 520); err != nil {
		t.Fatal(err)
	}
	tbl, err := cp.CreateTable("tenant", lst.TableConfig{Name: "events"})
	if err != nil {
		t.Fatal(err)
	}

	// Untuned writers burn the quota with small files until inserts
	// start failing — the paper's "frequent breaches of user HDFS
	// namespace quotas".
	var failed bool
	writes := 0
	for i := 0; i < 40 && !failed; i++ {
		res := eng.Exec(engine.Query{
			App: "ingest", Table: tbl, Kind: engine.Insert,
			Bytes: 512 << 20, Parallelism: 50,
		})
		writes++
		if res.Failed() {
			if !errors.Is(res.Err, storage.ErrQuotaExceeded) {
				t.Fatalf("unexpected failure: %v", res.Err)
			}
			failed = true
		}
	}
	if !failed {
		t.Fatal("quota never breached")
	}
	// The atomic pre-check rejects the batch that would overflow, so
	// the namespace sits just under its ceiling.
	q, _ := fs.QuotaFor("tenant")
	if q.Utilization() < 0.85 {
		t.Fatalf("quota utilization = %.2f at breach", q.Utilization())
	}

	// AutoComp with quota-adaptive weights steps in.
	clock.Advance(48 * time.Hour)
	svc, err := New(Options{
		Catalog:       cp,
		Cluster:       compCl,
		TopK:          5,
		QuotaAdaptive: true,
		MinTableAge:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesReduced == 0 {
		t.Fatalf("compaction reduced nothing: %+v", rep)
	}

	// The namespace has headroom again and writes succeed.
	q, _ = fs.QuotaFor("tenant")
	if q.Utilization() > 0.6 {
		t.Fatalf("quota still pressured after compaction: %.2f", q.Utilization())
	}
	res := eng.Exec(engine.Query{
		App: "ingest", Table: tbl, Kind: engine.Insert,
		Bytes: 512 << 20, Parallelism: 50,
	})
	if res.Failed() {
		t.Fatalf("write still failing after compaction: %v", res.Err)
	}
}

func TestPeriodicServiceKeepsLakeHealthy(t *testing.T) {
	lake := testkit.NewLake(5)
	clock, cp := lake.Clock, lake.CP
	compCl, eng := lake.CompactionCluster, lake.Engine
	events := sim.NewEventQueue(clock)

	cp.CreateDatabase("db", "team", 0)
	tbl, err := cp.CreateTable("db", lst.TableConfig{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}

	svc, err := New(Options{Catalog: cp, Cluster: compCl, TopK: 5, MinTableAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	// Hourly ingestion of small files for a simulated day, with the
	// periodic trigger compacting every 2 hours.
	for h := 1; h <= 24; h++ {
		h := h
		events.ScheduleAt(time.Duration(h)*time.Hour, func() {
			eng.Exec(engine.Query{
				App: "ingest", Table: tbl, Kind: engine.Insert,
				Bytes: 64 << 20, Parallelism: 64,
			})
		})
	}
	reports := 0
	trigger := &core.PeriodicTrigger{
		Service: svc,
		Every:   2 * time.Hour,
		Until:   25 * time.Hour,
		OnReport: func(rep *Report, err error) {
			if err != nil {
				t.Fatal(err)
			}
			reports++
		},
	}
	trigger.Install(events)
	events.RunUntil(26 * time.Hour)

	if reports != 12 {
		t.Fatalf("trigger fired %d times, want 12", reports)
	}
	// Without compaction the table would hold ~24×64 files; the
	// periodic service keeps it near the packed minimum.
	if got := tbl.FileCount(); got > 200 {
		t.Fatalf("file count = %d, lake not kept healthy", got)
	}
	if compCl.TotalGBHr() <= 0 {
		t.Fatal("no compaction work accounted")
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (int, float64) {
		lake := testkit.NewLake(11)
		clock, cp := lake.Clock, lake.CP
		compCl, eng := lake.CompactionCluster, lake.Engine
		cp.CreateDatabase("db", "t", 0)
		for i := 0; i < 5; i++ {
			tbl, _ := cp.CreateTable("db", lst.TableConfig{Name: "t" + string(rune('a'+i))})
			eng.Exec(engine.Query{App: "load", Table: tbl, Kind: engine.Insert,
				Bytes: 1 << 30, Parallelism: 100})
		}
		clock.Advance(48 * time.Hour)
		svc, err := New(Options{Catalog: cp, Cluster: compCl, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := svc.RunOnce()
		if err != nil {
			t.Fatal(err)
		}
		return rep.FilesReduced, rep.ActualGBHr
	}
	f1, g1 := run()
	f2, g2 := run()
	if f1 != f2 || g1 != g2 {
		t.Fatalf("non-deterministic: (%d, %v) vs (%d, %v)", f1, g1, f2, g2)
	}
	if f1 == 0 {
		t.Fatal("nothing compacted")
	}
}
