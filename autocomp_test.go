package autocomp

import (
	"testing"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/cluster"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func facadeLake(t *testing.T) (*catalog.ControlPlane, *cluster.Cluster, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	cp := catalog.New(fs, clock)
	cc := cluster.New(cluster.CompactionClusterConfig(), clock)
	return cp, cc, clock
}

func fragment(t *testing.T, cp *catalog.ControlPlane, db, name string, files int) *lst.Table {
	t.Helper()
	if _, err := cp.CreateDatabase(db, "tenant", 0); err != nil &&
		err.Error() != "catalog: database already exists: "+db {
		t.Fatal(err)
	}
	tbl, err := cp.CreateTable(db, lst.TableConfig{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]lst.FileSpec, files)
	for i := range specs {
		specs[i] = lst.FileSpec{SizeBytes: 8 << 20, RowCount: 100}
	}
	if _, err := tbl.AppendFiles(specs); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewDefaultsAndRunOnce(t *testing.T) {
	cp, cc, clock := facadeLake(t)
	tbl := fragment(t, cp, "sales", "orders", 30)
	clock.Advance(48 * time.Hour)

	ledger := &EstimatorLedger{}
	svc, err := New(Options{
		Catalog:  cp,
		Cluster:  cc,
		TopK:     5,
		OnReport: []func(*Report){ledger.Observe},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesReduced != 29 { // 30 small files → 1
		t.Fatalf("files reduced = %d", rep.FilesReduced)
	}
	if tbl.FileCount() != 1 {
		t.Fatalf("file count = %d", tbl.FileCount())
	}
	if len(ledger.Records()) != 1 {
		t.Fatal("feedback ledger empty")
	}
}

func TestNewAgeFilterSkipsFreshTables(t *testing.T) {
	cp, cc, _ := facadeLake(t)
	fragment(t, cp, "sales", "fresh", 30) // created "now"
	svc, err := New(Options{Catalog: cp, Cluster: cc, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision.AfterPreFilters != 0 {
		t.Fatalf("fresh table not filtered: %d", rep.Decision.AfterPreFilters)
	}
}

func TestNewBudgetSelection(t *testing.T) {
	cp, cc, clock := facadeLake(t)
	for i := 0; i < 6; i++ {
		fragment(t, cp, "sales", "t"+string(rune('a'+i)), 20)
	}
	clock.Advance(48 * time.Hour)
	// Each candidate costs ~192GB × 160MB/1.8TBph ≈ 0.017 GBHr; a budget
	// of 0.04 admits 2.
	svc, err := New(Options{Catalog: cp, Cluster: cc, BudgetGBHr: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Decision.Selected); got == 0 || got >= 6 {
		t.Fatalf("budget selected %d of 6", got)
	}
}

func TestNewQuotaAdaptive(t *testing.T) {
	cp, cc, clock := facadeLake(t)
	fragment(t, cp, "sales", "orders", 10)
	clock.Advance(48 * time.Hour)
	svc, err := New(Options{Catalog: cp, Cluster: cc, QuotaAdaptive: true, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunOnce(); err != nil {
		t.Fatal(err)
	}
}

func TestNewHybridScope(t *testing.T) {
	cp, cc, clock := facadeLake(t)
	if _, err := cp.CreateDatabase("logs", "tenant", 0); err != nil {
		t.Fatal(err)
	}
	tbl, err := cp.CreateTable("logs", lst.TableConfig{
		Name: "events",
		Spec: lst.PartitionSpec{Column: "day", Transform: lst.TransformDay},
	})
	if err != nil {
		t.Fatal(err)
	}
	var specs []lst.FileSpec
	for _, p := range []string{"d1", "d2", "d3"} {
		for i := 0; i < 10; i++ {
			specs = append(specs, lst.FileSpec{Partition: p, SizeBytes: 4 << 20, RowCount: 10})
		}
	}
	if _, err := tbl.AppendFiles(specs); err != nil {
		t.Fatal(err)
	}
	clock.Advance(48 * time.Hour)

	svc, err := New(Options{Catalog: cp, Cluster: cc, HybridScope: true, TopK: 100})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	// Three partition-scope candidates, each 10 → 1.
	if len(rep.Results) != 3 || rep.FilesReduced != 27 {
		t.Fatalf("results = %d, reduced = %d", len(rep.Results), rep.FilesReduced)
	}
}
