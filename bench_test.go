package autocomp

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §4 maps them), plus ablations over AutoComp's
// design choices and micro-benchmarks of the core primitives.
//
// Each figure benchmark renders its reproduced rows to stdout exactly
// once, so `go test -bench=. -benchmem` regenerates the paper's results
// inline (EXPERIMENTS.md records paper-vs-measured). Figure benchmarks
// run the quick configurations; use cmd/benchrunner for paper scale.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"autocomp/internal/bench"
	"autocomp/internal/catalog"
	"autocomp/internal/cluster"
	"autocomp/internal/compaction"
	"autocomp/internal/core"
	"autocomp/internal/engine"
	"autocomp/internal/experiments"
	"autocomp/internal/fleet"
	"autocomp/internal/lst"
	"autocomp/internal/metrics"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

const benchSeed = 1

var renderOnce sync.Map // experiment id → *sync.Once

// runExperiment executes one registered experiment per iteration and
// prints its rendered result once.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		b.Skip("experiment drivers take seconds; skipped in -short")
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchSeed, true)
		if err != nil {
			b.Fatal(err)
		}
		onceFor(id).Do(func() {
			fmt.Printf("\n==== %s ====\n%s\n", res.Title(), res.Render())
		})
	}
}

func onceFor(id string) *sync.Once {
	v, _ := renderOnce.LoadOrStore(id, &sync.Once{})
	return v.(*sync.Once)
}

// --- one benchmark per paper table/figure ---

func BenchmarkFig1FileSizeDistribution(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFig2FleetDistribution(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3QueryPerfRestore(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkFig6FileCount(b *testing.B)            { runExperiment(b, "fig6") }
func BenchmarkFig7CompactionCost(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig8QueryLatency(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkTable1Conflicts(b *testing.B)          { runExperiment(b, "table1") }
func BenchmarkFig9AutoTuning(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkFig10aManualVsAuto(b *testing.B)       { runExperiment(b, "fig10a") }
func BenchmarkFig10bDynamicK(b *testing.B)           { runExperiment(b, "fig10b") }
func BenchmarkFig10cDeployment(b *testing.B)         { runExperiment(b, "fig10c") }
func BenchmarkFig11aWorkloadMetrics(b *testing.B)    { runExperiment(b, "fig11a") }
func BenchmarkFig11bHDFSOpens(b *testing.B)          { runExperiment(b, "fig11b") }
func BenchmarkEstimatorAccuracy(b *testing.B)        { runExperiment(b, "est") }

// --- ablations over the design choices DESIGN.md §5 calls out ---

// BenchmarkAblationMOOPWeights sweeps the benefit/cost weights of the
// scalarized MOOP (§4.3; the paper deploys 0.7/0.3) and reports files
// reduced per TBHr of compaction spend.
func BenchmarkAblationMOOPWeights(b *testing.B) {
	for _, w1 := range []float64{0.3, 0.5, 0.7, 0.9} {
		w1 := w1
		b.Run(fmt.Sprintf("w1=%.1f", w1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunCAB(bench.CABRunConfig{
					Workload: workload.CABConfig{
						RawDataBytes: 20 * storage.GB, Databases: 8,
						Duration: 2 * time.Hour, Months: 12, Seed: benchSeed,
					},
					Strategy: bench.Strategy{
						Kind: bench.MOOPTable, TopK: 10,
						BenefitWeight: w1, CostWeight: 1 - w1,
					},
					Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				tbhr := metrics.Mean(res.CompactionGBHrs) * float64(len(res.CompactionGBHrs)) / 1024
				if tbhr > 0 {
					b.ReportMetric(float64(res.FilesReducedTotal)/tbhr, "files/TBHr")
				}
				b.ReportMetric(float64(res.FilesReducedTotal), "files-reduced")
			}
		})
	}
}

// BenchmarkAblationScope compares candidate scopes (§4.1/§6) on the same
// workload.
func BenchmarkAblationScope(b *testing.B) {
	for _, s := range []bench.Strategy{
		{Kind: bench.MOOPTable, TopK: 10},
		{Kind: bench.MOOPHybrid, TopK: 50},
		{Kind: bench.MOOPHybrid, TopK: 500},
	} {
		s := s
		b.Run(s.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunCAB(bench.CABRunConfig{
					Workload: workload.CABConfig{
						RawDataBytes: 20 * storage.GB, Databases: 8,
						Duration: 2 * time.Hour, Months: 12, Seed: benchSeed,
					},
					Strategy: s,
					Seed:     benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FilesReducedTotal), "files-reduced")
				b.ReportMetric(res.FileCounts.Last(), "final-files")
			}
		})
	}
}

// BenchmarkAblationSelection compares fixed top-k against budgeted
// dynamic-k selection (§4.3, §7) on the fleet.
func BenchmarkAblationSelection(b *testing.B) {
	run := func(b *testing.B, sel core.Selector) {
		for i := 0; i < b.N; i++ {
			clock := sim.NewClock()
			cfg := fleet.DefaultConfig()
			cfg.InitialTables = 500
			f := fleet.New(cfg, clock)
			model := fleet.DefaultModel(512 * storage.MB)
			svc, err := f.Service(sel, model)
			if err != nil {
				b.Fatal(err)
			}
			var files int64
			for d := 0; d < 7; d++ {
				f.AdvanceDay()
				rep, err := svc.RunOnce()
				if err != nil {
					b.Fatal(err)
				}
				files += int64(rep.FilesReduced)
			}
			b.ReportMetric(float64(files), "files-reduced")
		}
	}
	b.Run("topk=10", func(b *testing.B) { run(b, core.TopK{K: 10}) })
	b.Run("topk=100", func(b *testing.B) { run(b, core.TopK{K: 100}) })
	b.Run("budget=226TBHr", func(b *testing.B) { run(b, core.BudgetSelector{BudgetGBHr: 226 * 1024}) })
}

// BenchmarkAblationConflictValidation measures the strict (Iceberg
// v1.2.0, §4.4) versus relaxed rewrite validation under concurrent
// partition compactions of one table.
func BenchmarkAblationConflictValidation(b *testing.B) {
	run := func(b *testing.B, strict bool) {
		conflicts := 0
		for i := 0; i < b.N; i++ {
			clock := sim.NewClock()
			fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(benchSeed))
			tbl, err := lst.NewTable(lst.TableConfig{
				Database: "db", Name: "t",
				Spec:                   lst.PartitionSpec{Column: "d", Transform: lst.TransformMonth},
				StrictRewriteConflicts: strict,
			}, fs, clock)
			if err != nil {
				b.Fatal(err)
			}
			var specs []lst.FileSpec
			for p := 0; p < 8; p++ {
				for j := 0; j < 6; j++ {
					specs = append(specs, lst.FileSpec{
						Partition: fmt.Sprintf("2024-%02d", p+1),
						SizeBytes: 16 << 20, RowCount: 100,
					})
				}
			}
			if _, err := tbl.AppendFiles(specs); err != nil {
				b.Fatal(err)
			}
			// Two overlapping rewrite transactions on disjoint
			// partitions (the unscheduled-parallel-compaction case).
			mk := func(part string) *lst.Transaction {
				tx := tbl.NewTransaction(lst.OpRewrite)
				for _, f := range tbl.FilesInPartition(part) {
					tx.Remove(f.Path, f.Partition)
				}
				tx.Add(lst.FileSpec{Partition: part, SizeBytes: 96 << 20, RowCount: 600})
				return tx
			}
			txA, txB := mk("2024-01"), mk("2024-02")
			if _, err := txA.Commit(); err != nil {
				b.Fatal(err)
			}
			if _, err := txB.Commit(); err != nil {
				conflicts++
			}
		}
		b.ReportMetric(float64(conflicts)/float64(b.N), "conflict-rate")
	}
	b.Run("strict-v1.2", func(b *testing.B) { run(b, true) })
	b.Run("relaxed", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationTriggerTraits compares the small-file-count and
// entropy optimize-after-write triggers (§6.3's finding: comparable).
func BenchmarkAblationTriggerTraits(b *testing.B) {
	for _, trait := range []bench.HookTrait{bench.HookSmallFileCount, bench.HookEntropy} {
		trait := trait
		threshold := 300.0
		if trait == bench.HookEntropy {
			threshold = 15
		}
		b.Run(trait.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunPhased(bench.PhasedRunConfig{
					Workload: workload.TPCDSWP1(10 * storage.GB),
					Seed:     benchSeed,
					Hook:     bench.HookSpec{Enabled: true, Trait: trait, Threshold: threshold},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Total.Seconds(), "e2e-seconds")
				b.ReportMetric(float64(res.HookTriggers), "triggers")
			}
		})
	}
}

// BenchmarkAblationClustering compares plain bin-pack compaction against
// clustering (Z-order style) rewrites (§8 "Automatic Data Layout
// Optimization"): clustering costs more GBHr but selective scans get
// data skipping.
func BenchmarkAblationClustering(b *testing.B) {
	run := func(b *testing.B, clusterData bool) {
		for i := 0; i < b.N; i++ {
			clock := sim.NewClock()
			rng := sim.NewRNG(benchSeed)
			fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng.Fork())
			qc := cluster.New(cluster.QueryClusterConfig(), clock)
			cc := cluster.New(cluster.CompactionClusterConfig(), clock)
			eng := engineNew(qc, fs, clock, rng)
			tbl, err := lst.NewTable(lst.TableConfig{Database: "db", Name: "t"}, fs, clock)
			if err != nil {
				b.Fatal(err)
			}
			specs := make([]lst.FileSpec, 200)
			for j := range specs {
				specs[j] = lst.FileSpec{SizeBytes: 24 << 20, RowCount: 100}
			}
			if _, err := tbl.AppendFiles(specs); err != nil {
				b.Fatal(err)
			}
			ex := &compaction.Executor{
				Cluster:        cc,
				TargetFileSize: 512 << 20,
				ClusterData:    clusterData,
			}
			res := ex.CompactTable(tbl)
			if !res.Succeeded() {
				b.Fatalf("compaction failed: %+v", res)
			}
			q := eng.Exec(engineQuery(tbl))
			b.ReportMetric(res.GBHr, "compaction-GBHr")
			b.ReportMetric(q.ExecTime.Seconds(), "selective-scan-s")
		}
	}
	b.Run("binpack-only", func(b *testing.B) { run(b, false) })
	b.Run("binpack+clustering", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationOptimizeWrite contrasts the write-side mitigation
// (coalescing outputs at write time, §8) with untuned writers: it stops
// new small files but leaves the existing backlog to compaction.
func BenchmarkAblationOptimizeWrite(b *testing.B) {
	run := func(b *testing.B, target int64) {
		for i := 0; i < b.N; i++ {
			clock := sim.NewClock()
			rng := sim.NewRNG(benchSeed)
			fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng.Fork())
			qc := cluster.New(cluster.QueryClusterConfig(), clock)
			cfg := engine.DefaultConfig()
			cfg.OptimizeWriteTarget = target
			eng := engine.New(cfg, qc, fs, clock, rng.Fork())
			tbl, err := lst.NewTable(lst.TableConfig{Database: "db", Name: "t"}, fs, clock)
			if err != nil {
				b.Fatal(err)
			}
			for w := 0; w < 24; w++ {
				eng.Exec(engine.Query{App: "ingest", Table: tbl, Kind: engine.Insert, Bytes: 256 << 20})
			}
			b.ReportMetric(float64(tbl.FileCount()), "files")
			b.ReportMetric(float64(tbl.SmallFileCount(512<<20)), "small-files")
		}
	}
	b.Run("untuned", func(b *testing.B) { run(b, 0) })
	b.Run("optimize-write", func(b *testing.B) { run(b, 512<<20) })
}

// engineNew and engineQuery keep the ablation body readable.
func engineNew(qc *cluster.Cluster, fs *storage.NameNode, clock *sim.Clock, rng *sim.RNG) *engine.Engine {
	return engine.New(engine.DefaultConfig(), qc, fs, clock, rng.Fork())
}

func engineQuery(tbl *lst.Table) engine.Query {
	return engine.Query{
		App: "selective", Table: tbl, Kind: engine.Read,
		ScanFraction: 0.3, SelectiveFilter: true,
	}
}

// --- micro-benchmarks of the core primitives ---

func BenchmarkBinPack(b *testing.B) {
	rng := sim.NewRNG(benchSeed)
	files := make([]lst.DataFile, 2000)
	for i := range files {
		files[i] = lst.DataFile{
			Path:      fmt.Sprintf("/db/t/data/p/%06d.parquet", i),
			SizeBytes: int64(rng.LogNormalAround(24*float64(storage.MB), 0.8)),
			RowCount:  100,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := compaction.PlanBinPack(files, 512*storage.MB)
		if plan.InputFiles == 0 {
			b.Fatal("empty plan")
		}
	}
}

func BenchmarkMOOPRanking(b *testing.B) {
	rng := sim.NewRNG(benchSeed)
	cost := core.TraitFunc{TraitName: "compute_cost_gbhr", Dir: core.Cost}
	ranker := core.MOOPRanker{Objectives: []core.Objective{
		{Trait: core.FileCountReduction{}, Weight: 0.7},
		{Trait: cost, Weight: 0.3},
	}}
	mk := func() []*core.Candidate {
		cands := make([]*core.Candidate, 2000)
		for i := range cands {
			cands[i] = &core.Candidate{
				Table: benchTable{name: fmt.Sprintf("db.t%04d", i)},
				Traits: map[string]float64{
					"file_count_reduction": float64(rng.Intn(10000)),
					"compute_cost_gbhr":    rng.Float64() * 100,
				},
			}
		}
		return cands
	}
	cands := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranker.Rank(cands)
	}
}

// benchTable is a minimal core.Table for ranking benchmarks.
type benchTable struct{ name string }

func (t benchTable) Database() string                       { return "db" }
func (t benchTable) Name() string                           { return t.name }
func (t benchTable) FullName() string                       { return t.name }
func (t benchTable) Spec() lst.PartitionSpec                { return lst.PartitionSpec{} }
func (t benchTable) Mode() lst.WriteMode                    { return lst.CopyOnWrite }
func (t benchTable) Prop(string) string                     { return "" }
func (t benchTable) Created() time.Duration                 { return 0 }
func (t benchTable) LastWrite() time.Duration               { return 0 }
func (t benchTable) WriteCount() int64                      { return 0 }
func (t benchTable) FileCount() int                         { return 0 }
func (t benchTable) TotalBytes() int64                      { return 0 }
func (t benchTable) Partitions() []string                   { return nil }
func (t benchTable) LiveFiles() []lst.DataFile              { return nil }
func (t benchTable) FilesInPartition(string) []lst.DataFile { return nil }

func BenchmarkCommitProtocol(b *testing.B) {
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(benchSeed))
	tbl, err := lst.NewTable(lst.TableConfig{Database: "db", Name: "t"}, fs, clock)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.AppendFiles([]lst.FileSpec{{SizeBytes: storage.MB, RowCount: 10}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetDay(b *testing.B) {
	clock := sim.NewClock()
	cfg := fleet.DefaultConfig()
	cfg.InitialTables = 2000
	f := fleet.New(cfg, clock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AdvanceDay()
	}
}

func BenchmarkServiceDecide(b *testing.B) {
	clock := sim.NewClock()
	cfg := fleet.DefaultConfig()
	cfg.InitialTables = 2000
	f := fleet.New(cfg, clock)
	svc, err := f.Service(core.TopK{K: 10}, fleet.DefaultModel(512*storage.MB))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Decide(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeRunOnce measures one full OODA cycle over an LST-backed
// catalog through the public API.
func BenchmarkFacadeRunOnce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := sim.NewClock()
		fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(benchSeed))
		cp := catalog.New(fs, clock)
		cc := cluster.New(cluster.CompactionClusterConfig(), clock)
		cp.CreateDatabase("db", "t", 0)
		for t := 0; t < 10; t++ {
			tbl, err := cp.CreateTable("db", lst.TableConfig{Name: fmt.Sprintf("t%02d", t)})
			if err != nil {
				b.Fatal(err)
			}
			specs := make([]lst.FileSpec, 50)
			for j := range specs {
				specs[j] = lst.FileSpec{SizeBytes: 8 << 20, RowCount: 10}
			}
			if _, err := tbl.AppendFiles(specs); err != nil {
				b.Fatal(err)
			}
		}
		clock.Advance(48 * time.Hour)
		svc, err := New(Options{Catalog: cp, Cluster: cc, TopK: 10})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := svc.RunOnce(); err != nil {
			b.Fatal(err)
		}
	}
}
