module autocomp

go 1.24
