package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/lst"
	"autocomp/internal/lstlog"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// TestPersistInspectCommand persists a table through the log backend and
// checks that `lakectl inspect <table-dir>` replays it and prints the
// recovered state.
func TestPersistInspectCommand(t *testing.T) {
	root := t.TempDir()
	store, err := lstlog.Open(lstlog.Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	cp := catalog.New(fs, clock)
	if err := cp.AttachLog(store); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CreateDatabase("sales", "tenant-a", 0); err != nil {
		t.Fatal(err)
	}
	tbl, err := cp.CreateTable("sales", lst.TableConfig{Name: "orders"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		clock.Advance(time.Minute)
		if _, err := tbl.AppendFiles([]lst.FileSpec{{SizeBytes: 4 * storage.MB, RowCount: 500}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() {
		inspectCmd([]string{filepath.Join(root, "sales", "orders")})
	})
	for _, want := range []string{"table      sales.orders", "version    ", "files      6 live"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
