package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"autocomp/internal/telemetry"
)

// daemonStatus mirrors autocompd's /statusz payload.
type daemonStatus struct {
	Policy         string                 `json:"policy"`
	PolicyPath     string                 `json:"policy_path"`
	Day            int                    `json:"day"`
	DaysPlanned    int                    `json:"days_planned"`
	Done           bool                   `json:"done"`
	Cycles         int64                  `json:"cycles"`
	MetricFamilies int                    `json:"metric_families"`
	LastCycle      *telemetry.CycleEvent  `json:"last_cycle"`
	RecentCycles   []telemetry.CycleEvent `json:"recent_cycles"`
}

// statusCmd scrapes a running autocompd's /statusz endpoint and renders
// the operator view: daemon identity, progress, and the recent decision
// trace in the same per-cycle format the daemon logs.
func statusCmd(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	raw := fs.Bool("json", false, "print the raw /statusz JSON instead of the summary")
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP timeout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lakectl status [-json] [-timeout d] <host:port>")
		fmt.Fprintln(os.Stderr, "scrapes /statusz from an autocompd started with -listen")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	addr := fs.Arg(0)
	if addr == "" {
		fs.Usage()
		os.Exit(2)
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(addr + "/statusz")
	if err != nil {
		log.Fatalf("lakectl status: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("lakectl status: reading response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("lakectl status: %s returned %s", addr, resp.Status)
	}
	if *raw {
		os.Stdout.Write(body)
		return
	}
	var st daemonStatus
	if err := json.Unmarshal(body, &st); err != nil {
		log.Fatalf("lakectl status: decoding /statusz: %v", err)
	}

	state := "running"
	if st.Done {
		state = "done"
	}
	fmt.Printf("autocompd @ %s\n", strings.TrimPrefix(addr, "http://"))
	fmt.Printf("  policy:  %s", st.Policy)
	if st.PolicyPath != "" {
		fmt.Printf(" (%s)", st.PolicyPath)
	}
	fmt.Println()
	fmt.Printf("  day:     %d/%d (%s)\n", st.Day, st.DaysPlanned, state)
	fmt.Printf("  cycles:  %d traced, %d metric families on /metrics\n", st.Cycles, st.MetricFamilies)
	if ev := st.LastCycle; ev != nil {
		fmt.Printf("  fleet:   %d tables, %d files, %d metadata objects (%.0f%% tiny)\n",
			ev.Fleet.Tables, ev.Fleet.Files, ev.Fleet.MetaObjects, 100*ev.Fleet.TinyFrac)
	}
	if len(st.RecentCycles) > 0 {
		fmt.Println("\nrecent cycles:")
		for _, ev := range st.RecentCycles {
			fmt.Println(ev.String())
		}
	}
}
