// Command lakectl inspects a simulated lake the way an operator would:
// it builds a CAB-style lake, then prints table listings, file-size
// histograms, namespace quota utilization, and the compaction candidates
// AutoComp would pick right now (a dry run of the decide phase).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"autocomp/internal/bench"
	"autocomp/internal/core"
	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/metrics"
	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	databases := flag.Int("databases", 4, "databases to create")
	top := flag.Int("top", 15, "rows to show per listing")
	flag.Parse()

	env := bench.NewEnv(bench.EnvConfig{Seed: *seed})
	gen := workload.NewCAB(workload.CABConfig{
		RawDataBytes: 20 * storage.GB,
		Databases:    *databases,
		Duration:     time.Hour,
		Months:       12,
		Seed:         *seed,
	})
	plan := gen.Plan()
	months := workload.MonthPartitions(12)
	for _, dbp := range plan.Databases {
		if _, err := env.CP.CreateDatabase(dbp.Name, "tenant", 200_000); err != nil {
			log.Fatal(err)
		}
		for _, td := range dbp.Tables {
			tbl, err := env.CP.CreateTable(dbp.Name, lst.TableConfig{
				Name: td.Name, Schema: td.Schema, Spec: td.Spec,
			})
			if err != nil {
				log.Fatal(err)
			}
			q := engine.Query{
				App: "load", Table: tbl, Kind: engine.Insert,
				Bytes:       workload.SizeOfShare(dbp.RawBytes, td.ShareOfData),
				Parallelism: dbp.LoadParallelism,
			}
			if td.Spec.IsPartitioned() {
				q.TargetPartitions = months
			}
			if res := env.Engine.Exec(q); res.Failed() {
				log.Fatal(res.Err)
			}
		}
	}
	env.Clock.Advance(48 * time.Hour)

	// Table listing.
	fmt.Println("== tables ==")
	var rows [][]string
	for i, tbl := range env.CP.AllTables() {
		if i >= *top {
			break
		}
		rows = append(rows, []string{
			tbl.FullName(),
			fmt.Sprintf("%d", tbl.FileCount()),
			metrics.FormatBytes(tbl.TotalBytes()),
			fmt.Sprintf("%d", tbl.SmallFileCount(512*storage.MB)),
			fmt.Sprintf("%d", len(tbl.Partitions())),
			tbl.Mode().String(),
		})
	}
	fmt.Println(metrics.RenderTable(
		[]string{"Table", "Files", "Bytes", "Small", "Parts", "Mode"}, rows))

	// Lake-wide histogram.
	fmt.Println("== file size distribution ==")
	h := metrics.NewHistogram([]int64{32 * storage.MB, 128 * storage.MB, 512 * storage.MB})
	h.AddCounts(env.FS.SizeHistogram("", []int64{32 * storage.MB, 128 * storage.MB, 512 * storage.MB}))
	labels := h.BucketLabels(metrics.FormatBytes)
	var hrows [][]string
	for i, l := range labels {
		hrows = append(hrows, []string{l, fmt.Sprintf("%d", h.Counts[i])})
	}
	fmt.Println(metrics.RenderTable([]string{"Bucket", "Objects"}, hrows))

	// Quotas.
	fmt.Println("== namespace quotas ==")
	var qrows [][]string
	for _, db := range env.CP.Databases() {
		qrows = append(qrows, []string{db, fmt.Sprintf("%.1f%%", 100*env.CP.QuotaUtilization(db))})
	}
	fmt.Println(metrics.RenderTable([]string{"Database", "Quota used"}, qrows))

	// Dry-run of the decide phase.
	fmt.Println("== autocomp dry run (top candidates) ==")
	cost := core.ComputeCost{
		ExecutorMemoryGB:    env.ExecutorMemoryGB(),
		RewriteBytesPerHour: env.RewriteBytesPerHour(),
	}
	svc, err := core.NewService(core.Config{
		Connector: core.CatalogConnector{CP: env.CP},
		Generator: core.HybridScopeGenerator{},
		Observer: core.StatsObserver{
			TargetFileSize: env.TargetFileSize,
			Quota:          env.CP.QuotaUtilization,
			Now:            env.Clock.Now,
		},
		StatsFilters: []core.Filter{core.MinSmallFiles{Min: 2}},
		Traits:       []core.Trait{core.FileCountReduction{}, cost},
		Ranker: core.MOOPRanker{Objectives: []core.Objective{
			{Trait: core.FileCountReduction{}, Weight: 0.7},
			{Trait: cost, Weight: 0.3},
		}},
		Selector: core.TopK{K: *top},
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := svc.Decide()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Explain(*top))
}
