// Command lakectl inspects a simulated lake the way an operator would:
// it builds a CAB-style lake, then serves subcommands:
//
//	lakectl [flags] overview   table listings, file-size histograms,
//	                           quotas, and a decide-phase dry run (default)
//	lakectl [flags] metadata   per-table metadata-object counts/bytes and
//	                           checkpoint status (the maintenance view)
//
// and the policy-plane commands, which need no lake:
//
//	lakectl policy validate <spec.json>...   parse, resolve every
//	                           component, and check parameters/weights
//	lakectl policy show <spec.json>          operator summary + resolved JSON
//	lakectl policy diff <a.json> <b.json>    field-wise spec comparison
//
// and the scenario-engine commands (internal/scenario), which build
// their own fleet:
//
//	lakectl scenario list [dir]              enumerate scenarios (default
//	                           examples/scenarios)
//	lakectl scenario validate <s.json>...    schema-check scenario files
//	lakectl scenario run <s.json>            run and print the canonical
//	                           trace (byte-stable per scenario+seed)
//	lakectl scenario diff <a> <b>            compare two traces; each arg
//	                           is a scenario .json (run now) or a saved
//	                           .trace file (e.g. a committed golden)
//
// and the closed-loop tuning command (internal/autotune):
//
//	lakectl tune <space.json> <scenario.json>...
//	                           search the spec space against the scenario
//	                           engine; print the winner + provenance
//	lakectl tune -check <trials.jsonl>
//	                           schema-check a tune's JSONL trial log
//
// and the durable-storage command (internal/lstlog):
//
//	lakectl inspect <table-dir>              replay a persisted table's
//	                           commit log and print the recovered state
//
// and the daemon-operations command:
//
//	lakectl status <host:port>               scrape /statusz from a
//	                           running autocompd (-listen) and render the
//	                           daemon's progress + recent decision trace
//
// The dry runs compile their pipelines from policy specs (the same
// declarative plane autocompd runs), bound to the catalog substrate —
// so per-table policies installed in the control plane layer on top of
// the spec's own defaults.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"autocomp/internal/bench"
	"autocomp/internal/catalog"
	"autocomp/internal/core"
	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/lstlog"
	"autocomp/internal/metrics"
	"autocomp/internal/policy"
	"autocomp/internal/scenario"
	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	databases := flag.Int("databases", 4, "databases to create")
	top := flag.Int("top", 15, "rows to show per listing")
	persist := flag.String("persist", "", "build the lake on the durable commit-log backend rooted here (the directories `lakectl inspect` reads)")
	flag.IntVar(&decideShards, "decide-shards", 0,
		"run the dry-run decide phase sharded across N table-hash shards (byte-identical output; <=1 = serial)")
	flag.IntVar(&decideWorkers, "decide-workers", 0,
		"goroutines working decide shards (0 = min(decide-shards, GOMAXPROCS))")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "overview"
	}

	if cmd == "policy" {
		policyCmd(flag.Args()[1:])
		return
	}
	if cmd == "scenario" {
		scenarioCmd(flag.Args()[1:])
		return
	}
	if cmd == "status" {
		statusCmd(flag.Args()[1:])
		return
	}
	if cmd == "tenants" {
		tenantsCmd(flag.Args()[1:])
		return
	}
	if cmd == "runs" {
		runsCmd(flag.Args()[1:])
		return
	}
	if cmd == "tune" {
		tuneCmd(flag.Args()[1:])
		return
	}
	if cmd == "inspect" {
		inspectCmd(flag.Args()[1:])
		return
	}

	env := buildLake(*seed, *databases, *persist)
	switch cmd {
	case "overview":
		overview(env, *top)
	case "metadata":
		metadataView(env, *top)
	default:
		log.Fatalf("lakectl: unknown command %q (have: overview, metadata, policy, scenario, status, tenants, runs, tune, inspect)", cmd)
	}
}

// scenarioCmd serves the scenario-engine subcommands.
func scenarioCmd(args []string) {
	if len(args) == 0 {
		log.Fatal("lakectl scenario: need a subcommand (list, validate, run, diff)")
	}
	switch args[0] {
	case "list":
		dir := filepath.Join("examples", "scenarios")
		if len(args) > 1 {
			dir = args[1]
		}
		specs, err := scenario.LoadDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		var rows [][]string
		for _, s := range specs {
			rows = append(rows, []string{
				s.Name, fmt.Sprintf("%d", s.Seed), fmt.Sprintf("%d", s.Days),
				fmt.Sprintf("%d", s.Fleet.InitialTables), s.Description,
			})
		}
		fmt.Println(metrics.RenderTable([]string{"Scenario", "Seed", "Days", "Tables", "Description"}, rows))
	case "validate":
		if len(args) < 2 {
			log.Fatal("lakectl scenario validate: need at least one scenario file")
		}
		failed := false
		for _, path := range args[1:] {
			spec, err := scenario.LoadFile(path)
			if err == nil {
				err = spec.Validate()
			}
			if err != nil {
				failed = true
				fmt.Printf("%s: INVALID\n  %v\n", path, err)
				continue
			}
			fmt.Printf("%s: OK (%s, %d days)\n", path, spec.Name, spec.Days)
		}
		if failed {
			os.Exit(1)
		}
	case "run":
		if len(args) != 2 {
			log.Fatal("lakectl scenario run: need exactly one scenario file")
		}
		tr, err := runScenarioArg(args[1])
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(tr)
	case "diff":
		if len(args) != 3 {
			log.Fatal("lakectl scenario diff: need exactly two arguments (scenario .json or saved .trace)")
		}
		a, err := traceOf(args[1])
		if err != nil {
			log.Fatal(err)
		}
		b, err := traceOf(args[2])
		if err != nil {
			log.Fatal(err)
		}
		lines := scenario.DiffTraces(a, b)
		if len(lines) == 0 {
			fmt.Println("traces are identical")
			return
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		os.Exit(1)
	default:
		log.Fatalf("lakectl scenario: unknown subcommand %q (have: list, validate, run, diff)", args[0])
	}
}

// runScenarioArg runs a scenario file and returns its canonical trace.
func runScenarioArg(path string) ([]byte, error) {
	spec, err := scenario.LoadFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := scenario.Run(spec)
	if err != nil {
		return nil, err
	}
	return tr.Marshal(), nil
}

// traceOf resolves a diff argument: scenario files (.json) run now,
// anything else is read as a saved trace.
func traceOf(path string) ([]byte, error) {
	if strings.HasSuffix(path, ".json") {
		return runScenarioArg(path)
	}
	return os.ReadFile(path)
}

// policyCmd serves the policy-plane subcommands. show works locally
// (one spec file) and remotely (host:port + tenant); push is always
// remote.
func policyCmd(args []string) {
	if len(args) == 0 {
		log.Fatal("lakectl policy: need a subcommand (validate, show, diff, push)")
	}
	env := policy.StubEnv()
	switch args[0] {
	case "push":
		if len(args) != 4 {
			log.Fatal("lakectl policy push: need <host:port> <tenant> <spec.json>")
		}
		remotePolicyPush(args[1], args[2], args[3])
		return
	case "validate":
		if len(args) < 2 {
			log.Fatal("lakectl policy validate: need at least one spec file")
		}
		failed := false
		for _, path := range args[1:] {
			spec, err := policy.LoadFile(path)
			if err == nil {
				err = policy.Validate(spec, env)
			}
			if err != nil {
				failed = true
				fmt.Printf("%s: INVALID\n  %v\n", path, err)
				continue
			}
			name := spec.Name
			if name == "" {
				name = "(unnamed)"
			}
			fmt.Printf("%s: OK (%s)\n", path, name)
		}
		if failed {
			os.Exit(1)
		}
	case "show":
		if len(args) == 3 {
			remotePolicyShow(args[1], args[2])
			return
		}
		if len(args) != 2 {
			log.Fatal("lakectl policy show: need one spec file, or <host:port> <tenant>")
		}
		spec, err := policy.LoadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if err := policy.Validate(spec, env); err != nil {
			log.Fatal(err)
		}
		fmt.Print(policy.Describe(spec))
		b, err := spec.Marshal()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s", b)
	case "diff":
		if len(args) != 3 {
			log.Fatal("lakectl policy diff: need exactly two spec files")
		}
		a, err := policy.LoadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		b, err := policy.LoadFile(args[2])
		if err != nil {
			log.Fatal(err)
		}
		lines := policy.Diff(a, b)
		if len(lines) == 0 {
			fmt.Println("specs are identical")
			return
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	default:
		log.Fatalf("lakectl policy: unknown subcommand %q (have: validate, show, diff, push)", args[0])
	}
}

// buildLake loads a CAB-style lake into a fresh environment. With a
// persist root, the catalog attaches the durable commit-log backend
// first, so every table built here leaves a real _delta_log directory
// for `lakectl inspect` (and a _catalog.json for catalog.Restore).
func buildLake(seed int64, databases int, persistRoot string) *bench.Env {
	env := bench.NewEnv(bench.EnvConfig{Seed: seed})
	if persistRoot != "" {
		store, err := lstlog.Open(lstlog.Config{Root: persistRoot})
		if err != nil {
			log.Fatal(err)
		}
		if err := env.CP.AttachLog(store); err != nil {
			log.Fatal(err)
		}
	}
	gen := workload.NewCAB(workload.CABConfig{
		RawDataBytes: 20 * storage.GB,
		Databases:    databases,
		Duration:     time.Hour,
		Months:       12,
		Seed:         seed,
	})
	plan := gen.Plan()
	months := workload.MonthPartitions(12)
	for _, dbp := range plan.Databases {
		if _, err := env.CP.CreateDatabase(dbp.Name, "tenant", 200_000); err != nil {
			log.Fatal(err)
		}
		for _, td := range dbp.Tables {
			tbl, err := env.CP.CreateTable(dbp.Name, lst.TableConfig{
				Name: td.Name, Schema: td.Schema, Spec: td.Spec,
			})
			if err != nil {
				log.Fatal(err)
			}
			q := engine.Query{
				App: "load", Table: tbl, Kind: engine.Insert,
				Bytes:       workload.SizeOfShare(dbp.RawBytes, td.ShareOfData),
				Parallelism: dbp.LoadParallelism,
			}
			if td.Spec.IsPartitioned() {
				q.TargetPartitions = months
			}
			if res := env.Engine.Exec(q); res.Failed() {
				log.Fatal(res.Err)
			}
		}
	}
	// Post-load activity: two weeks of small daily appends per table —
	// the paper's cause (i), and with it the per-commit metadata of
	// cause (iv).
	for d := 0; d < 14; d++ {
		for _, tbl := range env.CP.AllTables() {
			part := ""
			if tbl.Spec().IsPartitioned() {
				part = months[len(months)-1]
			}
			specs := []lst.FileSpec{
				{Partition: part, SizeBytes: 8 * storage.MB, RowCount: 10_000},
				{Partition: part, SizeBytes: 12 * storage.MB, RowCount: 15_000},
				{Partition: part, SizeBytes: 6 * storage.MB, RowCount: 8_000},
			}
			if _, err := tbl.AppendFiles(specs); err != nil {
				log.Fatal(err)
			}
		}
		env.Clock.Advance(24 * time.Hour)
	}
	env.Clock.Advance(48 * time.Hour)
	return env
}

// catalogEnv returns the policy-compilation environment of a lake.
func catalogEnv(env *bench.Env) policy.Env {
	return policy.Env{
		Now:                 env.Clock.Now,
		TargetFileSize:      env.TargetFileSize,
		ExecutorMemoryGB:    env.ExecutorMemoryGB(),
		RewriteBytesPerHour: env.RewriteBytesPerHour(),
	}
}

// catalogBindings returns the catalog substrate bindings (decide-only:
// no runner). The catalog itself is bound so its stored per-database
// and per-table policies layer on top of the spec.
func catalogBindings(env *bench.Env) policy.Bindings {
	return policy.Bindings{
		Connector: core.CatalogConnector{CP: env.CP},
		Observer: core.StatsObserver{
			TargetFileSize: env.TargetFileSize,
			Quota:          env.CP.QuotaUtilization,
			Now:            env.Clock.Now,
		},
		Catalog: env.CP,
	}
}

// overview prints the operator's lake summary plus a decide-phase dry
// run.
func overview(env *bench.Env, top int) {
	// Table listing.
	fmt.Println("== tables ==")
	var rows [][]string
	for i, tbl := range env.CP.AllTables() {
		if i >= top {
			break
		}
		rows = append(rows, []string{
			tbl.FullName(),
			fmt.Sprintf("%d", tbl.FileCount()),
			metrics.FormatBytes(tbl.TotalBytes()),
			fmt.Sprintf("%d", tbl.SmallFileCount(512*storage.MB)),
			fmt.Sprintf("%d", len(tbl.Partitions())),
			tbl.Mode().String(),
		})
	}
	fmt.Println(metrics.RenderTable(
		[]string{"Table", "Files", "Bytes", "Small", "Parts", "Mode"}, rows))

	// Lake-wide histogram.
	fmt.Println("== file size distribution ==")
	h := metrics.NewHistogram([]int64{32 * storage.MB, 128 * storage.MB, 512 * storage.MB})
	h.AddCounts(env.FS.SizeHistogram("", []int64{32 * storage.MB, 128 * storage.MB, 512 * storage.MB}))
	labels := h.BucketLabels(metrics.FormatBytes)
	var hrows [][]string
	for i, l := range labels {
		hrows = append(hrows, []string{l, fmt.Sprintf("%d", h.Counts[i])})
	}
	fmt.Println(metrics.RenderTable([]string{"Bucket", "Objects"}, hrows))

	// Quotas.
	fmt.Println("== namespace quotas ==")
	var qrows [][]string
	for _, db := range env.CP.Databases() {
		qrows = append(qrows, []string{db, fmt.Sprintf("%.1f%%", 100*env.CP.QuotaUtilization(db))})
	}
	fmt.Println(metrics.RenderTable([]string{"Database", "Quota used"}, qrows))

	// Dry-run of the decide phase, compiled from a policy spec.
	fmt.Println("== autocomp dry run (top candidates) ==")
	spec := &policy.Spec{
		Name:         "lakectl-overview",
		Generators:   []policy.Component{policy.C("hybrid-scope")},
		StatsFilters: []policy.Component{{Name: "min-small-files", Params: map[string]any{"min": float64(2)}}},
		Traits:       []policy.Component{policy.C("file_count_reduction"), policy.C("compute_cost_gbhr")},
		Objectives: []policy.ObjectiveSpec{
			{Trait: policy.C("file_count_reduction"), Weight: 0.7},
			{Trait: policy.C("compute_cost_gbhr"), Weight: 0.3},
		},
		Selector: topKSelector(top),
	}
	d := dryRun(env, spec)
	fmt.Println(d.Explain(top))
}

// metadataView prints the maintenance subsystem's view of the lake:
// per-table metadata-object counts/bytes and checkpoint status, then a
// dry run of the unified maintenance pipeline under an aggressive demo
// policy.
func metadataView(env *bench.Env, top int) {
	fmt.Println("== table metadata ==")
	var rows [][]string
	var totObjects int
	var totBytes int64
	tables := env.CP.AllTables()
	for i, tbl := range tables {
		ms := tbl.MetadataStats()
		totObjects += ms.Objects
		totBytes += ms.Bytes
		if i >= top {
			continue
		}
		ckpt := "never"
		if ms.LastCheckpointVersion >= 0 {
			ckpt = fmt.Sprintf("v%d", ms.LastCheckpointVersion)
		}
		rows = append(rows, []string{
			tbl.FullName(),
			fmt.Sprintf("%d", ms.Objects),
			metrics.FormatBytes(ms.Bytes),
			fmt.Sprintf("%d", ms.MetadataJSONs),
			fmt.Sprintf("%d", ms.Manifests),
			fmt.Sprintf("%d", ms.Snapshots),
			ckpt,
			fmt.Sprintf("%d", ms.VersionsSinceCheckpoint),
		})
	}
	fmt.Println(metrics.RenderTable(
		[]string{"Table", "Objs", "Bytes", "meta.json", "Manifests", "Snaps", "Ckpt", "Since"}, rows))
	lakeObjects := env.FS.ObjectCount()
	fmt.Printf("lake: %d metadata objects (%s) of %d storage objects (%.1f%% of the namespace)\n\n",
		totObjects, metrics.FormatBytes(totBytes), lakeObjects,
		100*float64(totObjects)/float64(lakeObjects))

	// Install an aggressive demo policy in the catalog — the control
	// plane's stored policies are the top override layer, so the spec's
	// own defaults are superseded where the catalog sets a field.
	for _, db := range env.CP.Databases() {
		dbTables, err := env.CP.Tables(db)
		if err != nil {
			log.Fatal(err)
		}
		for _, tbl := range dbTables {
			pol := catalog.TablePolicies{RetainSnapshots: 10, CheckpointEveryVersions: 10}
			if err := env.CP.SetPolicies(db, tbl.Name(), pol); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("== unified maintenance dry run (demo policy: retain 10, checkpoint every 10) ==")
	spec := &policy.Spec{
		Name: "lakectl-metadata",
		StatsFilters: []policy.Component{
			{Name: "min-metadata-reduction", Params: map[string]any{"min": float64(1)}},
		},
		Traits: []policy.Component{
			policy.C("file_count_reduction"), policy.C("metadata_reduction"), policy.C("compute_cost_gbhr"),
		},
		Objectives: []policy.ObjectiveSpec{
			{Trait: policy.C("file_count_reduction"), Weight: 0.5},
			{Trait: policy.C("metadata_reduction"), Weight: 0.2},
			{Trait: policy.C("compute_cost_gbhr"), Weight: 0.3},
		},
		Selector:    topKSelector(top),
		Maintenance: &policy.MaintenanceSpec{RetainSnapshots: 10, CheckpointEveryVersions: 10, MinManifestSurplus: 4},
	}
	d := dryRun(env, spec)
	fmt.Println(d.Explain(top))
}

// topKSelector returns a top-k selector component, or nil (compile
// default: select-all) when top is not positive — matching the old
// core.TopK{K: 0} select-all behavior for `-top 0`.
func topKSelector(top int) *policy.Component {
	if top < 1 {
		return nil
	}
	return &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(top)}}
}

// decideShards and decideWorkers shard the dry-run decide phase when
// set (-decide-shards/-decide-workers) — same bytes out, parallel in.
var decideShards, decideWorkers int

// dryRun compiles a spec against the catalog substrate and runs the
// decide phase only.
func dryRun(env *bench.Env, spec *policy.Spec) *core.Decision {
	if decideShards > 1 {
		// The decide knobs live on the execution section; a decide-only
		// dry run never schedules jobs, so one worker slot satisfies the
		// section's validation without changing what runs.
		spec.Execution = &policy.ExecutionSpec{
			Workers:       1,
			DecideShards:  decideShards,
			DecideWorkers: decideWorkers,
		}
	}
	comp, err := policy.Compile(spec, catalogEnv(env), catalogBindings(env))
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.NewService(comp.Core)
	if err != nil {
		log.Fatal(err)
	}
	d, err := svc.Decide()
	if err != nil {
		log.Fatal(err)
	}
	return d
}
