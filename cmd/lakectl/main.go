// Command lakectl inspects a simulated lake the way an operator would:
// it builds a CAB-style lake, then serves subcommands:
//
//	lakectl [flags] overview   table listings, file-size histograms,
//	                           quotas, and a decide-phase dry run (default)
//	lakectl [flags] metadata   per-table metadata-object counts/bytes and
//	                           checkpoint status (the maintenance view)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"autocomp/internal/bench"
	"autocomp/internal/catalog"
	"autocomp/internal/core"
	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/maintenance"
	"autocomp/internal/metrics"
	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	databases := flag.Int("databases", 4, "databases to create")
	top := flag.Int("top", 15, "rows to show per listing")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "overview"
	}

	env := buildLake(*seed, *databases)
	switch cmd {
	case "overview":
		overview(env, *top)
	case "metadata":
		metadataView(env, *top)
	default:
		log.Fatalf("lakectl: unknown command %q (have: overview, metadata)", cmd)
	}
}

// buildLake loads a CAB-style lake into a fresh environment.
func buildLake(seed int64, databases int) *bench.Env {
	env := bench.NewEnv(bench.EnvConfig{Seed: seed})
	gen := workload.NewCAB(workload.CABConfig{
		RawDataBytes: 20 * storage.GB,
		Databases:    databases,
		Duration:     time.Hour,
		Months:       12,
		Seed:         seed,
	})
	plan := gen.Plan()
	months := workload.MonthPartitions(12)
	for _, dbp := range plan.Databases {
		if _, err := env.CP.CreateDatabase(dbp.Name, "tenant", 200_000); err != nil {
			log.Fatal(err)
		}
		for _, td := range dbp.Tables {
			tbl, err := env.CP.CreateTable(dbp.Name, lst.TableConfig{
				Name: td.Name, Schema: td.Schema, Spec: td.Spec,
			})
			if err != nil {
				log.Fatal(err)
			}
			q := engine.Query{
				App: "load", Table: tbl, Kind: engine.Insert,
				Bytes:       workload.SizeOfShare(dbp.RawBytes, td.ShareOfData),
				Parallelism: dbp.LoadParallelism,
			}
			if td.Spec.IsPartitioned() {
				q.TargetPartitions = months
			}
			if res := env.Engine.Exec(q); res.Failed() {
				log.Fatal(res.Err)
			}
		}
	}
	// Post-load activity: two weeks of small daily appends per table —
	// the paper's cause (i), and with it the per-commit metadata of
	// cause (iv).
	for d := 0; d < 14; d++ {
		for _, tbl := range env.CP.AllTables() {
			part := ""
			if tbl.Spec().IsPartitioned() {
				part = months[len(months)-1]
			}
			specs := []lst.FileSpec{
				{Partition: part, SizeBytes: 8 * storage.MB, RowCount: 10_000},
				{Partition: part, SizeBytes: 12 * storage.MB, RowCount: 15_000},
				{Partition: part, SizeBytes: 6 * storage.MB, RowCount: 8_000},
			}
			if _, err := tbl.AppendFiles(specs); err != nil {
				log.Fatal(err)
			}
		}
		env.Clock.Advance(24 * time.Hour)
	}
	env.Clock.Advance(48 * time.Hour)
	return env
}

// overview prints the operator's lake summary plus a decide-phase dry
// run.
func overview(env *bench.Env, top int) {
	// Table listing.
	fmt.Println("== tables ==")
	var rows [][]string
	for i, tbl := range env.CP.AllTables() {
		if i >= top {
			break
		}
		rows = append(rows, []string{
			tbl.FullName(),
			fmt.Sprintf("%d", tbl.FileCount()),
			metrics.FormatBytes(tbl.TotalBytes()),
			fmt.Sprintf("%d", tbl.SmallFileCount(512*storage.MB)),
			fmt.Sprintf("%d", len(tbl.Partitions())),
			tbl.Mode().String(),
		})
	}
	fmt.Println(metrics.RenderTable(
		[]string{"Table", "Files", "Bytes", "Small", "Parts", "Mode"}, rows))

	// Lake-wide histogram.
	fmt.Println("== file size distribution ==")
	h := metrics.NewHistogram([]int64{32 * storage.MB, 128 * storage.MB, 512 * storage.MB})
	h.AddCounts(env.FS.SizeHistogram("", []int64{32 * storage.MB, 128 * storage.MB, 512 * storage.MB}))
	labels := h.BucketLabels(metrics.FormatBytes)
	var hrows [][]string
	for i, l := range labels {
		hrows = append(hrows, []string{l, fmt.Sprintf("%d", h.Counts[i])})
	}
	fmt.Println(metrics.RenderTable([]string{"Bucket", "Objects"}, hrows))

	// Quotas.
	fmt.Println("== namespace quotas ==")
	var qrows [][]string
	for _, db := range env.CP.Databases() {
		qrows = append(qrows, []string{db, fmt.Sprintf("%.1f%%", 100*env.CP.QuotaUtilization(db))})
	}
	fmt.Println(metrics.RenderTable([]string{"Database", "Quota used"}, qrows))

	// Dry-run of the decide phase.
	fmt.Println("== autocomp dry run (top candidates) ==")
	cost := core.ComputeCost{
		ExecutorMemoryGB:    env.ExecutorMemoryGB(),
		RewriteBytesPerHour: env.RewriteBytesPerHour(),
	}
	svc, err := core.NewService(core.Config{
		Connector: core.CatalogConnector{CP: env.CP},
		Generator: core.HybridScopeGenerator{},
		Observer: core.StatsObserver{
			TargetFileSize: env.TargetFileSize,
			Quota:          env.CP.QuotaUtilization,
			Now:            env.Clock.Now,
		},
		StatsFilters: []core.Filter{core.MinSmallFiles{Min: 2}},
		Traits:       []core.Trait{core.FileCountReduction{}, cost},
		Ranker: core.MOOPRanker{Objectives: []core.Objective{
			{Trait: core.FileCountReduction{}, Weight: 0.7},
			{Trait: cost, Weight: 0.3},
		}},
		Selector: core.TopK{K: top},
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := svc.Decide()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Explain(top))
}

// metadataView prints the maintenance subsystem's view of the lake:
// per-table metadata-object counts/bytes and checkpoint status, then a
// dry run of the unified maintenance pipeline under an aggressive demo
// policy.
func metadataView(env *bench.Env, top int) {
	fmt.Println("== table metadata ==")
	var rows [][]string
	var totObjects int
	var totBytes int64
	tables := env.CP.AllTables()
	for i, tbl := range tables {
		ms := tbl.MetadataStats()
		totObjects += ms.Objects
		totBytes += ms.Bytes
		if i >= top {
			continue
		}
		ckpt := "never"
		if ms.LastCheckpointVersion >= 0 {
			ckpt = fmt.Sprintf("v%d", ms.LastCheckpointVersion)
		}
		rows = append(rows, []string{
			tbl.FullName(),
			fmt.Sprintf("%d", ms.Objects),
			metrics.FormatBytes(ms.Bytes),
			fmt.Sprintf("%d", ms.MetadataJSONs),
			fmt.Sprintf("%d", ms.Manifests),
			fmt.Sprintf("%d", ms.Snapshots),
			ckpt,
			fmt.Sprintf("%d", ms.VersionsSinceCheckpoint),
		})
	}
	fmt.Println(metrics.RenderTable(
		[]string{"Table", "Objs", "Bytes", "meta.json", "Manifests", "Snaps", "Ckpt", "Since"}, rows))
	lakeObjects := env.FS.ObjectCount()
	fmt.Printf("lake: %d metadata objects (%s) of %d storage objects (%.1f%% of the namespace)\n\n",
		totObjects, metrics.FormatBytes(totBytes), lakeObjects,
		100*float64(totObjects)/float64(lakeObjects))

	// Install an aggressive demo policy so the dry run has work to rank,
	// then decide without acting.
	for _, db := range env.CP.Databases() {
		dbTables, err := env.CP.Tables(db)
		if err != nil {
			log.Fatal(err)
		}
		for _, tbl := range dbTables {
			pol := catalog.TablePolicies{RetainSnapshots: 10, CheckpointEveryVersions: 10}
			if err := env.CP.SetPolicies(db, tbl.Name(), pol); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("== unified maintenance dry run (demo policy: retain 10, checkpoint every 10) ==")
	svc, err := maintenance.NewCatalogService(env.CP, maintenance.Options{
		TargetFileSize:      env.TargetFileSize,
		ExecutorMemoryGB:    env.ExecutorMemoryGB(),
		RewriteBytesPerHour: env.RewriteBytesPerHour(),
		Selector:            core.TopK{K: top},
		DefaultPolicy: maintenance.Policy{
			RetainSnapshots:         10,
			CheckpointEveryVersions: 10,
			MinManifestSurplus:      4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := svc.Decide()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Explain(top))
}
