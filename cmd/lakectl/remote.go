package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"autocomp/internal/metrics"
	"autocomp/internal/telemetry"
	"autocomp/internal/tenant"
)

// apiClient speaks autocompd's management API (docs/management.md).
type apiClient struct {
	base   string
	client *http.Client
}

// newAPIClient normalizes host:port into a base URL.
func newAPIClient(addr string) *apiClient {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &apiClient{
		base: strings.TrimSuffix(addr, "/"),
		// Generous timeout: runs watch holds the events stream open.
		client: &http.Client{Timeout: 10 * time.Minute},
	}
}

// do issues a request, decoding a JSON body into out (skipped when out
// is nil) and turning non-2xx statuses into the server's error message.
func (c *apiClient) do(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(b, out)
}

// tenantsCmd serves `lakectl tenants`:
//
//	tenants <host:port>                    list the daemon's tenants
//	tenants create <host:port> <cfg.json>  create (and start) a tenant
func tenantsCmd(args []string) {
	if len(args) == 0 {
		log.Fatal("lakectl tenants: need <host:port> or: create <host:port> <config.json>")
	}
	if args[0] == "create" {
		if len(args) != 3 {
			log.Fatal("lakectl tenants create: need <host:port> <config.json>")
		}
		body, err := os.ReadFile(args[2])
		if err != nil {
			log.Fatal(err)
		}
		c := newAPIClient(args[1])
		var snap tenant.Snapshot
		if err := c.do(http.MethodPost, "/api/tenants", body, &snap); err != nil {
			log.Fatalf("lakectl tenants create: %v", err)
		}
		fmt.Printf("created tenant %s (%s, policy %s, %d days)\n",
			snap.Name, snap.State, snap.Policy, snap.DaysPlanned)
		return
	}
	c := newAPIClient(args[0])
	var snaps []tenant.Snapshot
	if err := c.do(http.MethodGet, "/api/tenants", nil, &snaps); err != nil {
		log.Fatalf("lakectl tenants: %v", err)
	}
	var rows [][]string
	for _, s := range snaps {
		rows = append(rows, []string{
			s.Name, s.State.String(),
			fmt.Sprintf("%d/%d", s.Day, s.DaysPlanned),
			s.Policy, s.Provenance,
			fmt.Sprintf("%d", s.Fleet.Tables),
			fmt.Sprintf("%d", s.Fleet.Files),
			fmt.Sprintf("%d", s.Runs),
		})
	}
	fmt.Println(metrics.RenderTable(
		[]string{"Tenant", "State", "Day", "Policy", "Source", "Tables", "Files", "Runs"}, rows))
}

// remotePolicyShow renders GET /api/tenants/{t}/policy.
func remotePolicyShow(addr, tenantName string) {
	c := newAPIClient(addr)
	var view struct {
		Name       string          `json:"name"`
		Provenance string          `json:"provenance"`
		Spec       json.RawMessage `json:"spec"`
	}
	if err := c.do(http.MethodGet, "/api/tenants/"+tenantName+"/policy", nil, &view); err != nil {
		log.Fatalf("lakectl policy show: %v", err)
	}
	fmt.Printf("tenant %s runs %s (source: %s)\n\n", tenantName, view.Name, view.Provenance)
	var buf bytes.Buffer
	if json.Indent(&buf, view.Spec, "", "  ") == nil {
		fmt.Println(buf.String())
	} else {
		fmt.Println(string(view.Spec))
	}
}

// remotePolicyPush sends PUT /api/tenants/{t}/policy and prints the
// accepted diff (or the compile errors a rejection reports).
func remotePolicyPush(addr, tenantName, specPath string) {
	body, err := os.ReadFile(specPath)
	if err != nil {
		log.Fatal(err)
	}
	c := newAPIClient(addr)
	var resp struct {
		Policy  string   `json:"policy"`
		Diff    []string `json:"diff"`
		Applied string   `json:"applied"`
	}
	if err := c.do(http.MethodPut, "/api/tenants/"+tenantName+"/policy", body, &resp); err != nil {
		log.Fatalf("lakectl policy push: %v", err)
	}
	fmt.Printf("pushed %s to tenant %s (applies at %s)\n", resp.Policy, tenantName, resp.Applied)
	if len(resp.Diff) == 0 {
		fmt.Println("no changes against the running spec")
		return
	}
	for _, l := range resp.Diff {
		fmt.Println("  " + l)
	}
}

// runsCmd serves `lakectl runs`:
//
//	runs submit <host:port> <tenant> <scenario>   submit by shipped name,
//	                         or by file when <scenario> is a .json path
//	runs watch <host:port> <tenant> <run-id>      stream per-cycle events
//	runs list <host:port> <tenant>                list the tenant's runs
func runsCmd(args []string) {
	if len(args) == 0 {
		log.Fatal("lakectl runs: need a subcommand (submit, watch, list)")
	}
	switch args[0] {
	case "submit":
		if len(args) != 4 {
			log.Fatal("lakectl runs submit: need <host:port> <tenant> <scenario-name-or-file.json>")
		}
		c := newAPIClient(args[1])
		var body []byte
		if strings.HasSuffix(args[3], ".json") {
			spec, err := os.ReadFile(args[3])
			if err != nil {
				log.Fatal(err)
			}
			req := map[string]json.RawMessage{"spec": spec}
			body, _ = json.Marshal(req)
		} else {
			body, _ = json.Marshal(map[string]string{"scenario": args[3]})
		}
		var info tenant.RunInfo
		if err := c.do(http.MethodPost, "/api/tenants/"+args[2]+"/runs", body, &info); err != nil {
			log.Fatalf("lakectl runs submit: %v", err)
		}
		fmt.Printf("run %s submitted to tenant %s (scenario %s, seed %d, %d days)\n",
			info.ID, info.Tenant, info.Scenario, info.Seed, info.Days)
		fmt.Printf("watch it: lakectl runs watch %s %s %s\n", args[1], args[2], info.ID)
	case "watch":
		if len(args) != 4 {
			log.Fatal("lakectl runs watch: need <host:port> <tenant> <run-id>")
		}
		watchRun(args[1], args[2], args[3])
	case "list":
		if len(args) != 3 {
			log.Fatal("lakectl runs list: need <host:port> <tenant>")
		}
		c := newAPIClient(args[1])
		var infos []tenant.RunInfo
		if err := c.do(http.MethodGet, "/api/tenants/"+args[2]+"/runs", nil, &infos); err != nil {
			log.Fatalf("lakectl runs list: %v", err)
		}
		var rows [][]string
		for _, r := range infos {
			rows = append(rows, []string{
				r.ID, r.Scenario, fmt.Sprintf("%d", r.Seed),
				fmt.Sprintf("%d/%d", r.Day, r.Days), string(r.Status), r.Error,
			})
		}
		fmt.Println(metrics.RenderTable(
			[]string{"Run", "Scenario", "Seed", "Day", "Status", "Error"}, rows))
	default:
		log.Fatalf("lakectl runs: unknown subcommand %q (have: submit, watch, list)", args[0])
	}
}

// watchRun streams the run's CycleEvents as they happen, rendering each
// with the daemon's own per-cycle format, then reports the terminal
// status.
func watchRun(addr, tenantName, runID string) {
	c := newAPIClient(addr)
	path := "/api/tenants/" + tenantName + "/runs/" + runID
	resp, err := c.client.Get(c.base + path + "/events")
	if err != nil {
		log.Fatalf("lakectl runs watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		log.Fatalf("lakectl runs watch: %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev telemetry.CycleEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		fmt.Println(ev.String())
	}
	var info tenant.RunInfo
	if err := c.do(http.MethodGet, path, nil, &info); err != nil {
		log.Fatalf("lakectl runs watch: %v", err)
	}
	fmt.Printf("run %s: %s (day %d/%d)\n", info.ID, info.Status, info.Day, info.Days)
	if info.Error != "" {
		log.Fatalf("lakectl runs watch: run failed: %s", info.Error)
	}
}
