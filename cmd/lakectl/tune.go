package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"

	"autocomp/internal/autotune"
	"autocomp/internal/policy"
	"autocomp/internal/scenario"
)

// tuneCmd serves `lakectl tune`: the closed-loop policy auto-tuner.
//
//	lakectl tune [flags] <space.json> <scenario.json>...
//	lakectl tune -check <trials.jsonl>
//
// The first form searches the space against the scenario engine and
// prints the winner; the second schema-checks a trial log (CI runs it
// on the smoke tune's artifact).
func tuneCmd(args []string) {
	fs := flag.NewFlagSet("lakectl tune", flag.ExitOnError)
	optimizer := fs.String("optimizer", "cfo", "search strategy: cfo, random, or grid")
	budget := fs.Int("budget", 16, "trial count")
	seed := fs.Int64("seed", 1, "tune seed (search stream and per-scenario eval seeds derive from it)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "evaluation pool size (never changes any result byte)")
	basePath := fs.String("base", "", "base policy spec to tune (default: the built-in default spec)")
	outPath := fs.String("out", "", "write the winner spec JSON here (default: stdout summary only)")
	reportPath := fs.String("report", "", "write the provenance report JSON here")
	logPath := fs.String("log", "", "write the JSONL trial log here")
	check := fs.String("check", "", "schema-check a trial log instead of tuning")
	fs.Parse(args)

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			log.Fatalf("lakectl tune: %v", err)
		}
		defer f.Close()
		if err := autotune.CheckTrialLog(f); err != nil {
			log.Fatalf("lakectl tune: %s: %v", *check, err)
		}
		fmt.Printf("%s: OK\n", *check)
		return
	}

	if fs.NArg() < 2 {
		log.Fatal("lakectl tune: need a space file and at least one scenario file")
	}
	space, err := autotune.LoadSpaceFile(fs.Arg(0))
	if err != nil {
		log.Fatalf("lakectl tune: %v", err)
	}
	var scenarios []*scenario.Spec
	for _, path := range fs.Args()[1:] {
		sc, err := scenario.LoadFile(path)
		if err != nil {
			log.Fatalf("lakectl tune: %v", err)
		}
		scenarios = append(scenarios, sc)
	}
	var base *policy.Spec
	if *basePath != "" {
		if base, err = policy.LoadFile(*basePath); err != nil {
			log.Fatalf("lakectl tune: %v", err)
		}
	}

	cfg := autotune.Config{
		Space:     space,
		Base:      base,
		Scenarios: scenarios,
		Optimizer: *optimizer,
		Budget:    *budget,
		Seed:      *seed,
		Workers:   *workers,
	}
	var trialLog *os.File
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			log.Fatalf("lakectl tune: %v", err)
		}
		trialLog = f
		cfg.TrialLog = f
	}

	res, err := autotune.Run(cfg)
	if trialLog != nil {
		// A full disk surfaces buffered write errors at Close; swallowing
		// them would exit 0 with a truncated trial log.
		if cerr := trialLog.Close(); err == nil && cerr != nil {
			log.Fatalf("lakectl tune: write %s: %v", *logPath, cerr)
		}
	}
	if err != nil {
		log.Fatalf("lakectl tune: %v", err)
	}
	rep := res.Report

	fmt.Printf("tune %s: %d trials (%d invalid), optimizer %s, seed %d\n",
		spaceLabel(space), rep.Trials, rep.Invalid, rep.Optimizer, rep.Seed)
	fmt.Printf("scenarios:\n")
	for _, s := range rep.Scenarios {
		fmt.Printf("  %-24s eval seed %d\n", s.Name, s.Seed)
	}
	fmt.Printf("trajectory (best composite after each trial):\n  %s\n", trajectoryLine(rep.Trajectory))
	fmt.Printf("winner: trial %d, composite %.4f vs baseline 1.0\n", rep.BestTrial, rep.BestComposite)
	names := make([]string, 0, len(rep.WinnerParams))
	for name := range rep.WinnerParams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-36s %g\n", name, rep.WinnerParams[name])
	}
	if len(rep.WinnerDiff) == 0 {
		fmt.Println("winner matches the base spec (no tuned field moved the score)")
	} else {
		fmt.Printf("winner diff vs %s:\n", rep.Base)
		for _, d := range rep.WinnerDiff {
			fmt.Printf("  %s\n", d)
		}
	}
	if rep.ImprovementPct > 0 {
		fmt.Printf("result: strictly improves the composite score by %.2f%% over %s\n", rep.ImprovementPct, rep.Base)
	} else {
		fmt.Printf("result: no improvement over %s (composite %.4f)\n", rep.Base, rep.BestComposite)
	}

	if *outPath != "" {
		b, err := res.Winner.Marshal()
		if err != nil {
			log.Fatalf("lakectl tune: %v", err)
		}
		if err := os.WriteFile(*outPath, b, 0o644); err != nil {
			log.Fatalf("lakectl tune: %v", err)
		}
		fmt.Printf("winner spec written to %s\n", *outPath)
	}
	if *reportPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("lakectl tune: %v", err)
		}
		if err := os.WriteFile(*reportPath, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("lakectl tune: %v", err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
}

func spaceLabel(s *autotune.Space) string {
	if s.Name == "" {
		return "(unnamed space)"
	}
	return s.Name
}

// trajectoryLine renders the best-so-far series compactly; zero entries
// (before the first valid trial) render as "-".
func trajectoryLine(tr []float64) string {
	parts := make([]string, len(tr))
	for i, v := range tr {
		if v == 0 {
			parts[i] = "-"
		} else {
			parts[i] = fmt.Sprintf("%.4f", v)
		}
	}
	return strings.Join(parts, " ")
}
