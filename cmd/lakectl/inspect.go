package main

import (
	"fmt"
	"log"
	"path/filepath"

	"autocomp/internal/lstlog"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// inspectCmd reads a persisted table directory (one written by the
// lstlog backend, i.e. <root>/<db>/<table> holding a _delta_log/) and
// prints the recovered state: the operator's view of what a restart
// would reconstruct, without booting a daemon.
func inspectCmd(args []string) {
	if len(args) != 1 {
		log.Fatal("lakectl inspect: need exactly one persisted table directory (e.g. lake/db001/tbl000042)")
	}
	dir := args[0]

	// Replay needs a filesystem substrate and a clock for the
	// reconstructed table to live on; the inspected state itself comes
	// entirely from the log, so fixed seeds are fine here.
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	t, l, err := lstlog.OpenTable(dir, fs, clock)
	if err != nil {
		log.Fatalf("lakectl inspect: %v", err)
	}

	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	ms := t.MetadataStats()
	fmt.Printf("table      %s\n", t.FullName())
	fmt.Printf("dir        %s\n", abs)
	fmt.Printf("version    %d (next log LSN %d)\n", t.Version(), l.NextLSN())
	fmt.Printf("snapshots  %d retained\n", len(t.Snapshots()))
	fmt.Printf("files      %d live (%d delta), %.1f MiB\n",
		t.FileCount(), t.DeltaFileCount(), float64(t.TotalBytes())/(1<<20))
	fmt.Printf("partitions %d\n", len(t.Partitions()))
	fmt.Printf("metadata   %d objects (%d manifests, %d checkpoints), %.1f KiB\n",
		ms.Objects, ms.Manifests, ms.Checkpoints, float64(ms.Bytes)/(1<<10))
	if ms.LastCheckpointVersion >= 0 {
		fmt.Printf("checkpoint version %d (%d commits since)\n",
			ms.LastCheckpointVersion, ms.VersionsSinceCheckpoint)
	} else {
		fmt.Printf("checkpoint none\n")
	}
}
