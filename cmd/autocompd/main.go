// Command autocompd runs AutoComp as a serving daemon (§5's pull
// deployment, §7's shared service): a management plane hosting one or
// more tenants, each an isolated simulated lake — a fleet of tables
// accreting small files (and per-commit metadata) while the tenant's
// pipeline wakes on its schedule, decides, and maintains within its
// budget, printing one line per cycle with a per-action breakdown.
//
// The flags describe the `default` tenant, so a pre-management-plane
// command line behaves exactly as before. With -listen the daemon also
// serves the HTTP management API (docs/management.md): create more
// tenants, push policy specs over the wire, and submit scenario runs —
// alongside the read-only telemetry endpoints (/metrics, /statusz).
//
// The pipeline is policy-driven: the daemon compiles a declarative
// policy spec (internal/policy) into its observe→decide→act
// configuration. Without -policy the spec is assembled from the flags
// (unified maintenance with an 8-worker execution plane by default);
// with -policy file.json the spec comes from the file and the knob
// flags (-k, -budget-tbhr, -workers, -shards, -shard-budget-tbhr,
// -decide-shards, -decide-workers, -incremental, -trigger-commits,
// -reconcile-every, -retain-snapshots,
// -checkpoint-every) act as overrides when set explicitly — the
// structural flags (-unified, -quota-adaptive) do not apply to a file
// and are reported as ignored. The
// policy file is hot-reloadable: between cycles the daemon re-reads it,
// and a valid edit atomically replaces the running pipeline without a
// restart (an invalid edit is reported once and the old policy stays in
// force). PUT /api/tenants/default/policy stages an edit the same way.
//
// Spec sections map to planes: a "trigger" section makes observation
// commit-event-driven (only dirty tables are re-observed); an
// "execution" section runs the act phase on the concurrent worker pool
// with per-table leases, optimistic commit retry, and sharded GBHr
// budgets; a "maintenance" section ranks snapshot expiry, metadata
// checkpointing, and manifest rewriting against data compaction in one
// MOOP under the same budget.
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight tenant
// cycles drain within -drain-timeout, the HTTP server stops accepting,
// and the -trace JSONL stream is flushed and closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/policy"
	"autocomp/internal/server"
	"autocomp/internal/storage"
	"autocomp/internal/telemetry"
	"autocomp/internal/tenant"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	tables := flag.Int("tables", 1000, "fleet size")
	days := flag.Int("days", 14, "days to simulate (one cycle per day)")
	listen := flag.String("listen", "", "serve the management API (/api/tenants) and telemetry (/metrics, /statusz, /healthz, /debug/pprof) on this address (e.g. :9090; empty = no HTTP plane); the daemon keeps serving after the run completes")
	tracePath := flag.String("trace", "", "append per-cycle decision-trace events to this file as JSON lines")
	policyPath := flag.String("policy", "", "policy spec file (JSON); pipeline flags become overrides and the file hot-reloads between cycles")
	scenariosDir := flag.String("scenarios", "examples/scenarios", "directory where the management API resolves scenario runs submitted by name")
	tuneWorkers := flag.Int("tune-workers", 0, "evaluation pool size for /api/tune jobs (0 = GOMAXPROCS; never changes tune results)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight tenant cycles to drain")
	k := flag.Int("k", 0, "fixed top-k selection (0 = use budget)")
	budgetTBHr := flag.Float64("budget-tbhr", 50, "per-cycle compute budget (TBHr)")
	quotaAdaptive := flag.Bool("quota-adaptive", true, "use quota-adaptive MOOP weights (data-only mode)")
	unified := flag.Bool("unified", true, "rank metadata maintenance (expiry/checkpoint/manifest rewrite) in the same budget as data compaction")
	checkpointEvery := flag.Int64("checkpoint-every", 100, "commits between metadata checkpoints (unified mode)")
	retainSnapshots := flag.Int("retain-snapshots", 20, "snapshots kept by expiry (unified mode)")
	workers := flag.Int("workers", 8, "concurrent compaction job slots (0 = serial act phase)")
	shards := flag.Int("shards", 4, "GBHr budget shards for the execution plane")
	shardBudget := flag.Float64("shard-budget-tbhr", 0, "per-shard per-cycle budget (TBHr, 0 = unlimited)")
	decideShards := flag.Int("decide-shards", 0, "partition the decide phase across N table-hash shards run in parallel (byte-identical decisions; <=1 = serial decide; implies the execution plane)")
	decideWorkers := flag.Int("decide-workers", 0, "goroutines working decide shards (0 = min(decide-shards, GOMAXPROCS))")
	writerRate := flag.Float64("writer-rate", 30, "live writer commits/hour racing the compactor (scheduled mode)")
	incremental := flag.Bool("incremental", false, "commit-event-driven observation: re-observe only dirty tables")
	writeFrac := flag.Float64("write-frac", 1, "per-table probability of writing on a given day, in (0,1); values outside that range (including 0) mean every table writes daily")
	triggerCommits := flag.Int64("trigger-commits", 1, "commits before a table turns dirty (incremental mode; 1 preserves full-scan decision parity)")
	reconcileEvery := flag.Int("reconcile-every", 0, "full-scan reconciliation every N cycles (incremental mode, 0 = never)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var traceFile *os.File
	if *tracePath != "" {
		tf, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = tf
		telemetry.DefaultTracer().SetWriter(tf)
	}

	model := fleet.DefaultModel(512 * storage.MB)
	// Validation environment for the policy file: the pricing constants
	// without a live clock (the default tenant owns its clock; compile
	// against the fleet happens inside the tenant at swap time).
	env := policy.Env{
		TargetFileSize:      model.TargetFileSize,
		ExecutorMemoryGB:    model.ExecutorMemoryGB,
		RewriteBytesPerHour: model.RewriteBytesPerHour,
	}

	// flagSpec assembles the spec the flags describe — the same pipeline
	// the daemon always ran, now expressed as policy data.
	flagSpec := func() *policy.Spec {
		var sp *policy.Spec
		if *unified {
			sp = policy.DefaultSpec()
			sp.Maintenance.RetainSnapshots = *retainSnapshots
			sp.Maintenance.CheckpointEveryVersions = *checkpointEvery
		} else {
			sp = policy.DefaultDataSpec(*quotaAdaptive)
		}
		sp.Execution = nil
		sp.Selector = nil
		sp.Trigger = nil
		applyFlagOverrides(sp, map[string]bool{
			"k": true, "budget-tbhr": true, "workers": true, "shards": true,
			"shard-budget-tbhr": true, "incremental": true,
			"trigger-commits": *incremental, "reconcile-every": *incremental,
			"decide-shards":  set["decide-shards"],
			"decide-workers": set["decide-workers"],
		}, *k, *budgetTBHr, *workers, *shards, *shardBudget,
			*incremental, *triggerCommits, *reconcileEvery, 0, 0,
			*decideShards, *decideWorkers)
		return sp
	}

	// Load the default tenant's policy: from file (flags layered on top)
	// or from flags.
	var watcher *policy.Watcher
	var spec *policy.Spec
	var err error
	provenance := "flags"
	if *policyPath != "" {
		// Structural flags choose which built-in spec the flags assemble;
		// a policy file already states the pipeline's structure, so they
		// cannot act as overrides on it.
		for _, structural := range []string{"unified", "quota-adaptive"} {
			if set[structural] {
				fmt.Printf("autocompd: -%s has no effect with -policy (the file defines the pipeline structure)\n", structural)
			}
		}
		watcher, spec, err = policy.NewWatcher(*policyPath, env)
		if err != nil {
			log.Fatal(err)
		}
		spec = spec.Clone()
		applyFlagOverrides(spec, set, *k, *budgetTBHr, *workers, *shards,
			*shardBudget, *incremental, *triggerCommits, *reconcileEvery,
			*retainSnapshots, *checkpointEvery, *decideShards, *decideWorkers)
		provenance = "file:" + *policyPath
	} else {
		spec = flagSpec()
	}

	status := &statusState{policyPath: *policyPath, daysPlanned: *days}
	opts := tenant.Options{
		// The default tenant emits on the process-wide tracer, so -trace,
		// /statusz, and the log lines keep their single-lake meaning.
		Tracer:     telemetry.DefaultTracer(),
		Provenance: provenance,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
		OnCycle: func(ev telemetry.CycleEvent, _ *core.Report) {
			// The cycle's telemetry event is the log line: one snapshot
			// renders the log, the JSONL trace, /statusz, and /metrics, so
			// they cannot drift apart.
			fmt.Println(ev.String())
			status.update(ev.Policy, ev.Day, false)
		},
	}
	if watcher != nil {
		// Hot reload: a changed, valid policy file swaps the pipeline in
		// atomically between cycles; a bad edit keeps the current policy.
		opts.PollPolicy = func() (*policy.Spec, bool, error) {
			sp, changed, err := watcher.Poll()
			if err != nil || !changed {
				return nil, false, err
			}
			sp = sp.Clone()
			applyFlagOverrides(sp, set, *k, *budgetTBHr, *workers, *shards,
				*shardBudget, *incremental, *triggerCommits, *reconcileEvery,
				*retainSnapshots, *checkpointEvery, *decideShards, *decideWorkers)
			return sp, true, nil
		}
	}

	mgr := tenant.NewManager()
	def, err := mgr.Create(tenant.Config{
		Name:                 "default",
		Seed:                 *seed,
		Days:                 *days,
		InitialTables:        *tables,
		DailyWriteProb:       *writeFrac,
		WriterCommitsPerHour: *writerRate,
	}, spec, opts)
	if err != nil {
		log.Fatal(err)
	}

	name := spec.Name
	if name == "" {
		name = "(unnamed)"
	}
	st := def.Status()
	fmt.Printf("autocompd: %d tables, %d files, %d metadata objects, %.0f%% under 128MB\n",
		st.Fleet.Tables, st.Fleet.Files, st.Fleet.MetaObjects, 100*st.Fleet.TinyFrac)
	fmt.Printf("policy: %s%s\n", name, map[bool]string{true: " (from " + *policyPath + ", hot-reloadable)", false: " (from flags)"}[*policyPath != ""])
	printPlanes(def.Service())
	status.update(name, 0, false)

	var srv *httpServer
	if *listen != "" {
		mgmt := &server.Server{
			Mgr:          mgr,
			ScenariosDir: *scenariosDir,
			Logf:         opts.Logf,
			TuneWorkers:  *tuneWorkers,
		}
		srv, err = serveTelemetry(*listen, status, mgmt.Register)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry: listening on %s (/metrics /statusz /healthz /debug/pprof /api/tenants)\n", srv.addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := mgr.Start(def); err != nil {
		log.Fatal(err)
	}

	var runErr error
	select {
	case <-def.Done():
		runErr = def.Err()
		status.finish(def.Day())
		if runErr == nil && *listen != "" {
			fmt.Println("autocompd: run complete; still serving telemetry (interrupt to exit)")
			<-ctx.Done()
			fmt.Println("autocompd: signal received; draining")
		}
	case <-ctx.Done():
		fmt.Println("autocompd: signal received; draining")
	}
	stop()

	// Graceful shutdown: drain in-flight tenant cycles, stop the HTTP
	// plane, flush the decision trace.
	if err := mgr.Shutdown(*drainTimeout); err != nil {
		fmt.Printf("autocompd: %v\n", err)
	}
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		_ = srv.srv.Shutdown(sctx)
		cancel()
	}
	if traceFile != nil {
		telemetry.DefaultTracer().SetWriter(nil)
		if err := traceFile.Close(); err != nil {
			fmt.Printf("autocompd: closing trace: %v\n", err)
		}
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}

// printPlanes reports which planes the compiled policy enabled.
func printPlanes(svc *fleet.SpecService) {
	if svc.Sched != nil {
		sc := svc.Compiled.Sched
		fmt.Printf("execution plane: %d workers over %d shards\n", sc.Workers, sc.Shards)
	}
	if svc.Compiled.DecideShards > 1 {
		fmt.Printf("decide plane: sharded over %d shards\n", svc.Compiled.DecideShards)
	}
	if svc.Feed != nil {
		tr := svc.Compiled.Trigger
		fmt.Printf("observation plane: incremental (trigger every %d commits, reconcile every %d cycles)\n",
			tr.EveryCommits, svc.Compiled.ReconcileEvery)
	}
	if st := svc.Compiled.Storage; st.Durable() {
		fsync := st.Fsync
		if fsync == "" {
			fsync = "none"
		}
		fmt.Printf("storage plane: durable log at %s (fsync %s)\n", st.Root, fsync)
	}
}

// applyFlagOverrides layers the explicitly set pipeline flags onto a
// spec: a -policy file states the intent, flags adjust it for one run.
func applyFlagOverrides(sp *policy.Spec, set map[string]bool,
	k int, budgetTBHr float64, workers, shards int, shardBudgetTBHr float64,
	incremental bool, triggerCommits int64, reconcileEvery int,
	retainSnapshots int, checkpointEvery int64,
	decideShards, decideWorkers int) {

	if set["k"] && k > 0 {
		sp.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(k)}}
	} else if set["budget-tbhr"] {
		sp.Selector = &policy.Component{Name: "budget", Params: map[string]any{"budget_gbhr": budgetTBHr * 1024}}
	}
	if set["workers"] {
		if workers <= 0 {
			sp.Execution = nil
		} else {
			ensureExecution(sp).Workers = workers
		}
	}
	if sp.Execution != nil {
		if set["shards"] {
			sp.Execution.Shards = shards
		}
		if set["shard-budget-tbhr"] {
			sp.Execution.ShardBudgetGBHr = shardBudgetTBHr * 1024
		}
	}
	if set["decide-shards"] {
		if decideShards <= 1 {
			if sp.Execution != nil {
				sp.Execution.DecideShards, sp.Execution.DecideWorkers = 0, 0
			}
		} else {
			ensureExecution(sp).DecideShards = decideShards
		}
	}
	if set["decide-workers"] && sp.Execution != nil && sp.Execution.DecideShards > 1 {
		sp.Execution.DecideWorkers = decideWorkers
	}
	if set["incremental"] {
		if incremental {
			ensureTrigger(sp)
		} else {
			sp.Trigger = nil
		}
	}
	if set["trigger-commits"] && sp.Trigger != nil {
		ensureTrigger(sp).EveryCommits = triggerCommits
	}
	if set["reconcile-every"] && sp.Trigger != nil {
		ensureTrigger(sp).ReconcileEvery = reconcileEvery
	}
	if sp.Maintenance != nil {
		if set["retain-snapshots"] {
			sp.Maintenance.RetainSnapshots = retainSnapshots
		}
		if set["checkpoint-every"] {
			sp.Maintenance.CheckpointEveryVersions = checkpointEvery
		}
	}
}

func ensureExecution(sp *policy.Spec) *policy.ExecutionSpec {
	if sp.Execution == nil {
		sp.Execution = &policy.ExecutionSpec{Workers: 8, Shards: 4}
	}
	return sp.Execution
}

func ensureTrigger(sp *policy.Spec) *policy.TriggerSpec {
	if sp.Trigger == nil {
		sp.Trigger = &policy.TriggerSpec{EveryCommits: 1}
	}
	return sp.Trigger
}
