// Command autocompd runs AutoComp as a standalone periodic service (§5's
// pull deployment) over a simulated lake: a fleet of tables accretes
// small files (and per-commit metadata) while the service wakes on its
// schedule, decides, and maintains within its budget, printing one line
// per cycle with a per-action breakdown. In unified mode (the default)
// snapshot expiry, metadata checkpointing, and manifest rewriting rank
// against data compaction in one MOOP under the same budget selector.
// With -workers > 0 (the default) the act phase runs on the concurrent
// execution plane — a worker pool with per-table leases, optimistic
// commit retry against live writers, and sharded GBHr budgets — and each
// cycle also prints makespan, utilization, queue depth, and
// conflict/retry/backpressure counts.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/scheduler"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	tables := flag.Int("tables", 1000, "fleet size")
	days := flag.Int("days", 14, "days to simulate (one cycle per day)")
	k := flag.Int("k", 0, "fixed top-k selection (0 = use budget)")
	budgetTBHr := flag.Float64("budget-tbhr", 50, "per-cycle compute budget (TBHr)")
	quotaAdaptive := flag.Bool("quota-adaptive", true, "use quota-adaptive MOOP weights (data-only mode)")
	unified := flag.Bool("unified", true, "rank metadata maintenance (expiry/checkpoint/manifest rewrite) in the same budget as data compaction")
	checkpointEvery := flag.Int64("checkpoint-every", 100, "commits between metadata checkpoints (unified mode)")
	retainSnapshots := flag.Int("retain-snapshots", 20, "snapshots kept by expiry (unified mode)")
	workers := flag.Int("workers", 8, "concurrent compaction job slots (0 = serial act phase)")
	shards := flag.Int("shards", 4, "GBHr budget shards for the execution plane")
	shardBudget := flag.Float64("shard-budget-tbhr", 0, "per-shard per-cycle budget (TBHr, 0 = unlimited)")
	writerRate := flag.Float64("writer-rate", 30, "live writer commits/hour racing the compactor (scheduled mode)")
	flag.Parse()

	clock := sim.NewClock()
	cfg := fleet.DefaultConfig()
	cfg.Seed = *seed
	cfg.InitialTables = *tables
	f := fleet.New(cfg, clock)
	model := fleet.DefaultModel(512 * storage.MB)

	var selector core.Selector = core.BudgetSelector{BudgetGBHr: *budgetTBHr * 1024}
	if *k > 0 {
		selector = core.TopK{K: *k}
	}
	var svc *core.Service
	var err error
	if *unified {
		svc, err = f.MaintenanceService(selector, model, maintenance.Policy{
			RetainSnapshots:         *retainSnapshots,
			CheckpointEveryVersions: *checkpointEvery,
			MinManifestSurplus:      8,
		})
	} else {
		svc, err = f.Service(selector, model)
	}
	if err != nil {
		log.Fatal(err)
	}
	if !*unified && !*quotaAdaptive {
		// Rebuild with static weights via the generic facade config.
		cost := core.ComputeCost{
			ExecutorMemoryGB:    model.ExecutorMemoryGB,
			RewriteBytesPerHour: model.RewriteBytesPerHour,
		}
		svc, err = core.NewService(core.Config{
			Connector:    fleet.Connector{Fleet: f},
			Generator:    core.TableScopeGenerator{},
			Observer:     fleet.Observer{Fleet: f},
			StatsFilters: []core.Filter{core.MinSmallFiles{Min: 2}},
			Traits:       []core.Trait{core.FileCountReduction{}, cost},
			Ranker: core.MOOPRanker{Objectives: []core.Objective{
				{Trait: core.FileCountReduction{}, Weight: 0.7},
				{Trait: cost, Weight: 0.3},
			}},
			Selector:  selector,
			Scheduler: core.SequentialScheduler{},
			Runner:    fleet.Runner{Fleet: f, Model: model},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	var sched *fleet.ScheduledService
	if *workers > 0 {
		sched = f.ScheduleService(svc, model, fleet.SchedOptions{
			Workers:              *workers,
			Shards:               *shards,
			ShardBudgetGBHr:      *shardBudget * 1024,
			WriterCommitsPerHour: *writerRate,
		})
	}

	fmt.Printf("autocompd: %d tables, %d files, %d metadata objects, %.0f%% under 128MB\n",
		f.TableCount(), f.TotalFiles(), f.TotalMetadataObjects(), 100*f.TinyFileFraction())
	if sched != nil {
		fmt.Printf("execution plane: %d workers over %d shards (writer rate %.0f commits/h)\n",
			*workers, *shards, *writerRate)
	}
	for d := 1; d <= *days; d++ {
		f.AdvanceDay()
		var (
			rep   *core.Report
			stats scheduler.Stats
			err   error
		)
		if sched != nil {
			rep, stats, err = sched.RunCycle()
		} else {
			rep, err = svc.RunOnce()
		}
		if err != nil {
			log.Fatal(err)
		}
		counts := rep.ActionCounts()
		fmt.Printf("day %3d: candidates=%4d selected=%4d reduced=%8d files  cost=%7.1f TBHr  actions[data=%d expire=%d ckpt=%d manifest=%d]  fleet=%9d files %8d meta (%4.0f%% tiny)\n",
			d, rep.Decision.Generated, len(rep.Decision.Selected),
			rep.FilesReduced, rep.ActualGBHr/1024,
			counts[core.ActionDataCompaction], counts[core.ActionSnapshotExpiry],
			counts[core.ActionMetadataCheckpoint], counts[core.ActionManifestRewrite],
			f.TotalFiles(), f.TotalMetadataObjects(), 100*f.TinyFileFraction())
		if sched != nil {
			fmt.Printf("         sched: makespan=%8v util=%3.0f%%  queue[max=%3d mean=%5.1f]  conflicts=%3d retries=%3d deferred=%3d\n",
				stats.Makespan.Round(time.Second), 100*stats.Utilization(),
				stats.MaxQueueDepth, stats.MeanQueueDepth,
				stats.Conflicts, stats.Retries, stats.Deferred)
		}
	}
}
