// Command autocompd runs AutoComp as a standalone periodic service (§5's
// pull deployment) over a simulated lake: a fleet of tables accretes
// small files (and per-commit metadata) while the service wakes on its
// schedule, decides, and maintains within its budget, printing one line
// per cycle with a per-action breakdown. In unified mode (the default)
// snapshot expiry, metadata checkpointing, and manifest rewriting rank
// against data compaction in one MOOP under the same budget selector.
// With -workers > 0 (the default) the act phase runs on the concurrent
// execution plane — a worker pool with per-table leases, optimistic
// commit retry against live writers, and sharded GBHr budgets — and each
// cycle also prints makespan, utilization, queue depth, and
// conflict/retry/backpressure counts.
//
// With -incremental the observe phase is commit-event-driven instead of
// full-scan: table commits publish to a changefeed, only dirty tables
// are re-observed (clean tables answer from a version-keyed stats
// cache), and each cycle prints how many tables were scanned versus the
// fleet size. Pair it with -write-frac < 1 to model a fleet where most
// tables are cold on any given day — the regime where incremental
// observation collapses per-cycle observe cost from O(fleet) to
// O(dirty).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/scheduler"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	tables := flag.Int("tables", 1000, "fleet size")
	days := flag.Int("days", 14, "days to simulate (one cycle per day)")
	k := flag.Int("k", 0, "fixed top-k selection (0 = use budget)")
	budgetTBHr := flag.Float64("budget-tbhr", 50, "per-cycle compute budget (TBHr)")
	quotaAdaptive := flag.Bool("quota-adaptive", true, "use quota-adaptive MOOP weights (data-only mode)")
	unified := flag.Bool("unified", true, "rank metadata maintenance (expiry/checkpoint/manifest rewrite) in the same budget as data compaction")
	checkpointEvery := flag.Int64("checkpoint-every", 100, "commits between metadata checkpoints (unified mode)")
	retainSnapshots := flag.Int("retain-snapshots", 20, "snapshots kept by expiry (unified mode)")
	workers := flag.Int("workers", 8, "concurrent compaction job slots (0 = serial act phase)")
	shards := flag.Int("shards", 4, "GBHr budget shards for the execution plane")
	shardBudget := flag.Float64("shard-budget-tbhr", 0, "per-shard per-cycle budget (TBHr, 0 = unlimited)")
	writerRate := flag.Float64("writer-rate", 30, "live writer commits/hour racing the compactor (scheduled mode)")
	incremental := flag.Bool("incremental", false, "commit-event-driven observation: re-observe only dirty tables")
	writeFrac := flag.Float64("write-frac", 1, "per-table probability of writing on a given day, in (0,1); values outside that range (including 0) mean every table writes daily")
	triggerCommits := flag.Int64("trigger-commits", 1, "commits before a table turns dirty (incremental mode; 1 preserves full-scan decision parity)")
	reconcileEvery := flag.Int("reconcile-every", 0, "full-scan reconciliation every N cycles (incremental mode, 0 = never)")
	flag.Parse()

	clock := sim.NewClock()
	cfg := fleet.DefaultConfig()
	cfg.Seed = *seed
	cfg.InitialTables = *tables
	cfg.DailyWriteProb = *writeFrac
	f := fleet.New(cfg, clock)
	model := fleet.DefaultModel(512 * storage.MB)

	var selector core.Selector = core.BudgetSelector{BudgetGBHr: *budgetTBHr * 1024}
	if *k > 0 {
		selector = core.TopK{K: *k}
	}

	var ccfg core.Config
	switch {
	case *unified:
		ccfg = f.MaintenanceConfig(selector, model, maintenance.Policy{
			RetainSnapshots:         *retainSnapshots,
			CheckpointEveryVersions: *checkpointEvery,
			MinManifestSurplus:      8,
		})
	case *quotaAdaptive:
		ccfg = f.ServiceConfig(selector, model)
	default:
		// Data-only with static weights instead of the quota-adaptive
		// production weighting.
		ccfg = f.ServiceConfig(selector, model)
		cost := core.ComputeCost{
			ExecutorMemoryGB:    model.ExecutorMemoryGB,
			RewriteBytesPerHour: model.RewriteBytesPerHour,
		}
		ccfg.Ranker = core.MOOPRanker{Objectives: []core.Objective{
			{Trait: core.FileCountReduction{}, Weight: 0.7},
			{Trait: cost, Weight: 0.3},
		}}
	}

	var feed *changefeed.Feed
	if *incremental {
		ccfg, feed = f.IncrementalConfig(ccfg, fleet.IncrOptions{
			Trigger:        changefeed.TriggerPolicy{EveryCommits: *triggerCommits},
			ReconcileEvery: *reconcileEvery,
		})
	}
	svc, err := core.NewService(ccfg)
	if err != nil {
		log.Fatal(err)
	}

	var sched *fleet.ScheduledService
	if *workers > 0 {
		sched = f.ScheduleService(svc, model, fleet.SchedOptions{
			Workers:              *workers,
			Shards:               *shards,
			ShardBudgetGBHr:      *shardBudget * 1024,
			WriterCommitsPerHour: *writerRate,
		})
	}

	fmt.Printf("autocompd: %d tables, %d files, %d metadata objects, %.0f%% under 128MB\n",
		f.TableCount(), f.TotalFiles(), f.TotalMetadataObjects(), 100*f.TinyFileFraction())
	if sched != nil {
		fmt.Printf("execution plane: %d workers over %d shards (writer rate %.0f commits/h)\n",
			*workers, *shards, *writerRate)
	}
	if feed != nil {
		fmt.Printf("observation plane: incremental (trigger every %d commits, reconcile every %d cycles, write-frac %.2f)\n",
			*triggerCommits, *reconcileEvery, *writeFrac)
	}
	var prevCache changefeed.CacheCounters
	for d := 1; d <= *days; d++ {
		f.AdvanceDay()
		var (
			rep   *core.Report
			stats scheduler.Stats
			err   error
		)
		if sched != nil {
			rep, stats, err = sched.RunCycle()
		} else {
			rep, err = svc.RunOnce()
		}
		if err != nil {
			log.Fatal(err)
		}
		counts := rep.ActionCounts()
		fmt.Printf("day %3d: candidates=%4d selected=%4d reduced=%8d files  cost=%7.1f TBHr  actions[data=%d expire=%d ckpt=%d manifest=%d]  fleet=%9d files %8d meta (%4.0f%% tiny)\n",
			d, rep.Decision.Generated, len(rep.Decision.Selected),
			rep.FilesReduced, rep.ActualGBHr/1024,
			counts[core.ActionDataCompaction], counts[core.ActionSnapshotExpiry],
			counts[core.ActionMetadataCheckpoint], counts[core.ActionManifestRewrite],
			f.TotalFiles(), f.TotalMetadataObjects(), 100*f.TinyFileFraction())
		if sched != nil {
			fmt.Printf("         sched: makespan=%8v util=%3.0f%%  queue[max=%3d mean=%5.1f]  conflicts=%3d retries=%3d deferred=%3d\n",
				stats.Makespan.Round(time.Second), 100*stats.Utilization(),
				stats.MaxQueueDepth, stats.MeanQueueDepth,
				stats.Conflicts, stats.Retries, stats.Deferred)
		}
		if feed != nil {
			scan := feed.LastScan()
			cc := feed.Cache.Counters()
			mode := "dirty-only"
			if scan.Full {
				mode = "full-scan"
			}
			fmt.Printf("         incr:  scanned=%4d/%d tables (%s)  pool=%4d  observes=%4d cache-hits=%4d  dirty-now=%d\n",
				scan.Scanned, f.TableCount(), mode, scan.Pool,
				cc.Misses-prevCache.Misses, cc.Hits-prevCache.Hits,
				feed.Tracker.DirtyCount())
			prevCache = cc
		}
	}
}
