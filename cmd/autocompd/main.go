// Command autocompd runs AutoComp as a standalone periodic service (§5's
// pull deployment) over a simulated lake: a fleet of tables accretes
// small files while the service wakes on its schedule, decides, and
// compacts within its budget, printing one line per cycle.
package main

import (
	"flag"
	"fmt"
	"log"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	tables := flag.Int("tables", 1000, "fleet size")
	days := flag.Int("days", 14, "days to simulate (one cycle per day)")
	k := flag.Int("k", 0, "fixed top-k selection (0 = use budget)")
	budgetTBHr := flag.Float64("budget-tbhr", 50, "per-cycle compute budget (TBHr)")
	quotaAdaptive := flag.Bool("quota-adaptive", true, "use quota-adaptive MOOP weights")
	flag.Parse()

	clock := sim.NewClock()
	cfg := fleet.DefaultConfig()
	cfg.Seed = *seed
	cfg.InitialTables = *tables
	f := fleet.New(cfg, clock)
	model := fleet.DefaultModel(512 * storage.MB)

	var selector core.Selector = core.BudgetSelector{BudgetGBHr: *budgetTBHr * 1024}
	if *k > 0 {
		selector = core.TopK{K: *k}
	}
	svc, err := f.Service(selector, model)
	if err != nil {
		log.Fatal(err)
	}
	if !*quotaAdaptive {
		// Rebuild with static weights via the generic facade config.
		cost := core.ComputeCost{
			ExecutorMemoryGB:    model.ExecutorMemoryGB,
			RewriteBytesPerHour: model.RewriteBytesPerHour,
		}
		svc, err = core.NewService(core.Config{
			Connector:    fleet.Connector{Fleet: f},
			Generator:    core.TableScopeGenerator{},
			Observer:     fleet.Observer{Fleet: f},
			StatsFilters: []core.Filter{core.MinSmallFiles{Min: 2}},
			Traits:       []core.Trait{core.FileCountReduction{}, cost},
			Ranker: core.MOOPRanker{Objectives: []core.Objective{
				{Trait: core.FileCountReduction{}, Weight: 0.7},
				{Trait: cost, Weight: 0.3},
			}},
			Selector:  selector,
			Scheduler: core.SequentialScheduler{},
			Runner:    fleet.Runner{Fleet: f, Model: model},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("autocompd: %d tables, %d files, %.0f%% under 128MB\n",
		f.TableCount(), f.TotalFiles(), 100*f.TinyFileFraction())
	for d := 1; d <= *days; d++ {
		f.AdvanceDay()
		rep, err := svc.RunOnce()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %3d: candidates=%4d selected=%4d reduced=%8d files  cost=%7.1f TBHr  fleet=%9d files (%4.0f%% tiny)\n",
			d, rep.Decision.Generated, len(rep.Decision.Selected),
			rep.FilesReduced, rep.ActualGBHr/1024,
			f.TotalFiles(), 100*f.TinyFileFraction())
	}
}
