package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"autocomp/internal/telemetry"
)

// statusState is the daemon state /statusz serves. The run loop updates
// it under the mutex once per cycle; HTTP handlers read it concurrently.
type statusState struct {
	mu          sync.Mutex
	policy      string
	policyPath  string
	day         int
	daysPlanned int
	done        bool
}

func (st *statusState) update(policy string, day int, done bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.policy = policy
	st.day = day
	st.done = done
}

// StatusSnapshot is the /statusz payload: daemon identity plus the
// decision-trace view of the fleet, dirty set, and scheduler — the same
// CycleEvents the log lines render, so the three views cannot drift.
type StatusSnapshot struct {
	Policy         string                 `json:"policy"`
	PolicyPath     string                 `json:"policy_path,omitempty"`
	Day            int                    `json:"day"`
	DaysPlanned    int                    `json:"days_planned"`
	Done           bool                   `json:"done"`
	Cycles         int64                  `json:"cycles"`
	MetricFamilies int                    `json:"metric_families"`
	LastCycle      *telemetry.CycleEvent  `json:"last_cycle,omitempty"`
	RecentCycles   []telemetry.CycleEvent `json:"recent_cycles,omitempty"`
}

func (st *statusState) snapshot() StatusSnapshot {
	st.mu.Lock()
	snap := StatusSnapshot{
		Policy:      st.policy,
		PolicyPath:  st.policyPath,
		Day:         st.day,
		DaysPlanned: st.daysPlanned,
		Done:        st.done,
	}
	st.mu.Unlock()
	tr := telemetry.DefaultTracer()
	snap.Cycles = tr.Seq()
	snap.MetricFamilies = telemetry.Default().FamilyCount()
	if ev, ok := tr.Last(); ok {
		snap.LastCycle = &ev
	}
	snap.RecentCycles = tr.Recent(8)
	return snap
}

// serveTelemetry binds listen and serves /metrics (Prometheus text
// format), /statusz (JSON daemon snapshot), /healthz, and the pprof
// suite under /debug/pprof/. It returns the bound address (useful with
// ":0") and serves until the process exits.
func serveTelemetry(listen string, st *statusState) (string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(telemetry.Default()))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st.snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
