package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"autocomp/internal/telemetry"
)

// statusState is the daemon state /statusz serves. The run loop updates
// it under the mutex once per cycle; HTTP handlers read it concurrently.
type statusState struct {
	mu          sync.Mutex
	policy      string
	policyPath  string
	day         int
	daysPlanned int
	done        bool
}

func (st *statusState) update(policy string, day int, done bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.policy = policy
	st.day = day
	st.done = done
}

// finish marks the run done without disturbing the policy name the
// last cycle reported (it may have hot-reloaded mid-run).
func (st *statusState) finish(day int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.day = day
	st.done = true
}

// StatusSnapshot is the /statusz payload: daemon identity plus the
// decision-trace view of the fleet, dirty set, and scheduler — the same
// CycleEvents the log lines render, so the three views cannot drift.
type StatusSnapshot struct {
	Policy         string                 `json:"policy"`
	PolicyPath     string                 `json:"policy_path,omitempty"`
	Day            int                    `json:"day"`
	DaysPlanned    int                    `json:"days_planned"`
	Done           bool                   `json:"done"`
	Cycles         int64                  `json:"cycles"`
	MetricFamilies int                    `json:"metric_families"`
	LastCycle      *telemetry.CycleEvent  `json:"last_cycle,omitempty"`
	RecentCycles   []telemetry.CycleEvent `json:"recent_cycles,omitempty"`
}

func (st *statusState) snapshot() StatusSnapshot {
	st.mu.Lock()
	snap := StatusSnapshot{
		Policy:      st.policy,
		PolicyPath:  st.policyPath,
		Day:         st.day,
		DaysPlanned: st.daysPlanned,
		Done:        st.done,
	}
	st.mu.Unlock()
	tr := telemetry.DefaultTracer()
	snap.Cycles = tr.Seq()
	snap.MetricFamilies = telemetry.Default().FamilyCount()
	if ev, ok := tr.Last(); ok {
		snap.LastCycle = &ev
	}
	snap.RecentCycles = tr.Recent(8)
	return snap
}

// httpServer pairs the daemon's http.Server with its bound address
// (useful with ":0") so main can announce it and shut it down
// gracefully.
type httpServer struct {
	srv  *http.Server
	addr string
}

// serveTelemetry binds listen and serves /metrics (Prometheus text
// format), /statusz (JSON daemon snapshot), /healthz, the pprof suite
// under /debug/pprof/, and any extra routes register mounts (the
// management API). It serves until srv.Shutdown is called.
func serveTelemetry(listen string, st *statusState, register func(*http.ServeMux)) (*httpServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(telemetry.Default()))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st.snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if register != nil {
		register(mux)
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &httpServer{srv: srv, addr: ln.Addr().String()}, nil
}
