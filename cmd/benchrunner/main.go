// Command benchrunner regenerates the paper's tables and figures from the
// reproduction experiments. Each experiment prints the same rows/series
// the paper reports (see DESIGN.md §4 for the index).
//
// Usage:
//
//	benchrunner -exp fig6            # one experiment at paper scale
//	benchrunner -exp all -quick      # everything, scaled down
//	benchrunner -exp all -quick -json BENCH_autocomp.json
//	benchrunner -list
//
// With -json, a machine-readable bench trajectory is written alongside
// the rendered tables: per-experiment wall time, allocation footprint,
// and pipeline throughput sampled from the runtime telemetry registry.
// The committed BENCH_autocomp.json is regenerated with
// `benchrunner -exp all -quick -json BENCH_autocomp.json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"autocomp/internal/experiments"
	"autocomp/internal/telemetry"
)

// benchExperiment is one experiment's row in the -json trajectory.
type benchExperiment struct {
	ID         string  `json:"id"`
	Title      string  `json:"title"`
	DurationMS float64 `json:"duration_ms"`
	// OutputBytes is the size of the rendered tables/series — a cheap
	// proxy for how much of the paper's reporting surface the experiment
	// regenerates.
	OutputBytes int `json:"output_bytes"`
	// AllocMB is the heap allocated while the experiment ran (delta of
	// runtime.MemStats.TotalAlloc).
	AllocMB float64 `json:"alloc_mb"`
	// Cycles is how many OODA cycles the experiment drove through the
	// decision pipeline (delta of autocomp_core_cycles_total), and
	// CyclesPerSec the resulting decision throughput; both are zero for
	// experiments that exercise the storage/engine layers directly.
	Cycles       float64 `json:"cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// benchReport is the top-level -json payload.
type benchReport struct {
	GoVersion   string            `json:"go_version"`
	Seed        int64             `json:"seed"`
	Quick       bool              `json:"quick"`
	Experiments []benchExperiment `json:"experiments"`
	TotalMS     float64           `json:"total_ms"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, fig2, fig3, fig6, fig7, fig8, fig9, fig10a, fig10b, fig10c, fig11a, fig11b, table1, est, maint) or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "run scaled-down configurations")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "also write a machine-readable bench report to this file")
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ExpID, s.Title)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, s := range experiments.All() {
			ids = append(ids, s.ExpID)
		}
	}
	report := benchReport{GoVersion: runtime.Version(), Seed: *seed, Quick: *quick}
	for _, id := range ids {
		var ms0 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		cycles0, _ := telemetry.Default().Value("autocomp_core_cycles_total")
		start := time.Now()
		res, err := experiments.Run(id, *seed, *quick)
		if err != nil {
			log.SetFlags(0)
			log.Printf("experiment %s failed: %v", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		cycles1, _ := telemetry.Default().Value("autocomp_core_cycles_total")
		body := res.Render()
		fmt.Printf("==== %s ====\n%s\n", res.Title(), body)
		fmt.Printf("(%s completed in %v)\n\n", id, elapsed.Round(time.Millisecond))

		be := benchExperiment{
			ID:          id,
			Title:       res.Title(),
			DurationMS:  float64(elapsed) / float64(time.Millisecond),
			OutputBytes: len(body),
			AllocMB:     float64(ms1.TotalAlloc-ms0.TotalAlloc) / (1 << 20),
			Cycles:      cycles1 - cycles0,
		}
		if be.Cycles > 0 && elapsed > 0 {
			be.CyclesPerSec = be.Cycles / elapsed.Seconds()
		}
		report.Experiments = append(report.Experiments, be)
		report.TotalMS += be.DurationMS
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bench report: %s (%d experiments, %.0f ms total)\n",
			*jsonOut, len(report.Experiments), report.TotalMS)
	}
}
