// Command benchrunner regenerates the paper's tables and figures from the
// reproduction experiments. Each experiment prints the same rows/series
// the paper reports (see DESIGN.md §4 for the index).
//
// Usage:
//
//	benchrunner -exp fig6            # one experiment at paper scale
//	benchrunner -exp all -quick      # everything, scaled down
//	benchrunner -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"autocomp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, fig2, fig3, fig6, fig7, fig8, fig9, fig10a, fig10b, fig10c, fig11a, fig11b, table1, est, maint) or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "run scaled-down configurations")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ExpID, s.Title)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, s := range experiments.All() {
			ids = append(ids, s.ExpID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, *seed, *quick)
		if err != nil {
			log.SetFlags(0)
			log.Printf("experiment %s failed: %v", id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n%s\n", res.Title(), res.Render())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
