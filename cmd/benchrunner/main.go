// Command benchrunner regenerates the paper's tables and figures from the
// reproduction experiments. Each experiment prints the same rows/series
// the paper reports (see DESIGN.md §4 for the index).
//
// Usage:
//
//	benchrunner -exp fig6            # one experiment at paper scale
//	benchrunner -exp all -quick      # everything, scaled down
//	benchrunner -exp all -quick -json BENCH_autocomp.json
//	benchrunner -check BENCH_autocomp.json   # validate a report's schema
//	benchrunner -list
//
// With -json, a machine-readable bench trajectory is written alongside
// the rendered tables: per-experiment wall time, allocation footprint,
// and pipeline throughput sampled from the runtime telemetry registry.
// The committed BENCH_autocomp.json is regenerated with
// `benchrunner -exp all -quick -json BENCH_autocomp.json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"autocomp/internal/experiments"
	"autocomp/internal/telemetry"
)

// benchExperiment is one experiment's row in the -json trajectory.
type benchExperiment struct {
	ID         string  `json:"id"`
	Title      string  `json:"title"`
	DurationMS float64 `json:"duration_ms"`
	// OutputBytes is the size of the rendered tables/series — a cheap
	// proxy for how much of the paper's reporting surface the experiment
	// regenerates.
	OutputBytes int `json:"output_bytes"`
	// AllocMB is the heap allocated while the experiment ran (delta of
	// runtime.MemStats.TotalAlloc).
	AllocMB float64 `json:"alloc_mb"`
	// Cycles is how many OODA cycles the experiment drove through the
	// decision pipeline (delta of autocomp_core_cycles_total), and
	// CyclesPerSec the resulting decision throughput; both are zero for
	// experiments that exercise the storage/engine layers directly.
	Cycles       float64 `json:"cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// Details carries experiment-specific structured results for
	// experiments that expose them (e.g. the shard sweep's measured and
	// projected decide speedups per shard count).
	Details any `json:"details,omitempty"`
}

// benchReport is the top-level -json payload.
type benchReport struct {
	GoVersion   string            `json:"go_version"`
	Seed        int64             `json:"seed"`
	Quick       bool              `json:"quick"`
	Experiments []benchExperiment `json:"experiments"`
	TotalMS     float64           `json:"total_ms"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, fig2, fig3, fig6, fig7, fig8, fig9, fig10a, fig10b, fig10c, fig11a, fig11b, table1, est, incr, maint, persist, sched, shard, tune) or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "run scaled-down configurations")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "also write a machine-readable bench report to this file")
	check := flag.String("check", "", "validate a previously written -json report against the schema and exit (non-zero on empty or malformed reports)")
	flag.Parse()

	if *check != "" {
		if err := checkReport(*check); err != nil {
			log.SetFlags(0)
			log.Fatalf("benchrunner: %s: %v", *check, err)
		}
		return
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ExpID, s.Title)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, s := range experiments.All() {
			ids = append(ids, s.ExpID)
		}
	}
	report := benchReport{GoVersion: runtime.Version(), Seed: *seed, Quick: *quick}
	for _, id := range ids {
		var ms0 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		cycles0, _ := telemetry.Default().Value("autocomp_core_cycles_total")
		start := time.Now()
		res, err := experiments.Run(id, *seed, *quick)
		if err != nil {
			log.SetFlags(0)
			log.Printf("experiment %s failed: %v", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		cycles1, _ := telemetry.Default().Value("autocomp_core_cycles_total")
		body := res.Render()
		fmt.Printf("==== %s ====\n%s\n", res.Title(), body)
		fmt.Printf("(%s completed in %v)\n\n", id, elapsed.Round(time.Millisecond))

		be := benchExperiment{
			ID:          id,
			Title:       res.Title(),
			DurationMS:  float64(elapsed) / float64(time.Millisecond),
			OutputBytes: len(body),
			AllocMB:     float64(ms1.TotalAlloc-ms0.TotalAlloc) / (1 << 20),
			Cycles:      cycles1 - cycles0,
		}
		if be.Cycles > 0 && elapsed > 0 {
			be.CyclesPerSec = be.Cycles / elapsed.Seconds()
		}
		if d, ok := res.(interface{ Details() any }); ok {
			be.Details = d.Details()
		}
		report.Experiments = append(report.Experiments, be)
		report.TotalMS += be.DurationMS
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bench report: %s (%d experiments, %.0f ms total)\n",
			*jsonOut, len(report.Experiments), report.TotalMS)
	}
}

// checkReport validates a -json bench report: it must parse into the
// schema, carry at least one experiment, and every experiment must have
// an identity and a positive wall time and output size. CI runs this on
// both the committed trajectory and each freshly generated report, so
// an empty or truncated BENCH_*.json fails the bench job instead of
// silently shipping.
func checkReport(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("report is empty")
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return fmt.Errorf("malformed report: %v", err)
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	if len(rep.Experiments) == 0 {
		return fmt.Errorf("no experiments in report")
	}
	if rep.TotalMS <= 0 {
		return fmt.Errorf("total_ms = %v, want > 0", rep.TotalMS)
	}
	seen := make(map[string]bool, len(rep.Experiments))
	for i, e := range rep.Experiments {
		switch {
		case e.ID == "":
			return fmt.Errorf("experiment %d: missing id", i)
		case seen[e.ID]:
			return fmt.Errorf("experiment %d: duplicate id %q", i, e.ID)
		case e.Title == "":
			return fmt.Errorf("experiment %s: missing title", e.ID)
		case e.DurationMS <= 0:
			return fmt.Errorf("experiment %s: duration_ms = %v, want > 0", e.ID, e.DurationMS)
		case e.OutputBytes <= 0:
			return fmt.Errorf("experiment %s: output_bytes = %d, want > 0 (empty render)", e.ID, e.OutputBytes)
		case e.Cycles < 0:
			return fmt.Errorf("experiment %s: cycles = %v, want >= 0", e.ID, e.Cycles)
		}
		seen[e.ID] = true
	}
	fmt.Printf("bench report OK: %d experiments, %.0f ms total (%s)\n",
		len(rep.Experiments), rep.TotalMS, rep.GoVersion)
	return nil
}
