package autocomp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/policy"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/sim"
)

// decisionFingerprint and parityFleetConfig live in the shared testkit;
// these aliases keep the parity tests reading naturally.
var decisionFingerprint = testkit.DecisionFingerprint

func parityFleetConfig(seed int64) fleet.Config {
	return testkit.FleetConfig(seed, 300)
}

// runParity ages two identically seeded fleets — one deciding through
// the hand-wired service, one through the spec-compiled service — and
// requires byte-identical decisions every cycle while both act on their
// own fleet.
func runParity(t *testing.T, seed int64, days int,
	handWired func(f *fleet.Fleet, model fleet.CompactionModel) (*core.Service, error),
	spec func() *policy.Spec) {
	t.Helper()
	model := testkit.Model()
	fHand := fleet.New(parityFleetConfig(seed), sim.NewClock())
	fSpec := fleet.New(parityFleetConfig(seed), sim.NewClock())

	hand, err := handWired(fHand, model)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := fSpec.ServiceFromSpec(spec(), model, fleet.SpecRunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for d := 1; d <= days; d++ {
		fHand.AdvanceDay()
		fSpec.AdvanceDay()
		dHand, err := hand.Decide()
		if err != nil {
			t.Fatal(err)
		}
		dSpec, err := ss.Svc.Decide()
		if err != nil {
			t.Fatal(err)
		}
		fpHand, fpSpec := decisionFingerprint(dHand), decisionFingerprint(dSpec)
		if fpHand != fpSpec {
			t.Fatalf("seed %d day %d: decisions diverge\nhand-wired:\n%s\nspec-compiled:\n%s",
				seed, d, head(fpHand, 30), head(fpSpec, 30))
		}
		if _, err := hand.Act(dHand); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.Svc.Act(dSpec); err != nil {
			t.Fatal(err)
		}
	}
}

func head(s string, n int) string { return testkit.Head(s, n) }

// TestDefaultSpecFileParity is the acceptance check: the spec compiled
// from examples/policies/default.json produces byte-identical Decide()
// output to the hand-wired default pipeline (fleet.MaintenanceConfig
// with the default policy and the 50 TBHr budget selector) on the same
// seed, cycle after cycle.
func TestDefaultSpecFileParity(t *testing.T) {
	loaded, err := policy.LoadFile(filepath.Join("examples", "policies", "default.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 42} {
		runParity(t, seed, 6,
			func(f *fleet.Fleet, model fleet.CompactionModel) (*core.Service, error) {
				return f.MaintenanceService(
					core.BudgetSelector{BudgetGBHr: 50 * 1024}, model,
					maintenance.Policy{
						RetainSnapshots:         20,
						CheckpointEveryVersions: 100,
						MinManifestSurplus:      8,
					})
			},
			func() *policy.Spec { return loaded.Clone() })
	}
}

// TestDefaultSpecFileMatchesBuiltin pins the shipped default.json to
// policy.DefaultSpec(): editing one without the other fails here.
func TestDefaultSpecFileMatchesBuiltin(t *testing.T) {
	loaded, err := policy.LoadFile(filepath.Join("examples", "policies", "default.json"))
	if err != nil {
		t.Fatal(err)
	}
	if d := policy.Diff(loaded, policy.DefaultSpec()); len(d) != 0 {
		t.Fatalf("default.json diverges from policy.DefaultSpec():\n%s", strings.Join(d, "\n"))
	}
}

// TestDataSpecParity covers the data-only pipeline: the spec form of
// fleet.ServiceConfig (quota-adaptive MOOP) decides identically to the
// hand-wired construction.
func TestDataSpecParity(t *testing.T) {
	runParity(t, 3, 6,
		func(f *fleet.Fleet, model fleet.CompactionModel) (*core.Service, error) {
			return f.Service(core.BudgetSelector{BudgetGBHr: 50 * 1024}, model)
		},
		func() *policy.Spec {
			s := policy.DefaultDataSpec(true)
			s.Selector = &policy.Component{Name: "budget", Params: map[string]any{"budget_gbhr": float64(50 * 1024)}}
			return s
		})
}

// TestIncrementalSpecParity covers the observation plane: a spec with an
// every-commit trigger decides identically to the hand-wired
// incremental maintenance service.
func TestIncrementalSpecParity(t *testing.T) {
	model := testkit.Model()
	cfg := parityFleetConfig(5)
	cfg.DailyWriteProb = 0.3
	fHand := fleet.New(cfg, sim.NewClock())
	fSpec := fleet.New(cfg, sim.NewClock())

	hand, _, err := fHand.IncrementalMaintenanceService(
		core.TopK{K: 40}, model, maintenance.DefaultPolicy(), fleet.IncrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := policy.DefaultSpec()
	spec.Execution = nil
	spec.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(40)}}
	spec.Trigger = &policy.TriggerSpec{EveryCommits: 1}
	ss, err := fSpec.ServiceFromSpec(spec, model, fleet.SpecRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Feed == nil {
		t.Fatal("trigger section did not enable the observation plane")
	}

	for d := 1; d <= 6; d++ {
		fHand.AdvanceDay()
		fSpec.AdvanceDay()
		dHand, err := hand.Decide()
		if err != nil {
			t.Fatal(err)
		}
		dSpec, err := ss.Svc.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if decisionFingerprint(dHand) != decisionFingerprint(dSpec) {
			t.Fatalf("day %d: incremental decisions diverge", d)
		}
		if _, err := hand.Act(dHand); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.Svc.Act(dSpec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHotReloadBetweenCycles exercises the acceptance flow end to end:
// a running fleet service is rebuilt from an edited spec file between
// cycles, and the new policy (a tighter selector) takes effect on the
// next decision.
func TestHotReloadBetweenCycles(t *testing.T) {
	model := testkit.Model()
	f := fleet.New(parityFleetConfig(2), sim.NewClock())

	dir := t.TempDir()
	path := filepath.Join(dir, "policy.json")
	writeSpec := func(s *policy.Spec) {
		b, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	base := policy.DefaultSpec()
	base.Execution = nil
	writeSpec(base)

	w, spec, err := policy.NewWatcher(path, f.PolicyEnv(model))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := f.ServiceFromSpec(spec, model, fleet.SpecRunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Cycle 1 under the budget selector: many tables selected.
	f.AdvanceDay()
	rep, _, err := svc.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decision.Selected) <= 2 {
		t.Fatalf("budget cycle selected %d, want > 2", len(rep.Decision.Selected))
	}

	// Edit the file between cycles: top-k 2.
	edited := policy.DefaultSpec()
	edited.Execution = nil
	edited.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(2)}}
	writeSpec(edited)
	newSpec, changed, err := w.Poll()
	if err != nil || !changed {
		t.Fatalf("poll = %v, %v", changed, err)
	}
	svc, err = f.ServiceFromSpec(newSpec, model, fleet.SpecRunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Cycle 2 runs under the new policy without restarting anything.
	f.AdvanceDay()
	rep, _, err = svc.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decision.Selected) != 2 {
		t.Fatalf("reloaded cycle selected %d, want 2", len(rep.Decision.Selected))
	}
}
