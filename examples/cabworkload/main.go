// Command cabworkload runs the paper's §6 synthetic evaluation at reduced
// scale: a CAB-generated multi-database workload (TPC-H schemas, four
// stream patterns) against three compaction strategies, reporting file
// counts, compaction cost, latency, and conflicts — the data behind
// Figures 6–8 and Table 1.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"autocomp/internal/bench"
	"autocomp/internal/metrics"
	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	databases := flag.Int("databases", 10, "CAB databases")
	dataGB := flag.Int64("data-gb", 40, "total raw data (GB)")
	hours := flag.Int("hours", 3, "experiment duration (hours)")
	flag.Parse()

	cfg := workload.CABConfig{
		RawDataBytes: *dataGB * storage.GB,
		Databases:    *databases,
		CPUHours:     1,
		Duration:     time.Duration(*hours) * time.Hour,
		Months:       36,
		Seed:         *seed,
	}
	strategies := []bench.Strategy{
		{Kind: bench.NoCompaction},
		{Kind: bench.MOOPTable, TopK: 10},
		{Kind: bench.MOOPHybrid, TopK: 500},
	}

	for _, strat := range strategies {
		res, err := bench.RunCAB(bench.CABRunConfig{Workload: cfg, Strategy: strat, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", strat.Label())
		fmt.Printf("queries: %d (failures %d)  end-to-end: %v\n",
			res.Queries, res.Failures, res.EndToEnd.Round(time.Minute))
		fc := res.FileCounts
		fmt.Printf("file count: start %.0f → end %.0f\n", fc.Points[0].V, fc.Last())
		if len(res.CompactionGBHrs) > 0 {
			fmt.Printf("compaction: %d ops, mean %.3f GBHr (std %.3f), %d files reduced\n",
				len(res.CompactionGBHrs),
				metrics.Mean(res.CompactionGBHrs), metrics.StdDev(res.CompactionGBHrs),
				res.FilesReducedTotal)
		}
		var rows [][]string
		for _, h := range res.Hours {
			ro := metrics.NewCandlestick(h.ROLatencies)
			rows = append(rows, []string{
				fmt.Sprintf("%d", h.Hour),
				fmt.Sprintf("%d", ro.N),
				fmt.Sprintf("%.1f", ro.Median),
				fmt.Sprintf("%d", h.WriteQueries),
				fmt.Sprintf("%d", h.ClientConflicts),
				fmt.Sprintf("%d", h.ClusterConflicts),
			})
		}
		fmt.Println(metrics.RenderTable(
			[]string{"Hour", "RO-N", "RO-median(s)", "Writes", "Cli-conf", "Clu-conf"}, rows))
	}
}
