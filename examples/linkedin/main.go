// Command linkedin replays the paper's §7 production story on the fleet
// simulator: months of unmanaged growth, the manual top-100 compaction
// era, then AutoComp — first with a conservative fixed k, then with a
// budget-driven dynamic k and quota-adaptive MOOP weights.
package main

import (
	"flag"
	"fmt"
	"log"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	tables := flag.Int("tables", 2000, "initial fleet size")
	budgetTBHr := flag.Float64("budget-tbhr", 226, "daily compaction budget (TBHr)")
	flag.Parse()

	clock := sim.NewClock()
	cfg := fleet.DefaultConfig()
	cfg.Seed = *seed
	cfg.InitialTables = *tables
	f := fleet.New(cfg, clock)
	model := fleet.DefaultModel(512 * storage.MB)
	runner := fleet.Runner{Fleet: f, Model: model}

	report := func(era string) {
		h := f.Histogram()
		total := h[0] + h[1] + h[2]
		fmt.Printf("%-28s tables=%5d files=%9d  <128MB=%4.0f%%  <512MB=%4.0f%%\n",
			era, f.TableCount(), total,
			100*f.TinyFileFraction(), 100*f.SmallFileFraction())
	}

	// Era 1: unmanaged growth.
	for d := 0; d < 60; d++ {
		f.AdvanceDay()
	}
	report("after 2 months unmanaged:")

	// Era 2: manual compaction of a fixed susceptible set, daily.
	manualSet := f.MostFragmented(100)
	var manualFiles int64
	var manualTBHr float64
	for d := 0; d < 60; d++ {
		f.AdvanceDay()
		fr, g := runner.CompactTables(manualSet)
		manualFiles += fr
		manualTBHr += g / 1024
	}
	report("after 2 months manual k=100:")
	fmt.Printf("    manual era: %d files reduced, %.1f TBHr\n", manualFiles, manualTBHr)

	// Era 3: AutoComp, conservative fixed k = 10.
	svc, err := f.Service(core.TopK{K: 10}, model)
	if err != nil {
		log.Fatal(err)
	}
	var autoFiles int64
	var autoTBHr float64
	for d := 0; d < 30; d++ {
		f.AdvanceDay()
		rep, err := svc.RunOnce()
		if err != nil {
			log.Fatal(err)
		}
		autoFiles += int64(rep.FilesReduced)
		autoTBHr += rep.ActualGBHr / 1024
	}
	report("after 1 month auto k=10:")
	fmt.Printf("    auto-k10 era: %d files reduced, %.1f TBHr\n", autoFiles, autoTBHr)

	// Era 4: dynamic k under a daily compute budget.
	budgetSvc, err := f.Service(core.BudgetSelector{BudgetGBHr: *budgetTBHr * 1024}, model)
	if err != nil {
		log.Fatal(err)
	}
	var ks int
	for d := 0; d < 30; d++ {
		f.AdvanceDay()
		rep, err := budgetSvc.RunOnce()
		if err != nil {
			log.Fatal(err)
		}
		ks += len(rep.Decision.Selected)
	}
	report(fmt.Sprintf("after 1 month budget %.0fTBHr:", *budgetTBHr))
	fmt.Printf("    dynamic k averaged %d tables/day\n", ks/30)
}
