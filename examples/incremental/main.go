// Command incremental is a walkthrough of the commit-event-driven
// observation plane: it attaches a changefeed to a catalog-backed lake,
// wraps a plain AutoComp pipeline with the incremental
// connector/generator/observer trio, and prints how the dirty set,
// the stats cache, and the candidate pool evolve as tables receive
// writes — the full scan happens once, after which each decision cycle
// re-observes only the tables that actually changed.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func main() {
	// A small catalog-backed lake: three tables under one tenant.
	clock := sim.NewClock()
	rng := sim.NewRNG(42)
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng.Fork())
	cp := catalog.New(fs, clock)
	if _, err := cp.CreateDatabase("analytics", "growth", 500_000); err != nil {
		log.Fatal(err)
	}
	tables := map[string]*lst.Table{}
	for _, name := range []string{"events", "sessions", "clicks"} {
		tbl, err := cp.CreateTable("analytics", lst.TableConfig{Name: name})
		if err != nil {
			log.Fatal(err)
		}
		tables[name] = tbl
		write(tbl, 60) // fragment every table with small files
	}

	// The changefeed: every lst commit in the lake — including tables
	// created later and maintenance operations — publishes to the
	// feed's bus; the dirty-set tracker and the stats cache subscribe.
	feed := changefeed.NewFeed(
		changefeed.CatalogTriggers(cp, changefeed.TriggerPolicy{EveryCommits: 1}),
		0, // no periodic reconciliation needed in this walkthrough
	)
	changefeed.AttachCatalog(feed.Bus, cp)

	// A plain AutoComp pipeline, incrementalized by wrapping its three
	// observation-side components; filters, traits, ranking, and
	// selection are untouched.
	target := int64(64 * storage.MB)
	cost := core.ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: float64(3 * storage.TB)}
	svc, err := core.NewService(core.Config{
		Connector: feed.Connector(core.CatalogConnector{CP: cp}),
		Generator: feed.Generator(core.TableScopeGenerator{}),
		Observer: feed.Observer(
			core.StatsObserver{TargetFileSize: target, Quota: cp.QuotaUtilization, Now: clock.Now},
			changefeed.StatsObserverRefresher(clock.Now, cp.QuotaUtilization),
		),
		StatsFilters: []core.Filter{core.MinSmallFiles{Min: 2}},
		Traits:       []core.Trait{core.FileCountReduction{}, cost},
		Ranker: core.MOOPRanker{Objectives: []core.Objective{
			{Trait: core.FileCountReduction{}, Weight: 0.7},
			{Trait: cost, Weight: 0.3},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	var prev changefeed.CacheCounters
	cycle := func(label string) {
		clock.Advance(time.Hour)
		d, err := svc.Decide()
		if err != nil {
			log.Fatal(err)
		}
		scan := feed.LastScan()
		cc := feed.Cache.Counters()
		mode := "dirty-only"
		if scan.Full {
			mode = "full-scan "
		}
		names := feed.ScannedNames()
		if len(names) == 0 {
			names = []string{"(none)"}
		}
		fmt.Printf("%-34s %s scanned=%d {%s}\n", label, mode, scan.Scanned, strings.Join(names, ", "))
		fmt.Printf("%34s observes=%d cache-hits=%d pool=%d ranked=%d top=%s\n",
			"", cc.Misses-prev.Misses, cc.Hits-prev.Hits, d.Generated, len(d.Ranked), top(d))
		prev = cc
	}

	cycle("cycle 1: cold start")
	cycle("cycle 2: nothing changed")

	write(tables["events"], 40)
	cycle("cycle 3: writes to events")

	write(tables["sessions"], 10)
	write(tables["clicks"], 25)
	cycle("cycle 4: sessions + clicks wrote")

	// Maintenance operations publish too: an expiry re-dirties the
	// table so its refreshed metadata state is re-observed once.
	if _, err := tables["events"].ExpireSnapshots(1); err != nil {
		log.Fatal(err)
	}
	cycle("cycle 5: snapshot expiry on events")

	cycle("cycle 6: quiet again")

	fmt.Printf("\ntotals: %d events published, %d tables tracked, cache %d hits / %d misses\n",
		feed.Bus.Published(), feed.Tracker.KnownCount(), prev.Hits, prev.Misses)
}

// write appends n small files to tbl in one commit.
func write(tbl *lst.Table, n int) {
	specs := make([]lst.FileSpec, n)
	for i := range specs {
		specs[i] = lst.FileSpec{SizeBytes: 8 * storage.MB}
	}
	if _, err := tbl.AppendFiles(specs); err != nil {
		log.Fatal(err)
	}
}

// top renders the highest-ranked candidate.
func top(d *core.Decision) string {
	if len(d.Ranked) == 0 {
		return "(none)"
	}
	c := d.Ranked[0]
	return fmt.Sprintf("%s (ΔF %.0f)", c.ID(), c.Trait(core.FileCountReduction{}.Name()))
}
