// Command autotune demonstrates §6.3: tuning an optimize-after-write
// compaction trigger with the FLAML-style optimizer against LST-Bench
// phased workloads, and why "one size does not fit all" — TPC-DS WP1
// loves compaction, TPC-H prefers none.
package main

import (
	"flag"
	"fmt"
	"log"

	"autocomp/internal/bench"
	"autocomp/internal/storage"
	"autocomp/internal/tuner"
	"autocomp/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	gb := flag.Int64("data-gb", 20, "workload scale (GB)")
	iters := flag.Int("iters", 8, "tuning iterations")
	flag.Parse()

	raw := *gb * storage.GB
	panels := []struct {
		name string
		wl   func(int64) workload.PhasedWorkload
	}{
		{"TPC-DS WP1", workload.TPCDSWP1},
		{"TPC-H", workload.TPCH},
	}

	for _, panel := range panels {
		base, err := bench.RunPhased(bench.PhasedRunConfig{Workload: panel.wl(raw), Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		objective := func(params map[string]float64) float64 {
			r, err := bench.RunPhased(bench.PhasedRunConfig{
				Workload: panel.wl(raw),
				Seed:     *seed,
				Hook: bench.HookSpec{
					Enabled:   true,
					Trait:     bench.HookSmallFileCount,
					Threshold: params["threshold"],
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			return r.Total.Seconds()
		}
		trials := tuner.CFO{
			Params: []tuner.Param{{Name: "threshold", Min: 50, Max: 100000, Log: true}},
			Seed:   *seed,
		}.Optimize(objective, *iters)

		fmt.Printf("=== %s ===\n", panel.name)
		fmt.Printf("baseline (no auto-compaction): %.0fs\n", base.Total.Seconds())
		for _, tr := range trials {
			fmt.Printf("  iter %2d  threshold %8.0f  →  %.0fs\n",
				tr.Iteration+1, tr.Params["threshold"], tr.Score)
		}
		best := tuner.Best(trials)
		verdict := "auto-compaction wins"
		if best.Score >= base.Total.Seconds()*0.97 {
			verdict = "default (no compaction) is best"
		}
		fmt.Printf("best tuned: %.0fs @ threshold %.0f — %s\n\n",
			best.Score, best.Params["threshold"], verdict)
	}
}
