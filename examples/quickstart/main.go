// Command quickstart is the smallest end-to-end AutoComp run: build a
// simulated lake, fragment a few tables with untuned writers, run one
// compaction cycle, and print what the framework decided and achieved.
package main

import (
	"fmt"
	"log"
	"time"

	"autocomp"
	"autocomp/internal/catalog"
	"autocomp/internal/cluster"
	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/metrics"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func main() {
	// A lake: virtual clock, HDFS-like storage, OpenHouse-like catalog,
	// one query cluster and one dedicated compaction cluster.
	clock := sim.NewClock()
	rng := sim.NewRNG(42)
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng.Fork())
	cp := catalog.New(fs, clock)
	queryCl := cluster.New(cluster.QueryClusterConfig(), clock)
	compCl := cluster.New(cluster.CompactionClusterConfig(), clock)
	eng := engine.New(engine.DefaultConfig(), queryCl, fs, clock, rng.Fork())

	// Three user tables written by untuned jobs (default 200 shuffle
	// partitions → hundreds of small files).
	if _, err := cp.CreateDatabase("analytics", "growth", 50_000); err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"events", "sessions", "clicks"} {
		tbl, err := cp.CreateTable("analytics", lst.TableConfig{Name: name})
		if err != nil {
			log.Fatal(err)
		}
		res := eng.Exec(engine.Query{
			App: "user-job", Table: tbl, Kind: engine.Insert, Bytes: 4 * storage.GB,
		})
		if res.Failed() {
			log.Fatal(res.Err)
		}
		fmt.Printf("loaded %-20s %4d files, %s\n",
			tbl.FullName(), tbl.FileCount(), metrics.FormatBytes(tbl.TotalBytes()))
	}
	clock.Advance(48 * time.Hour) // age past the recent-creation filter

	// AutoComp with the production defaults: ΔF + GBHr traits, MOOP
	// 0.7/0.3, top-k selection.
	ledger := &autocomp.EstimatorLedger{}
	svc, err := autocomp.New(autocomp.Options{
		Catalog:  cp,
		Cluster:  compCl,
		TopK:     10,
		OnReport: []func(*autocomp.Report){ledger.Observe},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncandidates: %d generated, %d after filters, %d selected\n",
		rep.Decision.Generated, rep.Decision.AfterStatsFilter, len(rep.Decision.Selected))
	for _, cr := range rep.Results {
		fmt.Printf("  %-22s est ΔF %.0f  actual %d  %.3f GBHr  %v\n",
			cr.Candidate.ID(), cr.EstimatedReduction, cr.Result.Reduction(),
			cr.Result.GBHr, cr.Result.Duration.Round(time.Millisecond))
	}
	fmt.Printf("total: %d files reduced, %s rewritten, %.3f GBHr\n",
		rep.FilesReduced, metrics.FormatBytes(rep.BytesRewritten), rep.ActualGBHr)

	for _, tbl := range cp.AllTables() {
		fmt.Printf("after: %-20s %4d files\n", tbl.FullName(), tbl.FileCount())
	}
}
