// Package cluster simulates the compute clusters the paper runs on: a
// driver plus N executors with fixed memory, a byte-throughput job model
// with task waves and startup overhead, bounded job concurrency with
// queueing, and a per-application GBHr ledger.
//
// GBHr (gigabyte-hours of executor memory) is the paper's compute-cost
// unit: GBHr = ExecutorMemoryGB × executors × job duration in hours (§4.2,
// §6 "GBHrApp"). Production figures use TBHr = GBHr/1024 (§7).
package cluster

import (
	"sync"
	"time"

	"autocomp/internal/sim"
)

// Config describes one cluster. The paper's shapes: the query-processing
// cluster has 1 driver + 15 executors, the compaction cluster 1 + 3, each
// node an 8-core, 64 GB Azure Standard E8s v3 (§6).
type Config struct {
	Name             string
	Executors        int
	ExecutorCores    int
	ExecutorMemoryGB float64

	// ScanBytesPerSec and WriteBytesPerSec are per-task-slot throughputs.
	ScanBytesPerSec  float64
	WriteBytesPerSec float64

	// PerFileOverhead is the fixed cost a task pays per file it touches
	// (footer decode, object store round-trip), the engine-side half of
	// the small-file tax.
	PerFileOverhead time.Duration

	// JobStartup is the fixed scheduling/startup overhead per job (FR1
	// notes the start-up cost of instantiating more compaction tasks).
	JobStartup time.Duration

	// MaxConcurrentJobs bounds in-flight jobs; excess jobs queue.
	// Zero means executors-many jobs.
	MaxConcurrentJobs int
}

// QueryClusterConfig mirrors the paper's 1+15-node query cluster.
func QueryClusterConfig() Config {
	return Config{
		Name:              "query",
		Executors:         15,
		ExecutorCores:     8,
		ExecutorMemoryGB:  64,
		ScanBytesPerSec:   64 << 20,
		WriteBytesPerSec:  32 << 20,
		PerFileOverhead:   40 * time.Millisecond,
		JobStartup:        2 * time.Second,
		MaxConcurrentJobs: 20,
	}
}

// CompactionClusterConfig mirrors the paper's 1+3-node compaction cluster.
func CompactionClusterConfig() Config {
	return Config{
		Name:              "compaction",
		Executors:         3,
		ExecutorCores:     8,
		ExecutorMemoryGB:  64,
		ScanBytesPerSec:   64 << 20,
		WriteBytesPerSec:  32 << 20,
		PerFileOverhead:   25 * time.Millisecond,
		JobStartup:        5 * time.Second,
		MaxConcurrentJobs: 10,
	}
}

// JobSpec describes the work one job performs.
type JobSpec struct {
	// App labels the application for the GBHr ledger; the paper treats
	// each triggered compaction operation as a distinct application.
	App string
	// ScanBytes and WriteBytes are the total bytes read and written.
	ScanBytes  int64
	WriteBytes int64
	// Files is the number of files touched (per-file overhead applies).
	Files int
	// Tasks is the job's parallelism (e.g. shuffle partitions); zero
	// defaults to one task per file, minimum 1.
	Tasks int
	// ExtraCompute adds fixed busy time (e.g. CPU-bound operators).
	ExtraCompute time.Duration
}

// JobRecord is the ledger entry for one completed job.
type JobRecord struct {
	App        string
	Start      time.Duration
	QueueDelay time.Duration
	Duration   time.Duration // execution time excluding queueing
	GBHr       float64
}

// End returns when the job finished (start + queue + duration).
func (r JobRecord) End() time.Duration { return r.Start + r.QueueDelay + r.Duration }

// Cluster simulates one compute cluster. Safe for concurrent use.
type Cluster struct {
	mu    sync.Mutex
	cfg   Config
	clock *sim.Clock

	slots   []time.Duration // per-slot busy-until times
	records []JobRecord
	gbhr    map[string]float64
}

// New returns a cluster driven by clock.
func New(cfg Config, clock *sim.Clock) *Cluster {
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.ExecutorCores <= 0 {
		cfg.ExecutorCores = 1
	}
	if cfg.ScanBytesPerSec <= 0 {
		cfg.ScanBytesPerSec = 64 << 20
	}
	if cfg.WriteBytesPerSec <= 0 {
		cfg.WriteBytesPerSec = 32 << 20
	}
	if cfg.MaxConcurrentJobs <= 0 {
		cfg.MaxConcurrentJobs = cfg.Executors
	}
	return &Cluster{
		cfg:   cfg,
		clock: clock,
		slots: make([]time.Duration, cfg.MaxConcurrentJobs),
		gbhr:  make(map[string]float64),
	}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// TaskSlots returns the number of parallel task slots
// (executors × cores).
func (c *Cluster) TaskSlots() int { return c.cfg.Executors * c.cfg.ExecutorCores }

// EstimateDuration returns the execution time of spec without running it.
// The model: startup + waves × per-task work, where a wave runs up to
// TaskSlots tasks in parallel.
func (c *Cluster) EstimateDuration(spec JobSpec) time.Duration {
	tasks := spec.Tasks
	if tasks <= 0 {
		tasks = spec.Files
	}
	if tasks <= 0 {
		tasks = 1
	}
	slots := c.TaskSlots()
	waves := (tasks + slots - 1) / slots

	perTaskSecs := float64(spec.ScanBytes)/float64(tasks)/c.cfg.ScanBytesPerSec +
		float64(spec.WriteBytes)/float64(tasks)/c.cfg.WriteBytesPerSec
	perTask := time.Duration(perTaskSecs * float64(time.Second))
	if spec.Files > 0 {
		perTask += time.Duration(float64(spec.Files) / float64(tasks) * float64(c.cfg.PerFileOverhead))
	}
	d := c.cfg.JobStartup + time.Duration(waves)*perTask + spec.ExtraCompute
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// GBHrFor returns the compute cost of running spec for the estimated
// duration: ExecutorMemoryGB × executors × hours.
func (c *Cluster) GBHrFor(d time.Duration) float64 {
	return c.cfg.ExecutorMemoryGB * float64(c.cfg.Executors) * d.Hours()
}

// Submit runs spec starting at the current virtual time, queueing behind
// earlier jobs when all job slots are busy. It records and returns the
// ledger entry. Submit does not advance the cluster's clock; simulated
// callers decide whether to block on r.End().
func (c *Cluster) Submit(spec JobSpec) JobRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()

	// Pick the slot that frees first.
	best := 0
	for i, busy := range c.slots {
		if busy < c.slots[best] {
			best = i
		}
	}
	queue := time.Duration(0)
	if c.slots[best] > now {
		queue = c.slots[best] - now
	}
	dur := c.EstimateDuration(spec)
	rec := JobRecord{
		App:        spec.App,
		Start:      now,
		QueueDelay: queue,
		Duration:   dur,
		GBHr:       c.GBHrFor(dur),
	}
	c.slots[best] = rec.End()
	c.records = append(c.records, rec)
	c.gbhr[spec.App] += rec.GBHr
	return rec
}

// GBHr returns the cumulative GBHr charged to app.
func (c *Cluster) GBHr(app string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gbhr[app]
}

// TotalGBHr returns the cumulative GBHr across all applications.
func (c *Cluster) TotalGBHr() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t float64
	for _, v := range c.gbhr {
		t += v
	}
	return t
}

// TotalTBHr returns TotalGBHr expressed in terabyte-hours.
func (c *Cluster) TotalTBHr() float64 { return c.TotalGBHr() / 1024 }

// Records returns a copy of the job ledger.
func (c *Cluster) Records() []JobRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobRecord, len(c.records))
	copy(out, c.records)
	return out
}

// RecordsSince returns ledger entries that started at or after t.
func (c *Cluster) RecordsSince(t time.Duration) []JobRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []JobRecord
	for _, r := range c.records {
		if r.Start >= t {
			out = append(out, r)
		}
	}
	return out
}

// JobGBHrs returns the per-job GBHr values for apps whose name has the
// given prefix (e.g. every "compaction/" application, which the paper
// aggregates as GBHrApp in Figure 7).
func (c *Cluster) JobGBHrs(appPrefix string) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []float64
	for _, r := range c.records {
		if hasPrefix(r.App, appPrefix) {
			out = append(out, r.GBHr)
		}
	}
	return out
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// Reset clears the ledger (slots are left as-is).
func (c *Cluster) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = nil
	c.gbhr = make(map[string]float64)
}
