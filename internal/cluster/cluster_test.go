package cluster

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"autocomp/internal/sim"
)

func testCluster(cfg Config) (*Cluster, *sim.Clock) {
	clock := sim.NewClock()
	return New(cfg, clock), clock
}

func TestEstimateDurationScalesWithBytes(t *testing.T) {
	c, _ := testCluster(QueryClusterConfig())
	small := c.EstimateDuration(JobSpec{ScanBytes: 1 << 30, Tasks: 8})
	big := c.EstimateDuration(JobSpec{ScanBytes: 64 << 30, Tasks: 8})
	if big <= small {
		t.Fatalf("duration did not scale: %v vs %v", small, big)
	}
}

func TestEstimateDurationPerFileOverhead(t *testing.T) {
	c, _ := testCluster(QueryClusterConfig())
	few := c.EstimateDuration(JobSpec{ScanBytes: 1 << 30, Files: 10, Tasks: 10})
	many := c.EstimateDuration(JobSpec{ScanBytes: 1 << 30, Files: 10000, Tasks: 10})
	if many <= few {
		t.Fatalf("per-file overhead missing: %v vs %v", few, many)
	}
}

func TestEstimateDurationWaves(t *testing.T) {
	cfg := QueryClusterConfig()
	cfg.JobStartup = 0
	cfg.PerFileOverhead = 0
	c, _ := testCluster(cfg)
	slots := c.TaskSlots()
	oneWave := c.EstimateDuration(JobSpec{ScanBytes: int64(slots) << 25, Tasks: slots})
	twoWaves := c.EstimateDuration(JobSpec{ScanBytes: int64(slots) << 25, Tasks: slots + 1})
	if twoWaves <= oneWave {
		t.Fatalf("extra wave not slower: %v vs %v", oneWave, twoWaves)
	}
}

func TestEstimateDurationDefaultsTasksToFiles(t *testing.T) {
	c, _ := testCluster(QueryClusterConfig())
	explicit := c.EstimateDuration(JobSpec{ScanBytes: 1 << 30, Files: 7, Tasks: 7})
	implied := c.EstimateDuration(JobSpec{ScanBytes: 1 << 30, Files: 7})
	if explicit != implied {
		t.Fatalf("tasks default mismatch: %v vs %v", explicit, implied)
	}
}

func TestEstimateDurationMinimum(t *testing.T) {
	cfg := QueryClusterConfig()
	cfg.JobStartup = 0
	c, _ := testCluster(cfg)
	if d := c.EstimateDuration(JobSpec{}); d < time.Millisecond {
		t.Fatalf("duration = %v below floor", d)
	}
}

func TestGBHrAccounting(t *testing.T) {
	cfg := Config{Executors: 4, ExecutorCores: 1, ExecutorMemoryGB: 64,
		ScanBytesPerSec: 1 << 20, WriteBytesPerSec: 1 << 20}
	c, _ := testCluster(cfg)
	// 1 hour of work: want GBHr = 64 * 4 * 1 = 256.
	if got := c.GBHrFor(time.Hour); got != 256 {
		t.Fatalf("GBHrFor(1h) = %v", got)
	}
	rec := c.Submit(JobSpec{App: "a", ScanBytes: 1 << 30, Tasks: 1})
	if math.Abs(c.GBHr("a")-rec.GBHr) > 1e-12 {
		t.Fatalf("ledger GBHr = %v, record = %v", c.GBHr("a"), rec.GBHr)
	}
	if c.TotalGBHr() != c.GBHr("a") {
		t.Fatal("total != per-app sum")
	}
	if math.Abs(c.TotalTBHr()-c.TotalGBHr()/1024) > 1e-12 {
		t.Fatal("TBHr conversion wrong")
	}
}

func TestSubmitQueueing(t *testing.T) {
	cfg := QueryClusterConfig()
	cfg.MaxConcurrentJobs = 1
	c, _ := testCluster(cfg)
	r1 := c.Submit(JobSpec{App: "q1", ScanBytes: 10 << 30, Tasks: 1})
	r2 := c.Submit(JobSpec{App: "q2", ScanBytes: 10 << 30, Tasks: 1})
	if r1.QueueDelay != 0 {
		t.Fatalf("first job queued: %v", r1.QueueDelay)
	}
	if r2.QueueDelay != r1.Duration {
		t.Fatalf("second job queue = %v, want %v", r2.QueueDelay, r1.Duration)
	}
	if r2.End() != r1.End()+r2.Duration {
		t.Fatal("job end times inconsistent")
	}
}

func TestSubmitParallelSlots(t *testing.T) {
	cfg := QueryClusterConfig()
	cfg.MaxConcurrentJobs = 2
	c, _ := testCluster(cfg)
	c.Submit(JobSpec{App: "q1", ScanBytes: 10 << 30, Tasks: 1})
	r2 := c.Submit(JobSpec{App: "q2", ScanBytes: 10 << 30, Tasks: 1})
	if r2.QueueDelay != 0 {
		t.Fatalf("second job should use free slot, queued %v", r2.QueueDelay)
	}
}

func TestQueueDrainsAsClockAdvances(t *testing.T) {
	cfg := QueryClusterConfig()
	cfg.MaxConcurrentJobs = 1
	clock := sim.NewClock()
	c := New(cfg, clock)
	r1 := c.Submit(JobSpec{App: "q1", ScanBytes: 1 << 30, Tasks: 1})
	clock.Advance(r1.Duration + time.Second)
	r2 := c.Submit(JobSpec{App: "q2", ScanBytes: 1 << 30, Tasks: 1})
	if r2.QueueDelay != 0 {
		t.Fatalf("queue did not drain: %v", r2.QueueDelay)
	}
}

func TestRecordsAndPrefixQueries(t *testing.T) {
	c, clock := testCluster(CompactionClusterConfig())
	c.Submit(JobSpec{App: "compaction/t1", ScanBytes: 1 << 30, Tasks: 1})
	clock.Advance(time.Hour)
	c.Submit(JobSpec{App: "compaction/t2", ScanBytes: 1 << 30, Tasks: 1})
	c.Submit(JobSpec{App: "query/q1", ScanBytes: 1 << 30, Tasks: 1})
	if got := len(c.Records()); got != 3 {
		t.Fatalf("records = %d", got)
	}
	if got := len(c.JobGBHrs("compaction/")); got != 2 {
		t.Fatalf("compaction jobs = %d", got)
	}
	if got := len(c.RecordsSince(time.Hour)); got != 2 {
		t.Fatalf("records since 1h = %d", got)
	}
}

func TestReset(t *testing.T) {
	c, _ := testCluster(QueryClusterConfig())
	c.Submit(JobSpec{App: "a", ScanBytes: 1 << 30, Tasks: 1})
	c.Reset()
	if len(c.Records()) != 0 || c.TotalGBHr() != 0 {
		t.Fatal("reset did not clear ledger")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c, _ := testCluster(Config{Name: "min"})
	if c.TaskSlots() != 1 {
		t.Fatalf("slots = %d", c.TaskSlots())
	}
	if c.Config().MaxConcurrentJobs != 1 {
		t.Fatalf("max jobs = %d", c.Config().MaxConcurrentJobs)
	}
}

// Property: GBHr is nonnegative and monotone in duration.
func TestGBHrMonotoneProperty(t *testing.T) {
	c, _ := testCluster(QueryClusterConfig())
	f := func(a, b uint32) bool {
		da, db := time.Duration(a)*time.Millisecond, time.Duration(b)*time.Millisecond
		ga, gb := c.GBHrFor(da), c.GBHrFor(db)
		if ga < 0 || gb < 0 {
			return false
		}
		if da <= db {
			return ga <= gb
		}
		return gb <= ga
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
