package workload

import (
	"testing"
	"time"

	"autocomp/internal/engine"
	"autocomp/internal/storage"
)

func TestTPCHTablesShape(t *testing.T) {
	tables := TPCHTables()
	if len(tables) != 6 {
		t.Fatalf("tables = %d", len(tables))
	}
	var lineitem, orders *TableDef
	var share float64
	for i := range tables {
		share += tables[i].ShareOfData
		switch tables[i].Name {
		case "lineitem":
			lineitem = &tables[i]
		case "orders":
			orders = &tables[i]
		}
	}
	if lineitem == nil || orders == nil {
		t.Fatal("missing lineitem/orders")
	}
	if !lineitem.Spec.IsPartitioned() {
		t.Fatal("lineitem must be partitioned (monthly by shipdate)")
	}
	if orders.Spec.IsPartitioned() {
		t.Fatal("orders must be unpartitioned")
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("shares sum to %v", share)
	}
}

func TestMonthPartitions(t *testing.T) {
	parts := MonthPartitions(14)
	if len(parts) != 14 {
		t.Fatalf("months = %d", len(parts))
	}
	if parts[len(parts)-1] != "1998-12" {
		t.Fatalf("latest = %s", parts[len(parts)-1])
	}
	if parts[0] != "1997-11" {
		t.Fatalf("oldest = %s", parts[0])
	}
	for i := 1; i < len(parts); i++ {
		if parts[i-1] >= parts[i] {
			t.Fatalf("not sorted: %v", parts)
		}
	}
}

func TestCABPlanShape(t *testing.T) {
	g := NewCAB(DefaultCABConfig())
	plan := g.Plan()
	if len(plan.Databases) != 20 {
		t.Fatalf("databases = %d", len(plan.Databases))
	}
	var total int64
	for _, db := range plan.Databases {
		total += db.RawBytes
		if len(db.Streams) != 4 {
			t.Fatalf("streams = %d", len(db.Streams))
		}
		if db.LoadParallelism < 100 || db.LoadParallelism > 400 {
			t.Fatalf("load parallelism = %d", db.LoadParallelism)
		}
		patterns := map[Pattern]bool{}
		for _, s := range db.Streams {
			patterns[s.Pattern] = true
		}
		for _, p := range []Pattern{Sinusoid, ShortBurst, LargeBurst, Periodic} {
			if !patterns[p] {
				t.Fatalf("missing pattern %v in %s", p, db.Name)
			}
		}
	}
	// Sizes sum to ~the configured raw bytes (rounding loss allowed).
	want := DefaultCABConfig().RawDataBytes
	if total < want*95/100 || total > want {
		t.Fatalf("total raw = %d, want ~%d", total, want)
	}
}

func TestCABPlanDeterministic(t *testing.T) {
	a := NewCAB(DefaultCABConfig()).Plan()
	b := NewCAB(DefaultCABConfig()).Plan()
	for i := range a.Databases {
		if a.Databases[i].RawBytes != b.Databases[i].RawBytes ||
			a.Databases[i].LoadParallelism != b.Databases[i].LoadParallelism {
			t.Fatalf("plans differ at db %d", i)
		}
	}
}

func TestCABEventsSortedAndBounded(t *testing.T) {
	cfg := DefaultCABConfig()
	cfg.Databases = 3
	g := NewCAB(cfg)
	plan := g.Plan()
	for _, db := range plan.Databases {
		events := g.Events(db)
		if len(events) == 0 {
			t.Fatalf("no events for %s", db.Name)
		}
		for i, e := range events {
			if e.At < 0 || e.At >= cfg.Duration {
				t.Fatalf("event outside run: %v", e.At)
			}
			if i > 0 && events[i-1].At > e.At {
				t.Fatal("events not sorted")
			}
			if e.Database != db.Name {
				t.Fatal("event database mismatch")
			}
		}
	}
}

func TestCABEventsMixReadsAndWrites(t *testing.T) {
	cfg := DefaultCABConfig()
	cfg.Databases = 5
	g := NewCAB(cfg)
	plan := g.Plan()
	reads, writes := 0, 0
	for _, db := range plan.Databases {
		for _, e := range g.Events(db) {
			if e.Template.Kind.IsWrite() {
				writes++
			} else {
				reads++
			}
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	if reads < writes {
		t.Fatalf("expected read-dominant mix: reads=%d writes=%d", reads, writes)
	}
}

func TestPeriodicStreamHourly(t *testing.T) {
	cfg := DefaultCABConfig()
	cfg.Databases = 1
	g := NewCAB(cfg)
	plan := g.Plan()
	events := g.Events(plan.Databases[0])
	inserts := 0
	for _, e := range events {
		if e.Template.Name == "hourly_ingest" {
			inserts++
		}
	}
	// 5-hour run → 5 hourly firings (offset < 1h).
	if inserts != 5 {
		t.Fatalf("hourly inserts = %d", inserts)
	}
}

func TestLargeBurstIncludesHourFourSpike(t *testing.T) {
	cfg := DefaultCABConfig()
	cfg.Databases = 4
	g := NewCAB(cfg)
	plan := g.Plan()
	spike := 0
	for _, db := range plan.Databases {
		for _, e := range g.Events(db) {
			if e.Template.Kind.IsWrite() && e.At >= 3*time.Hour+30*time.Minute && e.At < 5*time.Hour {
				spike++
			}
		}
	}
	if spike == 0 {
		t.Fatal("no write activity near hour 4 (the paper's spike)")
	}
}

func TestPatternStrings(t *testing.T) {
	want := map[Pattern]string{
		Sinusoid: "sinusoid", ShortBurst: "short-burst",
		LargeBurst: "large-burst", Periodic: "periodic", Pattern(99): "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d = %q", p, p.String())
		}
	}
}

func TestPhasedWorkloads(t *testing.T) {
	wp1 := TPCDSWP1(100 * storage.GB)
	if wp1.SeparateWriteCluster {
		t.Fatal("WP1 must be single-cluster")
	}
	if len(wp1.Phases) < 5 {
		t.Fatalf("WP1 phases = %d", len(wp1.Phases))
	}
	wp3 := TPCDSWP3(100 * storage.GB)
	if !wp3.SeparateWriteCluster {
		t.Fatal("WP3 must use a separate write cluster")
	}
	tpch := TPCH(100 * storage.GB)
	// TPC-H's modification phases target unpartitioned orders.
	foundOrdersWrite := false
	for _, p := range tpch.Phases {
		for _, q := range p.Queries {
			if q.Table == "orders" && q.Kind.IsWrite() {
				foundOrdersWrite = true
			}
		}
	}
	if !foundOrdersWrite {
		t.Fatal("TPC-H must write unpartitioned orders")
	}
	if wp1.TotalQueries() == 0 || tpch.TotalQueries() == 0 {
		t.Fatal("total queries = 0")
	}
}

func TestMaintenanceInsertVolumeScaled(t *testing.T) {
	w := TPCDSWP1(100 * storage.GB)
	found := false
	for _, p := range w.Phases {
		for _, q := range p.Queries {
			if q.Kind == engine.Insert && q.WriteBytes > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("maintenance inserts have no volume")
	}
}

func TestSizeOfShare(t *testing.T) {
	if got := SizeOfShare(100*storage.GB, 0.5); got != 50*storage.GB {
		t.Fatalf("share = %d", got)
	}
	if got := SizeOfShare(10, 0.001); got != storage.MB {
		t.Fatalf("floor = %d", got)
	}
}
