// Package workload reimplements the paper's workload tooling (§6): the
// CAB-gen cloud-analytics benchmark generator (TPC-H schemas, query
// streams modeled after real cloud usage patterns), the dbgen-style data
// loader shapes, and the LST-Bench phased workloads (TPC-DS WP1/WP3,
// TPC-H) used by the auto-tuning experiments (§6.3).
//
// The generator is fully deterministic for a given seed.
package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// TableDef describes one table of a database schema.
type TableDef struct {
	Name   string
	Schema lst.Schema
	Spec   lst.PartitionSpec
	Mode   lst.WriteMode
	// ShareOfData is the table's fraction of the database's raw bytes.
	ShareOfData float64
}

// TPCHTables returns the TPC-H-like schema the CAB databases use. As in
// the paper's setup, lineitem is partitioned by shipdate at monthly
// granularity and orders is not partitioned (§6), giving a workload with
// mixed update patterns across partitioned and non-partitioned tables.
func TPCHTables() []TableDef {
	return []TableDef{
		{
			Name: "lineitem",
			Schema: lst.Schema{Fields: []lst.Field{
				{Name: "l_orderkey", Type: lst.TypeInt64},
				{Name: "l_partkey", Type: lst.TypeInt64},
				{Name: "l_suppkey", Type: lst.TypeInt64},
				{Name: "l_quantity", Type: lst.TypeDecimal},
				{Name: "l_extendedprice", Type: lst.TypeDecimal},
				{Name: "l_discount", Type: lst.TypeDecimal},
				{Name: "l_shipdate", Type: lst.TypeDate},
				{Name: "l_comment", Type: lst.TypeString},
			}},
			Spec:        lst.PartitionSpec{Column: "l_shipdate", Transform: lst.TransformMonth},
			ShareOfData: 0.70,
		},
		{
			Name: "orders",
			Schema: lst.Schema{Fields: []lst.Field{
				{Name: "o_orderkey", Type: lst.TypeInt64},
				{Name: "o_custkey", Type: lst.TypeInt64},
				{Name: "o_totalprice", Type: lst.TypeDecimal},
				{Name: "o_orderdate", Type: lst.TypeDate},
				{Name: "o_comment", Type: lst.TypeString},
			}},
			ShareOfData: 0.17,
		},
		{
			Name: "customer",
			Schema: lst.Schema{Fields: []lst.Field{
				{Name: "c_custkey", Type: lst.TypeInt64},
				{Name: "c_name", Type: lst.TypeString},
				{Name: "c_acctbal", Type: lst.TypeDecimal},
			}},
			ShareOfData: 0.05,
		},
		{
			Name: "part",
			Schema: lst.Schema{Fields: []lst.Field{
				{Name: "p_partkey", Type: lst.TypeInt64},
				{Name: "p_name", Type: lst.TypeString},
				{Name: "p_retailprice", Type: lst.TypeDecimal},
			}},
			ShareOfData: 0.04,
		},
		{
			Name: "partsupp",
			Schema: lst.Schema{Fields: []lst.Field{
				{Name: "ps_partkey", Type: lst.TypeInt64},
				{Name: "ps_suppkey", Type: lst.TypeInt64},
				{Name: "ps_supplycost", Type: lst.TypeDecimal},
			}},
			ShareOfData: 0.03,
		},
		{
			Name: "supplier",
			Schema: lst.Schema{Fields: []lst.Field{
				{Name: "s_suppkey", Type: lst.TypeInt64},
				{Name: "s_name", Type: lst.TypeString},
			}},
			ShareOfData: 0.01,
		},
	}
}

// MonthPartitions returns n monthly partition labels ending at 1998-12
// (TPC-H's date range), oldest first.
func MonthPartitions(n int) []string {
	out := make([]string, 0, n)
	year, month := 1998, 12
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%04d-%02d", year, month))
		month--
		if month == 0 {
			month = 12
			year--
		}
	}
	sort.Strings(out)
	return out
}

// Pattern is a CAB query-stream usage pattern (§6: constant demand with
// sinusoidal variations, short bursts, large bursts, and predictable
// scheduled workloads).
type Pattern int

// Stream patterns.
const (
	// Sinusoid models dashboards: constant demand with sinusoidal
	// variation.
	Sinusoid Pattern = iota
	// ShortBurst models interactive query sessions.
	ShortBurst
	// LargeBurst models daily maintenance jobs (write-heavy).
	LargeBurst
	// Periodic models hourly scheduled jobs.
	Periodic
)

func (p Pattern) String() string {
	switch p {
	case Sinusoid:
		return "sinusoid"
	case ShortBurst:
		return "short-burst"
	case LargeBurst:
		return "large-burst"
	case Periodic:
		return "periodic"
	default:
		return "unknown"
	}
}

// QueryTemplate is a parameterized query shape.
type QueryTemplate struct {
	Name  string
	Kind  engine.Kind
	Table string
	// ScanFraction for reads.
	ScanFraction float64
	// RecentPartitions restricts reads/writes to the most recent N
	// partitions of a partitioned table (0 = all).
	RecentPartitions int
	// WriteBytes for inserts.
	WriteBytes int64
	// ModifyFraction for updates/deletes.
	ModifyFraction float64
	// Parallelism of the writer (0 = engine default — the untuned case).
	Parallelism int
}

// Stream is one query stream of a database.
type Stream struct {
	ID       string
	Database string
	Pattern  Pattern
	// QueriesPerHour is the stream's average arrival rate.
	QueriesPerHour float64
	// Templates are drawn uniformly per event.
	Templates []QueryTemplate
}

// Event is one query arrival.
type Event struct {
	At       time.Duration
	Database string
	Stream   string
	Template QueryTemplate
}

// DatabasePlan is the generated plan for one database.
type DatabasePlan struct {
	Name     string
	Tables   []TableDef
	RawBytes int64
	// LoadParallelism is the (mis)configured writer parallelism of the
	// initial load, the source of the baseline's high initial file
	// count (§6.1).
	LoadParallelism int
	// Months is the number of lineitem partitions loaded.
	Months  int
	Streams []Stream
}

// Plan is a full CAB workload plan.
type Plan struct {
	Databases []DatabasePlan
	Duration  time.Duration
}

// CABConfig mirrors the CAB-gen parameters the paper sets (§6): raw data
// size, number of databases, total CPU time, and experiment duration.
// The paper's run: 500 GB, 20 databases, 1 CPU-hour, 5 hours.
type CABConfig struct {
	RawDataBytes int64
	Databases    int
	CPUHours     float64
	Duration     time.Duration
	// Months of lineitem history to load per database.
	Months int
	// Seed drives all randomness.
	Seed int64
}

// DefaultCABConfig returns the paper's §6 parameters.
func DefaultCABConfig() CABConfig {
	return CABConfig{
		RawDataBytes: 500 * storage.GB,
		Databases:    20,
		CPUHours:     1,
		Duration:     5 * time.Hour,
		// lineitem carries TPC-H's multi-year shipdate range at monthly
		// granularity, so partition-scope work units are much finer
		// than table-scope ones (§6).
		Months: 36,
		Seed:   1,
	}
}

// Generator produces CAB plans and event streams.
type Generator struct {
	cfg CABConfig
	rng *sim.RNG
}

// NewCAB returns a generator for cfg.
func NewCAB(cfg CABConfig) *Generator {
	if cfg.Databases <= 0 {
		cfg.Databases = 1
	}
	if cfg.Months <= 0 {
		cfg.Months = 12
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Hour
	}
	return &Generator{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
}

// Plan generates the database plans: schemas, data sizes (skewed across
// databases), untuned load parallelism, and the four stream patterns per
// database.
func (g *Generator) Plan() *Plan {
	cfg := g.cfg
	plan := &Plan{Duration: cfg.Duration}

	// Database sizes are skewed (a few large tenants dominate), matching
	// cloud-warehouse usage; weights are deterministic from the seed.
	weights := make([]float64, cfg.Databases)
	var wsum float64
	for i := range weights {
		weights[i] = g.rng.Pareto(1, 1.2)
		if weights[i] > 50 {
			weights[i] = 50
		}
		wsum += weights[i]
	}

	// Scale stream rates so total issued work tracks the CPUHours knob.
	cpuScale := cfg.CPUHours
	if cpuScale <= 0 {
		cpuScale = 1
	}
	perDBQPH := 40 * cpuScale

	for i := 0; i < cfg.Databases; i++ {
		name := fmt.Sprintf("cab%02d", i)
		raw := int64(float64(cfg.RawDataBytes) * weights[i] / wsum)
		dp := DatabasePlan{
			Name:     name,
			Tables:   TPCHTables(),
			RawBytes: raw,
			// End-user jobs are untuned: between 100 and 400 writer
			// tasks regardless of data volume (§2).
			LoadParallelism: g.rng.IntBetween(100, 400),
			Months:          cfg.Months,
		}
		dp.Streams = g.streams(name, perDBQPH)
		plan.Databases = append(plan.Databases, dp)
	}
	return plan
}

// streams builds the four pattern streams for one database.
func (g *Generator) streams(db string, qph float64) []Stream {
	dashboards := Stream{
		ID: db + "/dash", Database: db, Pattern: Sinusoid,
		QueriesPerHour: qph * 0.5,
		Templates: []QueryTemplate{
			{Name: "dash_lineitem", Kind: engine.Read, Table: "lineitem", ScanFraction: 0.10, RecentPartitions: 3},
			{Name: "dash_orders", Kind: engine.Read, Table: "orders", ScanFraction: 0.20},
			{Name: "dash_join", Kind: engine.Read, Table: "lineitem", ScanFraction: 0.05, RecentPartitions: 1},
		},
	}
	interactive := Stream{
		ID: db + "/interactive", Database: db, Pattern: ShortBurst,
		QueriesPerHour: qph * 0.3,
		Templates: []QueryTemplate{
			{Name: "adhoc_scan", Kind: engine.Read, Table: "lineitem", ScanFraction: 0.02, RecentPartitions: 2},
			{Name: "adhoc_cust", Kind: engine.Read, Table: "customer", ScanFraction: 0.5},
			{Name: "adhoc_part", Kind: engine.Read, Table: "part", ScanFraction: 0.4},
		},
	}
	maintenance := Stream{
		ID: db + "/maintenance", Database: db, Pattern: LargeBurst,
		QueriesPerHour: qph * 0.05,
		Templates: []QueryTemplate{
			// The paper extended CAB to update both orders and
			// lineitem (§6, footnote 1).
			{Name: "maint_update_lineitem", Kind: engine.Update, Table: "lineitem", ModifyFraction: 0.03, RecentPartitions: 2},
			{Name: "maint_update_orders", Kind: engine.Update, Table: "orders", ModifyFraction: 0.03},
			{Name: "maint_delete_lineitem", Kind: engine.Delete, Table: "lineitem", ModifyFraction: 0.01, RecentPartitions: 1},
		},
	}
	hourly := Stream{
		ID: db + "/hourly", Database: db, Pattern: Periodic,
		QueriesPerHour: 1,
		Templates: []QueryTemplate{
			{Name: "hourly_ingest", Kind: engine.Insert, Table: "lineitem", WriteBytes: 64 * storage.MB, RecentPartitions: 1},
			{Name: "hourly_orders", Kind: engine.Insert, Table: "orders", WriteBytes: 16 * storage.MB},
		},
	}
	return []Stream{dashboards, interactive, maintenance, hourly}
}

// Events generates the arrival events of one database plan across the
// experiment duration, sorted by time.
func (g *Generator) Events(dp DatabasePlan) []Event {
	var out []Event
	for _, s := range dp.Streams {
		out = append(out, g.streamEvents(s)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// streamEvents realizes one stream's arrival process.
func (g *Generator) streamEvents(s Stream) []Event {
	dur := g.cfg.Duration
	var out []Event
	emit := func(at time.Duration, tpl QueryTemplate) {
		if at >= 0 && at < dur {
			out = append(out, Event{At: at, Database: s.Database, Stream: s.ID, Template: tpl})
		}
	}
	pick := func() QueryTemplate {
		return s.Templates[g.rng.Intn(len(s.Templates))]
	}

	switch s.Pattern {
	case Sinusoid:
		// Nonhomogeneous Poisson by thinning: rate(t) = base×(1 + 0.6·sin).
		base := s.QueriesPerHour
		maxRate := base * 1.6
		t := time.Duration(0)
		for {
			t += time.Duration(g.rng.Exp(maxRate) * float64(time.Hour))
			if t >= dur {
				break
			}
			phase := 2 * math.Pi * t.Hours() / 2.0 // 2-hour period
			rate := base * (1 + 0.6*math.Sin(phase))
			if g.rng.Float64() < rate/maxRate {
				emit(t, pick())
			}
		}
	case ShortBurst:
		// Bursts of 4-10 queries within ~5 minutes, burst arrivals
		// Poisson.
		expected := s.QueriesPerHour * dur.Hours()
		bursts := int(expected / 6)
		if bursts < 1 {
			bursts = 1
		}
		for b := 0; b < bursts; b++ {
			start := time.Duration(g.rng.Float64() * float64(dur))
			n := g.rng.IntBetween(4, 10)
			for i := 0; i < n; i++ {
				emit(start+time.Duration(g.rng.Float64()*float64(5*time.Minute)), pick())
			}
		}
	case LargeBurst:
		// One maintenance window per run at a random hour, issuing a
		// burst of write operations; plus a write spike late in the run
		// (the paper observes one around hour 4, §6.1).
		windows := []time.Duration{
			time.Duration(g.rng.Float64() * float64(dur) * 0.5),
		}
		if dur >= 4*time.Hour {
			windows = append(windows, 4*time.Hour-30*time.Minute+
				time.Duration(g.rng.Float64()*float64(time.Hour)))
		}
		per := s.QueriesPerHour * dur.Hours() / float64(len(windows))
		if per < 1 {
			per = 1
		}
		for _, w := range windows {
			n := int(per)
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				tpl := pick()
				at := w + time.Duration(g.rng.Float64()*float64(20*time.Minute))
				emit(at, tpl)
				// Orchestrators occasionally double-launch the same
				// maintenance job; the twin runs commit concurrently
				// and one retries on a versioning conflict — the
				// client-side conflicts of Table 1.
				if g.rng.Bernoulli(0.15) {
					emit(at, tpl)
				}
			}
		}
	case Periodic:
		// Fixed-offset hourly jobs.
		offset := time.Duration(g.rng.Float64() * float64(time.Hour))
		for t := offset; t < dur; t += time.Hour {
			for _, tpl := range s.Templates {
				emit(t, tpl)
			}
		}
	}
	return out
}
