package workload

import (
	"time"

	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/storage"
)

// Phase is one stage of an LST-Bench-style phased workload.
type Phase struct {
	Name string
	// Queries run back to back within the phase.
	Queries []QueryTemplate
	// Repeat runs the phase's query list this many times (min 1).
	Repeat int
}

// PhasedWorkload is an LST-Bench workload: an ordered list of phases over
// one database (§6.3 runs TPC-DS WP1, TPC-DS WP3, and TPC-H).
type PhasedWorkload struct {
	Name   string
	Tables []TableDef
	// RawBytes is the initial load volume (scale factor).
	RawBytes int64
	// LoadParallelism is the loader's writer parallelism.
	LoadParallelism int
	// Months of partition history for partitioned tables.
	Months int
	Phases []Phase
	// SeparateWriteCluster models WP3: one cluster handles all writes
	// while another handles all reads, minimizing resource contention.
	SeparateWriteCluster bool
}

// tpcdsTables is a compact TPC-DS-like schema: one large partitioned fact
// table, one unpartitioned fact table, and dimensions.
func tpcdsTables() []TableDef {
	return []TableDef{
		{
			Name:        "store_sales",
			Spec:        PartitionSpecMonthly("ss_sold_date"),
			ShareOfData: 0.55,
		},
		{
			Name:        "web_sales",
			Spec:        PartitionSpecMonthly("ws_sold_date"),
			ShareOfData: 0.25,
		},
		{Name: "inventory", ShareOfData: 0.12},
		{Name: "customer", ShareOfData: 0.05},
		{Name: "item", ShareOfData: 0.03},
	}
}

// PartitionSpecMonthly returns a monthly partition spec on column.
func PartitionSpecMonthly(column string) lst.PartitionSpec {
	return lst.PartitionSpec{Column: column, Transform: lst.TransformMonth}
}

// readPhase builds a single-user read phase over the given tables.
func readPhase(name string, repeat int) Phase {
	return Phase{
		Name:   name,
		Repeat: repeat,
		Queries: []QueryTemplate{
			{Name: "q_fact_recent", Kind: engine.Read, Table: "store_sales", ScanFraction: 0.15, RecentPartitions: 3},
			{Name: "q_fact_full", Kind: engine.Read, Table: "store_sales", ScanFraction: 0.05},
			{Name: "q_web", Kind: engine.Read, Table: "web_sales", ScanFraction: 0.10, RecentPartitions: 2},
			{Name: "q_inventory", Kind: engine.Read, Table: "inventory", ScanFraction: 0.20},
			{Name: "q_dim", Kind: engine.Read, Table: "customer", ScanFraction: 0.50},
		},
	}
}

// maintenancePhase modifies about modFrac of the fact data via deletes
// and inserts (the paper's Figure 3 maintenance phase modifies ~3%).
func maintenancePhase(name string, modFrac float64) Phase {
	return Phase{
		Name:   name,
		Repeat: 1,
		Queries: []QueryTemplate{
			{Name: "dm_delete_ss", Kind: engine.Delete, Table: "store_sales", ModifyFraction: modFrac, RecentPartitions: 4},
			{Name: "dm_insert_ss", Kind: engine.Insert, Table: "store_sales", WriteBytes: 0 /* set by scale */, RecentPartitions: 2},
			{Name: "dm_update_ws", Kind: engine.Update, Table: "web_sales", ModifyFraction: modFrac, RecentPartitions: 3},
			{Name: "dm_insert_inv", Kind: engine.Insert, Table: "inventory", WriteBytes: 0},
		},
	}
}

// scaleMaintenance fills in maintenance insert volumes proportional to
// raw size.
func scaleMaintenance(p Phase, raw int64) Phase {
	for i := range p.Queries {
		if p.Queries[i].Kind == engine.Insert && p.Queries[i].WriteBytes == 0 {
			p.Queries[i].WriteBytes = raw / 100
		}
	}
	return p
}

// TPCDSWP1 is LST-Bench's WP1: a long-running workload alternating
// single-user reads with frequent data-maintenance phases on one cluster.
func TPCDSWP1(rawBytes int64) PhasedWorkload {
	w := PhasedWorkload{
		Name:            "tpcds-wp1",
		Tables:          tpcdsTables(),
		RawBytes:        rawBytes,
		LoadParallelism: 250,
		Months:          12,
	}
	w.Phases = append(w.Phases, readPhase("single-user-1", 2))
	for i := 0; i < 4; i++ {
		w.Phases = append(w.Phases,
			scaleMaintenance(maintenancePhase("maintenance", 0.03), rawBytes),
			readPhase("single-user", 2),
		)
	}
	return w
}

// TPCDSWP3 is LST-Bench's WP3: one compute cluster handles all writes
// while another handles all reads.
func TPCDSWP3(rawBytes int64) PhasedWorkload {
	w := TPCDSWP1(rawBytes)
	w.Name = "tpcds-wp3"
	w.SeparateWriteCluster = true
	return w
}

// TPCH is the TPC-H workload: a load, a long data-modification phase
// (refresh functions on unpartitioned tables), then the query suite. Its
// non-partitioned tables make compaction rewrite whole tables, which is
// why auto-compaction does not pay off for it (§6.3).
func TPCH(rawBytes int64) PhasedWorkload {
	tables := TPCHTables()
	// TPC-H refreshes hit orders/lineitem; the paper notes compaction of
	// non-partitioned tables rewrites the entire table. Emphasize the
	// unpartitioned path by making orders carry more data.
	for i := range tables {
		if tables[i].Name == "orders" {
			tables[i].ShareOfData = 0.30
		}
		if tables[i].Name == "lineitem" {
			tables[i].ShareOfData = 0.57
		}
	}
	// TPC-H starts from a tuned dbgen bulk load: files arrive near the
	// target size, so there is little for compaction to heal — and
	// compacting the non-partitioned tables means rewriting them
	// entirely (§6.3's explanation for why the default wins here).
	loadPar := int(rawBytes / (512 << 20))
	if loadPar < 8 {
		loadPar = 8
	}
	w := PhasedWorkload{
		Name:            "tpch",
		Tables:          tables,
		RawBytes:        rawBytes,
		LoadParallelism: loadPar,
		Months:          12,
	}
	// TPC-H's refresh functions are part of the benchmark kit and write
	// at moderate parallelism; the long modification phase dominates
	// end-to-end time (§6.3).
	mod := Phase{
		Name:   "refresh",
		Repeat: 10,
		Queries: []QueryTemplate{
			{Name: "rf_insert_orders", Kind: engine.Insert, Table: "orders", WriteBytes: rawBytes / 150, Parallelism: 16},
			{Name: "rf_insert_lineitem", Kind: engine.Insert, Table: "lineitem", WriteBytes: rawBytes / 100, RecentPartitions: 1, Parallelism: 16},
			{Name: "rf_delete_orders", Kind: engine.Delete, Table: "orders", ModifyFraction: 0.01, Parallelism: 16},
		},
	}
	queries := Phase{
		Name:   "power",
		Repeat: 1,
		Queries: []QueryTemplate{
			{Name: "q1", Kind: engine.Read, Table: "lineitem", ScanFraction: 0.30},
			{Name: "q3", Kind: engine.Read, Table: "orders", ScanFraction: 0.40},
			{Name: "q6", Kind: engine.Read, Table: "lineitem", ScanFraction: 0.10, RecentPartitions: 4},
			{Name: "q12", Kind: engine.Read, Table: "orders", ScanFraction: 0.25},
		},
	}
	w.Phases = []Phase{mod, queries, mod, queries}
	return w
}

// SizeOfShare returns share × raw bytes, floored at one file's worth.
func SizeOfShare(raw int64, share float64) int64 {
	b := int64(float64(raw) * share)
	if b < storage.MB {
		b = storage.MB
	}
	return b
}

// TotalQueries returns the number of query executions a phased workload
// performs (phases × repeats × queries).
func (w PhasedWorkload) TotalQueries() int {
	n := 0
	for _, p := range w.Phases {
		r := p.Repeat
		if r < 1 {
			r = 1
		}
		n += r * len(p.Queries)
	}
	return n
}

// Durations below are defaults for experiment pacing.
const (
	// DefaultThinkTime separates queries within a phase.
	DefaultThinkTime = 30 * time.Second
)
