package maintenance

import (
	"testing"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/core"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// lake builds a control plane with one database and n tables, each aged
// with commits single-file appends.
func lake(t *testing.T, n, commits int) (*catalog.ControlPlane, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	cp := catalog.New(fs, clock)
	if _, err := cp.CreateDatabase("db1", "tenant", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tbl, err := cp.CreateTable("db1", lst.TableConfig{
			Name:   "t" + string(rune('a'+i)),
			Schema: lst.Schema{Fields: []lst.Field{{Name: "k", Type: lst.TypeInt64}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < commits; c++ {
			clock.Advance(time.Minute)
			if _, err := tbl.AppendFiles([]lst.FileSpec{{SizeBytes: storage.MB, RowCount: 1}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cp, clock
}

func TestGeneratorEmitsPerPolicyTriggers(t *testing.T) {
	cp, _ := lake(t, 1, 30)
	tables := core.CatalogConnector{CP: cp}.Tables()

	// All three triggers fire: 30 snapshots > 5 retained, 30 versions
	// >= 10, 30 manifests vs 1 consolidated.
	gen := Generator{Policies: StaticPolicies{Policy: Policy{
		RetainSnapshots: 5, CheckpointEveryVersions: 10, MinManifestSurplus: 8,
	}}}
	cands := gen.Candidates(tables)
	byAction := map[core.ActionType]int{}
	for _, c := range cands {
		byAction[c.Action]++
	}
	if byAction[core.ActionSnapshotExpiry] != 1 ||
		byAction[core.ActionMetadataCheckpoint] != 1 ||
		byAction[core.ActionManifestRewrite] != 1 {
		t.Fatalf("actions = %v", byAction)
	}

	// A lax policy silences every trigger.
	lax := Generator{Policies: StaticPolicies{Policy: Policy{
		RetainSnapshots: 100, CheckpointEveryVersions: 100, MinManifestSurplus: 100,
	}}}
	if got := lax.Candidates(tables); len(got) != 0 {
		t.Fatalf("lax policy generated %d candidates", len(got))
	}

	// Zero values disable the trigger families outright.
	off := Generator{Policies: StaticPolicies{Policy: Policy{}}}
	if got := off.Candidates(tables); len(got) != 0 {
		t.Fatalf("disabled policy generated %d candidates", len(got))
	}
}

func TestObserverFillsMetadataStats(t *testing.T) {
	cp, clock := lake(t, 1, 20)
	tbl := core.CatalogConnector{CP: cp}.Tables()[0]
	pol := StaticPolicies{Policy: Policy{RetainSnapshots: 4, CheckpointEveryVersions: 10}}
	obs := Observer{Policies: pol, Now: clock.Now}

	ckpt := &core.Candidate{Table: tbl, Action: core.ActionMetadataCheckpoint}
	s, err := obs.Observe(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// 41 objects (21 metadata.json + 20 manifests) collapse to 2.
	if s.MetadataObjects != 41 || s.MetadataReducible != 39 {
		t.Fatalf("checkpoint stats = %+v", s)
	}
	if s.MetadataBytes <= 0 || s.Snapshots != 20 {
		t.Fatalf("checkpoint stats = %+v", s)
	}

	exp := &core.Candidate{Table: tbl, Action: core.ActionSnapshotExpiry}
	s, err = obs.Observe(exp)
	if err != nil {
		t.Fatal(err)
	}
	lt := tbl.(*lst.Table)
	if s.MetadataReducible != lt.ExpireEstimate(4) {
		t.Fatalf("expiry reducible = %d, table estimate = %d", s.MetadataReducible, lt.ExpireEstimate(4))
	}
	// Expiry processes only the dropped objects, so its priced byte
	// volume must be well below the checkpoint's full-log volume.
	ckptStats, _ := obs.Observe(ckpt)
	if s.MetadataBytes >= ckptStats.MetadataBytes {
		t.Fatalf("expiry bytes %d >= checkpoint bytes %d", s.MetadataBytes, ckptStats.MetadataBytes)
	}
}

func TestRunnerDispatchesActions(t *testing.T) {
	cp, _ := lake(t, 1, 20)
	tbl := core.CatalogConnector{CP: cp}.Tables()[0]
	r := Runner{
		Policies:            StaticPolicies{Policy: Policy{RetainSnapshots: 5}},
		ExecutorMemoryGB:    64,
		RewriteBytesPerHour: float64(3 * storage.TB),
	}

	res := r.Run(&core.Candidate{Table: tbl, Action: core.ActionSnapshotExpiry})
	if res.Err != nil || res.Skipped {
		t.Fatalf("expiry result = %+v", res)
	}
	if res.Reduction() <= 0 {
		t.Fatalf("expiry reduced %d", res.Reduction())
	}

	res = r.Run(&core.Candidate{Table: tbl, Action: core.ActionMetadataCheckpoint})
	if res.Err != nil || res.Skipped || res.Reduction() <= 0 {
		t.Fatalf("checkpoint result = %+v", res)
	}
	if res.GBHr <= 0 {
		t.Fatal("checkpoint charged no GBHr")
	}
	if tbl.(*lst.Table).MetadataObjectCount() != 2 {
		t.Fatalf("table log not collapsed: %d objects", tbl.(*lst.Table).MetadataObjectCount())
	}

	// Re-running the checkpoint is a skip, not an error.
	res = r.Run(&core.Candidate{Table: tbl, Action: core.ActionMetadataCheckpoint})
	if !res.Skipped {
		t.Fatalf("second checkpoint = %+v", res)
	}

	// A data candidate without a data runner is a hard error.
	res = r.Run(&core.Candidate{Table: tbl})
	if res.Err == nil {
		t.Fatal("data candidate without data runner succeeded")
	}
}

func TestCatalogServiceUnifiedCycle(t *testing.T) {
	cp, _ := lake(t, 3, 25)
	svc, err := NewCatalogService(cp, Options{
		TargetFileSize:      512 * storage.MB,
		ExecutorMemoryGB:    64,
		RewriteBytesPerHour: float64(3 * storage.TB),
		Selector:            core.BudgetSelector{BudgetGBHr: 1024},
		DefaultPolicy: Policy{
			RetainSnapshots: 5, CheckpointEveryVersions: 10, MinManifestSurplus: 8,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Override one table's catalog policy: retention must follow it.
	if err := cp.SetPolicies("db1", "ta", catalog.TablePolicies{RetainSnapshots: 2, CheckpointEveryVersions: 10}); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.ActionCounts()
	if counts[core.ActionMetadataCheckpoint] == 0 {
		t.Fatalf("action counts = %v", counts)
	}
	if rep.MetadataReduced <= 0 {
		t.Fatalf("metadata reduced = %d", rep.MetadataReduced)
	}
	ta, err := cp.Table("db1", "ta")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ta.Snapshots()); got != 2 {
		t.Fatalf("ta retained %d snapshots, want 2 (catalog policy)", got)
	}

	// Steady state: a second cycle right after finds nothing metadata-
	// worthy (no commits in between).
	rep2, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.MetadataReduced != 0 {
		t.Fatalf("second cycle reduced %d metadata objects", rep2.MetadataReduced)
	}
}

func TestBudgetSharedAcrossActionFamilies(t *testing.T) {
	cp, _ := lake(t, 2, 30)
	// A budget of 0 GBHr admits only zero-cost actions; with the cost
	// model on, every maintenance action costs > 0, so nothing runs —
	// metadata actions obey the same selector as data compaction.
	svc, err := NewCatalogService(cp, Options{
		TargetFileSize:      512 * storage.MB,
		ExecutorMemoryGB:    64,
		RewriteBytesPerHour: float64(3 * storage.TB),
		Selector:            core.BudgetSelector{BudgetGBHr: 0},
		DefaultPolicy:       Policy{RetainSnapshots: 5, CheckpointEveryVersions: 10, MinManifestSurplus: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := svc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ranked) == 0 {
		t.Fatal("no candidates ranked")
	}
	if len(d.Selected) != 0 {
		t.Fatalf("zero budget selected %d candidates", len(d.Selected))
	}
}
