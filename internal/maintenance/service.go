package maintenance

import (
	"autocomp/internal/catalog"
	"autocomp/internal/compaction"
	"autocomp/internal/core"
)

// Options parameterizes NewCatalogService.
type Options struct {
	// TargetFileSize classifies small data files (512 MB in the paper).
	TargetFileSize int64
	// ExecutorMemoryGB and RewriteBytesPerHour price all actions.
	ExecutorMemoryGB    float64
	RewriteBytesPerHour float64
	// Exec runs data compactions; nil builds a metadata-only pipeline
	// (no data-compaction candidates are generated).
	Exec *compaction.Executor
	// Selector defaults to SelectAll.
	Selector core.Selector
	// DefaultPolicy fills policy fields the catalog leaves unset; the
	// zero value means DefaultPolicy().
	DefaultPolicy Policy
	// Weights for the (ΔF, ΔM, GBHr) objectives; must sum to 1. The zero
	// value means (0.5, 0.2, 0.3).
	Weights [3]float64
}

// NewCatalogService wires a unified maintenance pipeline over an
// OpenHouse-style control plane: data compaction, snapshot expiry,
// metadata checkpointing, and manifest rewriting all flow through one
// OODA cycle, ranked by a three-objective MOOP (file-count reduction,
// metadata reduction, compute cost) and selected under one budget.
func NewCatalogService(cp *catalog.ControlPlane, opts Options) (*core.Service, error) {
	if opts.DefaultPolicy == (Policy{}) {
		opts.DefaultPolicy = DefaultPolicy()
	}
	if opts.Weights == ([3]float64{}) {
		opts.Weights = [3]float64{0.5, 0.2, 0.3}
	}
	pols := CatalogPolicies{CP: cp, Default: opts.DefaultPolicy}
	cost := core.ComputeCost{
		ExecutorMemoryGB:    opts.ExecutorMemoryGB,
		RewriteBytesPerHour: opts.RewriteBytesPerHour,
	}
	var dataGen core.Generator
	var dataRunner core.Runner
	if opts.Exec != nil {
		dataGen = core.HybridScopeGenerator{}
		dataRunner = core.ExecutorRunner{Exec: opts.Exec}
	}
	return core.NewService(core.Config{
		Connector: core.CatalogConnector{CP: cp},
		Generator: Generator{Data: dataGen, Policies: pols},
		Observer: Observer{
			Base: core.StatsObserver{
				TargetFileSize: opts.TargetFileSize,
				Quota:          cp.QuotaUtilization,
				Now:            cp.Clock().Now,
			},
			Policies: pols,
			Now:      cp.Clock().Now,
		},
		StatsFilters: []core.Filter{
			core.ForAction{Action: core.ActionDataCompaction, Inner: core.MinSmallFiles{Min: 2}},
			core.MinMetadataReduction{Min: 1},
		},
		Traits: []core.Trait{core.FileCountReduction{}, core.MetadataReduction{}, cost},
		Ranker: core.MOOPRanker{Objectives: []core.Objective{
			{Trait: core.FileCountReduction{}, Weight: opts.Weights[0]},
			{Trait: core.MetadataReduction{}, Weight: opts.Weights[1]},
			{Trait: cost, Weight: opts.Weights[2]},
		}},
		Selector:  opts.Selector,
		Scheduler: core.SequentialScheduler{},
		Runner: Runner{
			Data:                dataRunner,
			Policies:            pols,
			ExecutorMemoryGB:    opts.ExecutorMemoryGB,
			RewriteBytesPerHour: opts.RewriteBytesPerHour,
		},
	})
}
