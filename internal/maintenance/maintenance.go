// Package maintenance generalizes AutoComp's Observe–Orient–Decide–Act
// pipeline from data compaction to a family of table-maintenance actions:
// data compaction, snapshot expiry, metadata checkpointing, and manifest
// rewriting. The paper names per-commit metadata files (metadata.json +
// manifests) as cause (iv) of small-file proliferation (§2); this package
// makes reclaiming them a first-class, rankable action instead of a side
// channel.
//
// The design follows the decomposition of "Constructing and Analyzing the
// LSM Compaction Design Space" (arXiv:2202.04522) — maintenance is a set
// of orthogonal policy primitives (what to reclaim, when to trigger, how
// much it costs) — and the explicit cost-model scheduling of "Online
// Bigtable Merge Compaction" (arXiv:1407.3008): every action, data or
// metadata, is priced in GBHr and competes in the same MOOP ranking under
// the same budget selector. There is no separate maintenance scheduler
// loop.
//
// The pieces plug into core's existing extension points (NFR1):
//
//   - Generator emits action-typed candidates next to a data generator's;
//   - Observer fills the metadata statistics for maintenance candidates;
//   - Runner dispatches each selected candidate to its action's executor.
package maintenance

import (
	"fmt"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/compaction"
	"autocomp/internal/core"
	"autocomp/internal/lst"
)

// Policy is the per-table maintenance policy the generator and observer
// reconcile against.
type Policy struct {
	// RetainSnapshots is how many snapshots expiry keeps (min 1).
	RetainSnapshots int
	// CheckpointEveryVersions is how many commits may accumulate before
	// a metadata checkpoint is due (0 disables checkpointing).
	CheckpointEveryVersions int64
	// MinManifestSurplus is how many manifests beyond the consolidated
	// floor trigger a manifest-rewrite candidate (0 disables rewrites).
	MinManifestSurplus int
}

// DefaultPolicy mirrors catalog.DefaultPolicies plus a manifest-rewrite
// trigger.
func DefaultPolicy() Policy {
	return Policy{RetainSnapshots: 20, CheckpointEveryVersions: 100, MinManifestSurplus: 8}
}

// PolicySource supplies the maintenance policy for a table.
type PolicySource interface {
	PolicyFor(db, name string) Policy
}

// StaticPolicies applies one policy to every table.
type StaticPolicies struct{ Policy Policy }

// PolicyFor implements PolicySource.
func (s StaticPolicies) PolicyFor(_, _ string) Policy { return s.Policy }

// CatalogPolicies reads per-table policies from the OpenHouse-style
// control plane, falling back to Default for fields the catalog leaves
// unset (and for tables the catalog does not know).
type CatalogPolicies struct {
	CP      *catalog.ControlPlane
	Default Policy
}

// PolicyFor implements PolicySource. It resolves through the catalog's
// layered policies (database-level overrides, then the table's own set
// fields); fields left at zero fall back to Default. Disabling an
// action family fleet-wide is done through the Default policy itself.
func (c CatalogPolicies) PolicyFor(db, name string) Policy {
	out := c.Default
	pol, err := c.CP.EffectivePolicies(db, name)
	if err != nil {
		return out
	}
	if pol.RetainSnapshots > 0 {
		out.RetainSnapshots = pol.RetainSnapshots
	}
	if pol.CheckpointEveryVersions > 0 {
		out.CheckpointEveryVersions = pol.CheckpointEveryVersions
	}
	return out
}

// MetadataTable is the view of a table's metadata layer the maintenance
// pipeline observes. *lst.Table implements it directly; aggregate models
// (the fleet simulator) implement it themselves (NFR3).
type MetadataTable interface {
	core.Table
	MetadataStats() lst.MetadataStats
	// ExpireEstimate returns how many metadata objects expiring to
	// keepLast snapshots would delete.
	ExpireEstimate(keepLast int) int
}

// Maintainer executes metadata-maintenance actions on a table.
// *lst.Table implements it directly.
type Maintainer interface {
	ExpireSnapshots(keepLast int) (int, error)
	Checkpoint() (lst.MaintenanceResult, error)
	RewriteManifests() (lst.MaintenanceResult, error)
}

// Generator emits maintenance candidates for tables whose metadata layer
// violates policy, alongside an optional data-compaction generator's
// output — one candidate pool, one ranking.
type Generator struct {
	// Data generates the data-compaction candidates (nil for
	// metadata-only pipelines).
	Data core.Generator
	// Policies supplies per-table triggers; nil means DefaultPolicy.
	Policies PolicySource
}

// Name implements core.Generator.
func (Generator) Name() string { return "maintenance" }

// Candidates implements core.Generator.
func (g Generator) Candidates(tables []core.Table) []*core.Candidate {
	var out []*core.Candidate
	if g.Data != nil {
		out = g.Data.Candidates(tables)
	}
	for _, t := range tables {
		mt, ok := t.(MetadataTable)
		if !ok {
			continue
		}
		pol := g.policyFor(t)
		ms := mt.MetadataStats()
		if pol.RetainSnapshots > 0 && ms.Snapshots > pol.RetainSnapshots {
			out = append(out, &core.Candidate{Table: t, Action: core.ActionSnapshotExpiry})
		}
		if pol.CheckpointEveryVersions > 0 && ms.VersionsSinceCheckpoint >= pol.CheckpointEveryVersions {
			out = append(out, &core.Candidate{Table: t, Action: core.ActionMetadataCheckpoint})
		}
		if pol.MinManifestSurplus > 0 && ms.Manifests-ms.ConsolidatedManifests >= pol.MinManifestSurplus {
			out = append(out, &core.Candidate{Table: t, Action: core.ActionManifestRewrite})
		}
	}
	return out
}

func (g Generator) policyFor(t core.Table) Policy {
	if g.Policies == nil {
		return DefaultPolicy()
	}
	return g.Policies.PolicyFor(t.Database(), t.Name())
}

// Observer fills the standardized statistics for maintenance candidates
// — metadata-log size plus the per-action reduction estimate — and
// delegates data-compaction candidates to Base.
type Observer struct {
	// Base observes data-compaction candidates (required when the
	// generator emits them).
	Base core.Observer
	// Policies supplies the retention targets estimates depend on; nil
	// means DefaultPolicy.
	Policies PolicySource
	// Now supplies virtual time for age statistics; nil means 0.
	Now func() time.Duration
}

// Observe implements core.Observer.
func (o Observer) Observe(c *core.Candidate) (core.Stats, error) {
	if c.Action == core.ActionDataCompaction {
		if o.Base == nil {
			return core.Stats{}, fmt.Errorf("maintenance: no base observer for data candidate %s", c.ID())
		}
		return o.Base.Observe(c)
	}
	mt, ok := c.Table.(MetadataTable)
	if !ok {
		return core.Stats{}, fmt.Errorf("maintenance: %s does not expose metadata stats (%T)", c.ID(), c.Table)
	}
	pol := DefaultPolicy()
	if o.Policies != nil {
		pol = o.Policies.PolicyFor(c.Table.Database(), c.Table.Name())
	}
	ms := mt.MetadataStats()
	now := time.Duration(0)
	if o.Now != nil {
		now = o.Now()
	}
	s := core.Stats{
		MetadataObjects: ms.Objects,
		MetadataBytes:   ms.Bytes,
		Snapshots:       ms.Snapshots,
		TableAge:        now - c.Table.Created(),
		SinceLastWrite:  now - c.Table.LastWrite(),
		WriteCount:      c.Table.WriteCount(),
	}
	avg := int64(0)
	if ms.Objects > 0 {
		avg = ms.Bytes / int64(ms.Objects)
	}
	switch c.Action {
	case core.ActionSnapshotExpiry:
		s.MetadataReducible = mt.ExpireEstimate(pol.RetainSnapshots)
		// Expiry only deletes; it processes just the dropped objects.
		s.MetadataBytes = avg * int64(s.MetadataReducible)
	case core.ActionMetadataCheckpoint:
		// A checkpoint leaves two objects: the current metadata.json and
		// the checkpoint itself.
		if ms.Objects > 2 {
			s.MetadataReducible = ms.Objects - 2
		}
	case core.ActionManifestRewrite:
		if d := ms.Manifests - ms.ConsolidatedManifests; d > 0 {
			s.MetadataReducible = d
		}
	}
	return s, nil
}

// Runner dispatches selected candidates by action type: data compactions
// to Data, the metadata actions to the table's own Maintainer
// implementation. Maintenance work is priced with the same GBHr model as
// rewrites over the bytes it reads and writes.
type Runner struct {
	// Data runs data-compaction candidates (required when the generator
	// emits them).
	Data core.Runner
	// Policies supplies retention targets; nil means DefaultPolicy.
	Policies PolicySource
	// ExecutorMemoryGB and RewriteBytesPerHour price maintenance actions
	// in GBHr (zero throughput prices them free).
	ExecutorMemoryGB    float64
	RewriteBytesPerHour float64
}

// Run implements core.Runner.
func (r Runner) Run(c *core.Candidate) compaction.Result {
	if c.Action == core.ActionDataCompaction {
		if r.Data == nil {
			return compaction.Result{
				Table: c.Table.FullName(),
				Err:   fmt.Errorf("maintenance: no data runner for %s", c.ID()),
			}
		}
		return r.Data.Run(c)
	}
	res := compaction.Result{Table: c.Table.FullName()}
	m, ok := c.Table.(Maintainer)
	if !ok {
		res.Err = fmt.Errorf("maintenance: %s is not maintainable (%T)", c.ID(), c.Table)
		return res
	}
	switch c.Action {
	case core.ActionSnapshotExpiry:
		pol := DefaultPolicy()
		if r.Policies != nil {
			pol = r.Policies.PolicyFor(c.Table.Database(), c.Table.Name())
		}
		avg := avgMetaObjectBytes(c.Table)
		n, err := m.ExpireSnapshots(pol.RetainSnapshots)
		if err != nil {
			res.Err = err
			return res
		}
		if n == 0 {
			res.Skipped = true
			return res
		}
		res.FilesRemoved = n
		r.price(&res, avg*int64(n))
	case core.ActionMetadataCheckpoint:
		mr, err := m.Checkpoint()
		r.fold(&res, mr, err)
	case core.ActionManifestRewrite:
		mr, err := m.RewriteManifests()
		r.fold(&res, mr, err)
	default:
		res.Err = fmt.Errorf("maintenance: unknown action %v", c.Action)
	}
	return res
}

// fold maps a metadata-maintenance result onto the shared result type:
// metadata objects are namespace objects too, so they flow through the
// same removed/added accounting as data files.
func (r Runner) fold(res *compaction.Result, mr lst.MaintenanceResult, err error) {
	if err != nil {
		res.Err = err
		return
	}
	if mr.Skipped {
		res.Skipped = true
		return
	}
	res.FilesRemoved = mr.ObjectsRemoved
	res.FilesAdded = mr.ObjectsAdded
	res.BytesRewritten = mr.BytesWritten
	r.price(res, mr.BytesReclaimed+mr.BytesWritten)
}

// price charges GBHr and duration for processing the given byte volume.
func (r Runner) price(res *compaction.Result, bytes int64) {
	if r.RewriteBytesPerHour <= 0 || bytes <= 0 {
		return
	}
	hours := float64(bytes) / r.RewriteBytesPerHour
	res.GBHr = r.ExecutorMemoryGB * hours
	res.Duration = time.Duration(hours * float64(time.Hour))
}

func avgMetaObjectBytes(t core.Table) int64 {
	mt, ok := t.(MetadataTable)
	if !ok {
		return 0
	}
	ms := mt.MetadataStats()
	if ms.Objects == 0 {
		return 0
	}
	return ms.Bytes / int64(ms.Objects)
}
