package bench

import (
	"fmt"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/workload"
)

// HookTrait selects the optimize-after-write trigger trait of the
// auto-tuning experiments (§6.3): small-file count or file entropy.
type HookTrait int

// Hook traits.
const (
	HookSmallFileCount HookTrait = iota
	HookEntropy
)

func (h HookTrait) String() string {
	if h == HookEntropy {
		return "entropy"
	}
	return "small-file-count"
}

// HookSpec configures optimize-after-write compaction for a phased run.
type HookSpec struct {
	Enabled   bool
	Trait     HookTrait
	Threshold float64
}

// PhasedRunConfig configures a phased (LST-Bench-style) run.
type PhasedRunConfig struct {
	Workload workload.PhasedWorkload
	Seed     int64
	// Hook enables optimize-after-write auto-compaction (§6.3's
	// simplified setup with unlimited compaction resources).
	Hook HookSpec
	// CompactAfterPhases lists phase names after which a manual
	// full-lake compaction runs (the paper's Figure 3 intervention).
	CompactAfterPhases map[string]bool
}

// PhaseResult is one executed phase.
type PhaseResult struct {
	Name     string
	Duration time.Duration
	Queries  int
}

// PhasedResult is the outcome of a phased run.
type PhasedResult struct {
	Workload string
	Phases   []PhaseResult
	// Total is the end-to-end duration: with a separate write cluster
	// (WP3) the write lane overlaps the read lane, so Total is the max
	// of the two; otherwise it is their sum.
	Total time.Duration
	// ManualCompactionTime is time spent in between-phase manual
	// compactions (reported separately, as in Figure 3).
	ManualCompactionTime time.Duration
	// HookTriggers counts optimize-after-write firings.
	HookTriggers int
	// CompactionGBHr is total compaction compute.
	CompactionGBHr float64
	// FilesAtEnd is the final live data-file count.
	FilesAtEnd int
	// PhaseDurationsByName sums durations of phases sharing a name
	// (e.g. all "single-user" repetitions).
	PhaseDurationsByName map[string]time.Duration
}

// RunPhased executes a phased workload single-user style: queries run
// back to back; reads run on the query cluster and, when the workload
// declares a separate write cluster (WP3), writes and their triggered
// compactions run on the sidecar without extending the read lane.
func RunPhased(cfg PhasedRunConfig) (*PhasedResult, error) {
	env := NewEnv(EnvConfig{Seed: cfg.Seed, StrictRewriteConflicts: false})
	w := cfg.Workload

	res := &PhasedResult{
		Workload:             w.Name,
		PhaseDurationsByName: map[string]time.Duration{},
	}

	// Create and load tables.
	if _, err := env.CP.CreateDatabase("bench", "lst-bench", 0); err != nil {
		return nil, err
	}
	months := workload.MonthPartitions(w.Months)
	tables := map[string]*lst.Table{}
	for _, td := range w.Tables {
		tbl, err := env.CP.CreateTable("bench", lst.TableConfig{
			Name:   td.Name,
			Schema: td.Schema,
			Spec:   td.Spec,
			Mode:   td.Mode,
		})
		if err != nil {
			return nil, err
		}
		tables[td.Name] = tbl
		q := engine.Query{
			App:         "load/" + td.Name,
			Table:       tbl,
			Kind:        engine.Insert,
			Bytes:       workload.SizeOfShare(w.RawBytes, td.ShareOfData),
			Parallelism: w.LoadParallelism,
		}
		if td.Spec.IsPartitioned() {
			q.TargetPartitions = months
		}
		if r := env.Engine.Exec(q); r.Failed() {
			return nil, fmt.Errorf("bench: load %s: %w", td.Name, r.Err)
		}
	}

	// Optimize-after-write hook (§5, §6.3).
	var hook *core.AfterWriteHook
	if cfg.Hook.Enabled {
		var trait core.Trait = core.FileCountReduction{}
		if cfg.Hook.Trait == HookEntropy {
			trait = core.FileEntropy{TargetFileSize: env.TargetFileSize}
		}
		hook = &core.AfterWriteHook{
			Observer: core.StatsObserver{
				TargetFileSize: env.TargetFileSize,
				Now:            env.Clock.Now,
			},
			Trait:     trait,
			Threshold: cfg.Hook.Threshold,
			Mode:      core.Immediate,
			Runner:    core.ExecutorRunner{Exec: env.Exec},
		}
	}

	// Two lanes: reads on the query cluster, writes (and hook
	// compactions) on the write cluster when decoupled.
	var readLane, writeLane time.Duration
	bump := func(lane *time.Duration, d time.Duration) {
		*lane += d
		// The global clock advances by every operation so that LST
		// timestamps stay monotonic; per-lane makespans are tracked
		// separately for the WP3 overlap accounting.
		env.Clock.Advance(d)
	}

	for _, phase := range w.Phases {
		repeat := phase.Repeat
		if repeat < 1 {
			repeat = 1
		}
		var phaseDur time.Duration
		queries := 0
		for rep := 0; rep < repeat; rep++ {
			for _, tpl := range phase.Queries {
				tbl := tables[tpl.Table]
				if tbl == nil {
					continue
				}
				q := engine.Query{
					App:            "phase/" + phase.Name + "/" + tpl.Name,
					Table:          tbl,
					Kind:           tpl.Kind,
					ScanFraction:   tpl.ScanFraction,
					Bytes:          tpl.WriteBytes,
					ModifyFraction: tpl.ModifyFraction,
					Parallelism:    tpl.Parallelism,
				}
				if n := tpl.RecentPartitions; n > 0 && tbl.Spec().IsPartitioned() {
					parts := tbl.Partitions()
					if len(parts) > n {
						parts = parts[len(parts)-n:]
					}
					if q.Kind == engine.Read {
						q.ScanPartitions = parts
					} else {
						q.TargetPartitions = parts
					}
				}
				queries++
				eng := env.Engine
				lane := &readLane
				if q.Kind.IsWrite() && w.SeparateWriteCluster {
					eng = env.WriteEngine
					lane = &writeLane
				}
				r := eng.Exec(q)
				d := r.QueueDelay + r.ExecTime
				bump(lane, d)
				phaseDur += d
				if q.Kind.IsWrite() && hook != nil {
					hr, err := hook.OnWrite(tbl)
					if err == nil && hr.Triggered && hr.Result != nil {
						res.HookTriggers++
						res.CompactionGBHr += hr.Result.GBHr
						bump(lane, hr.Result.Duration)
						phaseDur += hr.Result.Duration
					}
				}
			}
		}
		res.Phases = append(res.Phases, PhaseResult{Name: phase.Name, Duration: phaseDur, Queries: queries})
		res.PhaseDurationsByName[phase.Name] += phaseDur

		// Manual between-phase compaction (Figure 3).
		if cfg.CompactAfterPhases[phase.Name] {
			for _, td := range w.Tables {
				cres := env.Exec.CompactTable(tables[td.Name])
				if cres.Succeeded() {
					res.ManualCompactionTime += cres.Duration
					res.CompactionGBHr += cres.GBHr
					env.Clock.Advance(cres.Duration)
				}
			}
		}
	}

	if w.SeparateWriteCluster {
		res.Total = readLane
		if writeLane > readLane {
			res.Total = writeLane
		}
	} else {
		res.Total = readLane + writeLane
	}
	for _, t := range tables {
		res.FilesAtEnd += t.FileCount()
	}
	return res, nil
}
