// Package bench is the benchmark harness (the paper extends LST-Bench,
// §6): it materializes a simulated lake, loads CAB or phased workloads,
// drives query streams through a discrete-event loop with two-phase write
// commits (so write-write and compaction conflicts arise exactly as in
// the paper's Table 1), runs AutoComp on its triggers, and collects the
// client- and server-side metrics the paper reports.
package bench

import (
	"autocomp/internal/catalog"
	"autocomp/internal/cluster"
	"autocomp/internal/compaction"
	"autocomp/internal/engine"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Env is a fully wired simulated lake: storage, catalog, a query cluster
// (1+15 nodes), a dedicated compaction cluster (1+3), an optional sidecar
// write cluster (7 nodes, for TPC-DS WP3), and engines on each.
type Env struct {
	Clock  *sim.Clock
	Events *sim.EventQueue
	RNG    *sim.RNG

	FS *storage.NameNode
	CP *catalog.ControlPlane

	QueryCluster      *cluster.Cluster
	CompactionCluster *cluster.Cluster
	WriteCluster      *cluster.Cluster

	Engine      *engine.Engine // runs on QueryCluster
	WriteEngine *engine.Engine // runs on WriteCluster

	Exec *compaction.Executor

	// TargetFileSize is the compaction target (512 MB by default).
	TargetFileSize int64
	// Strict mirrors EnvConfig.StrictRewriteConflicts and is applied to
	// every table the harness creates.
	Strict bool
}

// EnvConfig tunes environment construction.
type EnvConfig struct {
	Seed           int64
	TargetFileSize int64
	// StrictRewriteConflicts enables the Iceberg v1.2.0 rewrite
	// validation quirk on created tables (§4.4).
	StrictRewriteConflicts bool
	// Storage overrides the NameNode config (zero value = default).
	Storage storage.Config
	// EngineConfig overrides the engine cost model (zero = default).
	EngineConfig engine.Config
}

// NewEnv builds an environment mirroring the paper's §6 cluster setup.
func NewEnv(cfg EnvConfig) *Env {
	if cfg.TargetFileSize <= 0 {
		cfg.TargetFileSize = 512 * storage.MB
	}
	if cfg.Storage.BlockSize == 0 {
		cfg.Storage = storage.DefaultConfig()
	}
	if cfg.EngineConfig.DefaultShufflePartitions == 0 {
		cfg.EngineConfig = engine.DefaultConfig()
	}
	clock := sim.NewClock()
	rng := sim.NewRNG(cfg.Seed)
	fs := storage.NewNameNode(cfg.Storage, clock, rng.Fork())
	cp := catalog.New(fs, clock)

	qc := cluster.New(cluster.QueryClusterConfig(), clock)
	cc := cluster.New(cluster.CompactionClusterConfig(), clock)

	wcfg := cluster.QueryClusterConfig()
	wcfg.Name = "write-sidecar"
	wcfg.Executors = 7
	wc := cluster.New(wcfg, clock)

	env := &Env{
		Clock:             clock,
		Events:            sim.NewEventQueue(clock),
		RNG:               rng,
		FS:                fs,
		CP:                cp,
		QueryCluster:      qc,
		CompactionCluster: cc,
		WriteCluster:      wc,
		Engine:            engine.New(cfg.EngineConfig, qc, fs, clock, rng.Fork()),
		WriteEngine:       engine.New(cfg.EngineConfig, wc, fs, clock, rng.Fork()),
		TargetFileSize:    cfg.TargetFileSize,
	}
	env.Exec = &compaction.Executor{
		Cluster:        cc,
		TargetFileSize: cfg.TargetFileSize,
		AppPrefix:      "compaction/",
	}
	env.Strict = cfg.StrictRewriteConflicts
	return env
}

// RewriteBytesPerHour returns the compaction cluster's steady-state
// rewrite throughput (all task slots, read+write amortized), the
// RewriteBytesPerHour term of the §4.2 cost estimator. Real jobs run
// slower than this ideal (startup, per-file overhead, wave rounding),
// which is exactly the §7 cost underestimation.
func (e *Env) RewriteBytesPerHour() float64 {
	cfg := e.CompactionCluster.Config()
	slots := float64(cfg.Executors * cfg.ExecutorCores)
	perSlot := 1 / (1/cfg.ScanBytesPerSec + 1/cfg.WriteBytesPerSec)
	return perSlot * slots * 3600
}

// ExecutorMemoryGB returns the total memory allocated to the compaction
// job's executors, the paper's ExecutorMemoryGB term.
func (e *Env) ExecutorMemoryGB() float64 {
	cfg := e.CompactionCluster.Config()
	return cfg.ExecutorMemoryGB * float64(cfg.Executors)
}
