package bench

import (
	"fmt"
	"time"

	"autocomp/internal/compaction"
	"autocomp/internal/core"
	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/metrics"
	"autocomp/internal/workload"
)

// StrategyKind selects the candidate-selection strategy of §6: no
// compaction, table-scope MOOP, or the hybrid (partition/table) MOOP.
type StrategyKind int

// Strategies.
const (
	NoCompaction StrategyKind = iota
	MOOPTable
	MOOPHybrid
)

func (k StrategyKind) String() string {
	switch k {
	case NoCompaction:
		return "no-compaction"
	case MOOPTable:
		return "moop-table"
	case MOOPHybrid:
		return "moop-hybrid"
	default:
		return "unknown"
	}
}

// Strategy configures AutoComp for a CAB run (§6: k=10 table scope, k=50
// and k=500 hybrid; weights 0.7 file-count-reduction / 0.3 compute cost;
// hourly trigger; 512 MB target).
type Strategy struct {
	Kind StrategyKind
	TopK int
	// BenefitWeight and CostWeight are the MOOP weights (default
	// 0.7/0.3).
	BenefitWeight float64
	CostWeight    float64
	// Every is the trigger period (default 1 hour).
	Every time.Duration
}

// Label names the strategy like the paper's figures ("MOOP (Table,
// Top-10)").
func (s Strategy) Label() string {
	switch s.Kind {
	case MOOPTable:
		return fmt.Sprintf("MOOP (Table, Top-%d)", s.TopK)
	case MOOPHybrid:
		return fmt.Sprintf("MOOP (Hybrid, Top-%d)", s.TopK)
	default:
		return "No Compaction"
	}
}

// CABRunConfig configures one CAB experiment run.
type CABRunConfig struct {
	Workload workload.CABConfig
	Strategy Strategy
	// SampleEvery is the file-count sampling period (default 10 min).
	SampleEvery time.Duration
	Seed        int64
	// DebugConflicts prints each conflicting compaction op (dev aid).
	DebugConflicts bool
}

// HourStat aggregates one experiment hour.
type HourStat struct {
	Hour int
	// Read-only and read-write query latencies (seconds).
	ROLatencies []float64
	RWLatencies []float64
	// WriteQueries issued in the hour.
	WriteQueries int
	// ClientConflicts counts queries that hit ≥1 commit conflict.
	ClientConflicts int
	// ClusterConflicts counts failed compaction commits.
	ClusterConflicts int
}

// CABResult is the outcome of a CAB run; Figures 6–8 and Table 1 are
// projections of it.
type CABResult struct {
	Strategy Strategy

	// FileCounts samples total live data files over time (Figure 6),
	// relative to workload start.
	FileCounts *metrics.TimeSeries
	// Hours aggregates per-hour client metrics (Figure 8, Table 1).
	Hours []HourStat
	// CompactionGBHrs holds per-operation GBHrApp values (Figure 7).
	CompactionGBHrs []float64
	// CompactionRuns counts trigger firings.
	CompactionRuns int
	// FilesReducedTotal across all compactions.
	FilesReducedTotal int
	// EndToEnd is the workload makespan (last query end − start); the
	// no-compaction baseline overruns the 5-hour window (§6.2).
	EndToEnd time.Duration
	// Queries and Failures count executed queries.
	Queries  int
	Failures int
}

// cabRun holds live state while a CAB experiment executes.
type cabRun struct {
	cfg    CABRunConfig
	env    *Env
	tables map[string]map[string]*lst.Table
	t0     time.Duration
	res    *CABResult
	svc    *core.Service
	runner core.ExecutorRunner
}

// RunCAB executes a full CAB experiment: load, 5 hours of 20-database
// query streams, and (optionally) hourly AutoComp on the dedicated
// compaction cluster.
func RunCAB(cfg CABRunConfig) (*CABResult, error) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10 * time.Minute
	}
	if cfg.Strategy.Every <= 0 {
		cfg.Strategy.Every = time.Hour
	}
	if cfg.Strategy.BenefitWeight == 0 && cfg.Strategy.CostWeight == 0 {
		cfg.Strategy.BenefitWeight, cfg.Strategy.CostWeight = 0.7, 0.3
	}
	env := NewEnv(EnvConfig{Seed: cfg.Seed, StrictRewriteConflicts: true})
	r := &cabRun{
		cfg:    cfg,
		env:    env,
		tables: map[string]map[string]*lst.Table{},
		res: &CABResult{
			Strategy:   cfg.Strategy,
			FileCounts: metrics.NewTimeSeries("file-count"),
		},
		runner: core.ExecutorRunner{Exec: env.Exec},
	}

	gen := workload.NewCAB(cfg.Workload)
	plan := gen.Plan()
	if err := r.load(plan); err != nil {
		return nil, err
	}
	if cfg.Strategy.Kind != NoCompaction {
		svc, err := r.buildService()
		if err != nil {
			return nil, err
		}
		r.svc = svc
	}
	r.schedule(gen, plan)
	env.Events.RunAll()
	r.finish()
	return r.res, nil
}

// load creates the databases and tables and performs the initial
// (untuned) bulk load; the clock ends at the load's completion, which
// becomes the workload's t0.
func (r *cabRun) load(plan *workload.Plan) error {
	env := r.env
	var loadEnd time.Duration
	for _, dbp := range plan.Databases {
		if _, err := env.CP.CreateDatabase(dbp.Name, "cab", 0); err != nil {
			return err
		}
		r.tables[dbp.Name] = map[string]*lst.Table{}
		months := workload.MonthPartitions(dbp.Months)
		for _, td := range dbp.Tables {
			tbl, err := env.CP.CreateTable(dbp.Name, lst.TableConfig{
				Name:                   td.Name,
				Schema:                 td.Schema,
				Spec:                   td.Spec,
				Mode:                   td.Mode,
				StrictRewriteConflicts: env.Strict,
			})
			if err != nil {
				return err
			}
			r.tables[dbp.Name][td.Name] = tbl
			bytes := workload.SizeOfShare(dbp.RawBytes, td.ShareOfData)
			if td.Spec.IsPartitioned() {
				// Backfills load partitioned tables one partition per
				// job (a month of history each), so large partitioned
				// tables accumulate untuned writer outputs per
				// partition — the dominant fragmentation source (§2).
				perPart := dbp.LoadParallelism / 3
				if perPart < 16 {
					perPart = 16
				}
				for _, part := range months {
					res := env.Engine.Exec(engine.Query{
						App:              "load/" + dbp.Name + "/" + td.Name + "/" + part,
						Table:            tbl,
						Kind:             engine.Insert,
						Bytes:            bytes / int64(len(months)),
						Parallelism:      perPart,
						TargetPartitions: []string{part},
					})
					if res.Failed() {
						return fmt.Errorf("bench: load %s.%s/%s: %w", dbp.Name, td.Name, part, res.Err)
					}
					if end := res.End(); end > loadEnd {
						loadEnd = end
					}
				}
				continue
			}
			res := env.Engine.Exec(engine.Query{
				App:         "load/" + dbp.Name + "/" + td.Name,
				Table:       tbl,
				Kind:        engine.Insert,
				Bytes:       bytes,
				Parallelism: dbp.LoadParallelism,
			})
			if res.Failed() {
				return fmt.Errorf("bench: load %s.%s: %w", dbp.Name, td.Name, res.Err)
			}
			if end := res.End(); end > loadEnd {
				loadEnd = end
			}
		}
	}
	env.Clock.Set(loadEnd)
	r.t0 = loadEnd
	return nil
}

// buildService wires AutoComp per the strategy.
func (r *cabRun) buildService() (*core.Service, error) {
	env := r.env
	var gen core.Generator = core.TableScopeGenerator{}
	statsFilters := []core.Filter{core.MinSmallFiles{Min: 2}}
	if r.cfg.Strategy.Kind == MOOPHybrid {
		gen = core.HybridScopeGenerator{}
		// Fine-grained work units make the §3.3 recent-write filter
		// usable: hot partitions are deferred to a later run instead of
		// racing their writers (table-scope candidates are always
		// "recently written" on live tables, so the legacy table-scope
		// configuration cannot apply it).
		statsFilters = append(statsFilters, core.CandidateQuiet{
			Min: 20 * time.Minute,
			Now: env.Clock.Now,
		})
	}
	costTrait := core.ComputeCost{
		ExecutorMemoryGB:    env.ExecutorMemoryGB(),
		RewriteBytesPerHour: env.RewriteBytesPerHour(),
	}
	return core.NewService(core.Config{
		Connector: core.CatalogConnector{CP: env.CP},
		Generator: gen,
		Observer: core.StatsObserver{
			TargetFileSize: env.TargetFileSize,
			Quota:          env.CP.QuotaUtilization,
			Now:            env.Clock.Now,
		},
		StatsFilters: statsFilters,
		Traits:       []core.Trait{core.FileCountReduction{}, costTrait},
		Ranker: core.MOOPRanker{Objectives: []core.Objective{
			{Trait: core.FileCountReduction{}, Weight: r.cfg.Strategy.BenefitWeight},
			{Trait: costTrait, Weight: r.cfg.Strategy.CostWeight},
		}},
		Selector:  core.TopK{K: r.cfg.Strategy.TopK},
		Scheduler: core.TablesParallelPartitionsSequential{},
	})
}

// schedule installs sampling, queries, and compaction triggers.
func (r *cabRun) schedule(gen *workload.Generator, plan *workload.Plan) {
	env, t0 := r.env, r.t0
	dur := plan.Duration

	// File-count sampling (Figure 6), including t0.
	r.sampleFileCount()
	for t := r.cfg.SampleEvery; t <= dur; t += r.cfg.SampleEvery {
		env.Events.ScheduleAt(t0+t, r.sampleFileCount)
	}

	// Query streams.
	for _, dbp := range plan.Databases {
		for _, ev := range gen.Events(dbp) {
			ev := ev
			env.Events.ScheduleAt(t0+ev.At, func() { r.execQuery(ev) })
		}
	}

	// Compaction trigger: hourly on the compaction cluster; four
	// executions in a 5-hour run (§6).
	if r.svc != nil {
		for t := r.cfg.Strategy.Every; t < dur; t += r.cfg.Strategy.Every {
			env.Events.ScheduleAt(t0+t, r.runCompaction)
		}
	}
}

// hourOf buckets a time (relative to t0) into an experiment hour.
func (r *cabRun) hourOf(t time.Duration) int {
	h := int((t - r.t0) / time.Hour)
	if h < 0 {
		h = 0
	}
	for len(r.res.Hours) <= h {
		r.res.Hours = append(r.res.Hours, HourStat{Hour: len(r.res.Hours) + 1})
	}
	return h
}

// sampleFileCount records total live data files across all tables.
func (r *cabRun) sampleFileCount() {
	total := 0
	for _, ts := range r.tables {
		for _, t := range ts {
			total += t.FileCount()
		}
	}
	r.res.FileCounts.Add(r.env.Clock.Now()-r.t0, float64(total))
}

// execQuery runs one workload event.
func (r *cabRun) execQuery(ev workload.Event) {
	env := r.env
	tbl := r.tables[ev.Database][ev.Template.Table]
	if tbl == nil {
		return
	}
	q := engine.Query{
		App:            ev.Stream + "/" + ev.Template.Name,
		Table:          tbl,
		Kind:           ev.Template.Kind,
		ScanFraction:   ev.Template.ScanFraction,
		Bytes:          ev.Template.WriteBytes,
		ModifyFraction: ev.Template.ModifyFraction,
		Parallelism:    ev.Template.Parallelism,
	}
	if n := ev.Template.RecentPartitions; n > 0 && tbl.Spec().IsPartitioned() {
		parts := tbl.Partitions()
		if len(parts) > n {
			parts = parts[len(parts)-n:]
		}
		if q.Kind == engine.Read {
			q.ScanPartitions = parts
		} else {
			q.TargetPartitions = parts
		}
	}
	r.res.Queries++
	if q.Kind == engine.Read {
		res := env.Engine.Exec(q)
		h := r.hourOf(res.Start)
		r.res.Hours[h].ROLatencies = append(r.res.Hours[h].ROLatencies,
			(res.QueueDelay + res.ExecTime).Seconds())
		r.noteResult(res)
		return
	}
	h := r.hourOf(env.Clock.Now())
	r.res.Hours[h].WriteQueries++
	pw := env.Engine.StartWrite(q)
	at := pw.CommitAt()
	if at < env.Clock.Now() {
		at = env.Clock.Now()
	}
	env.Events.ScheduleAt(at, func() {
		res := pw.Finish()
		hh := r.hourOf(res.Start)
		r.res.Hours[hh].RWLatencies = append(r.res.Hours[hh].RWLatencies,
			(res.QueueDelay + res.ExecTime).Seconds())
		if res.Retries > 0 {
			r.res.Hours[hh].ClientConflicts++
		}
		r.noteResult(res)
	})
}

func (r *cabRun) noteResult(res engine.Result) {
	if res.Failed() {
		r.res.Failures++
	}
	if end := res.End() - r.t0; end > r.res.EndToEnd {
		r.res.EndToEnd = end
	}
}

// runCompaction performs one AutoComp cycle: Decide synchronously, then
// execute the plan rounds as two-phase ops interleaved with the workload
// (round i+1 starts once round i's commits finish).
func (r *cabRun) runCompaction() {
	d, err := r.svc.Decide()
	if err != nil {
		return
	}
	r.res.CompactionRuns++
	rep := &core.Report{Decision: d}
	env := r.env

	var runRound func(i int)
	runRound = func(i int) {
		if i >= len(d.Plan) {
			r.svc.Feedback(rep)
			return
		}
		now := env.Clock.Now()
		maxEnd := now
		for _, cand := range d.Plan[i] {
			cand := cand
			op, err := r.runner.StartCandidate(cand)
			if err != nil {
				continue
			}
			end := op.CommitAt()
			if end < now {
				end = now
			}
			if end > maxEnd {
				maxEnd = end
			}
			env.Events.ScheduleAt(end, func() {
				res := op.Finish()
				rep.AddResult(cand, res)
				r.recordCompaction(res)
			})
		}
		env.Events.ScheduleAt(maxEnd, func() { runRound(i + 1) })
	}
	runRound(0)
}

func (r *cabRun) recordCompaction(res compaction.Result) {
	if res.Skipped {
		return
	}
	r.res.CompactionGBHrs = append(r.res.CompactionGBHrs, res.GBHr)
	if res.Conflict {
		h := r.hourOf(r.env.Clock.Now())
		r.res.Hours[h].ClusterConflicts += res.ConflictCount
		if r.cfg.DebugConflicts {
			fmt.Printf("conflict hour=%d table=%s partition=%q dur=%v err=%v\n",
				h+1, res.Table, res.Partition, res.Duration, res.Err)
		}
		return
	}
	if res.Err == nil {
		r.res.FilesReducedTotal += res.Reduction()
	}
}

// finish takes a final file-count sample.
func (r *cabRun) finish() {
	r.sampleFileCount()
}
