package bench

import (
	"testing"
	"time"

	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

// smallCAB returns a scaled-down CAB config that runs fast in tests.
func smallCAB() workload.CABConfig {
	return workload.CABConfig{
		RawDataBytes: 20 * storage.GB,
		Databases:    4,
		CPUHours:     1,
		Duration:     3 * time.Hour,
		Months:       6,
		Seed:         1,
	}
}

func TestEnvDefaults(t *testing.T) {
	env := NewEnv(EnvConfig{Seed: 1})
	if env.TargetFileSize != 512*storage.MB {
		t.Fatalf("target = %d", env.TargetFileSize)
	}
	if env.QueryCluster.Config().Executors != 15 {
		t.Fatalf("query executors = %d", env.QueryCluster.Config().Executors)
	}
	if env.CompactionCluster.Config().Executors != 3 {
		t.Fatalf("compaction executors = %d", env.CompactionCluster.Config().Executors)
	}
	if env.WriteCluster.Config().Executors != 7 {
		t.Fatalf("write executors = %d", env.WriteCluster.Config().Executors)
	}
	if env.RewriteBytesPerHour() <= 0 || env.ExecutorMemoryGB() != 64*3 {
		t.Fatal("throughput/memory accessors")
	}
}

func TestRunCABNoCompactionGrowsFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("CAB/phased runs take ~100ms-1s each; skipped in -short")
	}
	res, err := RunCAB(CABRunConfig{
		Workload: smallCAB(),
		Strategy: Strategy{Kind: NoCompaction},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries ran")
	}
	fc := res.FileCounts.Values()
	if len(fc) < 3 {
		t.Fatalf("file-count samples = %d", len(fc))
	}
	if fc[len(fc)-1] <= fc[0] {
		t.Fatalf("baseline file count did not grow: %v -> %v", fc[0], fc[len(fc)-1])
	}
	if res.CompactionRuns != 0 || len(res.CompactionGBHrs) != 0 {
		t.Fatal("no-compaction run compacted")
	}
}

func TestRunCABTableStrategyReducesFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("CAB/phased runs take ~100ms-1s each; skipped in -short")
	}
	base, err := RunCAB(CABRunConfig{
		Workload: smallCAB(),
		Strategy: Strategy{Kind: NoCompaction},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := RunCAB(CABRunConfig{
		Workload: smallCAB(),
		Strategy: Strategy{Kind: MOOPTable, TopK: 10},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp.CompactionRuns != 2 { // 3-hour run → triggers at h1, h2
		t.Fatalf("compaction runs = %d", comp.CompactionRuns)
	}
	if comp.FilesReducedTotal == 0 {
		t.Fatal("no files reduced")
	}
	bLast := base.FileCounts.Last()
	cLast := comp.FileCounts.Last()
	if cLast >= bLast {
		t.Fatalf("compaction did not reduce final file count: %v vs %v", cLast, bLast)
	}
	if len(comp.CompactionGBHrs) == 0 {
		t.Fatal("no GBHrApp recorded")
	}
}

func TestRunCABHybridGentlerThanTable(t *testing.T) {
	if testing.Short() {
		t.Skip("CAB/phased runs take ~100ms-1s each; skipped in -short")
	}
	table, err := RunCAB(CABRunConfig{
		Workload: smallCAB(),
		Strategy: Strategy{Kind: MOOPTable, TopK: 10},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := RunCAB(CABRunConfig{
		Workload: smallCAB(),
		Strategy: Strategy{Kind: MOOPHybrid, TopK: 10},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid compacts fewer files per run (partition-scope work units),
	// so its reduction is more gradual (§6.1).
	if hybrid.FilesReducedTotal >= table.FilesReducedTotal {
		t.Fatalf("hybrid %d >= table %d files reduced",
			hybrid.FilesReducedTotal, table.FilesReducedTotal)
	}
}

func TestRunCABDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("CAB/phased runs take ~100ms-1s each; skipped in -short")
	}
	run := func() *CABResult {
		res, err := RunCAB(CABRunConfig{
			Workload: smallCAB(),
			Strategy: Strategy{Kind: MOOPTable, TopK: 5},
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.FilesReducedTotal != b.FilesReducedTotal ||
		a.EndToEnd != b.EndToEnd || a.FileCounts.Last() != b.FileCounts.Last() {
		t.Fatalf("non-deterministic runs: %+v vs %+v", a.Queries, b.Queries)
	}
}

func TestStrategyLabels(t *testing.T) {
	if (Strategy{Kind: MOOPTable, TopK: 10}).Label() != "MOOP (Table, Top-10)" {
		t.Fatal("table label")
	}
	if (Strategy{Kind: MOOPHybrid, TopK: 500}).Label() != "MOOP (Hybrid, Top-500)" {
		t.Fatal("hybrid label")
	}
	if (Strategy{}).Label() != "No Compaction" {
		t.Fatal("baseline label")
	}
	if NoCompaction.String() != "no-compaction" || MOOPTable.String() != "moop-table" ||
		MOOPHybrid.String() != "moop-hybrid" || StrategyKind(9).String() != "unknown" {
		t.Fatal("kind strings")
	}
}

func TestRunPhasedWP1MaintenanceDegradesReads(t *testing.T) {
	if testing.Short() {
		t.Skip("CAB/phased runs take ~100ms-1s each; skipped in -short")
	}
	res, err := RunPhased(PhasedRunConfig{
		Workload: workload.TPCDSWP1(20 * storage.GB),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) == 0 || res.Total <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// First single-user phase (clean layout) vs last one (after 4
	// maintenance rounds without compaction): reads must be slower.
	var first, last time.Duration
	for _, p := range res.Phases {
		if p.Name == "single-user-1" && first == 0 {
			first = p.Duration
		}
		if p.Name == "single-user" {
			last = p.Duration
		}
	}
	if first == 0 || last == 0 {
		t.Fatalf("phases = %+v", res.Phases)
	}
	if last <= first {
		t.Fatalf("maintenance did not degrade reads: first=%v last=%v", first, last)
	}
}

func TestRunPhasedHookRestoresPerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("CAB/phased runs take ~100ms-1s each; skipped in -short")
	}
	noComp, err := RunPhased(PhasedRunConfig{
		Workload: workload.TPCDSWP1(20 * storage.GB),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := RunPhased(PhasedRunConfig{
		Workload: workload.TPCDSWP1(20 * storage.GB),
		Seed:     1,
		Hook:     HookSpec{Enabled: true, Trait: HookSmallFileCount, Threshold: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked.HookTriggers == 0 {
		t.Fatal("hook never triggered")
	}
	if hooked.FilesAtEnd >= noComp.FilesAtEnd {
		t.Fatalf("hook did not reduce files: %d vs %d", hooked.FilesAtEnd, noComp.FilesAtEnd)
	}
}

func TestRunPhasedWP3OverlapsWriteLane(t *testing.T) {
	if testing.Short() {
		t.Skip("CAB/phased runs take ~100ms-1s each; skipped in -short")
	}
	wp1, err := RunPhased(PhasedRunConfig{
		Workload: workload.TPCDSWP1(20 * storage.GB),
		Seed:     1,
		Hook:     HookSpec{Enabled: true, Trait: HookSmallFileCount, Threshold: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	wp3, err := RunPhased(PhasedRunConfig{
		Workload: workload.TPCDSWP3(20 * storage.GB),
		Seed:     1,
		Hook:     HookSpec{Enabled: true, Trait: HookSmallFileCount, Threshold: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// WP3's writes and compactions overlap the read lane, so its
	// end-to-end time is shorter than WP1's serial execution.
	if wp3.Total >= wp1.Total {
		t.Fatalf("WP3 %v >= WP1 %v", wp3.Total, wp1.Total)
	}
}

func TestRunPhasedManualCompactionTracked(t *testing.T) {
	if testing.Short() {
		t.Skip("CAB/phased runs take ~100ms-1s each; skipped in -short")
	}
	res, err := RunPhased(PhasedRunConfig{
		Workload:           workload.TPCDSWP1(20 * storage.GB),
		Seed:               1,
		CompactAfterPhases: map[string]bool{"maintenance": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ManualCompactionTime <= 0 {
		t.Fatal("manual compaction time not tracked")
	}
	if res.CompactionGBHr <= 0 {
		t.Fatal("manual compaction GBHr not tracked")
	}
}

func TestHookTraitStrings(t *testing.T) {
	if HookSmallFileCount.String() != "small-file-count" || HookEntropy.String() != "entropy" {
		t.Fatal("hook trait strings")
	}
}
