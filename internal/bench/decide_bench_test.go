package bench

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/decideshard"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// decideService builds an aged seed-1 fleet of the given size wired to
// the unified maintenance decide pipeline, optionally routed through a
// sharded decide engine. Decide is a pure observe→orient→decide pass,
// so one service can be re-decided b.N times against frozen state.
func decideService(tb testing.TB, tables, shards int) (*core.Service, *decideshard.Engine) {
	tb.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Seed = 1
	cfg.InitialTables = tables
	cfg.TablesPerMonth = 0
	f := fleet.New(cfg, sim.NewClock())
	f.AdvanceDay()
	c := f.MaintenanceConfig(core.TopK{K: 50},
		fleet.DefaultModel(512*storage.MB), maintenance.DefaultPolicy())
	var eng *decideshard.Engine
	if shards > 1 {
		eng = decideshard.New(decideshard.Options{Shards: shards})
		c.Decider = eng.Decide
	}
	svc, err := core.NewService(c)
	if err != nil {
		tb.Fatal(err)
	}
	return svc, eng
}

// BenchmarkDecide measures decide wall time across fleet sizes and shard
// counts (shards=1 is the serial pipeline). On a single-core host the
// sharded rows show partitioning overhead, not the parallel win — the
// per-shard critical path is reported alongside ns/op for that.
func BenchmarkDecide(b *testing.B) {
	sizes := []int{10_000, 100_000}
	if testing.Short() {
		sizes = []int{1_000}
	}
	for _, tables := range sizes {
		for _, shards := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("tables-%d/shards-%d", tables, shards), func(b *testing.B) {
				svc, eng := decideService(b, tables, shards)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := svc.Decide(); err != nil {
						b.Fatal(err)
					}
				}
				if eng != nil {
					cs := eng.LastCycle()
					b.ReportMetric(float64(cs.CriticalPath())/float64(time.Millisecond), "critpath-ms")
					b.ReportMetric(float64(cs.Merge)/float64(time.Microsecond), "merge-us")
				}
			})
		}
	}
}

// bestDecide returns the fastest of reps timed decides (one untimed
// warmup first) plus the matching best engine critical path.
func bestDecide(tb testing.TB, svc *core.Service, eng *decideshard.Engine, reps int) (wall, crit time.Duration) {
	tb.Helper()
	if _, err := svc.Decide(); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := svc.Decide(); err != nil {
			tb.Fatal(err)
		}
		el := time.Since(start)
		c := el
		if eng != nil && eng.Shards() > 1 {
			c = eng.LastCycle().CriticalPath()
		}
		if i == 0 || el < wall {
			wall = el
		}
		if i == 0 || c < crit {
			crit = c
		}
	}
	return wall, crit
}

// TestDecideShardedThroughputGate is the CI bench gate: with
// AUTOCOMP_BENCH_GATE=1 it fails when sharded-4 decide throughput drops
// below the serial pipeline. On hosts with >= 4 cores the gate holds the
// measured wall time to it; on smaller hosts (where parallel wall wins
// cannot materialize) it holds the per-shard critical path — what the
// wall time becomes once cores match shards. Timing-sensitive, so it is
// opt-in and never part of the plain test run.
func TestDecideShardedThroughputGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	if os.Getenv("AUTOCOMP_BENCH_GATE") != "1" {
		t.Skip("set AUTOCOMP_BENCH_GATE=1 to enforce the decide throughput gate")
	}
	const tables, reps = 20_000, 5
	serialSvc, _ := decideService(t, tables, 1)
	serialWall, _ := bestDecide(t, serialSvc, nil, reps)

	shardSvc, eng := decideService(t, tables, 4)
	wall, crit := bestDecide(t, shardSvc, eng, reps)

	gate, metric := wall, "measured wall"
	if runtime.GOMAXPROCS(0) < 4 {
		gate, metric = crit, "critical path"
	}
	t.Logf("serial=%v sharded-4 wall=%v critpath=%v gate=%s GOMAXPROCS=%d",
		serialWall, wall, crit, metric, runtime.GOMAXPROCS(0))
	if gate > serialWall {
		t.Fatalf("sharded-4 decide regressed below serial: %s %v > serial %v",
			metric, gate, serialWall)
	}
}
