package bench

import (
	"fmt"
	"testing"
	"time"

	"autocomp/internal/compaction"
	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/lst"
	"autocomp/internal/maintenance"
	"autocomp/internal/scheduler"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// schedulerCycle builds a fresh aged fleet and drains one scheduled
// maintenance cycle with the given worker count, returning the cycle's
// stats. Each call starts from an identical seed-1 fleet, so the ranked
// plan is the same at every worker count and the makespan trajectory is
// the pure scheduling effect.
func schedulerCycle(b *testing.B, workers int) scheduler.Stats {
	b.Helper()
	// Fixture construction (fleet build + aging) stays outside the
	// timed region: ns/op measures the scheduled cycle only.
	b.StopTimer()
	cfg := fleet.DefaultConfig()
	cfg.Seed = 1
	cfg.InitialTables = 400
	f := fleet.New(cfg, sim.NewClock())
	for d := 0; d < 3; d++ {
		f.AdvanceDay()
	}
	svc, err := f.ScheduledService(core.TopK{K: 100},
		fleet.DefaultModel(512*storage.MB), maintenance.DefaultPolicy(),
		fleet.SchedOptions{Workers: workers, Shards: 4, WriterCommitsPerHour: 30})
	if err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
	_, stats, err := svc.RunCycle()
	if err != nil {
		b.Fatal(err)
	}
	return stats
}

// BenchmarkSchedulerCycle measures wall time per scheduled cycle and
// reports the simulated makespan and throughput at each worker count, so
// the BENCH json captures the speedup trajectory (workers ∈ {1, 4, 16}).
func BenchmarkSchedulerCycle(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var last scheduler.Stats
			for i := 0; i < b.N; i++ {
				last = schedulerCycle(b, workers)
			}
			if last.Done == 0 {
				b.Fatal("no jobs completed")
			}
			b.ReportMetric(last.Makespan.Hours(), "makespan-h")
			b.ReportMetric(float64(last.Done)/last.Makespan.Hours(), "jobs/sim-h")
			b.ReportMetric(100*last.Utilization(), "util-%")
		})
	}
}

// BenchmarkSchedulerDispatch isolates the pure scheduler overhead —
// queue, leases, budget arbitration, commit bookkeeping — with zero-cost
// jobs, measuring dispatch throughput in jobs per wall second.
func BenchmarkSchedulerDispatch(b *testing.B) {
	mkCands := func(n int) []*core.Candidate {
		cands := make([]*core.Candidate, n)
		for i := range cands {
			cands[i] = &core.Candidate{
				Table: benchTable{name: fmt.Sprintf("db%d.t%06d", i%32, i)},
				Traits: map[string]float64{
					core.ComputeCost{}.Name(): float64(1 + i%7),
				},
			}
		}
		return cands
	}
	runner := core.RunnerFunc(func(c *core.Candidate) compaction.Result {
		return compaction.Result{Table: c.Table.FullName(), FilesRemoved: 5, FilesAdded: 1, GBHr: 1}
	})
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			const jobs = 2048
			cands := mkCands(jobs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock := sim.NewClock()
				q := sim.NewEventQueue(clock)
				p := scheduler.New(scheduler.Config{Workers: workers, Shards: 8, Seed: 1}, runner, clock)
				p.Submit(cands)
				st := scheduler.RunSim(p, q)
				if st.Done != jobs {
					b.Fatalf("done = %d", st.Done)
				}
			}
			b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// benchTable is a minimal core.Table for dispatch benchmarks.
type benchTable struct{ name string }

func (t benchTable) Database() string                       { return "db" }
func (t benchTable) Name() string                           { return t.name }
func (t benchTable) FullName() string                       { return t.name }
func (t benchTable) Spec() lst.PartitionSpec                { return lst.PartitionSpec{} }
func (t benchTable) Mode() lst.WriteMode                    { return lst.CopyOnWrite }
func (t benchTable) Prop(string) string                     { return "" }
func (t benchTable) Created() time.Duration                 { return 0 }
func (t benchTable) LastWrite() time.Duration               { return 0 }
func (t benchTable) WriteCount() int64                      { return 0 }
func (t benchTable) FileCount() int                         { return 50 }
func (t benchTable) TotalBytes() int64                      { return 1 << 30 }
func (t benchTable) Partitions() []string                   { return nil }
func (t benchTable) LiveFiles() []lst.DataFile              { return nil }
func (t benchTable) FilesInPartition(string) []lst.DataFile { return nil }
