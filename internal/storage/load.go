package storage

import "time"

// loadTracker measures RPC rate over a rolling window of per-second
// buckets. It tolerates large virtual-time jumps (the event queue may skip
// hours between RPCs) by evicting stale buckets lazily.
type loadTracker struct {
	window  time.Duration
	buckets []loadBucket
}

type loadBucket struct {
	second int64
	count  int64
}

func newLoadTracker(window time.Duration) *loadTracker {
	if window <= 0 {
		window = time.Minute
	}
	return &loadTracker{window: window}
}

// add records n RPCs at virtual time now. A timestamp at or before the
// newest bucket's folds into that bucket: the slice stays sorted, which
// evict's prefix scan relies on — an out-of-order append used to leave
// a stale bucket stranded behind a fresh one, inflating the rate until
// process restart.
func (t *loadTracker) add(now time.Duration, n int64) {
	sec := int64(now / time.Second)
	if last := len(t.buckets) - 1; last >= 0 && t.buckets[last].second >= sec {
		t.buckets[last].count += n
		t.evict(t.buckets[last].second)
		return
	}
	t.buckets = append(t.buckets, loadBucket{second: sec, count: n})
	t.evict(sec)
}

// rate returns the RPC rate (per second) over the window ending at now.
func (t *loadTracker) rate(now time.Duration) float64 {
	sec := int64(now / time.Second)
	t.evict(sec)
	var total int64
	for _, b := range t.buckets {
		total += b.count
	}
	winSecs := float64(t.window / time.Second)
	if winSecs <= 0 {
		winSecs = 1
	}
	return float64(total) / winSecs
}

// evict drops buckets older than the window relative to currentSec.
func (t *loadTracker) evict(currentSec int64) {
	horizon := currentSec - int64(t.window/time.Second)
	i := 0
	for i < len(t.buckets) && t.buckets[i].second <= horizon {
		i++
	}
	if i > 0 {
		t.buckets = append(t.buckets[:0], t.buckets[i:]...)
	}
}
