// Package storage simulates the distributed file system underpinning the
// data lake (HDFS in the paper's LinkedIn deployment, ADLS in its cloud
// experiments).
//
// The simulator models exactly the aspects of the storage layer that the
// paper identifies as suffering from small-file proliferation (§1, §2, §7):
//
//   - the NameNode tracks every filesystem object, so object count is a
//     scarce resource, with per-namespace (per-database) quotas;
//   - every file read issues an open() RPC to the NameNode; RPC pressure
//     grows with file count, inflates open latency, and beyond a threshold
//     causes read timeouts and thundering-herd retries;
//   - capacity can be extended with read-only observer NameNodes and by
//     federating the namespace.
//
// All state mutations go through a mutex so the simulator can be shared by
// concurrently executing simulated clusters.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"autocomp/internal/sim"
)

// Byte size units.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Errors returned by NameNode operations.
var (
	ErrNotFound      = errors.New("storage: object not found")
	ErrExists        = errors.New("storage: object already exists")
	ErrQuotaExceeded = errors.New("storage: namespace quota exceeded")
	ErrTimeout       = errors.New("storage: read timeout (NameNode overloaded)")
)

// Config parameterizes the simulated file system.
type Config struct {
	// BlockSize is the HDFS block size; the paper's deployments use
	// 128 MB blocks and a 512 MB target file size (4 blocks).
	BlockSize int64
	// BaseOpenLatency is the open() RPC latency of an unloaded NameNode.
	BaseOpenLatency time.Duration
	// CapacityRPS is the sustainable NameNode RPC rate. Load above this
	// rate inflates latency and eventually causes timeouts.
	CapacityRPS float64
	// ObserverNameNodes are read-only replicas; each adds CapacityRPS
	// worth of read capacity (opens and stats only).
	ObserverNameNodes int
	// TimeoutUtilization is the utilization fraction beyond which open()
	// calls may time out (the paper's HDFS read timeouts, §7).
	TimeoutUtilization float64
	// LoadWindow is the rolling window over which RPC rate is measured.
	LoadWindow time.Duration
	// ObjectsPerNameNode is the object count one NameNode can manage
	// before the deployment must federate (§2).
	ObjectsPerNameNode int64
}

// DefaultConfig mirrors the paper's deployment shape.
func DefaultConfig() Config {
	return Config{
		BlockSize:          128 * MB,
		BaseOpenLatency:    2 * time.Millisecond,
		CapacityRPS:        2000,
		ObserverNameNodes:  0,
		TimeoutUtilization: 0.95,
		LoadWindow:         time.Minute,
		ObjectsPerNameNode: 100_000_000,
	}
}

// Object is a filesystem entry (always a file in this simulator; directory
// structure is implicit in paths).
type Object struct {
	Path    string
	Size    int64
	Created time.Duration
}

// Counters is a snapshot of cumulative RPC counts. Experiments sample the
// counters and difference successive snapshots to build time series (e.g.
// Figure 11b's open() calls per month).
type Counters struct {
	Opens    int64
	Creates  int64
	Deletes  int64
	Lists    int64
	Stats    int64
	Timeouts int64
	Retries  int64
}

// Total returns the total RPC count across operations.
func (c Counters) Total() int64 {
	return c.Opens + c.Creates + c.Deletes + c.Lists + c.Stats
}

// Quota limits the number of namespace objects a database (tenant) may
// hold, mirroring HDFS namespace quotas (§7: w1 scales with Used/Total).
type Quota struct {
	Namespace string
	Max       int64
	Used      int64
}

// Utilization returns Used/Max, or 0 when no quota is set.
func (q Quota) Utilization() float64 {
	if q.Max <= 0 {
		return 0
	}
	return float64(q.Used) / float64(q.Max)
}

// NameNode is the simulated metadata server plus flat object store.
type NameNode struct {
	mu      sync.Mutex
	cfg     Config
	clock   *sim.Clock
	rng     *sim.RNG
	objects map[string]*Object
	quotas  map[string]*Quota
	ctr     Counters
	load    *loadTracker
}

// NewNameNode returns a NameNode simulator using cfg, driven by clock, with
// randomness (timeout draws) from rng.
func NewNameNode(cfg Config, clock *sim.Clock, rng *sim.RNG) *NameNode {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 128 * MB
	}
	if cfg.LoadWindow <= 0 {
		cfg.LoadWindow = time.Minute
	}
	if cfg.CapacityRPS <= 0 {
		cfg.CapacityRPS = 2000
	}
	if cfg.TimeoutUtilization <= 0 {
		cfg.TimeoutUtilization = 0.95
	}
	if cfg.ObjectsPerNameNode <= 0 {
		cfg.ObjectsPerNameNode = 100_000_000
	}
	return &NameNode{
		cfg:     cfg,
		clock:   clock,
		rng:     rng,
		objects: make(map[string]*Object),
		quotas:  make(map[string]*Quota),
		load:    newLoadTracker(cfg.LoadWindow),
	}
}

// Config returns the configuration the NameNode was built with.
func (n *NameNode) Config() Config { return n.cfg }

// namespaceOf extracts the quota namespace (the first path component,
// i.e. the database) from an absolute path like /db/table/part/file.
func namespaceOf(path string) string {
	p := strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return p
}

// SetQuota installs (or replaces) the object quota for a namespace. The
// used count is recomputed from current objects.
func (n *NameNode) SetQuota(namespace string, maxObjects int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	used := int64(0)
	prefix := "/" + namespace + "/"
	for p := range n.objects {
		if strings.HasPrefix(p, prefix) {
			used++
		}
	}
	n.quotas[namespace] = &Quota{Namespace: namespace, Max: maxObjects, Used: used}
}

// QuotaFor returns the quota state of a namespace; ok is false when no
// quota has been installed.
func (n *NameNode) QuotaFor(namespace string) (Quota, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	q, ok := n.quotas[namespace]
	if !ok {
		return Quota{}, false
	}
	return *q, true
}

// Create adds a file object. It returns ErrExists for duplicate paths and
// ErrQuotaExceeded when the namespace quota is full.
func (n *NameNode) Create(path string, size int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.record(&n.ctr.Creates)
	if _, ok := n.objects[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	ns := namespaceOf(path)
	if q, ok := n.quotas[ns]; ok && q.Max > 0 && q.Used >= q.Max {
		return fmt.Errorf("%w: namespace %q at %d objects", ErrQuotaExceeded, ns, q.Used)
	}
	n.objects[path] = &Object{Path: path, Size: size, Created: n.clock.Now()}
	if q, ok := n.quotas[ns]; ok {
		q.Used++
	}
	return nil
}

// Delete removes a file object.
func (n *NameNode) Delete(path string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.record(&n.ctr.Deletes)
	if _, ok := n.objects[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(n.objects, path)
	if q, ok := n.quotas[namespaceOf(path)]; ok && q.Used > 0 {
		q.Used--
	}
	return nil
}

// Stat returns the object at path.
func (n *NameNode) Stat(path string) (Object, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.record(&n.ctr.Stats)
	o, ok := n.objects[path]
	if !ok {
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return *o, nil
}

// List returns the objects whose paths start with prefix, sorted by path.
func (n *NameNode) List(prefix string) []Object {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.record(&n.ctr.Lists)
	var out []Object
	for p, o := range n.objects {
		if strings.HasPrefix(p, prefix) {
			out = append(out, *o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Open simulates a read open() RPC against path. It returns the RPC
// latency under current load. Under overload it returns ErrTimeout; the
// caller is expected to retry, and retries themselves add RPC load (the
// thundering-herd effect described in §7). The returned latency is the
// time already spent even when the call fails.
func (n *NameNode) Open(path string) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.record(&n.ctr.Opens)
	if _, ok := n.objects[path]; !ok {
		return n.cfg.BaseOpenLatency, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	u := n.utilizationLocked()
	lat := n.openLatencyAt(u)
	if u > n.cfg.TimeoutUtilization {
		// Probability of timeout rises linearly from 0 at the threshold
		// to 1 at 2x the threshold.
		p := (u - n.cfg.TimeoutUtilization) / n.cfg.TimeoutUtilization
		if p > 1 {
			p = 1
		}
		if n.rng.Bernoulli(p) {
			n.ctr.Timeouts++
			return lat * 10, ErrTimeout
		}
	}
	return lat, nil
}

// openLatencyAt returns the open latency at utilization u using a simple
// convex congestion curve: latency grows quadratically with utilization
// and is capped at 50x base to keep simulations bounded.
func (n *NameNode) openLatencyAt(u float64) time.Duration {
	factor := 1 + 10*u*u
	if factor > 50 {
		factor = 50
	}
	return time.Duration(float64(n.cfg.BaseOpenLatency) * factor)
}

// Utilization returns the current NameNode load as the ratio of the
// rolling RPC rate to effective capacity (observers add read capacity).
func (n *NameNode) Utilization() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.utilizationLocked()
}

func (n *NameNode) utilizationLocked() float64 {
	cap := n.cfg.CapacityRPS * float64(1+n.cfg.ObserverNameNodes)
	if cap <= 0 {
		return 0
	}
	return n.load.rate(n.clock.Now()) / cap
}

// record bumps an RPC counter and feeds the rolling load tracker.
func (n *NameNode) record(counter *int64) {
	*counter++
	n.load.add(n.clock.Now(), 1)
}

// RecordRetry accounts for a client retry after a timeout; retries are
// tracked separately so experiments can report retry amplification.
func (n *NameNode) RecordRetry() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ctr.Retries++
}

// Counters returns a snapshot of cumulative RPC counters.
func (n *NameNode) Counters() Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ctr
}

// ObjectCount returns the number of objects currently tracked.
func (n *NameNode) ObjectCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.objects)
}

// TotalBytes returns the total bytes across all objects.
func (n *NameNode) TotalBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var t int64
	for _, o := range n.objects {
		t += o.Size
	}
	return t
}

// FederationsRequired returns how many federated NameNodes the current
// object count demands (§2: file growth forces HDFS federation).
func (n *NameNode) FederationsRequired() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := int64(len(n.objects))
	feds := int(c / n.cfg.ObjectsPerNameNode)
	if c%n.cfg.ObjectsPerNameNode != 0 || feds == 0 {
		feds++
	}
	return feds
}

// SizeHistogram buckets object sizes by the given ascending boundaries and
// returns counts per bucket plus an overflow bucket; used for the Figure
// 1/2 file-size-distribution experiments. Only objects under prefix are
// counted ("" counts everything).
func (n *NameNode) SizeHistogram(prefix string, bounds []int64) []int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	counts := make([]int64, len(bounds)+1)
	for p, o := range n.objects {
		if prefix != "" && !strings.HasPrefix(p, prefix) {
			continue
		}
		placed := false
		for i, b := range bounds {
			if o.Size < b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}
