package storage

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"autocomp/internal/sim"
)

func newTestNN() (*NameNode, *sim.Clock) {
	clock := sim.NewClock()
	return NewNameNode(DefaultConfig(), clock, sim.NewRNG(1)), clock
}

func TestCreateStatDelete(t *testing.T) {
	nn, _ := newTestNN()
	if err := nn.Create("/db1/t1/f1.parquet", 100*MB); err != nil {
		t.Fatal(err)
	}
	o, err := nn.Stat("/db1/t1/f1.parquet")
	if err != nil {
		t.Fatal(err)
	}
	if o.Size != 100*MB {
		t.Fatalf("size = %d", o.Size)
	}
	if err := nn.Delete("/db1/t1/f1.parquet"); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.Stat("/db1/t1/f1.parquet"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after delete: %v", err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	nn, _ := newTestNN()
	if err := nn.Create("/db/t/f", 1); err != nil {
		t.Fatal(err)
	}
	if err := nn.Create("/db/t/f", 1); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestDeleteMissing(t *testing.T) {
	nn, _ := newTestNN()
	if err := nn.Delete("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestListPrefixSorted(t *testing.T) {
	nn, _ := newTestNN()
	for _, p := range []string{"/db/t/b", "/db/t/a", "/db/u/c", "/db/t/c"} {
		if err := nn.Create(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := nn.List("/db/t/")
	if len(got) != 3 {
		t.Fatalf("list len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Path >= got[i].Path {
			t.Fatalf("list not sorted: %v", got)
		}
	}
}

func TestQuotaEnforcement(t *testing.T) {
	nn, _ := newTestNN()
	nn.SetQuota("db1", 2)
	if err := nn.Create("/db1/t/f1", 1); err != nil {
		t.Fatal(err)
	}
	if err := nn.Create("/db1/t/f2", 1); err != nil {
		t.Fatal(err)
	}
	if err := nn.Create("/db1/t/f3", 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("expected quota error, got %v", err)
	}
	// Other namespaces are unaffected.
	if err := nn.Create("/db2/t/f1", 1); err != nil {
		t.Fatal(err)
	}
	q, ok := nn.QuotaFor("db1")
	if !ok || q.Used != 2 || q.Utilization() != 1.0 {
		t.Fatalf("quota state = %+v ok=%v", q, ok)
	}
}

func TestQuotaReleasedOnDelete(t *testing.T) {
	nn, _ := newTestNN()
	nn.SetQuota("db", 1)
	if err := nn.Create("/db/t/f", 1); err != nil {
		t.Fatal(err)
	}
	if err := nn.Delete("/db/t/f"); err != nil {
		t.Fatal(err)
	}
	if err := nn.Create("/db/t/g", 1); err != nil {
		t.Fatalf("create after delete under quota: %v", err)
	}
}

func TestSetQuotaCountsExisting(t *testing.T) {
	nn, _ := newTestNN()
	for i := 0; i < 5; i++ {
		if err := nn.Create("/db/t/f"+string(rune('a'+i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	nn.SetQuota("db", 10)
	q, _ := nn.QuotaFor("db")
	if q.Used != 5 {
		t.Fatalf("Used = %d, want 5", q.Used)
	}
}

func TestOpenUnloadedLatency(t *testing.T) {
	nn, _ := newTestNN()
	if err := nn.Create("/db/t/f", 1); err != nil {
		t.Fatal(err)
	}
	lat, err := nn.Open("/db/t/f")
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig().BaseOpenLatency
	if lat < base || lat > 2*base {
		t.Fatalf("unloaded latency = %v, base %v", lat, base)
	}
}

func TestOpenLatencyGrowsWithLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityRPS = 100
	cfg.TimeoutUtilization = 1e9 // disable timeouts for this test
	clock := sim.NewClock()
	nn := NewNameNode(cfg, clock, sim.NewRNG(1))
	if err := nn.Create("/db/t/f", 1); err != nil {
		t.Fatal(err)
	}
	cold, _ := nn.Open("/db/t/f")
	// Generate heavy load within the window.
	for i := 0; i < 20000; i++ {
		nn.Open("/db/t/f")
	}
	hot, _ := nn.Open("/db/t/f")
	if hot <= cold {
		t.Fatalf("latency did not grow under load: cold=%v hot=%v", cold, hot)
	}
}

func TestOpenTimeoutsUnderOverload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityRPS = 10
	clock := sim.NewClock()
	nn := NewNameNode(cfg, clock, sim.NewRNG(1))
	if err := nn.Create("/db/t/f", 1); err != nil {
		t.Fatal(err)
	}
	timeouts := 0
	for i := 0; i < 5000; i++ {
		if _, err := nn.Open("/db/t/f"); errors.Is(err, ErrTimeout) {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Fatal("no timeouts under extreme overload")
	}
	if nn.Counters().Timeouts != int64(timeouts) {
		t.Fatalf("timeout counter mismatch: %d vs %d", nn.Counters().Timeouts, timeouts)
	}
}

func TestObserverNameNodesAddCapacity(t *testing.T) {
	mk := func(observers int) float64 {
		cfg := DefaultConfig()
		cfg.CapacityRPS = 100
		cfg.ObserverNameNodes = observers
		clock := sim.NewClock()
		nn := NewNameNode(cfg, clock, sim.NewRNG(1))
		nn.Create("/db/t/f", 1)
		for i := 0; i < 3000; i++ {
			nn.Open("/db/t/f")
		}
		return nn.Utilization()
	}
	if u0, u3 := mk(0), mk(3); u3 >= u0 {
		t.Fatalf("observers did not reduce utilization: %v vs %v", u0, u3)
	}
}

func TestLoadWindowEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityRPS = 100
	cfg.LoadWindow = time.Minute
	clock := sim.NewClock()
	nn := NewNameNode(cfg, clock, sim.NewRNG(1))
	nn.Create("/db/t/f", 1)
	for i := 0; i < 10000; i++ {
		nn.Open("/db/t/f")
	}
	loaded := nn.Utilization()
	clock.Advance(10 * time.Minute)
	cooled := nn.Utilization()
	if cooled >= loaded || cooled > 0.01 {
		t.Fatalf("load did not decay: loaded=%v cooled=%v", loaded, cooled)
	}
}

func TestCounters(t *testing.T) {
	nn, _ := newTestNN()
	nn.Create("/db/t/f", 1)
	nn.Stat("/db/t/f")
	nn.List("/db/")
	nn.Open("/db/t/f")
	nn.Delete("/db/t/f")
	c := nn.Counters()
	if c.Creates != 1 || c.Stats != 1 || c.Lists != 1 || c.Opens != 1 || c.Deletes != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Total() != 5 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestSizeHistogram(t *testing.T) {
	nn, _ := newTestNN()
	nn.Create("/db/t/small1", 10*MB)
	nn.Create("/db/t/small2", 100*MB)
	nn.Create("/db/t/mid", 300*MB)
	nn.Create("/db/t/big", 600*MB)
	nn.Create("/other/t/x", 1*MB)
	h := nn.SizeHistogram("/db/", []int64{128 * MB, 512 * MB})
	if h[0] != 2 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	all := nn.SizeHistogram("", []int64{128 * MB, 512 * MB})
	if all[0] != 3 {
		t.Fatalf("all histogram = %v", all)
	}
}

func TestFederationsRequired(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ObjectsPerNameNode = 3
	clock := sim.NewClock()
	nn := NewNameNode(cfg, clock, sim.NewRNG(1))
	if got := nn.FederationsRequired(); got != 1 {
		t.Fatalf("empty federations = %d", got)
	}
	for i := 0; i < 7; i++ {
		nn.Create("/db/t/f"+string(rune('a'+i)), 1)
	}
	if got := nn.FederationsRequired(); got != 3 {
		t.Fatalf("federations = %d, want 3", got)
	}
}

func TestNamespaceOf(t *testing.T) {
	cases := map[string]string{
		"/db1/t/f":  "db1",
		"db2/t":     "db2",
		"/solo":     "solo",
		"/a/b/c/d":  "a",
		"/db1/t/f2": "db1",
	}
	for in, want := range cases {
		if got := namespaceOf(in); got != want {
			t.Fatalf("namespaceOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTotalBytes(t *testing.T) {
	nn, _ := newTestNN()
	nn.Create("/db/t/a", 5)
	nn.Create("/db/t/b", 7)
	if got := nn.TotalBytes(); got != 12 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

// Property: histogram bucket counts always sum to the number of objects
// under the prefix, for any sizes.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		clock := sim.NewClock()
		nn := NewNameNode(DefaultConfig(), clock, sim.NewRNG(1))
		for i, s := range sizes {
			if err := nn.Create("/db/t/f"+itoa(i), int64(s)); err != nil {
				return false
			}
		}
		h := nn.SizeHistogram("/db/", []int64{1000, 1_000_000, 1_000_000_000})
		var total int64
		for _, c := range h {
			total += c
		}
		return total == int64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestLoadTrackerRate(t *testing.T) {
	lt := newLoadTracker(10 * time.Second)
	lt.add(0, 100)
	if r := lt.rate(0); r != 10 {
		t.Fatalf("rate = %v, want 10", r)
	}
	// After the window passes, rate decays to zero.
	if r := lt.rate(20 * time.Second); r != 0 {
		t.Fatalf("rate after window = %v, want 0", r)
	}
}
