package storage

import (
	"testing"
	"time"
)

func TestLoadTrackerWindows(t *testing.T) {
	type step struct {
		at time.Duration
		n  int64
	}
	cases := []struct {
		name   string
		window time.Duration
		steps  []step
		at     time.Duration
		want   float64
	}{
		{
			name:   "steady-within-window",
			window: 10 * time.Second,
			steps:  []step{{1 * time.Second, 5}, {2 * time.Second, 5}, {3 * time.Second, 10}},
			at:     3 * time.Second,
			want:   2.0, // 20 RPCs over a 10 s window
		},
		{
			name:   "window-rolls-off",
			window: 10 * time.Second,
			steps:  []step{{1 * time.Second, 100}, {30 * time.Second, 10}},
			at:     30 * time.Second,
			want:   1.0, // the second-1 bucket is past the horizon
		},
		{
			name:   "multi-hour-gap-evicts-everything-old",
			window: time.Minute,
			steps:  []step{{5 * time.Second, 600}, {3 * time.Hour, 60}},
			at:     3 * time.Hour,
			want:   1.0,
		},
		{
			// The regression this file exists for: a timestamp that runs
			// backwards (interleaved components reading slightly different
			// clocks, or replay) used to append an unsorted bucket that the
			// evict prefix scan could never drop — the count was counted
			// forever. Folded into the newest bucket, it ages out normally.
			name:   "out-of-order-add-still-evicts",
			window: 10 * time.Second,
			steps: []step{
				{20 * time.Second, 10},
				{15 * time.Second, 50}, // regressed: folds into the second-20 bucket
				{21 * time.Second, 10},
				{60 * time.Second, 10}, // everything before the horizon must go
			},
			at:   60 * time.Second,
			want: 1.0,
		},
		{
			name:   "out-of-order-within-window-still-counted",
			window: time.Minute,
			steps: []step{
				{30 * time.Second, 6},
				{10 * time.Second, 54}, // regressed but inside the window
			},
			at:   30 * time.Second,
			want: 1.0,
		},
		{
			name:   "regressed-after-gap",
			window: time.Minute,
			steps: []step{
				{2 * time.Hour, 60},
				{1 * time.Hour, 60}, // an hour backwards
				{2*time.Hour + 30*time.Second, 60},
			},
			at:   2*time.Hour + 30*time.Second,
			want: 3.0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := newLoadTracker(tc.window)
			for _, s := range tc.steps {
				tr.add(s.at, s.n)
			}
			if got := tr.rate(tc.at); got != tc.want {
				t.Fatalf("rate(%v) = %v, want %v", tc.at, got, tc.want)
			}
			for i := 1; i < len(tr.buckets); i++ {
				if tr.buckets[i-1].second > tr.buckets[i].second {
					t.Fatalf("buckets unsorted after adds: %+v", tr.buckets)
				}
			}
		})
	}
}

// TestLoadTrackerStaleBucketGone pins the eviction mechanics directly:
// after an out-of-order add and a later in-order add beyond the window,
// no bucket older than the horizon survives.
func TestLoadTrackerStaleBucketGone(t *testing.T) {
	tr := newLoadTracker(10 * time.Second)
	tr.add(20*time.Second, 1)
	tr.add(5*time.Second, 99) // regressed by 15 s
	tr.add(45*time.Second, 1)
	horizon := int64(45 - 10)
	for _, b := range tr.buckets {
		if b.second <= horizon {
			t.Fatalf("stale bucket at second %d survived eviction: %+v", b.second, tr.buckets)
		}
	}
	if got := tr.rate(45 * time.Second); got != 0.1 {
		t.Fatalf("rate = %v, want 0.1", got)
	}
}
