package engine

import (
	"testing"

	"autocomp/internal/cluster"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Failure-injection tests: the engine under a struggling NameNode,
// reproducing §7's production incidents (HDFS read timeouts from
// excessive RPC traffic, simultaneous client retries exacerbating load —
// the thundering herd).

func overloadedFixture(capacityRPS float64) *fixture {
	clock := sim.NewClock()
	rng := sim.NewRNG(7)
	cfg := storage.DefaultConfig()
	cfg.CapacityRPS = capacityRPS
	fs := storage.NewNameNode(cfg, clock, rng.Fork())
	cl := cluster.New(cluster.QueryClusterConfig(), clock)
	eng := New(DefaultConfig(), cl, fs, clock, rng.Fork())
	return &fixture{clock: clock, fs: fs, cl: cl, eng: eng}
}

func TestReadsUnderOverloadHitTimeouts(t *testing.T) {
	f := overloadedFixture(30) // tiny NameNode
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 400})

	timeouts := 0
	for i := 0; i < 30; i++ {
		res := f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read})
		timeouts += res.Timeouts
	}
	if timeouts == 0 {
		t.Fatal("no open timeouts under extreme NameNode overload")
	}
	// Thundering herd: retries were recorded as additional load.
	if f.fs.Counters().Retries == 0 {
		t.Fatal("timeout retries not recorded")
	}
	_, _, _, observed := f.eng.Stats()
	if observed == 0 {
		t.Fatal("engine did not observe timeouts")
	}
}

func TestQueryFailsWhenRetriesExhausted(t *testing.T) {
	// CapacityRPS so low that utilization exceeds 2× threshold almost
	// immediately, making every open fail until retries run out.
	f := overloadedFixture(1)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 256 << 20, Parallelism: 200})

	failed := false
	for i := 0; i < 50 && !failed; i++ {
		res := f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read})
		failed = res.Failed()
	}
	if !failed {
		t.Fatal("no query failure under persistent NameNode overload")
	}
	_, _, failures, _ := f.eng.Stats()
	if failures == 0 {
		t.Fatal("failure counter not bumped")
	}
}

func TestObserverNameNodesRelieveTimeouts(t *testing.T) {
	run := func(observers int) int {
		clock := sim.NewClock()
		rng := sim.NewRNG(7)
		cfg := storage.DefaultConfig()
		cfg.CapacityRPS = 50
		cfg.ObserverNameNodes = observers
		fs := storage.NewNameNode(cfg, clock, rng.Fork())
		cl := cluster.New(cluster.QueryClusterConfig(), clock)
		eng := New(DefaultConfig(), cl, fs, clock, rng.Fork())
		tbl, _ := lst.NewTable(lst.TableConfig{Database: "db", Name: "t"}, fs, clock)
		eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 300})
		timeouts := 0
		for i := 0; i < 20; i++ {
			timeouts += eng.Exec(Query{App: "scan", Table: tbl, Kind: Read}).Timeouts
		}
		return timeouts
	}
	without := run(0)
	with := run(8)
	if with >= without {
		t.Fatalf("observer NameNodes did not relieve timeouts: %d vs %d", with, without)
	}
}

// Compaction relieves an overloaded NameNode: fewer files means fewer
// open() RPCs per scan — §7's motivating incident in reverse.
func TestCompactionReducesRPCLoad(t *testing.T) {
	f := overloadedFixture(2000)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 500})

	before := f.fs.Counters().Opens
	f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read})
	openFragmented := f.fs.Counters().Opens - before

	// Compact (manually, via a rewrite) to a handful of files.
	tx := tbl.NewTransaction(lst.OpRewrite)
	var bytes, rows int64
	for _, file := range tbl.LiveFiles() {
		tx.Remove(file.Path, file.Partition)
		bytes += file.SizeBytes
		rows += file.RowCount
	}
	for bytes > 0 {
		sz := int64(512 << 20)
		if sz > bytes {
			sz = bytes
		}
		tx.Add(lst.FileSpec{SizeBytes: sz, RowCount: rows})
		bytes -= sz
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	before = f.fs.Counters().Opens
	f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read})
	openCompacted := f.fs.Counters().Opens - before
	if openCompacted*10 > openFragmented {
		t.Fatalf("open RPCs: fragmented %d vs compacted %d", openFragmented, openCompacted)
	}
}
