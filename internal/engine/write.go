package engine

import (
	"errors"
	"fmt"
	"time"

	"autocomp/internal/cluster"
	"autocomp/internal/lst"
	"autocomp/internal/storage"
)

// PendingWrite is a two-phase write: the job has been submitted and the
// transaction staged; Finish attempts the commit at the job's end. The
// window between Start and Finish is where concurrent commits (other
// writers, compaction) create the conflicts of Table 1.
type PendingWrite struct {
	e            *Engine
	q            Query
	tx           *lst.Transaction
	filesWritten int
	job          cluster.JobRecord
	res          Result
	done         bool
}

// CommitAt returns when the write job completes and the commit runs.
func (pw *PendingWrite) CommitAt() time.Duration { return pw.job.End() }

// StartWrite stages a write query and submits its job. Finish must be
// called to attempt the commit.
func (e *Engine) StartWrite(q Query) *PendingWrite {
	e.queries++
	pw := &PendingWrite{
		e: e,
		q: q,
		res: Result{
			App:   q.App,
			Kind:  q.Kind,
			Start: e.clock.Now(),
		},
	}
	tx, files, spec, err := e.buildWrite(q)
	if err != nil {
		pw.res.Err = err
		pw.done = true
		e.failedQueries++
		return pw
	}
	pw.tx = tx
	pw.filesWritten = files
	pw.job = e.cluster.Submit(spec)
	pw.res.QueueDelay = pw.job.QueueDelay
	pw.res.ExecTime = pw.job.Duration
	pw.res.BytesScanned = spec.ScanBytes
	return pw
}

// buildWrite stages a transaction against the table's current state and
// returns the job spec describing its compute work.
func (e *Engine) buildWrite(q Query) (*lst.Transaction, int, cluster.JobSpec, error) {
	switch q.Kind {
	case Insert:
		return e.buildInsert(q)
	case Update, Delete:
		if q.Table.Mode() == lst.MergeOnRead {
			return e.buildMoRWrite(q)
		}
		return e.buildCoWWrite(q)
	default:
		return nil, 0, cluster.JobSpec{}, fmt.Errorf("engine: StartWrite on %v query", q.Kind)
	}
}

// writerFileSpecs splits total bytes into parallelism-many jittered file
// sizes spread round-robin over the target partitions — one output file
// per shuffle partition, the engine behaviour that litters tables with
// small files (§2).
func (e *Engine) writerFileSpecs(total int64, parallelism int, partitions []string, delta bool) []lst.FileSpec {
	if parallelism <= 0 {
		parallelism = e.cfg.DefaultShufflePartitions
	}
	if total <= 0 {
		return nil
	}
	// Optimize-write coalesces shuffle outputs to the target file size
	// (per target partition, since files never span partitions).
	if t := e.cfg.OptimizeWriteTarget; t > 0 {
		nparts := len(partitions)
		if nparts == 0 {
			nparts = 1
		}
		coalesced := int((total + t - 1) / t)
		if coalesced < nparts {
			coalesced = nparts
		}
		if coalesced < parallelism {
			parallelism = coalesced
		}
	}
	// A writer task only materializes a file if it received any rows;
	// tiny writes still produce at least one file.
	minFile := int64(64 * storage.KB)
	if total/minFile < int64(parallelism) {
		parallelism = int(total / minFile)
		if parallelism == 0 {
			parallelism = 1
		}
	}
	if len(partitions) == 0 {
		partitions = []string{""}
	}
	// Jittered weights normalized to the total guarantee exactly
	// parallelism files whose sizes sum to total.
	weights := make([]float64, parallelism)
	var wsum float64
	for i := range weights {
		w := e.rng.LogNormalAround(1, e.cfg.FileSizeJitterSigma)
		weights[i] = w
		wsum += w
	}
	specs := make([]lst.FileSpec, 0, parallelism)
	remaining := total
	for i := 0; i < parallelism && remaining > 0; i++ {
		size := int64(float64(total) * weights[i] / wsum)
		if size < minFile {
			size = minFile
		}
		if i == parallelism-1 || size > remaining {
			size = remaining
		}
		remaining -= size
		specs = append(specs, lst.FileSpec{
			Partition: partitions[i%len(partitions)],
			SizeBytes: size,
			RowCount:  size / 100,
			IsDelta:   delta,
		})
	}
	return specs
}

func (e *Engine) buildInsert(q Query) (*lst.Transaction, int, cluster.JobSpec, error) {
	specs := e.writerFileSpecs(q.Bytes, q.Parallelism, q.TargetPartitions, false)
	tx := q.Table.NewTransaction(lst.OpAppend)
	for _, s := range specs {
		tx.Add(s)
	}
	return tx, len(specs), cluster.JobSpec{
		App:        q.App,
		WriteBytes: q.Bytes,
		Files:      len(specs),
		Tasks:      writerTasks(q, e),
	}, nil
}

// buildCoWWrite rewrites the affected slice of each target partition
// (copy-on-write): remove input files covering ~ModifyFraction of the
// partition, write replacements at the writer's parallelism.
func (e *Engine) buildCoWWrite(q Query) (*lst.Transaction, int, cluster.JobSpec, error) {
	parts := q.TargetPartitions
	if len(parts) == 0 {
		parts = q.Table.Partitions()
	}
	frac := q.ModifyFraction
	if frac <= 0 {
		frac = 0.01
	}
	op := lst.OpOverwrite
	if q.Kind == Delete {
		op = lst.OpDelete
	}
	tx := q.Table.NewTransaction(op)

	var removedBytes, writtenBytes int64
	filesWritten := 0
	for _, part := range parts {
		files := q.Table.FilesInPartition(part)
		if len(files) == 0 {
			continue
		}
		var partBytes int64
		for _, f := range files {
			partBytes += f.SizeBytes
		}
		budget := int64(float64(partBytes) * frac)
		var taken int64
		for _, f := range files {
			if taken >= budget {
				break
			}
			tx.Remove(f.Path, f.Partition)
			taken += f.SizeBytes
		}
		removedBytes += taken
		out := taken
		if q.Kind == Delete {
			// Deletes drop ~half the affected rows; the rest is
			// rewritten.
			out = taken / 2
		}
		if out > 0 {
			specs := e.writerFileSpecs(out, q.Parallelism, []string{part}, false)
			for _, s := range specs {
				tx.Add(s)
			}
			filesWritten += len(specs)
			writtenBytes += out
		}
	}
	return tx, filesWritten, cluster.JobSpec{
		App:        q.App,
		ScanBytes:  removedBytes,
		WriteBytes: writtenBytes,
		Files:      filesWritten,
		Tasks:      writerTasks(q, e),
	}, nil
}

// buildMoRWrite appends delta files instead of rewriting (merge-on-read).
func (e *Engine) buildMoRWrite(q Query) (*lst.Transaction, int, cluster.JobSpec, error) {
	parts := q.TargetPartitions
	if len(parts) == 0 {
		parts = []string{""}
	}
	frac := q.ModifyFraction
	if frac <= 0 {
		frac = 0.01
	}
	// Delta volume is a fraction of the affected data (position deletes
	// plus changed rows), not a full rewrite.
	affected := int64(float64(q.Table.TotalBytes()) * frac)
	deltaBytes := affected / 10
	if deltaBytes < 64*storage.KB {
		deltaBytes = 64 * storage.KB
	}
	specs := e.writerFileSpecs(deltaBytes, q.Parallelism, parts, true)
	tx := q.Table.NewTransaction(lst.OpAppend)
	for _, s := range specs {
		tx.Add(s)
	}
	return tx, len(specs), cluster.JobSpec{
		App:        q.App,
		WriteBytes: deltaBytes,
		Files:      len(specs),
		Tasks:      writerTasks(q, e),
	}, nil
}

func writerTasks(q Query, e *Engine) int {
	if q.Parallelism > 0 {
		return q.Parallelism
	}
	return e.cfg.DefaultShufflePartitions
}

// Finish attempts the commit. On a write-write conflict it retries up to
// MaxCommitRetries times: each retry rebuilds the transaction against
// fresh table state and charges RetryCostFactor of the original job's
// duration (time and compute) — the paper's client-side conflicts
// (Table 1). Quota and other storage failures surface as query errors
// (§7: quota breaches caused user-visible failures before compaction).
func (pw *PendingWrite) Finish() Result {
	if pw.done {
		return pw.res
	}
	pw.done = true
	e := pw.e

	for attempt := 0; ; attempt++ {
		_, err := pw.tx.Commit()
		if err == nil {
			pw.res.FilesWritten = pw.filesWritten
			return pw.res
		}
		if !errors.Is(err, lst.ErrCommitConflict) || errors.Is(err, storage.ErrQuotaExceeded) {
			pw.res.Err = err
			e.failedQueries++
			return pw.res
		}
		pw.res.Retries++
		e.conflictRetries++
		if attempt >= e.cfg.MaxCommitRetries {
			pw.res.Err = err
			e.failedQueries++
			return pw.res
		}
		// Rebuild against current state; charge the retry but not a
		// full re-execution.
		retryCost := time.Duration(float64(pw.job.Duration) * e.cfg.RetryCostFactor)
		pw.res.ExecTime += retryCost
		e.cluster.Submit(cluster.JobSpec{
			App:          pw.q.App + "/retry",
			ExtraCompute: retryCost,
			Tasks:        1,
		})
		tx, files, _, berr := e.buildWrite(pw.q)
		if berr != nil {
			pw.res.Err = berr
			e.failedQueries++
			return pw.res
		}
		pw.tx = tx
		pw.filesWritten = files
	}
}
