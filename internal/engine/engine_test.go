package engine

import (
	"errors"
	"testing"
	"time"

	"autocomp/internal/cluster"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

const mb = storage.MB

type fixture struct {
	clock *sim.Clock
	fs    *storage.NameNode
	cl    *cluster.Cluster
	eng   *Engine
}

func newFixture(strict bool) *fixture {
	clock := sim.NewClock()
	rng := sim.NewRNG(7)
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng.Fork())
	cl := cluster.New(cluster.QueryClusterConfig(), clock)
	eng := New(DefaultConfig(), cl, fs, clock, rng.Fork())
	return &fixture{clock: clock, fs: fs, cl: cl, eng: eng}
}

func (f *fixture) table(t *testing.T, name string, partitioned, strict bool, mode lst.WriteMode) *lst.Table {
	t.Helper()
	cfg := lst.TableConfig{
		Database:               "db",
		Name:                   name,
		Mode:                   mode,
		StrictRewriteConflicts: strict,
	}
	if partitioned {
		cfg.Spec = lst.PartitionSpec{Column: "d", Transform: lst.TransformMonth}
	}
	tbl, err := lst.NewTable(cfg, f.fs, f.clock)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestInsertProducesOneFilePerShufflePartition(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{
		App: "q", Table: tbl, Kind: Insert,
		Bytes: 1 << 30, Parallelism: 50,
	})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if res.FilesWritten != 50 {
		t.Fatalf("files written = %d, want 50", res.FilesWritten)
	}
	if tbl.FileCount() != 50 {
		t.Fatalf("table files = %d", tbl.FileCount())
	}
	if got := tbl.TotalBytes(); got != 1<<30 {
		t.Fatalf("bytes = %d, want %d", got, 1<<30)
	}
}

func TestInsertDefaultsToConfiguredShufflePartitions(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{App: "q", Table: tbl, Kind: Insert, Bytes: 10 << 30})
	if res.FilesWritten != DefaultConfig().DefaultShufflePartitions {
		t.Fatalf("files = %d, want default %d", res.FilesWritten, DefaultConfig().DefaultShufflePartitions)
	}
}

func TestTinyInsertCapsFileCount(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{App: "q", Table: tbl, Kind: Insert, Bytes: 256 * storage.KB})
	if res.FilesWritten > 4 {
		t.Fatalf("tiny insert wrote %d files", res.FilesWritten)
	}
	if res.FilesWritten < 1 {
		t.Fatal("tiny insert wrote nothing")
	}
}

func TestInsertSpreadsAcrossPartitions(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", true, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{
		App: "q", Table: tbl, Kind: Insert, Bytes: 1 << 30,
		Parallelism: 10, TargetPartitions: []string{"2024-01", "2024-02"},
	})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if len(tbl.FilesInPartition("2024-01")) == 0 || len(tbl.FilesInPartition("2024-02")) == 0 {
		t.Fatal("insert did not spread across partitions")
	}
}

func TestReadScalesWithFileCount(t *testing.T) {
	f := newFixture(false)
	compactTbl := f.table(t, "compact", false, false, lst.CopyOnWrite)
	fragTbl := f.table(t, "fragmented", false, false, lst.CopyOnWrite)

	// Same bytes, different layouts: 4 big files vs 2000 small files.
	f.eng.Exec(Query{App: "load1", Table: compactTbl, Kind: Insert, Bytes: 2 << 30, Parallelism: 4})
	f.eng.Exec(Query{App: "load2", Table: fragTbl, Kind: Insert, Bytes: 2 << 30, Parallelism: 2000})

	r1 := f.eng.Exec(Query{App: "scan1", Table: compactTbl, Kind: Read})
	r2 := f.eng.Exec(Query{App: "scan2", Table: fragTbl, Kind: Read})
	if r1.Failed() || r2.Failed() {
		t.Fatal(r1.Err, r2.Err)
	}
	if r2.ExecTime <= r1.ExecTime {
		t.Fatalf("fragmented scan not slower: %v vs %v", r1.ExecTime, r2.ExecTime)
	}
	if r2.FilesScanned <= r1.FilesScanned {
		t.Fatalf("files scanned: %d vs %d", r1.FilesScanned, r2.FilesScanned)
	}
}

func TestReadPartitionPruning(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", true, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30,
		Parallelism: 20, TargetPartitions: []string{"2024-01", "2024-02"}})
	all := f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read})
	one := f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read, ScanPartitions: []string{"2024-01"}})
	if one.FilesScanned >= all.FilesScanned {
		t.Fatalf("pruning did not reduce files: %d vs %d", one.FilesScanned, all.FilesScanned)
	}
	if one.BytesScanned >= all.BytesScanned {
		t.Fatal("pruning did not reduce bytes")
	}
}

func TestReadScanFraction(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 10})
	full := f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read})
	tenth := f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read, ScanFraction: 0.1})
	if tenth.BytesScanned >= full.BytesScanned {
		t.Fatal("scan fraction not applied")
	}
}

func TestCoWUpdateRewritesFiles(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", true, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30,
		Parallelism: 10, TargetPartitions: []string{"2024-01"}})
	bytesBefore := tbl.TotalBytes()
	res := f.eng.Exec(Query{App: "upd", Table: tbl, Kind: Update,
		TargetPartitions: []string{"2024-01"}, ModifyFraction: 0.3, Parallelism: 40})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if res.FilesWritten == 0 {
		t.Fatal("update wrote nothing")
	}
	// Bytes approximately conserved for updates.
	after := tbl.TotalBytes()
	if after < bytesBefore*95/100 || after > bytesBefore*105/100 {
		t.Fatalf("update changed bytes: %d -> %d", bytesBefore, after)
	}
}

func TestCoWDeleteShrinksTable(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", true, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30,
		Parallelism: 10, TargetPartitions: []string{"2024-01"}})
	before := tbl.TotalBytes()
	res := f.eng.Exec(Query{App: "del", Table: tbl, Kind: Delete,
		TargetPartitions: []string{"2024-01"}, ModifyFraction: 0.4})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if tbl.TotalBytes() >= before {
		t.Fatal("delete did not shrink table")
	}
}

func TestMoRUpdateAppendsDeltas(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.MergeOnRead)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 4})
	files := tbl.FileCount()
	res := f.eng.Exec(Query{App: "upd", Table: tbl, Kind: Update, ModifyFraction: 0.1, Parallelism: 8})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if tbl.DeltaFileCount() == 0 {
		t.Fatal("MoR update produced no delta files")
	}
	if tbl.FileCount() <= files {
		t.Fatal("file count did not grow")
	}
}

func TestWriteWriteConflictRetries(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", true, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30,
		Parallelism: 10, TargetPartitions: []string{"2024-01"}})

	// Two overlapping CoW updates in flight; the second commits after
	// the first and must conflict, then retry successfully.
	w1 := f.eng.StartWrite(Query{App: "u1", Table: tbl, Kind: Update,
		TargetPartitions: []string{"2024-01"}, ModifyFraction: 0.2, Parallelism: 4})
	w2 := f.eng.StartWrite(Query{App: "u2", Table: tbl, Kind: Update,
		TargetPartitions: []string{"2024-01"}, ModifyFraction: 0.2, Parallelism: 4})
	r1 := w1.Finish()
	r2 := w2.Finish()
	if r1.Failed() {
		t.Fatal(r1.Err)
	}
	if r2.Failed() {
		t.Fatalf("retry should succeed: %v", r2.Err)
	}
	if r2.Retries == 0 {
		t.Fatal("no client-side conflict recorded")
	}
	_, conflicts, failures, _ := f.eng.Stats()
	if conflicts == 0 || failures != 0 {
		t.Fatalf("stats: conflicts=%d failures=%d", conflicts, failures)
	}
	// Retry charged extra time.
	if r2.ExecTime <= r1.ExecTime/2 {
		t.Fatal("retry cost not charged")
	}
}

func TestQuotaExceededFailsQuery(t *testing.T) {
	f := newFixture(false)
	f.fs.SetQuota("db", 8)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 50})
	if !errors.Is(res.Err, storage.ErrQuotaExceeded) {
		t.Fatalf("expected quota failure, got %v", res.Err)
	}
	_, _, failures, _ := f.eng.Stats()
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
}

func TestReadOnEmptyTable(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{App: "scan", Table: tbl, Kind: Read})
	if res.Failed() || res.FilesScanned != 0 {
		t.Fatalf("empty read = %+v", res)
	}
}

func TestSmallFilePenaltyAppliesBelowThreshold(t *testing.T) {
	cfgLo := DefaultConfig()
	cfgLo.SmallFilePenalty = 1.0
	cfgHi := DefaultConfig()
	cfgHi.SmallFilePenalty = 3.0

	run := func(cfg Config) time.Duration {
		clock := sim.NewClock()
		rng := sim.NewRNG(7)
		fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng.Fork())
		cl := cluster.New(cluster.QueryClusterConfig(), clock)
		eng := New(cfg, cl, fs, clock, rng.Fork())
		tbl, _ := lst.NewTable(lst.TableConfig{Database: "db", Name: "t"}, fs, clock)
		eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 512 * mb, Parallelism: 100})
		return eng.Exec(Query{App: "scan", Table: tbl, Kind: Read}).ExecTime
	}
	if run(cfgHi) <= run(cfgLo) {
		t.Fatal("small-file penalty had no effect")
	}
}

func TestStartWriteOnReadQueryFails(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	pw := f.eng.StartWrite(Query{App: "bad", Table: tbl, Kind: Read})
	res := pw.Finish()
	if !res.Failed() {
		t.Fatal("read through StartWrite should fail")
	}
}

func TestFinishIdempotent(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	pw := f.eng.StartWrite(Query{App: "w", Table: tbl, Kind: Insert, Bytes: mb, Parallelism: 1})
	r1 := pw.Finish()
	r2 := pw.Finish()
	if r1.FilesWritten != r2.FilesWritten || tbl.FileCount() != r1.FilesWritten {
		t.Fatal("Finish not idempotent")
	}
}

func TestKindStrings(t *testing.T) {
	if Read.String() != "read" || Insert.String() != "insert" ||
		Update.String() != "update" || Delete.String() != "delete" || Kind(9).String() != "unknown" {
		t.Fatal("kind strings")
	}
	if Read.IsWrite() || !Insert.IsWrite() {
		t.Fatal("IsWrite")
	}
}
