package engine

import (
	"testing"

	"autocomp/internal/cluster"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Tests for optimize-write (§8 write-side tuning): coalescing shuffle
// outputs to the target file size at write time.

func optimizeWriteFixture(target int64) *fixture {
	clock := sim.NewClock()
	rng := sim.NewRNG(7)
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng.Fork())
	cl := cluster.New(cluster.QueryClusterConfig(), clock)
	cfg := DefaultConfig()
	cfg.OptimizeWriteTarget = target
	eng := New(cfg, cl, fs, clock, rng.Fork())
	return &fixture{clock: clock, fs: fs, cl: cl, eng: eng}
}

func TestOptimizeWriteCoalescesOutputs(t *testing.T) {
	f := optimizeWriteFixture(512 * mb)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{App: "w", Table: tbl, Kind: Insert, Bytes: 2 << 30})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	// 2 GB at a 512 MB target → 4 files instead of the default 200.
	if res.FilesWritten != 4 {
		t.Fatalf("files written = %d, want 4", res.FilesWritten)
	}
	for _, file := range tbl.LiveFiles() {
		if file.SizeBytes < 128*mb {
			t.Fatalf("optimize-write still produced a small file: %d", file.SizeBytes)
		}
	}
}

func TestOptimizeWriteRespectsPartitions(t *testing.T) {
	f := optimizeWriteFixture(512 * mb)
	tbl := f.table(t, "t", true, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{
		App: "w", Table: tbl, Kind: Insert, Bytes: 1 << 30,
		TargetPartitions: []string{"2024-01", "2024-02", "2024-03"},
	})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	// At least one file per partition even when coalescing.
	for _, p := range []string{"2024-01", "2024-02", "2024-03"} {
		if len(tbl.FilesInPartition(p)) == 0 {
			t.Fatalf("partition %s empty", p)
		}
	}
}

func TestOptimizeWriteDoesNotFixExistingDebt(t *testing.T) {
	// An untuned engine fragments the table first...
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "w", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 300})
	frag := tbl.SmallFileCount(512 * mb)
	if frag < 200 {
		t.Fatalf("setup: small files = %d", frag)
	}
	// ...then optimize-write only prevents new debt; the backlog stays
	// until compaction runs (why AutoComp is still needed, §8).
	ow := optimizeWriteFixture(512 * mb)
	owRes := ow.eng.Exec(Query{App: "w2", Table: tbl, Kind: Insert, Bytes: 1 << 30})
	if owRes.Failed() {
		t.Fatal(owRes.Err)
	}
	if got := tbl.SmallFileCount(512 * mb); got < frag {
		t.Fatalf("existing small files disappeared without compaction: %d -> %d", frag, got)
	}
}

func TestOptimizeWriteExplicitParallelismStillCapped(t *testing.T) {
	f := optimizeWriteFixture(512 * mb)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	res := f.eng.Exec(Query{App: "w", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 500})
	if res.FilesWritten != 2 {
		t.Fatalf("files written = %d, want 2 (1GB at 512MB target)", res.FilesWritten)
	}
}
