// Package engine simulates the compute engines (Spark/Trino/Flink in the
// paper) that read and write log-structured tables. It is the layer where
// small-file proliferation turns into pain:
//
//   - every scanned file costs a NameNode open() RPC (inflating latency
//     under load, with timeouts and thundering-herd retries, §2/§7);
//   - small files decode inefficiently in columnar formats (§1), modeled
//     as an effective-bytes penalty;
//   - query planning pays per metadata object (manifest bloat, §1);
//   - untuned writers emit one file per shuffle partition, the paper's
//     primary source of small files (§2, causes i–ii);
//   - write-write conflicts trigger client-side retries that burn time
//     and compute (§2, Table 1).
package engine

import (
	"errors"
	"fmt"
	"time"

	"autocomp/internal/cluster"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Kind classifies queries.
type Kind int

// Query kinds.
const (
	Read Kind = iota
	Insert
	Update
	Delete
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Delete:
		return "delete"
	default:
		return "unknown"
	}
}

// IsWrite reports whether the kind mutates the table.
func (k Kind) IsWrite() bool { return k != Read }

// Config tunes the engine cost model.
type Config struct {
	// DefaultShufflePartitions is the writer parallelism used when a
	// query does not override it. End-user jobs are "neither designed
	// nor tuned for generating optimal file sizes" (§2); Spark's default
	// of 200 shuffle partitions is the canonical misconfiguration.
	DefaultShufflePartitions int
	// MaxCommitRetries bounds client-side retry attempts after
	// write-write conflicts.
	MaxCommitRetries int
	// RetryCostFactor is the fraction of the original job cost charged
	// per retry (retries reuse shuffle outputs but re-run the commit
	// critical path).
	RetryCostFactor float64
	// OpenRetries bounds retries of timed-out NameNode opens.
	OpenRetries int
	// SmallFileEncodingThreshold and SmallFilePenalty model columnar
	// inefficiency: files below the threshold cost penalty× their bytes.
	SmallFileEncodingThreshold int64
	SmallFilePenalty           float64
	// PlanningPerManifest is planning time per metadata object read.
	PlanningPerManifest time.Duration
	// ManifestEntries mirrors the LST manifest fan-out for planning.
	ManifestEntries int
	// DeltaMergePenalty is extra compute per MoR delta file merged at
	// read time.
	DeltaMergePenalty time.Duration
	// FileSizeJitterSigma is the log-normal sigma applied to written
	// file sizes.
	FileSizeJitterSigma float64
	// SplitSizeBytes is the scan split size: read parallelism follows
	// ceil(bytes/split), mirroring Spark's file-scan packing (small
	// files share splits; they do not earn extra parallelism).
	SplitSizeBytes int64
	// ClusteredSkipFraction is the fraction of a clustered file a
	// selective scan can skip via column statistics (data skipping).
	ClusteredSkipFraction float64
	// OptimizeWriteTarget, when positive, enables optimize-write (§8's
	// write-side tuning; cf. Spark/Synapse "optimize write" and Delta
	// auto-compaction): writers coalesce shuffle outputs so files land
	// near the target size instead of one file per shuffle partition.
	// It prevents NEW small files but does nothing for existing layout
	// debt — which is why compaction is still needed.
	OptimizeWriteTarget int64
}

// DefaultConfig returns the cost model used by the experiments.
func DefaultConfig() Config {
	return Config{
		DefaultShufflePartitions:   200,
		MaxCommitRetries:           3,
		RetryCostFactor:            0.5,
		OpenRetries:                3,
		SmallFileEncodingThreshold: 32 * storage.MB,
		SmallFilePenalty:           1.4,
		PlanningPerManifest:        5 * time.Millisecond,
		ManifestEntries:            1000,
		DeltaMergePenalty:          20 * time.Millisecond,
		FileSizeJitterSigma:        0.25,
		SplitSizeBytes:             128 * storage.MB,
		ClusteredSkipFraction:      0.8,
	}
}

// Query describes one operation against a table.
type Query struct {
	// App labels the cluster job.
	App string
	// Table is the target table.
	Table *lst.Table
	Kind  Kind

	// ScanFraction is the fraction of each scanned file actually read
	// (column projection + predicate pushdown); zero means 1.0.
	ScanFraction float64
	// ScanPartitions restricts the scan (partition pruning); nil scans
	// the whole table.
	ScanPartitions []string
	// SelectiveFilter marks queries with a selective predicate on the
	// table's clustering columns: clustered files can then be skipped
	// via their column statistics (§8's layout optimizations improving
	// "filtering efficiency"); unclustered files must still be read.
	SelectiveFilter bool

	// Bytes is the data volume an Insert writes.
	Bytes int64
	// TargetPartitions receives written data; empty means the table's
	// unpartitioned (or a single default) target.
	TargetPartitions []string
	// Parallelism overrides DefaultShufflePartitions for this write.
	Parallelism int
	// ModifyFraction is the fraction of targeted partition bytes an
	// Update/Delete affects.
	ModifyFraction float64
}

// Result reports one executed query.
type Result struct {
	App          string
	Kind         Kind
	Start        time.Duration
	QueueDelay   time.Duration
	ExecTime     time.Duration // includes retry re-execution time
	FilesScanned int
	BytesScanned int64
	FilesWritten int
	// Retries counts client-side write-write conflict retries.
	Retries int
	// Timeouts counts NameNode open timeouts encountered.
	Timeouts int
	Err      error
}

// End returns when the query finished.
func (r Result) End() time.Duration { return r.Start + r.QueueDelay + r.ExecTime }

// Failed reports whether the query ultimately failed.
func (r Result) Failed() bool { return r.Err != nil }

// Engine executes queries on a cluster against LST tables.
type Engine struct {
	cfg     Config
	cluster *cluster.Cluster
	fs      *storage.NameNode
	clock   *sim.Clock
	rng     *sim.RNG

	// cumulative counters
	queries          int64
	conflictRetries  int64
	failedQueries    int64
	timeoutsObserved int64
}

// New returns an engine with the given cost model.
func New(cfg Config, cl *cluster.Cluster, fs *storage.NameNode, clock *sim.Clock, rng *sim.RNG) *Engine {
	if cfg.DefaultShufflePartitions <= 0 {
		cfg.DefaultShufflePartitions = 200
	}
	if cfg.MaxCommitRetries <= 0 {
		cfg.MaxCommitRetries = 3
	}
	if cfg.RetryCostFactor <= 0 {
		cfg.RetryCostFactor = 0.5
	}
	if cfg.OpenRetries <= 0 {
		cfg.OpenRetries = 3
	}
	if cfg.ManifestEntries <= 0 {
		cfg.ManifestEntries = 1000
	}
	if cfg.SmallFilePenalty < 1 {
		cfg.SmallFilePenalty = 1
	}
	if cfg.SplitSizeBytes <= 0 {
		cfg.SplitSizeBytes = 128 * storage.MB
	}
	return &Engine{cfg: cfg, cluster: cl, fs: fs, clock: clock, rng: rng}
}

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Stats returns cumulative engine counters: total queries, client-side
// conflict retries, failed queries, and open timeouts observed.
func (e *Engine) Stats() (queries, conflictRetries, failures, timeouts int64) {
	return e.queries, e.conflictRetries, e.failedQueries, e.timeoutsObserved
}

// Exec runs a query synchronously: for writes, the commit happens
// immediately after the job with no interleaving window. Use StartWrite
// for event-driven runs where concurrent commits may conflict.
func (e *Engine) Exec(q Query) Result {
	if q.Kind == Read {
		return e.execRead(q)
	}
	pw := e.StartWrite(q)
	return pw.Finish()
}

// --- read path ---

func (e *Engine) execRead(q Query) Result {
	e.queries++
	res := Result{App: q.App, Kind: Read, Start: e.clock.Now()}
	t := q.Table

	var files []lst.DataFile
	if len(q.ScanPartitions) == 0 {
		files = t.LiveFiles()
	} else {
		for _, p := range q.ScanPartitions {
			files = append(files, t.FilesInPartition(p)...)
		}
	}
	frac := q.ScanFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}

	var scanBytes, effBytes int64
	deltas := 0
	var openExtra time.Duration
	for _, f := range files {
		fileFrac := frac
		if q.SelectiveFilter && f.Clustered && e.cfg.ClusteredSkipFraction > 0 {
			fileFrac *= 1 - e.cfg.ClusteredSkipFraction
		}
		b := int64(float64(f.SizeBytes) * fileFrac)
		scanBytes += b
		if f.SizeBytes < e.cfg.SmallFileEncodingThreshold {
			effBytes += int64(float64(b) * e.cfg.SmallFilePenalty)
		} else {
			effBytes += b
		}
		if f.IsDelta {
			deltas++
		}
		lat, timeouts, err := e.openWithRetry(f.Path)
		openExtra += lat
		res.Timeouts += timeouts
		if err != nil {
			res.Err = fmt.Errorf("engine: scanning %s: %w", f.Path, err)
			e.failedQueries++
			e.timeoutsObserved += int64(res.Timeouts)
			res.ExecTime = openExtra
			return res
		}
	}

	// Planning: read the manifest chain covering the live files.
	manifests := len(files)/e.cfg.ManifestEntries + 1
	planning := time.Duration(manifests) * e.cfg.PlanningPerManifest

	// Open latency is paid by parallel tasks.
	slots := e.cluster.TaskSlots()
	if slots < 1 {
		slots = 1
	}
	openPar := openExtra / time.Duration(slots)

	extra := planning + openPar + time.Duration(deltas)*e.cfg.DeltaMergePenalty
	// Splits follow raw on-disk bytes, not file count: a pile of small
	// files shares splits rather than earning parallelism, so both its
	// per-file overhead and its decode penalty concentrate per task
	// (the small-file tax).
	tasks := int((scanBytes + e.cfg.SplitSizeBytes - 1) / e.cfg.SplitSizeBytes)
	if tasks < 1 {
		tasks = 1
	}
	job := e.cluster.Submit(cluster.JobSpec{
		App:          q.App,
		ScanBytes:    effBytes,
		Files:        len(files),
		Tasks:        tasks,
		ExtraCompute: extra,
	})
	res.QueueDelay = job.QueueDelay
	res.ExecTime = job.Duration
	res.FilesScanned = len(files)
	res.BytesScanned = scanBytes
	e.timeoutsObserved += int64(res.Timeouts)
	return res
}

// openWithRetry opens a path, retrying on NameNode timeouts; it returns
// accumulated latency, the number of timeouts hit, and the final error.
func (e *Engine) openWithRetry(path string) (time.Duration, int, error) {
	var total time.Duration
	timeouts := 0
	for attempt := 0; ; attempt++ {
		lat, err := e.fs.Open(path)
		total += lat
		if err == nil {
			return total, timeouts, nil
		}
		if !errors.Is(err, storage.ErrTimeout) {
			return total, timeouts, err
		}
		timeouts++
		if attempt >= e.cfg.OpenRetries {
			return total, timeouts, err
		}
		// Thundering herd: the retry is itself more RPC load.
		e.fs.RecordRetry()
	}
}
