package engine

import (
	"testing"

	"autocomp/internal/lst"
)

// Tests for clustered-file data skipping (§8 layout optimization).

func TestSelectiveScanSkipsClusteredFiles(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	// Half the table clustered, half not.
	var specs []lst.FileSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, lst.FileSpec{SizeBytes: 256 * mb, RowCount: 1000, Clustered: i%2 == 0})
	}
	if _, err := tbl.AppendFiles(specs); err != nil {
		t.Fatal(err)
	}

	full := f.eng.Exec(Query{App: "q", Table: tbl, Kind: Read, ScanFraction: 0.5})
	selective := f.eng.Exec(Query{App: "q", Table: tbl, Kind: Read, ScanFraction: 0.5, SelectiveFilter: true})
	if selective.BytesScanned >= full.BytesScanned {
		t.Fatalf("data skipping missing: %d vs %d", selective.BytesScanned, full.BytesScanned)
	}
	// Only the clustered half skips: with skip fraction 0.8, selective
	// reads 4×(0.5×0.2)+4×0.5 = 60% of the bytes.
	want := full.BytesScanned * 6 / 10
	tol := full.BytesScanned / 100
	if selective.BytesScanned < want-tol || selective.BytesScanned > want+tol {
		t.Fatalf("skip accounting: got %d, want ~%d", selective.BytesScanned, want)
	}
}

func TestSelectiveScanNoEffectOnUnclustered(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	f.eng.Exec(Query{App: "load", Table: tbl, Kind: Insert, Bytes: 1 << 30, Parallelism: 8})
	full := f.eng.Exec(Query{App: "q", Table: tbl, Kind: Read})
	selective := f.eng.Exec(Query{App: "q", Table: tbl, Kind: Read, SelectiveFilter: true})
	if selective.BytesScanned != full.BytesScanned {
		t.Fatalf("unclustered files skipped: %d vs %d", selective.BytesScanned, full.BytesScanned)
	}
}

func TestClusteringSpeedsUpSelectiveQueries(t *testing.T) {
	f := newFixture(false)
	tbl := f.table(t, "t", false, false, lst.CopyOnWrite)
	var specs []lst.FileSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, lst.FileSpec{SizeBytes: 512 * mb, RowCount: 1000})
	}
	tbl.AppendFiles(specs)
	before := f.eng.Exec(Query{App: "q", Table: tbl, Kind: Read, SelectiveFilter: true})

	// Rewrite everything clustered.
	tx := tbl.NewTransaction(lst.OpRewrite)
	for _, file := range tbl.LiveFiles() {
		tx.Remove(file.Path, file.Partition)
		tx.Add(lst.FileSpec{SizeBytes: file.SizeBytes, RowCount: file.RowCount, Clustered: true})
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := f.eng.Exec(Query{App: "q", Table: tbl, Kind: Read, SelectiveFilter: true})
	if after.ExecTime >= before.ExecTime {
		t.Fatalf("clustering did not speed up selective scan: %v vs %v", after.ExecTime, before.ExecTime)
	}
}
