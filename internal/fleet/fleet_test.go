package fleet

import (
	"testing"

	"autocomp/internal/core"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func smallFleet(seed int64) (*Fleet, *sim.Clock) {
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.InitialTables = 300
	cfg.TablesPerMonth = 30
	return New(cfg, clock), clock
}

func TestFleetInitialShape(t *testing.T) {
	f, _ := smallFleet(1)
	if f.TableCount() != 300 {
		t.Fatalf("tables = %d", f.TableCount())
	}
	frac := f.TinyFileFraction()
	if frac < 0.75 || frac > 0.92 {
		t.Fatalf("tiny fraction = %v, want ~0.83", frac)
	}
	if f.TotalFiles() == 0 {
		t.Fatal("no files")
	}
	h := f.Histogram()
	if h[0]+h[1]+h[2] != f.TotalFiles() {
		t.Fatal("histogram does not sum to total")
	}
}

func TestFleetDeterministic(t *testing.T) {
	a, _ := smallFleet(5)
	b, _ := smallFleet(5)
	if a.TotalFiles() != b.TotalFiles() || a.TinyFileFraction() != b.TinyFileFraction() {
		t.Fatal("fleet generation not deterministic")
	}
}

func TestAdvanceDayGrowsFilesAndOnboards(t *testing.T) {
	f, clock := smallFleet(1)
	files0 := f.TotalFiles()
	tables0 := f.TableCount()
	for i := 0; i < 30; i++ {
		f.AdvanceDay()
	}
	if f.TotalFiles() <= files0 {
		t.Fatal("no organic growth")
	}
	if f.TableCount() <= tables0 {
		t.Fatal("no onboarding")
	}
	if got := f.TableCount() - tables0; got < 25 || got > 35 {
		t.Fatalf("onboarded %d in a month, want ~30", got)
	}
	if f.Day() != 30 {
		t.Fatalf("day = %d", f.Day())
	}
	if clock.Now() != 30*24*3_600_000_000_000 {
		t.Fatalf("clock = %v", clock.Now())
	}
}

func TestCompactTableReducesSmallFiles(t *testing.T) {
	f, _ := smallFleet(1)
	r := Runner{Fleet: f, Model: DefaultModel(512 * storage.MB)}
	tbl := f.MostFragmented(1)[0]
	small0 := tbl.SmallFiles()
	files0 := tbl.FileCount()
	bytes0 := tbl.TotalBytes()
	res := r.CompactTable(tbl)
	if !res.Succeeded() {
		t.Fatalf("result = %+v", res)
	}
	if tbl.SmallFiles() >= small0 {
		t.Fatal("small files did not drop")
	}
	if tbl.FileCount() >= files0 {
		t.Fatal("file count did not drop")
	}
	// Bytes conserved within rounding.
	if tbl.TotalBytes() < bytes0*99/100 || tbl.TotalBytes() > bytes0*101/100 {
		t.Fatalf("bytes %d -> %d", bytes0, tbl.TotalBytes())
	}
	if res.GBHr <= 0 || res.Duration <= 0 {
		t.Fatalf("cost missing: %+v", res)
	}
}

func TestCompactionActualBelowEstimate(t *testing.T) {
	f, _ := smallFleet(2)
	r := Runner{Fleet: f, Model: DefaultModel(512 * storage.MB)}
	over, n := 0, 0
	for _, tbl := range f.MostFragmented(20) {
		est := float64(tbl.SmallFiles()) // the §4.2 ΔF estimate
		res := r.CompactTable(tbl)
		if !res.Succeeded() {
			continue
		}
		n++
		if est > float64(res.Reduction()) {
			over++
		}
	}
	if n == 0 {
		t.Fatal("nothing compacted")
	}
	// Table-level estimates overestimate essentially always (§7).
	if over < n*9/10 {
		t.Fatalf("overestimation in only %d/%d cases", over, n)
	}
}

func TestMostFragmentedOrdering(t *testing.T) {
	f, _ := smallFleet(3)
	top := f.MostFragmented(10)
	if len(top) != 10 {
		t.Fatalf("top = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].SmallFiles() < top[i].SmallFiles() {
			t.Fatal("not ordered by small files")
		}
	}
}

func TestFleetServiceRunOnce(t *testing.T) {
	f, _ := smallFleet(4)
	svc, err := f.Service(core.TopK{K: 10}, DefaultModel(512*storage.MB))
	if err != nil {
		t.Fatal(err)
	}
	before := f.TotalFiles()
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decision.Selected) != 10 {
		t.Fatalf("selected = %d", len(rep.Decision.Selected))
	}
	if rep.FilesReduced <= 0 {
		t.Fatalf("files reduced = %d", rep.FilesReduced)
	}
	if f.TotalFiles() >= before {
		t.Fatal("fleet file count did not drop")
	}
}

func TestFleetServiceBudgetDynamicK(t *testing.T) {
	f, _ := smallFleet(6)
	model := DefaultModel(512 * storage.MB)
	svc, err := f.Service(core.BudgetSelector{BudgetGBHr: 226 * 1024}, model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	// A large budget admits many more than the fixed top-10 (§7's
	// dynamic k ≈ 2500 under 226 TBHr).
	if len(rep.Decision.Selected) <= 10 {
		t.Fatalf("dynamic k = %d", len(rep.Decision.Selected))
	}
}

func TestQuotaUtilizationBounded(t *testing.T) {
	f, _ := smallFleet(7)
	for _, db := range []string{"db000", "db001", "db999"} {
		u := f.QuotaUtilization(db)
		if u < 0 || u > 1 {
			t.Fatalf("quota %s = %v", db, u)
		}
	}
}

func TestRunDailyScansAccumulatesOpens(t *testing.T) {
	f, _ := smallFleet(8)
	s := f.RunDailyScans()
	if s.TablesScanned == 0 || s.FilesScanned == 0 {
		t.Fatalf("scan stats = %+v", s)
	}
	if f.OpenCalls() != s.FilesScanned {
		t.Fatalf("open calls = %d, scanned = %d", f.OpenCalls(), s.FilesScanned)
	}
	if s.QueryTime <= 0 || s.QueryCost <= 0 {
		t.Fatalf("scan cost = %+v", s)
	}
}

func TestObserverAndConnector(t *testing.T) {
	f, clock := smallFleet(9)
	clock.Advance(48 * 3_600_000_000_000)
	conn := Connector{Fleet: f}
	tables := conn.Tables()
	if len(tables) != f.TableCount() {
		t.Fatal("connector table count")
	}
	obs := Observer{Fleet: f}
	c := &core.Candidate{Table: tables[0], Scope: core.ScopeTable}
	stats, err := obs.Observe(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FileCount == 0 || stats.SmallFiles == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.TableAge <= 0 {
		t.Fatal("age missing")
	}
	if conn.Now() != clock.Now() {
		t.Fatal("connector clock")
	}
	// Observer rejects non-fleet tables.
	if _, err := obs.Observe(&core.Candidate{Table: nil}); err == nil {
		t.Fatal("nil table accepted")
	}
}

func TestRunnerRejectsForeignTables(t *testing.T) {
	f, _ := smallFleet(10)
	r := Runner{Fleet: f, Model: DefaultModel(512 * storage.MB)}
	res := r.Run(&core.Candidate{Table: nil})
	if res.Err == nil {
		t.Fatal("nil table accepted")
	}
}

func TestCompactSkipsHealthyTable(t *testing.T) {
	f, _ := smallFleet(11)
	tbl := f.Tables()[0]
	tbl.counts = [3]int64{0, 0, 100}
	tbl.bytes = [3]int64{0, 0, 100 * 700 * storage.MB}
	r := Runner{Fleet: f, Model: DefaultModel(512 * storage.MB)}
	if res := r.CompactTable(tbl); !res.Skipped {
		t.Fatalf("healthy table compacted: %+v", res)
	}
}

func TestBucketBounds(t *testing.T) {
	b := BucketBounds()
	if b[0] != 128*storage.MB || b[1] != 512*storage.MB {
		t.Fatalf("bounds = %v", b)
	}
}

// TestComponentRNGStreamsIndependent pins the per-component stream
// split: a fleet that additionally runs scans and compactions between
// days must see exactly the organic write growth of an untouched twin —
// execution- and scan-side draws come from their own streams, so
// running maintenance (or attaching a fault injector) never perturbs
// the write pattern. Before the split, compaction cost jitter consumed
// the shared stream and every subsequent write draw shifted.
func TestComponentRNGStreamsIndependent(t *testing.T) {
	build := func() *Fleet {
		cfg := DefaultConfig()
		cfg.Seed = 21
		cfg.InitialTables = 120
		return New(cfg, sim.NewClock())
	}
	quiet, busy := build(), build()
	model := DefaultModel(512 * storage.MB)
	for d := 1; d <= 5; d++ {
		// The busy twin scans and compacts its hottest tables daily.
		busy.RunDailyScans()
		r := Runner{Fleet: busy, Model: model}
		for _, tb := range busy.MostFragmented(10) {
			r.CompactTable(tb)
		}
		qBefore, bBefore := quiet.TotalFiles(), busy.TotalFiles()
		quiet.AdvanceDay()
		busy.AdvanceDay()
		qGrow, bGrow := quiet.TotalFiles()-qBefore, busy.TotalFiles()-bBefore
		if qGrow != bGrow {
			t.Fatalf("day %d: organic growth diverged (%d vs %d files) — scan/exec draws leaked into the write stream",
				d, qGrow, bGrow)
		}
	}
}

// TestDropThenOnboardNeverReusesNames pins the monotonic onboarding
// counter: after a drop, newly onboarded tables must not reuse a live
// table's name (name-keyed structures — changefeed tracker, stats
// cache, leases — would conflate the twins).
func TestDropThenOnboardNeverReusesNames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.InitialTables = 50
	cfg.TablesPerMonth = 60
	f := New(cfg, sim.NewClock())
	victim := f.Tables()[10].FullName()
	if !f.DropTable(victim) {
		t.Fatal("drop failed")
	}
	for d := 0; d < 3; d++ {
		f.AdvanceDay()
	}
	seen := make(map[string]bool, f.TableCount())
	for _, tb := range f.Tables() {
		name := tb.FullName()
		if seen[name] {
			t.Fatalf("duplicate live table name %s after drop+onboard", name)
		}
		seen[name] = true
		if name == victim {
			t.Fatalf("dropped table's name %s reused", victim)
		}
	}
}
