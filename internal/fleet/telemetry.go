package fleet

import (
	"autocomp/internal/telemetry"
)

// Runtime metrics of the simulated lake substrate. The per-day gauges
// are refreshed once per AdvanceDay (which is already O(tables)); the
// hot-path counters (writer commits) are single atomic adds.
var (
	mTables = telemetry.Default().Gauge(
		"autocomp_fleet_tables",
		"Live tables in the lake.")
	mFiles = telemetry.Default().Gauge(
		"autocomp_fleet_files",
		"Data files across the fleet.")
	mBytes = telemetry.Default().Gauge(
		"autocomp_fleet_bytes",
		"Data bytes across the fleet.")
	mMetaObjects = telemetry.Default().Gauge(
		"autocomp_fleet_metadata_objects",
		"Metadata objects (metadata.json versions, manifests, checkpoints) across the fleet.")
	mTinyFrac = telemetry.Default().Gauge(
		"autocomp_fleet_tiny_file_fraction",
		"Count-fraction of files under 128MB.")
	mDays = telemetry.Default().Counter(
		"autocomp_fleet_days_total",
		"Simulated days advanced.")
	mWriterCommits = telemetry.Default().Counter(
		"autocomp_fleet_writer_commits_total",
		"Live writer commits racing the compactor (WriterCommit calls).")
	mOnboarded = telemetry.Default().Counter(
		"autocomp_fleet_tables_onboarded_total",
		"Tables onboarded since process start.")
	mDropped = telemetry.Default().Counter(
		"autocomp_fleet_tables_dropped_total",
		"Tables dropped from the lake.")
)

// refreshGauges publishes the substrate's aggregate state. One pass over
// the tables covers every gauge.
func (f *Fleet) refreshGauges() {
	var files, bytes, meta, tiny int64
	for _, t := range f.tables {
		files += t.counts[0] + t.counts[1] + t.counts[2]
		bytes += t.bytes[0] + t.bytes[1] + t.bytes[2]
		meta += t.MetadataObjects()
		tiny += t.counts[BucketTiny]
	}
	mTables.Set(float64(len(f.tables)))
	mFiles.Set(float64(files))
	mBytes.Set(float64(bytes))
	mMetaObjects.Set(float64(meta))
	if files > 0 {
		mTinyFrac.Set(float64(tiny) / float64(files))
	} else {
		mTinyFrac.Set(0)
	}
}
