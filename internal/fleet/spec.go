package fleet

import (
	"time"

	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/policy"
	"autocomp/internal/scheduler"
	"autocomp/internal/telemetry"
)

// PolicyEnv returns the policy-compilation environment of this fleet:
// its clock and the compaction model's pricing constants, so specs can
// omit model parameters and inherit them.
func (f *Fleet) PolicyEnv(model CompactionModel) policy.Env {
	return policy.Env{
		Now:                 f.clock.Now,
		TargetFileSize:      model.TargetFileSize,
		ExecutorMemoryGB:    model.ExecutorMemoryGB,
		RewriteBytesPerHour: model.RewriteBytesPerHour,
	}
}

// PolicyBindings returns the substrate bindings a compiled spec runs
// against on this fleet: the aggregate-model connector, observer, and
// runner.
func (f *Fleet) PolicyBindings(model CompactionModel) policy.Bindings {
	return policy.Bindings{
		Connector: Connector{Fleet: f},
		Observer:  Observer{Fleet: f},
		Runner:    Runner{Fleet: f, Model: model},
	}
}

// SpecRunOptions carries the simulation-side knobs that are not policy
// (they describe the modeled world, not the pipeline).
type SpecRunOptions struct {
	// WriterCommitsPerHour is the fleet-wide rate of live writer commits
	// racing the compactor during execution windows (0 = quiet lake).
	WriterCommitsPerHour float64
	// WrapRunner, when set, wraps the substrate's data-compaction runner
	// before the spec compiles against it — fault injectors and
	// instrumentation hook in here. When the spec enables unified
	// maintenance, the wrapper sees only the data-compaction candidates
	// (the maintenance runner wraps the result for metadata actions).
	WrapRunner func(core.Runner) core.Runner
	// Tenant labels every CycleEvent the service emits — the tenant
	// identity in a multi-tenant daemon (empty for single-lake use).
	Tenant string
	// Tracer receives the service's CycleEvents; nil means the
	// process-wide telemetry.DefaultTracer(). Multi-tenant hosts give
	// each tenant (and each scenario run) its own tracer so decision
	// streams never interleave.
	Tracer *telemetry.Tracer
}

// SpecService is a pipeline built from a declarative policy spec: the
// decision service plus whichever planes the spec enabled — the
// incremental observation feed (trigger section) and the concurrent
// execution plane (execution section).
type SpecService struct {
	// Compiled is the resolved spec.
	Compiled *policy.Compiled
	// Svc is the decision pipeline.
	Svc *core.Service
	// Feed is the incremental observation plane (nil without a trigger
	// section).
	Feed *changefeed.Feed
	// Sched is the concurrent execution plane (nil without an execution
	// section; cycles then act serially).
	Sched *ScheduledService

	fleet *Fleet
	// tenant and tracer route the service's CycleEvents (SpecRunOptions).
	tenant string
	tracer *telemetry.Tracer
	// prevCache holds the stats-cache counters at the end of the last
	// cycle, so trace events carry per-cycle deltas.
	prevCache changefeed.CacheCounters
}

// ServiceFromSpec compiles a policy spec against this fleet and wires
// every plane the spec enables. It is the spec-driven equivalent of the
// hand-wired Service/MaintenanceService/IncrementalService/
// ScheduledService constructors, and compiling the matching spec
// produces byte-identical decisions to them.
func (f *Fleet) ServiceFromSpec(spec *policy.Spec, model CompactionModel, opts SpecRunOptions) (*SpecService, error) {
	bindings := f.PolicyBindings(model)
	if opts.WrapRunner != nil {
		bindings.Runner = opts.WrapRunner(bindings.Runner)
	}
	comp, err := policy.Compile(spec, f.PolicyEnv(model), bindings)
	if err != nil {
		return nil, err
	}
	out := &SpecService{Compiled: comp, fleet: f, tenant: opts.Tenant, tracer: opts.Tracer}
	if out.tracer == nil {
		out.tracer = telemetry.DefaultTracer()
	}
	cfg := comp.Core
	if comp.Incremental {
		cfg, out.Feed = f.IncrementalConfig(cfg, IncrOptions{
			Trigger:        comp.Trigger,
			Triggers:       comp.Triggers,
			ReconcileEvery: comp.ReconcileEvery,
			DecideShards:   comp.DecideShards,
		})
	} else {
		// The spec owns the fleet's changefeed attachment: compiling a
		// non-incremental spec detaches any previously attached feed, so
		// a hot reload away from incremental mode does not leave a stale
		// bus consuming (and accounting) every future commit event.
		f.AttachChangefeed(nil)
	}
	svc, err := core.NewService(cfg)
	if err != nil {
		return nil, err
	}
	out.Svc = svc
	if comp.HasExecution {
		out.Sched = f.ScheduleService(svc, model, SchedOptions{
			Workers:              comp.Sched.Workers,
			Shards:               comp.Sched.Shards,
			ShardBudgetGBHr:      comp.Sched.ShardBudgetGBHr,
			StalenessBound:       comp.Sched.StalenessBound,
			MaxAttempts:          comp.Sched.MaxAttempts,
			RetryBase:            comp.Sched.RetryBase,
			RetryMax:             comp.Sched.RetryMax,
			AgingRatePerHour:     comp.Sched.AgingRatePerHour,
			WriterCommitsPerHour: opts.WriterCommitsPerHour,
		})
	}
	return out, nil
}

// RunCycle performs one OODA cycle on whichever execution plane the
// spec configured: the worker pool when present (with scheduler stats),
// the serial act phase otherwise (zero stats). Every completed cycle
// emits one telemetry.CycleEvent on the default tracer — the decision
// trace autocompd logs, streams as JSONL, and serves on /statusz.
func (s *SpecService) RunCycle() (*core.Report, scheduler.Stats, error) {
	// The cycle cost is measured on the fleet's clock — virtual time, so
	// the emitted trace (WallMS included) is a deterministic function of
	// the seed rather than a leak of host wall time.
	started := s.fleet.clock.Now()
	var rep *core.Report
	var stats scheduler.Stats
	var err error
	if s.Sched != nil {
		rep, stats, err = s.Sched.RunCycle()
	} else {
		rep, err = s.Svc.RunOnce()
	}
	if err != nil {
		return rep, stats, err
	}
	s.emitCycleEvent(rep, stats, s.fleet.clock.Now()-started)
	return rep, stats, nil
}

// emitCycleEvent assembles the cycle's decision-trace event from the
// report, the execution stats, the observation feed, and the substrate.
// Emission is passive: it reads state the cycle already produced and
// never mutates anything the pipeline consumes.
func (s *SpecService) emitCycleEvent(rep *core.Report, stats scheduler.Stats, wall time.Duration) {
	d := rep.Decision
	ev := telemetry.CycleEvent{
		Day:    s.fleet.Day(),
		Tenant: s.tenant,
		Policy: specName(s.Compiled.Spec),
		Funnel: telemetry.FunnelTrace{
			Generated:  d.Generated,
			AfterPre:   d.AfterPreFilters,
			AfterStats: d.AfterStatsFilter,
			AfterTrait: d.AfterTraitFilter,
			Ranked:     len(d.Ranked),
			Selected:   len(d.Selected),
		},
		FilesReduced:    rep.FilesReduced,
		MetadataReduced: rep.MetadataReduced,
		BytesRewritten:  rep.BytesRewritten,
		GBHrSpent:       rep.ActualGBHr,
		WallMS:          float64(wall) / float64(time.Millisecond),
	}
	if s.Feed != nil {
		scan := s.Feed.LastScan()
		cc := s.Feed.Cache.Counters()
		ev.Scan = telemetry.ScanTrace{
			Mode:        map[bool]string{true: "full", false: "dirty"}[scan.Full],
			Scanned:     scan.Scanned,
			Pool:        scan.Pool,
			CacheHits:   cc.Hits - s.prevCache.Hits,
			CacheMisses: cc.Misses - s.prevCache.Misses,
			DirtyNow:    s.Feed.Tracker.DirtyCount(),
		}
		s.prevCache = cc
	} else {
		ev.Scan = telemetry.ScanTrace{
			Mode:    "scan",
			Scanned: s.fleet.TableCount(),
			Pool:    d.Generated,
		}
	}
	if s.Sched != nil {
		ev.Exec = telemetry.ExecTrace{
			Done:           stats.Done,
			Skipped:        stats.Skipped,
			Conflicted:     stats.Conflicted,
			Deferred:       stats.Deferred,
			Failed:         stats.Failed,
			Conflicts:      stats.Conflicts,
			Retries:        stats.Retries,
			Workers:        stats.Workers,
			Shards:         stats.Shards,
			MakespanMS:     stats.Makespan.Milliseconds(),
			UtilizationPct: 100 * stats.Utilization(),
			MaxQueueDepth:  stats.MaxQueueDepth,
		}
	} else {
		done := len(rep.Results) - rep.Skipped - rep.Errors - rep.Conflicts
		ev.Exec = telemetry.ExecTrace{
			Done:       done,
			Skipped:    rep.Skipped,
			Conflicted: rep.Conflicts,
			Failed:     rep.Errors,
			Conflicts:  rep.Conflicts,
		}
	}
	counts := rep.ActionCounts()
	for _, a := range core.ActionTypes() {
		if counts[a] > 0 {
			ev.Outcomes = append(ev.Outcomes, telemetry.OutcomeTrace{Action: a.String(), Done: counts[a]})
		}
	}
	ev.Fleet = telemetry.FleetTrace{
		Tables:      s.fleet.TableCount(),
		Files:       s.fleet.TotalFiles(),
		MetaObjects: s.fleet.TotalMetadataObjects(),
		TinyFrac:    s.fleet.TinyFileFraction(),
	}
	s.tracer.Emit(ev)
}

// Tracer returns the tracer this service emits CycleEvents to.
func (s *SpecService) Tracer() *telemetry.Tracer { return s.tracer }

// specName names a compiled spec for trace events.
func specName(sp *policy.Spec) string {
	if sp == nil || sp.Name == "" {
		return "(unnamed)"
	}
	return sp.Name
}
