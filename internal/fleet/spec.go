package fleet

import (
	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/policy"
	"autocomp/internal/scheduler"
)

// PolicyEnv returns the policy-compilation environment of this fleet:
// its clock and the compaction model's pricing constants, so specs can
// omit model parameters and inherit them.
func (f *Fleet) PolicyEnv(model CompactionModel) policy.Env {
	return policy.Env{
		Now:                 f.clock.Now,
		TargetFileSize:      model.TargetFileSize,
		ExecutorMemoryGB:    model.ExecutorMemoryGB,
		RewriteBytesPerHour: model.RewriteBytesPerHour,
	}
}

// PolicyBindings returns the substrate bindings a compiled spec runs
// against on this fleet: the aggregate-model connector, observer, and
// runner.
func (f *Fleet) PolicyBindings(model CompactionModel) policy.Bindings {
	return policy.Bindings{
		Connector: Connector{Fleet: f},
		Observer:  Observer{Fleet: f},
		Runner:    Runner{Fleet: f, Model: model},
	}
}

// SpecRunOptions carries the simulation-side knobs that are not policy
// (they describe the modeled world, not the pipeline).
type SpecRunOptions struct {
	// WriterCommitsPerHour is the fleet-wide rate of live writer commits
	// racing the compactor during execution windows (0 = quiet lake).
	WriterCommitsPerHour float64
	// WrapRunner, when set, wraps the substrate's data-compaction runner
	// before the spec compiles against it — fault injectors and
	// instrumentation hook in here. When the spec enables unified
	// maintenance, the wrapper sees only the data-compaction candidates
	// (the maintenance runner wraps the result for metadata actions).
	WrapRunner func(core.Runner) core.Runner
}

// SpecService is a pipeline built from a declarative policy spec: the
// decision service plus whichever planes the spec enabled — the
// incremental observation feed (trigger section) and the concurrent
// execution plane (execution section).
type SpecService struct {
	// Compiled is the resolved spec.
	Compiled *policy.Compiled
	// Svc is the decision pipeline.
	Svc *core.Service
	// Feed is the incremental observation plane (nil without a trigger
	// section).
	Feed *changefeed.Feed
	// Sched is the concurrent execution plane (nil without an execution
	// section; cycles then act serially).
	Sched *ScheduledService
}

// ServiceFromSpec compiles a policy spec against this fleet and wires
// every plane the spec enables. It is the spec-driven equivalent of the
// hand-wired Service/MaintenanceService/IncrementalService/
// ScheduledService constructors, and compiling the matching spec
// produces byte-identical decisions to them.
func (f *Fleet) ServiceFromSpec(spec *policy.Spec, model CompactionModel, opts SpecRunOptions) (*SpecService, error) {
	bindings := f.PolicyBindings(model)
	if opts.WrapRunner != nil {
		bindings.Runner = opts.WrapRunner(bindings.Runner)
	}
	comp, err := policy.Compile(spec, f.PolicyEnv(model), bindings)
	if err != nil {
		return nil, err
	}
	out := &SpecService{Compiled: comp}
	cfg := comp.Core
	if comp.Incremental {
		cfg, out.Feed = f.IncrementalConfig(cfg, IncrOptions{
			Trigger:        comp.Trigger,
			Triggers:       comp.Triggers,
			ReconcileEvery: comp.ReconcileEvery,
		})
	} else {
		// The spec owns the fleet's changefeed attachment: compiling a
		// non-incremental spec detaches any previously attached feed, so
		// a hot reload away from incremental mode does not leave a stale
		// bus consuming (and accounting) every future commit event.
		f.AttachChangefeed(nil)
	}
	svc, err := core.NewService(cfg)
	if err != nil {
		return nil, err
	}
	out.Svc = svc
	if comp.HasExecution {
		out.Sched = f.ScheduleService(svc, model, SchedOptions{
			Workers:              comp.Sched.Workers,
			Shards:               comp.Sched.Shards,
			ShardBudgetGBHr:      comp.Sched.ShardBudgetGBHr,
			StalenessBound:       comp.Sched.StalenessBound,
			MaxAttempts:          comp.Sched.MaxAttempts,
			RetryBase:            comp.Sched.RetryBase,
			RetryMax:             comp.Sched.RetryMax,
			AgingRatePerHour:     comp.Sched.AgingRatePerHour,
			WriterCommitsPerHour: opts.WriterCommitsPerHour,
		})
	}
	return out, nil
}

// RunCycle performs one OODA cycle on whichever execution plane the
// spec configured: the worker pool when present (with scheduler stats),
// the serial act phase otherwise (zero stats).
func (s *SpecService) RunCycle() (*core.Report, scheduler.Stats, error) {
	if s.Sched != nil {
		return s.Sched.RunCycle()
	}
	rep, err := s.Svc.RunOnce()
	return rep, scheduler.Stats{}, err
}
