package fleet

import (
	"testing"

	"autocomp/internal/core"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func candFor(t *Table) *core.Candidate {
	return &core.Candidate{Table: t, Scope: core.ScopeTable}
}

// Tests for workload drift (§7: users adjust workflows daily, so a fixed
// manual compaction list goes stale).

func TestDriftChangesGrowthRates(t *testing.T) {
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.InitialTables = 200
	cfg.DailyDriftProb = 0.5 // aggressive, to observe quickly
	f := New(cfg, clock)

	before := map[string]float64{}
	for _, tbl := range f.Tables() {
		before[tbl.FullName()] = tbl.growthPerDay
	}
	for d := 0; d < 5; d++ {
		f.AdvanceDay()
	}
	changed := 0
	for _, tbl := range f.Tables() {
		if prev, ok := before[tbl.FullName()]; ok && tbl.growthPerDay != prev {
			changed++
		}
	}
	if changed < 100 {
		t.Fatalf("drift changed only %d/200 growth rates", changed)
	}
}

func TestNoDriftKeepsGrowthRates(t *testing.T) {
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.InitialTables = 100
	cfg.DailyDriftProb = 0
	f := New(cfg, clock)
	before := map[string]float64{}
	for _, tbl := range f.Tables() {
		before[tbl.FullName()] = tbl.growthPerDay
	}
	for d := 0; d < 5; d++ {
		f.AdvanceDay()
	}
	for _, tbl := range f.Tables() {
		if prev, ok := before[tbl.FullName()]; ok && tbl.growthPerDay != prev {
			t.Fatalf("growth rate drifted with DailyDriftProb=0: %s", tbl.FullName())
		}
	}
}

func TestManualListGoesStaleUnderDrift(t *testing.T) {
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.InitialTables = 800
	cfg.DailyDriftProb = 0.02
	f := New(cfg, clock)

	manual := map[string]bool{}
	for _, tbl := range f.MostFragmented(50) {
		manual[tbl.FullName()] = true
	}
	// After months of drift, the currently most-fragmented set has
	// rotated away from the original selection.
	runner := Runner{Fleet: f, Model: DefaultModel(512 * storage.MB)}
	fixed := f.MostFragmented(50)
	for d := 0; d < 120; d++ {
		f.AdvanceDay()
		runner.CompactTables(fixed) // keep the fixed set healthy
	}
	stale := 0
	for _, tbl := range f.MostFragmented(50) {
		if !manual[tbl.FullName()] {
			stale++
		}
	}
	if stale < 25 {
		t.Fatalf("manual list still covers the hot set: only %d/50 rotated", stale)
	}
}

func TestFleetObserverExposesReadRate(t *testing.T) {
	f, _ := smallFleet(12)
	obs := Observer{Fleet: f}
	tbl := f.Tables()[0]
	stats, err := obs.Observe(candFor(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Custom == nil {
		t.Fatal("custom stats missing")
	}
	if got := stats.Custom["read_rate"]; got != tbl.scanShare {
		t.Fatalf("read_rate = %v, want %v", got, tbl.scanShare)
	}
}
