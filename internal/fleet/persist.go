package fleet

import (
	"fmt"
	"time"

	"autocomp/internal/sim"
)

// TableState is one table's aggregate model, serialized. Field names
// mirror Table's internals; see there for semantics.
type TableState struct {
	DB          string `json:"db"`
	Name        string `json:"name"`
	Partitioned bool   `json:"partitioned,omitempty"`
	Partitions  int    `json:"partitions"`

	Counts [3]int64 `json:"counts"`
	Bytes  [3]int64 `json:"bytes"`

	Created   time.Duration `json:"created_ns"`
	LastWrite time.Duration `json:"last_write_ns"`
	Writes    int64         `json:"writes"`

	GrowthPerDay float64 `json:"growth_per_day"`
	AvgNewFile   int64   `json:"avg_new_file"`
	ScanShare    float64 `json:"scan_share"`

	MetaJSONs         int64 `json:"meta_jsons"`
	Manifests         int64 `json:"manifests"`
	Checkpoints       int64 `json:"checkpoints"`
	MetaBytes         int64 `json:"meta_bytes"`
	Snapshots         int64 `json:"snapshots"`
	Commits           int64 `json:"commits"`
	VersionsSinceCkpt int64 `json:"versions_since_ckpt"`

	Props map[string]string `json:"props,omitempty"`
}

// RNGState records how many draws each of the fleet's independent
// randomness streams has consumed; Restore fast-forwards fresh streams
// to the same positions so post-restore dynamics are byte-identical to
// an uninterrupted run.
type RNGState struct {
	Tables int64 `json:"tables"`
	Writes int64 `json:"writes"`
	Scans  int64 `json:"scans"`
	Exec   int64 `json:"exec"`
}

// State is a complete fleet snapshot: configuration, virtual time,
// every table's aggregate model, and the RNG stream positions.
type State struct {
	Config        Config        `json:"config"`
	Day           int           `json:"day"`
	Onboarded     int           `json:"onboarded"`
	Now           time.Duration `json:"now_ns"`
	OpenCalls     int64         `json:"open_calls"`
	MetaOpenCalls int64         `json:"meta_open_calls"`
	RNG           RNGState      `json:"rng"`
	Tables        []TableState  `json:"tables"`
}

// Snapshot captures the fleet's full state. The changefeed bus is not
// part of it — observation-plane attachments are reconstructed by the
// harness after Restore, as at first boot.
func (f *Fleet) Snapshot() *State {
	st := &State{
		Config:        f.cfg,
		Day:           f.day,
		Onboarded:     f.onboarded,
		Now:           f.clock.Now(),
		OpenCalls:     f.openCalls,
		MetaOpenCalls: f.metaOpenCalls,
		RNG: RNGState{
			Tables: f.rngTables.Draws(),
			Writes: f.rngWrites.Draws(),
			Scans:  f.rngScans.Draws(),
			Exec:   f.rngExec.Draws(),
		},
		Tables: make([]TableState, 0, len(f.tables)),
	}
	for _, t := range f.tables {
		ts := TableState{
			DB: t.db, Name: t.name,
			Partitioned: t.partitioned, Partitions: t.partitions,
			Counts: t.counts, Bytes: t.bytes,
			Created: t.created, LastWrite: t.lastWrite, Writes: t.writes,
			GrowthPerDay: t.growthPerDay, AvgNewFile: t.avgNewFile, ScanShare: t.scanShare,
			MetaJSONs: t.metaJSONs, Manifests: t.manifests, Checkpoints: t.checkpoints,
			MetaBytes: t.metaBytes, Snapshots: t.snapshots, Commits: t.commits,
			VersionsSinceCkpt: t.versionsSinceCkpt,
		}
		if len(t.props) > 0 {
			ts.Props = make(map[string]string, len(t.props))
			for k, v := range t.props {
				ts.Props[k] = v
			}
		}
		st.Tables = append(st.Tables, ts)
	}
	return st
}

// Restore rebuilds a fleet from a snapshot without re-running its
// history: tables are materialized directly, the per-database file
// cache recomputed, virtual time advanced to the snapshot's, and every
// RNG stream fast-forwarded to its recorded draw count — so the day
// after a restore draws exactly what the day after the snapshot would
// have.
func Restore(st *State, clock *sim.Clock) (*Fleet, error) {
	if st == nil {
		return nil, fmt.Errorf("fleet: nil snapshot")
	}
	if now := clock.Now(); now < st.Now {
		clock.Set(st.Now)
	} else if now > st.Now {
		return nil, fmt.Errorf("fleet: clock at %v is past the snapshot's %v", now, st.Now)
	}
	f := &Fleet{
		cfg:           st.Config,
		clock:         clock,
		rngTables:     sim.NewRNGAt(sim.ChildSeed(st.Config.Seed, "fleet/tables"), st.RNG.Tables),
		rngWrites:     sim.NewRNGAt(sim.ChildSeed(st.Config.Seed, "fleet/writes"), st.RNG.Writes),
		rngScans:      sim.NewRNGAt(sim.ChildSeed(st.Config.Seed, "fleet/scans"), st.RNG.Scans),
		rngExec:       sim.NewRNGAt(sim.ChildSeed(st.Config.Seed, "fleet/exec"), st.RNG.Exec),
		dbFiles:       make(map[string]int64),
		day:           st.Day,
		onboarded:     st.Onboarded,
		openCalls:     st.OpenCalls,
		metaOpenCalls: st.MetaOpenCalls,
	}
	f.tables = make([]*Table, 0, len(st.Tables))
	for _, ts := range st.Tables {
		t := &Table{
			db: ts.DB, name: ts.Name,
			partitioned: ts.Partitioned, partitions: ts.Partitions,
			counts: ts.Counts, bytes: ts.Bytes,
			created: ts.Created, lastWrite: ts.LastWrite, writes: ts.Writes,
			growthPerDay: ts.GrowthPerDay, avgNewFile: ts.AvgNewFile, scanShare: ts.ScanShare,
			metaJSONs: ts.MetaJSONs, manifests: ts.Manifests, checkpoints: ts.Checkpoints,
			metaBytes: ts.MetaBytes, snapshots: ts.Snapshots, commits: ts.Commits,
			versionsSinceCkpt: ts.VersionsSinceCkpt,
			fleet:             f,
		}
		if len(ts.Props) > 0 {
			t.props = make(map[string]string, len(ts.Props))
			for k, v := range ts.Props {
				t.props[k] = v
			}
		}
		f.tables = append(f.tables, t)
		f.addDBFiles(t.db, t.counts[0]+t.counts[1]+t.counts[2])
	}
	f.refreshGauges()
	return f, nil
}

// Clock returns the fleet's clock.
func (f *Fleet) Clock() *sim.Clock { return f.clock }
