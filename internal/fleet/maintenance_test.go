package fleet

import (
	"testing"

	"autocomp/internal/core"
	"autocomp/internal/maintenance"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func TestMetadataAccretesWithWrites(t *testing.T) {
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.InitialTables = 20
	f := New(cfg, clock)

	before := f.TotalMetadataObjects()
	if before == 0 {
		t.Fatal("onboarded tables carry no metadata history")
	}
	for d := 0; d < 10; d++ {
		f.AdvanceDay()
	}
	after := f.TotalMetadataObjects()
	if after <= before {
		t.Fatalf("metadata objects %d -> %d after 10 days of writes", before, after)
	}
	if f.TotalObjects() != f.TotalFiles()+after {
		t.Fatal("TotalObjects != files + metadata")
	}
}

func TestFleetTableMaintenanceActions(t *testing.T) {
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.InitialTables = 5
	f := New(cfg, clock)
	for d := 0; d < 30; d++ {
		f.AdvanceDay()
	}
	tbl := f.Tables()[0]

	ms := tbl.MetadataStats()
	if ms.Objects == 0 || ms.Snapshots == 0 || ms.Bytes == 0 {
		t.Fatalf("stats = %+v", ms)
	}

	est := tbl.ExpireEstimate(5)
	n, err := tbl.ExpireSnapshots(5)
	if err != nil {
		t.Fatal(err)
	}
	if n != est || n <= 0 {
		t.Fatalf("expire deleted %d, estimate %d", n, est)
	}
	if tbl.MetadataStats().Snapshots != 5 {
		t.Fatalf("snapshots after expire = %d", tbl.MetadataStats().Snapshots)
	}

	res, err := tbl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.Reduction() <= 0 {
		t.Fatalf("checkpoint = %+v", res)
	}
	after := tbl.MetadataStats()
	if after.Objects != 2 || after.Checkpoints != 1 || after.VersionsSinceCheckpoint != 0 {
		t.Fatalf("after checkpoint: %+v", after)
	}

	// Re-checkpoint with no new commits: nothing to do.
	res, err = tbl.Checkpoint()
	if err != nil || !res.Skipped {
		t.Fatalf("second checkpoint = %+v, %v", res, err)
	}
}

func TestMaintenanceServiceHoldsMetadataSteady(t *testing.T) {
	newAged := func() *Fleet {
		cfg := DefaultConfig()
		cfg.InitialTables = 60
		return New(cfg, sim.NewClock())
	}
	run := func(f *Fleet, unified bool) int64 {
		model := DefaultModel(512 * storage.MB)
		sel := core.BudgetSelector{BudgetGBHr: 226 * 1024}
		var svc *core.Service
		var err error
		if unified {
			svc, err = f.MaintenanceService(sel, model, maintenance.Policy{
				RetainSnapshots: 20, CheckpointEveryVersions: 50, MinManifestSurplus: 8,
			})
		} else {
			svc, err = f.Service(sel, model)
		}
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 40; d++ {
			f.AdvanceDay()
			if _, err := svc.RunOnce(); err != nil {
				t.Fatal(err)
			}
		}
		return f.TotalMetadataObjects()
	}
	dataOnly := run(newAged(), false)
	unified := run(newAged(), true)
	if unified >= dataOnly {
		t.Fatalf("unified metadata %d >= data-only %d", unified, dataOnly)
	}
}
