package fleet

import (
	"reflect"
	"testing"

	"autocomp/internal/core"
	"autocomp/internal/maintenance"
	"autocomp/internal/scheduler"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func schedFleet(seed int64) *Fleet {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.InitialTables = 300
	f := New(cfg, sim.NewClock())
	for d := 0; d < 3; d++ {
		f.AdvanceDay()
	}
	return f
}

func runSchedCycle(t *testing.T, seed int64, opts SchedOptions) (*core.Report, scheduler.Stats) {
	t.Helper()
	f := schedFleet(seed)
	svc, err := f.ScheduledService(
		core.TopK{K: 40}, DefaultModel(512*storage.MB), maintenance.DefaultPolicy(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, stats, err := svc.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	return rep, stats
}

func TestScheduledCycleExecutesPlan(t *testing.T) {
	rep, stats := runSchedCycle(t, 1, SchedOptions{Workers: 4, Shards: 2})
	if stats.Submitted == 0 || stats.Done == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(rep.Results) != stats.Submitted {
		t.Fatalf("report results = %d, submitted = %d", len(rep.Results), stats.Submitted)
	}
	if rep.FilesReduced <= 0 {
		t.Fatalf("files reduced = %d", rep.FilesReduced)
	}
	if stats.MaxWorkersBusy > 4 {
		t.Fatalf("workers busy = %d > 4", stats.MaxWorkersBusy)
	}
}

func TestScheduledMakespanShrinksWithWorkers(t *testing.T) {
	// Same seed ⇒ identical fleet and identical ranked plan; only the
	// worker count differs. The seed is chosen so the top-40 plan is not
	// dominated by one makespan-setting giant job.
	_, s1 := runSchedCycle(t, 7, SchedOptions{Workers: 1, Shards: 1})
	_, s8 := runSchedCycle(t, 7, SchedOptions{Workers: 8, Shards: 1})
	if s1.Submitted != s8.Submitted {
		t.Fatalf("plans differ: %d vs %d jobs", s1.Submitted, s8.Submitted)
	}
	if s8.Makespan >= s1.Makespan {
		t.Fatalf("8-worker makespan %v not below 1-worker %v", s8.Makespan, s1.Makespan)
	}
	if ratio := float64(s1.Makespan) / float64(s8.Makespan); ratio < 2 {
		t.Fatalf("speedup only %.2fx", ratio)
	}
}

func TestScheduledCycleDeterministic(t *testing.T) {
	opts := SchedOptions{Workers: 8, Shards: 4, WriterCommitsPerHour: 60}
	rep1, s1 := runSchedCycle(t, 7, opts)
	rep2, s2 := runSchedCycle(t, 7, opts)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats differ:\n%+v\n%+v", s1, s2)
	}
	if rep1.FilesReduced != rep2.FilesReduced || rep1.ActualGBHr != rep2.ActualGBHr ||
		rep1.Conflicts != rep2.Conflicts || len(rep1.Results) != len(rep2.Results) {
		t.Fatalf("reports differ: %+v vs %+v", rep1, rep2)
	}
	for i := range rep1.Results {
		a, b := rep1.Results[i], rep2.Results[i]
		if a.Candidate.ID() != b.Candidate.ID() || a.Result != b.Result {
			t.Fatalf("result %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestScheduledWritersCauseConflictRetries(t *testing.T) {
	_, quiet := runSchedCycle(t, 3, SchedOptions{Workers: 8, Shards: 4})
	if quiet.Conflicts != 0 {
		t.Fatalf("quiet lake saw %d conflicts", quiet.Conflicts)
	}
	_, busy := runSchedCycle(t, 3, SchedOptions{Workers: 8, Shards: 4, WriterCommitsPerHour: 240})
	if busy.Conflicts == 0 {
		t.Fatal("racing writers produced no commit conflicts")
	}
	// Retries recover most conflicts: some jobs still finish.
	if busy.Done == 0 {
		t.Fatalf("no jobs completed under writer pressure: %+v", busy)
	}
}

func TestScheduledShardBackpressure(t *testing.T) {
	_, stats := runSchedCycle(t, 1, SchedOptions{Workers: 8, Shards: 2, ShardBudgetGBHr: 50})
	if stats.Deferred == 0 {
		t.Fatalf("tight shard budget deferred nothing: %+v", stats)
	}
	for shard, spent := range stats.SpentGBHr {
		// A shard may overshoot by at most one in-flight job; it must
		// never admit new work once exhausted. With ≤8 workers the
		// overshoot is bounded by workers × max job cost; just check
		// spend is recorded per shard.
		if spent < 0 {
			t.Fatalf("shard %d spend negative: %v", shard, spent)
		}
	}
}

func TestScheduledDispatchesMetadataActions(t *testing.T) {
	rep, _ := runSchedCycle(t, 2, SchedOptions{Workers: 8, Shards: 2})
	counts := rep.ActionCounts()
	metadata := counts[core.ActionSnapshotExpiry] + counts[core.ActionMetadataCheckpoint] +
		counts[core.ActionManifestRewrite]
	if counts[core.ActionDataCompaction] == 0 || metadata == 0 {
		t.Fatalf("action mix = %v; want data and metadata actions through the scheduler", counts)
	}
}

func TestScheduledCycleNeedsRunner(t *testing.T) {
	f := schedFleet(1)
	decideOnly, err := core.NewService(core.Config{
		Connector: Connector{Fleet: f},
		Generator: core.TableScopeGenerator{},
		Observer:  Observer{Fleet: f},
		Traits:    []core.Trait{core.FileCountReduction{}},
		Ranker:    core.ThresholdPolicy{Trait: core.FileCountReduction{}, Threshold: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := f.ScheduleService(decideOnly, DefaultModel(512*storage.MB), DefaultSchedOptions())
	if _, _, err := sched.RunCycle(); err == nil {
		t.Fatal("RunCycle on a decide-only service did not error")
	}
}

func TestTableProps(t *testing.T) {
	f := schedFleet(1)
	tb := f.Tables()[0]
	if got := tb.Prop("partitioned"); got != "true" && got != "false" {
		t.Fatalf("partitioned prop = %q", got)
	}
	if tb.Prop("partitions") == "" || tb.Prop("scan_share") == "" {
		t.Fatal("derived props empty")
	}
	if tb.Prop("nope") != "" {
		t.Fatal("unknown prop not empty")
	}
	tb.SetProp("intermediate", "true")
	if tb.Prop("intermediate") != "true" {
		t.Fatal("SetProp did not stick")
	}
	// The §4.1 NotIntermediate filter is now live against fleet tables.
	keep := core.NotIntermediate{}
	if keep.Keep(&core.Candidate{Table: tb}) {
		t.Fatal("NotIntermediate kept a tagged intermediate table")
	}
	if !keep.Keep(&core.Candidate{Table: f.Tables()[1]}) {
		t.Fatal("NotIntermediate dropped an untagged table")
	}
}

func TestWriterCommitAdvancesVersion(t *testing.T) {
	f := schedFleet(1)
	tb := f.Tables()[0]
	v0, files0 := tb.Version(), tb.FileCount()
	tb.WriterCommit(10)
	if tb.Version() != v0+1 {
		t.Fatalf("version %d -> %d, want +1", v0, tb.Version())
	}
	if tb.FileCount() != files0+10 {
		t.Fatalf("file count %d -> %d, want +10", files0, tb.FileCount())
	}
	tb.WriterCommit(-5)
	if tb.FileCount() != files0+10 {
		t.Fatal("negative writer commit added files")
	}
}
