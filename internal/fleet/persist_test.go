package fleet

import (
	"encoding/json"
	"reflect"
	"testing"

	"autocomp/internal/sim"
)

// TestPersistFleetRoundTrip snapshots a fleet mid-run, restores it into
// a fresh process image (new clock, new RNG streams), and requires the
// remaining days — organic writes, drift, onboarding, scans, writer
// commits — to unfold byte-identically to the uninterrupted original.
func TestPersistFleetRoundTrip(t *testing.T) {
	cfg := Config{
		Seed:                42,
		InitialTables:       120,
		Databases:           6,
		QuotaObjectsPerDB:   500_000,
		TablesPerMonth:      60,
		InitialTinyFraction: 0.8,
		DailyDriftProb:      0.01,
		DailyWriteProb:      0.5,
	}
	run := func(days int) *Fleet {
		f := New(cfg, sim.NewClock())
		for d := 0; d < days; d++ {
			f.AdvanceDay()
			f.RunDailyScans()
			f.Tables()[d%len(f.Tables())].WriterCommit(5)
		}
		return f
	}

	const split, total = 7, 14
	orig := run(total)

	// Snapshot at the split, round-trip through JSON (the tenant's
	// persistence format), restore, then run the remaining days.
	mid := run(split)
	data, err := json.Marshal(mid.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&st, sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Day() != split {
		t.Fatalf("restored day = %d, want %d", restored.Day(), split)
	}
	for d := split; d < total; d++ {
		restored.AdvanceDay()
		restored.RunDailyScans()
		restored.Tables()[d%len(restored.Tables())].WriterCommit(5)
	}

	want, got := orig.Snapshot(), restored.Snapshot()
	if !reflect.DeepEqual(want, got) {
		if want.RNG != got.RNG {
			t.Errorf("RNG positions diverged: want %+v got %+v", want.RNG, got.RNG)
		}
		for i := range want.Tables {
			if i < len(got.Tables) && !reflect.DeepEqual(want.Tables[i], got.Tables[i]) {
				t.Fatalf("table %d diverged\nwant: %+v\ngot:  %+v", i, want.Tables[i], got.Tables[i])
			}
		}
		t.Fatalf("restored fleet diverged\nwant: %+v\ngot:  %+v",
			struct {
				Day       int
				Onboarded int
				Open      int64
				MetaOpen  int64
			}{want.Day, want.Onboarded, want.OpenCalls, want.MetaOpenCalls},
			struct {
				Day       int
				Onboarded int
				Open      int64
				MetaOpen  int64
			}{got.Day, got.Onboarded, got.OpenCalls, got.MetaOpenCalls})
	}
}
