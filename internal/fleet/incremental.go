package fleet

import (
	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/maintenance"
)

// IncrOptions parameterizes the incremental observation plane over a
// fleet.
type IncrOptions struct {
	// Trigger is the per-table trigger policy (zero value = every
	// commit, which preserves full-scan decision parity).
	Trigger changefeed.TriggerPolicy
	// Triggers, when set, resolves the trigger policy per table (e.g.
	// the policy plane's layered source) and takes precedence over
	// Trigger.
	Triggers changefeed.PolicyFunc
	// ReconcileEvery runs a reconciling full scan every Nth cycle to
	// catch missed events (0 = cold-start full scan only).
	ReconcileEvery int
	// DecideShards partitions the feed's retained pool and lock stripes
	// to match a sharded decide plane's shard count (values <= 1 build a
	// single-partition feed). The wired generator then serves each decide
	// shard from its own partition with no cross-shard contention.
	DecideShards int
}

// IncrementalConfig wires a fresh changefeed into cfg: the connector
// serves the dirty set, the generator retains clean tables' candidates,
// and the observer answers from the version-keyed cache. It attaches
// the feed's bus to the fleet; any fleet-built core.Config (data-only,
// unified, custom weights) can be incrementalized this way.
func (f *Fleet) IncrementalConfig(cfg core.Config, opts IncrOptions) (core.Config, *changefeed.Feed) {
	triggers := opts.Triggers
	if triggers == nil {
		triggers = changefeed.StaticTriggers(opts.Trigger)
	}
	feed := changefeed.NewFeedSharded(triggers, opts.ReconcileEvery, opts.DecideShards)
	f.AttachChangefeed(feed.Bus)
	cfg.Connector = feed.Connector(cfg.Connector)
	cfg.Generator = feed.Generator(cfg.Generator)
	cfg.Observer = feed.Observer(cfg.Observer, f.statsRefresher())
	// Terminal conflicts leave the table unmaintained without a state
	// change, so no commit event re-dirties it; reconsider it next
	// cycle anyway. (Successful maintenance publishes its own event.)
	// Feedback runs on every driver — the serial act phase and the
	// scheduled execution plane both fold their results into a report —
	// so this is the single conflict-redirty mechanism.
	cfg.OnReport = append(cfg.OnReport, func(rep *core.Report) {
		for _, cr := range rep.Results {
			if cr.Result.Conflict {
				feed.Tracker.Redirty(cr.Candidate.Table.FullName())
			}
		}
	})
	return cfg, feed
}

// statsRefresher mirrors the clock- and quota-dependent fields the
// fleet's observers set, so a cache hit is byte-identical to a fresh
// observation: fleet.Observer derives TableAge/SinceLastWrite from the
// clock and QuotaUtilization from the tenant's (shared, mutable) quota;
// maintenance.Observer sets the ages but never the quota.
func (f *Fleet) statsRefresher() func(*core.Candidate, *core.Stats) {
	return func(c *core.Candidate, s *core.Stats) {
		now := f.clock.Now()
		s.TableAge = now - c.Table.Created()
		s.SinceLastWrite = now - c.Table.LastWrite()
		if c.Action == core.ActionDataCompaction {
			s.QuotaUtilization = f.QuotaUtilization(c.Table.Database())
		}
	}
}

// IncrementalService builds the data-compaction pipeline of Service
// with the incremental observation plane attached: candidate discovery
// is driven by the fleet's commit events instead of full-fleet scans.
func (f *Fleet) IncrementalService(selector core.Selector, model CompactionModel, opts IncrOptions) (*core.Service, *changefeed.Feed, error) {
	cfg, feed := f.IncrementalConfig(f.ServiceConfig(selector, model), opts)
	svc, err := core.NewService(cfg)
	if err != nil {
		return nil, nil, err
	}
	return svc, feed, nil
}

// IncrementalMaintenanceService builds the unified maintenance pipeline
// of MaintenanceService with the incremental observation plane
// attached. With an every-commit trigger the selected plans are
// byte-identical to MaintenanceService's per seed, while only dirty
// tables are re-observed (see the changefeed package doc for the parity
// conditions).
func (f *Fleet) IncrementalMaintenanceService(selector core.Selector, model CompactionModel, pol maintenance.Policy, opts IncrOptions) (*core.Service, *changefeed.Feed, error) {
	cfg, feed := f.IncrementalConfig(f.MaintenanceConfig(selector, model, pol), opts)
	svc, err := core.NewService(cfg)
	if err != nil {
		return nil, nil, err
	}
	return svc, feed, nil
}
