package fleet

import (
	"fmt"
	"time"

	"autocomp/internal/compaction"
	"autocomp/internal/core"
	"autocomp/internal/maintenance"
	"autocomp/internal/storage"
)

// Connector adapts a Fleet to core.Connector.
type Connector struct{ Fleet *Fleet }

// Tables implements core.Connector.
func (c Connector) Tables() []core.Table {
	ts := c.Fleet.Tables()
	out := make([]core.Table, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}

// QuotaUtilization implements core.Connector.
func (c Connector) QuotaUtilization(db string) float64 {
	return c.Fleet.QuotaUtilization(db)
}

// Now implements core.Connector.
func (c Connector) Now() time.Duration { return c.Fleet.clock.Now() }

// Observer derives the standard observe-phase stats from the aggregate
// table model (a metadata-warehouse-style observer: no file listings).
type Observer struct{ Fleet *Fleet }

// Observe implements core.Observer.
func (o Observer) Observe(c *core.Candidate) (core.Stats, error) {
	t, ok := c.Table.(*Table)
	if !ok {
		return core.Stats{}, fmt.Errorf("fleet: observer requires *fleet.Table, got %T", c.Table)
	}
	now := o.Fleet.clock.Now()
	return core.Stats{
		FileCount:        t.FileCount(),
		TotalBytes:       t.TotalBytes(),
		SmallFiles:       int(t.SmallFiles()),
		SmallBytes:       t.SmallBytes(),
		DeltaFiles:       0,
		TableAge:         now - t.created,
		SinceLastWrite:   now - t.lastWrite,
		WriteCount:       t.writes,
		QuotaUtilization: o.Fleet.QuotaUtilization(t.db),
		// Custom usage metrics (§4.1/§8): the fleet knows how often the
		// daily scan workload reads each table.
		Custom: map[string]float64{"read_rate": t.scanShare},
	}, nil
}

// CompactionModel parameterizes the analytic rewrite model.
type CompactionModel struct {
	// TargetFileSize of outputs.
	TargetFileSize int64
	// RewriteBytesPerHour is fleet compaction throughput.
	RewriteBytesPerHour float64
	// ExecutorMemoryGB prices GBHr.
	ExecutorMemoryGB float64
	// OverheadFactor inflates actual cost over the §4.2 estimate
	// (the paper observed ~19% underestimation, §7).
	OverheadFactor float64
}

// DefaultModel matches the trait estimator's parameters plus the
// production overhead.
func DefaultModel(target int64) CompactionModel {
	return CompactionModel{
		TargetFileSize:      target,
		RewriteBytesPerHour: float64(3 * storage.TB),
		ExecutorMemoryGB:    64,
		OverheadFactor:      1.19,
	}
}

// Runner executes compactions against the aggregate model, implementing
// core.Runner for fleet tables.
type Runner struct {
	Fleet *Fleet
	Model CompactionModel
}

// Run implements core.Runner.
func (r Runner) Run(c *core.Candidate) compaction.Result {
	t, ok := c.Table.(*Table)
	if !ok {
		name := "<nil>"
		if c.Table != nil {
			name = c.Table.FullName()
		}
		return compaction.Result{
			Table: name,
			Err:   fmt.Errorf("fleet: runner requires *fleet.Table, got %T", c.Table),
		}
	}
	return r.CompactTable(t)
}

// CompactTable merges a table's small files within partition boundaries
// (analytically): with s small files over p partitions, the mergeable
// fraction is 1 − p/s when files outnumber partitions (lone files per
// partition cannot merge, §7), and outputs are smallBytes/target-sized.
func (r Runner) CompactTable(t *Table) compaction.Result {
	res := compaction.Result{Table: t.FullName(), Scope: compaction.TableScope}
	small := t.SmallFiles()
	smallBytes := t.SmallBytes()
	if small < 2 || smallBytes == 0 {
		res.Skipped = true
		return res
	}

	mergeFrac := 1.0
	if t.partitioned && t.partitions > 0 {
		spread := float64(small) / float64(t.partitions)
		if spread <= 1 {
			mergeFrac = 0
		} else {
			mergeFrac = 1 - 1/spread
		}
	}
	mergeable := int64(float64(small) * mergeFrac)
	if mergeable < 2 {
		res.Skipped = true
		return res
	}
	mergeBytes := int64(float64(smallBytes) * float64(mergeable) / float64(small))
	target := r.Model.TargetFileSize
	outFiles := (mergeBytes + target - 1) / target
	if outFiles < 1 {
		outFiles = 1
	}
	if outFiles >= mergeable {
		res.Skipped = true
		return res
	}

	// Apply: drain the two small buckets proportionally, credit the
	// full bucket.
	drainFrac := float64(mergeable) / float64(small)
	var drained int64
	for b := 0; b < 2; b++ {
		dc := int64(float64(t.counts[b]) * drainFrac)
		db := int64(float64(t.bytes[b]) * drainFrac)
		t.counts[b] -= dc
		t.bytes[b] -= db
		drained += dc
	}
	t.counts[BucketFull] += outFiles
	t.bytes[BucketFull] += mergeBytes
	t.fleet.addDBFiles(t.db, outFiles-drained)
	t.fleet.publish(t, 0, 0, true)

	res.FilesRemoved = int(mergeable)
	res.FilesAdded = int(outFiles)
	res.BytesRewritten = mergeBytes

	// Cost: the §4.2 estimate times the production overhead, with
	// deterministic jitter.
	estGBHr := r.Model.ExecutorMemoryGB * float64(smallBytes) / r.Model.RewriteBytesPerHour
	res.GBHr = estGBHr * r.Fleet.rngExec.Jitter(r.Model.OverheadFactor, 0.08)
	res.Duration = time.Duration(float64(mergeBytes) / r.Model.RewriteBytesPerHour * float64(time.Hour))
	return res
}

// CompactTables compacts an explicit table set (the manual strategy of
// §7: a fixed list of ~100 susceptible tables) and returns total files
// reduced and GBHr spent.
func (r Runner) CompactTables(tables []*Table) (filesReduced int64, gbhr float64) {
	for _, t := range tables {
		res := r.CompactTable(t)
		if res.Succeeded() {
			filesReduced += int64(res.Reduction())
		}
		gbhr += res.GBHr
	}
	return filesReduced, gbhr
}

// MostFragmented returns the k tables with the most small files right
// now — how the manual compaction list was chosen (§7).
func (f *Fleet) MostFragmented(k int) []*Table {
	sorted := make([]*Table, len(f.tables))
	copy(sorted, f.tables)
	// Insertion-style partial selection keeps determinism and is fast
	// enough for fleet sizes.
	for i := 0; i < len(sorted); i++ {
		max := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].SmallFiles() > sorted[max].SmallFiles() ||
				(sorted[j].SmallFiles() == sorted[max].SmallFiles() &&
					sorted[j].FullName() < sorted[max].FullName()) {
				max = j
			}
		}
		sorted[i], sorted[max] = sorted[max], sorted[i]
		if i >= k {
			break
		}
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// ServiceConfig returns the core configuration Service builds: table
// scope, ΔF + GBHr traits under quota-adaptive MOOP weights, and the
// given selector. Callers may wrap components (counting observers, the
// incremental observation plane) before constructing the service.
func (f *Fleet) ServiceConfig(selector core.Selector, model CompactionModel) core.Config {
	cost := core.ComputeCost{
		ExecutorMemoryGB:    model.ExecutorMemoryGB,
		RewriteBytesPerHour: model.RewriteBytesPerHour,
	}
	return core.Config{
		Connector:    Connector{Fleet: f},
		Generator:    core.TableScopeGenerator{},
		Observer:     Observer{Fleet: f},
		StatsFilters: []core.Filter{core.MinSmallFiles{Min: 2}},
		Traits:       []core.Trait{core.FileCountReduction{}, cost},
		Ranker: core.MOOPRanker{
			Objectives: []core.Objective{
				{Trait: core.FileCountReduction{}},
				{Trait: cost},
			},
			DynamicWeights: core.QuotaAdaptiveWeights(),
		},
		Selector:  selector,
		Scheduler: core.SequentialScheduler{},
		Runner:    Runner{Fleet: f, Model: model},
	}
}

// Service builds a ready-to-run AutoComp service over the fleet with the
// production configuration of §7: table scope, ΔF + GBHr traits under
// quota-adaptive MOOP weights, and the given selector.
func (f *Fleet) Service(selector core.Selector, model CompactionModel) (*core.Service, error) {
	return core.NewService(f.ServiceConfig(selector, model))
}

// MaintenanceConfig returns the core configuration MaintenanceService
// builds. Callers may wrap components (counting observers, the
// incremental observation plane) before constructing the service.
func (f *Fleet) MaintenanceConfig(selector core.Selector, model CompactionModel, pol maintenance.Policy) core.Config {
	cost := core.ComputeCost{
		ExecutorMemoryGB:    model.ExecutorMemoryGB,
		RewriteBytesPerHour: model.RewriteBytesPerHour,
	}
	pols := maintenance.StaticPolicies{Policy: pol}
	return core.Config{
		Connector: Connector{Fleet: f},
		Generator: maintenance.Generator{Data: core.TableScopeGenerator{}, Policies: pols},
		Observer:  maintenance.Observer{Base: Observer{Fleet: f}, Policies: pols, Now: f.clock.Now},
		StatsFilters: []core.Filter{
			core.ForAction{Action: core.ActionDataCompaction, Inner: core.MinSmallFiles{Min: 2}},
			core.MinMetadataReduction{Min: 1},
		},
		Traits: []core.Trait{core.FileCountReduction{}, core.MetadataReduction{}, cost},
		Ranker: core.MOOPRanker{Objectives: []core.Objective{
			{Trait: core.FileCountReduction{}, Weight: 0.5},
			{Trait: core.MetadataReduction{}, Weight: 0.2},
			{Trait: cost, Weight: 0.3},
		}},
		Selector:  selector,
		Scheduler: core.SequentialScheduler{},
		Runner: maintenance.Runner{
			Data:                Runner{Fleet: f, Model: model},
			Policies:            pols,
			ExecutorMemoryGB:    model.ExecutorMemoryGB,
			RewriteBytesPerHour: model.RewriteBytesPerHour,
		},
	}
}

// MaintenanceService builds the unified maintenance pipeline over the
// fleet: data compaction, snapshot expiry, metadata checkpointing, and
// manifest rewriting as one candidate pool, ranked by a three-objective
// MOOP (ΔF, ΔM, GBHr) and selected under the same budget — no separate
// scheduler loop for metadata work.
func (f *Fleet) MaintenanceService(selector core.Selector, model CompactionModel, pol maintenance.Policy) (*core.Service, error) {
	return core.NewService(f.MaintenanceConfig(selector, model, pol))
}
