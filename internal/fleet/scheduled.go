package fleet

import (
	"fmt"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/maintenance"
	"autocomp/internal/scheduler"
	"autocomp/internal/sim"
)

// SchedOptions parameterizes the fleet's concurrent execution plane.
type SchedOptions struct {
	// Workers is the number of concurrent compaction job slots.
	Workers int
	// Shards is the number of GBHr budget shards tables hash onto.
	Shards int
	// ShardBudgetGBHr is each shard's per-cycle budget (0 = unlimited).
	// Exhausted shards backpressure their remaining jobs to next cycle.
	ShardBudgetGBHr float64
	// WriterCommitsPerHour is the fleet-wide rate of live writer commits
	// racing the compactor during the execution window (0 = quiet lake).
	WriterCommitsPerHour float64
	// StalenessBound is how many snapshot versions a table may advance
	// under a running job before its commit aborts and retries (0 = any
	// concurrent writer commit conflicts; <0 disables the check).
	StalenessBound int64
	// MaxAttempts bounds per-job retries (0 = scheduler default).
	MaxAttempts int
	// RetryBase and RetryMax bound the exponential backoff between
	// attempts (zero values take the scheduler defaults).
	RetryBase time.Duration
	RetryMax  time.Duration
	// AgingRatePerHour is the priority points a queued job gains per
	// hour of waiting (0 = scheduler default, negative disables).
	AgingRatePerHour float64
}

// DefaultSchedOptions mirrors a small dedicated compaction cluster: 8
// job slots over 4 budget shards.
func DefaultSchedOptions() SchedOptions {
	return SchedOptions{Workers: 8, Shards: 4}
}

// ScheduledService is a maintenance service with a concurrent execution
// plane replacing the serial act loop: each cycle's ranked plan feeds a
// priority queue drained by Workers job slots over Shards budget shards,
// with per-table leases and optimistic-concurrency commit (retry on
// writer conflict). All four maintenance action types dispatch through
// the same plane.
type ScheduledService struct {
	fleet *Fleet
	svc   *core.Service
	model CompactionModel
	opts  SchedOptions
}

// ScheduledService builds the unified maintenance pipeline of
// MaintenanceService wired to a scheduler-backed run loop instead of the
// serial act phase.
func (f *Fleet) ScheduledService(selector core.Selector, model CompactionModel, pol maintenance.Policy, opts SchedOptions) (*ScheduledService, error) {
	svc, err := f.MaintenanceService(selector, model, pol)
	if err != nil {
		return nil, err
	}
	return f.ScheduleService(svc, model, opts), nil
}

// ScheduleService attaches the execution plane to an already-built
// decision pipeline (e.g. a data-only Service).
func (f *Fleet) ScheduleService(svc *core.Service, model CompactionModel, opts SchedOptions) *ScheduledService {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	return &ScheduledService{fleet: f, svc: svc, model: model, opts: opts}
}

// Service returns the underlying decision pipeline.
func (s *ScheduledService) Service() *core.Service { return s.svc }

// RunCycle performs one OODA cycle with concurrent execution: Decide as
// usual, then drain the selected candidates through a worker pool on a
// discrete-event sub-simulation of the execution window. Live writers
// keep committing to hot tables during the window at the configured
// rate, so compaction jobs race them exactly as in §4.4. The cycle is
// deterministic given the fleet seed.
func (s *ScheduledService) RunCycle() (*core.Report, scheduler.Stats, error) {
	if s.svc.Runner() == nil {
		return nil, scheduler.Stats{}, fmt.Errorf("fleet: scheduled service needs a Runner to execute")
	}
	dec, err := s.svc.Decide()
	if err != nil {
		return nil, scheduler.Stats{}, err
	}

	// The execution window runs on a sub-clock so fleet time (which
	// AdvanceDay owns) does not double-advance.
	sub := sim.NewClock()
	sub.Set(s.fleet.clock.Now())
	q := sim.NewEventQueue(sub)
	// Incremental-mode bookkeeping (conflict re-dirty, maintenance
	// events) flows through the changefeed and the service's OnReport
	// hooks, which s.svc.Feedback runs below — the pool needs no
	// per-job observer here.
	pool := scheduler.New(scheduler.Config{
		Workers:          s.opts.Workers,
		Shards:           s.opts.Shards,
		ShardBudgetGBHr:  s.opts.ShardBudgetGBHr,
		StalenessBound:   s.opts.StalenessBound,
		MaxAttempts:      s.opts.MaxAttempts,
		RetryBase:        s.opts.RetryBase,
		RetryMax:         s.opts.RetryMax,
		AgingRatePerHour: s.opts.AgingRatePerHour,
		ServiceTime:      scheduler.EstimatedServiceTime(s.model.ExecutorMemoryGB),
		Seed:             s.fleet.rngExec.Int63(),
	}, s.svc.Runner(), sub)
	pool.Submit(dec.Selected)

	if s.opts.WriterCommitsPerHour > 0 && len(dec.Selected) > 0 {
		s.scheduleWriters(q, pool, dec.Selected)
	}

	stats := scheduler.RunSim(pool, q)
	rep := &core.Report{Decision: dec}
	pool.FoldInto(rep)
	s.svc.Feedback(rep)
	return rep, stats, nil
}

// scheduleWriters models the live write traffic racing the compactor:
// commits arrive at the configured fleet-wide rate and land mostly on
// the tables being compacted — precisely the high-churn tables whose
// writers made them worth compacting (§4.1, §4.4).
func (s *ScheduledService) scheduleWriters(q *sim.EventQueue, pool *scheduler.Pool, selected []*core.Candidate) {
	wrng := s.fleet.rngExec.Fork()
	hot := make([]*Table, 0, len(selected))
	seen := make(map[string]bool, len(selected))
	for _, c := range selected {
		if t, ok := c.Table.(*Table); ok && !seen[t.FullName()] {
			seen[t.FullName()] = true
			hot = append(hot, t)
		}
	}
	if len(hot) == 0 {
		return
	}
	interval := time.Duration(float64(time.Hour) / s.opts.WriterCommitsPerHour)
	var tick func()
	tick = func() {
		var t *Table
		if wrng.Bernoulli(0.7) || len(s.fleet.tables) == 0 {
			t = hot[wrng.Intn(len(hot))]
		} else {
			t = s.fleet.tables[wrng.Intn(len(s.fleet.tables))]
		}
		t.WriterCommit(int64(wrng.IntBetween(1, 20)))
		if !pool.Idle() {
			q.ScheduleAfter(time.Duration(wrng.Jitter(float64(interval), 0.3)), tick)
		}
	}
	q.ScheduleAfter(time.Duration(wrng.Jitter(float64(interval), 0.3)), tick)
}
