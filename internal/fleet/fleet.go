// Package fleet simulates a production lake fleet at LinkedIn scale (§2,
// §7): tens of thousands of OpenHouse-managed tables with heavy-tailed
// sizes, tenant quotas, daily small-file growth, monthly onboarding, and
// a scan-heavy daily workload whose cost tracks file counts.
//
// Tables are modeled in aggregate — per-size-bucket file counts and bytes
// rather than per-file records — so fleets with hundreds of millions of
// files simulate in milliseconds. Fleet tables implement core.Table and
// the package provides a core-compatible Observer and Runner, so the real
// AutoComp decision pipeline (MOOP ranking, quota-adaptive weights, top-k
// and budget selection) runs unmodified against the fleet (NFR3).
package fleet

import (
	"fmt"
	"time"

	"autocomp/internal/changefeed"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Size buckets: the paper's Figure 2 reports file-size distribution
// around the 128 MB block size and 512 MB target.
const (
	BucketTiny  = 0 // < 128 MB
	BucketSmall = 1 // [128 MB, 512 MB)
	BucketFull  = 2 // >= 512 MB
)

// BucketBounds returns the bucket boundaries ([128 MB, 512 MB]).
func BucketBounds() []int64 { return []int64{128 * storage.MB, 512 * storage.MB} }

// Table is one production table in aggregate form.
type Table struct {
	db, name    string
	partitioned bool
	partitions  int

	counts [3]int64
	bytes  [3]int64

	created   time.Duration
	lastWrite time.Duration
	writes    int64

	// growthPerDay is the expected number of new small files per day.
	growthPerDay float64
	// avgNewFile is the mean size of newly written small files.
	avgNewFile int64
	// scanShare is the probability the daily scan workload reads this
	// table.
	scanShare float64

	// Metadata layer in aggregate (§2, cause iv): every commit writes a
	// metadata.json version and a manifest, so the metadata log grows
	// with commit count until a maintenance action trims it.
	metaJSONs   int64
	manifests   int64
	checkpoints int64
	metaBytes   int64
	// snapshots is the retained snapshot-history length; commits counts
	// total commits (the table version); versionsSinceCkpt counts
	// commits since the last checkpoint.
	snapshots         int64
	commits           int64
	versionsSinceCkpt int64

	// props carries free-form table properties (policy tags like
	// "intermediate"); see Prop.
	props map[string]string

	fleet *Fleet
}

// Database implements core.Table.
func (t *Table) Database() string { return t.db }

// Name implements core.Table.
func (t *Table) Name() string { return t.name }

// FullName implements core.Table.
func (t *Table) FullName() string { return t.db + "." + t.name }

// Spec implements core.Table.
func (t *Table) Spec() lst.PartitionSpec {
	if t.partitioned {
		return lst.PartitionSpec{Column: "ds", Transform: lst.TransformDay}
	}
	return lst.PartitionSpec{}
}

// Mode implements core.Table.
func (t *Table) Mode() lst.WriteMode { return lst.CopyOnWrite }

// Prop implements core.Table: explicitly set policy properties first
// (SetProp), then the built-in properties derived from the aggregate
// model — "partitioned" ("true"/"false"), "partitions", and "scan_share"
// — so core's property-driven filters (e.g. NotIntermediate) are live
// against the fleet substrate, not dead code.
func (t *Table) Prop(key string) string {
	if v, ok := t.props[key]; ok {
		return v
	}
	switch key {
	case "partitioned":
		if t.partitioned {
			return "true"
		}
		return "false"
	case "partitions":
		return fmt.Sprintf("%d", t.partitions)
	case "scan_share":
		return fmt.Sprintf("%.3f", t.scanShare)
	}
	return ""
}

// SetProp tags the table with a policy property (e.g. "intermediate" =
// "true" to exclude scratch tables from maintenance, §4.1).
func (t *Table) SetProp(key, value string) {
	if t.props == nil {
		t.props = make(map[string]string)
	}
	t.props[key] = value
}

// Version returns the table's snapshot/commit version. It implements
// scheduler.Versioned: the execution plane records it at job start and
// re-reads it at commit time to detect writer races.
func (t *Table) Version() int64 { return t.commits }

// WriterCommit applies one live writer commit of n small files at
// sub-day granularity — the writer side of the §4.4 writer-vs-compactor
// race. It advances the snapshot version, so compaction jobs in flight on
// this table will fail their optimistic commit check and retry. The
// commit publishes an event on the fleet's changefeed when one is
// attached.
func (t *Table) WriterCommit(n int64) {
	if n < 0 {
		n = 0
	}
	t.counts[BucketTiny] += n
	t.bytes[BucketTiny] += n * t.avgNewFile
	t.fleet.addDBFiles(t.db, n)
	t.lastWrite = t.fleet.clock.Now()
	t.writes++
	t.commitMetadata(1)
	mWriterCommits.Inc()
	t.fleet.publish(t, 1, n*t.avgNewFile, false)
}

// Created implements core.Table.
func (t *Table) Created() time.Duration { return t.created }

// LastWrite implements core.Table.
func (t *Table) LastWrite() time.Duration { return t.lastWrite }

// WriteCount implements core.Table.
func (t *Table) WriteCount() int64 { return t.writes }

// FileCount implements core.Table.
func (t *Table) FileCount() int { return int(t.counts[0] + t.counts[1] + t.counts[2]) }

// TotalBytes implements core.Table.
func (t *Table) TotalBytes() int64 { return t.bytes[0] + t.bytes[1] + t.bytes[2] }

// Partitions implements core.Table; fleet tables do not enumerate
// partitions (aggregate model) — AutoComp runs table-scoped here, as the
// production deployment did (§7).
func (t *Table) Partitions() []string { return nil }

// LiveFiles implements core.Table; per-file listings are not materialized
// in the aggregate model. Use Observer for statistics.
func (t *Table) LiveFiles() []lst.DataFile { return nil }

// FilesInPartition implements core.Table.
func (t *Table) FilesInPartition(string) []lst.DataFile { return nil }

// SmallFiles returns files below the target (the two lower buckets).
func (t *Table) SmallFiles() int64 { return t.counts[0] + t.counts[1] }

// SmallBytes returns bytes in files below the target.
func (t *Table) SmallBytes() int64 { return t.bytes[0] + t.bytes[1] }

// Modeled average metadata object sizes: lst's writers at typical
// snapshot and manifest-entry counts (exact sizes come from the shared
// lst size model where state is known).
const (
	avgMetadataJSONBytes = 6 * storage.KB
	avgManifestBytes     = 9 * storage.KB
)

// commitMetadata accretes the metadata of n commits: one metadata.json
// version and one manifest each.
func (t *Table) commitMetadata(n int64) {
	t.metaJSONs += n
	t.manifests += n
	t.metaBytes += n * (avgMetadataJSONBytes + avgManifestBytes)
	t.snapshots += n
	t.commits += n
	t.versionsSinceCkpt += n
}

// MetadataObjects returns the table's current metadata-object count.
func (t *Table) MetadataObjects() int64 { return t.metaJSONs + t.manifests + t.checkpoints }

func (t *Table) avgMetaObjectBytes() int64 {
	objects := t.MetadataObjects()
	if objects == 0 {
		return 0
	}
	return t.metaBytes / objects
}

// MetadataStats implements maintenance.MetadataTable on the aggregate
// model.
func (t *Table) MetadataStats() lst.MetadataStats {
	consolidated := lst.ConsolidatedManifestCount(t.FileCount(), lst.DefaultManifestEntriesPerFile)
	last := int64(-1)
	if t.checkpoints > 0 {
		last = t.commits - t.versionsSinceCkpt
	}
	orphans := int(t.metaJSONs - 1)
	if orphans < 0 {
		orphans = 0
	}
	return lst.MetadataStats{
		Objects:                 int(t.MetadataObjects()),
		Bytes:                   t.metaBytes,
		MetadataJSONs:           int(t.metaJSONs),
		Manifests:               int(t.manifests),
		Checkpoints:             int(t.checkpoints),
		Snapshots:               int(t.snapshots),
		LastCheckpointVersion:   last,
		VersionsSinceCheckpoint: t.versionsSinceCkpt,
		OrphanObjects:           orphans,
		ConsolidatedManifests:   consolidated,
	}
}

// ExpireEstimate implements maintenance.MetadataTable: history objects
// are spread roughly uniformly over snapshots, so expiring a fraction of
// the history reclaims that fraction of manifests and old metadata.jsons.
func (t *Table) ExpireEstimate(keepLast int) int {
	if keepLast < 1 {
		keepLast = 1
	}
	dropped := t.snapshots - int64(keepLast)
	if dropped <= 0 || t.snapshots == 0 {
		return 0
	}
	frac := float64(dropped) / float64(t.snapshots)
	return int(float64(t.manifests)*frac + float64(t.metaJSONs-1)*frac)
}

// ExpireSnapshots implements maintenance.Maintainer on the aggregate
// model: it trims the history to keepLast snapshots and reclaims the
// proportional share of manifests and old metadata.json versions.
func (t *Table) ExpireSnapshots(keepLast int) (int, error) {
	if keepLast < 1 {
		keepLast = 1
	}
	dropped := t.snapshots - int64(keepLast)
	if dropped <= 0 || t.snapshots == 0 {
		return 0, nil
	}
	frac := float64(dropped) / float64(t.snapshots)
	removedM := int64(float64(t.manifests) * frac)
	removedJ := int64(float64(t.metaJSONs-1) * frac)
	avg := t.avgMetaObjectBytes()
	t.manifests -= removedM
	t.metaJSONs -= removedJ
	t.metaBytes -= avg * (removedM + removedJ)
	if t.metaBytes < 0 {
		t.metaBytes = 0
	}
	t.snapshots = int64(keepLast)
	t.fleet.publish(t, 0, 0, true)
	return int(removedM + removedJ), nil
}

// Checkpoint implements maintenance.Maintainer: the metadata log
// collapses to the current metadata.json plus one checkpoint object
// embedding the live file listing and retained history.
func (t *Table) Checkpoint() (lst.MaintenanceResult, error) {
	var res lst.MaintenanceResult
	objects := t.MetadataObjects()
	reclaimable := objects - 1 // all but the current metadata.json
	if t.checkpoints > 0 && t.versionsSinceCkpt == 0 {
		reclaimable -= t.checkpoints // checkpoint already current
	}
	if reclaimable <= 0 {
		res.Skipped = true
		return res, nil
	}
	ckptBytes := lst.CheckpointSizeBytes(int(t.snapshots), t.FileCount())
	res.ObjectsRemoved = int(objects - 1)
	res.ObjectsAdded = 1
	res.BytesReclaimed = t.metaBytes - avgMetadataJSONBytes
	if res.BytesReclaimed < 0 {
		res.BytesReclaimed = 0
	}
	res.BytesWritten = ckptBytes
	t.metaJSONs = 1
	t.manifests = 0
	t.checkpoints = 1
	t.metaBytes = avgMetadataJSONBytes + ckptBytes
	t.versionsSinceCkpt = 0
	t.fleet.publish(t, 0, 0, true)
	return res, nil
}

// RewriteManifests implements maintenance.Maintainer: manifests repack to
// the live file entries at full density; the version history stays.
func (t *Table) RewriteManifests() (lst.MaintenanceResult, error) {
	var res lst.MaintenanceResult
	consolidated := int64(lst.ConsolidatedManifestCount(t.FileCount(), lst.DefaultManifestEntriesPerFile))
	if t.manifests <= consolidated {
		res.Skipped = true
		return res, nil
	}
	written := consolidated * lst.ManifestSizeBytes(lst.DefaultManifestEntriesPerFile)
	reclaimed := t.manifests * avgManifestBytes
	res.ObjectsRemoved = int(t.manifests)
	res.ObjectsAdded = int(consolidated)
	res.BytesReclaimed = reclaimed
	res.BytesWritten = written
	t.metaBytes += written - reclaimed
	if t.metaBytes < 0 {
		t.metaBytes = 0
	}
	t.manifests = consolidated
	t.fleet.publish(t, 0, 0, true)
	return res, nil
}

// Config parameterizes fleet construction.
type Config struct {
	Seed int64
	// InitialTables at simulation start.
	InitialTables int
	// Databases (tenants) the tables spread over; each gets a quota.
	Databases int
	// QuotaObjectsPerDB is each tenant's namespace quota.
	QuotaObjectsPerDB int64
	// TablesPerMonth onboarded as the deployment grows (§7, Fig 10c).
	TablesPerMonth int
	// TargetFileSize (512 MB in production).
	TargetFileSize int64
	// InitialTinyFraction is the count-fraction of files below 128 MB
	// at start (the paper reports 83%).
	InitialTinyFraction float64
	// DailyDriftProb is the per-table daily probability that a table's
	// write behaviour changes (§7: users modify their data, create new
	// tables, and adjust workflows daily, which is what makes manually
	// curated compaction lists go stale).
	DailyDriftProb float64
	// DailyWriteProb is the per-table probability of receiving writes on
	// a given day. Values outside (0, 1) — including the zero value —
	// mean every table writes every day (the original organic-growth
	// model). Sparse rates (e.g. 0.01) model fleets where most tables
	// are cold on any given day, the regime where incremental
	// observation pays off.
	DailyWriteProb float64
}

// DefaultConfig mirrors the paper's deployment shape, scaled to simulate
// quickly (the full 35K-table fleet also runs, just slower).
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		InitialTables:       2000,
		Databases:           50,
		QuotaObjectsPerDB:   4_000_000,
		TablesPerMonth:      150,
		TargetFileSize:      512 * storage.MB,
		InitialTinyFraction: 0.83,
		DailyDriftProb:      0.004,
	}
}

// Fleet is the whole simulated deployment.
//
// Randomness is split into independent per-component streams derived by
// sim.Child from the fleet seed: onboarding draws, daily write-pattern
// draws, scan-workload draws, and execution-side draws (compaction cost
// jitter, scheduler seeds, racing writers) each consume their own
// stream. The split is what keeps scenario traces stable under
// composition — running extra compactions or attaching a fault injector
// never perturbs the write-pattern draws of the days that follow.
type Fleet struct {
	cfg   Config
	clock *sim.Clock
	// rngTables draws table shapes at onboarding; rngWrites draws the
	// daily organic write pattern (drift, per-table volumes); rngScans
	// draws the daily scan workload; rngExec draws execution-side noise
	// (compaction cost jitter, scheduler pool seeds, racing writers).
	rngTables *sim.RNG
	rngWrites *sim.RNG
	rngScans  *sim.RNG
	rngExec   *sim.RNG
	tables    []*Table

	// dbFiles caches per-database data-file counts so quota utilization
	// is O(1) per lookup instead of a fleet scan — at 100k tables a
	// per-candidate fleet scan would make the observe phase quadratic.
	dbFiles map[string]int64

	// bus, when attached, receives one event per table commit batch —
	// the fleet side of the incremental observation plane.
	bus *changefeed.Bus

	// openCalls accumulates modeled HDFS open() RPCs on data files
	// (Fig 11b); metaOpenCalls counts the planning-time opens of
	// metadata objects separately so the metadata-maintenance
	// experiments can attribute NameNode pressure by cause.
	openCalls     int64
	metaOpenCalls int64
	day           int

	// onboarded counts every table ever onboarded and names the next
	// one. It must be monotonic — deriving names from len(tables) would
	// reuse a live table's name after a DropTable, and every name-keyed
	// structure downstream (changefeed tracker, stats cache, retained
	// pool, leases) would conflate the twins.
	onboarded int
}

// AttachChangefeed publishes the fleet's commits (writer commits, daily
// organic growth, onboarding, and maintenance actions) to bus.
func (f *Fleet) AttachChangefeed(bus *changefeed.Bus) { f.bus = bus }

// publish emits one commit event when a changefeed is attached.
func (f *Fleet) publish(t *Table, commits, bytes int64, maintenance bool) {
	if f.bus == nil {
		return
	}
	f.bus.Publish(changefeed.Event{
		Table:       t.FullName(),
		Ref:         t,
		Version:     t.commits,
		Commits:     commits,
		Bytes:       bytes,
		At:          f.clock.Now(),
		Maintenance: maintenance,
	})
}

// addDBFiles folds a data-file count delta into the per-database cache.
func (f *Fleet) addDBFiles(db string, delta int64) {
	f.dbFiles[db] += delta
}

// New builds a fleet at day 0.
func New(cfg Config, clock *sim.Clock) *Fleet {
	if cfg.InitialTables <= 0 {
		cfg.InitialTables = 100
	}
	if cfg.Databases <= 0 {
		cfg.Databases = 10
	}
	if cfg.TargetFileSize <= 0 {
		cfg.TargetFileSize = 512 * storage.MB
	}
	if cfg.InitialTinyFraction <= 0 {
		cfg.InitialTinyFraction = 0.83
	}
	f := &Fleet{
		cfg:       cfg,
		clock:     clock,
		rngTables: sim.Child(cfg.Seed, "fleet/tables"),
		rngWrites: sim.Child(cfg.Seed, "fleet/writes"),
		rngScans:  sim.Child(cfg.Seed, "fleet/scans"),
		rngExec:   sim.Child(cfg.Seed, "fleet/exec"),
		dbFiles:   make(map[string]int64),
	}
	for i := 0; i < cfg.InitialTables; i++ {
		f.onboard()
	}
	return f
}

// onboard creates one table with a heavy-tailed file count and the
// configured small-file skew.
func (f *Fleet) onboard() *Table {
	i := f.onboarded
	f.onboarded++
	t := &Table{
		db:          fmt.Sprintf("db%03d", i%f.cfg.Databases),
		name:        fmt.Sprintf("t%06d", i),
		partitioned: f.rngTables.Bernoulli(0.6),
		created:     f.clock.Now(),
		lastWrite:   f.clock.Now(),
		fleet:       f,
	}
	if t.partitioned {
		t.partitions = f.rngTables.IntBetween(10, 400)
	} else {
		t.partitions = 1
	}
	// File counts are heavy-tailed: most tables are small, a few are
	// enormous (the paper's problem tables averaged 42M files; we cap
	// the tail for scaled runs).
	files := int64(f.rngTables.Pareto(40, 0.9))
	if files > 2_000_000 {
		files = 2_000_000
	}
	tiny := int64(float64(files) * f.rngTables.Jitter(f.cfg.InitialTinyFraction, 0.1))
	if tiny > files {
		tiny = files
	}
	smallish := int64(float64(files-tiny) * 0.6)
	full := files - tiny - smallish
	t.counts = [3]int64{tiny, smallish, full}
	t.bytes = [3]int64{
		tiny * int64(f.rngTables.Jitter(24*float64(storage.MB), 0.5)),
		smallish * int64(f.rngTables.Jitter(256*float64(storage.MB), 0.3)),
		full * int64(f.rngTables.Jitter(700*float64(storage.MB), 0.2)),
	}
	t.growthPerDay = f.rngTables.Jitter(float64(files)*0.01, 0.8) + 1
	t.avgNewFile = int64(f.rngTables.Jitter(16*float64(storage.MB), 0.7))
	if t.avgNewFile < storage.MB {
		t.avgNewFile = storage.MB
	}
	t.scanShare = f.rngTables.Float64() * 0.5
	// Metadata history from the table's past life: roughly one commit per
	// 50 files, each leaving a metadata.json version and a manifest.
	t.commitMetadata(files/50 + 1)
	f.tables = append(f.tables, t)
	f.addDBFiles(t.db, files)
	mOnboarded.Inc()
	// Onboarding is the table's first appearance on the changefeed, so
	// an incremental observer discovers it without waiting for a
	// reconciling full scan.
	f.publish(t, t.commits, t.TotalBytes(), false)
	return t
}

// Tables returns the fleet's tables (live slice; do not mutate).
func (f *Fleet) Tables() []*Table { return f.tables }

// TableCount returns the deployment size.
func (f *Fleet) TableCount() int { return len(f.tables) }

// Day returns the current simulation day.
func (f *Fleet) Day() int { return f.day }

// TotalFiles returns the fleet-wide data-file count.
func (f *Fleet) TotalFiles() int64 {
	var n int64
	for _, t := range f.tables {
		n += t.counts[0] + t.counts[1] + t.counts[2]
	}
	return n
}

// TotalMetadataObjects returns the fleet-wide metadata-object count.
func (f *Fleet) TotalMetadataObjects() int64 {
	var n int64
	for _, t := range f.tables {
		n += t.MetadataObjects()
	}
	return n
}

// TotalObjects returns data files plus metadata objects — the NameNode's
// namespace load (§2: object count forces federation).
func (f *Fleet) TotalObjects() int64 {
	return f.TotalFiles() + f.TotalMetadataObjects()
}

// Histogram returns fleet-wide [tiny, small, full] file counts (Fig 2).
func (f *Fleet) Histogram() [3]int64 {
	var h [3]int64
	for _, t := range f.tables {
		for b := 0; b < 3; b++ {
			h[b] += t.counts[b]
		}
	}
	return h
}

// TinyFileFraction returns the count-fraction of files under 128 MB.
func (f *Fleet) TinyFileFraction() float64 {
	h := f.Histogram()
	total := h[0] + h[1] + h[2]
	if total == 0 {
		return 0
	}
	return float64(h[0]) / float64(total)
}

// SmallFileFraction returns the count-fraction of files under the target.
func (f *Fleet) SmallFileFraction() float64 {
	h := f.Histogram()
	total := h[0] + h[1] + h[2]
	if total == 0 {
		return 0
	}
	return float64(h[0]+h[1]) / float64(total)
}

// QuotaUtilization implements the connector quota lookup: files of a
// tenant over its quota. It reads the per-database cache maintained at
// every file-count mutation, so it is O(1) — the observe phase calls it
// once per candidate, and a fleet scan here would make fleet-scale
// observation quadratic.
func (f *Fleet) QuotaUtilization(db string) float64 {
	if f.cfg.QuotaObjectsPerDB <= 0 {
		return 0
	}
	u := float64(f.dbFiles[db]) / float64(f.cfg.QuotaObjectsPerDB)
	if u > 1 {
		u = 1
	}
	return u
}

// AdvanceDay applies one day of organic dynamics: tables accrete small
// files from their writers (every table, or a DailyWriteProb-sized
// fraction); write behaviour drifts as users adjust workflows; new
// tables onboard at the configured monthly rate. Each table's day of
// writes publishes one batched changefeed event.
func (f *Fleet) AdvanceDay() {
	f.day++
	f.clock.Advance(24 * time.Hour)
	sparse := f.cfg.DailyWriteProb > 0 && f.cfg.DailyWriteProb < 1
	for _, t := range f.tables {
		if f.cfg.DailyDriftProb > 0 && f.rngWrites.Bernoulli(f.cfg.DailyDriftProb) {
			// The owning pipeline changed: a quiet table may become a
			// heavy (untuned) writer or a heavy one go quiet.
			t.growthPerDay = f.rngWrites.Pareto(2, 0.9)
			if t.growthPerDay > 5000 {
				t.growthPerDay = 5000
			}
		}
		if sparse && !f.rngWrites.Bernoulli(f.cfg.DailyWriteProb) {
			continue
		}
		n := int64(f.rngWrites.Jitter(t.growthPerDay, 0.5))
		if n <= 0 {
			continue
		}
		t.counts[BucketTiny] += n
		t.bytes[BucketTiny] += n * t.avgNewFile
		f.addDBFiles(t.db, n)
		t.lastWrite = f.clock.Now()
		t.writes++
		// The day's files land in batched commits (~20 files each), each
		// leaving per-commit metadata behind (cause iv).
		commits := 1 + n/20
		t.commitMetadata(commits)
		f.publish(t, commits, n*t.avgNewFile, false)
	}
	// Onboarding: TablesPerMonth spread across 30 days.
	newTables := f.cfg.TablesPerMonth / 30
	rem := f.cfg.TablesPerMonth % 30
	if rem > 0 && f.day%30 < rem {
		newTables++
	}
	for i := 0; i < newTables; i++ {
		f.onboard()
	}
	mDays.Inc()
	f.refreshGauges()
}

// ScanStats reports one day of the scan-heavy workload (Fig 11a).
type ScanStats struct {
	TablesScanned int
	FilesScanned  int64
	BytesScanned  int64
	// MetadataOpened counts the metadata objects query planning read
	// (every scan walks the table's metadata log before touching data).
	MetadataOpened int64
	// QueryTime and QueryCost are modeled: time grows with per-file
	// overhead and bytes; cost is App TBHr.
	QueryTime time.Duration
	QueryCost float64
}

// RunDailyScans models the daily scan-heavy workload: each table is read
// with its scanShare probability; reads open every live file plus the
// metadata log (planning RPCs).
func (f *Fleet) RunDailyScans() ScanStats {
	var s ScanStats
	const perFileOverhead = 30 * time.Millisecond
	const scanBytesPerSec = float64(2 * storage.GB) // fleet-wide parallel
	for _, t := range f.tables {
		if !f.rngScans.Bernoulli(t.scanShare) {
			continue
		}
		files := t.counts[0] + t.counts[1] + t.counts[2]
		bytes := t.TotalBytes()
		s.TablesScanned++
		s.FilesScanned += files
		s.BytesScanned += bytes
		s.MetadataOpened += t.MetadataObjects()
	}
	f.openCalls += s.FilesScanned
	f.metaOpenCalls += s.MetadataOpened
	// Per-file overhead is paid across ~512 parallel tasks fleet-wide.
	s.QueryTime = time.Duration(s.FilesScanned)*perFileOverhead/512 +
		time.Duration(float64(s.BytesScanned)/scanBytesPerSec*float64(time.Second))
	s.QueryCost = float64(s.FilesScanned)*0.000002 + float64(s.BytesScanned)/float64(storage.TB)*0.05
	return s
}

// OpenCalls returns cumulative modeled HDFS open() RPCs on data files.
func (f *Fleet) OpenCalls() int64 { return f.openCalls }

// MetadataOpenCalls returns cumulative planning-time open() RPCs on
// metadata objects — the NameNode pressure cause (iv) contributes.
func (f *Fleet) MetadataOpenCalls() int64 { return f.metaOpenCalls }

// DropTable removes a table from the fleet — the mid-flight table
// deletion a long-running service must survive (users drop and recreate
// tables daily, §7). The table's data files leave the tenant's
// namespace accounting and, when a changefeed is attached, a Dropped
// event tells subscribers to forget it (dirty state, cached stats,
// retained candidates). It returns false when no table has that full
// name.
func (f *Fleet) DropTable(fullName string) bool {
	for i, t := range f.tables {
		if t.FullName() != fullName {
			continue
		}
		f.tables = append(f.tables[:i], f.tables[i+1:]...)
		f.addDBFiles(t.db, -(t.counts[0] + t.counts[1] + t.counts[2]))
		mDropped.Inc()
		if f.bus != nil {
			f.bus.Publish(changefeed.Event{
				Table:   fullName,
				At:      f.clock.Now(),
				Dropped: true,
			})
		}
		return true
	}
	return false
}
