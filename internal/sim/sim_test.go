package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Second)
	c.Advance(10 * time.Second)
	if got := c.Now(); got != 15*time.Second {
		t.Fatalf("Now = %v, want 15s", got)
	}
	if got := c.Hours(); math.Abs(got-15.0/3600) > 1e-12 {
		t.Fatalf("Hours = %v", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-time.Second)
}

func TestClockSetBackwardsPanics(t *testing.T) {
	c := NewClock()
	c.Advance(time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	c.Set(time.Second)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal draws", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork()
	// The fork stream must be deterministic given the parent state.
	parent2 := NewRNG(7)
	f2 := parent2.Fork()
	for i := 0; i < 100; i++ {
		if f1.Int63() != f2.Int63() {
			t.Fatalf("forks from identical parents diverged at %d", i)
		}
	}
}

func TestLogNormalAroundMedian(t *testing.T) {
	g := NewRNG(3)
	const median = 512.0
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.LogNormalAround(median, 0.8) < median {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("median property violated: %.3f below", frac)
	}
}

func TestLogNormalAroundZeroMedian(t *testing.T) {
	if got := NewRNG(1).LogNormalAround(0, 1); got != 0 {
		t.Fatalf("LogNormalAround(0) = %v, want 0", got)
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 50; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(11)
	const rate = 4.0
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += g.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestParetoLowerBound(t *testing.T) {
	g := NewRNG(13)
	for i := 0; i < 10000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto draw %v below scale", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(17)
	f := func(seedless uint8) bool {
		v := g.Jitter(100, 0.25)
		return v >= 75 && v <= 125
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntBetween(t *testing.T) {
	g := NewRNG(19)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := g.IntBetween(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Fatalf("IntBetween never produced %d", v)
		}
	}
	if g.IntBetween(4, 4) != 4 {
		t.Fatal("IntBetween(4,4) != 4")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	var order []int
	q.ScheduleAt(3*time.Second, func() { order = append(order, 3) })
	q.ScheduleAt(1*time.Second, func() { order = append(order, 1) })
	q.ScheduleAt(2*time.Second, func() { order = append(order, 2) })
	n := q.RunAll()
	if n != 3 {
		t.Fatalf("RunAll executed %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", c.Now())
	}
}

func TestEventQueueTieBreakBySchedulingOrder(t *testing.T) {
	q := NewEventQueue(NewClock())
	var order []string
	q.ScheduleAt(time.Second, func() { order = append(order, "a") })
	q.ScheduleAt(time.Second, func() { order = append(order, "b") })
	q.ScheduleAt(time.Second, func() { order = append(order, "c") })
	q.RunAll()
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("tie order = %v", order)
	}
}

func TestEventQueueRunUntil(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	ran := 0
	q.ScheduleAt(time.Second, func() { ran++ })
	q.ScheduleAt(5*time.Second, func() { ran++ })
	n := q.RunUntil(2 * time.Second)
	if n != 1 || ran != 1 {
		t.Fatalf("RunUntil ran %d events", ran)
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("clock after RunUntil = %v", c.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
}

func TestEventQueueCascading(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			q.ScheduleAfter(time.Second, chain)
		}
	}
	q.ScheduleAt(time.Second, chain)
	q.RunAll()
	if count != 5 {
		t.Fatalf("cascade count = %d, want 5", count)
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", c.Now())
	}
}

func TestScheduleEvery(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	ticks := 0
	q.ScheduleEvery(time.Hour, 5*time.Hour, func() { ticks++ })
	q.RunUntil(10 * time.Hour)
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4 (at hours 1..4)", ticks)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewClock()
	c.Advance(time.Hour)
	q := NewEventQueue(c)
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in past did not panic")
		}
	}()
	q.ScheduleAt(time.Minute, func() {})
}
