package sim

import "testing"

// TestRNGReplayFastForward pins the resume contract every persisted
// simulation relies on: a generator rebuilt with NewRNGAt(seed, draws)
// continues the stream exactly where the original generator stood after
// draws source steps, for any mix of draw kinds (some of which consume
// several source steps per call).
func TestRNGReplayFastForward(t *testing.T) {
	mix := func(g *RNG) []float64 {
		out := []float64{
			float64(g.Int63()),
			float64(g.Intn(1000)),
			g.Float64(),
			g.NormFloat64(),
			g.LogNormalAround(128, 0.5),
			g.Exp(2),
			g.Jitter(10, 0.3),
			g.Pareto(1, 1.5),
			float64(g.IntBetween(3, 9)),
		}
		if g.Bernoulli(0.5) {
			out = append(out, 1)
		}
		return out
	}

	for _, seed := range []int64{0, 1, 42, 1 << 40} {
		orig := NewRNG(seed)
		for i := 0; i < 3; i++ {
			mix(orig)
		}
		draws := orig.Draws()
		resumed := NewRNGAt(seed, draws)
		if got := resumed.Draws(); got != draws {
			t.Fatalf("seed %d: resumed Draws() = %d, want %d", seed, got, draws)
		}
		want := mix(orig)
		got := mix(resumed)
		if len(want) != len(got) {
			t.Fatalf("seed %d: resumed stream length diverged: %d vs %d", seed, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: resumed stream diverged at %d: %v vs %v", seed, i, want[i], got[i])
			}
		}
	}
}

// TestRNGReplayForkAndChild checks Draws counting composes with the two
// derivation rules: a fork consumes exactly one parent draw, and Child
// streams track their own counts independently.
func TestRNGReplayForkAndChild(t *testing.T) {
	g := NewRNG(7)
	if g.Draws() != 0 {
		t.Fatalf("fresh generator has %d draws, want 0", g.Draws())
	}
	f := g.Fork()
	if g.Draws() != 1 {
		t.Fatalf("Fork consumed %d parent draws, want 1", g.Draws())
	}
	f.Float64()
	if f.Draws() == 0 {
		t.Fatal("forked stream did not count its draw")
	}

	c := Child(7, "test/stream")
	c.Int63()
	c.Int63()
	r := NewRNGAt(ChildSeed(7, "test/stream"), c.Draws())
	if r.Int63() != c.Int63() {
		t.Fatal("Child stream resumed at wrong position")
	}
}
