package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random number generator seeded explicitly. It
// wraps math/rand with the distribution helpers the simulators need
// (log-normal file sizes, exponential inter-arrivals, jittered values).
//
// A nil RNG is not usable; construct with NewRNG.
type RNG struct {
	r   *rand.Rand
	src *countingSource
}

// countingSource wraps the math/rand source and counts how many times it
// was stepped. math/rand's seeded source advances exactly one internal
// step per Int63 or Uint64 call, so the count fully determines the
// source's position in its stream: replaying that many steps from the
// same seed reproduces the generator state exactly. This is what lets a
// persisted simulation resume its RNG streams mid-flight (NewRNGAt)
// without changing a single value any existing stream produces.
type countingSource struct {
	src rand.Source64
	n   int64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// NewRNG returns a generator seeded with seed. Equal seeds produce equal
// streams.
func NewRNG(seed int64) *RNG {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{r: rand.New(src), src: src}
}

// Draws returns how many times the underlying source has been stepped.
// Together with the construction seed it pins the generator's exact
// position: NewRNGAt(seed, g.Draws()) continues the stream where g
// stands.
func (g *RNG) Draws() int64 { return g.src.n }

// NewRNGAt returns a generator seeded with seed and fast-forwarded past
// the first draws source steps — the stream position a NewRNG(seed)
// generator reaches after Draws() == draws. Restoring a persisted
// simulation re-pins each of its streams with this.
func NewRNGAt(seed, draws int64) *RNG {
	g := NewRNG(seed)
	for i := int64(0); i < draws; i++ {
		g.src.Uint64()
	}
	g.src.n = draws
	return g
}

// Fork derives a new independent generator from this one. Forking lets a
// simulation hand stable sub-streams to components so that adding draws in
// one component does not perturb another. Note that Fork itself consumes
// one draw from the parent stream, so the set of forks a simulation takes
// is part of its deterministic behaviour; components that must stay
// independent of each other's existence should use Child instead.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Child derives a generator from a root seed and a stable component
// label. Unlike successive Fork calls, the derived stream depends only on
// (seed, label) — not on how many other components derived streams before
// this one — so adding a new component (a fault injector, an extra write
// pattern) never perturbs the draws of existing ones. This is the
// derivation rule every scenario component uses.
func Child(seed int64, label string) *RNG {
	return NewRNG(ChildSeed(seed, label))
}

// ChildSeed returns the seed Child would use for (seed, label) without
// constructing the generator. Components that need a derived *seed* —
// e.g. to pass into a sub-simulation that does its own stream
// derivation — use this so their sub-streams obey the same
// order-independence rule as Child streams.
func ChildSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	// Clear the sign bit of the hash and of the final XOR so the
	// derived seed stays non-negative for any root seed (the outer mask
	// is a no-op for non-negative seeds, so their streams are what they
	// always were); equal (seed, label) pairs always derive the same
	// stream.
	return (seed ^ int64(h.Sum64()&0x7fffffffffffffff)) & 0x7fffffffffffffff
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Float64 returns a pseudo-random float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// LogNormal returns a draw from a log-normal distribution parameterized by
// the mean and standard deviation of the underlying normal. File sizes in
// data lakes are heavy-tailed; the paper's Figure 1 distributions are well
// approximated by log-normals around the writer's characteristic size.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// LogNormalAround returns a log-normal draw whose median is median and
// whose spread is controlled by sigma (sigma of the underlying normal).
func (g *RNG) LogNormalAround(median, sigma float64) float64 {
	if median <= 0 {
		return 0
	}
	return g.LogNormal(math.Log(median), sigma)
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). Used for inter-arrival times in query streams.
func (g *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp rate must be positive")
	}
	return g.r.ExpFloat64() / rate
}

// Jitter returns v multiplied by a uniform factor in [1-frac, 1+frac].
func (g *RNG) Jitter(v, frac float64) float64 {
	if frac <= 0 {
		return v
	}
	return v * (1 + frac*(2*g.r.Float64()-1))
}

// Pareto returns a draw from a Pareto distribution with scale xm and shape
// alpha. Used for the fleet simulator's table-size distribution, which is
// heavy-tailed in production (a few enormous tables, many small ones).
func (g *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("sim: Pareto parameters must be positive")
	}
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// IntBetween returns a uniform int in [lo, hi] inclusive. It panics if
// hi < lo.
func (g *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("sim: IntBetween hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo+1)
}
