// Package sim provides the deterministic simulation kernel used by every
// substrate in this repository: a virtual clock, a discrete-event queue,
// and a seeded random number generator.
//
// All simulated components take their notion of time from a *Clock and all
// randomness from an *RNG, which makes every experiment reproducible from a
// seed (the paper's NFR2, explainability/determinism).
package sim

import (
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value is a clock at virtual time zero,
// ready to use. Time only moves when Advance or Set is called, so a
// simulation is in full control of its timeline.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock positioned at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the simulation
// epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: simulated time never flows backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.now += d
}

// Set jumps the clock to the absolute virtual time t. Setting the clock
// before its current time panics.
func (c *Clock) Set(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("sim: Set to %v before current time %v", t, c.now))
	}
	c.now = t
}

// Hours returns the current virtual time expressed in fractional hours.
func (c *Clock) Hours() float64 { return c.now.Hours() }

// Common durations used throughout the simulators.
const (
	Minute = time.Minute
	Hour   = time.Hour
	Day    = 24 * time.Hour
	Week   = 7 * Day
	// Month approximates a calendar month; fleet experiments run on a
	// 30-day month grid, matching the paper's month-indexed figures.
	Month = 30 * Day
)
