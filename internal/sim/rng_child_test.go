package sim

import "testing"

// TestChildDerivationOrderIndependent pins the Child contract: the
// stream depends only on (seed, label), never on what else was derived,
// and distinct labels give distinct streams.
func TestChildDerivationOrderIndependent(t *testing.T) {
	a := Child(7, "writes")
	// Deriving other children in between must not matter.
	_ = Child(7, "faults")
	_ = Child(7, "scans")
	b := Child(7, "writes")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same (seed, label) diverged at draw %d", i)
		}
	}
	c, d := Child(7, "writes"), Child(7, "faults")
	same := 0
	for i := 0; i < 100; i++ {
		if c.Int63() == d.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct labels produced overlapping streams (%d/100 equal draws)", same)
	}
	e, f := Child(7, "writes"), Child(8, "writes")
	same = 0
	for i := 0; i < 100; i++ {
		if e.Int63() == f.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced overlapping streams (%d/100 equal draws)", same)
	}
}
