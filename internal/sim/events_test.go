package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestSameInstantOrderingStableAtScale schedules many events at one
// instant from interleaved "sources" and checks they run in exact
// scheduling order — the seq tie-break must be a total order, not a
// heap-shape accident.
func TestSameInstantOrderingStableAtScale(t *testing.T) {
	q := NewEventQueue(NewClock())
	const n = 500
	var order []int
	for i := 0; i < n; i++ {
		i := i
		// Mix of absolute and relative scheduling onto the same instant.
		if i%2 == 0 {
			q.ScheduleAt(time.Hour, func() { order = append(order, i) })
		} else {
			q.ScheduleAfter(time.Hour, func() { order = append(order, i) })
		}
	}
	if got := q.RunAll(); got != n {
		t.Fatalf("ran %d events, want %d", got, n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; same-instant ordering not stable", i, v)
		}
	}
}

// TestSameInstantEventSchedulingSameInstant: an event that schedules a
// new event at the *current* instant must see it run in the same drain,
// after every previously scheduled same-instant event.
func TestSameInstantEventSchedulingSameInstant(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	var order []string
	q.ScheduleAt(time.Minute, func() {
		order = append(order, "a")
		q.ScheduleAt(c.Now(), func() { order = append(order, "a-child") })
	})
	q.ScheduleAt(time.Minute, func() { order = append(order, "b") })
	n := q.RunUntil(time.Minute)
	if n != 3 {
		t.Fatalf("ran %d events, want 3 (child must run in the same drain)", n)
	}
	want := []string{"a", "b", "a-child"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleAtPastPanicsAfterEventAdvance(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	q.ScheduleAt(time.Hour, func() {})
	q.RunAll() // clock now at 1h
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt(30m) after advancing to 1h did not panic")
		}
	}()
	q.ScheduleAt(30*time.Minute, func() {})
}

func TestScheduleAtExactlyNowAllowed(t *testing.T) {
	c := NewClock()
	c.Advance(time.Hour)
	q := NewEventQueue(c)
	ran := false
	q.ScheduleAt(time.Hour, func() { ran = true }) // t == Now: not "the past"
	if q.RunAll() != 1 || !ran {
		t.Fatal("event at exactly Now did not run")
	}
	if c.Now() != time.Hour {
		t.Fatalf("clock moved to %v", c.Now())
	}
}

func TestScheduleAfterNegativePanics(t *testing.T) {
	c := NewClock()
	c.Advance(time.Hour)
	q := NewEventQueue(c)
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAfter(-2h) did not panic")
		}
	}()
	q.ScheduleAfter(-2*time.Hour, func() {})
}

// TestDrainWhileEventsScheduleNewEvents: RunUntil must execute events
// scheduled by other events when they land inside the horizon, skip the
// ones that land beyond it, and leave the clock exactly at the horizon.
func TestDrainWhileEventsScheduleNewEvents(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	var fired []string
	q.ScheduleAt(time.Minute, func() {
		fired = append(fired, "t1")
		q.ScheduleAfter(time.Minute, func() {
			fired = append(fired, "t2")
			q.ScheduleAfter(10*time.Minute, func() { fired = append(fired, "t12") })
		})
	})
	n := q.RunUntil(5 * time.Minute)
	if n != 2 {
		t.Fatalf("ran %d events, want 2 (t12 is beyond the horizon)", n)
	}
	if len(fired) != 2 || fired[0] != "t1" || fired[1] != "t2" {
		t.Fatalf("fired = %v", fired)
	}
	if c.Now() != 5*time.Minute {
		t.Fatalf("clock = %v, want horizon 5m", c.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want the deferred t12", q.Len())
	}
	if q.RunAll() != 1 || len(fired) != 3 || fired[2] != "t12" {
		t.Fatalf("deferred event lost: fired = %v", fired)
	}
}

// TestRunAllFanOutCascade drains a geometric cascade where each event
// schedules two more: the queue must keep up with growth generated
// mid-drain and execute everything in timestamp order.
func TestRunAllFanOutCascade(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	var times []time.Duration
	const depth = 6
	var spawn func(level int)
	spawn = func(level int) {
		times = append(times, c.Now())
		if level >= depth {
			return
		}
		q.ScheduleAfter(time.Second, func() { spawn(level + 1) })
		q.ScheduleAfter(2*time.Second, func() { spawn(level + 1) })
	}
	q.ScheduleAt(time.Second, func() { spawn(1) })
	n := q.RunAll()
	want := 1<<depth - 1 // full binary tree of events
	if n != want {
		t.Fatalf("ran %d events, want %d", n, want)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("timestamps regressed at %d: %v", i, times[:i+1])
		}
	}
}

func TestScheduleEveryNonPositivePeriodPanics(t *testing.T) {
	q := NewEventQueue(NewClock())
	for _, period := range []time.Duration{0, -time.Second} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ScheduleEvery(%v) did not panic", period)
				}
			}()
			q.ScheduleEvery(period, time.Hour, func() {})
		}()
	}
}

func TestScheduleEveryStopsWhenCallbackOverrunsUntil(t *testing.T) {
	c := NewClock()
	q := NewEventQueue(c)
	ticks := 0
	q.ScheduleEvery(time.Minute, 5*time.Minute, func() {
		ticks++
		// The callback itself drags virtual time past the until bound.
		c.Advance(10 * time.Minute)
	})
	q.RunAll()
	if ticks != 1 {
		t.Fatalf("ticks = %d, want 1 (rearm past until must stop)", ticks)
	}
}

func TestEventQueueLenTracksPendingExactly(t *testing.T) {
	q := NewEventQueue(NewClock())
	for i := 1; i <= 10; i++ {
		q.ScheduleAt(time.Duration(i)*time.Second, func() {})
		if q.Len() != i {
			t.Fatalf("Len = %d after %d schedules", q.Len(), i)
		}
	}
	q.RunUntil(4 * time.Second)
	if q.Len() != 6 {
		t.Fatalf("Len = %d after partial drain, want 6", q.Len())
	}
	q.RunAll()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after RunAll", q.Len())
	}
}

func TestEventQueueManyClocksIndependent(t *testing.T) {
	// Two queues over two clocks never interfere, even with interleaved
	// scheduling (regression guard for shared-state bugs in the heap).
	c1, c2 := NewClock(), NewClock()
	q1, q2 := NewEventQueue(c1), NewEventQueue(c2)
	ran1, ran2 := 0, 0
	for i := 1; i <= 20; i++ {
		q1.ScheduleAt(time.Duration(i)*time.Second, func() { ran1++ })
		q2.ScheduleAt(time.Duration(i)*time.Minute, func() { ran2++ })
	}
	q1.RunAll()
	if ran1 != 20 || ran2 != 0 {
		t.Fatalf("ran1=%d ran2=%d", ran1, ran2)
	}
	if c2.Now() != 0 {
		t.Fatalf("draining q1 moved c2 to %v", c2.Now())
	}
	q2.RunAll()
	if ran2 != 20 {
		t.Fatalf("ran2=%d", ran2)
	}
	if fmt.Sprint(c1.Now()) == fmt.Sprint(c2.Now()) {
		t.Fatal("clocks coincidentally equal; test misconfigured")
	}
}
