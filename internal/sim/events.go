package sim

import (
	"container/heap"
	"time"
)

// Event is a closure scheduled to run at a virtual time. Events scheduled
// for the same instant run in scheduling order (the seq field breaks ties),
// which keeps simulations deterministic.
type Event struct {
	At  time.Duration
	Fn  func()
	seq int64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EventQueue is a discrete-event scheduler bound to a Clock. Running the
// queue advances the clock to each event's timestamp before invoking it.
type EventQueue struct {
	clock *Clock
	h     eventHeap
	seq   int64
}

// NewEventQueue returns an event queue driving clock.
func NewEventQueue(clock *Clock) *EventQueue {
	return &EventQueue{clock: clock}
}

// Clock returns the clock this queue drives.
func (q *EventQueue) Clock() *Clock { return q.clock }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// ScheduleAt enqueues fn to run at absolute virtual time t. Scheduling in
// the past panics.
func (q *EventQueue) ScheduleAt(t time.Duration, fn func()) {
	if t < q.clock.Now() {
		panic("sim: ScheduleAt in the past")
	}
	q.seq++
	heap.Push(&q.h, &Event{At: t, Fn: fn, seq: q.seq})
}

// ScheduleAfter enqueues fn to run d after the current virtual time.
func (q *EventQueue) ScheduleAfter(d time.Duration, fn func()) {
	q.ScheduleAt(q.clock.Now()+d, fn)
}

// ScheduleEvery enqueues fn to run every period until (and excluding)
// events at or after until. The first run is one period from now.
func (q *EventQueue) ScheduleEvery(period, until time.Duration, fn func()) {
	if period <= 0 {
		panic("sim: ScheduleEvery non-positive period")
	}
	var rearm func()
	rearm = func() {
		fn()
		next := q.clock.Now() + period
		if next < until {
			q.ScheduleAt(next, rearm)
		}
	}
	first := q.clock.Now() + period
	if first < until {
		q.ScheduleAt(first, rearm)
	}
}

// RunUntil executes events in timestamp order up to and including time t,
// advancing the clock to each event and finally to t. It returns the
// number of events executed.
func (q *EventQueue) RunUntil(t time.Duration) int {
	n := 0
	for len(q.h) > 0 && q.h[0].At <= t {
		e := heap.Pop(&q.h).(*Event)
		if e.At > q.clock.Now() {
			q.clock.Set(e.At)
		}
		e.Fn()
		n++
	}
	if t > q.clock.Now() {
		q.clock.Set(t)
	}
	return n
}

// RunAll executes every pending event (including events scheduled by other
// events) and returns the number executed.
func (q *EventQueue) RunAll() int {
	n := 0
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*Event)
		if e.At > q.clock.Now() {
			q.clock.Set(e.At)
		}
		e.Fn()
		n++
	}
	return n
}
