package catalog

import (
	"errors"
	"testing"
	"time"

	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func newCP() (*ControlPlane, *sim.Clock) {
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	return New(fs, clock), clock
}

func TestCreateDatabaseAndTable(t *testing.T) {
	cp, _ := newCP()
	if _, err := cp.CreateDatabase("sales", "growth-team", 1000); err != nil {
		t.Fatal(err)
	}
	tbl, err := cp.CreateTable("sales", lst.TableConfig{Name: "orders"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Database() != "sales" || tbl.Name() != "orders" {
		t.Fatalf("table identity = %s", tbl.FullName())
	}
	got, err := cp.Table("sales", "orders")
	if err != nil || got != tbl {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if cp.TableCount() != 1 {
		t.Fatalf("count = %d", cp.TableCount())
	}
}

func TestDuplicateDatabase(t *testing.T) {
	cp, _ := newCP()
	cp.CreateDatabase("db", "t", 0)
	if _, err := cp.CreateDatabase("db", "t", 0); !errors.Is(err, ErrDatabaseExists) {
		t.Fatalf("duplicate db: %v", err)
	}
}

func TestDuplicateTable(t *testing.T) {
	cp, _ := newCP()
	cp.CreateDatabase("db", "t", 0)
	cp.CreateTable("db", lst.TableConfig{Name: "x"})
	if _, err := cp.CreateTable("db", lst.TableConfig{Name: "x"}); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate table: %v", err)
	}
}

func TestMissingLookups(t *testing.T) {
	cp, _ := newCP()
	if _, err := cp.Table("nodb", "x"); !errors.Is(err, ErrDatabaseNotFound) {
		t.Fatalf("missing db: %v", err)
	}
	cp.CreateDatabase("db", "t", 0)
	if _, err := cp.Table("db", "x"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("missing table: %v", err)
	}
	if _, err := cp.CreateTable("nodb", lst.TableConfig{Name: "x"}); !errors.Is(err, ErrDatabaseNotFound) {
		t.Fatalf("create in missing db: %v", err)
	}
	if _, err := cp.Tables("nodb"); !errors.Is(err, ErrDatabaseNotFound) {
		t.Fatalf("tables of missing db: %v", err)
	}
	if err := cp.DropTable("db", "x"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("drop missing: %v", err)
	}
}

func TestAllTablesSortedDeterministic(t *testing.T) {
	cp, _ := newCP()
	cp.CreateDatabase("zeta", "t", 0)
	cp.CreateDatabase("alpha", "t", 0)
	cp.CreateTable("zeta", lst.TableConfig{Name: "b"})
	cp.CreateTable("zeta", lst.TableConfig{Name: "a"})
	cp.CreateTable("alpha", lst.TableConfig{Name: "z"})
	all := cp.AllTables()
	want := []string{"alpha.z", "zeta.a", "zeta.b"}
	if len(all) != len(want) {
		t.Fatalf("len = %d", len(all))
	}
	for i, w := range want {
		if all[i].FullName() != w {
			t.Fatalf("order = %v at %d, want %v", all[i].FullName(), i, w)
		}
	}
}

func TestDropTableCleansStorage(t *testing.T) {
	cp, _ := newCP()
	cp.CreateDatabase("db", "t", 0)
	tbl, _ := cp.CreateTable("db", lst.TableConfig{Name: "x"})
	tbl.AppendFiles([]lst.FileSpec{{SizeBytes: storage.MB, RowCount: 1}})
	if cp.FS().ObjectCount() == 0 {
		t.Fatal("no objects before drop")
	}
	if err := cp.DropTable("db", "x"); err != nil {
		t.Fatal(err)
	}
	if got := cp.FS().ObjectCount(); got != 0 {
		t.Fatalf("objects after drop = %d", got)
	}
	if cp.TableCount() != 0 {
		t.Fatal("table still registered")
	}
}

func TestQuotaUtilization(t *testing.T) {
	cp, _ := newCP()
	cp.CreateDatabase("db", "t", 10)
	tbl, _ := cp.CreateTable("db", lst.TableConfig{Name: "x"}) // 1 metadata object
	tbl.AppendFiles([]lst.FileSpec{{SizeBytes: storage.MB, RowCount: 1}})
	// objects: v0 metadata, data file, manifest, v1 metadata = 4
	if got := cp.QuotaUtilization("db"); got != 0.4 {
		t.Fatalf("utilization = %v", got)
	}
	if got := cp.QuotaUtilization("unquotad"); got != 0 {
		t.Fatalf("missing quota utilization = %v", got)
	}
}

func TestPolicies(t *testing.T) {
	cp, _ := newCP()
	cp.CreateDatabase("db", "t", 0)
	cp.CreateTableWithPolicies("db", lst.TableConfig{Name: "x"},
		TablePolicies{RetainSnapshots: 3, Intermediate: true})
	pol, err := cp.Policies("db", "x")
	if err != nil || pol.RetainSnapshots != 3 || !pol.Intermediate {
		t.Fatalf("policies = %+v, %v", pol, err)
	}
	if err := cp.SetPolicies("db", "x", TablePolicies{RetainSnapshots: 1}); err != nil {
		t.Fatal(err)
	}
	pol, _ = cp.Policies("db", "x")
	if pol.RetainSnapshots != 1 || pol.Intermediate {
		t.Fatalf("updated policies = %+v", pol)
	}
	if _, err := cp.Policies("db", "missing"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("missing policies: %v", err)
	}
	if err := cp.SetPolicies("nodb", "x", TablePolicies{}); !errors.Is(err, ErrDatabaseNotFound) {
		t.Fatalf("set on missing db: %v", err)
	}
}

func TestRunRetention(t *testing.T) {
	cp, clock := newCP()
	cp.CreateDatabase("db", "t", 0)
	tbl, _ := cp.CreateTableWithPolicies("db", lst.TableConfig{Name: "x"},
		TablePolicies{RetainSnapshots: 2})
	for i := 0; i < 8; i++ {
		clock.Advance(time.Minute)
		if _, err := tbl.AppendFiles([]lst.FileSpec{{SizeBytes: storage.MB, RowCount: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	reclaimed, err := cp.RunRetention()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed == 0 {
		t.Fatal("retention reclaimed nothing")
	}
	if got := len(tbl.Snapshots()); got != 2 {
		t.Fatalf("snapshots after retention = %d", got)
	}
}

func TestTableAge(t *testing.T) {
	cp, clock := newCP()
	cp.CreateDatabase("db", "t", 0)
	tbl, _ := cp.CreateTable("db", lst.TableConfig{Name: "x"})
	clock.Advance(3 * time.Hour)
	if got := cp.TableAge(tbl); got != 3*time.Hour {
		t.Fatalf("age = %v", got)
	}
}

func TestDatabasesSorted(t *testing.T) {
	cp, _ := newCP()
	cp.CreateDatabase("b", "t", 0)
	cp.CreateDatabase("a", "t", 0)
	dbs := cp.Databases()
	if len(dbs) != 2 || dbs[0] != "a" || dbs[1] != "b" {
		t.Fatalf("databases = %v", dbs)
	}
}

func TestDatabasePolicyLayering(t *testing.T) {
	cp, _ := newCP()
	if _, err := cp.CreateDatabase("sales", "t", 0); err != nil {
		t.Fatal(err)
	}
	// Plain CreateTable stores no explicit policies, so the database
	// layer must show through; a second table sets its own fields.
	if _, err := cp.CreateTable("sales", lst.TableConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CreateTableWithPolicies("sales", lst.TableConfig{Name: "b"},
		TablePolicies{RetainSnapshots: 3, TriggerEveryCommits: 7}); err != nil {
		t.Fatal(err)
	}

	if _, ok := cp.DatabasePolicies("sales"); ok {
		t.Fatal("no database policies installed yet")
	}
	if err := cp.SetDatabasePolicies("nope", TablePolicies{}); !errors.Is(err, ErrDatabaseNotFound) {
		t.Fatalf("err = %v", err)
	}
	dbPol := TablePolicies{RetainSnapshots: 10, CheckpointEveryVersions: 50, TriggerBytesWritten: 4096}
	if err := cp.SetDatabasePolicies("sales", dbPol); err != nil {
		t.Fatal(err)
	}
	if got, ok := cp.DatabasePolicies("sales"); !ok || got != dbPol {
		t.Fatalf("database policies = %+v, %v", got, ok)
	}

	// Table "a" (all zero): inherits every database-level field.
	eff, err := cp.EffectivePolicies("sales", "a")
	if err != nil {
		t.Fatal(err)
	}
	if eff.RetainSnapshots != 10 || eff.CheckpointEveryVersions != 50 || eff.TriggerBytesWritten != 4096 {
		t.Fatalf("effective a = %+v", eff)
	}
	// Table "b": its own set fields win, unset fields inherit.
	eff, err = cp.EffectivePolicies("sales", "b")
	if err != nil {
		t.Fatal(err)
	}
	if eff.RetainSnapshots != 3 || eff.TriggerEveryCommits != 7 {
		t.Fatalf("effective b set fields = %+v", eff)
	}
	if eff.CheckpointEveryVersions != 50 || eff.TriggerBytesWritten != 4096 {
		t.Fatalf("effective b inherited fields = %+v", eff)
	}

	if _, err := cp.EffectivePolicies("sales", "nope"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestTablePoliciesOverlay(t *testing.T) {
	base := TablePolicies{RetainSnapshots: 20, CheckpointEveryVersions: 100}
	over := TablePolicies{RetainSnapshots: 5, Intermediate: true, TriggerEveryCommits: 2}
	got := base.Overlay(over)
	want := TablePolicies{
		RetainSnapshots: 5, CheckpointEveryVersions: 100,
		Intermediate: true, TriggerEveryCommits: 2,
	}
	if got != want {
		t.Fatalf("overlay = %+v, want %+v", got, want)
	}
}
