package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"autocomp/internal/lst"
	"autocomp/internal/lstlog"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// manifestName is the control-plane manifest file under the store root.
// It is the catalog's durable pointer set: a table exists durably only
// once it appears here, so a crash between a table's first action file
// and the manifest write recovers to a lake without the table.
const manifestName = "_catalog.json"

// logManifest is the serialized control-plane state: databases, quotas,
// policy layers, and the tables whose _delta_log directories Restore
// replays.
type logManifest struct {
	Version   int                `json:"version"`
	Databases []manifestDatabase `json:"databases"`
}

type manifestDatabase struct {
	Name         string          `json:"name"`
	Tenant       string          `json:"tenant,omitempty"`
	QuotaObjects int64           `json:"quota_objects,omitempty"`
	Policies     *TablePolicies  `json:"policies,omitempty"`
	Tables       []manifestTable `json:"tables,omitempty"`
}

type manifestTable struct {
	Name     string         `json:"name"`
	Policies *TablePolicies `json:"policies,omitempty"`
}

// AttachLog wires the durable commit-log store into the control plane:
// every existing table gets a per-table log (bootstrapped with its
// creation action, or a compacted state artifact when it already has
// history), every future CreateTable/DropTable/policy change persists,
// and the manifest is written. From here on the lake survives a process
// kill: Restore rebuilds it from the store root.
func (cp *ControlPlane) AttachLog(store *lstlog.Store) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.log = store
	for db, ts := range cp.tables {
		for name, e := range ts {
			if err := cp.attachTableLogLocked(db, name, e.table); err != nil {
				return err
			}
		}
	}
	return cp.saveManifestLocked()
}

// attachTableLogLocked creates the table's log, bootstraps it when
// empty, and installs the action sink.
func (cp *ControlPlane) attachTableLogLocked(db, name string, t *lst.Table) error {
	tlog, err := cp.log.CreateTableLog(db, name)
	if err != nil {
		return err
	}
	if tlog.NextLSN() == 0 {
		st := t.State()
		if st.Version == 0 && st.WriteCount == 0 && len(st.Meta) == 1 {
			// A fresh table: its whole history is the create action.
			if err := tlog.Append(t.CreateAction()); err != nil {
				return err
			}
		} else {
			// A table with pre-log history: bootstrap the log with a
			// checkpoint action embedding the full state, which Append
			// materializes as a compacted artifact recovery prefers.
			if err := tlog.Append(lst.Action{
				Kind: lst.ActionCheckpoint, Version: st.Version,
				At: cp.clock.Now(), State: st,
			}); err != nil {
				return err
			}
		}
	}
	t.SetActionSink(tlog.Sink())
	return nil
}

// saveManifestLocked writes the control-plane manifest. Caller holds
// cp.mu and has verified cp.log != nil.
func (cp *ControlPlane) saveManifestLocked() error {
	m := logManifest{Version: 1}
	dbNames := make([]string, 0, len(cp.dbs))
	for name := range cp.dbs {
		dbNames = append(dbNames, name)
	}
	sort.Strings(dbNames)
	for _, dbName := range dbNames {
		db := cp.dbs[dbName]
		md := manifestDatabase{Name: db.Name, Tenant: db.Tenant}
		if q, ok := cp.fs.QuotaFor(db.Name); ok {
			md.QuotaObjects = q.Max
		}
		if pol, ok := cp.dbPolicies[db.Name]; ok {
			p := pol
			md.Policies = &p
		}
		tNames := make([]string, 0, len(cp.tables[dbName]))
		for name := range cp.tables[dbName] {
			tNames = append(tNames, name)
		}
		sort.Strings(tNames)
		for _, name := range tNames {
			mt := manifestTable{Name: name}
			if pol := cp.tables[dbName][name].policies; pol != (TablePolicies{}) {
				p := pol
				mt.Policies = &p
			}
			md.Tables = append(md.Tables, mt)
		}
		m.Databases = append(m.Databases, md)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return cp.log.WriteRootFile(manifestName, append(data, '\n'))
}

// persistLocked saves the manifest when a log is attached; callers that
// mutated catalog state (not table state — the per-table logs carry
// that) call this before unlocking.
func (cp *ControlPlane) persistLocked() error {
	if cp.log == nil {
		return nil
	}
	return cp.saveManifestLocked()
}

// Restore rebuilds a control plane from a store root written by a
// previous process: the manifest's databases, quotas, and policy layers
// are recreated, then every manifest table is reopened by replaying its
// commit log into fs. Table directories the manifest does not name are
// ignored — their create never became durable in the catalog. A store
// with no manifest restores to an empty lake. Commit hooks are not
// restored; reattach the changefeed after Restore as at first boot.
func Restore(store *lstlog.Store, fs *storage.NameNode, clock *sim.Clock) (*ControlPlane, error) {
	cp := New(fs, clock)
	cp.log = store
	data, err := store.ReadRootFile(manifestName)
	if errors.Is(err, os.ErrNotExist) {
		return cp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: reading manifest: %w", err)
	}
	var m logManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("catalog: parsing manifest: %w", err)
	}
	for _, md := range m.Databases {
		cp.dbs[md.Name] = &Database{Name: md.Name, Tenant: md.Tenant}
		cp.tables[md.Name] = make(map[string]*entry)
		if md.QuotaObjects > 0 {
			fs.SetQuota(md.Name, md.QuotaObjects)
		}
		if md.Policies != nil {
			cp.dbPolicies[md.Name] = *md.Policies
		}
		for _, mt := range md.Tables {
			t, tlog, err := store.OpenTable(md.Name, mt.Name, fs, clock)
			if err != nil {
				return nil, fmt.Errorf("catalog: restoring %s.%s: %w", md.Name, mt.Name, err)
			}
			t.SetActionSink(tlog.Sink())
			e := &entry{table: t}
			if mt.Policies != nil {
				e.policies = *mt.Policies
			}
			cp.tables[md.Name][mt.Name] = e
		}
	}
	return cp, nil
}
