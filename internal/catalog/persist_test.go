package catalog_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/core"
	"autocomp/internal/lst"
	"autocomp/internal/lstlog"
	"autocomp/internal/policy"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func newEnv() (*storage.NameNode, *sim.Clock) {
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.Config{}, clock, sim.NewRNG(1))
	return fs, clock
}

// buildLake populates cp with two databases, layered policies, and a
// small-file-heavy workload so a decide pass has real candidates.
func buildLake(t *testing.T, cp *catalog.ControlPlane, clock *sim.Clock) {
	t.Helper()
	if _, err := cp.CreateDatabase("sales", "tenant-a", 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CreateDatabase("logs", "tenant-b", 0); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetDatabasePolicies("sales", catalog.TablePolicies{RetainSnapshots: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CreateTable("sales", lst.TableConfig{
		Name: "orders",
		Spec: lst.PartitionSpec{Column: "day", Transform: lst.TransformDay},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CreateTableWithPolicies("sales", lst.TableConfig{Name: "refunds"},
		catalog.TablePolicies{RetainSnapshots: 3, Intermediate: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CreateTable("logs", lst.TableConfig{
		Name: "clicks",
		Spec: lst.PartitionSpec{Column: "day", Transform: lst.TransformDay},
	}); err != nil {
		t.Fatal(err)
	}
	parts := []string{"2024-03-01", "2024-03-02"}
	for i := 0; i < 12; i++ {
		clock.Advance(30 * time.Minute)
		for _, full := range []string{"sales.orders", "logs.clicks"} {
			tbl := mustTable(t, cp, full)
			if _, err := tbl.AppendFiles([]lst.FileSpec{
				{Partition: parts[i%2], SizeBytes: int64(3+i%4) * storage.MB, RowCount: 1000},
				{Partition: parts[i%2], SizeBytes: 5 * storage.MB, RowCount: 1500},
			}); err != nil {
				t.Fatal(err)
			}
		}
		tbl := mustTable(t, cp, "sales.refunds")
		if _, err := tbl.AppendFiles([]lst.FileSpec{
			{SizeBytes: 2 * storage.MB, RowCount: 200},
		}); err != nil {
			t.Fatal(err)
		}
		if i%5 == 4 {
			if _, err := tbl.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func mustTable(t *testing.T, cp *catalog.ControlPlane, full string) *lst.Table {
	t.Helper()
	for _, tbl := range cp.AllTables() {
		if tbl.FullName() == full {
			return tbl
		}
	}
	t.Fatalf("table %s not found", full)
	return nil
}

// lakeStates snapshots every table's full state keyed by name.
func lakeStates(cp *catalog.ControlPlane) map[string]*lst.TableState {
	out := make(map[string]*lst.TableState)
	for _, tbl := range cp.AllTables() {
		out[tbl.FullName()] = tbl.State()
	}
	return out
}

// decide runs a decide-only pipeline over the catalog and returns the
// ranked candidate IDs with scores — the decision surface restart must
// preserve.
func decide(t *testing.T, cp *catalog.ControlPlane, clock *sim.Clock) []string {
	t.Helper()
	spec := &policy.Spec{
		Name:       "persist-parity",
		Generators: []policy.Component{policy.C("hybrid-scope")},
		Traits:     []policy.Component{policy.C("file_count_reduction"), policy.C("compute_cost_gbhr")},
		Objectives: []policy.ObjectiveSpec{
			{Trait: policy.C("file_count_reduction"), Weight: 0.7},
			{Trait: policy.C("compute_cost_gbhr"), Weight: 0.3},
		},
	}
	env := policy.StubEnv()
	env.Now = clock.Now
	comp, err := policy.Compile(spec, env, policy.Bindings{
		Connector: core.CatalogConnector{CP: cp},
		Observer: core.StatsObserver{
			TargetFileSize: env.TargetFileSize,
			Quota:          cp.QuotaUtilization,
			Now:            clock.Now,
		},
		Catalog: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.NewService(comp.Core)
	if err != nil {
		t.Fatal(err)
	}
	d, err := svc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(d.Ranked))
	for _, c := range d.Ranked {
		out = append(out, c.ID())
	}
	return out
}

// TestPersistCatalogRoundTrip builds a logged lake, restores it in a
// fresh process image, and requires identical catalog metadata, table
// states, and decide output.
func TestPersistCatalogRoundTrip(t *testing.T) {
	store, err := lstlog.Open(lstlog.Config{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	fs, clock := newEnv()
	cp := catalog.New(fs, clock)
	if err := cp.AttachLog(store); err != nil {
		t.Fatal(err)
	}
	buildLake(t, cp, clock)
	wantStates := lakeStates(cp)
	wantDecision := decide(t, cp, clock)

	fs2, clock2 := newEnv()
	clock2.Set(clock.Now())
	cp2, err := catalog.Restore(store, fs2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	if got := lakeStates(cp2); !reflect.DeepEqual(wantStates, got) {
		t.Fatalf("restored table states differ\nwant: %+v\ngot:  %+v", wantStates, got)
	}
	if got, _ := cp2.DatabasePolicies("sales"); got.RetainSnapshots != 7 {
		t.Fatalf("database policies lost: %+v", got)
	}
	if got, err := cp2.Policies("sales", "refunds"); err != nil || got.RetainSnapshots != 3 || !got.Intermediate {
		t.Fatalf("table policies lost: %+v (%v)", got, err)
	}
	if got := cp2.QuotaUtilization("sales"); got == 0 {
		t.Fatal("sales quota not restored")
	}
	if got := decide(t, cp2, clock2); !reflect.DeepEqual(wantDecision, got) {
		t.Fatalf("restored lake decides differently\nwant: %v\ngot:  %v", wantDecision, got)
	}

	// The restored catalog keeps logging: further commits then a second
	// restore still round-trip.
	clock2.Advance(time.Hour)
	if _, err := mustTable(t, cp2, "sales.orders").AppendFiles([]lst.FileSpec{
		{Partition: "2024-03-03", SizeBytes: 9 * storage.MB, RowCount: 900},
	}); err != nil {
		t.Fatal(err)
	}
	fs3, clock3 := newEnv()
	clock3.Set(clock2.Now())
	cp3, err := catalog.Restore(store, fs3, clock3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lakeStates(cp2), lakeStates(cp3)) {
		t.Fatal("second restore diverged from live catalog")
	}
}

// TestPersistCatalogAttachWithHistory attaches the log to a lake that
// already has history: the bootstrap artifacts must round-trip it.
func TestPersistCatalogAttachWithHistory(t *testing.T) {
	store, err := lstlog.Open(lstlog.Config{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	fs, clock := newEnv()
	cp := catalog.New(fs, clock)
	buildLake(t, cp, clock) // unlogged history
	if err := cp.AttachLog(store); err != nil {
		t.Fatal(err)
	}
	// Post-attach activity extends the bootstrapped logs.
	clock.Advance(time.Hour)
	if _, err := mustTable(t, cp, "logs.clicks").AppendFiles([]lst.FileSpec{
		{Partition: "2024-03-04", SizeBytes: 4 * storage.MB, RowCount: 400},
	}); err != nil {
		t.Fatal(err)
	}
	want := lakeStates(cp)

	fs2, clock2 := newEnv()
	clock2.Set(clock.Now())
	cp2, err := catalog.Restore(store, fs2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	if got := lakeStates(cp2); !reflect.DeepEqual(want, got) {
		t.Fatalf("bootstrapped lake did not round-trip\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestPersistCatalogPointerCrash simulates a crash in CreateTable's
// durability window: the table's log directory and create action exist
// on disk, but the process died before the manifest named the table.
// Restore must ignore the orphan, and re-creating the table afterwards
// must start clean.
func TestPersistCatalogPointerCrash(t *testing.T) {
	store, err := lstlog.Open(lstlog.Config{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	fs, clock := newEnv()
	cp := catalog.New(fs, clock)
	if err := cp.AttachLog(store); err != nil {
		t.Fatal(err)
	}
	buildLake(t, cp, clock)

	// The crash: a table's create action lands in its log, but the
	// manifest write never happens (built outside the catalog, exactly
	// what the kill window leaves behind).
	orphan, err := lst.NewTable(lst.TableConfig{Database: "sales", Name: "orphan"}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	olog, err := store.CreateTableLog("sales", "orphan")
	if err != nil {
		t.Fatal(err)
	}
	if err := olog.Append(orphan.CreateAction()); err != nil {
		t.Fatal(err)
	}

	fs2, clock2 := newEnv()
	clock2.Set(clock.Now())
	cp2, err := catalog.Restore(store, fs2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp2.Table("sales", "orphan"); !errors.Is(err, catalog.ErrTableNotFound) {
		t.Fatalf("orphan table resurrected: %v", err)
	}
	if cp2.TableCount() != 3 {
		t.Fatalf("table count = %d, want 3", cp2.TableCount())
	}

	// Re-creating the orphaned name starts a fresh table: the debris log
	// is cleared, and the new table round-trips through a restore.
	if _, err := cp2.CreateTable("sales", lst.TableConfig{Name: "orphan"}); err != nil {
		t.Fatal(err)
	}
	if _, err := mustTable(t, cp2, "sales.orphan").AppendFiles([]lst.FileSpec{
		{SizeBytes: 6 * storage.MB, RowCount: 600},
	}); err != nil {
		t.Fatal(err)
	}
	fs3, clock3 := newEnv()
	clock3.Set(clock2.Now())
	cp3, err := catalog.Restore(store, fs3, clock3)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTable(t, cp2, "sales.orphan").State()
	got := mustTable(t, cp3, "sales.orphan").State()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("re-created table did not round-trip\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestPersistCatalogDropTable drops a logged table and requires the
// durable state to forget it.
func TestPersistCatalogDropTable(t *testing.T) {
	store, err := lstlog.Open(lstlog.Config{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	fs, clock := newEnv()
	cp := catalog.New(fs, clock)
	if err := cp.AttachLog(store); err != nil {
		t.Fatal(err)
	}
	buildLake(t, cp, clock)
	if err := cp.DropTable("sales", "refunds"); err != nil {
		t.Fatal(err)
	}

	fs2, clock2 := newEnv()
	clock2.Set(clock.Now())
	cp2, err := catalog.Restore(store, fs2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp2.Table("sales", "refunds"); !errors.Is(err, catalog.ErrTableNotFound) {
		t.Fatalf("dropped table survived restore: %v", err)
	}
	if !reflect.DeepEqual(lakeStates(cp), lakeStates(cp2)) {
		t.Fatal("surviving tables did not round-trip after drop")
	}
}
