// Package catalog implements a control plane for the simulated data lake
// in the mold of LinkedIn's OpenHouse: a declarative catalog of databases
// (tenant namespaces with HDFS object quotas) and log-structured tables,
// plus data services (snapshot retention) that reconcile observed and
// desired state.
//
// AutoComp interfaces with the lake exclusively through this catalog,
// matching the paper's deployment where compaction is an OpenHouse data
// service (§2, §5, Figure 5).
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"autocomp/internal/lst"
	"autocomp/internal/lstlog"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Errors returned by catalog operations.
var (
	ErrDatabaseExists   = errors.New("catalog: database already exists")
	ErrDatabaseNotFound = errors.New("catalog: database not found")
	ErrTableExists      = errors.New("catalog: table already exists")
	ErrTableNotFound    = errors.New("catalog: table not found")
)

// TablePolicies is the declarative per-table maintenance state the control
// plane reconciles.
type TablePolicies struct {
	// RetainSnapshots is how many snapshots retention keeps (min 1).
	RetainSnapshots int
	// CheckpointEveryVersions is how many commits may accumulate before
	// a metadata checkpoint is due; 0 disables checkpoint scheduling for
	// the table.
	CheckpointEveryVersions int64
	// Intermediate marks scratch tables that filters may exclude from
	// compaction (§4.1's usage-aware filtering).
	Intermediate bool

	// TriggerEveryCommits is the incremental observation plane's
	// commit-count trigger for this table: how many commits accumulate
	// before the table enters the dirty set for re-observation. 0 falls
	// back to the feed's default (every commit preserves full-scan
	// decision parity; higher values observe lazily).
	TriggerEveryCommits int64
	// TriggerBytesWritten, when positive, also fires the trigger once
	// this many bytes accumulate since the last observation.
	TriggerBytesWritten int64
}

// DefaultPolicies returns the control plane's default table policies.
func DefaultPolicies() TablePolicies {
	return TablePolicies{RetainSnapshots: 20, CheckpointEveryVersions: 100}
}

// Overlay returns p with o's set fields (positive values; Intermediate
// true) overriding — the field-wise merge the layered policy resolution
// uses, most specific layer last.
func (p TablePolicies) Overlay(o TablePolicies) TablePolicies {
	if o.RetainSnapshots > 0 {
		p.RetainSnapshots = o.RetainSnapshots
	}
	if o.CheckpointEveryVersions > 0 {
		p.CheckpointEveryVersions = o.CheckpointEveryVersions
	}
	if o.Intermediate {
		p.Intermediate = true
	}
	if o.TriggerEveryCommits > 0 {
		p.TriggerEveryCommits = o.TriggerEveryCommits
	}
	if o.TriggerBytesWritten > 0 {
		p.TriggerBytesWritten = o.TriggerBytesWritten
	}
	return p
}

// Database is a tenant namespace holding tables under one storage quota.
type Database struct {
	Name   string
	Tenant string
}

// entry pairs a table with its policies.
type entry struct {
	table    *lst.Table
	policies TablePolicies
}

// ControlPlane is the catalog plus data services.
type ControlPlane struct {
	mu    sync.Mutex
	fs    *storage.NameNode
	clock *sim.Clock
	dbs   map[string]*Database
	// tables is keyed by database name, then table name.
	tables map[string]map[string]*entry
	// dbPolicies holds database-level policy overrides: a layer between
	// fleet-wide defaults and per-table policies that the policy plane's
	// layered resolution consults.
	dbPolicies map[string]TablePolicies
	// commitHook, when set, is installed on every table (existing and
	// future) so the lake publishes one changefeed.
	commitHook lst.CommitHook
	// dropHook, when set, is notified after DropTable removes a table,
	// so changefeed consumers forget it (dirty state, cached stats,
	// retained candidates).
	dropHook func(db, name string)
	// log, when attached (AttachLog/Restore), is the durable commit-log
	// store: table actions stream to per-table _delta_log directories and
	// catalog mutations rewrite the manifest.
	log *lstlog.Store
}

// New returns a control plane over the given storage, driven by clock.
func New(fs *storage.NameNode, clock *sim.Clock) *ControlPlane {
	return &ControlPlane{
		fs:         fs,
		clock:      clock,
		dbs:        make(map[string]*Database),
		tables:     make(map[string]map[string]*entry),
		dbPolicies: make(map[string]TablePolicies),
	}
}

// FS returns the underlying storage layer.
func (cp *ControlPlane) FS() *storage.NameNode { return cp.fs }

// Clock returns the control plane's clock.
func (cp *ControlPlane) Clock() *sim.Clock { return cp.clock }

// CreateDatabase registers a database (tenant namespace). quotaObjects, if
// positive, installs an HDFS namespace quota on the database.
func (cp *ControlPlane) CreateDatabase(name, tenant string, quotaObjects int64) (*Database, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, ok := cp.dbs[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDatabaseExists, name)
	}
	db := &Database{Name: name, Tenant: tenant}
	cp.dbs[name] = db
	cp.tables[name] = make(map[string]*entry)
	if quotaObjects > 0 {
		cp.fs.SetQuota(name, quotaObjects)
	}
	if err := cp.persistLocked(); err != nil {
		return nil, err
	}
	return db, nil
}

// Databases returns registered database names, sorted.
func (cp *ControlPlane) Databases() []string {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]string, 0, len(cp.dbs))
	for name := range cp.dbs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CreateTable creates a table in db with cfg (cfg.Database is overwritten
// with db) and no explicitly set policies: every field is left zero, so
// the table inherits database-level overrides and consumer defaults
// through the layered resolution (EffectivePolicies) instead of pinning
// a frozen copy of DefaultPolicies that would mask later database-wide
// changes.
func (cp *ControlPlane) CreateTable(db string, cfg lst.TableConfig) (*lst.Table, error) {
	return cp.CreateTableWithPolicies(db, cfg, TablePolicies{})
}

// CreateTableWithPolicies creates a table with explicit policies.
func (cp *ControlPlane) CreateTableWithPolicies(db string, cfg lst.TableConfig, pol TablePolicies) (*lst.Table, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ts, ok := cp.tables[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrDatabaseNotFound, db)
	}
	if _, ok := ts[cfg.Name]; ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrTableExists, db, cfg.Name)
	}
	cfg.Database = db
	t, err := lst.NewTable(cfg, cp.fs, cp.clock)
	if err != nil {
		return nil, err
	}
	if cp.commitHook != nil {
		t.SetCommitHook(cp.commitHook)
	}
	ts[cfg.Name] = &entry{table: t, policies: pol}
	if cp.log != nil {
		// Any on-disk directory for a table the manifest does not name is
		// debris from a create that crashed before its manifest write;
		// clear it so the new table starts a fresh log.
		if err := cp.log.RemoveTable(db, cfg.Name); err != nil {
			return nil, err
		}
		// Durability order matters: the table's log (create action) lands
		// before the manifest names the table. A crash in between leaves a
		// directory the manifest does not reference — Restore ignores it,
		// which is the "catalog pointer never moved" recovery contract.
		if err := cp.attachTableLogLocked(db, cfg.Name, t); err != nil {
			return nil, err
		}
		if err := cp.saveManifestLocked(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SetCommitHook installs h on every table in the lake — existing tables
// immediately, future tables at creation — so one changefeed observes
// all commits. The changefeed package's AttachCatalog wires a commit bus
// here.
func (cp *ControlPlane) SetCommitHook(h lst.CommitHook) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.commitHook = h
	for _, ts := range cp.tables {
		for _, e := range ts {
			e.table.SetCommitHook(h)
		}
	}
}

// Table looks up a table.
func (cp *ControlPlane) Table(db, name string) (*lst.Table, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ts, ok := cp.tables[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrDatabaseNotFound, db)
	}
	e, ok := ts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrTableNotFound, db, name)
	}
	return e.table, nil
}

// Policies returns the policies for a table.
func (cp *ControlPlane) Policies(db, name string) (TablePolicies, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ts, ok := cp.tables[db]
	if !ok {
		return TablePolicies{}, fmt.Errorf("%w: %s", ErrDatabaseNotFound, db)
	}
	e, ok := ts[name]
	if !ok {
		return TablePolicies{}, fmt.Errorf("%w: %s.%s", ErrTableNotFound, db, name)
	}
	return e.policies, nil
}

// SetDatabasePolicies installs database-level policy overrides: fields
// set here apply to every table of the database unless the table's own
// policies set them (Overlay semantics).
func (cp *ControlPlane) SetDatabasePolicies(db string, pol TablePolicies) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, ok := cp.dbs[db]; !ok {
		return fmt.Errorf("%w: %s", ErrDatabaseNotFound, db)
	}
	cp.dbPolicies[db] = pol
	return cp.persistLocked()
}

// DatabasePolicies returns the database-level policy overrides, when
// any were installed.
func (cp *ControlPlane) DatabasePolicies(db string) (TablePolicies, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	pol, ok := cp.dbPolicies[db]
	return pol, ok
}

// EffectivePolicies resolves the policies in force for a table:
// database-level overrides first, then the table's own set fields on
// top (most specific wins field-wise). Only operator-set fields appear;
// fields no layer sets stay zero, and consumers apply their own
// defaults (maintenance.CatalogPolicies.Default, changefeed trigger
// defaults, DefaultPolicies for retention).
func (cp *ControlPlane) EffectivePolicies(db, name string) (TablePolicies, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ts, ok := cp.tables[db]
	if !ok {
		return TablePolicies{}, fmt.Errorf("%w: %s", ErrDatabaseNotFound, db)
	}
	e, ok := ts[name]
	if !ok {
		return TablePolicies{}, fmt.Errorf("%w: %s.%s", ErrTableNotFound, db, name)
	}
	return cp.dbPolicies[db].Overlay(e.policies), nil
}

// SetPolicies replaces the policies for a table.
func (cp *ControlPlane) SetPolicies(db, name string, pol TablePolicies) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ts, ok := cp.tables[db]
	if !ok {
		return fmt.Errorf("%w: %s", ErrDatabaseNotFound, db)
	}
	e, ok := ts[name]
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrTableNotFound, db, name)
	}
	e.policies = pol
	return cp.persistLocked()
}

// Tables returns the tables of one database sorted by name.
func (cp *ControlPlane) Tables(db string) ([]*lst.Table, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ts, ok := cp.tables[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrDatabaseNotFound, db)
	}
	out := make([]*lst.Table, 0, len(ts))
	for _, e := range ts {
		out = append(out, e.table)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// AllTables returns every table in the lake, sorted by database then name,
// giving the deterministic iteration order AutoComp's candidate generation
// relies on (NFR2).
func (cp *ControlPlane) AllTables() []*lst.Table {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	var out []*lst.Table
	for _, ts := range cp.tables {
		for _, e := range ts {
			out = append(out, e.table)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// TableCount returns the number of onboarded tables.
func (cp *ControlPlane) TableCount() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	n := 0
	for _, ts := range cp.tables {
		n += len(ts)
	}
	return n
}

// DropTable unregisters a table and deletes all of its storage objects.
// Once the table is unregistered its commit hook is detached (a stale
// handle can no longer publish) and the drop hook, when set, is
// notified — even when a storage deletion fails, so the changefeed
// never keeps a phantom table the catalog no longer knows.
func (cp *ControlPlane) DropTable(db, name string) error {
	dropped, err := cp.dropTable(db, name)
	if dropped == nil {
		return err
	}
	dropped.SetCommitHook(nil)
	dropped.SetActionSink(nil)
	cp.mu.Lock()
	if cp.log != nil {
		if rmErr := cp.log.RemoveTable(db, name); rmErr != nil && err == nil {
			err = rmErr
		}
		if pErr := cp.saveManifestLocked(); pErr != nil && err == nil {
			err = pErr
		}
	}
	hook := cp.dropHook
	cp.mu.Unlock()
	if hook != nil {
		hook(db, name)
	}
	return err
}

// dropTable is the locked body of DropTable. A non-nil table means the
// table was unregistered, even if deleting its storage objects failed
// (the error is returned alongside).
func (cp *ControlPlane) dropTable(db, name string) (*lst.Table, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ts, ok := cp.tables[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrDatabaseNotFound, db)
	}
	e, ok := ts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrTableNotFound, db, name)
	}
	delete(ts, name)
	prefix := fmt.Sprintf("/%s/%s/", db, name)
	var firstErr error
	for _, obj := range cp.fs.List(prefix) {
		if err := cp.fs.Delete(obj.Path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return e.table, firstErr
}

// SetDropHook installs h to be notified after every DropTable. The
// changefeed package's AttachCatalog publishes Dropped events here.
func (cp *ControlPlane) SetDropHook(h func(db, name string)) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.dropHook = h
}

// QuotaUtilization returns Used/Total for a database's namespace quota, or
// 0 when no quota is installed. Feeds the paper's quota-adaptive MOOP
// weight w1 = 0.5·(1 + Used/Total) (§7).
func (cp *ControlPlane) QuotaUtilization(db string) float64 {
	q, ok := cp.fs.QuotaFor(db)
	if !ok {
		return 0
	}
	return q.Utilization()
}

// RunRetention is the data service that reconciles snapshot retention
// policies across the lake; it returns the number of storage objects
// reclaimed. Retention targets resolve through the policy layers:
// DefaultPolicies, database-level overrides, then the table's own set
// fields.
func (cp *ControlPlane) RunRetention() (int, error) {
	cp.mu.Lock()
	type job struct {
		table *lst.Table
		keep  int
	}
	jobs := make([]job, 0, cp.TableCountLocked())
	for db, ts := range cp.tables {
		for _, e := range ts {
			pol := DefaultPolicies().Overlay(cp.dbPolicies[db]).Overlay(e.policies)
			jobs = append(jobs, job{table: e.table, keep: pol.RetainSnapshots})
		}
	}
	cp.mu.Unlock()

	total := 0
	for _, j := range jobs {
		if j.keep < 1 {
			j.keep = 1
		}
		n, err := j.table.ExpireSnapshots(j.keep)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// TableCountLocked returns the table count; caller must hold cp.mu.
func (cp *ControlPlane) TableCountLocked() int {
	n := 0
	for _, ts := range cp.tables {
		n += len(ts)
	}
	return n
}

// TableAge returns how long ago the table was created.
func (cp *ControlPlane) TableAge(t *lst.Table) time.Duration {
	return cp.clock.Now() - t.Created()
}
