package lstlog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

const logDirName = "_delta_log"

var (
	actionFileRe    = regexp.MustCompile(`^(\d{20})\.json$`)
	compactedFileRe = regexp.MustCompile(`^(\d{20})\.(\d{20})\.compacted\.json$`)
)

// TableLog appends a table's actions to its _delta_log directory: one
// %020d.json file per log sequence number, plus a compacted artifact
// whenever the table checkpoints its metadata. Safe for concurrent use.
type TableLog struct {
	mu    sync.Mutex
	dir   string
	fsync bool
	next  int64
}

// compactedArtifact is the payload of a NNNN.NNNN.compacted.json file:
// the complete table state as of the named LSN, so recovery can skip
// replaying everything before it.
type compactedArtifact struct {
	LSN   int64           `json:"lsn"`
	State *lst.TableState `json:"state"`
}

// Dir returns the log directory.
func (l *TableLog) Dir() string { return l.dir }

// NextLSN returns the LSN the next appended action will receive.
func (l *TableLog) NextLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Sink returns the lst.ActionSink that appends to this log — attach it
// with Table.SetActionSink.
func (l *TableLog) Sink() lst.ActionSink {
	return func(a lst.Action) error { return l.Append(a) }
}

// Append durably records one action at the next LSN. Checkpoint actions
// additionally materialize their embedded table state as a compacted
// artifact covering the log up to this LSN.
func (l *TableLog) Append(a lst.Action) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.next
	data, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("lstlog: encoding action: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(l.dir, actionFileName(lsn)), append(data, '\n'), l.fsync); err != nil {
		return fmt.Errorf("lstlog: appending lsn %d: %w", lsn, err)
	}
	l.next = lsn + 1
	if a.Kind == lst.ActionCheckpoint && a.State != nil {
		art := compactedArtifact{LSN: lsn, State: a.State}
		data, err := json.Marshal(art)
		if err != nil {
			return fmt.Errorf("lstlog: encoding compacted artifact: %w", err)
		}
		name := compactedFileName(0, lsn)
		if err := writeFileAtomic(filepath.Join(l.dir, name), append(data, '\n'), l.fsync); err != nil {
			return fmt.Errorf("lstlog: writing %s: %w", name, err)
		}
	}
	return nil
}

func actionFileName(lsn int64) string {
	return fmt.Sprintf("%020d.json", lsn)
}

func compactedFileName(start, end int64) string {
	return fmt.Sprintf("%020d.%020d.compacted.json", start, end)
}

// scanNext returns one past the highest contiguous LSN present,
// starting from 0. Files after a gap are unreachable by replay and are
// ignored (a fresh process appends over the gap's position).
func (l *TableLog) scanNext() (int64, error) {
	present := map[int64]bool{}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		if m := actionFileRe.FindStringSubmatch(e.Name()); m != nil {
			n, err := strconv.ParseInt(m[1], 10, 64)
			if err == nil {
				present[n] = true
			}
		}
	}
	var next int64
	for present[next] {
		next++
	}
	return next, nil
}

// OpenTable reconstructs a table from its persisted directory (the
// table dir containing _delta_log, or the _delta_log directory itself),
// recreating its storage objects in fs. Recovery prefers the newest
// parseable compacted artifact and replays only the action tail after
// it; a missing or corrupt artifact falls back to the next older one
// and finally to a full replay from LSN 0 (action files are never
// pruned). Replay stops at the first missing or torn action file — the
// crash signature — so the table resumes from its last durable version.
// The returned TableLog appends after the last applied LSN; attach its
// Sink to the table to continue logging.
func OpenTable(dir string, fs *storage.NameNode, clock *sim.Clock) (*lst.Table, *TableLog, error) {
	return openTable(dir, fs, clock, true)
}

// OpenTableTail is OpenTable with compacted artifacts ignored: a forced
// full-tail replay from LSN 0. It exists for the cold-start recovery
// benchmark, which measures what checkpointing saves.
func OpenTableTail(dir string, fs *storage.NameNode, clock *sim.Clock) (*lst.Table, *TableLog, error) {
	return openTable(dir, fs, clock, false)
}

func openTable(dir string, fs *storage.NameNode, clock *sim.Clock, useCompacted bool) (*lst.Table, *TableLog, error) {
	logDir := dir
	if filepath.Base(dir) != logDirName {
		logDir = filepath.Join(dir, logDirName)
	}
	entries, err := os.ReadDir(logDir)
	if err != nil {
		return nil, nil, fmt.Errorf("lstlog: %w", err)
	}

	// Newest-first list of compacted artifacts by covered end LSN.
	type artifact struct {
		name string
		end  int64
	}
	var artifacts []artifact
	for _, e := range entries {
		if m := compactedFileRe.FindStringSubmatch(e.Name()); m != nil {
			end, err := strconv.ParseInt(m[2], 10, 64)
			if err == nil {
				artifacts = append(artifacts, artifact{name: e.Name(), end: end})
			}
		}
	}
	sort.Slice(artifacts, func(i, j int) bool { return artifacts[i].end > artifacts[j].end })

	var table *lst.Table
	var start int64
	if useCompacted {
		for _, art := range artifacts {
			data, err := os.ReadFile(filepath.Join(logDir, art.name))
			if err != nil {
				continue
			}
			var ca compactedArtifact
			if err := json.Unmarshal(data, &ca); err != nil || ca.State == nil {
				// A torn artifact is recoverable: older artifacts and the
				// full action tail still describe the table.
				continue
			}
			t, err := lst.FromState(ca.State, fs, clock)
			if err != nil {
				return nil, nil, fmt.Errorf("lstlog: restoring %s: %w", art.name, err)
			}
			table = t
			start = ca.LSN + 1
			break
		}
	}

	// Replay the action tail. The first missing or unparseable file ends
	// the durable log; anything after it is unreachable.
	last := start - 1
	for lsn := start; ; lsn++ {
		data, err := os.ReadFile(filepath.Join(logDir, actionFileName(lsn)))
		if errors.Is(err, os.ErrNotExist) {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("lstlog: reading lsn %d: %w", lsn, err)
		}
		var a lst.Action
		if err := json.Unmarshal(data, &a); err != nil {
			break // torn tail write: the action never became durable
		}
		if table == nil {
			switch {
			case a.Kind == lst.ActionCreate:
				t, err := lst.ReplayCreate(a, fs, clock)
				if err != nil {
					return nil, nil, err
				}
				table = t
			case a.Kind == lst.ActionCheckpoint && a.State != nil:
				// A bootstrap record: a table attached to the log with
				// pre-log history starts with a state-bearing checkpoint
				// instead of a create action.
				t, err := lst.FromState(a.State, fs, clock)
				if err != nil {
					return nil, nil, fmt.Errorf("lstlog: restoring bootstrap lsn %d: %w", lsn, err)
				}
				table = t
			default:
				return nil, nil, fmt.Errorf("lstlog: log starts with %q, want %q", a.Kind, lst.ActionCreate)
			}
		} else if err := table.Apply(a); err != nil {
			return nil, nil, fmt.Errorf("lstlog: applying lsn %d: %w", lsn, err)
		}
		last = lsn
	}
	if table == nil {
		return nil, nil, fmt.Errorf("lstlog: %s holds no replayable log", logDir)
	}
	// Note the log resumes at last+1 even when later (post-gap or torn)
	// files exist on disk: they were never durable, and the atomic
	// rename on append simply replaces them.
	return table, &TableLog{dir: logDir, next: last + 1}, nil
}
