package lstlog

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// newEnv returns a fresh simulated namespace + clock pair.
func newEnv() (*storage.NameNode, *sim.Clock) {
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.Config{}, clock, sim.NewRNG(1))
	return fs, clock
}

// buildLogged creates a table with a commit log under dir and drives
// steps workload steps against it: appends every step, an overwrite
// every 7th, snapshot expiry every 11th, a manifest rewrite every 13th,
// and a metadata checkpoint every 17th — enough to log every action
// kind. It returns the live table.
func buildLogged(t *testing.T, store *Store, fs *storage.NameNode, clock *sim.Clock, steps int) *lst.Table {
	t.Helper()
	tbl, err := lst.NewTable(lst.TableConfig{
		Database: "db", Name: "events",
		Spec: lst.PartitionSpec{Column: "day", Transform: lst.TransformDay},
	}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	log, err := store.CreateTableLog("db", "events")
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(tbl.CreateAction()); err != nil {
		t.Fatal(err)
	}
	tbl.SetActionSink(log.Sink())
	driveSteps(t, tbl, clock, 0, steps)
	return tbl
}

// buildUnlogged replays the same workload without any log attached —
// the unharmed replica the recovered table must match.
func buildUnlogged(t *testing.T, fs *storage.NameNode, clock *sim.Clock, steps int) *lst.Table {
	t.Helper()
	tbl, err := lst.NewTable(lst.TableConfig{
		Database: "db", Name: "events",
		Spec: lst.PartitionSpec{Column: "day", Transform: lst.TransformDay},
	}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, tbl, clock, 0, steps)
	return tbl
}

func driveSteps(t *testing.T, tbl *lst.Table, clock *sim.Clock, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		clock.Advance(time.Minute)
		part := []string{"2024-01-01", "2024-01-02", "2024-01-03"}[i%3]
		if _, err := tbl.AppendFiles([]lst.FileSpec{
			{Partition: part, SizeBytes: int64(4+i%5) * storage.MB, RowCount: int64(1000 + i)},
			{Partition: part, SizeBytes: 2 * storage.MB, RowCount: 500},
		}); err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			if _, err := tbl.OverwritePartition(part, []lst.FileSpec{
				{Partition: part, SizeBytes: 96 * storage.MB, RowCount: 40_000},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if i%11 == 10 {
			if _, err := tbl.ExpireSnapshots(5); err != nil {
				t.Fatal(err)
			}
		}
		if i%13 == 12 {
			if _, err := tbl.RewriteManifests(); err != nil {
				t.Fatal(err)
			}
		}
		if i%17 == 16 {
			if _, err := tbl.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func mustEqualStates(t *testing.T, want, got *lst.TableState, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: replayed state differs from original\nwant: %+v\ngot:  %+v", label, want, got)
	}
}

// TestReplayRoundTrip drives a logged workload, reopens the directory
// in a fresh process image (new namespace, new clock), and requires
// byte-identical table state from both the artifact-first recovery path
// and the forced full-tail replay; the reopened table must then accept
// further logged commits that keep it in lockstep with the original.
func TestReplayRoundTrip(t *testing.T) {
	root := t.TempDir()
	store, err := Open(Config{Root: root, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fs, clock := newEnv()
	tbl := buildLogged(t, store, fs, clock, 40)
	want := tbl.State()

	fs2, clock2 := newEnv()
	clock2.Set(clock.Now())
	got, log2, err := store.OpenTable("db", "events", fs2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStates(t, want, got.State(), "artifact recovery")

	fs3, clock3 := newEnv()
	clock3.Set(clock.Now())
	tail, _, err := OpenTableTail(store.TableDir("db", "events"), fs3, clock3)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStates(t, want, tail.State(), "full-tail recovery")

	// The reopened table continues the log where the original stood.
	got.SetActionSink(log2.Sink())
	driveSteps(t, tbl, clock, 40, 45)
	driveSteps(t, got, clock2, 40, 45)
	mustEqualStates(t, tbl.State(), got.State(), "post-recovery commits")
}

// TestReplayTruncatedTail tears the last action file mid-write (the
// crash signature) and requires recovery to the last durable version:
// the state an unharmed replica reaches by never running the torn
// commit.
func TestReplayTruncatedTail(t *testing.T) {
	root := t.TempDir()
	store, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	fs, clock := newEnv()
	tbl := buildLogged(t, store, fs, clock, 20)
	want := tbl.State()

	// The unharmed replica: same workload, final commit never run.
	fsRef, clockRef := newEnv()
	ref := buildUnlogged(t, fsRef, clockRef, 20)
	mustEqualStates(t, want, ref.State(), "replica parity")

	// One more commit lands, then its action file is torn mid-write.
	clock.Advance(time.Minute)
	if _, err := tbl.AppendFiles([]lst.FileSpec{{Partition: "2024-01-09", SizeBytes: 8 * storage.MB, RowCount: 100}}); err != nil {
		t.Fatal(err)
	}
	logDir := filepath.Join(store.TableDir("db", "events"), "_delta_log")
	entries, err := os.ReadDir(logDir)
	if err != nil {
		t.Fatal(err)
	}
	lastAction := ""
	for _, e := range entries {
		if actionFileRe.MatchString(e.Name()) && e.Name() > lastAction {
			lastAction = e.Name()
		}
	}
	data, err := os.ReadFile(filepath.Join(logDir, lastAction))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(logDir, lastAction), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	fs2, clock2 := newEnv()
	clock2.Set(clock.Now())
	got, log2, err := OpenTable(store.TableDir("db", "events"), fs2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStates(t, want, got.State(), "truncated tail")
	// The torn LSN is re-appendable: recovery positions the log at it.
	if gotName := actionFileName(log2.NextLSN()); gotName != lastAction {
		t.Fatalf("log resumed at %s, want %s", gotName, lastAction)
	}
}

// TestReplayMissingCompacted deletes the compacted artifact newer
// versions reference and requires recovery to fall back to a full-tail
// replay with identical results.
func TestReplayMissingCompacted(t *testing.T) {
	root := t.TempDir()
	store, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	fs, clock := newEnv()
	tbl := buildLogged(t, store, fs, clock, 40)
	want := tbl.State()

	logDir := filepath.Join(store.TableDir("db", "events"), "_delta_log")
	entries, err := os.ReadDir(logDir)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, e := range entries {
		if compactedFileRe.MatchString(e.Name()) {
			if err := os.Remove(filepath.Join(logDir, e.Name())); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("workload produced no compacted artifact; lengthen it")
	}

	fs2, clock2 := newEnv()
	clock2.Set(clock.Now())
	got, _, err := OpenTable(store.TableDir("db", "events"), fs2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStates(t, want, got.State(), "missing compacted artifact")
}

// TestReplayCorruptCompacted truncates the newest compacted artifact;
// recovery must fall back (older artifact or full tail) and still
// reconstruct identical state.
func TestReplayCorruptCompacted(t *testing.T) {
	root := t.TempDir()
	store, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	fs, clock := newEnv()
	tbl := buildLogged(t, store, fs, clock, 40)
	want := tbl.State()

	logDir := filepath.Join(store.TableDir("db", "events"), "_delta_log")
	entries, err := os.ReadDir(logDir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if compactedFileRe.MatchString(e.Name()) && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("workload produced no compacted artifact; lengthen it")
	}
	data, err := os.ReadFile(filepath.Join(logDir, newest))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(logDir, newest), data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	fs2, clock2 := newEnv()
	clock2.Set(clock.Now())
	got, _, err := OpenTable(store.TableDir("db", "events"), fs2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStates(t, want, got.State(), "corrupt compacted artifact")
}
