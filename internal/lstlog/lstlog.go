// Package lstlog is the durable commit-log storage backend for
// internal/lst, in the style of delta-rs's _delta_log: every committed
// table version appends one JSON action file under the table's
// _delta_log/ directory, metadata checkpoints additionally emit a
// NNNN.NNNN.compacted.json artifact embedding the full table state, and
// OpenTable reconstructs a byte-identical table by replaying the log —
// preferring the newest parseable compacted artifact, then applying the
// version tail.
//
// Layout under a store root:
//
//	<root>/_catalog.json                          control-plane manifest
//	<root>/<db>/<table>/_delta_log/%020d.json     one action per LSN
//	<root>/<db>/<table>/_delta_log/%020d.%020d.compacted.json
//
// Action files are written atomically (temp file + rename); with fsync
// policy "always" every write is synced to disk before the rename and
// the directory is synced after it. A torn or missing tail file is the
// crash signature recovery expects: replay stops at the first gap and
// the table resumes from its last durable version. docs/storage.md
// documents the schema and the recovery algorithm.
package lstlog

import (
	"fmt"
	"os"
	"path/filepath"

	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Fsync policies.
const (
	// FsyncAlways syncs every action file and its directory.
	FsyncAlways = "always"
	// FsyncNone leaves durability to the OS page cache (the default).
	FsyncNone = "none"
)

// Config describes a store.
type Config struct {
	// Root is the directory holding the persisted lake.
	Root string
	// Fsync is "always" or "none" (empty means "none").
	Fsync string
}

// Store is a rooted on-disk lake: a directory of per-table commit logs
// plus the control-plane manifest.
type Store struct {
	root  string
	fsync bool
}

// Open validates cfg, creates the root directory if needed, and returns
// the store.
func Open(cfg Config) (*Store, error) {
	if cfg.Root == "" {
		return nil, fmt.Errorf("lstlog: store requires a root directory")
	}
	switch cfg.Fsync {
	case "", FsyncNone:
	case FsyncAlways:
	default:
		return nil, fmt.Errorf("lstlog: unknown fsync policy %q (have: %q, %q)", cfg.Fsync, FsyncAlways, FsyncNone)
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, fmt.Errorf("lstlog: %w", err)
	}
	return &Store{root: cfg.Root, fsync: cfg.Fsync == FsyncAlways}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// TableDir returns the directory of one table's persisted state.
func (s *Store) TableDir(db, name string) string {
	return filepath.Join(s.root, db, name)
}

// CreateTableLog creates (or reopens) the table's _delta_log directory
// and returns a log positioned to append after the existing entries.
func (s *Store) CreateTableLog(db, name string) (*TableLog, error) {
	dir := filepath.Join(s.TableDir(db, name), logDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lstlog: %w", err)
	}
	l := &TableLog{dir: dir, fsync: s.fsync}
	next, err := l.scanNext()
	if err != nil {
		return nil, err
	}
	l.next = next
	return l, nil
}

// OpenTable reconstructs one of the store's tables (see the package
// OpenTable), returning a log that appends under the store's fsync
// policy.
func (s *Store) OpenTable(db, name string, fs *storage.NameNode, clock *sim.Clock) (*lst.Table, *TableLog, error) {
	t, l, err := openTable(s.TableDir(db, name), fs, clock, true)
	if err != nil {
		return nil, nil, err
	}
	l.fsync = s.fsync
	return t, l, nil
}

// RemoveTable deletes the table's persisted directory (the durable
// counterpart of a catalog drop).
func (s *Store) RemoveTable(db, name string) error {
	return os.RemoveAll(s.TableDir(db, name))
}

// WriteRootFile atomically writes a file directly under the store root
// (the control plane keeps its manifest here). The write obeys the
// store's fsync policy.
func (s *Store) WriteRootFile(name string, data []byte) error {
	return writeFileAtomic(filepath.Join(s.root, name), data, s.fsync)
}

// ReadRootFile reads a file under the store root.
func (s *Store) ReadRootFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.root, name))
}

// WriteSubFile atomically writes a file at a slash-relative path under
// the store root, creating parent directories. Hosts persist their own
// control state (e.g. tenant fleet snapshots) alongside the lake with
// it, under the store's fsync policy.
func (s *Store) WriteSubFile(rel string, data []byte) error {
	path := filepath.Join(s.root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("lstlog: %w", err)
	}
	return writeFileAtomic(path, data, s.fsync)
}

// ReadSubFile reads a slash-relative file under the store root.
func (s *Store) ReadSubFile(rel string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.root, filepath.FromSlash(rel)))
}

// writeFileAtomic writes data to path via a temp file and rename, so a
// crash mid-write never leaves a half-written file at path. With sync
// set, the file is fsynced before the rename and the directory after.
func writeFileAtomic(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if sync {
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync()
			_ = d.Close()
		}
	}
	return nil
}
