package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramAdd(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, v := range []int64{1, 5, 50, 500, 5000} {
		h.Add(v)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBoundaryValueGoesUp(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.Add(10) // not < 10, lands in overflow
	if h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestHistogramAddCounts(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.AddCounts([]int64{3, 4})
	if h.Counts[0] != 3 || h.Counts[1] != 4 {
		t.Fatalf("counts = %v", h.Counts)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	h.AddCounts([]int64{1})
}

func TestFractionBelow(t *testing.T) {
	h := NewHistogram([]int64{128, 512})
	h.AddCounts([]int64{83, 10, 7})
	if got := h.FractionBelow(128); math.Abs(got-0.83) > 1e-9 {
		t.Fatalf("FractionBelow(128) = %v", got)
	}
	if got := h.FractionBelow(512); math.Abs(got-0.93) > 1e-9 {
		t.Fatalf("FractionBelow(512) = %v", got)
	}
}

func TestFractionBelowEmpty(t *testing.T) {
	h := NewHistogram([]int64{128})
	if h.FractionBelow(128) != 0 {
		t.Fatal("empty histogram fraction != 0")
	}
}

func TestFractionBelowUnknownBoundPanics(t *testing.T) {
	h := NewHistogram([]int64{128})
	h.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown bound did not panic")
		}
	}()
	h.FractionBelow(64)
}

func TestBucketLabels(t *testing.T) {
	h := NewHistogram([]int64{128 << 20, 512 << 20})
	labels := h.BucketLabels(FormatBytes)
	want := []string{"<128MB", "[128MB,512MB)", ">=512MB"}
	for i, w := range want {
		if labels[i] != w {
			t.Fatalf("labels = %v", labels)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		1 << 10:   "1KB",
		128 << 20: "128MB",
		1 << 30:   "1GB",
		2 << 40:   "2TB",
		1500:      "1500B",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTimeSeriesBasics(t *testing.T) {
	s := NewTimeSeries("files")
	s.Add(time.Hour, 10)
	s.Add(2*time.Hour, 20)
	if s.Len() != 2 || s.Last() != 20 {
		t.Fatalf("series = %+v", s)
	}
	vals := s.Values()
	if vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("values = %v", vals)
	}
	if (&TimeSeries{}).Last() != 0 {
		t.Fatal("empty Last != 0")
	}
}

func TestNormalized(t *testing.T) {
	s := NewTimeSeries("x")
	s.Add(0, 5)
	s.Add(1, -10)
	n := s.Normalized()
	if n.Points[0].V != 0.5 || n.Points[1].V != -1 {
		t.Fatalf("normalized = %+v", n.Points)
	}
	// Original untouched.
	if s.Points[0].V != 5 {
		t.Fatal("Normalized mutated source")
	}
	z := NewTimeSeries("zero")
	z.Add(0, 0)
	if z.Normalized().Points[0].V != 0 {
		t.Fatal("all-zero normalize changed values")
	}
}

func TestSmoothedEMA(t *testing.T) {
	s := NewTimeSeries("x")
	for _, v := range []float64{0, 10, 0, 10} {
		s.Add(0, v)
	}
	sm := s.SmoothedEMA(0.5)
	want := []float64{0, 5, 2.5, 6.25}
	for i, w := range want {
		if math.Abs(sm.Points[i].V-w) > 1e-9 {
			t.Fatalf("ema[%d] = %v, want %v", i, sm.Points[i].V, w)
		}
	}
}

func TestSmoothedEMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha=0 did not panic")
		}
	}()
	NewTimeSeries("x").SmoothedEMA(0)
}

func TestCandlestick(t *testing.T) {
	c := NewCandlestick([]float64{5, 1, 3, 2, 4})
	if c.Min != 1 || c.Max != 5 || c.Median != 3 || c.N != 5 {
		t.Fatalf("candlestick = %+v", c)
	}
	if c.P25 != 2 || c.P75 != 4 {
		t.Fatalf("quartiles = %+v", c)
	}
}

func TestCandlestickEmptyAndSingle(t *testing.T) {
	if c := NewCandlestick(nil); c.N != 0 || c.Max != 0 {
		t.Fatalf("empty candlestick = %+v", c)
	}
	c := NewCandlestick([]float64{7})
	if c.Min != 7 || c.Median != 7 || c.Max != 7 {
		t.Fatalf("single candlestick = %+v", c)
	}
}

func TestCandlestickDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCandlestick(in)
	if !sort.Float64sAreSorted(in) && (in[0] != 3 || in[1] != 1) {
		t.Fatalf("input mutated: %v", in)
	}
	if in[0] != 3 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-9 {
		t.Fatalf("stddev = %v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/short stats not zero")
	}
}

func TestMinMaxNormalizeRangeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		out := MinMaxNormalize(xs)
		if len(out) != len(xs) {
			return false
		}
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxNormalizeExtremes(t *testing.T) {
	out := MinMaxNormalize([]float64{10, 20, 30})
	if out[0] != 0 || out[2] != 1 || out[1] != 0.5 {
		t.Fatalf("normalize = %v", out)
	}
	// Constant input maps to zeros.
	for _, v := range MinMaxNormalize([]float64{4, 4, 4}) {
		if v != 0 {
			t.Fatal("constant input must normalize to 0")
		}
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"Hour", "Conflicts"}, [][]string{
		{"1", "23"},
		{"2", "0"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Hour") || !strings.Contains(lines[0], "Conflicts") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestQuantileSortedInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if q := quantileSorted(s, 0.25); q != 2.5 {
		t.Fatalf("q25 = %v", q)
	}
	if q := quantileSorted([]float64{7}, 0.9); q != 7 {
		t.Fatalf("single-element quantile = %v", q)
	}
}
