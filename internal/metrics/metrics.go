// Package metrics provides the reporting primitives the experiments use to
// render results in the shape of the paper's tables and figures: size
// histograms (Figures 1–2), time series with normalization and smoothing
// (Figures 10–11), candlestick summaries of latency distributions
// (Figure 8), and a plain-text table renderer.
//
// It is the offline, after-the-run half of the observability story. The
// runtime half is internal/telemetry: the Prometheus-style registry and
// decision-trace stream a running daemon exports while it works (see
// docs/observability.md). benchrunner renders with this package;
// autocompd exposes the other.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram counts values into buckets defined by ascending upper bounds;
// values >= the last bound land in the overflow bucket.
type Histogram struct {
	Bounds []int64
	Counts []int64
}

// NewHistogram returns a histogram over the given ascending bounds.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{Bounds: b, Counts: make([]int64, len(bounds)+1)}
}

// Add counts one observation of v.
func (h *Histogram) Add(v int64) {
	for i, b := range h.Bounds {
		if v < b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// AddCounts merges pre-bucketed counts (e.g. from storage.SizeHistogram);
// it panics when lengths mismatch.
func (h *Histogram) AddCounts(counts []int64) {
	if len(counts) != len(h.Counts) {
		panic(fmt.Sprintf("metrics: AddCounts length %d != %d", len(counts), len(h.Counts)))
	}
	for i, c := range counts {
		h.Counts[i] += c
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// FractionBelow returns the fraction of observations below bound, which
// must be one of the histogram bounds; it returns 0 for an empty
// histogram and panics on an unknown bound.
func (h *Histogram) FractionBelow(bound int64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var below int64
	for i, b := range h.Bounds {
		if b > bound {
			break
		}
		below += h.Counts[i]
		if b == bound {
			return float64(below) / float64(total)
		}
	}
	panic(fmt.Sprintf("metrics: FractionBelow(%d): not a bucket bound", bound))
}

// BucketLabels renders human-readable labels like "<128MB", ">=1GB".
func (h *Histogram) BucketLabels(format func(int64) string) []string {
	labels := make([]string, len(h.Counts))
	for i := range h.Counts {
		switch {
		case i == 0:
			labels[i] = "<" + format(h.Bounds[0])
		case i == len(h.Bounds):
			labels[i] = ">=" + format(h.Bounds[len(h.Bounds)-1])
		default:
			labels[i] = fmt.Sprintf("[%s,%s)", format(h.Bounds[i-1]), format(h.Bounds[i]))
		}
	}
	return labels
}

// FormatBytes renders a byte count using binary units ("512MB", "1GB").
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<40 && b%(1<<40) == 0:
		return fmt.Sprintf("%dTB", b>>40)
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Point is one time-series observation at a virtual timestamp.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries is an append-only series of observations.
type TimeSeries struct {
	Name   string
	Points []Point
}

// NewTimeSeries returns an empty named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Add appends an observation.
func (s *TimeSeries) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of points.
func (s *TimeSeries) Len() int { return len(s.Points) }

// Values returns the values in order.
func (s *TimeSeries) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Last returns the most recent value, or 0 for an empty series.
func (s *TimeSeries) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Normalized returns a copy of the series scaled so its maximum absolute
// value is 1 (the paper's figures plot "Normalized Value"). An all-zero
// series is returned unchanged.
func (s *TimeSeries) Normalized() *TimeSeries {
	max := 0.0
	for _, p := range s.Points {
		if a := math.Abs(p.V); a > max {
			max = a
		}
	}
	out := &TimeSeries{Name: s.Name, Points: make([]Point, len(s.Points))}
	copy(out.Points, s.Points)
	if max == 0 {
		return out
	}
	for i := range out.Points {
		out.Points[i].V /= max
	}
	return out
}

// SmoothedEMA returns a copy smoothed with an exponential moving average
// (Figure 11a plots "Smoothed Normalized Value"). alpha in (0,1]; higher
// tracks the raw series more closely.
func (s *TimeSeries) SmoothedEMA(alpha float64) *TimeSeries {
	if alpha <= 0 || alpha > 1 {
		panic("metrics: SmoothedEMA alpha must be in (0,1]")
	}
	out := &TimeSeries{Name: s.Name, Points: make([]Point, len(s.Points))}
	var ema float64
	for i, p := range s.Points {
		if i == 0 {
			ema = p.V
		} else {
			ema = alpha*p.V + (1-alpha)*ema
		}
		out.Points[i] = Point{T: p.T, V: ema}
	}
	return out
}

// Candlestick is the five-number summary the paper plots per hour in
// Figure 8: min, 25th percentile, median, 75th percentile, max.
type Candlestick struct {
	Min, P25, Median, P75, Max float64
	N                          int
}

// NewCandlestick summarizes samples; it returns a zero Candlestick for an
// empty input.
func NewCandlestick(samples []float64) Candlestick {
	if len(samples) == 0 {
		return Candlestick{}
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return Candlestick{
		Min:    s[0],
		P25:    quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.50),
		P75:    quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		N:      len(s),
	}
}

// quantileSorted returns the q-quantile of an ascending slice using linear
// interpolation.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MinMaxNormalize maps xs onto [0,1] with min-max scaling, the trait
// normalization from the paper's §4.3. A constant slice maps to all
// zeros (the paper's formula is undefined there; zero keeps scoring
// deterministic and neutral).
func MinMaxNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max == min {
		return out
	}
	// Compute with halved operands so that max-min cannot overflow for
	// extreme inputs; the ratio is unchanged.
	span := max/2 - min/2
	for i, x := range xs {
		v := (x/2 - min/2) / span
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

// RenderTable formats headers and rows as an aligned plain-text table,
// used by the benchmark harness to print each paper table/figure.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
