package scenario

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"autocomp/internal/telemetry"
)

// TestTelemetryScrapeDoesNotPerturbGoldenTraces is the passivity
// acceptance check for the runtime telemetry plane: a scenario run with
// a scraper hammering the default registry and tracer the whole time
// must still produce the committed golden trace byte for byte. If
// instrumentation ever takes a decision-path dependency — draws from a
// component RNG stream, reorders map iteration the pipeline consumes,
// feeds a recorded value back into a decision — this diverges.
func TestTelemetryScrapeDoesNotPerturbGoldenTraces(t *testing.T) {
	for _, name := range []string{"steady-state", "hot-partition-skew", "policy-reload"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := LoadFile(filepath.Join(scenariosDir(), name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = telemetry.Default().Render()
						_ = telemetry.DefaultTracer().Recent(8)
						_, _ = telemetry.DefaultTracer().Last()
					}
				}
			}()
			tr, err := Run(s)
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("missing golden trace: %v", err)
			}
			if diff := DiffTraces(want, tr.Marshal()); diff != nil {
				t.Fatalf("instrumented run diverged from golden %s:\n%s", name, joinLines(diff))
			}
		})
	}
}
