package scenario

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"autocomp/internal/policy"
	"autocomp/internal/telemetry"
)

// latencyFamilies are the metric families stamped from a clock: before
// the virtual-clock fix they recorded host wall time and two same-seed
// runs produced different snapshots.
var latencyFamilies = []string{
	"autocomp_core_decide_latency_seconds",
	"autocomp_decideshard_shard_seconds",
	"autocomp_decideshard_merge_seconds",
}

// latencySnapshot reads the current value of every latency-family
// series from the process-wide registry.
func latencySnapshot(t *testing.T) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(telemetry.Default().Render(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, fam := range latencyFamilies {
			if !strings.HasPrefix(line, fam) {
				continue
			}
			i := strings.LastIndexByte(line, ' ')
			v, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			out[line[:i]] = v
		}
	}
	return out
}

// delta subtracts the before snapshot from the after snapshot.
func delta(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}

// TestPersistLatencyMetricsDeterministic pins the virtual-time metrics
// fix: two same-seed scenario runs — serial decide latency and the
// sharded decide plane's per-shard timings both exercised — must move
// every latency-family series by exactly the same amount. Under the
// old wall-clock stamps the histogram sums carried host scheduling
// noise and no two runs matched.
func TestPersistLatencyMetricsDeterministic(t *testing.T) {
	ps := policy.DefaultSpec()
	ps.Execution.DecideShards = 4
	ps.Execution.DecideWorkers = 2
	spec := func() *Spec {
		return &Spec{
			Name:   "latency-parity",
			Seed:   17,
			Days:   5,
			Fleet:  FleetSpec{InitialTables: 100, Databases: 5},
			Policy: ps.Clone(),
			Workload: []PatternSpec{
				{Kind: KindBurst, FromDay: 2, ToDay: 4, TablesFraction: 0.2, Commits: 8},
			},
		}
	}

	run := func() map[string]float64 {
		before := latencySnapshot(t)
		if _, err := Run(spec()); err != nil {
			t.Fatal(err)
		}
		return delta(before, latencySnapshot(t))
	}
	first := run()
	second := run()
	if len(first) == 0 {
		t.Fatal("no latency-family series recorded; the scenario did not exercise the instrumented paths")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same-seed runs moved latency metrics differently:\nfirst:  %v\nsecond: %v", first, second)
	}
}
