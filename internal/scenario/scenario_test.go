package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autocomp/internal/core"
	"autocomp/internal/policy"
)

func minimalSpec(name string) *Spec {
	return &Spec{
		Name:  name,
		Seed:  9,
		Days:  4,
		Fleet: FleetSpec{InitialTables: 60, Databases: 4},
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"no-name", func(s *Spec) { s.Name = "" }, "name is required"},
		{"no-days", func(s *Spec) { s.Days = 0 }, "days must be"},
		{"no-tables", func(s *Spec) { s.Fleet.InitialTables = 0 }, "initial_tables"},
		{"bad-kind", func(s *Spec) {
			s.Workload = []PatternSpec{{Kind: "tsunami"}}
		}, "unknown kind"},
		{"backfill-day", func(s *Spec) {
			s.Workload = []PatternSpec{{Kind: KindBackfill, Day: 99}}
		}, "backfill day"},
		{"burst-with-day", func(s *Spec) {
			s.Workload = []PatternSpec{{Kind: KindBurst, Day: 3}}
		}, `"day" does not apply`},
		{"backfill-with-window", func(s *Spec) {
			s.Workload = []PatternSpec{{Kind: KindBackfill, Day: 2, FromDay: 1}}
		}, `"from_day" does not apply`},
		{"steady-with-knobs", func(s *Spec) {
			s.Workload = []PatternSpec{{Kind: KindSteady, Commits: 5}}
		}, "does not apply"},
		{"dead-window", func(s *Spec) {
			s.Workload = []PatternSpec{{Kind: KindBurst, FromDay: 20}}
		}, "would never fire"},
		{"window-past-end", func(s *Spec) {
			s.Workload = []PatternSpec{{Kind: KindHotSkew, FromDay: 2, ToDay: 9}}
		}, "to_day"},
		{"bad-prob", func(s *Spec) {
			s.Faults = &FaultSpec{CommitFailureProb: 1.5}
		}, "commit_failure_prob"},
		{"drop-day", func(s *Spec) {
			s.Faults = &FaultSpec{Drops: []DropSpec{{Day: 0, Tables: 1}}}
		}, "drops[0]"},
		{"reload-day-one", func(s *Spec) {
			s.Reloads = []ReloadSpec{{Day: 1, Policy: policy.DefaultSpec()}}
		}, "reloads[0]"},
		{"reload-bad-policy", func(s *Spec) {
			s.Reloads = []ReloadSpec{{Day: 2, Policy: &policy.Spec{}}}
		}, "reloads[0]"},
		{"bad-policy", func(s *Spec) {
			s.Policy = &policy.Spec{Generators: []policy.Component{{Name: "nope"}}}
		}, "policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := minimalSpec("x")
			tc.edit(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","days":3,"flete":{}}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestWatcherHotReloadSwitchesAtCycleBoundary drives a scenario the way
// autocompd drives its policy file: a policy.Watcher is polled between
// StepDay calls, and an edit landing mid-run must switch the pipeline
// exactly at the next cycle boundary — the trace shows every cycle
// before the reload under the old policy and every cycle from the
// boundary on under the new one, never a mixed cycle.
func TestWatcherHotReloadSwitchesAtCycleBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.json")
	writeSpec := func(ps *policy.Spec) {
		b, err := ps.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	base := policy.DefaultSpec()
	writeSpec(base)

	w, loaded, err := policy.NewWatcher(path, policyEnvForValidation())
	if err != nil {
		t.Fatal(err)
	}
	spec := minimalSpec("watcher-reload")
	spec.Days = 6
	spec.Policy = loaded
	eng, err := NewEngine(spec)
	if err != nil {
		t.Fatal(err)
	}

	const reloadAfterDay = 3
	for day := 1; day <= spec.Days; day++ {
		if err := eng.StepDay(); err != nil {
			t.Fatal(err)
		}
		if day == reloadAfterDay {
			// The operator edits the file while day 3's cycle is already
			// history; the watcher picks it up at the between-cycle poll.
			edited := policy.DefaultSpec()
			edited.Name = "tight-topk"
			edited.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(2)}}
			writeSpec(edited)
			ns, changed, err := w.Poll()
			if err != nil || !changed {
				t.Fatalf("poll = %v, %v", changed, err)
			}
			eng.ReloadPolicy(ns)
		}
	}
	tr := eng.Finalize()
	for _, c := range tr.Cycles {
		switch {
		case c.Day <= reloadAfterDay:
			if c.Policy != "default" || c.Reloaded {
				t.Fatalf("day %d ran under %q (reloaded=%v), want pre-reload default", c.Day, c.Policy, c.Reloaded)
			}
		default:
			if c.Policy != "tight-topk" {
				t.Fatalf("day %d ran under %q, want tight-topk", c.Day, c.Policy)
			}
			if (c.Day == reloadAfterDay+1) != c.Reloaded {
				t.Fatalf("day %d reloaded=%v, want the switch marked exactly once at the boundary", c.Day, c.Reloaded)
			}
			if c.Selected > 2 {
				t.Fatalf("day %d selected %d under top-k 2", c.Day, c.Selected)
			}
		}
	}
}

// TestReloadStagedMidCycleAppliesNextCycle stages a reload from inside
// cycle processing (the OnCycle hook runs while the day's cycle event is
// still executing): the in-flight cycle must complete under the old
// policy and the very next cycle runs the new one.
func TestReloadStagedMidCycleAppliesNextCycle(t *testing.T) {
	spec := minimalSpec("mid-cycle-reload")
	eng, err := NewEngine(spec)
	if err != nil {
		t.Fatal(err)
	}
	tight := policy.DefaultSpec()
	tight.Name = "tight"
	tight.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(1)}}
	eng.OnCycle = func(day int, _ *core.Report) {
		if day == 2 {
			eng.ReloadPolicy(tight)
		}
	}
	tr, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantPolicy := map[int]string{1: "default", 2: "default", 3: "tight", 4: "tight"}
	for _, c := range tr.Cycles {
		if c.Policy != wantPolicy[c.Day] {
			t.Fatalf("day %d ran under %q, want %q (reload must never land mid-cycle)", c.Day, c.Policy, wantPolicy[c.Day])
		}
		if c.Reloaded != (c.Day == 3) {
			t.Fatalf("day %d reloaded=%v", c.Day, c.Reloaded)
		}
	}
}

// TestDeclarativeReloadMatchesWatcherPath pins the spec-scheduled
// reload (reloads section) to the same boundary semantics.
func TestDeclarativeReloadMatchesWatcherPath(t *testing.T) {
	tight := policy.DefaultSpec()
	tight.Name = "tight"
	tight.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(3)}}
	spec := minimalSpec("declared-reload")
	spec.Reloads = []ReloadSpec{{Day: 3, Policy: tight}}
	tr, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Cycles {
		want := "default"
		if c.Day >= 3 {
			want = "tight"
		}
		if c.Policy != want {
			t.Fatalf("day %d ran under %q, want %q", c.Day, c.Policy, want)
		}
	}
}

// TestEngineStepPastEndFails pins the step-wise API contract.
func TestEngineStepPastEndFails(t *testing.T) {
	eng, err := NewEngine(minimalSpec("short"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.StepDay(); err == nil {
		t.Fatal("StepDay past the end succeeded")
	}
}

// TestInjectedFailuresSurfaceInTrace pins the commit-failure injector's
// accounting: failures show up in both the exec line and the injection
// line, and the run completes.
func TestInjectedFailuresSurfaceInTrace(t *testing.T) {
	spec := minimalSpec("failures")
	spec.Faults = &FaultSpec{CommitFailureProb: 0.5}
	tr, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final.Failures == 0 {
		t.Fatal("no failures injected at p=0.5")
	}
	var injected int64
	for _, c := range tr.Cycles {
		injected += c.Inject.Failures
		if int64(c.Exec.Failed) != c.Inject.Failures {
			t.Fatalf("day %d: exec failed=%d, injected=%d", c.Day, c.Exec.Failed, c.Inject.Failures)
		}
	}
	if injected != int64(tr.Final.Failures) {
		t.Fatalf("totals: %d != %d", injected, tr.Final.Failures)
	}
}
