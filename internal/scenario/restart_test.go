package scenario

import (
	"strings"
	"testing"

	"autocomp/internal/policy"
)

// restartSpec builds the compositional scenario the restart battery
// runs: burst + backfill patterns (both own RNG streams that must be
// re-pinned across a restart), table drops and injected commit
// failures (the scenario-side fault streams), live writer commits
// racing the execution plane, and a mid-run policy reload (recovery
// must re-derive the reloaded policy, not the base one).
func restartSpec(restarts []RestartSpec) *Spec {
	reload := policy.DefaultSpec()
	reload.Name = "tight-topk"
	reload.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(5)}}
	return &Spec{
		Name: "kill-restart",
		Seed: 21,
		Days: 8,
		Fleet: FleetSpec{
			InitialTables:  120,
			Databases:      6,
			TablesPerMonth: 30,
		},
		Workload: []PatternSpec{
			{Kind: KindBurst, FromDay: 2, ToDay: 7, EveryDays: 2, TablesFraction: 0.1, Commits: 12, FilesPerCommit: 10},
			{Kind: KindBackfill, Day: 5, Database: "db001", Commits: 60, FilesPerCommit: 20},
		},
		Faults: &FaultSpec{
			WriterCommitsPerHour: 40,
			CommitFailureProb:    0.1,
			Drops:                []DropSpec{{Day: 4, Tables: 2}},
			Restarts:             restarts,
		},
		Reloads: []ReloadSpec{{Day: 3, Policy: reload}},
	}
}

// TestPersistScenarioRestartParity is the recovery acceptance check: a
// run that is killed and rebuilt from its disk snapshot — twice, once
// before and once after the policy reload — emits a canonical trace
// byte-identical to the uninterrupted run's. Restarts are invisible.
func TestPersistScenarioRestartParity(t *testing.T) {
	clean, err := Run(restartSpec(nil))
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := Run(restartSpec([]RestartSpec{{Day: 3}, {Day: 6}}))
	if err != nil {
		t.Fatal(err)
	}
	if diff := DiffTraces(clean.Marshal(), restarted.Marshal()); diff != nil {
		t.Fatalf("restarted run diverged from uninterrupted run:\n%s", joinLines(diff))
	}
}

// TestPersistScenarioRestartEveryDay stresses the snapshot/reboot path
// itself: restarting at the start of every eligible day still matches
// the clean trace.
func TestPersistScenarioRestartEveryDay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode runs the two-restart parity test only")
	}
	spec := restartSpec(nil)
	var every []RestartSpec
	for d := 2; d <= spec.Days; d++ {
		every = append(every, RestartSpec{Day: d})
	}
	clean, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := Run(restartSpec(every))
	if err != nil {
		t.Fatal(err)
	}
	if diff := DiffTraces(clean.Marshal(), restarted.Marshal()); diff != nil {
		t.Fatalf("restart-every-day run diverged:\n%s", joinLines(diff))
	}
}

// TestPersistScenarioRestartValidation pins the restart-specific spec
// rules: day bounds, ordering, and the trigger-policy exclusion.
func TestPersistScenarioRestartValidation(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"day-one", func(s *Spec) {
			s.Faults = &FaultSpec{Restarts: []RestartSpec{{Day: 1}}}
		}, "restarts[0]"},
		{"past-end", func(s *Spec) {
			s.Faults = &FaultSpec{Restarts: []RestartSpec{{Day: 9}}}
		}, "restarts[0]"},
		{"unordered", func(s *Spec) {
			s.Faults = &FaultSpec{Restarts: []RestartSpec{{Day: 4}, {Day: 3}}}
		}, "strictly ascending"},
		{"trigger-base", func(s *Spec) {
			s.Faults = &FaultSpec{Restarts: []RestartSpec{{Day: 3}}}
			s.Policy = policy.DefaultSpec()
			s.Policy.Trigger = &policy.TriggerSpec{EveryCommits: 1}
		}, "trigger"},
		{"trigger-reload", func(s *Spec) {
			s.Faults = &FaultSpec{Restarts: []RestartSpec{{Day: 3}}}
			p := policy.DefaultSpec()
			p.Trigger = &policy.TriggerSpec{EveryCommits: 1}
			s.Reloads = append(s.Reloads[:0], ReloadSpec{Day: 2, Policy: p})
		}, "trigger"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := restartSpec(nil)
			tc.edit(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
