package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"autocomp/internal/policy"
)

// TestScenarioGoldenTracesShardedDecide is the end-to-end parity lock for
// the sharded decide plane: shipped scenarios rerun with
// execution.decide_shards: 4 must produce traces byte-identical to the
// committed goldens their serial runs wrote. The subset covers the
// default execution plane (steady-state), a mid-run policy reload
// (policy-reload), and the incremental observation plane with table
// drops (table-drops-incremental), whose retained candidate pool is
// partitioned per decide shard.
func TestScenarioGoldenTracesShardedDecide(t *testing.T) {
	for _, name := range []string{"steady-state", "policy-reload", "table-drops-incremental"} {
		t.Run(name, func(t *testing.T) {
			s, err := LoadFile(filepath.Join(scenariosDir(), name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			// Materialize the default policy when the scenario relies on
			// it, then shard the decide plane without touching anything
			// else. The chosen scenarios all carry an execution section
			// (directly or via the default), so this flips no other plane.
			if s.Policy == nil {
				s.Policy = policy.DefaultSpec()
			}
			if s.Policy.Execution == nil {
				t.Fatalf("scenario %s has no execution section; pick one that does", name)
			}
			s.Policy.Execution.DecideShards = 4
			for _, r := range s.Reloads {
				if r.Policy != nil && r.Policy.Execution != nil {
					r.Policy.Execution.DecideShards = 4
				}
			}
			tr, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("missing golden trace (regenerate with -update): %v", err)
			}
			if diff := DiffTraces(want, tr.Marshal()); diff != nil {
				t.Fatalf("sharded decide diverged from serial golden %s:\n%s",
					goldenPath(name), joinLines(diff))
			}
		})
	}
}
