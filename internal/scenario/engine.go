package scenario

import (
	"errors"
	"fmt"

	"autocomp/internal/compaction"
	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/policy"
	"autocomp/internal/scheduler"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
	"autocomp/internal/telemetry"
)

// ErrInjectedFailure is the error injected commit failures report.
var ErrInjectedFailure = errors.New("scenario: injected commit failure")

// Engine runs one scenario: it owns the virtual clock, the event queue
// the day structure is scheduled on, the fleet substrate, and the
// spec-compiled service, and it accumulates the canonical trace. Build
// one with NewEngine and either call Run, or StepDay in a loop (the
// step-wise form hot-reload harnesses use) followed by Finalize.
//
// The engine is single-threaded and not safe for concurrent use.
type Engine struct {
	spec  *Spec
	opts  EngineOptions
	clock *sim.Clock
	queue *sim.EventQueue
	fleet *fleet.Fleet
	model fleet.CompactionModel

	svc        *fleet.SpecService
	policyName string

	// pending is a staged policy reload, applied at the next cycle
	// boundary — never mid-cycle, mirroring the daemon's between-cycle
	// Watcher poll.
	pending     *policy.Spec
	pendingName string

	patterns []pattern
	dropRNG  *sim.RNG
	failRNG  *sim.RNG

	day   int
	inj   Injection
	trace *Trace
	err   error

	// OnCycle, when set, runs after each cycle's trace record is
	// appended — harnesses use it to inspect mid-run state or to stage a
	// reload from "inside" the run and assert it only lands on the next
	// cycle.
	OnCycle func(day int, rep *core.Report)
}

// EngineOptions carries host-side wiring that is not part of the
// scenario itself: how the run's telemetry is labeled and where its
// CycleEvents go. The zero value (no tenant, the process-wide default
// tracer) matches the pre-tenant behaviour.
type EngineOptions struct {
	// Tenant labels the run's CycleEvents (multi-tenant hosts).
	Tenant string
	// Tracer receives the run's CycleEvents; nil means the process-wide
	// telemetry.DefaultTracer().
	Tracer *telemetry.Tracer
}

// NewEngine validates spec and builds a ready-to-run engine at day 0.
func NewEngine(spec *Spec) (*Engine, error) {
	return NewEngineOpts(spec, EngineOptions{})
}

// NewEngineOpts is NewEngine with host-side telemetry wiring — a
// management plane uses it to stream each run's decision trace on its
// own tracer under its tenant's label. The options never influence a
// decision, so the canonical trace bytes are identical for any options.
func NewEngineOpts(spec *Spec, opts EngineOptions) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		spec:     spec,
		opts:     opts,
		clock:    sim.NewClock(),
		model:    fleet.DefaultModel(512 * storage.MB),
		patterns: buildPatterns(spec),
		dropRNG:  sim.Child(spec.Seed, "scenario/faults/drops"),
		failRNG:  sim.Child(spec.Seed, "scenario/faults/commit-failures"),
		trace:    &Trace{Scenario: spec.Name, Seed: spec.Seed, Days: spec.Days},
	}
	e.queue = sim.NewEventQueue(e.clock)
	e.fleet = fleet.New(spec.fleetConfig(), e.clock)
	if err := e.setPolicy(spec.policySpec()); err != nil {
		return nil, err
	}
	return e, nil
}

// Run executes every remaining day and returns the finalized trace.
func Run(spec *Spec) (*Trace, error) {
	e, err := NewEngine(spec)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// Run executes the remaining days and finalizes the trace.
func (e *Engine) Run() (*Trace, error) {
	for e.day < e.spec.Days {
		if err := e.StepDay(); err != nil {
			return nil, err
		}
	}
	return e.Finalize(), nil
}

// Day returns the last completed simulation day.
func (e *Engine) Day() int { return e.day }

// Fleet exposes the substrate (inspection; mutating it mid-run breaks
// the trace's meaning, not its determinism).
func (e *Engine) Fleet() *fleet.Fleet { return e.fleet }

// Service exposes the current spec-compiled service.
func (e *Engine) Service() *fleet.SpecService { return e.svc }

// PolicyName returns the name of the policy the next cycle will run
// under (staged reloads included).
func (e *Engine) PolicyName() string {
	if e.pending != nil {
		return e.pendingName
	}
	return e.policyName
}

// ReloadPolicy stages a validated policy spec for hot reload. The swap
// happens at the next cycle boundary — a reload staged mid-cycle (e.g.
// from an OnCycle hook, or between StepDay calls the way autocompd
// polls its Watcher) never affects the cycle in flight.
func (e *Engine) ReloadPolicy(ps *policy.Spec) {
	e.pending = ps
	e.pendingName = specName(ps)
}

func specName(ps *policy.Spec) string {
	if ps == nil || ps.Name == "" {
		return "(unnamed)"
	}
	return ps.Name
}

// setPolicy compiles ps against the fleet and swaps the running service.
func (e *Engine) setPolicy(ps *policy.Spec) error {
	opts := fleet.SpecRunOptions{Tenant: e.opts.Tenant, Tracer: e.opts.Tracer}
	if f := e.spec.Faults; f != nil {
		opts.WriterCommitsPerHour = f.WriterCommitsPerHour
		if f.CommitFailureProb > 0 {
			prob := f.CommitFailureProb
			opts.WrapRunner = func(inner core.Runner) core.Runner {
				return &faultRunner{engine: e, inner: inner, prob: prob}
			}
		}
	}
	svc, err := e.fleet.ServiceFromSpec(ps, e.model, opts)
	if err != nil {
		return fmt.Errorf("scenario: compile policy %s: %w", specName(ps), err)
	}
	e.svc = svc
	e.policyName = specName(ps)
	return nil
}

// faultRunner fails data-compaction jobs with the configured
// probability, drawing from the engine's dedicated failure stream so
// the injector never perturbs any other component's draws.
type faultRunner struct {
	engine *Engine
	inner  core.Runner
	prob   float64
}

// Run implements core.Runner.
func (r *faultRunner) Run(c *core.Candidate) compaction.Result {
	if r.engine.failRNG.Bernoulli(r.prob) {
		r.engine.inj.Failures++
		return compaction.Result{Table: c.Table.FullName(), Err: ErrInjectedFailure}
	}
	return r.inner.Run(c)
}

// StepDay simulates one day: the fleet's organic growth, the workload
// patterns, scheduled faults, a staged policy reload (cycle boundary),
// and the observe→decide→act cycle — each as an event on the engine's
// queue, in deterministic order at the day's virtual timestamp.
func (e *Engine) StepDay() error {
	if e.err != nil {
		return e.err
	}
	if e.day >= e.spec.Days {
		return fmt.Errorf("scenario: %s has only %d days", e.spec.Name, e.spec.Days)
	}
	if err := e.applyRestarts(e.day + 1); err != nil {
		e.err = err
		return e.err
	}
	e.day++
	day := e.day
	e.inj = Injection{}
	now := e.clock.Now()
	e.queue.ScheduleAt(now, func() { e.fleet.AdvanceDay() })
	for _, p := range e.patterns {
		p := p
		e.queue.ScheduleAt(now, func() { p.apply(e, day) })
	}
	e.queue.ScheduleAt(now, func() { e.applyDrops(day) })
	e.queue.ScheduleAt(now, func() { e.stageScheduledReload(day) })
	e.queue.ScheduleAt(now, func() { e.runCycle(day) })
	e.queue.RunAll()
	return e.err
}

// applyDrops executes the day's scheduled table-drop faults: each drop
// removes a randomly chosen live table mid-run.
func (e *Engine) applyDrops(day int) {
	if e.spec.Faults == nil {
		return
	}
	for _, d := range e.spec.Faults.Drops {
		if d.Day != day {
			continue
		}
		for i := 0; i < d.Tables; i++ {
			tables := e.fleet.Tables()
			if len(tables) == 0 {
				break
			}
			t := tables[e.dropRNG.Intn(len(tables))]
			name := t.FullName()
			if e.fleet.DropTable(name) {
				e.inj.Drops = append(e.inj.Drops, name)
			}
		}
	}
}

// stageScheduledReload stages the declarative reload pinned to day.
func (e *Engine) stageScheduledReload(day int) {
	for _, r := range e.spec.Reloads {
		if r.Day == day {
			e.ReloadPolicy(r.Policy.Clone())
		}
	}
}

// runCycle applies any staged reload (cycle boundary), runs one
// observe→decide→act cycle, records its trace, and checks the run
// invariants.
func (e *Engine) runCycle(day int) {
	reloaded := false
	if e.pending != nil {
		ps := e.pending
		e.pending = nil
		if err := e.setPolicy(ps); err != nil {
			e.err = err
			return
		}
		reloaded = true
	}
	rep, stats, err := e.svc.RunCycle()
	if err != nil {
		e.err = fmt.Errorf("scenario: day %d cycle: %w", day, err)
		return
	}
	ct := e.cycleTrace(day, reloaded, rep, stats)
	e.trace.Cycles = append(e.trace.Cycles, ct)
	// Telemetry snapshot, published after the trace record is sealed:
	// strictly passive, so the golden bytes cannot depend on it.
	mScenarioCycles.With(e.spec.Name).Inc()
	mScenarioDay.Set(float64(day))
	if reloaded {
		mScenarioReloads.Inc()
	}
	mScenarioInjectedFailures.Add(float64(e.inj.Failures))
	mScenarioDrops.Add(float64(len(e.inj.Drops)))
	if err := e.checkInvariants(rep, stats); err != nil {
		mScenarioInvariantFailures.Inc()
		e.err = fmt.Errorf("scenario: day %d invariants: %w", day, err)
		return
	}
	if e.OnCycle != nil {
		e.OnCycle(day, rep)
	}
}

// cycleTrace builds the day's canonical trace record.
func (e *Engine) cycleTrace(day int, reloaded bool, rep *core.Report, stats scheduler.Stats) CycleTrace {
	d := rep.Decision
	ct := CycleTrace{
		Day:        day,
		Policy:     e.policyName,
		Reloaded:   reloaded,
		Generated:  d.Generated,
		AfterPre:   d.AfterPreFilters,
		AfterStats: d.AfterStatsFilter,
		AfterTrait: d.AfterTraitFilter,
		Ranked:     len(d.Ranked),
		Selected:   len(d.Selected),

		FilesReduced:    rep.FilesReduced,
		MetadataReduced: rep.MetadataReduced,
		BytesRewritten:  rep.BytesRewritten,
		ActualGBHr:      rep.ActualGBHr,
		Inject:          e.inj,
		Fleet:           e.fleetSnapshot(),
	}
	if feed := e.svc.Feed; feed != nil {
		scan := feed.LastScan()
		ct.ScanMode = "dirty"
		if scan.Full {
			ct.ScanMode = "full"
		}
		ct.Scanned = scan.Scanned
		ct.Pool = scan.Pool
	} else {
		ct.ScanMode = "scan"
		ct.Scanned = e.fleet.TableCount()
		ct.Pool = d.Generated
	}
	ct.Actions = make([]int, len(core.ActionTypes()))
	for _, c := range d.Selected {
		for int(c.Action) >= len(ct.Actions) {
			ct.Actions = append(ct.Actions, 0)
		}
		ct.Actions[int(c.Action)]++
		if len(ct.Top) < 8 {
			ct.Top = append(ct.Top, c.ID())
		}
	}
	if e.svc.Sched != nil {
		ct.MakespanHours = stats.Makespan.Hours()
		ct.Exec = ExecTrace{
			Done:       stats.Done,
			Skipped:    stats.Skipped,
			Conflicted: stats.Conflicted,
			Deferred:   stats.Deferred,
			Failed:     stats.Failed,
			Conflicts:  stats.Conflicts,
			Retries:    stats.Retries,
		}
		ct.SpendGBHr = append([]float64(nil), stats.SpentGBHr...)
	} else {
		done := len(rep.Results) - rep.Skipped - rep.Errors - rep.Conflicts
		ct.Exec = ExecTrace{
			Done:       done,
			Skipped:    rep.Skipped,
			Conflicted: rep.Conflicts,
			Failed:     rep.Errors,
			Conflicts:  rep.Conflicts,
		}
	}
	return ct
}

// fleetSnapshot captures the end-of-cycle fleet state.
func (e *Engine) fleetSnapshot() FleetSnapshot {
	s := FleetSnapshot{
		Tables:      e.fleet.TableCount(),
		Files:       e.fleet.TotalFiles(),
		TinyFrac:    e.fleet.TinyFileFraction(),
		MetaObjects: e.fleet.TotalMetadataObjects(),
	}
	seen := map[string]bool{}
	for _, t := range e.fleet.Tables() {
		db := t.Database()
		if seen[db] {
			continue
		}
		seen[db] = true
		if u := e.fleet.QuotaUtilization(db); u > s.QuotaMax {
			s.QuotaMax = u
		}
	}
	return s
}

// checkInvariants audits the cycle against the properties every
// scenario must uphold regardless of workload, faults, or policy:
//
//   - no candidate is selected for a table that left the lake;
//   - per-shard GBHr spend never exceeds the budget by more than one
//     job (the scheduler's admission guarantee: reservation-aware
//     admission bounds overshoot at one in-flight job per shard);
//   - the worker pool never runs more jobs than it has slots (the
//     per-table lease discipline itself is enforced by a panic inside
//     the scheduler);
//   - the incremental plane's retained candidate pool and stats cache
//     never reference a dropped table or a version beyond the table's
//     live one.
func (e *Engine) checkInvariants(rep *core.Report, stats scheduler.Stats) error {
	var errs []error
	live := make(map[string]int64, e.fleet.TableCount())
	for _, t := range e.fleet.Tables() {
		live[t.FullName()] = t.Version()
	}
	for _, c := range rep.Decision.Selected {
		if _, ok := live[c.Table.FullName()]; !ok {
			errs = append(errs, fmt.Errorf("selected candidate %s references a dropped table", c.ID()))
		}
	}
	if e.svc.Sched != nil {
		if budget := e.svc.Compiled.Sched.ShardBudgetGBHr; budget > 0 {
			var maxJob float64
			for _, cr := range rep.Results {
				if cr.Result.GBHr > maxJob {
					maxJob = cr.Result.GBHr
				}
			}
			for shard, spent := range stats.SpentGBHr {
				if spent > budget+maxJob+1e-6 {
					errs = append(errs, fmt.Errorf("shard %d spent %.3f GBHr, budget %.3f (+max job %.3f)",
						shard, spent, budget, maxJob))
				}
			}
		}
		if stats.MaxWorkersBusy > stats.Workers {
			errs = append(errs, fmt.Errorf("%d jobs in flight on %d workers", stats.MaxWorkersBusy, stats.Workers))
		}
	}
	if feed := e.svc.Feed; feed != nil {
		for _, name := range feed.RetainedTables() {
			if _, ok := live[name]; !ok {
				errs = append(errs, fmt.Errorf("retained candidate pool references dropped table %s", name))
			}
		}
		for name, ver := range feed.Cache.MaxVersions() {
			liveVer, ok := live[name]
			if !ok {
				errs = append(errs, fmt.Errorf("stats cache references dropped table %s", name))
				continue
			}
			if ver > liveVer {
				errs = append(errs, fmt.Errorf("stats cache for %s at version %d beyond live version %d",
					name, ver, liveVer))
			}
		}
	}
	return errors.Join(errs...)
}

// Finalize computes the end-of-run summary and returns the trace.
// Step-wise drivers call it once after the last StepDay; Run does it
// for you.
func (e *Engine) Finalize() *Trace {
	f := FinalTrace{Fleet: e.fleetSnapshot()}
	for i := range e.trace.Cycles {
		c := &e.trace.Cycles[i]
		f.FilesReduced += c.FilesReduced
		f.MetadataReduced += c.MetadataReduced
		f.ActualGBHr += c.ActualGBHr
		f.Conflicts += c.Exec.Conflicts
		f.Failures += c.Exec.Failed
		f.InjectedCommits += c.Inject.Commits
		f.Dropped += len(c.Inject.Drops)
	}
	e.trace.Final = f
	return e.trace
}

// Trace returns the trace accumulated so far (cycles only until
// Finalize runs).
func (e *Engine) Trace() *Trace { return e.trace }
