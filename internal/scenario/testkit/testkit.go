// Package testkit consolidates the seed-substrate construction and
// decision-fingerprint helpers the end-to-end suites share — the root
// integration tests, the policy parity tests, the experiments package,
// and the scenario harness all build the same two substrates (the
// catalog-backed lake and the aggregate fleet) and compare decisions
// the same way; keeping one copy here keeps their seeds and wiring from
// drifting apart.
package testkit

import (
	"fmt"
	"strings"

	"autocomp/internal/catalog"
	"autocomp/internal/cluster"
	"autocomp/internal/core"
	"autocomp/internal/engine"
	"autocomp/internal/fleet"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Lake is the full catalog-substrate stack: virtual clock, seeded RNG,
// namenode, control plane, query and compaction clusters, and the query
// engine — everything an end-to-end test drives.
type Lake struct {
	Clock             *sim.Clock
	RNG               *sim.RNG
	FS                *storage.NameNode
	CP                *catalog.ControlPlane
	QueryCluster      *cluster.Cluster
	CompactionCluster *cluster.Cluster
	Engine            *engine.Engine
}

// NewLake builds the stack from one seed. Fork order (namenode first,
// engine second) is part of the deterministic contract: tests that
// pinned behaviour to a seed keep it.
func NewLake(seed int64) *Lake {
	clock := sim.NewClock()
	rng := sim.NewRNG(seed)
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng.Fork())
	cp := catalog.New(fs, clock)
	queryCl := cluster.New(cluster.QueryClusterConfig(), clock)
	compCl := cluster.New(cluster.CompactionClusterConfig(), clock)
	eng := engine.New(engine.DefaultConfig(), queryCl, fs, clock, rng.Fork())
	return &Lake{
		Clock:             clock,
		RNG:               rng,
		FS:                fs,
		CP:                cp,
		QueryCluster:      queryCl,
		CompactionCluster: compCl,
		Engine:            eng,
	}
}

// FleetConfig is the standard scaled fleet the parity and regression
// suites age: the production-shaped defaults at a test-sized table
// count.
func FleetConfig(seed int64, tables int) fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Seed = seed
	cfg.InitialTables = tables
	return cfg
}

// NewFleet builds a fleet at day 0 on a fresh clock.
func NewFleet(seed int64, tables int) (*fleet.Fleet, *sim.Clock) {
	clock := sim.NewClock()
	return fleet.New(FleetConfig(seed, tables), clock), clock
}

// Model is the shared compaction cost model (512 MB target, production
// overhead) every suite prices against.
func Model() fleet.CompactionModel {
	return fleet.DefaultModel(512 * storage.MB)
}

// DecisionFingerprint serializes everything a Decide() produced: the
// funnel counts, every ranked candidate with its score, the selection,
// and the plan. Two pipelines are decision-equivalent only when these
// bytes match.
func DecisionFingerprint(d *core.Decision) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v gen=%d pre=%d stats=%d trait=%d\n",
		d.At, d.Generated, d.AfterPreFilters, d.AfterStatsFilter, d.AfterTraitFilter)
	for _, c := range d.Ranked {
		fmt.Fprintf(&b, "R %s %.15g\n", c.ID(), c.Score)
	}
	for _, c := range d.Selected {
		fmt.Fprintf(&b, "S %s\n", c.ID())
	}
	for i, round := range d.Plan {
		for _, c := range round {
			fmt.Fprintf(&b, "P%d %s\n", i, c.ID())
		}
	}
	return b.String()
}

// PlanID flattens a decision's selected plan into one comparable
// string — the coarser fingerprint for plan-level parity checks.
func PlanID(d *core.Decision) string {
	ids := make([]string, len(d.Selected))
	for i, c := range d.Selected {
		ids[i] = c.ID()
	}
	return strings.Join(ids, ",")
}

// Head returns the first n lines of s, for readable failure output.
func Head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
