package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"autocomp/internal/fleet"
	"autocomp/internal/sim"
)

// restartSnapshot is the engine state serialized across a kill/restart
// fault: the substrate's full aggregate state (which carries virtual
// time and the fleet RNG positions), the scenario-side RNG stream
// positions, and the trace accumulated so far. The active policy is NOT
// serialized — recovery re-derives it from the scenario's reload
// schedule, the way a daemon re-reads its policy file at boot.
type restartSnapshot struct {
	Day          int          `json:"day"`
	Fleet        *fleet.State `json:"fleet"`
	DropDraws    int64        `json:"drop_draws"`
	FailDraws    int64        `json:"fail_draws"`
	PatternDraws []int64      `json:"pattern_draws"`
	Cycles       []CycleTrace `json:"cycles"`
}

// patternRNG is implemented by the compiled patterns that own a random
// stream; steady and hot-skew patterns draw nothing and are stateless.
type patternRNG interface {
	drawCount() int64
	setRNG(*sim.RNG)
}

func (p *burstPattern) drawCount() int64     { return p.rng.Draws() }
func (p *burstPattern) setRNG(r *sim.RNG)    { p.rng = r }
func (p *backfillPattern) drawCount() int64  { return p.rng.Draws() }
func (p *backfillPattern) setRNG(r *sim.RNG) { p.rng = r }

// restart performs the scheduled kill/restart fault: snapshot to a real
// file on disk, tear the runtime down, read the file back, and rebuild
// everything from the serialized bytes — clock, queue, fleet, pattern
// and fault RNG streams, and the policy-compiled service. The rebuilt
// engine's next cycle must be byte-identical to the one the
// uninterrupted engine would have run.
func (e *Engine) restart() error {
	snap := &restartSnapshot{
		Day:          e.day,
		Fleet:        e.fleet.Snapshot(),
		DropDraws:    e.dropRNG.Draws(),
		FailDraws:    e.failRNG.Draws(),
		PatternDraws: make([]int64, len(e.patterns)),
		Cycles:       e.trace.Cycles,
	}
	for i, p := range e.patterns {
		if pr, ok := p.(patternRNG); ok {
			snap.PatternDraws[i] = pr.drawCount()
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("scenario: restart snapshot: %w", err)
	}

	// The snapshot crosses a real process-image boundary: written to
	// disk, state discarded, read back, parsed.
	dir, err := os.MkdirTemp("", "scenario-restart-*")
	if err != nil {
		return fmt.Errorf("scenario: restart: %w", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "snapshot.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("scenario: restart: %w", err)
	}
	e.clock, e.queue, e.fleet, e.svc, e.patterns = nil, nil, nil, nil, nil
	e.dropRNG, e.failRNG = nil, nil
	read, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("scenario: restart: %w", err)
	}
	var st restartSnapshot
	if err := json.Unmarshal(read, &st); err != nil {
		return fmt.Errorf("scenario: restart snapshot parse: %w", err)
	}
	return e.reboot(&st)
}

// reboot rebuilds the engine from a parsed snapshot.
func (e *Engine) reboot(st *restartSnapshot) error {
	e.clock = sim.NewClock()
	f, err := fleet.Restore(st.Fleet, e.clock)
	if err != nil {
		return fmt.Errorf("scenario: restart: %w", err)
	}
	e.fleet = f
	e.queue = sim.NewEventQueue(e.clock)
	e.day = st.Day
	e.trace.Cycles = st.Cycles
	e.dropRNG = sim.NewRNGAt(sim.ChildSeed(e.spec.Seed, "scenario/faults/drops"), st.DropDraws)
	e.failRNG = sim.NewRNGAt(sim.ChildSeed(e.spec.Seed, "scenario/faults/commit-failures"), st.FailDraws)
	e.patterns = buildPatterns(e.spec)
	for i, p := range e.patterns {
		pr, ok := p.(patternRNG)
		if !ok {
			continue
		}
		if i >= len(st.PatternDraws) {
			return fmt.Errorf("scenario: restart snapshot has %d pattern streams, engine has %d", len(st.PatternDraws), len(e.patterns))
		}
		label := fmt.Sprintf("scenario/pattern/%d/%s", i, e.spec.Workload[i].Kind)
		pr.setRNG(sim.NewRNGAt(sim.ChildSeed(e.spec.Seed, label), st.PatternDraws[i]))
	}
	// Re-derive the active policy: the base spec plus every reload whose
	// day has already passed (reloads apply at their own day's cycle, so
	// strictly-before the restart day).
	ps := e.spec.policySpec()
	for _, r := range e.spec.Reloads {
		if r.Day <= st.Day {
			ps = r.Policy.Clone()
		}
	}
	return e.setPolicy(ps)
}

// applyRestarts runs the kill/restart fault scheduled for the start of
// day, if any.
func (e *Engine) applyRestarts(day int) error {
	if e.spec.Faults == nil {
		return nil
	}
	for _, r := range e.spec.Faults.Restarts {
		if r.Day == day {
			return e.restart()
		}
	}
	return nil
}
