package scenario

import (
	"autocomp/internal/telemetry"
)

// Runtime metrics of the scenario engine. Publication is strictly
// passive — the engine records what each cycle did after the trace
// record is built, never touching a component RNG stream or any state
// the pipeline reads — so the golden traces stay byte-identical with
// instrumentation enabled (pinned by the telemetry parity test).
var (
	mScenarioCycles = telemetry.Default().CounterVec(
		"autocomp_scenario_cycles_total",
		"Scenario-engine cycles run, by scenario name.",
		"scenario")
	mScenarioInvariantFailures = telemetry.Default().Counter(
		"autocomp_scenario_invariant_failures_total",
		"Cycles whose post-cycle invariant audit failed.")
	mScenarioReloads = telemetry.Default().Counter(
		"autocomp_scenario_policy_reloads_total",
		"Policy hot reloads applied at cycle boundaries.")
	mScenarioInjectedFailures = telemetry.Default().Counter(
		"autocomp_scenario_injected_failures_total",
		"Commit failures injected by fault specs.")
	mScenarioDrops = telemetry.Default().Counter(
		"autocomp_scenario_injected_drops_total",
		"Tables dropped by fault specs.")
	mScenarioDay = telemetry.Default().Gauge(
		"autocomp_scenario_day",
		"Simulation day of the most recently active scenario engine.")
)
