// Package scenario is AutoComp's end-to-end simulation and regression
// plane: a JSON-declarative, seed-deterministic scenario engine that
// composes a fleet topology, temporal write patterns, fault injection,
// and a declarative policy spec (internal/policy) into one runnable
// simulation driving the full observe→decide→act stack — the fleet
// substrate, the incremental observation plane, and the concurrent
// execution plane — on sim.EventQueue virtual time.
//
// The paper validates AutoComp against a handful of fixed workloads
// (§6: CAB, LST-Bench phased runs); the LSM compaction design-space
// survey (arXiv 2202.04522) shows that compaction policies only reveal
// their trade-offs under a matrix of workload shapes — skew, bursts,
// failure, tenancy mix. A scenario is one cell of that matrix as data:
// run it and the engine emits a canonical, normalized trace (per-cycle
// decisions, actions, budget spend, conflict/retry counts, end-of-run
// fleet invariants) that serializes byte-stably for a given (scenario,
// seed). Golden traces committed under examples/scenarios/golden lock
// in end-to-end behaviour: a change that silently shifts any decision
// anywhere in the stack shows up as a trace diff.
//
// Determinism contract: every random draw a scenario makes comes from a
// child stream derived by sim.Child from the scenario seed and a stable
// component label (each write pattern, the drop injector, the
// commit-failure injector, and the fleet's own component streams), so
// adding or removing one component never perturbs another component's
// draws — the property that keeps golden traces reviewable: a diff
// shows what the change did, not seed noise.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"autocomp/internal/fleet"
	"autocomp/internal/policy"
)

// Pattern kinds.
const (
	// KindSteady is a no-op marker: the fleet's organic daily growth is
	// always on, and a steady scenario adds nothing on top. It exists so
	// scenario files can say so explicitly.
	KindSteady = "steady"
	// KindBurst applies periodic write bursts to a random fraction of
	// tables between from_day and to_day.
	KindBurst = "burst"
	// KindBackfill applies a one-day backfill storm: every table of one
	// database (or the whole fleet) receives a heavy batch of commits.
	KindBackfill = "backfill"
	// KindHotSkew concentrates extra daily commits on the currently most
	// fragmented tables — the hot-partition skew that keeps a few tables
	// permanently behind.
	KindHotSkew = "hot-skew"
)

// patternKinds names every known pattern kind, for validation errors.
var patternKinds = []string{KindSteady, KindBurst, KindBackfill, KindHotSkew}

// FleetSpec declares the simulated fleet topology: how many tables and
// tenants, their size/skew distribution, and the organic write dynamics.
// Zero values inherit the fleet substrate's defaults where one exists
// (databases, tiny fraction); tables_per_month of 0 means no onboarding
// during the run.
type FleetSpec struct {
	// InitialTables at simulation start (required, >= 1).
	InitialTables int `json:"initial_tables"`
	// Databases (tenants) the tables spread over (default 10).
	Databases int `json:"databases,omitempty"`
	// QuotaObjectsPerDB is each tenant's namespace quota (0 = unlimited;
	// quota-adaptive policies read utilization against it).
	QuotaObjectsPerDB int64 `json:"quota_objects_per_db,omitempty"`
	// TablesPerMonth onboarded as the deployment grows (0 = none).
	TablesPerMonth int `json:"tables_per_month,omitempty"`
	// InitialTinyFraction is the count-fraction of files below 128 MB at
	// start (default 0.83, the paper's Figure 2).
	InitialTinyFraction float64 `json:"initial_tiny_fraction,omitempty"`
	// DailyDriftProb is the per-table daily probability that a table's
	// write behaviour changes (default 0).
	DailyDriftProb float64 `json:"daily_drift_prob,omitempty"`
	// DailyWriteProb is the per-table daily write probability; 0 (or
	// >= 1) means every table writes every day, sparse values model
	// mostly-cold fleets where incremental observation pays off.
	DailyWriteProb float64 `json:"daily_write_prob,omitempty"`
}

// PatternSpec declares one temporal write pattern layered on top of the
// fleet's organic growth. Fields apply per kind; see docs/scenarios.md
// for the full field→behaviour reference.
type PatternSpec struct {
	// Kind is one of steady, burst, backfill, hot-skew.
	Kind string `json:"kind"`
	// FromDay and ToDay bound recurring patterns (burst, hot-skew);
	// FromDay defaults to 1 and ToDay to the scenario's last day.
	FromDay int `json:"from_day,omitempty"`
	ToDay   int `json:"to_day,omitempty"`
	// EveryDays spaces burst recurrences (default 1: every day in the
	// window).
	EveryDays int `json:"every_days,omitempty"`
	// Day pins one-shot patterns (backfill) to a single day.
	Day int `json:"day,omitempty"`
	// Database targets backfill at one tenant ("" = the whole fleet).
	Database string `json:"database,omitempty"`
	// Tables is how many of the most fragmented tables hot-skew hits
	// each day (default 3).
	Tables int `json:"tables,omitempty"`
	// TablesFraction is the fraction of the fleet a burst hits (default
	// 0.05).
	TablesFraction float64 `json:"tables_fraction,omitempty"`
	// Commits is how many writer commits each affected table receives
	// per firing (default 10).
	Commits int `json:"commits,omitempty"`
	// FilesPerCommit is how many small files each commit lands (default
	// 10).
	FilesPerCommit int `json:"files_per_commit,omitempty"`
}

// DropSpec schedules a table-drop fault: on Day, Tables randomly chosen
// live tables are dropped from the lake (with changefeed Dropped events
// when the policy runs the incremental observation plane).
type DropSpec struct {
	Day    int `json:"day"`
	Tables int `json:"tables"`
}

// RestartSpec schedules a kill/restart fault: at the start of Day,
// before any of the day's work, the engine snapshots its state to disk,
// tears the whole runtime down (clock, queue, fleet, patterns, service),
// and rebuilds it from the serialized snapshot — the cold-start recovery
// a durable deployment performs. A restart is invisible in the canonical
// trace: the post-recovery cycles must be byte-identical to the
// uninterrupted run's (golden-locked).
type RestartSpec struct {
	Day int `json:"day"`
}

// FaultSpec declares the scenario's fault injection.
type FaultSpec struct {
	// WriterCommitsPerHour is the fleet-wide rate of live writer commits
	// racing the compactor during execution windows (0 = quiet lake) —
	// it feeds the execution plane's optimistic-concurrency conflicts.
	WriterCommitsPerHour float64 `json:"writer_commits_per_hour,omitempty"`
	// CommitFailureProb fails each data-compaction job with this
	// probability (drawn from the failure injector's own child stream).
	CommitFailureProb float64 `json:"commit_failure_prob,omitempty"`
	// Drops schedules mid-run table drops.
	Drops []DropSpec `json:"drops,omitempty"`
	// Restarts schedules kill/restart faults.
	Restarts []RestartSpec `json:"restarts,omitempty"`
}

// ReloadSpec schedules a declarative policy hot-reload: starting with
// Day's cycle, the pipeline runs under Policy. Reloads apply at cycle
// boundaries only, mirroring the daemon's between-cycle Watcher poll.
type ReloadSpec struct {
	Day    int          `json:"day"`
	Policy *policy.Spec `json:"policy"`
}

// Spec declares one complete scenario. The zero value is not runnable; a
// spec needs a name, a day count, and an initial fleet size. A nil
// Policy runs policy.DefaultSpec().
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every random stream in the run; equal (scenario, seed)
	// pairs produce byte-identical traces.
	Seed int64 `json:"seed"`
	// Days is how many observe→decide→act cycles the scenario runs (one
	// cycle per simulated day).
	Days int `json:"days"`

	Fleet    FleetSpec     `json:"fleet"`
	Workload []PatternSpec `json:"workload,omitempty"`
	Faults   *FaultSpec    `json:"faults,omitempty"`
	Policy   *policy.Spec  `json:"policy,omitempty"`
	Reloads  []ReloadSpec  `json:"reloads,omitempty"`
}

// Parse decodes a scenario from JSON, rejecting unknown fields so typos
// in operator-authored files fail loudly instead of silently defaulting.
func Parse(b []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	return &s, nil
}

// LoadFile parses a scenario from a JSON file.
func LoadFile(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadDir loads every *.json scenario in dir, sorted by file name.
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Spec, 0, len(paths))
	for _, p := range paths {
		s, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Marshal renders the scenario as indented JSON (the on-disk format).
func (s *Spec) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Validate checks the scenario end to end — structure, pattern kinds and
// windows, fault bounds, and the embedded policy specs (validated
// against the fleet's modeling defaults). Every problem found is
// returned, joined.
func (s *Spec) Validate() error {
	if s == nil {
		return errors.New("scenario: nil spec")
	}
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("scenario: "+format, args...))
	}
	if s.Name == "" {
		fail("name is required (it keys the golden trace)")
	}
	if strings.ContainsAny(s.Name, " /\\") {
		fail("name %q must not contain spaces or path separators", s.Name)
	}
	if s.Days < 1 {
		fail("days must be >= 1, got %d", s.Days)
	}
	if s.Fleet.InitialTables < 1 {
		fail("fleet.initial_tables must be >= 1, got %d", s.Fleet.InitialTables)
	}
	if p := s.Fleet.DailyWriteProb; p < 0 || p > 1 {
		fail("fleet.daily_write_prob must be in [0,1], got %v", p)
	}
	if p := s.Fleet.DailyDriftProb; p < 0 || p > 1 {
		fail("fleet.daily_drift_prob must be in [0,1], got %v", p)
	}
	for i, p := range s.Workload {
		where := fmt.Sprintf("workload[%d]", i)
		// A field set on a kind that ignores it is a silent
		// misconfiguration (e.g. "day" on a burst would read as a
		// one-shot but fire every day) — reject it loudly, matching the
		// unknown-JSON-field policy.
		rejectSet := func(set bool, field string) {
			if set {
				fail("%s: %q does not apply to kind %q", where, field, p.Kind)
			}
		}
		switch p.Kind {
		case KindSteady:
			rejectSet(p.FromDay != 0 || p.ToDay != 0 || p.EveryDays != 0 || p.Day != 0 ||
				p.Database != "" || p.Tables != 0 || p.TablesFraction != 0 ||
				p.Commits != 0 || p.FilesPerCommit != 0, "any knob")
		case KindBurst:
			rejectSet(p.Day != 0, "day")
			rejectSet(p.Database != "", "database")
			rejectSet(p.Tables != 0, "tables")
			if p.TablesFraction < 0 || p.TablesFraction > 1 {
				fail("%s: tables_fraction must be in [0,1], got %v", where, p.TablesFraction)
			}
		case KindBackfill:
			rejectSet(p.FromDay != 0, "from_day")
			rejectSet(p.ToDay != 0, "to_day")
			rejectSet(p.EveryDays != 0, "every_days")
			rejectSet(p.Tables != 0, "tables")
			rejectSet(p.TablesFraction != 0, "tables_fraction")
			if p.Day < 1 || p.Day > s.Days {
				fail("%s: backfill day %d outside [1,%d]", where, p.Day, s.Days)
			}
		case KindHotSkew:
			rejectSet(p.Day != 0, "day")
			rejectSet(p.Database != "", "database")
			rejectSet(p.EveryDays != 0, "every_days")
			rejectSet(p.TablesFraction != 0, "tables_fraction")
			if p.Tables < 0 {
				fail("%s: tables must be >= 0 (0 or omitted = default 3), got %d", where, p.Tables)
			}
		default:
			fail("%s: unknown kind %q (have: %s)", where, p.Kind, strings.Join(patternKinds, ", "))
			continue
		}
		// Recurring windows must intersect the run, or the pattern can
		// never fire — a silently dead pattern measures nothing the
		// scenario claims to.
		if p.FromDay < 0 || (p.ToDay != 0 && p.ToDay < p.FromDay) {
			fail("%s: bad window [%d,%d]", where, p.FromDay, p.ToDay)
		}
		if p.FromDay > s.Days {
			fail("%s: from_day %d beyond the run's %d days (pattern would never fire)", where, p.FromDay, s.Days)
		}
		if p.ToDay > s.Days {
			fail("%s: to_day %d beyond the run's %d days", where, p.ToDay, s.Days)
		}
		if p.Commits < 0 || p.FilesPerCommit < 0 || p.EveryDays < 0 {
			fail("%s: commits, files_per_commit, every_days must be >= 0 (0 or omitted = default)", where)
		}
	}
	if f := s.Faults; f != nil {
		if f.WriterCommitsPerHour < 0 {
			fail("faults.writer_commits_per_hour must be >= 0, got %v", f.WriterCommitsPerHour)
		}
		if f.CommitFailureProb < 0 || f.CommitFailureProb > 1 {
			fail("faults.commit_failure_prob must be in [0,1], got %v", f.CommitFailureProb)
		}
		for i, d := range f.Drops {
			if d.Day < 1 || d.Day > s.Days {
				fail("faults.drops[%d]: day %d outside [1,%d]", i, d.Day, s.Days)
			}
			if d.Tables < 1 {
				fail("faults.drops[%d]: tables must be >= 1, got %d", i, d.Tables)
			}
		}
		lastRestart := 0
		for i, r := range f.Restarts {
			if r.Day < 2 || r.Day > s.Days {
				fail("faults.restarts[%d]: day %d outside [2,%d] (a restart needs a prior day to recover)", i, r.Day, s.Days)
			}
			if r.Day <= lastRestart {
				fail("faults.restarts[%d]: restart days must be strictly ascending", i)
			}
			lastRestart = r.Day
		}
		if len(f.Restarts) > 0 {
			// The incremental observation plane's dirty-set and stats-cache
			// state is not serialized; a restart under a trigger policy
			// could not be trace-invisible.
			if s.Policy != nil && s.Policy.Trigger != nil {
				fail("faults.restarts: restart faults cannot run under a policy with a trigger section (incremental state is not persisted)")
			}
			for i, r := range s.Reloads {
				if r.Policy != nil && r.Policy.Trigger != nil {
					fail("faults.restarts: reloads[%d] has a trigger section, incompatible with restart faults", i)
				}
			}
		}
	}
	env := policyEnvForValidation()
	if s.Policy != nil {
		if err := policy.Validate(s.Policy, env); err != nil {
			errs = append(errs, fmt.Errorf("scenario: policy: %w", err))
		}
	}
	lastReload := 0
	for i, r := range s.Reloads {
		where := fmt.Sprintf("reloads[%d]", i)
		if r.Day < 2 || r.Day > s.Days {
			fail("%s: day %d outside [2,%d] (a reload needs a prior cycle to reload from)", where, r.Day, s.Days)
		}
		if r.Day <= lastReload {
			fail("%s: reload days must be strictly ascending", where)
		}
		lastReload = r.Day
		if r.Policy == nil {
			fail("%s: policy is required", where)
		} else if err := policy.Validate(r.Policy, env); err != nil {
			errs = append(errs, fmt.Errorf("scenario: %s: %w", where, err))
		}
	}
	return errors.Join(errs...)
}

// policyEnvForValidation validates embedded policy specs against the
// fleet's modeling defaults (the same constants NewEngine compiles
// against, minus the live clock).
func policyEnvForValidation() policy.Env {
	model := fleet.DefaultModel(512 * 1024 * 1024)
	return policy.Env{
		TargetFileSize:      model.TargetFileSize,
		ExecutorMemoryGB:    model.ExecutorMemoryGB,
		RewriteBytesPerHour: model.RewriteBytesPerHour,
	}
}

// fleetConfig maps the fleet topology onto the substrate's config.
func (s *Spec) fleetConfig() fleet.Config {
	return fleet.Config{
		Seed:                s.Seed,
		InitialTables:       s.Fleet.InitialTables,
		Databases:           s.Fleet.Databases,
		QuotaObjectsPerDB:   s.Fleet.QuotaObjectsPerDB,
		TablesPerMonth:      s.Fleet.TablesPerMonth,
		InitialTinyFraction: s.Fleet.InitialTinyFraction,
		DailyDriftProb:      s.Fleet.DailyDriftProb,
		DailyWriteProb:      s.Fleet.DailyWriteProb,
	}
}

// policySpec returns the scenario's base policy (DefaultSpec when
// unset), cloned so engine runs never mutate the loaded scenario.
func (s *Spec) policySpec() *policy.Spec {
	if s.Policy != nil {
		return s.Policy.Clone()
	}
	return policy.DefaultSpec()
}
