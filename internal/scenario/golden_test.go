package scenario

// The golden-trace regression harness: every scenario shipped under
// examples/scenarios runs end to end and its canonical trace is
// byte-compared against the committed golden under
// examples/scenarios/golden. Regenerate after an intentional behaviour
// change with:
//
//	go test ./internal/scenario -run Scenario -update
//
// and review the golden diff like any other code change — it is the
// decision-level record of what your change did to the whole stack.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden scenario traces")

// scenariosDir is the shipped scenario corpus, relative to this package.
func scenariosDir() string { return filepath.Join("..", "..", "examples", "scenarios") }

func goldenPath(name string) string {
	return filepath.Join(scenariosDir(), "golden", name+".trace")
}

// cheapScenarios is the subset -short (and the CI race job) runs: the
// three fastest scenarios, covering the serial data-only path, the
// execution plane, and a mid-run policy reload.
var cheapScenarios = map[string]bool{
	"steady-state":       true,
	"hot-partition-skew": true,
	"policy-reload":      true,
}

func TestScenarioGoldenTraces(t *testing.T) {
	specs, err := LoadDir(scenariosDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 8 {
		t.Fatalf("only %d shipped scenarios found in %s", len(specs), scenariosDir())
	}
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if testing.Short() && !cheapScenarios[s.Name] {
				t.Skip("short mode runs the cheap subset only")
			}
			tr, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			got := tr.Marshal()
			gp := goldenPath(s.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(gp), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(gp, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(gp)
			if err != nil {
				t.Fatalf("missing golden trace (regenerate with -update): %v", err)
			}
			if diff := DiffTraces(want, got); diff != nil {
				t.Fatalf("trace diverges from golden %s:\n%s", gp, joinLines(diff))
			}
		})
	}
}

// TestScenarioTraceDeterminism is the acceptance check: the same
// scenario JSON with the same seed produces byte-identical traces run
// to run — the property the whole golden harness rests on. It uses the
// most compositional shipped scenario (bursts + backfill + execution
// plane).
func TestScenarioTraceDeterminism(t *testing.T) {
	s, err := LoadFile(filepath.Join(scenariosDir(), "burst-backfill.json"))
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// Re-load from disk so run-to-run state sharing is impossible.
	s2, err := LoadFile(filepath.Join(scenariosDir(), "burst-backfill.json"))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := DiffTraces(t1.Marshal(), t2.Marshal()); diff != nil {
		t.Fatalf("same scenario+seed diverged:\n%s", joinLines(diff))
	}
}

// TestScenarioShippedSpecsValidate is the schema guard CI runs through
// lakectl; it also runs here so `go test` alone catches a bad edit.
func TestScenarioShippedSpecsValidate(t *testing.T) {
	specs, err := LoadDir(scenariosDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
