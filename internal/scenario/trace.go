package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"autocomp/internal/core"
)

// TraceVersion is bumped whenever the canonical rendering changes shape,
// so stale goldens fail loudly instead of diffing confusingly.
const TraceVersion = 1

// ExecTrace is the cycle's execution-plane outcome (all zeros when the
// policy runs the serial act phase).
type ExecTrace struct {
	Done, Skipped, Conflicted, Deferred, Failed int
	Conflicts, Retries                          int
}

// FleetSnapshot is the end-of-cycle fleet state.
type FleetSnapshot struct {
	Tables      int
	Files       int64
	TinyFrac    float64
	MetaObjects int64
	// QuotaMax is the highest tenant quota utilization (0 when quotas
	// are unlimited).
	QuotaMax float64
}

// Injection tallies what the scenario injected during one day: pattern
// commits/files, dropped tables, and injected commit failures.
type Injection struct {
	Commits  int64
	Files    int64
	Drops    []string
	Failures int64
}

// CycleTrace is one observe→decide→act cycle of the run.
type CycleTrace struct {
	Day    int
	Policy string
	// Reloaded marks the cycle that first ran under a reloaded policy
	// (reloads apply at cycle boundaries only).
	Reloaded bool

	// ScanMode is "full" or "dirty" under the incremental observation
	// plane, "scan" for full-scan pipelines.
	ScanMode string
	Scanned  int
	Pool     int

	Generated, AfterPre, AfterStats, AfterTrait int
	Ranked, Selected                            int
	// Actions counts selected candidates per action type, indexed by
	// core.ActionType and sized from core.ActionTypes() (a new action
	// type shows up as a trace diff, not a panic).
	Actions []int
	// Top lists up to eight selected candidate IDs in rank order — the
	// decision-level fingerprint golden traces lock in.
	Top []string

	Exec ExecTrace
	// SpendGBHr is the per-shard committed budget spend (nil without an
	// execution plane).
	SpendGBHr []float64
	// MakespanHours is the execution plane's virtual wall time for the
	// cycle (zero without a scheduler). It is carried for consumers that
	// score traces — e.g. the autotune harness — and deliberately not
	// rendered by Marshal, so golden trace bytes are unaffected.
	MakespanHours float64

	FilesReduced    int
	MetadataReduced int
	BytesRewritten  int64
	ActualGBHr      float64

	Inject Injection
	Fleet  FleetSnapshot
}

// FinalTrace is the end-of-run summary and cumulative totals.
type FinalTrace struct {
	Fleet           FleetSnapshot
	FilesReduced    int
	MetadataReduced int
	ActualGBHr      float64
	Conflicts       int
	Failures        int
	InjectedCommits int64
	Dropped         int
}

// Trace is a complete scenario run in canonical, normalized form: equal
// (scenario, seed) pairs marshal to byte-identical traces.
type Trace struct {
	Scenario string
	Seed     int64
	Days     int
	Cycles   []CycleTrace
	Final    FinalTrace
}

// fmtF renders a float with fixed precision — the only float form that
// appears in a trace, so rendering is byte-stable.
func fmtF(v float64, prec int) string {
	s := strconv.FormatFloat(v, 'f', prec, 64)
	// Normalize negative zero, which can arise from rounding tiny
	// negative float residue.
	if strings.Trim(s, "-0.") == "" {
		return strconv.FormatFloat(0, 'f', prec, 64)
	}
	return s
}

// Marshal renders the canonical trace text.
func (tr *Trace) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# autocomp scenario trace v%d\n", TraceVersion)
	fmt.Fprintf(&b, "scenario=%s seed=%d days=%d\n", tr.Scenario, tr.Seed, tr.Days)
	for i := range tr.Cycles {
		c := &tr.Cycles[i]
		b.WriteByte('\n')
		reload := ""
		if c.Reloaded {
			reload = " reloaded=true"
		}
		fmt.Fprintf(&b, "cycle=%d policy=%s%s scan=%s scanned=%d pool=%d\n",
			c.Day, c.Policy, reload, c.ScanMode, c.Scanned, c.Pool)
		fmt.Fprintf(&b, "  funnel: generated=%d pre=%d stats=%d trait=%d ranked=%d selected=%d\n",
			c.Generated, c.AfterPre, c.AfterStats, c.AfterTrait, c.Ranked, c.Selected)
		parts := make([]string, 0, len(c.Actions))
		for _, a := range core.ActionTypes() {
			if int(a) < len(c.Actions) && c.Actions[int(a)] > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", a, c.Actions[int(a)]))
			}
		}
		if len(parts) == 0 {
			parts = append(parts, "none")
		}
		fmt.Fprintf(&b, "  actions: %s\n", strings.Join(parts, " "))
		if len(c.Top) > 0 {
			fmt.Fprintf(&b, "  top: %s\n", strings.Join(c.Top, " "))
		}
		fmt.Fprintf(&b, "  exec: done=%d skipped=%d conflicted=%d deferred=%d failed=%d conflicts=%d retries=%d\n",
			c.Exec.Done, c.Exec.Skipped, c.Exec.Conflicted, c.Exec.Deferred, c.Exec.Failed,
			c.Exec.Conflicts, c.Exec.Retries)
		if len(c.SpendGBHr) > 0 {
			spend := make([]string, len(c.SpendGBHr))
			for i, v := range c.SpendGBHr {
				spend[i] = fmtF(v, 3)
			}
			fmt.Fprintf(&b, "  spend_gbhr: %s\n", strings.Join(spend, "/"))
		}
		fmt.Fprintf(&b, "  effect: files_reduced=%d metadata_reduced=%d bytes_rewritten=%d actual_gbhr=%s\n",
			c.FilesReduced, c.MetadataReduced, c.BytesRewritten, fmtF(c.ActualGBHr, 3))
		drops := "-"
		if len(c.Inject.Drops) > 0 {
			drops = strings.Join(c.Inject.Drops, ",")
		}
		fmt.Fprintf(&b, "  inject: commits=%d files=%d failures=%d drops=%s\n",
			c.Inject.Commits, c.Inject.Files, c.Inject.Failures, drops)
		fmt.Fprintf(&b, "  fleet: %s\n", c.Fleet.render())
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "final: %s\n", tr.Final.Fleet.render())
	fmt.Fprintf(&b, "totals: files_reduced=%d metadata_reduced=%d actual_gbhr=%s conflicts=%d failures=%d injected_commits=%d dropped=%d\n",
		tr.Final.FilesReduced, tr.Final.MetadataReduced, fmtF(tr.Final.ActualGBHr, 3),
		tr.Final.Conflicts, tr.Final.Failures, tr.Final.InjectedCommits, tr.Final.Dropped)
	return []byte(b.String())
}

func (f FleetSnapshot) render() string {
	return fmt.Sprintf("tables=%d files=%d tiny_frac=%s meta_objects=%d quota_max=%s",
		f.Tables, f.Files, fmtF(f.TinyFrac, 4), f.MetaObjects, fmtF(f.QuotaMax, 4))
}

// DiffTraces compares two marshaled traces line by line and returns
// human-readable difference lines ("-" expected, "+" got), capped so a
// wholesale divergence stays readable. Identical traces return nil.
func DiffTraces(want, got []byte) []string {
	if string(want) == string(got) {
		return nil
	}
	a := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	c := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	const maxLines = 40
	var out []string
	n := len(a)
	if len(c) > n {
		n = len(c)
	}
	truncated := false
	for i := 0; i < n; i++ {
		if len(out) >= maxLines {
			truncated = true
			break
		}
		var la, lc string
		if i < len(a) {
			la = a[i]
		}
		if i < len(c) {
			lc = c[i]
		}
		if la == lc {
			continue
		}
		if la != "" {
			out = append(out, fmt.Sprintf("-%4d| %s", i+1, la))
		}
		if lc != "" {
			out = append(out, fmt.Sprintf("+%4d| %s", i+1, lc))
		}
	}
	if truncated {
		out = append(out, fmt.Sprintf("... (diff truncated at %d lines)", maxLines))
	}
	return out
}
