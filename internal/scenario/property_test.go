package scenario

// Property-based invariant testing: scenarios are generated from seeds
// (topology, patterns, faults, and policy shape all drawn from the
// seed's own stream) and run end to end. The engine checks the run
// invariants after every cycle — no candidate selected for a dropped
// table, per-shard GBHr spend bounded by budget plus one job, worker
// occupancy within the pool size, retained candidates and cached stats
// never referencing dropped tables or impossible versions — so a
// violation anywhere in the matrix surfaces as a run error here.

import (
	"fmt"
	"testing"

	"autocomp/internal/policy"
	"autocomp/internal/sim"
)

// randomSpec draws one scenario from seed. Every knob comes from the
// seed's own child stream, so the sweep is reproducible case by case.
func randomSpec(seed int64) *Spec {
	rng := sim.Child(seed, "scenario/proptest")
	s := &Spec{
		Name: fmt.Sprintf("prop-%d", seed),
		Seed: seed,
		Days: 4 + rng.Intn(3),
		Fleet: FleetSpec{
			InitialTables:  60 + rng.Intn(120),
			Databases:      3 + rng.Intn(5),
			TablesPerMonth: rng.Intn(60),
			DailyDriftProb: 0.01,
		},
	}
	if rng.Bernoulli(0.5) {
		s.Fleet.DailyWriteProb = 0.2 + 0.6*rng.Float64()
	}
	if rng.Bernoulli(0.5) {
		s.Fleet.QuotaObjectsPerDB = int64(200_000 + rng.Intn(2_000_000))
	}

	if rng.Bernoulli(0.7) {
		s.Workload = append(s.Workload, PatternSpec{
			Kind:           KindBurst,
			EveryDays:      1 + rng.Intn(2),
			TablesFraction: 0.05 + 0.2*rng.Float64(),
			Commits:        5 + rng.Intn(20),
			FilesPerCommit: 5 + rng.Intn(20),
		})
	}
	if rng.Bernoulli(0.5) {
		s.Workload = append(s.Workload, PatternSpec{
			Kind:    KindHotSkew,
			Tables:  2 + rng.Intn(5),
			Commits: 10 + rng.Intn(20),
		})
	}
	if rng.Bernoulli(0.4) {
		s.Workload = append(s.Workload, PatternSpec{
			Kind:           KindBackfill,
			Day:            1 + rng.Intn(s.Days),
			Commits:        40 + rng.Intn(80),
			FilesPerCommit: 20 + rng.Intn(30),
		})
	}

	// Faults: drops always (they are the invariant-bearing fault); the
	// writer race and commit failures most of the time.
	s.Faults = &FaultSpec{
		Drops: []DropSpec{
			{Day: 1 + rng.Intn(s.Days), Tables: 1 + rng.Intn(4)},
			{Day: 1 + rng.Intn(s.Days), Tables: 1 + rng.Intn(4)},
		},
	}
	if rng.Bernoulli(0.6) {
		s.Faults.WriterCommitsPerHour = float64(200 + rng.Intn(3000))
	}
	if rng.Bernoulli(0.6) {
		s.Faults.CommitFailureProb = 0.3 * rng.Float64()
	}

	// Policy shape: unified maintenance with a tight shard budget (to
	// exercise backpressure and the budget bound), the quota-adaptive
	// data-only pipeline, or the incremental observation plane.
	switch rng.Intn(3) {
	case 0:
		ps := policy.DefaultSpec()
		ps.Name = "prop-budgeted"
		ps.Execution.Shards = 1 + rng.Intn(4)
		ps.Execution.ShardBudgetGBHr = float64(5 + rng.Intn(40))
		s.Policy = ps
	case 1:
		ps := policy.DefaultDataSpec(true)
		ps.Name = "prop-data"
		ps.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(10 + rng.Intn(40))}}
		s.Policy = ps
	default:
		ps := policy.DefaultSpec()
		ps.Name = "prop-incremental"
		ps.Trigger = &policy.TriggerSpec{
			EveryCommits:   int64(1 + rng.Intn(3)),
			ReconcileEvery: 2 + rng.Intn(3),
		}
		s.Policy = ps
	}
	return s
}

func TestScenarioPropertyInvariants(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			spec := randomSpec(seed)
			if err := spec.Validate(); err != nil {
				t.Fatalf("generated spec invalid: %v", err)
			}
			tr, err := Run(spec)
			if err != nil {
				t.Fatalf("invariant violation or run failure: %v", err)
			}
			if len(tr.Cycles) != spec.Days {
				t.Fatalf("ran %d cycles, want %d", len(tr.Cycles), spec.Days)
			}
			if tr.Final.Dropped == 0 {
				t.Fatalf("scheduled drops never fired")
			}
			// Replaying the same generated scenario must reproduce the
			// trace byte for byte — determinism holds across the whole
			// random matrix, not just the curated corpus.
			tr2, err := Run(randomSpec(seed))
			if err != nil {
				t.Fatal(err)
			}
			if diff := DiffTraces(tr.Marshal(), tr2.Marshal()); diff != nil {
				t.Fatalf("random scenario seed %d not reproducible:\n%s", seed, joinLines(diff))
			}
		})
	}
}

// TestScenarioDroppedTableNeverSelected pins the drop invariant with a
// targeted case on top of the random sweep: heavy drops every day under
// the incremental plane, where a stale retained candidate would be the
// failure mode.
func TestScenarioDroppedTableNeverSelected(t *testing.T) {
	ps := policy.DefaultSpec()
	ps.Name = "drop-heavy"
	ps.Trigger = &policy.TriggerSpec{EveryCommits: 1, ReconcileEvery: 3}
	spec := &Spec{
		Name: "drop-heavy",
		Seed: 4,
		Days: 6,
		Fleet: FleetSpec{
			InitialTables:  80,
			Databases:      4,
			DailyWriteProb: 0.5,
		},
		Faults: &FaultSpec{Drops: []DropSpec{
			{Day: 1, Tables: 3}, {Day: 2, Tables: 3}, {Day: 3, Tables: 3},
			{Day: 4, Tables: 3}, {Day: 5, Tables: 3}, {Day: 6, Tables: 3},
		}},
		Policy: ps,
	}
	tr, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final.Dropped != 18 {
		t.Fatalf("dropped %d tables, want 18", tr.Final.Dropped)
	}
	if tr.Final.Fleet.Tables != 80-18 {
		t.Fatalf("final fleet %d tables, want %d", tr.Final.Fleet.Tables, 80-18)
	}
}
