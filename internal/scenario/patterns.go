package scenario

import (
	"fmt"

	"autocomp/internal/fleet"
	"autocomp/internal/sim"
)

// pattern is one compiled temporal write pattern. apply runs at most
// once per simulated day, after the fleet's organic growth and before
// the day's observe→decide→act cycle.
type pattern interface {
	apply(e *Engine, day int)
}

// buildPatterns compiles the scenario's workload section. Each pattern
// draws from its own child stream labeled by position and kind, so
// reordering-independent determinism holds: adding pattern N+1 never
// perturbs the draws of patterns 1..N.
func buildPatterns(s *Spec) []pattern {
	out := make([]pattern, 0, len(s.Workload))
	for i, ps := range s.Workload {
		rng := sim.Child(s.Seed, fmt.Sprintf("scenario/pattern/%d/%s", i, ps.Kind))
		switch ps.Kind {
		case KindSteady:
			out = append(out, steadyPattern{})
		case KindBurst:
			out = append(out, &burstPattern{spec: withPatternDefaults(ps, s.Days), rng: rng})
		case KindBackfill:
			out = append(out, &backfillPattern{spec: withPatternDefaults(ps, s.Days), rng: rng})
		case KindHotSkew:
			out = append(out, &hotSkewPattern{spec: withPatternDefaults(ps, s.Days)})
		}
	}
	return out
}

// withPatternDefaults fills a pattern's zero-valued knobs.
func withPatternDefaults(ps PatternSpec, days int) PatternSpec {
	if ps.FromDay == 0 {
		ps.FromDay = 1
	}
	if ps.ToDay == 0 {
		ps.ToDay = days
	}
	if ps.EveryDays == 0 {
		ps.EveryDays = 1
	}
	if ps.Commits == 0 {
		ps.Commits = 10
	}
	if ps.FilesPerCommit == 0 {
		ps.FilesPerCommit = 10
	}
	if ps.Tables == 0 {
		ps.Tables = 3
	}
	if ps.TablesFraction == 0 {
		ps.TablesFraction = 0.05
	}
	return ps
}

// steadyPattern adds nothing: the fleet's organic growth is the steady
// workload.
type steadyPattern struct{}

func (steadyPattern) apply(*Engine, int) {}

// burstPattern hits a random fraction of the fleet with a batch of
// writer commits on recurring days — the diurnal/batch-window burst
// shape.
type burstPattern struct {
	spec PatternSpec
	rng  *sim.RNG
}

func (p *burstPattern) apply(e *Engine, day int) {
	s := p.spec
	if day < s.FromDay || day > s.ToDay || (day-s.FromDay)%s.EveryDays != 0 {
		return
	}
	tables := e.fleet.Tables()
	for _, t := range tables {
		if !p.rng.Bernoulli(s.TablesFraction) {
			continue
		}
		e.commitStorm(t, s.Commits, s.FilesPerCommit)
	}
}

// backfillPattern is a one-day storm: every table of the target
// database (or the whole fleet) replays a heavy history.
type backfillPattern struct {
	spec PatternSpec
	rng  *sim.RNG
}

func (p *backfillPattern) apply(e *Engine, day int) {
	s := p.spec
	if day != s.Day {
		return
	}
	for _, t := range e.fleet.Tables() {
		if s.Database != "" && t.Database() != s.Database {
			continue
		}
		// Jitter the storm size per table so the backfill is lumpy the
		// way replayed history is.
		commits := int(p.rng.Jitter(float64(s.Commits), 0.3))
		if commits < 1 {
			commits = 1
		}
		e.commitStorm(t, commits, s.FilesPerCommit)
	}
}

// hotSkewPattern concentrates daily extra commits on the currently most
// fragmented tables — hot tables stay hot, the skew that defeats
// uniform maintenance schedules. Table choice is deterministic (the
// fragmentation ranking), so this pattern needs no random stream.
type hotSkewPattern struct {
	spec PatternSpec
}

func (p *hotSkewPattern) apply(e *Engine, day int) {
	s := p.spec
	if day < s.FromDay || day > s.ToDay {
		return
	}
	for _, t := range e.fleet.MostFragmented(s.Tables) {
		e.commitStorm(t, s.Commits, s.FilesPerCommit)
	}
}

// commitStorm lands commits writer commits of files small files each on
// t and accounts them in the day's injection counters.
func (e *Engine) commitStorm(t *fleet.Table, commits, files int) {
	for i := 0; i < commits; i++ {
		t.WriterCommit(int64(files))
	}
	e.inj.Commits += int64(commits)
	e.inj.Files += int64(commits) * int64(files)
}
