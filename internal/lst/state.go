package lst

import (
	"fmt"
	"sort"
	"time"

	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// MetaObjectState is the serialized form of one tracked metadata object.
// Kind uses the metaKind numbering (0 metadata.json, 1 manifest,
// 2 checkpoint); Ref keeps the metaObject.ref semantics, including the
// liveManifest sentinel.
type MetaObjectState struct {
	Path string `json:"path"`
	Kind int    `json:"kind"`
	Ref  int64  `json:"ref"`
	Size int64  `json:"size"`
}

// TableState is the complete serializable state of a Table: everything
// FromState needs to reconstruct a byte-identical table (and its storage
// objects) in a fresh process. Files are sorted by path and Meta keeps
// the metadata-log order, so equal tables always produce deeply equal
// states — the invariant the durable backend's replay tests pin.
type TableState struct {
	Config                TableConfig       `json:"config"`
	Version               int64             `json:"version"`
	Snapshots             []Snapshot        `json:"snapshots,omitempty"`
	Files                 []DataFile        `json:"files,omitempty"`
	Meta                  []MetaObjectState `json:"meta,omitempty"`
	NextFileID            int64             `json:"next_file_id"`
	NextSnapID            int64             `json:"next_snap_id"`
	Created               time.Duration     `json:"created_ns"`
	LastWrite             time.Duration     `json:"last_write_ns"`
	WriteCount            int64             `json:"write_count"`
	LastCheckpointVersion int64             `json:"last_checkpoint_version"`
}

// State returns the table's complete serializable state.
func (t *Table) State() *TableState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stateLocked()
}

func (t *Table) stateLocked() *TableState {
	st := &TableState{
		Config:                t.cfg,
		Version:               t.version,
		NextFileID:            t.nextFileID,
		NextSnapID:            t.nextSnapID,
		Created:               t.created,
		LastWrite:             t.lastWrite,
		WriteCount:            t.writeCount,
		LastCheckpointVersion: t.lastCheckpointVersion,
	}
	st.Snapshots = make([]Snapshot, len(t.snapshots))
	for i, s := range t.snapshots {
		st.Snapshots[i] = *s
	}
	st.Files = make([]DataFile, 0, len(t.files))
	for _, f := range t.files {
		st.Files = append(st.Files, *f)
	}
	sort.Slice(st.Files, func(i, j int) bool { return st.Files[i].Path < st.Files[j].Path })
	st.Meta = make([]MetaObjectState, len(t.metaObjects))
	for i, m := range t.metaObjects {
		st.Meta[i] = MetaObjectState{Path: m.path, Kind: int(m.kind), Ref: m.ref, Size: m.size}
	}
	return st
}

// FromState reconstructs a table from a serialized state, recreating its
// data and metadata objects in fs. The target namespace must not already
// hold objects at the table's paths. Object creation times in fs reflect
// the reconstruction clock, not the original writes — nothing reads
// them; every time the table itself exposes (Created, LastWrite,
// snapshot timestamps, per-file AddedAt) is restored exactly.
func FromState(st *TableState, fs *storage.NameNode, clock *sim.Clock) (*Table, error) {
	if st.Config.Database == "" || st.Config.Name == "" {
		return nil, fmt.Errorf("lst: state requires database and name")
	}
	cfg := st.Config
	if cfg.ManifestEntriesPerFile <= 0 {
		cfg.ManifestEntriesPerFile = DefaultManifestEntriesPerFile
	}
	t := &Table{
		cfg:                   cfg,
		fs:                    fs,
		clock:                 clock,
		files:                 make(map[string]*DataFile, len(st.Files)),
		version:               st.Version,
		nextFileID:            st.NextFileID,
		nextSnapID:            st.NextSnapID,
		created:               st.Created,
		lastWrite:             st.LastWrite,
		writeCount:            st.WriteCount,
		lastCheckpointVersion: st.LastCheckpointVersion,
	}
	t.snapshots = make([]*Snapshot, len(st.Snapshots))
	for i := range st.Snapshots {
		s := st.Snapshots[i]
		t.snapshots[i] = &s
	}
	for i := range st.Files {
		f := st.Files[i]
		if err := fs.Create(f.Path, f.SizeBytes); err != nil {
			return nil, fmt.Errorf("lst: restoring %s: %w", f.Path, err)
		}
		t.files[f.Path] = &f
	}
	t.metaObjects = make([]metaObject, len(st.Meta))
	for i, m := range st.Meta {
		if err := fs.Create(m.Path, m.Size); err != nil {
			return nil, fmt.Errorf("lst: restoring %s: %w", m.Path, err)
		}
		t.metaObjects[i] = metaObject{path: m.Path, kind: metaKind(m.Kind), ref: m.Ref, size: m.Size}
	}
	return t, nil
}
