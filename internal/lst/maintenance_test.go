package lst

import (
	"testing"
	"time"

	"autocomp/internal/storage"
)

// appendN commits n single-file appends a minute apart.
func appendN(t *testing.T, tbl *Table, clock interface{ Advance(time.Duration) }, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		clock.Advance(time.Minute)
		if _, err := tbl.AppendFiles([]FileSpec{{SizeBytes: storage.MB, RowCount: 1}}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExpireSnapshotsClampsKeepLast(t *testing.T) {
	for _, keep := range []int{0, -5} {
		fs, clock := testSetup()
		tbl := newUnpartitionedTable(t, fs, clock)
		appendN(t, tbl, clock, 5)
		if _, err := tbl.ExpireSnapshots(keep); err != nil {
			t.Fatal(err)
		}
		// keepLast < 1 clamps to 1: the newest snapshot must survive.
		if got := len(tbl.Snapshots()); got != 1 {
			t.Fatalf("keepLast=%d retained %d snapshots, want 1", keep, got)
		}
	}
}

func TestExpireSnapshotsDeletionAccounting(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	appendN(t, tbl, clock, 10)

	// 1 initial v0 metadata.json + 10 commits × (1 manifest + 1
	// metadata.json).
	ms := tbl.MetadataStats()
	if ms.MetadataJSONs != 11 || ms.Manifests != 10 {
		t.Fatalf("metadata breakdown = %+v", ms)
	}
	est := tbl.ExpireEstimate(3)
	before := fs.ObjectCount()
	deleted, err := tbl.ExpireSnapshots(3)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != est {
		t.Fatalf("deleted %d, estimate said %d", deleted, est)
	}
	// Dropping snapshots 1..7 removes their 7 manifests plus the
	// metadata.json versions older than the oldest retained sequence
	// (v0..v7): 8 files.
	if deleted != 15 {
		t.Fatalf("deleted = %d, want 15 (7 manifests + 8 metadata.json)", deleted)
	}
	if fs.ObjectCount() != before-deleted {
		t.Fatalf("storage objects %d -> %d, deleted %d", before, fs.ObjectCount(), deleted)
	}
	after := tbl.MetadataStats()
	if after.Manifests != 3 || after.MetadataJSONs != 3 {
		t.Fatalf("after expire: %+v", after)
	}
	// Idempotent: a second expiry at the same retention is a no-op.
	if n, _ := tbl.ExpireSnapshots(3); n != 0 {
		t.Fatalf("second expire deleted %d", n)
	}
}

func TestCheckpointCollapsesMetadataLog(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	appendN(t, tbl, clock, 10)

	before := tbl.MetadataStats()
	fsBefore := fs.ObjectCount()
	res, err := tbl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped {
		t.Fatal("checkpoint skipped with a 21-object log")
	}
	// Everything except the current metadata.json is reclaimed and one
	// checkpoint object is written.
	if res.ObjectsRemoved != before.Objects-1 || res.ObjectsAdded != 1 {
		t.Fatalf("removed=%d added=%d, log had %d objects", res.ObjectsRemoved, res.ObjectsAdded, before.Objects)
	}
	if res.BytesReclaimed <= 0 || res.BytesWritten <= 0 {
		t.Fatalf("byte accounting: %+v", res)
	}
	if fs.ObjectCount() != fsBefore-res.Reduction() {
		t.Fatalf("storage objects %d -> %d, net reduction %d", fsBefore, fs.ObjectCount(), res.Reduction())
	}
	after := tbl.MetadataStats()
	if after.Objects != 2 || after.Checkpoints != 1 || after.MetadataJSONs != 1 || after.Manifests != 0 {
		t.Fatalf("after checkpoint: %+v", after)
	}
	if after.LastCheckpointVersion != tbl.Version() || after.VersionsSinceCheckpoint != 0 {
		t.Fatalf("checkpoint status: %+v (version %d)", after, tbl.Version())
	}
	// Data is untouched.
	if tbl.FileCount() != 10 {
		t.Fatalf("live files = %d", tbl.FileCount())
	}

	// A second checkpoint with no intervening commits has nothing to do.
	res2, err := tbl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Skipped {
		t.Fatalf("up-to-date checkpoint not skipped: %+v", res2)
	}
}

func TestCheckpointThenCommitsThenRecheckpoint(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	appendN(t, tbl, clock, 5)
	if _, err := tbl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendN(t, tbl, clock, 4)
	ms := tbl.MetadataStats()
	if ms.VersionsSinceCheckpoint != 4 {
		t.Fatalf("versions since checkpoint = %d", ms.VersionsSinceCheckpoint)
	}
	// 2 from the first checkpoint + 4 commits × 2 objects.
	if ms.Objects != 10 {
		t.Fatalf("objects = %d, want 10", ms.Objects)
	}
	res, err := tbl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// The stale checkpoint is reclaimed along with the post-checkpoint
	// log tail.
	if res.ObjectsRemoved != 9 || res.ObjectsAdded != 1 {
		t.Fatalf("recheckpoint removed=%d added=%d", res.ObjectsRemoved, res.ObjectsAdded)
	}
	after := tbl.MetadataStats()
	if after.Objects != 2 || after.Checkpoints != 1 {
		t.Fatalf("after recheckpoint: %+v", after)
	}
}

func TestExpireKeepsCheckpoint(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	appendN(t, tbl, clock, 5)
	if _, err := tbl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendN(t, tbl, clock, 5)
	if _, err := tbl.ExpireSnapshots(1); err != nil {
		t.Fatal(err)
	}
	ms := tbl.MetadataStats()
	if ms.Checkpoints != 1 {
		t.Fatalf("expire deleted the checkpoint: %+v", ms)
	}
}

func TestRewriteManifestsConsolidates(t *testing.T) {
	fs, clock := testSetup()
	tbl, err := NewTable(TableConfig{
		Database: "db1", Name: "orders",
		Schema:                 Schema{Fields: []Field{{Name: "k", Type: TypeInt64}}},
		ManifestEntriesPerFile: 4,
	}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, tbl, clock, 10) // 10 manifests, one entry each

	before := tbl.MetadataStats()
	if before.Manifests != 10 || before.ConsolidatedManifests != 3 {
		t.Fatalf("before rewrite: %+v", before)
	}
	fsBefore := fs.ObjectCount()
	res, err := tbl.RewriteManifests()
	if err != nil {
		t.Fatal(err)
	}
	// 10 single-entry manifests repack into ceil(10/4) = 3.
	if res.ObjectsRemoved != 10 || res.ObjectsAdded != 3 {
		t.Fatalf("rewrite removed=%d added=%d", res.ObjectsRemoved, res.ObjectsAdded)
	}
	if fs.ObjectCount() != fsBefore-res.Reduction() {
		t.Fatalf("storage objects %d -> %d", fsBefore, fs.ObjectCount())
	}
	after := tbl.MetadataStats()
	if after.Manifests != 3 {
		t.Fatalf("after rewrite: %+v", after)
	}
	// metadata.json history is untouched (unlike Checkpoint).
	if after.MetadataJSONs != before.MetadataJSONs {
		t.Fatalf("rewrite touched metadata.json history: %+v", after)
	}
	// Already consolidated: nothing to do.
	res2, err := tbl.RewriteManifests()
	if err != nil || !res2.Skipped {
		t.Fatalf("second rewrite = %+v, %v", res2, err)
	}
}

func TestExpireKeepsConsolidatedManifests(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	appendN(t, tbl, clock, 5)
	if _, err := tbl.RewriteManifests(); err != nil {
		t.Fatal(err)
	}
	appendN(t, tbl, clock, 5)
	// Expiring past the rewrite point must not reclaim the consolidated
	// manifests: they describe the live file set, not history.
	if _, err := tbl.ExpireSnapshots(1); err != nil {
		t.Fatal(err)
	}
	ms := tbl.MetadataStats()
	if ms.Manifests < 1 {
		t.Fatalf("expire reclaimed the consolidated manifests: %+v", ms)
	}
	if ms.ConsolidatedManifests != 1 {
		t.Fatalf("consolidated estimate = %d", ms.ConsolidatedManifests)
	}
	// The live files are all still accounted for.
	if tbl.FileCount() != 10 {
		t.Fatalf("live files = %d", tbl.FileCount())
	}
}

func TestMetadataStatsOrphanAccounting(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	appendN(t, tbl, clock, 6)
	ms := tbl.MetadataStats()
	// All metadata.json versions except the current one are orphans.
	if ms.OrphanObjects != ms.MetadataJSONs-1 {
		t.Fatalf("orphans = %d of %d metadata.json", ms.OrphanObjects, ms.MetadataJSONs)
	}
	if ms.LastCheckpointVersion != -1 || ms.VersionsSinceCheckpoint != tbl.Version() {
		t.Fatalf("checkpoint status on fresh table: %+v", ms)
	}
}
