package lst

import (
	"errors"
	"testing"
	"time"

	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

func testSetup() (*storage.NameNode, *sim.Clock) {
	clock := sim.NewClock()
	return storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1)), clock
}

func newPartitionedTable(t *testing.T, fs *storage.NameNode, clock *sim.Clock, strict bool) *Table {
	t.Helper()
	tbl, err := NewTable(TableConfig{
		Database: "db1",
		Name:     "lineitem",
		Schema:   Schema{Fields: []Field{{Name: "l_orderkey", Type: TypeInt64}, {Name: "l_shipdate", Type: TypeDate}}},
		Spec:     PartitionSpec{Column: "l_shipdate", Transform: TransformMonth},
		Mode:     CopyOnWrite,

		StrictRewriteConflicts: strict,
	}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func newUnpartitionedTable(t *testing.T, fs *storage.NameNode, clock *sim.Clock) *Table {
	t.Helper()
	tbl, err := NewTable(TableConfig{
		Database: "db1",
		Name:     "orders",
		Schema:   Schema{Fields: []Field{{Name: "o_orderkey", Type: TypeInt64}}},
	}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableWritesMetadata(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	if tbl.MetadataObjectCount() != 1 {
		t.Fatalf("metadata objects = %d, want 1 (v0)", tbl.MetadataObjectCount())
	}
	if fs.ObjectCount() != 1 {
		t.Fatalf("fs objects = %d", fs.ObjectCount())
	}
	if tbl.Version() != 0 || tbl.FileCount() != 0 {
		t.Fatalf("fresh table version=%d files=%d", tbl.Version(), tbl.FileCount())
	}
}

func TestNewTableValidation(t *testing.T) {
	fs, clock := testSetup()
	if _, err := NewTable(TableConfig{Name: "x"}, fs, clock); err == nil {
		t.Fatal("missing database accepted")
	}
	if _, err := NewTable(TableConfig{Database: "d"}, fs, clock); err == nil {
		t.Fatal("missing name accepted")
	}
}

func TestAppendFiles(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	snap, err := tbl.AppendFiles([]FileSpec{
		{Partition: "2024-01", SizeBytes: 10 * storage.MB, RowCount: 1000},
		{Partition: "2024-01", SizeBytes: 20 * storage.MB, RowCount: 2000},
		{Partition: "2024-02", SizeBytes: 600 * storage.MB, RowCount: 60000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Op != OpAppend || snap.Added != 3 || snap.Removed != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if tbl.FileCount() != 3 {
		t.Fatalf("file count = %d", tbl.FileCount())
	}
	if tbl.TotalBytes() != 630*storage.MB {
		t.Fatalf("total bytes = %d", tbl.TotalBytes())
	}
	if got := tbl.SmallFileCount(512 * storage.MB); got != 2 {
		t.Fatalf("small files = %d, want 2", got)
	}
	parts := tbl.Partitions()
	if len(parts) != 2 || parts[0] != "2024-01" || parts[1] != "2024-02" {
		t.Fatalf("partitions = %v", parts)
	}
	if got := len(tbl.FilesInPartition("2024-01")); got != 2 {
		t.Fatalf("files in 2024-01 = %d", got)
	}
	if tbl.Version() != 1 {
		t.Fatalf("version = %d", tbl.Version())
	}
}

func TestAppendNeverConflicts(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	tx1 := tbl.NewTransaction(OpAppend)
	tx1.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})
	tx2 := tbl.NewTransaction(OpAppend)
	tx2.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})
	if _, err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatalf("concurrent append conflicted: %v", err)
	}
	if tbl.FileCount() != 2 {
		t.Fatalf("file count = %d", tbl.FileCount())
	}
}

func TestOverwriteConflictsOnOverlap(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	if _, err := tbl.AppendFiles([]FileSpec{
		{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10},
		{Partition: "2024-02", SizeBytes: storage.MB, RowCount: 10},
	}); err != nil {
		t.Fatal(err)
	}

	// Two overwrites on the same partition: second must conflict.
	a := tbl.NewTransaction(OpOverwrite)
	a.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})
	b := tbl.NewTransaction(OpOverwrite)
	b.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); !errors.Is(err, ErrCommitConflict) {
		t.Fatalf("overlapping overwrite: %v", err)
	}

	// Disjoint partitions do not conflict.
	c := tbl.NewTransaction(OpOverwrite)
	c.Add(FileSpec{Partition: "2024-02", SizeBytes: storage.MB, RowCount: 10})
	d := tbl.NewTransaction(OpOverwrite)
	d.Add(FileSpec{Partition: "2024-03", SizeBytes: storage.MB, RowCount: 10})
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(); err != nil {
		t.Fatalf("disjoint overwrite conflicted: %v", err)
	}
}

func TestOverwriteIgnoresConcurrentAppend(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	ow := tbl.NewTransaction(OpOverwrite)
	ow.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})
	if _, err := tbl.AppendFiles([]FileSpec{{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ow.Commit(); err != nil {
		t.Fatalf("overwrite after concurrent append conflicted: %v", err)
	}
}

func TestStrictRewriteConflictsAcrossDisjointPartitions(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, true) // Iceberg v1.2.0 quirk on
	if _, err := tbl.AppendFiles([]FileSpec{
		{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10},
		{Partition: "2024-02", SizeBytes: storage.MB, RowCount: 10},
	}); err != nil {
		t.Fatal(err)
	}

	jan := tbl.FilesInPartition("2024-01")
	feb := tbl.FilesInPartition("2024-02")

	rw1 := tbl.NewTransaction(OpRewrite)
	rw1.Remove(jan[0].Path, jan[0].Partition)
	rw1.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})

	rw2 := tbl.NewTransaction(OpRewrite)
	rw2.Remove(feb[0].Path, feb[0].Partition)
	rw2.Add(FileSpec{Partition: "2024-02", SizeBytes: storage.MB, RowCount: 10})

	if _, err := rw1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Distinct partitions, but strict validation rejects it — the paper's
	// counterintuitive observation (§4.4).
	if _, err := rw2.Commit(); !errors.Is(err, ErrCommitConflict) {
		t.Fatalf("strict rewrite on disjoint partitions: %v", err)
	}
}

func TestRelaxedRewriteAllowsDisjointPartitions(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	if _, err := tbl.AppendFiles([]FileSpec{
		{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10},
		{Partition: "2024-02", SizeBytes: storage.MB, RowCount: 10},
	}); err != nil {
		t.Fatal(err)
	}
	jan := tbl.FilesInPartition("2024-01")
	feb := tbl.FilesInPartition("2024-02")

	rw1 := tbl.NewTransaction(OpRewrite)
	rw1.Remove(jan[0].Path, jan[0].Partition)
	rw1.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})
	rw2 := tbl.NewTransaction(OpRewrite)
	rw2.Remove(feb[0].Path, feb[0].Partition)
	rw2.Add(FileSpec{Partition: "2024-02", SizeBytes: storage.MB, RowCount: 10})

	if _, err := rw1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := rw2.Commit(); err != nil {
		t.Fatalf("relaxed rewrite on disjoint partitions conflicted: %v", err)
	}
}

func TestRewriteStaleFileConflict(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	if _, err := tbl.AppendFiles([]FileSpec{{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10}}); err != nil {
		t.Fatal(err)
	}
	f := tbl.FilesInPartition("2024-01")[0]

	rw1 := tbl.NewTransaction(OpRewrite)
	rw1.Remove(f.Path, f.Partition)
	rw1.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})
	rw2 := tbl.NewTransaction(OpRewrite)
	rw2.Remove(f.Path, f.Partition)
	rw2.Add(FileSpec{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10})

	if _, err := rw1.Commit(); err != nil {
		t.Fatal(err)
	}
	_, err := rw2.Commit()
	if !errors.Is(err, ErrCommitConflict) || !errors.Is(err, ErrStaleFiles) {
		t.Fatalf("stale rewrite: %v", err)
	}
}

func TestUnpartitionedOpsAlwaysOverlap(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	if _, err := tbl.AppendFiles([]FileSpec{{SizeBytes: storage.MB, RowCount: 10}}); err != nil {
		t.Fatal(err)
	}
	a := tbl.NewTransaction(OpOverwrite)
	a.Add(FileSpec{SizeBytes: storage.MB, RowCount: 10})
	b := tbl.NewTransaction(OpDelete)
	old := tbl.LiveFiles()[0]
	b.Remove(old.Path, old.Partition)
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); !errors.Is(err, ErrCommitConflict) {
		t.Fatalf("unpartitioned concurrent write: %v", err)
	}
}

func TestCommitTwiceFails(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	tx := tbl.NewTransaction(OpAppend)
	tx.Add(FileSpec{SizeBytes: storage.MB, RowCount: 1})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); !errors.Is(err, ErrTransactionDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestVersionMonotonicAndSnapshotSequence(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	for i := 0; i < 5; i++ {
		clock.Advance(time.Minute)
		if _, err := tbl.AppendFiles([]FileSpec{{SizeBytes: storage.MB, RowCount: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	snaps := tbl.Snapshots()
	if len(snaps) != 5 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Sequence != snaps[i-1].Sequence+1 {
			t.Fatalf("sequence gap: %d -> %d", snaps[i-1].Sequence, snaps[i].Sequence)
		}
		if snaps[i].Timestamp < snaps[i-1].Timestamp {
			t.Fatal("snapshot timestamps not monotonic")
		}
	}
	if tbl.Version() != 5 {
		t.Fatalf("version = %d", tbl.Version())
	}
	if tbl.WriteCount() != 5 {
		t.Fatalf("write count = %d", tbl.WriteCount())
	}
}

func TestPhysicalFileAccounting(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	if _, err := tbl.AppendFiles([]FileSpec{
		{Partition: "2024-01", SizeBytes: 10 * storage.MB, RowCount: 100},
		{Partition: "2024-01", SizeBytes: 10 * storage.MB, RowCount: 100},
	}); err != nil {
		t.Fatal(err)
	}
	// 1 initial metadata + 2 data + 1 manifest + 1 metadata = 5
	if got := fs.ObjectCount(); got != 5 {
		t.Fatalf("fs objects = %d, want 5", got)
	}
	// Rewrite both into one: removes 2 data objects, adds 1 data + 1
	// manifest + 1 metadata.
	files := tbl.FilesInPartition("2024-01")
	rw := tbl.NewTransaction(OpRewrite)
	for _, f := range files {
		rw.Remove(f.Path, f.Partition)
	}
	rw.Add(FileSpec{Partition: "2024-01", SizeBytes: 20 * storage.MB, RowCount: 200})
	if _, err := rw.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := fs.ObjectCount(); got != 6 {
		t.Fatalf("fs objects after rewrite = %d, want 6", got)
	}
	if tbl.FileCount() != 1 {
		t.Fatalf("live files = %d", tbl.FileCount())
	}
	if tbl.TotalBytes() != 20*storage.MB {
		t.Fatalf("bytes = %d", tbl.TotalBytes())
	}
}

func TestOverwritePartitionHelper(t *testing.T) {
	fs, clock := testSetup()
	tbl := newPartitionedTable(t, fs, clock, false)
	tbl.AppendFiles([]FileSpec{
		{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10},
		{Partition: "2024-01", SizeBytes: storage.MB, RowCount: 10},
		{Partition: "2024-02", SizeBytes: storage.MB, RowCount: 10},
	})
	snap, err := tbl.OverwritePartition("2024-01", []FileSpec{{Partition: "2024-01", SizeBytes: 2 * storage.MB, RowCount: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Removed != 2 || snap.Added != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := len(tbl.FilesInPartition("2024-01")); got != 1 {
		t.Fatalf("2024-01 files = %d", got)
	}
	if got := len(tbl.FilesInPartition("2024-02")); got != 1 {
		t.Fatalf("2024-02 files = %d", got)
	}
}

func TestMergeOnReadDeltaFiles(t *testing.T) {
	fs, clock := testSetup()
	tbl, err := NewTable(TableConfig{
		Database: "db1", Name: "mor",
		Mode: MergeOnRead,
	}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	tbl.AppendFiles([]FileSpec{{SizeBytes: 100 * storage.MB, RowCount: 1000}})
	tbl.AppendFiles([]FileSpec{{SizeBytes: storage.MB, RowCount: 10, IsDelta: true}})
	tbl.AppendFiles([]FileSpec{{SizeBytes: storage.MB, RowCount: 10, IsDelta: true}})
	if tbl.DeltaFileCount() != 2 {
		t.Fatalf("delta files = %d", tbl.DeltaFileCount())
	}
	if tbl.FileCount() != 3 {
		t.Fatalf("files = %d", tbl.FileCount())
	}
}

func TestSizeHistogram(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	tbl.AppendFiles([]FileSpec{
		{SizeBytes: 10 * storage.MB, RowCount: 1},
		{SizeBytes: 200 * storage.MB, RowCount: 1},
		{SizeBytes: 600 * storage.MB, RowCount: 1},
	})
	h := tbl.SizeHistogram([]int64{128 * storage.MB, 512 * storage.MB})
	if h[0] != 1 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestExpireSnapshots(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	for i := 0; i < 10; i++ {
		clock.Advance(time.Minute)
		if _, err := tbl.AppendFiles([]FileSpec{{SizeBytes: storage.MB, RowCount: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	before := fs.ObjectCount()
	metaBefore := tbl.MetadataObjectCount()
	deleted, err := tbl.ExpireSnapshots(2)
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("expire deleted nothing")
	}
	if fs.ObjectCount() != before-deleted {
		t.Fatalf("fs objects %d -> %d with deleted=%d", before, fs.ObjectCount(), deleted)
	}
	if tbl.MetadataObjectCount() >= metaBefore {
		t.Fatalf("metadata objects not trimmed: %d -> %d", metaBefore, tbl.MetadataObjectCount())
	}
	if got := len(tbl.Snapshots()); got != 2 {
		t.Fatalf("retained snapshots = %d", got)
	}
	// Live data files must be untouched.
	if tbl.FileCount() != 10 {
		t.Fatalf("live files after expire = %d", tbl.FileCount())
	}
}

func TestExpireNoOpWhenFewSnapshots(t *testing.T) {
	fs, clock := testSetup()
	tbl := newUnpartitionedTable(t, fs, clock)
	tbl.AppendFiles([]FileSpec{{SizeBytes: storage.MB, RowCount: 1}})
	deleted, err := tbl.ExpireSnapshots(5)
	if err != nil || deleted != 0 {
		t.Fatalf("expire = %d, %v", deleted, err)
	}
}

func TestManifestCountScalesWithChanges(t *testing.T) {
	fs, clock := testSetup()
	tbl, err := NewTable(TableConfig{
		Database: "db", Name: "t", ManifestEntriesPerFile: 10,
	}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]FileSpec, 25)
	for i := range specs {
		specs[i] = FileSpec{SizeBytes: storage.MB, RowCount: 1}
	}
	snap, err := tbl.AppendFiles(specs)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Manifests != 3 {
		t.Fatalf("manifests = %d, want 3 for 25 changes @10/manifest", snap.Manifests)
	}
}

func TestQuotaExceededCommitFailsAtomically(t *testing.T) {
	fs, clock := testSetup()
	fs.SetQuota("db1", 6)
	tbl := newUnpartitionedTable(t, fs, clock) // writes 1 metadata object
	// Commit needs 3 data + 1 manifest + 1 metadata = 5 → 6 total, fits.
	if _, err := tbl.AppendFiles([]FileSpec{
		{SizeBytes: storage.MB, RowCount: 1},
		{SizeBytes: storage.MB, RowCount: 1},
		{SizeBytes: storage.MB, RowCount: 1},
	}); err != nil {
		t.Fatal(err)
	}
	versionBefore := tbl.Version()
	filesBefore := tbl.FileCount()
	_, err := tbl.AppendFiles([]FileSpec{{SizeBytes: storage.MB, RowCount: 1}})
	if !errors.Is(err, storage.ErrQuotaExceeded) {
		t.Fatalf("expected quota error, got %v", err)
	}
	if tbl.Version() != versionBefore || tbl.FileCount() != filesBefore {
		t.Fatal("failed commit mutated table state")
	}
}

func TestSchemaRowWidth(t *testing.T) {
	s := Schema{Fields: []Field{
		{Name: "a", Type: TypeInt64},
		{Name: "b", Type: TypeString},
		{Name: "c", Type: TypeDate},
		{Name: "d", Type: TypeBool},
	}}
	if got := s.RowWidthBytes(); got != 8+24+4+1 {
		t.Fatalf("row width = %d", got)
	}
	if (Schema{}).RowWidthBytes() != 8 {
		t.Fatal("empty schema width must default to 8")
	}
}

func TestPartitionsOverlap(t *testing.T) {
	cases := []struct {
		a, b []string
		want bool
	}{
		{nil, nil, false},
		{[]string{"p1"}, nil, false},
		{[]string{"p1"}, []string{"p2"}, false},
		{[]string{"p1"}, []string{"p1"}, true},
		{[]string{WholeTable}, []string{"p9"}, true},
		{[]string{"p1", "p2"}, []string{"p2", "p3"}, true},
	}
	for _, c := range cases {
		if got := partitionsOverlap(c.a, c.b); got != c.want {
			t.Fatalf("overlap(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestOperationAndModeStrings(t *testing.T) {
	if OpAppend.String() != "append" || OpRewrite.String() != "rewrite" ||
		OpOverwrite.String() != "overwrite" || OpDelete.String() != "delete" {
		t.Fatal("operation strings wrong")
	}
	if Operation(99).String() != "unknown" {
		t.Fatal("unknown operation string")
	}
	if CopyOnWrite.String() != "copy-on-write" || MergeOnRead.String() != "merge-on-read" {
		t.Fatal("mode strings wrong")
	}
}
