package lst

import (
	"fmt"

	"autocomp/internal/storage"
)

// Transaction is an optimistic write against a table. Its base version is
// captured at creation; Commit validates against commits that landed in
// between, per operation-specific rules (Iceberg-style).
//
// A Transaction is not safe for concurrent use; concurrency happens across
// transactions.
type Transaction struct {
	t           *Table
	op          Operation
	baseVersion int64
	adds        []FileSpec
	removes     []string
	parts       map[string]struct{}
	done        bool
}

// NewTransaction starts a transaction of the given operation kind against
// the table's current version.
func (t *Table) NewTransaction(op Operation) *Transaction {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Transaction{
		t:           t,
		op:          op,
		baseVersion: t.version,
		parts:       make(map[string]struct{}),
	}
}

// BaseVersion returns the table version the transaction started from.
func (tx *Transaction) BaseVersion() int64 { return tx.baseVersion }

// Add stages a new data file described by spec.
func (tx *Transaction) Add(spec FileSpec) {
	tx.adds = append(tx.adds, spec)
	tx.touch(spec.Partition)
}

// Remove stages the removal of a live file by path. The partition is used
// for conflict validation.
func (tx *Transaction) Remove(path, partition string) {
	tx.removes = append(tx.removes, path)
	tx.touch(partition)
}

// TouchWholeTable marks the transaction as affecting the entire table
// (used by full-table overwrites on partitioned tables).
func (tx *Transaction) TouchWholeTable() { tx.parts[WholeTable] = struct{}{} }

func (tx *Transaction) touch(partition string) {
	if !tx.t.cfg.Spec.IsPartitioned() || partition == "" {
		tx.parts[WholeTable] = struct{}{}
		return
	}
	tx.parts[partition] = struct{}{}
}

func (tx *Transaction) partitions() []string {
	out := make([]string, 0, len(tx.parts))
	for p := range tx.parts {
		out = append(out, p)
	}
	return out
}

// Commit validates and applies the transaction. On success it returns the
// new snapshot. Validation failures return ErrCommitConflict (wrapped) and
// leave the table unchanged; the caller may retry with a fresh
// transaction. Storage-level failures (e.g. namespace quota exhaustion)
// are returned as-is.
//
// A successful commit publishes a CommitEvent to the table's commit hook
// (SetCommitHook), outside the table lock — the observation plane's
// changefeed subscribes there.
func (tx *Transaction) Commit() (*Snapshot, error) {
	snap, err := tx.commit()
	if err != nil {
		return nil, err
	}
	if h := tx.t.commitHook(); h != nil {
		h(CommitEvent{
			Table:    tx.t,
			Version:  snap.Sequence,
			Snapshot: snap,
			At:       snap.Timestamp,
		})
	}
	return snap, nil
}

// commit is the locked body of Commit.
func (tx *Transaction) commit() (*Snapshot, error) {
	if tx.done {
		return nil, ErrTransactionDone
	}
	tx.done = true

	t := tx.t
	t.mu.Lock()
	defer t.mu.Unlock()

	if err := tx.validateLocked(); err != nil {
		return nil, err
	}

	// Quota pre-check: the commit will create len(adds) data objects plus
	// metadata objects; fail atomically before touching storage.
	changed := len(tx.adds) + len(tx.removes)
	manifests := 0
	if changed > 0 {
		manifests = (changed + t.cfg.ManifestEntriesPerFile - 1) / t.cfg.ManifestEntriesPerFile
	}
	if q, ok := t.fs.QuotaFor(t.cfg.Database); ok && q.Max > 0 {
		needed := int64(len(tx.adds)+manifests+1) - int64(len(tx.removes))
		if q.Used+needed > q.Max {
			return nil, fmt.Errorf("%w: namespace %q needs %d objects",
				storage.ErrQuotaExceeded, t.cfg.Database, needed)
		}
	}

	// Apply: physically remove replaced files, create added files.
	for _, path := range tx.removes {
		f := t.files[path]
		delete(t.files, path)
		_ = f // path validity established by validateLocked
		if err := t.fs.Delete(path); err != nil {
			return nil, fmt.Errorf("lst: removing %s: %w", path, err)
		}
	}
	t.nextSnapID++
	snapID := t.nextSnapID
	var addedBytes int64
	addedFiles := make([]DataFile, 0, len(tx.adds))
	for _, spec := range tx.adds {
		path := t.dataPathLocked(spec.Partition)
		if err := t.fs.Create(path, spec.SizeBytes); err != nil {
			return nil, err
		}
		df := &DataFile{
			Path:      path,
			Partition: spec.Partition,
			SizeBytes: spec.SizeBytes,
			RowCount:  spec.RowCount,
			IsDelta:   spec.IsDelta,
			Clustered: spec.Clustered,
			AddedAt:   t.clock.Now(),
			Snapshot:  snapID,
		}
		t.files[path] = df
		addedFiles = append(addedFiles, *df)
		addedBytes += spec.SizeBytes
	}

	mcount, err := t.writeManifestsLocked(snapID, changed)
	if err != nil {
		return nil, err
	}
	t.version++
	if err := t.writeMetadataLocked(t.version); err != nil {
		return nil, err
	}

	var totalBytes int64
	for _, f := range t.files {
		totalBytes += f.SizeBytes
	}
	snap := &Snapshot{
		ID:         snapID,
		Sequence:   t.version,
		Timestamp:  t.clock.Now(),
		Op:         tx.op,
		Added:      len(tx.adds),
		Removed:    len(tx.removes),
		AddedBytes: addedBytes,
		Partitions: tx.partitions(),
		Manifests:  mcount,
		TotalFiles: len(t.files),
		TotalBytes: totalBytes,
	}
	t.snapshots = append(t.snapshots, snap)
	t.lastWrite = t.clock.Now()
	t.writeCount++
	out := *snap
	if t.actionSink != nil {
		rec := *snap
		op := tx.op
		if err := t.actionSink(Action{
			Kind:       ActionCommit,
			Version:    t.version,
			At:         t.clock.Now(),
			Op:         &op,
			Added:      addedFiles,
			Removed:    append([]string(nil), tx.removes...),
			Snapshot:   &rec,
			NextFileID: t.nextFileID,
		}); err != nil {
			// The in-memory commit has landed but its log record has not:
			// the table is now ahead of its durable log, exactly as a
			// crash between apply and log write would leave it. Surface
			// the durability failure to the committer.
			return nil, fmt.Errorf("lst: commit logged no action: %w", err)
		}
	}
	return &out, nil
}

// validateLocked implements the conflict rules. Must hold t.mu.
func (tx *Transaction) validateLocked() error {
	t := tx.t

	// Removed files must still be live regardless of versions; a stale
	// removal means another commit already rewrote or deleted them.
	for _, path := range tx.removes {
		if _, ok := t.files[path]; !ok {
			return fmt.Errorf("%w: %s (%w)", ErrStaleFiles, path, ErrCommitConflict)
		}
	}

	if tx.baseVersion == t.version {
		return nil // no concurrent commits
	}
	concurrent := t.snapshots[tx.baseVersion:]

	switch tx.op {
	case OpAppend:
		// Fast-append: appends never conflict, they rebase onto the new
		// metadata (Iceberg's snapshot-isolation append path).
		return nil

	case OpOverwrite, OpDelete:
		// Conflict when a concurrent non-append touched overlapping
		// partitions: the rows this operation intended to replace may
		// have changed.
		mine := tx.partitions()
		for _, s := range concurrent {
			if s.Op == OpAppend {
				continue
			}
			if partitionsOverlap(mine, s.Partitions) {
				return fmt.Errorf("lst: %s vs concurrent %s on overlapping partitions: %w",
					tx.op, s.Op, ErrCommitConflict)
			}
		}
		return nil

	case OpRewrite:
		// Fast appends never invalidate a rewrite. Replace-type commits
		// (overwrite/delete) invalidate it when their partitions overlap
		// the rewrite's — so whole-table compactions are exposed to
		// every concurrent update while partition-scope ones only race
		// writes to that partition (§6.2: disruption probability falls
		// with candidate size). Under StrictRewriteConflicts, a
		// concurrent rewrite additionally conflicts even on disjoint
		// partitions — the Iceberg v1.2.0 behaviour of §4.4 that forces
		// partition-sequential scheduling.
		mine := tx.partitions()
		for _, s := range concurrent {
			if s.Op == OpAppend {
				continue
			}
			if s.Op == OpRewrite && t.cfg.StrictRewriteConflicts {
				return fmt.Errorf("lst: rewrite vs concurrent rewrite (strict validation, disjoint partitions conflict): %w",
					ErrCommitConflict)
			}
			if partitionsOverlap(mine, s.Partitions) {
				return fmt.Errorf("lst: rewrite vs concurrent %s on overlapping partitions: %w",
					s.Op, ErrCommitConflict)
			}
		}
		return nil

	default:
		return fmt.Errorf("lst: unknown operation %d", tx.op)
	}
}

// AppendFiles is a convenience wrapper: stage and commit an append of the
// given file specs in one call.
func (t *Table) AppendFiles(specs []FileSpec) (*Snapshot, error) {
	tx := t.NewTransaction(OpAppend)
	for _, s := range specs {
		tx.Add(s)
	}
	return tx.Commit()
}

// OverwritePartition replaces all live files in a partition with the given
// specs (Copy-on-Write update path).
func (t *Table) OverwritePartition(partition string, specs []FileSpec) (*Snapshot, error) {
	tx := t.NewTransaction(OpOverwrite)
	for _, f := range t.FilesInPartition(partition) {
		tx.Remove(f.Path, f.Partition)
	}
	for _, s := range specs {
		tx.Add(s)
	}
	return tx.Commit()
}
