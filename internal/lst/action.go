package lst

import (
	"fmt"
	"time"

	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Action kinds, one per state transition the commit log records.
const (
	// ActionCreate records table creation (version 0 metadata).
	ActionCreate = "create"
	// ActionCommit records one committed write transaction.
	ActionCommit = "commit"
	// ActionExpire records a snapshot expiry that reclaimed objects.
	ActionExpire = "expire"
	// ActionCheckpoint records a metadata checkpoint; it embeds the
	// resulting table state, which the durable backend materializes as a
	// compacted-log artifact.
	ActionCheckpoint = "checkpoint"
	// ActionRewriteManifests records a manifest consolidation.
	ActionRewriteManifests = "rewrite-manifests"
)

// Action is one entry of a table's commit log: the delta-log-style
// record from which Apply reproduces the state transition exactly.
// Commits carry their outputs (assigned file paths, the snapshot
// record, the post-commit file-ID counter) rather than their inputs, so
// replay never consults the clock or re-runs path assignment; the
// maintenance kinds carry only their parameters because those
// operations are fully determined by the table state they run against.
type Action struct {
	Kind string `json:"kind"`
	// Version is the table's metadata version after the action (commits
	// advance it; maintenance actions leave it unchanged).
	Version int64 `json:"version"`
	// At is the virtual time of the action.
	At time.Duration `json:"at_ns"`

	// Config describes the table for ActionCreate.
	Config *TableConfig `json:"config,omitempty"`

	// Commit payload: the files the commit added (with their assigned
	// paths), the paths it removed, the snapshot it appended, and the
	// file-ID counter after path assignment.
	Op         *Operation `json:"op,omitempty"`
	Added      []DataFile `json:"added,omitempty"`
	Removed    []string   `json:"removed,omitempty"`
	Snapshot   *Snapshot  `json:"snapshot,omitempty"`
	NextFileID int64      `json:"next_file_id,omitempty"`

	// KeepLast is the ActionExpire retention parameter.
	KeepLast int `json:"keep_last,omitempty"`

	// State is the post-checkpoint table state (ActionCheckpoint only).
	State *TableState `json:"state,omitempty"`
}

// ActionSink receives every logged action of a table, synchronously,
// while the table lock is held — so the log order is exactly the commit
// order. A sink error is returned to the committer; by then the
// in-memory state has already advanced, so the table is ahead of its
// log and recovery falls back to the last durable version (the same
// contract a crashed process leaves behind).
type ActionSink func(Action) error

// SetActionSink installs s as the table's durable commit log (nil
// detaches). The sink sees commits and maintenance operations from the
// moment it is attached; attach it at creation time (after logging
// CreateAction) to capture the table's full history.
func (t *Table) SetActionSink(s ActionSink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.actionSink = s
}

// CreateAction returns the action recording this table's creation — the
// first entry of its commit log.
func (t *Table) CreateAction() Action {
	t.mu.Lock()
	defer t.mu.Unlock()
	cfg := t.cfg
	return Action{Kind: ActionCreate, Version: 0, At: t.created, Config: &cfg}
}

// ReplayCreate reconstructs a fresh table from its create action,
// writing the version-0 metadata object just as NewTable does.
func ReplayCreate(a Action, fs *storage.NameNode, clock *sim.Clock) (*Table, error) {
	if a.Kind != ActionCreate || a.Config == nil {
		return nil, fmt.Errorf("lst: replay: not a create action")
	}
	cfg := *a.Config
	if cfg.Database == "" || cfg.Name == "" {
		return nil, fmt.Errorf("lst: replay: create action lacks database/name")
	}
	if cfg.ManifestEntriesPerFile <= 0 {
		cfg.ManifestEntriesPerFile = DefaultManifestEntriesPerFile
	}
	t := &Table{
		cfg:                   cfg,
		fs:                    fs,
		clock:                 clock,
		files:                 make(map[string]*DataFile),
		created:               a.At,
		lastCheckpointVersion: -1,
	}
	if err := t.writeMetadataLocked(0); err != nil {
		return nil, err
	}
	return t, nil
}

// Apply replays one logged action against the table. Actions must be
// applied in log order; commits are checked against the expected next
// version. Apply refuses to run while an action sink is attached —
// replay reconstructs the log's effects, it must not re-log them.
func (t *Table) Apply(a Action) error {
	t.mu.Lock()
	if t.actionSink != nil {
		t.mu.Unlock()
		return fmt.Errorf("lst: replay: detach the action sink before Apply")
	}
	t.mu.Unlock()
	switch a.Kind {
	case ActionCommit:
		return t.applyCommit(a)
	case ActionExpire:
		_, err := t.expireSnapshots(a.KeepLast)
		return err
	case ActionCheckpoint:
		_, err := t.checkpoint()
		return err
	case ActionRewriteManifests:
		_, err := t.rewriteManifests()
		return err
	case ActionCreate:
		return fmt.Errorf("lst: replay: create action applied to an existing table")
	default:
		return fmt.Errorf("lst: replay: unknown action kind %q", a.Kind)
	}
}

// applyCommit mirrors Transaction.commit exactly, sourcing every output
// (paths, snapshot, counters, timestamps) from the recorded action.
func (t *Table) applyCommit(a Action) error {
	if a.Snapshot == nil {
		return fmt.Errorf("lst: replay: commit action lacks a snapshot")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if a.Version != t.version+1 {
		return fmt.Errorf("lst: replay: commit action v%d against table v%d", a.Version, t.version)
	}
	for _, path := range a.Removed {
		if _, ok := t.files[path]; !ok {
			return fmt.Errorf("lst: replay: removed file %s is not live", path)
		}
		delete(t.files, path)
		if err := t.fs.Delete(path); err != nil {
			return fmt.Errorf("lst: replay: removing %s: %w", path, err)
		}
	}
	t.nextSnapID = a.Snapshot.ID
	for i := range a.Added {
		f := a.Added[i]
		if err := t.fs.Create(f.Path, f.SizeBytes); err != nil {
			return err
		}
		t.files[f.Path] = &f
	}
	t.nextFileID = a.NextFileID
	if _, err := t.writeManifestsLocked(a.Snapshot.ID, len(a.Added)+len(a.Removed)); err != nil {
		return err
	}
	t.version = a.Version
	if err := t.writeMetadataLocked(t.version); err != nil {
		return err
	}
	snap := *a.Snapshot
	t.snapshots = append(t.snapshots, &snap)
	t.lastWrite = snap.Timestamp
	t.writeCount++
	return nil
}
