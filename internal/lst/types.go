// Package lst implements a log-structured table format in the style of
// Apache Iceberg: data lives in immutable files, a metadata layer records
// table versions (snapshots plus manifests), and a protocol based on
// optimistic concurrency coordinates read and write operations.
//
// The package reproduces the semantics the paper depends on:
//
//   - append-only writes that accumulate layers of (often small) files;
//   - per-commit metadata files (metadata.json + manifests) that themselves
//     contribute to small-file proliferation (§2, cause iv);
//   - Copy-on-Write and Merge-on-Read update modes (§2, cause ii);
//   - an optimistic commit protocol whose rewrite (compaction) validation
//     can conflict even across disjoint partitions, matching the behaviour
//     the paper observed with Apache Iceberg v1.2.0 (§4.4) — controlled by
//     TableConfig.StrictRewriteConflicts;
//   - snapshot expiration as a separate maintenance action.
//
// Rows are not materialized: each DataFile carries (SizeBytes, RowCount),
// which is the only information compaction decisions consume. See
// DESIGN.md §2 for the substitution rationale.
package lst

import (
	"errors"
	"time"
)

// Errors returned by the commit protocol.
var (
	// ErrCommitConflict indicates optimistic-concurrency validation
	// failed: another transaction committed a conflicting change after
	// this transaction's base snapshot.
	ErrCommitConflict = errors.New("lst: commit conflict")
	// ErrStaleFiles indicates the transaction tried to remove files that
	// are no longer part of the live file set.
	ErrStaleFiles = errors.New("lst: files to remove are not live")
	// ErrTransactionDone indicates Commit was called twice.
	ErrTransactionDone = errors.New("lst: transaction already finished")
)

// ColumnType enumerates the column types the simulator models. Types only
// matter for row-width estimation in the workload generators.
type ColumnType int

// Column types.
const (
	TypeInt64 ColumnType = iota
	TypeFloat64
	TypeDecimal
	TypeString
	TypeDate
	TypeBool
)

// widthBytes is the average encoded width used for row-size estimates.
func (t ColumnType) widthBytes() int64 {
	switch t {
	case TypeInt64, TypeFloat64, TypeDecimal:
		return 8
	case TypeDate:
		return 4
	case TypeBool:
		return 1
	case TypeString:
		return 24
	default:
		return 8
	}
}

// Field is a named, typed column.
type Field struct {
	Name string
	Type ColumnType
}

// Schema is an ordered list of fields.
type Schema struct {
	Fields []Field
}

// RowWidthBytes estimates the encoded bytes per row.
func (s Schema) RowWidthBytes() int64 {
	var w int64
	for _, f := range s.Fields {
		w += f.Type.widthBytes()
	}
	if w == 0 {
		w = 8
	}
	return w
}

// Transform is a partition transform in the Iceberg sense.
type Transform int

// Partition transforms.
const (
	TransformIdentity Transform = iota
	TransformMonth
	TransformDay
	TransformBucket
)

// PartitionSpec describes how a table is partitioned. A zero PartitionSpec
// (empty Column) means the table is unpartitioned.
type PartitionSpec struct {
	Column    string
	Transform Transform
	Buckets   int // for TransformBucket
}

// IsPartitioned reports whether the spec partitions the table.
func (p PartitionSpec) IsPartitioned() bool { return p.Column != "" }

// WriteMode selects how updates and deletes are applied (§2, cause ii).
type WriteMode int

// Write modes.
const (
	// CopyOnWrite rewrites affected data files in place.
	CopyOnWrite WriteMode = iota
	// MergeOnRead appends delta (delete/update) files that accumulate
	// until compaction merges them.
	MergeOnRead
)

func (m WriteMode) String() string {
	if m == MergeOnRead {
		return "merge-on-read"
	}
	return "copy-on-write"
}

// Operation identifies the kind of change a snapshot applied.
type Operation int

// Snapshot operations.
const (
	OpAppend Operation = iota
	OpOverwrite
	OpDelete
	OpRewrite // compaction
)

func (o Operation) String() string {
	switch o {
	case OpAppend:
		return "append"
	case OpOverwrite:
		return "overwrite"
	case OpDelete:
		return "delete"
	case OpRewrite:
		return "rewrite"
	default:
		return "unknown"
	}
}

// DataFile is an immutable data (or delta) file reference tracked by the
// table metadata.
type DataFile struct {
	Path      string
	Partition string // "" on unpartitioned tables
	SizeBytes int64
	RowCount  int64
	IsDelta   bool // true for MergeOnRead delete/update files
	// Clustered marks files written under a clustering layout
	// (Z-order/V-order style): their column statistics enable data
	// skipping on selective scans.
	Clustered bool
	AddedAt   time.Duration
	Snapshot  int64 // snapshot ID that added the file
}

// FileSpec describes a data file a writer wants to add; the table assigns
// the path.
type FileSpec struct {
	Partition string
	SizeBytes int64
	RowCount  int64
	IsDelta   bool
	Clustered bool
}

// Snapshot records one committed table version.
type Snapshot struct {
	ID         int64
	Sequence   int64 // equals the table version that produced it
	Timestamp  time.Duration
	Op         Operation
	Added      int
	Removed    int
	AddedBytes int64
	// Partitions lists the partitions the snapshot touched. A nil or
	// empty value on a partitioned table means "no partition info"; the
	// sentinel WholeTable entry means the operation spanned the table.
	Partitions []string
	// Manifests is the number of manifest files the commit wrote.
	Manifests int
	// TotalFiles and TotalBytes are the live totals after this commit.
	TotalFiles int
	TotalBytes int64
}

// WholeTable is the partition sentinel for operations that span the whole
// table (including all operations on unpartitioned tables).
const WholeTable = "\x00whole-table"

// touchesWholeTable reports whether parts includes the whole-table
// sentinel.
func touchesWholeTable(parts []string) bool {
	for _, p := range parts {
		if p == WholeTable {
			return true
		}
	}
	return false
}

// partitionsOverlap reports whether two partition sets intersect, treating
// WholeTable as overlapping everything.
func partitionsOverlap(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if touchesWholeTable(a) || touchesWholeTable(b) {
		return true
	}
	set := make(map[string]struct{}, len(a))
	for _, p := range a {
		set[p] = struct{}{}
	}
	for _, p := range b {
		if _, ok := set[p]; ok {
			return true
		}
	}
	return false
}
