package lst

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// TableConfig describes a table at creation time.
type TableConfig struct {
	Database string
	Name     string
	Schema   Schema
	Spec     PartitionSpec
	Mode     WriteMode
	// StrictRewriteConflicts reproduces the Apache Iceberg v1.2.0
	// behaviour the paper observed (§4.4): a rewrite (compaction) commit
	// fails validation whenever any other commit landed after its base
	// snapshot, even when the two touch disjoint partitions. When false,
	// rewrites only conflict on genuinely overlapping changes.
	StrictRewriteConflicts bool
	// ManifestEntriesPerFile controls how many file entries one manifest
	// holds; each commit writes ceil(changes/entries) manifest objects.
	ManifestEntriesPerFile int
	// Props carries free-form table properties (e.g. "intermediate").
	Props map[string]string
}

// Table is a log-structured table: a live file set plus an append-only
// snapshot history, backed by a simulated file system for object
// accounting. All methods are safe for concurrent use.
type Table struct {
	mu sync.Mutex

	cfg   TableConfig
	fs    *storage.NameNode
	clock *sim.Clock

	version    int64
	snapshots  []*Snapshot
	files      map[string]*DataFile
	nextFileID int64
	nextSnapID int64

	created    time.Duration
	lastWrite  time.Duration
	writeCount int64

	// metadataObjects tracks metadata file paths (metadata.json versions
	// and manifests) currently held in storage; ExpireSnapshots trims it.
	metadataObjects []string
}

// NewTable creates a table and writes its initial metadata object.
func NewTable(cfg TableConfig, fs *storage.NameNode, clock *sim.Clock) (*Table, error) {
	if cfg.Database == "" || cfg.Name == "" {
		return nil, fmt.Errorf("lst: table requires database and name")
	}
	if cfg.ManifestEntriesPerFile <= 0 {
		cfg.ManifestEntriesPerFile = 1000
	}
	t := &Table{
		cfg:     cfg,
		fs:      fs,
		clock:   clock,
		files:   make(map[string]*DataFile),
		created: clock.Now(),
	}
	if err := t.writeMetadataLocked(0); err != nil {
		return nil, err
	}
	return t, nil
}

// Identity and metadata accessors.

// Database returns the owning database name.
func (t *Table) Database() string { return t.cfg.Database }

// Name returns the table name.
func (t *Table) Name() string { return t.cfg.Name }

// FullName returns database.table.
func (t *Table) FullName() string { return t.cfg.Database + "." + t.cfg.Name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.cfg.Schema }

// Spec returns the partition spec.
func (t *Table) Spec() PartitionSpec { return t.cfg.Spec }

// Mode returns the write mode (CoW or MoR).
func (t *Table) Mode() WriteMode { return t.cfg.Mode }

// Prop returns a table property.
func (t *Table) Prop(key string) string { return t.cfg.Props[key] }

// Created returns the virtual creation time.
func (t *Table) Created() time.Duration { return t.created }

// LastWrite returns the virtual time of the last committed write.
func (t *Table) LastWrite() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastWrite
}

// WriteCount returns the number of committed transactions.
func (t *Table) WriteCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writeCount
}

// Version returns the current metadata version (number of commits).
func (t *Table) Version() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// CurrentSnapshot returns the latest snapshot, or nil before any commit.
func (t *Table) CurrentSnapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.snapshots) == 0 {
		return nil
	}
	s := *t.snapshots[len(t.snapshots)-1]
	return &s
}

// Snapshots returns a copy of the snapshot history.
func (t *Table) Snapshots() []Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Snapshot, len(t.snapshots))
	for i, s := range t.snapshots {
		out[i] = *s
	}
	return out
}

// Statistics used by the observe phase.

// FileCount returns the number of live data files (including delta files).
func (t *Table) FileCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.files)
}

// DeltaFileCount returns the number of live MoR delta files.
func (t *Table) DeltaFileCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, f := range t.files {
		if f.IsDelta {
			n++
		}
	}
	return n
}

// TotalBytes returns the live data bytes.
func (t *Table) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b int64
	for _, f := range t.files {
		b += f.SizeBytes
	}
	return b
}

// SmallFileCount returns how many live files are smaller than threshold.
func (t *Table) SmallFileCount(threshold int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, f := range t.files {
		if f.SizeBytes < threshold {
			n++
		}
	}
	return n
}

// LiveFiles returns a copy of the live file set sorted by path.
func (t *Table) LiveFiles() []DataFile {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]DataFile, 0, len(t.files))
	for _, f := range t.files {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Partitions returns the distinct partitions with live files, sorted.
func (t *Table) Partitions() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[string]struct{}{}
	for _, f := range t.files {
		seen[f.Partition] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// FilesInPartition returns the live files of one partition, sorted by path.
func (t *Table) FilesInPartition(partition string) []DataFile {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []DataFile
	for _, f := range t.files {
		if f.Partition == partition {
			out = append(out, *f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// SizeHistogram buckets live file sizes by ascending bounds, with a final
// overflow bucket.
func (t *Table) SizeHistogram(bounds []int64) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	counts := make([]int64, len(bounds)+1)
	for _, f := range t.files {
		placed := false
		for i, b := range bounds {
			if f.SizeBytes < b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}

// MetadataObjectCount returns the number of metadata files (metadata.json
// versions plus manifests) held in storage — the paper's cause (iv) of
// small-file proliferation.
func (t *Table) MetadataObjectCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.metadataObjects)
}

// path helpers

func (t *Table) dataPathLocked(partition string) string {
	part := partition
	if part == "" {
		part = "unpartitioned"
	}
	t.nextFileID++
	return fmt.Sprintf("/%s/%s/data/%s/%08d.parquet", t.cfg.Database, t.cfg.Name, part, t.nextFileID)
}

// writeMetadataLocked writes the versioned metadata.json object.
func (t *Table) writeMetadataLocked(version int64) error {
	path := fmt.Sprintf("/%s/%s/metadata/v%d.metadata.json", t.cfg.Database, t.cfg.Name, version)
	size := int64(4*storage.KB) + 256*int64(len(t.snapshots))
	if err := t.fs.Create(path, size); err != nil {
		return err
	}
	t.metadataObjects = append(t.metadataObjects, path)
	return nil
}

// writeManifestsLocked writes manifest objects for a commit of n changed
// file entries and returns how many manifests were written.
func (t *Table) writeManifestsLocked(snapID int64, changed int) (int, error) {
	if changed == 0 {
		return 0, nil
	}
	per := t.cfg.ManifestEntriesPerFile
	count := (changed + per - 1) / per
	for i := 0; i < count; i++ {
		entries := per
		if i == count-1 {
			entries = changed - per*(count-1)
		}
		path := fmt.Sprintf("/%s/%s/metadata/manifest-%d-%d.avro", t.cfg.Database, t.cfg.Name, snapID, i)
		size := int64(8*storage.KB) + 128*int64(entries)
		if err := t.fs.Create(path, size); err != nil {
			return i, err
		}
		t.metadataObjects = append(t.metadataObjects, path)
	}
	return count, nil
}

// ExpireSnapshots drops all but the most recent keepLast snapshots and
// deletes the metadata objects (old metadata.json versions and manifests
// of dropped snapshots) from storage. It returns the number of storage
// objects deleted. Data files are deleted eagerly at commit time in this
// simulator (orphan cleanup is assumed immediate; see DESIGN.md §2), so
// expiration only reclaims metadata.
func (t *Table) ExpireSnapshots(keepLast int) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if keepLast < 1 {
		keepLast = 1
	}
	if len(t.snapshots) <= keepLast {
		return 0, nil
	}
	dropped := t.snapshots[:len(t.snapshots)-keepLast]
	t.snapshots = append([]*Snapshot{}, t.snapshots[len(t.snapshots)-keepLast:]...)

	droppedIDs := make(map[int64]struct{}, len(dropped))
	for _, s := range dropped {
		droppedIDs[s.ID] = struct{}{}
	}
	// Delete manifests belonging to dropped snapshots and metadata.json
	// versions older than the oldest retained snapshot.
	oldestRetained := t.snapshots[0].Sequence
	deleted := 0
	kept := t.metadataObjects[:0]
	for _, path := range t.metadataObjects {
		var snapID, idx, ver int64
		if n, _ := fmt.Sscanf(tail(path), "manifest-%d-%d.avro", &snapID, &idx); n == 2 {
			if _, drop := droppedIDs[snapID]; drop {
				if err := t.fs.Delete(path); err == nil {
					deleted++
				}
				continue
			}
		} else if n, _ := fmt.Sscanf(tail(path), "v%d.metadata.json", &ver); n == 1 {
			if ver < oldestRetained {
				if err := t.fs.Delete(path); err == nil {
					deleted++
				}
				continue
			}
		}
		kept = append(kept, path)
	}
	t.metadataObjects = kept
	return deleted, nil
}

// tail returns the final path component.
func tail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
