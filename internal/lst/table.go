package lst

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// TableConfig describes a table at creation time.
type TableConfig struct {
	Database string
	Name     string
	Schema   Schema
	Spec     PartitionSpec
	Mode     WriteMode
	// StrictRewriteConflicts reproduces the Apache Iceberg v1.2.0
	// behaviour the paper observed (§4.4): a rewrite (compaction) commit
	// fails validation whenever any other commit landed after its base
	// snapshot, even when the two touch disjoint partitions. When false,
	// rewrites only conflict on genuinely overlapping changes.
	StrictRewriteConflicts bool
	// ManifestEntriesPerFile controls how many file entries one manifest
	// holds; each commit writes ceil(changes/entries) manifest objects.
	ManifestEntriesPerFile int
	// Props carries free-form table properties (e.g. "intermediate").
	Props map[string]string
}

// Table is a log-structured table: a live file set plus an append-only
// snapshot history, backed by a simulated file system for object
// accounting. All methods are safe for concurrent use.
type Table struct {
	mu sync.Mutex

	cfg   TableConfig
	fs    *storage.NameNode
	clock *sim.Clock

	version    int64
	snapshots  []*Snapshot
	files      map[string]*DataFile
	nextFileID int64
	nextSnapID int64

	created    time.Duration
	lastWrite  time.Duration
	writeCount int64

	// metaObjects tracks the metadata files (metadata.json versions,
	// manifests, checkpoints) currently held in storage; ExpireSnapshots,
	// Checkpoint, and RewriteManifests trim it.
	metaObjects []metaObject
	// lastCheckpointVersion is the table version the newest checkpoint
	// covers, or -1 when the table has never been checkpointed.
	lastCheckpointVersion int64

	// onCommit, when set, observes every successful state change
	// (transaction commits and maintenance operations).
	onCommit CommitHook
	// actionSink, when set, receives every state change as a durable
	// commit-log Action, synchronously under the table lock.
	actionSink ActionSink
}

// CommitEvent describes one committed state change on a table, delivered
// to the table's commit hook outside the table lock.
type CommitEvent struct {
	// Table is the changed table.
	Table *Table
	// Version is the metadata version after the change.
	Version int64
	// Snapshot is the committed snapshot for write transactions; nil for
	// maintenance operations (expiry, checkpoint, manifest rewrite),
	// which mutate the metadata layer without adding a snapshot.
	Snapshot *Snapshot
	// At is the virtual time of the change.
	At time.Duration
	// Maintenance marks metadata-maintenance operations.
	Maintenance bool
}

// CommitHook observes successful commits and maintenance operations. It
// runs on the committing goroutine, after the table lock is released, so
// it may call back into the table's accessors; it must not block.
type CommitHook func(CommitEvent)

// SetCommitHook installs h as the table's commit hook (nil detaches).
// The changefeed observation plane attaches here.
func (t *Table) SetCommitHook(h CommitHook) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onCommit = h
}

// commitHook returns the installed hook.
func (t *Table) commitHook() CommitHook {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.onCommit
}

// emitMaintenance publishes a maintenance CommitEvent for the table's
// current version. Callers must not hold t.mu.
func (t *Table) emitMaintenance() {
	h := t.commitHook()
	if h == nil {
		return
	}
	t.mu.Lock()
	e := CommitEvent{Table: t, Version: t.version, At: t.clock.Now(), Maintenance: true}
	t.mu.Unlock()
	h(e)
}

// metaKind classifies a metadata object.
type metaKind int

const (
	metaJSON       metaKind = iota // versioned metadata.json
	metaManifest                   // per-commit manifest
	metaCheckpoint                 // checkpoint object (collapsed log)
)

// metaObject is one metadata file tracked by the table.
type metaObject struct {
	path string
	kind metaKind
	// ref is the metadata version for metaJSON and metaCheckpoint
	// objects, and the owning snapshot ID for metaManifest objects.
	// Consolidated manifests written by RewriteManifests carry
	// liveManifest: they describe the live file set, not one commit's
	// changes, so snapshot expiry must never reclaim them.
	ref  int64
	size int64
}

// liveManifest is the ref sentinel for consolidated manifests that
// describe live state rather than a single snapshot's history.
const liveManifest int64 = -1

// NewTable creates a table and writes its initial metadata object.
func NewTable(cfg TableConfig, fs *storage.NameNode, clock *sim.Clock) (*Table, error) {
	if cfg.Database == "" || cfg.Name == "" {
		return nil, fmt.Errorf("lst: table requires database and name")
	}
	if cfg.ManifestEntriesPerFile <= 0 {
		cfg.ManifestEntriesPerFile = DefaultManifestEntriesPerFile
	}
	t := &Table{
		cfg:                   cfg,
		fs:                    fs,
		clock:                 clock,
		files:                 make(map[string]*DataFile),
		created:               clock.Now(),
		lastCheckpointVersion: -1,
	}
	if err := t.writeMetadataLocked(0); err != nil {
		return nil, err
	}
	return t, nil
}

// Identity and metadata accessors.

// Database returns the owning database name.
func (t *Table) Database() string { return t.cfg.Database }

// Name returns the table name.
func (t *Table) Name() string { return t.cfg.Name }

// FullName returns database.table.
func (t *Table) FullName() string { return t.cfg.Database + "." + t.cfg.Name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.cfg.Schema }

// Spec returns the partition spec.
func (t *Table) Spec() PartitionSpec { return t.cfg.Spec }

// Mode returns the write mode (CoW or MoR).
func (t *Table) Mode() WriteMode { return t.cfg.Mode }

// Prop returns a table property.
func (t *Table) Prop(key string) string { return t.cfg.Props[key] }

// Created returns the virtual creation time.
func (t *Table) Created() time.Duration { return t.created }

// LastWrite returns the virtual time of the last committed write.
func (t *Table) LastWrite() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastWrite
}

// WriteCount returns the number of committed transactions.
func (t *Table) WriteCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writeCount
}

// Version returns the current metadata version (number of commits).
func (t *Table) Version() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// CurrentSnapshot returns the latest snapshot, or nil before any commit.
func (t *Table) CurrentSnapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.snapshots) == 0 {
		return nil
	}
	s := *t.snapshots[len(t.snapshots)-1]
	return &s
}

// Snapshots returns a copy of the snapshot history.
func (t *Table) Snapshots() []Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Snapshot, len(t.snapshots))
	for i, s := range t.snapshots {
		out[i] = *s
	}
	return out
}

// Statistics used by the observe phase.

// FileCount returns the number of live data files (including delta files).
func (t *Table) FileCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.files)
}

// DeltaFileCount returns the number of live MoR delta files.
func (t *Table) DeltaFileCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, f := range t.files {
		if f.IsDelta {
			n++
		}
	}
	return n
}

// TotalBytes returns the live data bytes.
func (t *Table) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b int64
	for _, f := range t.files {
		b += f.SizeBytes
	}
	return b
}

// SmallFileCount returns how many live files are smaller than threshold.
func (t *Table) SmallFileCount(threshold int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, f := range t.files {
		if f.SizeBytes < threshold {
			n++
		}
	}
	return n
}

// LiveFiles returns a copy of the live file set sorted by path.
func (t *Table) LiveFiles() []DataFile {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]DataFile, 0, len(t.files))
	for _, f := range t.files {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Partitions returns the distinct partitions with live files, sorted.
func (t *Table) Partitions() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[string]struct{}{}
	for _, f := range t.files {
		seen[f.Partition] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// FilesInPartition returns the live files of one partition, sorted by path.
func (t *Table) FilesInPartition(partition string) []DataFile {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []DataFile
	for _, f := range t.files {
		if f.Partition == partition {
			out = append(out, *f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// SizeHistogram buckets live file sizes by ascending bounds, with a final
// overflow bucket.
func (t *Table) SizeHistogram(bounds []int64) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	counts := make([]int64, len(bounds)+1)
	for _, f := range t.files {
		placed := false
		for i, b := range bounds {
			if f.SizeBytes < b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}

// MetadataObjectCount returns the number of metadata files (metadata.json
// versions, manifests, and checkpoints) held in storage — the paper's
// cause (iv) of small-file proliferation.
func (t *Table) MetadataObjectCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.metaObjects)
}

// MetadataStats is the metadata-layer health summary the maintenance
// subsystem observes: how large the metadata log has grown and how much a
// checkpoint or manifest rewrite could reclaim.
type MetadataStats struct {
	// Objects and Bytes cover every metadata file in storage.
	Objects int
	Bytes   int64
	// MetadataJSONs, Manifests, and Checkpoints break Objects down by
	// kind.
	MetadataJSONs int
	Manifests     int
	Checkpoints   int
	// Snapshots is the retained snapshot-history length.
	Snapshots int
	// LastCheckpointVersion is the metadata version the newest checkpoint
	// covers (-1 when never checkpointed); VersionsSinceCheckpoint counts
	// commits since then.
	LastCheckpointVersion   int64
	VersionsSinceCheckpoint int64
	// OrphanObjects counts metadata files no current reader needs: old
	// metadata.json versions and superseded checkpoints. They are exactly
	// what Checkpoint reclaims beyond manifest consolidation.
	OrphanObjects int
	// ConsolidatedManifests is how many manifests a RewriteManifests
	// would leave (the live file entries repacked at full density).
	ConsolidatedManifests int
}

// MetadataStats returns the current metadata-layer summary.
func (t *Table) MetadataStats() MetadataStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := MetadataStats{
		Objects:               len(t.metaObjects),
		Snapshots:             len(t.snapshots),
		LastCheckpointVersion: t.lastCheckpointVersion,
	}
	for _, m := range t.metaObjects {
		s.Bytes += m.size
		switch m.kind {
		case metaJSON:
			s.MetadataJSONs++
			if m.ref < t.version {
				s.OrphanObjects++
			}
		case metaManifest:
			s.Manifests++
		case metaCheckpoint:
			s.Checkpoints++
			if m.ref < t.lastCheckpointVersion {
				s.OrphanObjects++
			}
		}
	}
	if t.lastCheckpointVersion >= 0 {
		s.VersionsSinceCheckpoint = t.version - t.lastCheckpointVersion
	} else {
		s.VersionsSinceCheckpoint = t.version
	}
	s.ConsolidatedManifests = ConsolidatedManifestCount(len(t.files), t.cfg.ManifestEntriesPerFile)
	return s
}

// Metadata object size model. Exported so aggregate simulators (the
// fleet package) price exactly the bytes these writers produce.

// DefaultManifestEntriesPerFile is the manifest density used when
// TableConfig.ManifestEntriesPerFile is unset.
const DefaultManifestEntriesPerFile = 1000

// MetadataJSONSizeBytes models one metadata.json version for a table
// with the given snapshot-history length.
func MetadataJSONSizeBytes(snapshots int) int64 {
	return 4*storage.KB + 256*int64(snapshots)
}

// ManifestSizeBytes models a manifest holding the given file entries.
func ManifestSizeBytes(entries int) int64 {
	return 8*storage.KB + 128*int64(entries)
}

// CheckpointSizeBytes models a checkpoint object embedding the live file
// listing and the retained snapshot history.
func CheckpointSizeBytes(snapshots, files int) int64 {
	return 4*storage.KB + 256*int64(snapshots) + 128*int64(files)
}

// ConsolidatedManifestCount returns how many manifests hold the given
// live files at full per-manifest entry density.
func ConsolidatedManifestCount(files, entriesPerManifest int) int {
	if files <= 0 {
		return 0
	}
	if entriesPerManifest <= 0 {
		entriesPerManifest = DefaultManifestEntriesPerFile
	}
	return (files + entriesPerManifest - 1) / entriesPerManifest
}

// path helpers

func (t *Table) dataPathLocked(partition string) string {
	part := partition
	if part == "" {
		part = "unpartitioned"
	}
	t.nextFileID++
	return fmt.Sprintf("/%s/%s/data/%s/%08d.parquet", t.cfg.Database, t.cfg.Name, part, t.nextFileID)
}

// writeMetadataLocked writes the versioned metadata.json object.
func (t *Table) writeMetadataLocked(version int64) error {
	path := fmt.Sprintf("/%s/%s/metadata/v%d.metadata.json", t.cfg.Database, t.cfg.Name, version)
	size := MetadataJSONSizeBytes(len(t.snapshots))
	if err := t.fs.Create(path, size); err != nil {
		return err
	}
	t.metaObjects = append(t.metaObjects, metaObject{path: path, kind: metaJSON, ref: version, size: size})
	return nil
}

// writeManifestsLocked writes manifest objects for a commit of n changed
// file entries and returns how many manifests were written.
func (t *Table) writeManifestsLocked(snapID int64, changed int) (int, error) {
	if changed == 0 {
		return 0, nil
	}
	per := t.cfg.ManifestEntriesPerFile
	count := (changed + per - 1) / per
	for i := 0; i < count; i++ {
		entries := per
		if i == count-1 {
			entries = changed - per*(count-1)
		}
		path := fmt.Sprintf("/%s/%s/metadata/manifest-%d-%d.avro", t.cfg.Database, t.cfg.Name, snapID, i)
		size := ManifestSizeBytes(entries)
		if err := t.fs.Create(path, size); err != nil {
			return i, err
		}
		t.metaObjects = append(t.metaObjects, metaObject{path: path, kind: metaManifest, ref: snapID, size: size})
	}
	return count, nil
}

// ExpireSnapshots drops all but the most recent keepLast snapshots and
// deletes the metadata objects (old metadata.json versions and manifests
// of dropped snapshots) from storage. It returns the number of storage
// objects deleted. Data files are deleted eagerly at commit time in this
// simulator (orphan cleanup is assumed immediate; see DESIGN.md §2), so
// expiration only reclaims metadata. Checkpoint objects survive: they
// describe live state, not history. An expiry that reclaimed anything
// publishes a maintenance CommitEvent to the table's commit hook.
func (t *Table) ExpireSnapshots(keepLast int) (int, error) {
	n, err := t.expireSnapshots(keepLast)
	if err == nil && n > 0 {
		t.emitMaintenance()
	}
	return n, err
}

func (t *Table) expireSnapshots(keepLast int) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if keepLast < 1 {
		keepLast = 1
	}
	if len(t.snapshots) <= keepLast {
		return 0, nil
	}
	dropped := t.snapshots[:len(t.snapshots)-keepLast]
	t.snapshots = append([]*Snapshot{}, t.snapshots[len(t.snapshots)-keepLast:]...)

	droppedIDs := make(map[int64]struct{}, len(dropped))
	for _, s := range dropped {
		droppedIDs[s.ID] = struct{}{}
	}
	// Delete manifests belonging to dropped snapshots and metadata.json
	// versions older than the oldest retained snapshot.
	oldestRetained := t.snapshots[0].Sequence
	deleted := 0
	kept := t.metaObjects[:0]
	for _, m := range t.metaObjects {
		drop := false
		switch m.kind {
		case metaManifest:
			_, drop = droppedIDs[m.ref]
		case metaJSON:
			drop = m.ref < oldestRetained
		}
		if drop {
			if err := t.fs.Delete(m.path); err == nil {
				deleted++
				continue
			}
		}
		kept = append(kept, m)
	}
	t.metaObjects = kept
	if deleted > 0 && t.actionSink != nil {
		if err := t.actionSink(Action{Kind: ActionExpire, Version: t.version, At: t.clock.Now(), KeepLast: keepLast}); err != nil {
			return deleted, err
		}
	}
	return deleted, nil
}

// ExpireEstimate returns how many metadata objects ExpireSnapshots
// (keepLast) would delete right now, without mutating anything.
func (t *Table) ExpireEstimate(keepLast int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if keepLast < 1 {
		keepLast = 1
	}
	if len(t.snapshots) <= keepLast {
		return 0
	}
	dropped := t.snapshots[:len(t.snapshots)-keepLast]
	droppedIDs := make(map[int64]struct{}, len(dropped))
	for _, s := range dropped {
		droppedIDs[s.ID] = struct{}{}
	}
	oldestRetained := t.snapshots[len(t.snapshots)-keepLast].Sequence
	n := 0
	for _, m := range t.metaObjects {
		switch m.kind {
		case metaManifest:
			if _, ok := droppedIDs[m.ref]; ok {
				n++
			}
		case metaJSON:
			if m.ref < oldestRetained {
				n++
			}
		}
	}
	return n
}

// MaintenanceResult reports one metadata-maintenance operation
// (Checkpoint or RewriteManifests): how many storage objects and bytes it
// removed and created.
type MaintenanceResult struct {
	ObjectsRemoved int
	ObjectsAdded   int
	BytesReclaimed int64
	BytesWritten   int64
	// Skipped is true when the operation had nothing worth doing.
	Skipped bool
}

// Reduction returns the net metadata-object reduction achieved.
func (r MaintenanceResult) Reduction() int { return r.ObjectsRemoved - r.ObjectsAdded }

// Checkpoint collapses the metadata log — every metadata.json version,
// manifest, and prior checkpoint — into a single checkpoint object that
// embeds the live file listing and the retained snapshot history, in the
// style of delta-rs log compaction / Iceberg metadata rewrite. Only the
// current metadata.json survives alongside the checkpoint (it is the
// commit anchor new writers validate against), so a freshly checkpointed
// table holds exactly two metadata objects. Subsequent commits append new
// metadata.json versions and manifests after the checkpoint as usual. A
// checkpoint that collapsed anything publishes a maintenance CommitEvent
// to the table's commit hook.
func (t *Table) Checkpoint() (MaintenanceResult, error) {
	res, err := t.checkpoint()
	if err == nil && !res.Skipped {
		t.emitMaintenance()
	}
	return res, err
}

func (t *Table) checkpoint() (MaintenanceResult, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var res MaintenanceResult
	// Nothing to collapse when the log is already just the current
	// metadata.json (plus an up-to-date checkpoint).
	reclaimable := 0
	for _, m := range t.metaObjects {
		if m.kind == metaJSON && m.ref == t.version {
			continue
		}
		if m.kind == metaCheckpoint && m.ref == t.version {
			continue
		}
		reclaimable++
	}
	if reclaimable == 0 {
		res.Skipped = true
		return res, nil
	}

	path := fmt.Sprintf("/%s/%s/metadata/checkpoint-v%d.json", t.cfg.Database, t.cfg.Name, t.version)
	size := CheckpointSizeBytes(len(t.snapshots), len(t.files))
	if err := t.fs.Create(path, size); err != nil {
		return res, err
	}
	res.ObjectsAdded = 1
	res.BytesWritten = size

	kept := t.metaObjects[:0]
	for _, m := range t.metaObjects {
		if m.kind == metaJSON && m.ref == t.version {
			kept = append(kept, m)
			continue
		}
		if err := t.fs.Delete(m.path); err != nil {
			// Keep the record consistent with storage on failure.
			kept = append(kept, m)
			continue
		}
		res.ObjectsRemoved++
		res.BytesReclaimed += m.size
	}
	t.metaObjects = append(kept, metaObject{path: path, kind: metaCheckpoint, ref: t.version, size: size})
	t.lastCheckpointVersion = t.version
	if t.actionSink != nil {
		if err := t.actionSink(Action{Kind: ActionCheckpoint, Version: t.version, At: t.clock.Now(), State: t.stateLocked()}); err != nil {
			return res, err
		}
	}
	return res, nil
}

// RewriteManifests consolidates the table's manifests into the minimum
// number that holds the live file entries at full density (Iceberg's
// rewrite_manifests action). Unlike Checkpoint it leaves the metadata.json
// version history untouched, so it is the cheaper action when only
// manifest count — not log length — is the problem. A rewrite that
// consolidated anything publishes a maintenance CommitEvent to the
// table's commit hook.
func (t *Table) RewriteManifests() (MaintenanceResult, error) {
	res, err := t.rewriteManifests()
	if err == nil && !res.Skipped {
		t.emitMaintenance()
	}
	return res, err
}

func (t *Table) rewriteManifests() (MaintenanceResult, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var res MaintenanceResult
	manifests := 0
	for _, m := range t.metaObjects {
		if m.kind == metaManifest {
			manifests++
		}
	}
	per := t.cfg.ManifestEntriesPerFile
	consolidated := ConsolidatedManifestCount(len(t.files), per)
	if manifests <= consolidated {
		res.Skipped = true
		return res, nil
	}

	// Write the consolidated manifests first, then drop the old ones.
	added := make([]metaObject, 0, consolidated)
	remaining := len(t.files)
	for i := 0; i < consolidated; i++ {
		entries := per
		if entries > remaining {
			entries = remaining
		}
		remaining -= entries
		path := fmt.Sprintf("/%s/%s/metadata/manifest-r%d-%d.avro", t.cfg.Database, t.cfg.Name, t.version, i)
		size := ManifestSizeBytes(entries)
		if err := t.fs.Create(path, size); err != nil {
			return res, err
		}
		added = append(added, metaObject{path: path, kind: metaManifest, ref: liveManifest, size: size})
		res.ObjectsAdded++
		res.BytesWritten += size
	}
	kept := t.metaObjects[:0]
	for _, m := range t.metaObjects {
		if m.kind != metaManifest {
			kept = append(kept, m)
			continue
		}
		if err := t.fs.Delete(m.path); err != nil {
			kept = append(kept, m)
			continue
		}
		res.ObjectsRemoved++
		res.BytesReclaimed += m.size
	}
	t.metaObjects = append(kept, added...)
	if t.actionSink != nil {
		if err := t.actionSink(Action{Kind: ActionRewriteManifests, Version: t.version, At: t.clock.Now()}); err != nil {
			return res, err
		}
	}
	return res, nil
}
