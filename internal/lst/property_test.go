package lst

import (
	"testing"
	"testing/quick"
	"time"

	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Property-based tests over random operation sequences: whatever mix of
// appends, partition overwrites, and rewrites executes, the table's
// invariants hold — version counts commits, live bytes match the applied
// operations, the storage object set matches the metadata's live set, and
// snapshot history stays monotonic.

type opCode uint8

func TestRandomOperationSequencesPreserveInvariants(t *testing.T) {
	f := func(ops []opCode, seed int64) bool {
		clock := sim.NewClock()
		fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
		rng := sim.NewRNG(seed)
		tbl, err := NewTable(TableConfig{
			Database: "db", Name: "t",
			Spec: PartitionSpec{Column: "d", Transform: TransformMonth},
		}, fs, clock)
		if err != nil {
			return false
		}
		parts := []string{"p1", "p2", "p3"}
		commits := int64(0)
		var expectBytes int64

		for _, op := range ops {
			clock.Advance(time.Minute)
			part := parts[rng.Intn(len(parts))]
			switch op % 3 {
			case 0: // append 1-3 files
				n := rng.IntBetween(1, 3)
				specs := make([]FileSpec, n)
				var added int64
				for i := range specs {
					size := int64(rng.IntBetween(1, 64)) * storage.MB
					specs[i] = FileSpec{Partition: part, SizeBytes: size, RowCount: size / 100}
					added += size
				}
				if _, err := tbl.AppendFiles(specs); err != nil {
					return false
				}
				commits++
				expectBytes += added
			case 1: // overwrite a partition with one file of equal bytes
				files := tbl.FilesInPartition(part)
				if len(files) == 0 {
					continue
				}
				var bytes int64
				for _, f := range files {
					bytes += f.SizeBytes
				}
				if _, err := tbl.OverwritePartition(part, []FileSpec{
					{Partition: part, SizeBytes: bytes, RowCount: bytes / 100},
				}); err != nil {
					return false
				}
				commits++
			case 2: // rewrite (compact) a partition: merge all into one
				files := tbl.FilesInPartition(part)
				if len(files) < 2 {
					continue
				}
				tx := tbl.NewTransaction(OpRewrite)
				var bytes, rows int64
				for _, f := range files {
					tx.Remove(f.Path, f.Partition)
					bytes += f.SizeBytes
					rows += f.RowCount
				}
				tx.Add(FileSpec{Partition: part, SizeBytes: bytes, RowCount: rows})
				if _, err := tx.Commit(); err != nil {
					return false
				}
				commits++
			}
		}

		// Invariant 1: version counts commits.
		if tbl.Version() != commits {
			return false
		}
		// Invariant 2: overwrites and rewrites conserve bytes; only
		// appends added any.
		if tbl.TotalBytes() != expectBytes {
			return false
		}
		// Invariant 3: every live data file exists in storage with the
		// recorded size.
		for _, f := range tbl.LiveFiles() {
			obj, err := fs.Stat(f.Path)
			if err != nil || obj.Size != f.SizeBytes {
				return false
			}
		}
		// Invariant 4: storage data objects = live set exactly (eager
		// physical cleanup).
		dataObjs := 0
		for _, o := range fs.List("/db/t/data/") {
			_ = o
			dataObjs++
		}
		if dataObjs != tbl.FileCount() {
			return false
		}
		// Invariant 5: snapshot history is sequential and monotonic.
		snaps := tbl.Snapshots()
		if int64(len(snaps)) != commits {
			return false
		}
		for i := 1; i < len(snaps); i++ {
			if snaps[i].Sequence != snaps[i-1].Sequence+1 ||
				snaps[i].Timestamp < snaps[i-1].Timestamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved appends from "concurrent" writers all land, and
// the final file count equals the number of appended files regardless of
// interleaving order.
func TestInterleavedAppendsAllLand(t *testing.T) {
	f := func(order []uint8) bool {
		clock := sim.NewClock()
		fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
		tbl, err := NewTable(TableConfig{Database: "db", Name: "t"}, fs, clock)
		if err != nil {
			return false
		}
		if len(order) > 24 {
			order = order[:24]
		}
		// Start one transaction per writer, then commit in the given
		// interleaving.
		txs := make([]*Transaction, len(order))
		for i := range txs {
			txs[i] = tbl.NewTransaction(OpAppend)
			txs[i].Add(FileSpec{SizeBytes: storage.MB, RowCount: 1})
		}
		for _, idx := range order {
			tx := txs[int(idx)%len(txs)]
			tx.Commit() // double commits return ErrTransactionDone; fine
		}
		for _, tx := range txs {
			tx.Commit()
		}
		return tbl.FileCount() == len(txs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
