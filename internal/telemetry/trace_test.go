package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCycleEventStringGolden pins the daemon's per-cycle log format —
// the single renderer shared by the log, the JSONL stream, and
// /statusz.
func TestCycleEventStringGolden(t *testing.T) {
	ev := CycleEvent{
		Day:    3,
		Policy: "default",
		Funnel: FunnelTrace{Generated: 1217, Selected: 1217},
		Scan:   ScanTrace{Mode: "dirty", Scanned: 412, Pool: 388, CacheHits: 361, CacheMisses: 51, DirtyNow: 0},
		Exec: ExecTrace{
			Workers: 8, Shards: 4, MakespanMS: 7_606_000, UtilizationPct: 96,
			MaxQueueDepth: 1216, Conflicts: 1, Retries: 1, Deferred: 0,
		},
		Outcomes: []OutcomeTrace{
			{Action: "data-compaction", Done: 613},
			{Action: "snapshot-expiry", Done: 31},
			{Action: "metadata-checkpoint", Done: 19},
			{Action: "manifest-rewrite", Done: 122},
		},
		FilesReduced: 410451,
		GBHrSpent:    614.4,
		Fleet:        FleetTrace{Tables: 1000, Files: 138814, MetaObjects: 8117, TinyFrac: 0.37},
	}
	want := "day   3: candidates=1217 selected=1217 reduced=  410451 files  cost=    0.6 TBHr  actions[data=613 expire=31 ckpt=19 manifest=122]  fleet=   138814 files     8117 meta (  37% tiny)\n" +
		"         sched: makespan= 2h6m46s util= 96%  queue[max=1216]  conflicts=  1 retries=  1 deferred=  0\n" +
		"         incr:  scanned= 412 tables (dirty-scan)  pool= 388  observes=  51 cache-hits= 361  dirty-now=0"
	if got := ev.String(); got != want {
		t.Errorf("log rendering drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Serial, non-incremental cycles render the day line only.
	plain := CycleEvent{Day: 1, Scan: ScanTrace{Mode: "scan"}}
	if s := plain.String(); strings.Contains(s, "\n") {
		t.Errorf("serial full-scan cycle rendered extra lines:\n%s", s)
	}
}

func TestTracerRingAndJSONL(t *testing.T) {
	tr := NewTracer(3)
	var sink bytes.Buffer
	tr.SetWriter(&sink)
	for d := 1; d <= 5; d++ {
		tr.Emit(CycleEvent{Day: d})
	}
	if tr.Seq() != 5 {
		t.Errorf("Seq = %d, want 5", tr.Seq())
	}
	last, ok := tr.Last()
	if !ok || last.Day != 5 || last.Seq != 5 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	recent := tr.Recent(10)
	if len(recent) != 3 || recent[0].Day != 3 || recent[2].Day != 5 {
		t.Errorf("ring retained wrong window: %+v", recent)
	}
	lines := strings.Split(strings.TrimSuffix(sink.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("JSONL stream has %d lines, want 5", len(lines))
	}
	var ev CycleEvent
	if err := json.Unmarshal([]byte(lines[4]), &ev); err != nil {
		t.Fatalf("JSONL line does not parse: %v", err)
	}
	if ev.Seq != 5 || ev.Day != 5 {
		t.Errorf("JSONL line carries seq=%d day=%d, want 5/5", ev.Seq, ev.Day)
	}
}

func TestTracerEmptyLast(t *testing.T) {
	if _, ok := NewTracer(4).Last(); ok {
		t.Error("empty tracer reported a last event")
	}
}
