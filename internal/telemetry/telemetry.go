// Package telemetry is AutoComp's runtime observability plane: a
// dependency-free metrics registry (atomic counters, gauges, histograms,
// labeled series) with Prometheus text-exposition rendering, plus a
// structured per-cycle decision-trace stream capturing the
// observe→decide→act funnel.
//
// It is distinct from internal/metrics, which holds the offline
// paper-figure reporting primitives (histogram tables, candlesticks,
// time-series renderers the experiments print). telemetry is what a
// running daemon exports while it works; metrics is what benchrunner
// renders after an experiment finishes.
//
// Instrumentation is strictly passive: recording a sample never takes a
// decision-path lock, never draws from a component RNG stream, and never
// feeds back into the pipeline — scenario golden traces are
// byte-identical with and without a scraper attached (pinned by
// TestTelemetryScrapeDoesNotPerturbGoldenTraces).
//
// The package-level Default registry and tracer are what the instrumented
// packages (core, scheduler, changefeed, fleet, scenario) publish to and
// what autocompd's /metrics endpoint renders. Tests that need isolation
// build their own Registry with NewRegistry.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families. All methods are safe for
// concurrent use; sample recording on registered instruments is atomic
// and lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the instrumented packages
// publish to.
func Default() *Registry { return defaultRegistry }

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric family: a type, a help string, a label
// schema, and the series recorded under it.
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	// buckets apply to histogram families (ascending upper bounds; +Inf
	// is implicit).
	buckets []float64

	mu     sync.RWMutex
	series map[string]*series
}

// series is one labeled instance of a family. value carries float64 bits
// for counters and gauges; histograms use counts/sum/count.
type series struct {
	labelValues []string
	value       atomic.Uint64

	counts  []atomic.Int64 // one per bucket, plus +Inf at the end
	sumBits atomic.Uint64
	count   atomic.Int64
}

func (s *series) addFloat(v float64) {
	for {
		old := s.value.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if s.value.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (s *series) setFloat(v float64) { s.value.Store(math.Float64bits(v)) }
func (s *series) getFloat() float64  { return math.Float64frombits(s.value.Load()) }

func (s *series) observe(v float64, buckets []float64) {
	i := sort.SearchFloat64s(buckets, v)
	s.counts[i].Add(1)
	for {
		old := s.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	s.count.Add(1)
}

// register returns the named family, creating it on first use. A name
// re-registered with a different type, label schema, or bucket layout
// panics — two packages publishing conflicting schemas under one name is
// a programming error that would corrupt the exposition.
func (r *Registry) register(name, help, kind string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("telemetry: %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesFor returns the series under the given label values, creating it
// on first use.
func (f *family) seriesFor(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		s.counts = make([]atomic.Int64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c Counter) Inc() { c.s.addFloat(1) }

// Add adds v (negative deltas are ignored: counters only go up).
func (c Counter) Add(v float64) {
	if v > 0 {
		c.s.addFloat(v)
	}
}

// Value returns the current count.
func (c Counter) Value() float64 { return c.s.getFloat() }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g Gauge) Set(v float64) { g.s.setFloat(v) }

// Add folds a delta in.
func (g Gauge) Add(v float64) { g.s.addFloat(v) }

// Value returns the current value.
func (g Gauge) Value() float64 { return g.s.getFloat() }

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	f *family
	s *series
}

// Observe records one sample.
func (h Histogram) Observe(v float64) { h.s.observe(v, h.f.buckets) }

// Count returns how many samples have been observed.
func (h Histogram) Count() int64 { return h.s.count.Load() }

// Sum returns the sum of all observed samples.
func (h Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// Counter registers (or fetches) an unlabeled counter family.
func (r *Registry) Counter(name, help string) Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return Counter{s: f.seriesFor(nil)}
}

// Gauge registers (or fetches) an unlabeled gauge family.
func (r *Registry) Gauge(name, help string) Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return Gauge{s: f.seriesFor(nil)}
}

// Histogram registers (or fetches) an unlabeled histogram family over the
// given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets)
	return Histogram{f: f, s: f.seriesFor(nil)}
}

// CounterVec is a counter family with a label schema.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter under the given label values.
func (v CounterVec) With(values ...string) Counter {
	return Counter{s: v.f.seriesFor(values)}
}

// GaugeVec is a gauge family with a label schema.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge under the given label values.
func (v GaugeVec) With(values ...string) Gauge {
	return Gauge{s: v.f.seriesFor(values)}
}

// HistogramVec is a histogram family with a label schema.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	return HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram under the given label values.
func (v HistogramVec) With(values ...string) Histogram {
	return Histogram{f: v.f, s: v.f.seriesFor(values)}
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// multiplying by factor — the standard latency-histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Value reads back the current value of a counter or gauge series
// without registering anything: ok is false when the family or the
// labeled series does not exist, or when the family is a histogram
// (read those through the Histogram handle). It lets callers outside
// the instrumented package — benchrunner throughput accounting, tests —
// sample a published metric by name.
func (r *Registry) Value(name string, labelValues ...string) (v float64, ok bool) {
	r.mu.RLock()
	f, found := r.families[name]
	r.mu.RUnlock()
	if !found || f.kind == kindHistogram || len(labelValues) != len(f.labels) {
		return 0, false
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.RLock()
	s, found := f.series[key]
	f.mu.RUnlock()
	if !found {
		return 0, false
	}
	return s.getFloat(), true
}

// FamilyCount returns how many metric families are registered.
func (r *Registry) FamilyCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.families)
}
