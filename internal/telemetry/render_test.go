package telemetry

import (
	"net/http/httptest"
	"testing"
)

// TestRenderGoldenExposition pins the exact Prometheus text-exposition
// bytes for one of each instrument kind: sorted families, sorted label
// values, cumulative histogram buckets with the implicit +Inf, and
// escaped help/label strings. Scrapers parse this format byte by byte,
// so it is pinned as a golden string, not semantically.
func TestRenderGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests served.").Add(3)
	qd := r.GaugeVec("test_queue_depth", "Queue depth by shard.", "shard")
	qd.With("1").Set(5)
	qd.With("0").Set(2.5)
	h := r.Histogram("test_latency_seconds", "Cycle latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterVec("test_escapes_total", "Help with \\ backslash\nand newline.", "path").
		With(`a"b\c`).Inc()

	want := `# HELP test_escapes_total Help with \\ backslash\nand newline.
# TYPE test_escapes_total counter
test_escapes_total{path="a\"b\\c"} 1
# HELP test_latency_seconds Cycle latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.55
test_latency_seconds_count 3
# HELP test_queue_depth Queue depth by shard.
# TYPE test_queue_depth gauge
test_queue_depth{shard="0"} 2.5
test_queue_depth{shard="1"} 5
# HELP test_requests_total Total requests served.
# TYPE test_requests_total counter
test_requests_total 3
`
	if got := r.Render(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if rec.Body.String() == "" {
		t.Error("empty exposition body")
	}
}
