package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// FunnelTrace is the candidate funnel of one decide phase: how many
// candidates each refinement stage let through.
type FunnelTrace struct {
	Generated  int `json:"generated"`
	AfterPre   int `json:"after_pre_filters"`
	AfterStats int `json:"after_stats_filters"`
	AfterTrait int `json:"after_trait_filters"`
	Ranked     int `json:"ranked"`
	Selected   int `json:"selected"`
}

// ScanTrace describes the observation mode of one cycle.
type ScanTrace struct {
	// Mode is "scan" (full pipeline scan, no changefeed), "dirty"
	// (incremental dirty-set cycle), or "full" (incremental reconciling
	// enumeration).
	Mode string `json:"mode"`
	// Scanned is how many tables were served to the generator.
	Scanned int `json:"scanned"`
	// Pool is the candidate-pool size the generator emitted.
	Pool int `json:"pool"`
	// CacheHits and CacheMisses are this cycle's stats-cache deltas
	// (misses equal the expensive Observe calls actually made).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// DirtyNow is the dirty-set size after the cycle consumed its dirt.
	DirtyNow int `json:"dirty_now"`
}

// ExecTrace summarizes the act phase of one cycle.
type ExecTrace struct {
	Done       int `json:"done"`
	Skipped    int `json:"skipped"`
	Conflicted int `json:"conflicted"`
	Deferred   int `json:"deferred"`
	Failed     int `json:"failed"`
	Conflicts  int `json:"conflicts"`
	Retries    int `json:"retries"`
	// Workers/Shards/MakespanMS/UtilizationPct describe the worker pool
	// (zero when the cycle acted serially).
	Workers        int     `json:"workers,omitempty"`
	Shards         int     `json:"shards,omitempty"`
	MakespanMS     int64   `json:"makespan_ms,omitempty"`
	UtilizationPct float64 `json:"utilization_pct,omitempty"`
	MaxQueueDepth  int     `json:"max_queue_depth,omitempty"`
}

// OutcomeTrace is the per-action-type outcome tally of one cycle's
// executed results.
type OutcomeTrace struct {
	Action string `json:"action"`
	Done   int    `json:"done"`
}

// FleetTrace is the end-of-cycle substrate snapshot.
type FleetTrace struct {
	Tables      int     `json:"tables"`
	Files       int64   `json:"files"`
	MetaObjects int64   `json:"meta_objects"`
	TinyFrac    float64 `json:"tiny_frac"`
}

// CycleEvent is one observe→decide→act cycle in the decision-trace
// stream: the funnel, the scan mode, the execution outcomes, the budget
// spend, and the fleet state it left behind. Events are emitted by
// fleet.SpecService.RunCycle (the path autocompd and the scenario engine
// share) and rendered identically into the daemon log, the JSONL trace
// stream, and /statusz — one snapshot, three views, zero drift.
type CycleEvent struct {
	// Seq is the tracer-assigned sequence number (1-based).
	Seq int64 `json:"seq"`
	// Day is the substrate's simulation day.
	Day int `json:"day"`
	// Tenant names the tenant whose pipeline ran the cycle (empty for
	// single-lake processes, which keeps single-tenant JSONL traces
	// byte-compatible with pre-tenant readers).
	Tenant string `json:"tenant,omitempty"`
	// Policy names the policy spec the cycle ran under.
	Policy string `json:"policy"`

	Funnel   FunnelTrace    `json:"funnel"`
	Scan     ScanTrace      `json:"scan"`
	Exec     ExecTrace      `json:"exec"`
	Outcomes []OutcomeTrace `json:"outcomes,omitempty"`

	FilesReduced    int     `json:"files_reduced"`
	MetadataReduced int     `json:"metadata_reduced"`
	BytesRewritten  int64   `json:"bytes_rewritten"`
	GBHrSpent       float64 `json:"gbhr_spent"`

	Fleet FleetTrace `json:"fleet"`

	// WallMS is the cost of running the cycle (observe through act) in
	// milliseconds, measured on the emitter's clock — virtual time under
	// simulation, so same-seed runs emit identical values. It is runtime
	// telemetry only and is never part of a scenario trace.
	WallMS float64 `json:"wall_ms"`
}

// String renders the event as the daemon's per-cycle log lines — the
// single renderer over the telemetry snapshot, so the log and /metrics
// can never drift apart.
func (ev CycleEvent) String() string {
	var b strings.Builder
	var data, expire, ckpt, manifest int
	for _, o := range ev.Outcomes {
		switch o.Action {
		case "data-compaction":
			data = o.Done
		case "snapshot-expiry":
			expire = o.Done
		case "metadata-checkpoint":
			ckpt = o.Done
		case "manifest-rewrite":
			manifest = o.Done
		}
	}
	fmt.Fprintf(&b, "day %3d: candidates=%4d selected=%4d reduced=%8d files  cost=%7.1f TBHr  actions[data=%d expire=%d ckpt=%d manifest=%d]  fleet=%9d files %8d meta (%4.0f%% tiny)",
		ev.Day, ev.Funnel.Generated, ev.Funnel.Selected,
		ev.FilesReduced, ev.GBHrSpent/1024,
		data, expire, ckpt, manifest,
		ev.Fleet.Files, ev.Fleet.MetaObjects, 100*ev.Fleet.TinyFrac)
	if ev.Exec.Workers > 0 {
		fmt.Fprintf(&b, "\n         sched: makespan=%8v util=%3.0f%%  queue[max=%3d]  conflicts=%3d retries=%3d deferred=%3d",
			(time.Duration(ev.Exec.MakespanMS) * time.Millisecond).Round(time.Second),
			ev.Exec.UtilizationPct, ev.Exec.MaxQueueDepth,
			ev.Exec.Conflicts, ev.Exec.Retries, ev.Exec.Deferred)
	}
	if ev.Scan.Mode != "scan" {
		fmt.Fprintf(&b, "\n         incr:  scanned=%4d tables (%s-scan)  pool=%4d  observes=%4d cache-hits=%4d  dirty-now=%d",
			ev.Scan.Scanned, ev.Scan.Mode, ev.Scan.Pool,
			ev.Scan.CacheMisses, ev.Scan.CacheHits, ev.Scan.DirtyNow)
	}
	return b.String()
}

// Tracer accumulates the decision-trace stream: a bounded ring of recent
// CycleEvents (served by /statusz) plus an optional writer receiving one
// JSON line per event. All methods are safe for concurrent use.
type Tracer struct {
	mu   sync.Mutex
	ring []CycleEvent
	max  int
	seq  int64
	w    io.Writer
}

// DefaultTraceDepth is how many recent cycles the default tracer retains.
const DefaultTraceDepth = 256

// NewTracer returns a tracer retaining the last depth events (min 1).
func NewTracer(depth int) *Tracer {
	if depth < 1 {
		depth = 1
	}
	return &Tracer{max: depth}
}

var defaultTracer = NewTracer(DefaultTraceDepth)

// DefaultTracer returns the process-wide decision-trace stream.
func DefaultTracer() *Tracer { return defaultTracer }

// SetWriter streams every subsequent event to w as one JSON line
// (pass nil to stop). The JSONL schema is documented in
// docs/observability.md.
func (t *Tracer) SetWriter(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w = w
}

// Emit appends one cycle event, assigning its sequence number.
func (t *Tracer) Emit(ev CycleEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	t.ring = append(t.ring, ev)
	if len(t.ring) > t.max {
		t.ring = t.ring[len(t.ring)-t.max:]
	}
	if t.w != nil {
		// Best-effort: a broken trace sink must never abort a cycle.
		if buf, err := json.Marshal(ev); err == nil {
			_, _ = t.w.Write(append(buf, '\n'))
		}
	}
}

// Last returns the most recent event, if any.
func (t *Tracer) Last() (CycleEvent, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return CycleEvent{}, false
	}
	return t.ring[len(t.ring)-1], true
}

// Recent returns up to n most recent events, oldest first.
func (t *Tracer) Recent(n int) []CycleEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]CycleEvent, n)
	copy(out, t.ring[len(t.ring)-n:])
	return out
}

// Seq returns how many events have been emitted.
func (t *Tracer) Seq() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
