package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Render returns the registry's state in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// values, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) Render() string {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	return b.String()
}

// render writes one family in exposition format.
func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, 0, len(keys))
	for _, k := range keys {
		sers = append(sers, f.series[k])
	}
	f.mu.RUnlock()

	for _, s := range sers {
		switch f.kind {
		case kindHistogram:
			f.renderHistogram(b, s)
		default:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.labelValues, "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.getFloat()))
			b.WriteByte('\n')
		}
	}
}

// renderHistogram writes the cumulative bucket series plus _sum/_count.
func (f *family) renderHistogram(b *strings.Builder, s *series) {
	var cum int64
	for i, bound := range f.buckets {
		cum += s.counts[i].Load()
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, s.labelValues, formatFloat(bound))
		fmt.Fprintf(b, " %d\n", cum)
	}
	cum += s.counts[len(f.buckets)].Load()
	b.WriteString(f.name)
	b.WriteString("_bucket")
	writeLabels(b, f.labels, s.labelValues, "+Inf")
	fmt.Fprintf(b, " %d\n", cum)

	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labels, s.labelValues, "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(math.Float64frombits(s.sumBits.Load())))
	b.WriteByte('\n')

	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labels, s.labelValues, "")
	fmt.Fprintf(b, " %d\n", s.count.Load())
}

// writeLabels renders the {k="v",...} block; le is the histogram bucket
// bound ("" for non-bucket series).
func writeLabels(b *strings.Builder, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			b.WriteByte(',')
		}
		first = false
		// %q escapes quotes, backslashes, and newlines the way the
		// exposition format requires.
		fmt.Fprintf(b, "%s=%q", n, values[i])
	}
	if le != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "le=%q", le)
	}
	b.WriteByte('}')
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in Prometheus text exposition format — the
// /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}
