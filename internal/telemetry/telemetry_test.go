package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives every instrument kind from many
// goroutines while a scraper renders the registry continuously. Run
// under -race (the CI race job does) it pins the lock-free recording
// paths; the final counts pin that no increment is lost.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_requests_total", "hammered counter")
	g := r.Gauge("hammer_depth", "hammered gauge")
	h := r.Histogram("hammer_latency_seconds", "hammered histogram", ExpBuckets(0.001, 10, 4))
	cv := r.CounterVec("hammer_by_worker_total", "hammered labeled counter", "worker")

	const workers, perWorker = 16, 2000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Render()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := cv.With(fmt.Sprintf("w%d", w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%7) / 100)
				mine.Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter lost increments: got %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram lost observations: got %d, want %d", got, workers*perWorker)
	}
	var labeled float64
	for w := 0; w < 4; w++ {
		v, ok := r.Value("hammer_by_worker_total", fmt.Sprintf("w%d", w))
		if !ok {
			t.Fatalf("labeled series w%d missing", w)
		}
		labeled += v
	}
	if labeled != workers*perWorker {
		t.Errorf("labeled counters lost increments: got %v, want %d", labeled, workers*perWorker)
	}
	if g.Value() != perWorker-1 {
		t.Errorf("gauge final value: got %v, want %d", g.Value(), perWorker-1)
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "monotonic")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter went down: %v", c.Value())
	}
}

func TestRegisterPanicsOnSchemaMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "first registration")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering clash_total as a gauge did not panic")
		}
	}()
	r.Gauge("clash_total", "conflicting registration")
}

func TestValueReadback(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth", "d").Set(7)
	if v, ok := r.Value("depth"); !ok || v != 7 {
		t.Errorf("Value(depth) = %v, %v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value(missing) reported ok")
	}
	r.Histogram("lat_seconds", "h", []float64{1}).Observe(0.5)
	if _, ok := r.Value("lat_seconds"); ok {
		t.Error("Value on a histogram family reported ok")
	}
	if _, ok := r.Value("depth", "stray-label"); ok {
		t.Error("Value with wrong label arity reported ok")
	}
}

func TestDefaultRegistryIsInstrumented(t *testing.T) {
	// The instrumented packages register their families at init; importing
	// telemetry alone sees none of them, but the autocompd binary must.
	// Here we only pin that Default is stable and renderable.
	if Default() != Default() {
		t.Fatal("Default registry not a singleton")
	}
	if !strings.HasSuffix(Default().Render(), "\n") && Default().FamilyCount() > 0 {
		t.Error("rendered exposition does not end in a newline")
	}
}
