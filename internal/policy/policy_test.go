package policy

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/core"
	"autocomp/internal/lst"
	"autocomp/internal/maintenance"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// --- Spec JSON round-trip ---

func TestSpecJSONRoundTrip(t *testing.T) {
	staleness := int64(2)
	orig := &Spec{
		Name:        "rt",
		Description: "round trip",
		Generators:  []Component{C("table-scope"), {Name: "snapshot-scope", Params: map[string]any{"window": "72h"}}},
		PreFilters:  []Component{C("not-intermediate")},
		StatsFilters: []Component{
			{Name: "min-small-files", Params: map[string]any{"min": float64(2)}},
		},
		TraitFilters: []Component{
			{Name: "max-trait", Params: map[string]any{"trait": "compute_cost_gbhr", "max": float64(500)}},
		},
		Traits: []Component{C("file_count_reduction"), C("compute_cost_gbhr")},
		Objectives: []ObjectiveSpec{
			{Trait: C("file_count_reduction"), Weight: 0.7},
			{Trait: C("compute_cost_gbhr"), Weight: 0.3},
		},
		Selector:    &Component{Name: "top-k", Params: map[string]any{"k": float64(10)}},
		Scheduler:   &Component{Name: "tables-parallel", Params: map[string]any{"max_parallel": float64(4)}},
		Maintenance: &MaintenanceSpec{RetainSnapshots: 10, CheckpointEveryVersions: 50, MinManifestSurplus: 4},
		Execution: &ExecutionSpec{
			Workers: 8, Shards: 4, ShardBudgetGBHr: 1024,
			StalenessBound: &staleness, MaxAttempts: 6,
			RetryBase: Duration(15 * time.Second), RetryMax: Duration(4 * time.Minute),
			AgingRatePerHour: 2,
		},
		Trigger: &TriggerSpec{EveryCommits: 3, BytesWritten: 1 << 30, ReconcileEvery: 12},
		Databases: map[string]*Patch{
			"db1": {Maintenance: &MaintenanceSpec{RetainSnapshots: 5}},
		},
		Tables: map[string]*Patch{
			"db1.t1": {Trigger: &TriggerSpec{EveryCommits: 1}},
		},
	}
	b, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip mismatch:\norig %+v\nback %+v\ndiff %v", orig, back, Diff(orig, back))
	}
	if d := Diff(orig, back); len(d) != 0 {
		t.Fatalf("diff of round-tripped spec = %v", d)
	}
	if err := Validate(back, StubEnv()); err != nil {
		t.Fatalf("round-tripped spec invalid: %v", err)
	}
}

func TestComponentShorthand(t *testing.T) {
	s, err := Parse([]byte(`{
		"generators": ["table-scope"],
		"traits": ["file_count_reduction"],
		"threshold": {"trait": "file_count_reduction", "min": 10}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Generators[0].Name != "table-scope" || s.Traits[0].Name != "file_count_reduction" {
		t.Fatalf("shorthand components = %+v / %+v", s.Generators, s.Traits)
	}
	if err := Validate(s, StubEnv()); err != nil {
		t.Fatal(err)
	}
}

// --- Rejection: unknown components, params, fields, bad structure ---

func TestUnknownComponentRejected(t *testing.T) {
	s := DefaultSpec()
	s.Generators = []Component{C("tabel-scope")} // typo
	err := Validate(s, StubEnv())
	if err == nil || !strings.Contains(err.Error(), `unknown generator "tabel-scope"`) {
		t.Fatalf("err = %v", err)
	}
	// The error names the registered alternatives.
	if !strings.Contains(err.Error(), "table-scope") {
		t.Fatalf("err does not list registered names: %v", err)
	}
}

func TestUnknownParamRejected(t *testing.T) {
	s := DefaultDataSpec(true)
	s.StatsFilters = []Component{{Name: "min-small-files", Params: map[string]any{"min": float64(2), "mim": float64(3)}}}
	err := Validate(s, StubEnv())
	if err == nil || !strings.Contains(err.Error(), `unknown param "mim"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestWrongParamTypeRejected(t *testing.T) {
	s := DefaultDataSpec(true)
	s.StatsFilters = []Component{{Name: "min-small-files", Params: map[string]any{"min": "two"}}}
	if err := Validate(s, StubEnv()); err == nil || !strings.Contains(err.Error(), "must be an integer") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownTopLevelFieldRejected(t *testing.T) {
	_, err := Parse([]byte(`{"generators": ["table-scope"], "trait": ["file_count_reduction"]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadWeightsRejected(t *testing.T) {
	s := DefaultDataSpec(false)
	s.Objectives[0].Weight = 0.9 // 0.9 + 0.3 != 1
	if err := Validate(s, StubEnv()); err == nil || !strings.Contains(err.Error(), "sum to") {
		t.Fatalf("err = %v", err)
	}
}

func TestQuotaAdaptiveArity(t *testing.T) {
	s := DefaultSpec() // three objectives
	s.QuotaAdaptive = true
	if err := Validate(s, StubEnv()); err == nil || !strings.Contains(err.Error(), "exactly 2 objectives") {
		t.Fatalf("err = %v", err)
	}
}

func TestObjectiveTraitMustBeComputed(t *testing.T) {
	s := DefaultDataSpec(true)
	s.Objectives[0].Trait = C("file_entropy") // not in the traits list
	if err := Validate(s, StubEnv()); err == nil || !strings.Contains(err.Error(), "not in the traits list") {
		t.Fatalf("err = %v", err)
	}
}

func TestThresholdAndObjectivesExclusive(t *testing.T) {
	s := DefaultDataSpec(true)
	s.Threshold = &ThresholdSpec{Trait: C("file_count_reduction"), Min: 10}
	if err := Validate(s, StubEnv()); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateReportsAllErrors(t *testing.T) {
	s := &Spec{
		Generators: []Component{C("nope")},
		Traits:     []Component{C("also-nope")},
	}
	err := Validate(s, StubEnv())
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{`unknown generator "nope"`, `unknown trait "also-nope"`, "needs a ranker"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err missing %q: %v", want, err)
		}
	}
}

func TestMaintenanceOverrideOnDataOnlySpecRejected(t *testing.T) {
	s := DefaultDataSpec(true)
	s.Databases = map[string]*Patch{"db1": {Maintenance: &MaintenanceSpec{RetainSnapshots: 5}}}
	if err := Validate(s, StubEnv()); err == nil || !strings.Contains(err.Error(), "data-only spec") {
		t.Fatalf("err = %v", err)
	}
}

func TestTriggerOverrideWithoutTriggerSectionRejected(t *testing.T) {
	s := DefaultSpec() // no trigger section
	s.Tables = map[string]*Patch{"db1.t1": {Trigger: &TriggerSpec{EveryCommits: 1}}}
	if err := Validate(s, StubEnv()); err == nil || !strings.Contains(err.Error(), "without a trigger section") {
		t.Fatalf("err = %v", err)
	}
}

// --- Compile: component construction fidelity ---

func TestCompileDefaultSpecShape(t *testing.T) {
	comp, err := Compile(DefaultSpec(), StubEnv(), Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := comp.Core.Generator.(maintenance.Generator)
	if !ok {
		t.Fatalf("generator = %T", comp.Core.Generator)
	}
	if _, ok := gen.Data.(core.TableScopeGenerator); !ok {
		t.Fatalf("data generator = %T", gen.Data)
	}
	sel, ok := comp.Core.Selector.(core.BudgetSelector)
	if !ok || sel.BudgetGBHr != 50*1024 {
		t.Fatalf("selector = %#v", comp.Core.Selector)
	}
	if len(comp.Core.StatsFilters) != 2 {
		t.Fatalf("stats filters = %v", comp.Core.StatsFilters)
	}
	fa, ok := comp.Core.StatsFilters[0].(core.ForAction)
	if !ok || fa.Action != core.ActionDataCompaction {
		t.Fatalf("filter[0] = %#v", comp.Core.StatsFilters[0])
	}
	if _, ok := fa.Inner.(core.MinSmallFiles); !ok {
		t.Fatalf("inner filter = %T", fa.Inner)
	}
	if !comp.HasExecution || comp.Sched.Workers != 8 || comp.Sched.Shards != 4 {
		t.Fatalf("sched = %+v", comp.Sched)
	}
	if comp.Incremental {
		t.Fatal("default spec should not enable the observation plane")
	}
	if comp.Maintenance != (maintenance.Policy{RetainSnapshots: 20, CheckpointEveryVersions: 100, MinManifestSurplus: 8}) {
		t.Fatalf("maintenance = %+v", comp.Maintenance)
	}
}

func TestCompileEnvDefaultsFlowIntoTraits(t *testing.T) {
	env := StubEnv()
	env.ExecutorMemoryGB = 32
	env.RewriteBytesPerHour = 1e12
	comp, err := Compile(DefaultDataSpec(true), env, Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	var cost core.ComputeCost
	found := false
	for _, tr := range comp.Core.Traits {
		if c, ok := tr.(core.ComputeCost); ok {
			cost, found = c, true
		}
	}
	if !found || cost.ExecutorMemoryGB != 32 || cost.RewriteBytesPerHour != 1e12 {
		t.Fatalf("compute cost trait = %+v (found %v)", cost, found)
	}
}

// --- Override layering precedence ---

func layeredSpec() *Spec {
	s := DefaultSpec()
	s.Trigger = &TriggerSpec{EveryCommits: 10}
	s.Databases = map[string]*Patch{
		"dbA": {
			Maintenance: &MaintenanceSpec{RetainSnapshots: 10},
			Trigger:     &TriggerSpec{EveryCommits: 5},
		},
	}
	s.Tables = map[string]*Patch{
		"dbA.t1": {
			Maintenance: &MaintenanceSpec{RetainSnapshots: 7, MinManifestSurplus: -1},
			Trigger:     &TriggerSpec{BytesWritten: 4096},
		},
	}
	return s
}

func TestLayeringPrecedenceSpecOnly(t *testing.T) {
	src := NewSource(layeredSpec(), nil)

	// Unmatched table: base spec only.
	pol := src.PolicyFor("dbZ", "t9")
	if pol.RetainSnapshots != 20 || pol.CheckpointEveryVersions != 100 || pol.MinManifestSurplus != 8 {
		t.Fatalf("base policy = %+v", pol)
	}
	// Database patch overrides retain, inherits the rest.
	pol = src.PolicyFor("dbA", "t9")
	if pol.RetainSnapshots != 10 || pol.CheckpointEveryVersions != 100 || pol.MinManifestSurplus != 8 {
		t.Fatalf("db-layer policy = %+v", pol)
	}
	// Table patch overrides the database patch; -1 disables rewrites.
	pol = src.PolicyFor("dbA", "t1")
	if pol.RetainSnapshots != 7 || pol.CheckpointEveryVersions != 100 || pol.MinManifestSurplus != -1 {
		t.Fatalf("table-layer policy = %+v", pol)
	}

	// Trigger layering: base 10 → db 5; table patch adds bytes only.
	tbl := fakeTable{db: "dbA", name: "t9"}
	if tr := src.TriggerFor(tbl); tr.EveryCommits != 5 || tr.BytesWritten != 0 {
		t.Fatalf("db-layer trigger = %+v", tr)
	}
	tbl = fakeTable{db: "dbA", name: "t1"}
	if tr := src.TriggerFor(tbl); tr.EveryCommits != 5 || tr.BytesWritten != 4096 {
		t.Fatalf("table-layer trigger = %+v", tr)
	}
	tbl = fakeTable{db: "dbZ", name: "t9"}
	if tr := src.TriggerFor(tbl); tr.EveryCommits != 10 {
		t.Fatalf("base trigger = %+v", tr)
	}
}

func TestLayeringPrecedenceWithCatalog(t *testing.T) {
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	cp := catalog.New(fs, clock)
	if _, err := cp.CreateDatabase("dbA", "tenant", 0); err != nil {
		t.Fatal(err)
	}
	// Table policies created with zero values so the catalog layers are
	// isolated per assertion.
	if _, err := cp.CreateTableWithPolicies("dbA", lst.TableConfig{Name: "t1"}, catalog.TablePolicies{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CreateTableWithPolicies("dbA", lst.TableConfig{Name: "t2"}, catalog.TablePolicies{RetainSnapshots: 3, TriggerEveryCommits: 2}); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetDatabasePolicies("dbA", catalog.TablePolicies{RetainSnapshots: 4, TriggerBytesWritten: 1 << 20}); err != nil {
		t.Fatal(err)
	}

	src := NewSource(layeredSpec(), cp)

	// Catalog database layer beats the spec's table patch (7).
	pol := src.PolicyFor("dbA", "t1")
	if pol.RetainSnapshots != 4 {
		t.Fatalf("catalog db layer lost: %+v", pol)
	}
	// Catalog table layer beats the catalog database layer.
	pol = src.PolicyFor("dbA", "t2")
	if pol.RetainSnapshots != 3 {
		t.Fatalf("catalog table layer lost: %+v", pol)
	}
	// Spec fields the catalog leaves unset survive all layers.
	if pol.CheckpointEveryVersions != 100 {
		t.Fatalf("spec base field lost: %+v", pol)
	}
	// Trigger: catalog table layer over catalog db layer over spec.
	tr := src.TriggerFor(fakeTable{db: "dbA", name: "t2"})
	if tr.EveryCommits != 2 || tr.BytesWritten != 1<<20 {
		t.Fatalf("trigger layering = %+v", tr)
	}
	// Unknown-to-catalog tables fall back to the spec layers.
	pol = src.PolicyFor("dbZ", "nope")
	if pol.RetainSnapshots != 20 {
		t.Fatalf("unknown table policy = %+v", pol)
	}
}

// fakeTable implements the slice of core.Table the trigger resolver
// reads.
type fakeTable struct{ db, name string }

func (f fakeTable) Database() string                     { return f.db }
func (f fakeTable) Name() string                         { return f.name }
func (f fakeTable) FullName() string                     { return f.db + "." + f.name }
func (fakeTable) Spec() lst.PartitionSpec                { return lst.PartitionSpec{} }
func (fakeTable) Mode() lst.WriteMode                    { return lst.CopyOnWrite }
func (fakeTable) Prop(string) string                     { return "" }
func (fakeTable) Created() time.Duration                 { return 0 }
func (fakeTable) LastWrite() time.Duration               { return 0 }
func (fakeTable) WriteCount() int64                      { return 0 }
func (fakeTable) FileCount() int                         { return 0 }
func (fakeTable) TotalBytes() int64                      { return 0 }
func (fakeTable) Partitions() []string                   { return nil }
func (fakeTable) LiveFiles() []lst.DataFile              { return nil }
func (fakeTable) FilesInPartition(string) []lst.DataFile { return nil }

// --- Hot reload watcher ---

func TestWatcherReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	write := func(s *Spec) {
		b, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(DefaultSpec())

	w, s, err := NewWatcher(path, StubEnv())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "default" {
		t.Fatalf("initial spec = %q", s.Name)
	}

	// Unchanged file: no reload.
	if _, changed, err := w.Poll(); err != nil || changed {
		t.Fatalf("poll unchanged = %v, %v", changed, err)
	}

	// Valid edit: reload with the new content.
	edited := DefaultSpec()
	edited.Name = "edited"
	edited.Selector = &Component{Name: "top-k", Params: map[string]any{"k": float64(3)}}
	write(edited)
	ns, changed, err := w.Poll()
	if err != nil || !changed {
		t.Fatalf("poll changed = %v, %v", changed, err)
	}
	if ns.Name != "edited" {
		t.Fatalf("reloaded spec = %q", ns.Name)
	}

	// Invalid edit: reported once, then quiescent until the next change.
	if err := os.WriteFile(path, []byte(`{"generators": ["no-such"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, changed, err := w.Poll(); err == nil || changed {
		t.Fatalf("poll invalid = %v, %v", changed, err)
	}
	if _, changed, err := w.Poll(); err != nil || changed {
		t.Fatalf("poll after reported error = %v, %v", changed, err)
	}

	// Fixing the file reloads again.
	write(DefaultSpec())
	ns, changed, err = w.Poll()
	if err != nil || !changed || ns.Name != "default" {
		t.Fatalf("poll fixed = %v, %v, %v", ns, changed, err)
	}

	// An unreadable file is reported once, not every poll.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, changed, err := w.Poll(); err == nil || changed {
		t.Fatalf("poll removed = %v, %v", changed, err)
	}
	if _, changed, err := w.Poll(); err != nil || changed {
		t.Fatalf("poll after reported read error = %v, %v", changed, err)
	}
	write(DefaultSpec())
	if _, changed, err := w.Poll(); err != nil || changed {
		t.Fatalf("poll restored identical content = %v, %v", changed, err)
	}
}

// --- Diff ---

func TestDiff(t *testing.T) {
	a := DefaultSpec()
	b := DefaultSpec()
	if d := Diff(a, b); len(d) != 0 {
		t.Fatalf("identical specs diff = %v", d)
	}
	b.Selector = &Component{Name: "top-k", Params: map[string]any{"k": float64(10)}}
	b.Maintenance.RetainSnapshots = 5
	d := Diff(a, b)
	joined := strings.Join(d, "\n")
	for _, want := range []string{"maintenance.retain_snapshots: 20 -> 5", "selector.name", "selector.params.k"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("diff missing %q:\n%s", want, joined)
		}
	}
}

// --- Registry extension ---

func TestCustomComponentRegistration(t *testing.T) {
	reg := NewRegistry()
	reg.Register(KindFilter, "always-drop", func(*Builder, *Args) (any, error) {
		return core.FilterFunc{FilterName: "always-drop", Fn: func(*core.Candidate) bool { return false }}, nil
	})
	s := DefaultDataSpec(true)
	s.PreFilters = []Component{C("always-drop")}
	env := StubEnv()
	if err := Validate(s, env); err == nil {
		t.Fatal("builtin registry should not know always-drop")
	}
	env.Registry = reg
	if err := Validate(s, env); err != nil {
		t.Fatalf("custom registry: %v", err)
	}
}
