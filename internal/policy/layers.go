package policy

import (
	"autocomp/internal/catalog"
	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/maintenance"
)

// CatalogReader serves the control plane's stored policy layers.
// *catalog.ControlPlane implements it.
type CatalogReader interface {
	// EffectivePolicies resolves the catalog's own layering (database
	// overrides, then the table's set fields); only operator-set fields
	// are non-zero. An error means the catalog does not know the table —
	// the catalog layers contribute nothing.
	EffectivePolicies(db, name string) (catalog.TablePolicies, error)
}

// Source resolves the effective per-table maintenance and trigger
// policies through the override layers, most specific winning
// field-wise:
//
//	base spec → spec per-database patch → spec per-table patch
//	          → catalog per-database policies → catalog per-table policies
//
// The spec layers travel with the policy file; the catalog layers are
// the control plane's live, operator-set state (present only when a
// catalog was bound at compile time). Source implements
// maintenance.PolicySource, and TriggerFor is a changefeed.PolicyFunc.
type Source struct {
	spec *Spec
	cat  CatalogReader
}

// NewSource builds a layered resolver for spec; cat may be nil.
func NewSource(spec *Spec, cat CatalogReader) *Source {
	return &Source{spec: spec, cat: cat}
}

// policy converts the base maintenance section wholesale (zeros mean
// the action family is off, exactly like maintenance.Policy).
func (m *MaintenanceSpec) policy() maintenance.Policy {
	if m == nil {
		return maintenance.Policy{}
	}
	return maintenance.Policy{
		RetainSnapshots:         m.RetainSnapshots,
		CheckpointEveryVersions: m.CheckpointEveryVersions,
		MinManifestSurplus:      m.MinManifestSurplus,
	}
}

// overlay applies the patch's non-zero fields; negative values are
// carried through (they disable the action for the matched scope).
func (m *MaintenanceSpec) overlay(p *maintenance.Policy) {
	if m == nil {
		return
	}
	if m.RetainSnapshots != 0 {
		p.RetainSnapshots = m.RetainSnapshots
	}
	if m.CheckpointEveryVersions != 0 {
		p.CheckpointEveryVersions = m.CheckpointEveryVersions
	}
	if m.MinManifestSurplus != 0 {
		p.MinManifestSurplus = m.MinManifestSurplus
	}
}

// overlay applies the patch's non-zero trigger fields.
func (t *TriggerSpec) overlay(p *changefeed.TriggerPolicy) {
	if t == nil {
		return
	}
	if t.EveryCommits != 0 {
		p.EveryCommits = t.EveryCommits
	}
	if t.BytesWritten != 0 {
		p.BytesWritten = t.BytesWritten
	}
}

// overlayCatalogPolicy applies the positive fields of a stored catalog
// policy onto a maintenance policy (the catalog cannot disable an action
// family; that is done in the spec).
func overlayCatalogPolicy(p *maintenance.Policy, pol catalog.TablePolicies) {
	if pol.RetainSnapshots > 0 {
		p.RetainSnapshots = pol.RetainSnapshots
	}
	if pol.CheckpointEveryVersions > 0 {
		p.CheckpointEveryVersions = pol.CheckpointEveryVersions
	}
}

// overlayCatalogTrigger applies the positive trigger fields of a stored
// catalog policy.
func overlayCatalogTrigger(p *changefeed.TriggerPolicy, pol catalog.TablePolicies) {
	if pol.TriggerEveryCommits > 0 {
		p.EveryCommits = pol.TriggerEveryCommits
	}
	if pol.TriggerBytesWritten > 0 {
		p.BytesWritten = pol.TriggerBytesWritten
	}
}

// PolicyFor implements maintenance.PolicySource with layered resolution.
func (s *Source) PolicyFor(db, name string) maintenance.Policy {
	out := s.spec.Maintenance.policy()
	if p, ok := s.spec.Databases[db]; ok && p != nil {
		p.Maintenance.overlay(&out)
	}
	if p, ok := s.spec.Tables[db+"."+name]; ok && p != nil {
		p.Maintenance.overlay(&out)
	}
	if s.cat != nil {
		if pol, err := s.cat.EffectivePolicies(db, name); err == nil {
			overlayCatalogPolicy(&out, pol)
		}
	}
	return out
}

// TriggerFor is a changefeed.PolicyFunc with the same layering.
func (s *Source) TriggerFor(t core.Table) changefeed.TriggerPolicy {
	var out changefeed.TriggerPolicy
	s.spec.Trigger.overlay(&out)
	db, name := t.Database(), t.Name()
	if p, ok := s.spec.Databases[db]; ok && p != nil {
		p.Trigger.overlay(&out)
	}
	if p, ok := s.spec.Tables[db+"."+name]; ok && p != nil {
		p.Trigger.overlay(&out)
	}
	if s.cat != nil {
		if pol, err := s.cat.EffectivePolicies(db, name); err == nil {
			overlayCatalogTrigger(&out, pol)
		}
	}
	return out
}
