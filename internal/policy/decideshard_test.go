package policy

import (
	"reflect"
	"strings"
	"testing"
)

// TestDecideShardsRoundTrip locks the wire format of the sharded decide
// knobs: they survive Marshal→Parse exactly and serialize under the
// documented JSON names.
func TestDecideShardsRoundTrip(t *testing.T) {
	orig := DefaultSpec()
	orig.Execution.DecideShards = 4
	orig.Execution.DecideWorkers = 2
	b, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"decide_shards": 4`, `"decide_workers": 2`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("marshaled spec missing %s:\n%s", want, b)
		}
	}
	back, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip diverged:\norig: %+v\nback: %+v", orig.Execution, back.Execution)
	}
	// Serial specs omit the knobs entirely.
	b2, err := DefaultSpec().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b2), "decide_shards") || strings.Contains(string(b2), "decide_workers") {
		t.Fatalf("serial spec leaked decide knobs:\n%s", b2)
	}
}

// TestDecideShardsValidation covers the compile-time guard rails on the
// decide knobs.
func TestDecideShardsValidation(t *testing.T) {
	cases := []struct {
		name    string
		shards  int
		workers int
		wantErr string
	}{
		{"negative shards", -1, 0, "decide_shards must be non-negative"},
		{"negative workers", 4, -2, "decide_workers must be non-negative"},
		{"workers without shards", 0, 2, "requires decide_shards > 1"},
		{"workers with serial shards", 1, 2, "requires decide_shards > 1"},
		{"serial", 0, 0, ""},
		{"sharded", 16, 4, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DefaultSpec()
			s.Execution.DecideShards = tc.shards
			s.Execution.DecideWorkers = tc.workers
			err := Validate(s, StubEnv())
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestCompileAttachesShardedDecider checks the compile wiring: a
// decide_shards > 1 spec compiles with a Decider attached and the shard
// count surfaced for feed construction; serial specs leave both unset.
func TestCompileAttachesShardedDecider(t *testing.T) {
	s := DefaultSpec()
	s.Execution.DecideShards = 4
	comp, err := Compile(s, StubEnv(), Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	if comp.DecideShards != 4 {
		t.Fatalf("DecideShards = %d, want 4", comp.DecideShards)
	}
	if comp.Core.Decider == nil {
		t.Fatal("sharded spec compiled without a Decider")
	}

	serial, err := Compile(DefaultSpec(), StubEnv(), Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	if serial.DecideShards != 0 || serial.Core.Decider != nil {
		t.Fatalf("serial spec got a sharded decide plane: shards=%d decider=%v",
			serial.DecideShards, serial.Core.Decider != nil)
	}
}
