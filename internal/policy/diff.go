package policy

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Diff returns a field-wise comparison of two specs as sorted
// "path: a -> b" lines (empty when the specs are semantically equal).
// It compares the marshaled forms, so formatting and field order do not
// register as differences.
func Diff(a, b *Spec) []string {
	fa, fb := flattenSpec(a), flattenSpec(b)
	keys := make(map[string]bool, len(fa)+len(fb))
	for k := range fa {
		keys[k] = true
	}
	for k := range fb {
		keys[k] = true
	}
	var out []string
	for k := range keys {
		va, oka := fa[k]
		vb, okb := fb[k]
		switch {
		case !oka:
			out = append(out, fmt.Sprintf("%s: (unset) -> %s", k, vb))
		case !okb:
			out = append(out, fmt.Sprintf("%s: %s -> (unset)", k, va))
		case va != vb:
			out = append(out, fmt.Sprintf("%s: %s -> %s", k, va, vb))
		}
	}
	sort.Strings(out)
	return out
}

// flattenSpec renders a spec as path→scalar pairs ("selector.params.k":
// "10", "stats_filters[0]": `"min-small-files"`).
func flattenSpec(s *Spec) map[string]string {
	out := make(map[string]string)
	if s == nil {
		return out
	}
	b, err := json.Marshal(s)
	if err != nil {
		return out
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return out
	}
	flattenValue("", v, out)
	return out
}

func flattenValue(path string, v any, out map[string]string) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			p := k
			if path != "" {
				p = path + "." + k
			}
			flattenValue(p, sub, out)
		}
	case []any:
		for i, sub := range t {
			flattenValue(fmt.Sprintf("%s[%d]", path, i), sub, out)
		}
	default:
		b, _ := json.Marshal(v)
		out[path] = string(b)
	}
}

// Describe renders a one-screen operator summary of a spec: the
// pipeline stages in OODA order with their parameters, then the
// enabled planes and override layers.
func Describe(s *Spec) string {
	var b strings.Builder
	name := s.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "policy %s\n", name)
	if s.Description != "" {
		fmt.Fprintf(&b, "  %s\n", s.Description)
	}
	comps := func(label string, cs []Component) {
		if len(cs) == 0 {
			return
		}
		parts := make([]string, len(cs))
		for i, c := range cs {
			parts[i] = describeComponent(c)
		}
		fmt.Fprintf(&b, "  %-14s %s\n", label+":", strings.Join(parts, ", "))
	}
	comps("generators", s.Generators)
	comps("pre-filters", s.PreFilters)
	comps("stats-filters", s.StatsFilters)
	comps("trait-filters", s.TraitFilters)
	comps("traits", s.Traits)
	if len(s.Objectives) > 0 {
		parts := make([]string, len(s.Objectives))
		for i, o := range s.Objectives {
			if s.QuotaAdaptive {
				parts[i] = o.Trait.Name
			} else {
				parts[i] = fmt.Sprintf("%s×%.2f", o.Trait.Name, o.Weight)
			}
		}
		mode := "static weights"
		if s.QuotaAdaptive {
			mode = "quota-adaptive weights"
		}
		fmt.Fprintf(&b, "  %-14s %s (%s)\n", "objectives:", strings.Join(parts, " + "), mode)
	}
	if s.Threshold != nil {
		fmt.Fprintf(&b, "  %-14s %s >= %g\n", "threshold:", s.Threshold.Trait.Name, s.Threshold.Min)
	}
	if s.Selector != nil {
		fmt.Fprintf(&b, "  %-14s %s\n", "selector:", describeComponent(*s.Selector))
	}
	if s.Scheduler != nil {
		fmt.Fprintf(&b, "  %-14s %s\n", "scheduler:", describeComponent(*s.Scheduler))
	}
	if m := s.Maintenance; m != nil {
		fmt.Fprintf(&b, "  %-14s retain %d snapshots, checkpoint every %d versions, manifest surplus %d\n",
			"maintenance:", m.RetainSnapshots, m.CheckpointEveryVersions, m.MinManifestSurplus)
	}
	if e := s.Execution; e != nil {
		fmt.Fprintf(&b, "  %-14s %d workers, %d shards, %.0f GBHr/shard\n",
			"execution:", e.Workers, e.Shards, e.ShardBudgetGBHr)
	}
	if t := s.Trigger; t != nil {
		fmt.Fprintf(&b, "  %-14s every %d commits / %d bytes, reconcile every %d cycles\n",
			"trigger:", t.EveryCommits, t.BytesWritten, t.ReconcileEvery)
	}
	if st := s.Storage; st != nil && st.Backend != "" {
		line := st.Backend
		if st.Durable() {
			fsync := st.Fsync
			if fsync == "" {
				fsync = "none"
			}
			line = fmt.Sprintf("%s at %s (fsync %s)", st.Backend, st.Root, fsync)
		}
		fmt.Fprintf(&b, "  %-14s %s\n", "storage:", line)
	}
	if len(s.Databases) > 0 || len(s.Tables) > 0 {
		fmt.Fprintf(&b, "  %-14s %d database, %d table patches\n",
			"overrides:", len(s.Databases), len(s.Tables))
	}
	return b.String()
}

func describeComponent(c Component) string {
	if len(c.Params) == 0 {
		return c.Name
	}
	keys := make([]string, 0, len(c.Params))
	for k := range c.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		b, _ := json.Marshal(c.Params[k])
		parts[i] = fmt.Sprintf("%s=%s", k, b)
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, " "))
}
