// Package policy is AutoComp's declarative policy plane: a
// JSON-serializable Spec that describes the whole observe→orient→
// decide→act pipeline as data — generator chain, filters with
// parameters, trait set, MOOP objectives and weights (including the
// quota-adaptive production weighting), selector and GBHr budget,
// execution-plane knobs (workers/shards/backoff), and the incremental
// observation plane's trigger policy — plus a component registry of
// named factories so specs resolve by {name, params} pairs, and a
// Compile step that turns a validated spec into the core.Config,
// scheduler.Config, and changefeed trigger the runtime consumes.
//
// The paper's central framing is that compaction policy must be
// configurable per deployment rather than baked into code (§3, NFR1),
// and the LSM compaction design-space analysis (arXiv 2202.04522) shows
// these knobs form a composable design space worth enumerating as data.
// Before this package every consumer hand-constructed core.Config in Go;
// a Spec is the serializable artifact operators version, validate, diff,
// and hot-reload instead.
//
// Layered resolution: a Spec carries base per-table knobs (maintenance
// policy, trigger policy) plus per-database and per-table override
// patches; when a catalog is bound at compile time, the catalog's
// database- and table-level policies layer on top (base spec → spec
// per-db → spec per-table → catalog per-db → catalog per-table, most
// specific wins field-wise).
package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// Duration marshals a time.Duration as a human-readable string ("36h",
// "45s") in spec JSON.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("policy: duration must be a string like \"36h\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("policy: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Component references a registered pipeline component by name, with
// optional parameters. In JSON a component is either an object
// {"name": ..., "params": {...}} or, when it takes no parameters, a bare
// string:
//
//	"generators": ["table-scope"]
//	"stats_filters": [{"name": "min-small-files", "params": {"min": 2}}]
type Component struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params,omitempty"`
}

// C is shorthand for a parameterless component reference.
func C(name string) Component { return Component{Name: name} }

// MarshalJSON implements json.Marshaler: parameterless components render
// as bare strings.
func (c Component) MarshalJSON() ([]byte, error) {
	if len(c.Params) == 0 {
		return json.Marshal(c.Name)
	}
	type alias struct {
		Name   string         `json:"name"`
		Params map[string]any `json:"params,omitempty"`
	}
	return json.Marshal(alias{c.Name, c.Params})
}

// UnmarshalJSON implements json.Unmarshaler, accepting both forms.
func (c *Component) UnmarshalJSON(b []byte) error {
	trimmed := bytes.TrimSpace(b)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		c.Params = nil
		return json.Unmarshal(trimmed, &c.Name)
	}
	var obj struct {
		Name   string         `json:"name"`
		Params map[string]any `json:"params"`
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&obj); err != nil {
		return fmt.Errorf("policy: bad component: %w", err)
	}
	c.Name, c.Params = obj.Name, obj.Params
	return nil
}

// ObjectiveSpec is one weighted term of the scalarized MOOP (§4.3).
type ObjectiveSpec struct {
	// Trait names the trait this term reads; it must also appear in the
	// spec's traits list so its values are computed during orient.
	Trait Component `json:"trait"`
	// Weight is the term's relative importance; static weights must sum
	// to 1. Ignored when the spec is quota-adaptive.
	Weight float64 `json:"weight,omitempty"`
}

// ThresholdSpec is the unconstrained-resource decision function (§4.3):
// candidates pass when the trait meets the minimum, scored by the raw
// trait value. Mutually exclusive with objectives.
type ThresholdSpec struct {
	Trait Component `json:"trait"`
	Min   float64   `json:"min"`
}

// MaintenanceSpec enables the unified maintenance pipeline (metadata
// actions ranked against data compaction) and carries its base policy.
// In override patches, zero-valued fields inherit the lower layer and
// negative values disable the action family for the matched scope.
type MaintenanceSpec struct {
	// RetainSnapshots is how many snapshots expiry keeps (min 1).
	RetainSnapshots int `json:"retain_snapshots,omitempty"`
	// CheckpointEveryVersions is how many commits may accumulate before
	// a metadata checkpoint is due (0 disables checkpointing).
	CheckpointEveryVersions int64 `json:"checkpoint_every_versions,omitempty"`
	// MinManifestSurplus is how many manifests beyond the consolidated
	// floor trigger a manifest rewrite (0 disables rewrites).
	MinManifestSurplus int `json:"min_manifest_surplus,omitempty"`
}

// ExecutionSpec enables the concurrent execution plane and carries its
// scheduler knobs (§4.4).
type ExecutionSpec struct {
	// Workers is the number of concurrent job slots (min 1).
	Workers int `json:"workers"`
	// Shards is the number of GBHr budget shards tables hash onto.
	Shards int `json:"shards,omitempty"`
	// ShardBudgetGBHr is each shard's per-cycle budget (0 = unlimited).
	ShardBudgetGBHr float64 `json:"shard_budget_gbhr,omitempty"`
	// StalenessBound is how many versions a table may advance between
	// job start and commit before the commit retries; unset means 0
	// (any concurrent writer commit conflicts), negative disables.
	StalenessBound *int64 `json:"staleness_bound,omitempty"`
	// MaxAttempts bounds per-job retries (0 = scheduler default).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// RetryBase and RetryMax bound the exponential backoff between
	// attempts (zero values take the scheduler defaults).
	RetryBase Duration `json:"retry_base,omitempty"`
	RetryMax  Duration `json:"retry_max,omitempty"`
	// AgingRatePerHour is the priority points a queued job gains per
	// hour of waiting (0 = scheduler default, negative disables).
	AgingRatePerHour float64 `json:"aging_rate_per_hour,omitempty"`
	// DecideShards partitions the decide phase (generation, filtering,
	// observation, MOOP ranking) across this many table-hash shards run
	// in parallel — byte-identical decisions, lower wall time on
	// multi-core hosts. 0 or 1 decides serially.
	DecideShards int `json:"decide_shards,omitempty"`
	// DecideWorkers bounds the goroutines working decide shards
	// (0 = min(DecideShards, GOMAXPROCS)). Meaningful only with
	// DecideShards > 1.
	DecideWorkers int `json:"decide_workers,omitempty"`
}

// TriggerSpec enables the incremental observation plane and carries the
// changefeed trigger policy: how much write activity promotes a table
// into the dirty set for re-observation.
type TriggerSpec struct {
	// EveryCommits fires the trigger once this many commits accumulate
	// (min 1: every commit, which preserves full-scan decision parity).
	EveryCommits int64 `json:"every_commits,omitempty"`
	// BytesWritten, when positive, also fires once this many bytes
	// accumulate since the last observation.
	BytesWritten int64 `json:"bytes_written,omitempty"`
	// ReconcileEvery runs a reconciling full scan every Nth cycle
	// (0 = cold-start full scan only).
	ReconcileEvery int `json:"reconcile_every,omitempty"`
}

// StorageSpec selects the lake's storage backend: "memory" (the
// default; state lives in the simulated namespace only) or "log" (every
// committed table version appends to a durable _delta_log directory
// under Root, and the lake replays it on restart — see docs/storage.md).
type StorageSpec struct {
	// Backend is "memory" or "log".
	Backend string `json:"backend"`
	// Root is the on-disk directory holding the persisted lake
	// (required for the log backend).
	Root string `json:"root,omitempty"`
	// Fsync is the log backend's durability policy: "none" (default;
	// atomic renames only) or "always" (fsync every action file and its
	// directory).
	Fsync string `json:"fsync,omitempty"`
}

// Durable reports whether the spec selects the durable log backend.
func (s *StorageSpec) Durable() bool { return s != nil && s.Backend == StorageBackendLog }

// Storage backends.
const (
	StorageBackendMemory = "memory"
	StorageBackendLog    = "log"
)

// Patch is a per-database or per-table override layer: fields present
// override the layer below, absent fields inherit.
type Patch struct {
	Maintenance *MaintenanceSpec `json:"maintenance,omitempty"`
	Trigger     *TriggerSpec     `json:"trigger,omitempty"`
}

// Spec declaratively describes one AutoComp pipeline. The zero value is
// not runnable; a spec needs at least one generator (unless maintenance
// is enabled, which can run metadata-only), at least one trait, and a
// ranker (objectives or threshold).
type Spec struct {
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`

	// Generators chain: every generator's candidates are concatenated
	// (§4.1's combination-of-scopes workflows). Empty is allowed only
	// with a maintenance section (metadata-only pipeline).
	Generators []Component `json:"generators,omitempty"`

	// Filters at the three refinement points (§3.3).
	PreFilters   []Component `json:"pre_filters,omitempty"`
	StatsFilters []Component `json:"stats_filters,omitempty"`
	TraitFilters []Component `json:"trait_filters,omitempty"`

	// Traits computed during orient (§4.2).
	Traits []Component `json:"traits"`

	// Objectives scalarize the MOOP (§4.3); QuotaAdaptive replaces the
	// static weights with the production weighting w1 = 0.5·(1+quota)
	// (§7) and requires exactly two objectives (benefit, cost).
	Objectives    []ObjectiveSpec `json:"objectives,omitempty"`
	QuotaAdaptive bool            `json:"quota_adaptive,omitempty"`
	// Threshold is the alternative unconstrained-resource ranker.
	Threshold *ThresholdSpec `json:"threshold,omitempty"`

	// Selector picks work units from the ranked list (default "all").
	Selector *Component `json:"selector,omitempty"`
	// Scheduler plans the act phase rounds (default "sequential").
	Scheduler *Component `json:"scheduler,omitempty"`

	// Maintenance, when present, generalizes the pipeline to the unified
	// maintenance family (snapshot expiry, metadata checkpointing,
	// manifest rewriting ranked with data compaction).
	Maintenance *MaintenanceSpec `json:"maintenance,omitempty"`
	// Execution, when present, runs the act phase on the concurrent
	// execution plane instead of the serial loop.
	Execution *ExecutionSpec `json:"execution,omitempty"`
	// Trigger, when present, makes observation commit-event-driven.
	Trigger *TriggerSpec `json:"trigger,omitempty"`
	// Storage, when present, selects the lake's storage backend
	// ("memory" or the durable "log" backend).
	Storage *StorageSpec `json:"storage,omitempty"`

	// Databases and Tables are override layers keyed by database name
	// and full table name ("db.table"): base spec → database patch →
	// table patch, field-wise.
	Databases map[string]*Patch `json:"databases,omitempty"`
	Tables    map[string]*Patch `json:"tables,omitempty"`
}

// Clone returns a deep copy (via JSON round-trip) so callers can apply
// overrides without mutating a shared spec.
func (s *Spec) Clone() *Spec {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("policy: clone marshal: %v", err))
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		panic(fmt.Sprintf("policy: clone unmarshal: %v", err))
	}
	return &out
}

// Parse decodes a spec from JSON, rejecting unknown fields so typos in
// operator-authored files fail loudly instead of silently defaulting.
func Parse(b []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("policy: parse spec: %w", err)
	}
	return &s, nil
}

// Marshal renders the spec as indented JSON (the on-disk format).
func (s *Spec) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
