package policy

import (
	"errors"
	"fmt"
	"time"

	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/decideshard"
	"autocomp/internal/maintenance"
	"autocomp/internal/scheduler"
	"autocomp/internal/storage"
)

// Env is the modeling environment components default their parameters
// from: the substrate's clock and the cost model's constants. A zero Env
// compiles (components fall back to zero defaults), but real deployments
// fill it so spec files can omit model constants.
type Env struct {
	// Now supplies virtual time to age/quiet components (nil means 0).
	Now func() time.Duration
	// TargetFileSize classifies small files (entropy trait default).
	TargetFileSize int64
	// ExecutorMemoryGB and RewriteBytesPerHour price GBHr (compute-cost
	// trait defaults, maintenance runner pricing).
	ExecutorMemoryGB    float64
	RewriteBytesPerHour float64
	// Registry resolves component names; nil means the built-ins.
	Registry *Registry
}

// StubEnv returns an Env with the production-shaped modeling defaults
// (512 MB target, 64 GB executors, 3 TB/h rewrite throughput), for
// validating specs without a live substrate.
func StubEnv() Env {
	return Env{
		TargetFileSize:      512 * storage.MB,
		ExecutorMemoryGB:    64,
		RewriteBytesPerHour: float64(3 * storage.TB),
	}
}

func (e Env) registry() *Registry {
	if e.Registry != nil {
		return e.Registry
	}
	return builtins
}

// Bindings are the substrate-specific pieces a spec cannot name: how to
// enumerate tables, observe them, and execute work. Catalog, when set,
// layers the control plane's database- and table-level policies on top
// of the spec's own override patches.
type Bindings struct {
	Connector core.Connector
	// Observer observes data-compaction candidates (the maintenance
	// observer wraps it for metadata candidates).
	Observer core.Observer
	// Runner executes data-compaction candidates (nil for decide-only
	// pipelines; the maintenance runner wraps it).
	Runner core.Runner
	// Catalog, when set, contributes the top override layers and serves
	// per-table trigger policies to the changefeed.
	Catalog CatalogReader
}

// Compiled is a spec resolved into the configurations the runtime
// consumes.
type Compiled struct {
	// Spec is the compiled spec (as given).
	Spec *Spec
	// Core is the decision-pipeline configuration; pass to
	// core.NewService (wrapping with an incremental feed first when
	// Incremental is set).
	Core core.Config
	// HasExecution reports whether the spec enables the concurrent
	// execution plane; Sched is its configuration.
	HasExecution bool
	Sched        scheduler.Config
	// DecideShards is the sharded decide plane's shard count (0 or 1 =
	// serial decide). When > 1, Core.Decider is already attached to a
	// decideshard engine; consumers building an incremental feed should
	// pass the same count to changefeed.NewFeedSharded so the retained
	// pool partitions align with the decide shards.
	DecideShards int
	// Incremental reports whether the spec enables commit-event-driven
	// observation; Trigger is the base trigger policy, Triggers the
	// layered per-table resolver, and ReconcileEvery the full-scan
	// reconciliation interval.
	Incremental    bool
	Trigger        changefeed.TriggerPolicy
	Triggers       changefeed.PolicyFunc
	ReconcileEvery int
	// Maintenance is the base maintenance policy (zero when the spec is
	// data-only); Source resolves the layered per-table policies.
	Maintenance maintenance.Policy
	Source      *Source
	// Storage is the validated storage section (zero Backend means the
	// in-memory default; Backend "log" means the consumer should open an
	// lstlog store at Root and persist the lake).
	Storage StorageSpec
}

// Builder constructs components against an environment and registry;
// factories receive it for nested construction.
type Builder struct {
	Env Env
	reg *Registry
}

// NewBuilder returns a Builder over env's registry.
func NewBuilder(env Env) *Builder { return &Builder{Env: env, reg: env.registry()} }

func (b *Builder) build(kind Kind, c Component) (any, error) {
	if c.Name == "" {
		return nil, fmt.Errorf("policy: %s component missing name", kind)
	}
	f, ok := b.reg.lookup(kind, c.Name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown %s %q (registered: %v)", kind, c.Name, b.reg.Names(kind))
	}
	a := newArgs(kind, c)
	v, err := f(b, a)
	// Surface parameter decode errors alongside the factory's own: a
	// mistyped parameter is the root cause of most factory failures.
	if ferr := a.finish(); err != nil || ferr != nil {
		return nil, errors.Join(err, ferr)
	}
	return v, nil
}

// Generator builds one generator component.
func (b *Builder) Generator(c Component) (core.Generator, error) {
	v, err := b.build(KindGenerator, c)
	if err != nil {
		return nil, err
	}
	return v.(core.Generator), nil
}

// Filter builds one filter component.
func (b *Builder) Filter(c Component) (core.Filter, error) {
	v, err := b.build(KindFilter, c)
	if err != nil {
		return nil, err
	}
	return v.(core.Filter), nil
}

// Trait builds one trait component.
func (b *Builder) Trait(c Component) (core.Trait, error) {
	v, err := b.build(KindTrait, c)
	if err != nil {
		return nil, err
	}
	return v.(core.Trait), nil
}

// Selector builds one selector component.
func (b *Builder) Selector(c Component) (core.Selector, error) {
	v, err := b.build(KindSelector, c)
	if err != nil {
		return nil, err
	}
	return v.(core.Selector), nil
}

// Scheduler builds one act-phase scheduler component.
func (b *Builder) Scheduler(c Component) (core.Scheduler, error) {
	v, err := b.build(KindScheduler, c)
	if err != nil {
		return nil, err
	}
	return v.(core.Scheduler), nil
}

// Validate checks a spec end to end — structure, component resolution,
// parameter names and types, objective weights — without binding it to a
// substrate. It returns every problem found, joined.
func Validate(s *Spec, env Env) error {
	_, err := Compile(s, env, Bindings{})
	return err
}

// Compile resolves a spec into runnable configuration: the core.Config
// for the decision pipeline (with maintenance wrapping when enabled),
// the scheduler.Config for the execution plane, and the changefeed
// trigger policy for the observation plane. Compilation collects every
// error rather than stopping at the first, so `lakectl policy validate`
// reports the full damage in one pass.
func Compile(s *Spec, env Env, b Bindings) (*Compiled, error) {
	if s == nil {
		return nil, errors.New("policy: nil spec")
	}
	bld := NewBuilder(env)
	var errs []error
	fail := func(err error) { errs = append(errs, err) }

	// Generator chain.
	var gens []core.Generator
	for _, c := range s.Generators {
		g, err := bld.Generator(c)
		if err != nil {
			fail(err)
			continue
		}
		gens = append(gens, g)
	}
	if len(s.Generators) == 0 && s.Maintenance == nil {
		fail(errors.New("policy: spec needs at least one generator (or a maintenance section for a metadata-only pipeline)"))
	}
	var gen core.Generator
	switch len(gens) {
	case 0:
	case 1:
		gen = gens[0]
	default:
		gen = core.MultiGenerator(gens)
	}

	buildFilters := func(point string, cs []Component) []core.Filter {
		var out []core.Filter
		for _, c := range cs {
			f, err := bld.Filter(c)
			if err != nil {
				fail(fmt.Errorf("%s: %w", point, err))
				continue
			}
			out = append(out, f)
		}
		return out
	}
	pre := buildFilters("pre_filters", s.PreFilters)
	stats := buildFilters("stats_filters", s.StatsFilters)
	traitFs := buildFilters("trait_filters", s.TraitFilters)

	// Traits.
	if len(s.Traits) == 0 {
		fail(errors.New("policy: spec needs at least one trait"))
	}
	var traits []core.Trait
	traitNames := make(map[string]bool, len(s.Traits))
	for _, c := range s.Traits {
		t, err := bld.Trait(c)
		if err != nil {
			fail(err)
			continue
		}
		traits = append(traits, t)
		traitNames[t.Name()] = true
	}

	// Ranker: MOOP objectives or threshold.
	var ranker core.Ranker
	switch {
	case s.Threshold != nil && len(s.Objectives) > 0:
		fail(errors.New("policy: objectives and threshold are mutually exclusive"))
	case s.Threshold != nil:
		t, err := bld.Trait(s.Threshold.Trait)
		if err != nil {
			fail(fmt.Errorf("threshold: %w", err))
			break
		}
		if !traitNames[t.Name()] {
			fail(fmt.Errorf("policy: threshold trait %q is not in the traits list", t.Name()))
		}
		ranker = core.ThresholdPolicy{Trait: t, Threshold: s.Threshold.Min}
	case len(s.Objectives) > 0:
		objs := make([]core.Objective, 0, len(s.Objectives))
		for _, o := range s.Objectives {
			t, err := bld.Trait(o.Trait)
			if err != nil {
				fail(fmt.Errorf("objectives: %w", err))
				continue
			}
			if !traitNames[t.Name()] {
				fail(fmt.Errorf("policy: objective trait %q is not in the traits list", t.Name()))
			}
			objs = append(objs, core.Objective{Trait: t, Weight: o.Weight})
		}
		r := core.MOOPRanker{Objectives: objs}
		if s.QuotaAdaptive {
			if len(objs) != 2 {
				fail(fmt.Errorf("policy: quota_adaptive needs exactly 2 objectives (benefit, cost), got %d", len(objs)))
			}
			r.DynamicWeights = core.QuotaAdaptiveWeights()
		}
		if len(objs) == len(s.Objectives) {
			if err := r.Validate(); err != nil {
				fail(err)
			}
		}
		ranker = r
	default:
		fail(errors.New("policy: spec needs a ranker (objectives or threshold)"))
	}

	// Selector and act-phase scheduler, with defaults.
	selComp := Component{Name: "all"}
	if s.Selector != nil {
		selComp = *s.Selector
	}
	selector, err := bld.Selector(selComp)
	if err != nil {
		fail(err)
	}
	schedComp := Component{Name: "sequential"}
	if s.Scheduler != nil {
		schedComp = *s.Scheduler
	}
	actSched, err := bld.Scheduler(schedComp)
	if err != nil {
		fail(err)
	}

	out := &Compiled{Spec: s}
	out.Source = NewSource(s, b.Catalog)

	// Assemble the core config, wrapping for unified maintenance.
	cfg := core.Config{
		Connector:    b.Connector,
		Generator:    gen,
		PreFilters:   pre,
		StatsFilters: stats,
		TraitFilters: traitFs,
		Observer:     b.Observer,
		Traits:       traits,
		Ranker:       ranker,
		Selector:     selector,
		Scheduler:    actSched,
		Runner:       b.Runner,
	}
	if s.Maintenance != nil {
		out.Maintenance = s.Maintenance.policy()
		cfg.Generator = maintenance.Generator{Data: gen, Policies: out.Source}
		cfg.Observer = maintenance.Observer{Base: b.Observer, Policies: out.Source, Now: env.Now}
		cfg.Runner = maintenance.Runner{
			Data:                b.Runner,
			Policies:            out.Source,
			ExecutorMemoryGB:    env.ExecutorMemoryGB,
			RewriteBytesPerHour: env.RewriteBytesPerHour,
		}
	}
	// Latency telemetry runs on the environment's clock: virtual time
	// under simulation (seed-deterministic histograms), wall time when
	// the env has no clock.
	cfg.Clock = env.Now
	out.Core = cfg

	// Execution plane.
	if s.Execution != nil {
		ex := s.Execution
		if ex.Workers < 1 {
			fail(fmt.Errorf("policy: execution.workers must be >= 1, got %d", ex.Workers))
		}
		if ex.DecideShards < 0 {
			fail(fmt.Errorf("policy: execution.decide_shards must be non-negative, got %d", ex.DecideShards))
		}
		if ex.DecideWorkers < 0 {
			fail(fmt.Errorf("policy: execution.decide_workers must be non-negative, got %d", ex.DecideWorkers))
		}
		if ex.DecideWorkers > 0 && ex.DecideShards <= 1 {
			fail(fmt.Errorf("policy: execution.decide_workers requires decide_shards > 1 (got decide_shards %d)", ex.DecideShards))
		}
		if ex.DecideShards > 1 {
			out.DecideShards = ex.DecideShards
			eng := decideshard.New(decideshard.Options{Shards: ex.DecideShards, Workers: ex.DecideWorkers, Clock: env.Now})
			out.Core.Decider = eng.Decide
		}
		var staleness int64
		if ex.StalenessBound != nil {
			staleness = *ex.StalenessBound
		}
		out.HasExecution = true
		out.Sched = scheduler.Config{
			Workers:          ex.Workers,
			Shards:           ex.Shards,
			ShardBudgetGBHr:  ex.ShardBudgetGBHr,
			StalenessBound:   staleness,
			MaxAttempts:      ex.MaxAttempts,
			RetryBase:        time.Duration(ex.RetryBase),
			RetryMax:         time.Duration(ex.RetryMax),
			AgingRatePerHour: ex.AgingRatePerHour,
		}
	}

	// Observation plane.
	if s.Trigger != nil {
		tr := s.Trigger
		if tr.EveryCommits < 0 || tr.BytesWritten < 0 || tr.ReconcileEvery < 0 {
			fail(errors.New("policy: trigger fields must be non-negative"))
		}
		out.Incremental = true
		out.Trigger = changefeed.TriggerPolicy{
			EveryCommits: tr.EveryCommits,
			BytesWritten: tr.BytesWritten,
		}
		out.Triggers = out.Source.TriggerFor
		out.ReconcileEvery = tr.ReconcileEvery
	}

	// Storage backend.
	if st := s.Storage; st != nil {
		switch st.Backend {
		case StorageBackendMemory, "":
			if st.Root != "" || st.Fsync != "" {
				fail(errors.New("policy: storage.root/fsync only apply to the log backend"))
			}
		case StorageBackendLog:
			if st.Root == "" {
				fail(errors.New("policy: storage.root is required for the log backend"))
			}
			switch st.Fsync {
			case "", "none", "always":
			default:
				fail(fmt.Errorf("policy: storage.fsync must be \"none\" or \"always\", got %q", st.Fsync))
			}
			if s.Trigger != nil {
				fail(errors.New("policy: the log storage backend cannot be combined with a trigger section (incremental dirty state is not persisted across restart)"))
			}
		default:
			fail(fmt.Errorf("policy: storage.backend must be %q or %q, got %q", StorageBackendMemory, StorageBackendLog, st.Backend))
		}
		out.Storage = *st
	}

	// Override patches must still name resolvable values.
	validatePatch := func(scope string, p *Patch) {
		if p == nil {
			fail(fmt.Errorf("policy: %s: null override patch", scope))
			return
		}
		if p.Maintenance != nil && s.Maintenance == nil {
			fail(fmt.Errorf("policy: %s: maintenance override on a data-only spec", scope))
		}
		if p.Trigger != nil && s.Trigger == nil {
			fail(fmt.Errorf("policy: %s: trigger override on a spec without a trigger section (the patch would never be consulted)", scope))
		}
		if p.Trigger != nil && p.Trigger.ReconcileEvery != 0 {
			fail(fmt.Errorf("policy: %s: reconcile_every is fleet-wide and cannot be overridden per scope", scope))
		}
	}
	for db, p := range s.Databases {
		validatePatch("databases."+db, p)
	}
	for tbl, p := range s.Tables {
		validatePatch("tables."+tbl, p)
	}

	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}
