package policy

// DefaultSpec returns the unified-maintenance pipeline autocompd runs
// by default — the spec form of the hand-wired fleet.MaintenanceConfig:
// table-scope candidates, per-action admission filters, the
// three-objective MOOP (ΔF 0.5, ΔM 0.2, GBHr 0.3), a 50 TBHr budget
// selector, the default maintenance policy, and an 8-worker/4-shard
// execution plane. examples/policies/default.json is this spec on disk;
// compiling either must produce byte-identical decisions to the
// hand-wired path.
func DefaultSpec() *Spec {
	return &Spec{
		Name:        "default",
		Description: "Unified maintenance: data compaction + metadata actions in one MOOP under one budget",
		Generators:  []Component{C("table-scope")},
		StatsFilters: []Component{
			{Name: "for-action", Params: map[string]any{
				"action": "data-compaction",
				"filter": map[string]any{
					"name":   "min-small-files",
					"params": map[string]any{"min": float64(2)},
				},
			}},
			{Name: "min-metadata-reduction", Params: map[string]any{"min": float64(1)}},
		},
		Traits: []Component{
			C("file_count_reduction"), C("metadata_reduction"), C("compute_cost_gbhr"),
		},
		Objectives: []ObjectiveSpec{
			{Trait: C("file_count_reduction"), Weight: 0.5},
			{Trait: C("metadata_reduction"), Weight: 0.2},
			{Trait: C("compute_cost_gbhr"), Weight: 0.3},
		},
		Selector: &Component{Name: "budget", Params: map[string]any{"budget_gbhr": float64(50 * 1024)}},
		Maintenance: &MaintenanceSpec{
			RetainSnapshots:         20,
			CheckpointEveryVersions: 100,
			MinManifestSurplus:      8,
		},
		Execution: &ExecutionSpec{Workers: 8, Shards: 4},
	}
}

// DefaultDataSpec returns the data-compaction-only production pipeline
// of §7 — the spec form of the hand-wired fleet.ServiceConfig: ΔF and
// GBHr objectives, quota-adaptive weights when quotaAdaptive is set
// (w1 = 0.5·(1+quota)) or the 0.7/0.3 static split otherwise. The
// caller sets the selector.
func DefaultDataSpec(quotaAdaptive bool) *Spec {
	s := &Spec{
		Name:         "data-only",
		Description:  "Data compaction only: ΔF vs GBHr MOOP at table scope",
		Generators:   []Component{C("table-scope")},
		StatsFilters: []Component{{Name: "min-small-files", Params: map[string]any{"min": float64(2)}}},
		Traits:       []Component{C("file_count_reduction"), C("compute_cost_gbhr")},
	}
	if quotaAdaptive {
		s.QuotaAdaptive = true
		s.Objectives = []ObjectiveSpec{
			{Trait: C("file_count_reduction")},
			{Trait: C("compute_cost_gbhr")},
		}
	} else {
		s.Objectives = []ObjectiveSpec{
			{Trait: C("file_count_reduction"), Weight: 0.7},
			{Trait: C("compute_cost_gbhr"), Weight: 0.3},
		}
	}
	return s
}
