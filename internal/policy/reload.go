package policy

import (
	"crypto/sha256"
	"fmt"
	"os"
)

// LoadFile parses a spec from a JSON file (unknown fields rejected).
func LoadFile(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	s, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Watcher tracks a spec file for atomic between-cycle hot reload: the
// daemon polls it at a safe point (between OODA cycles), and only a
// content change that parses AND validates produces a new spec — a bad
// edit is reported once and the running policy stays in force.
type Watcher struct {
	// Path is the watched spec file.
	Path string
	// Env validates candidate specs before they are handed out.
	Env Env

	sum [sha256.Size]byte
	// readErr dedups read-failure reporting (content failures dedup via
	// sum; an unreadable file has no content to hash).
	readErr string
}

// NewWatcher loads, validates, and starts watching a spec file.
func NewWatcher(path string, env Env) (*Watcher, *Spec, error) {
	w := &Watcher{Path: path, Env: env}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("policy: %w", err)
	}
	w.sum = sha256.Sum256(b)
	s, err := Parse(b)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := Validate(s, env); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return w, s, nil
}

// Poll re-reads the file. It returns (spec, true, nil) when the content
// changed to a valid spec, (nil, false, nil) when unchanged, and
// (nil, false, err) when the file is unreadable or the new content is
// invalid — each bad revision is reported once (the watcher remembers
// it and stays on the running policy until the file changes again).
func (w *Watcher) Poll() (*Spec, bool, error) {
	b, err := os.ReadFile(w.Path)
	if err != nil {
		if msg := err.Error(); msg != w.readErr {
			w.readErr = msg
			return nil, false, fmt.Errorf("policy: %w", err)
		}
		return nil, false, nil
	}
	w.readErr = ""
	sum := sha256.Sum256(b)
	if sum == w.sum {
		return nil, false, nil
	}
	w.sum = sum
	s, err := Parse(b)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", w.Path, err)
	}
	if err := Validate(s, w.Env); err != nil {
		return nil, false, fmt.Errorf("%s: %w", w.Path, err)
	}
	return s, true, nil
}
