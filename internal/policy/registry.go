package policy

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"autocomp/internal/core"
)

// Kind classifies the registry's component families.
type Kind string

// Component kinds.
const (
	KindGenerator Kind = "generator"
	KindFilter    Kind = "filter"
	KindTrait     Kind = "trait"
	KindSelector  Kind = "selector"
	KindScheduler Kind = "scheduler"
)

// Factory builds one component instance from its spec parameters. The
// Builder gives access to the environment and to nested component
// construction (e.g. for-action wraps an inner filter); the Args decoder
// tracks which parameters were consumed so unknown ones are rejected.
type Factory func(b *Builder, a *Args) (any, error)

// Registry maps {kind, name} to factories. The zero value is unusable;
// start from NewRegistry (a copy of the built-ins, extensible) or rely
// on the built-ins implicitly via a zero Env.
type Registry struct {
	byKind map[Kind]map[string]Factory
}

// NewRegistry returns a registry preloaded with the built-in components,
// which deployments may extend with their own factories (NFR1).
func NewRegistry() *Registry {
	r := &Registry{byKind: make(map[Kind]map[string]Factory)}
	for kind, m := range builtins.byKind {
		r.byKind[kind] = make(map[string]Factory, len(m))
		for name, f := range m {
			r.byKind[kind][name] = f
		}
	}
	return r
}

// Register adds a factory; registering an existing {kind, name} replaces
// it (deployments may shadow a built-in).
func (r *Registry) Register(kind Kind, name string, f Factory) {
	if r.byKind == nil {
		r.byKind = make(map[Kind]map[string]Factory)
	}
	m := r.byKind[kind]
	if m == nil {
		m = make(map[string]Factory)
		r.byKind[kind] = m
	}
	m[name] = f
}

// Names returns the registered names of one kind, sorted.
func (r *Registry) Names(kind Kind) []string {
	out := make([]string, 0, len(r.byKind[kind]))
	for name := range r.byKind[kind] {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) lookup(kind Kind, name string) (Factory, bool) {
	f, ok := r.byKind[kind][name]
	return f, ok
}

// Args decodes one component's parameters, tracking consumed keys so
// finish() can reject unknown ones — a typo'd parameter must fail
// validation, not silently fall back to a default.
type Args struct {
	owner string
	raw   map[string]any
	used  map[string]bool
	errs  []string
}

func newArgs(kind Kind, c Component) *Args {
	return &Args{
		owner: fmt.Sprintf("%s %q", kind, c.Name),
		raw:   c.Params,
		used:  make(map[string]bool, len(c.Params)),
	}
}

func (a *Args) errf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Sprintf(format, args...))
}

// Float reads a numeric parameter.
func (a *Args) Float(key string, def float64) float64 {
	v, ok := a.raw[key]
	if !ok {
		return def
	}
	a.used[key] = true
	f, ok := v.(float64)
	if !ok {
		a.errf("%s: param %q must be a number, got %T", a.owner, key, v)
		return def
	}
	return f
}

// Int reads an integer parameter.
func (a *Args) Int(key string, def int) int {
	return int(a.Int64(key, int64(def)))
}

// Int64 reads an integer parameter.
func (a *Args) Int64(key string, def int64) int64 {
	v, ok := a.raw[key]
	if !ok {
		return def
	}
	a.used[key] = true
	f, ok := v.(float64)
	if !ok {
		a.errf("%s: param %q must be an integer, got %T", a.owner, key, v)
		return def
	}
	if f != math.Trunc(f) {
		a.errf("%s: param %q must be an integer, got %v", a.owner, key, f)
		return def
	}
	return int64(f)
}

// Bool reads a boolean parameter.
func (a *Args) Bool(key string, def bool) bool {
	v, ok := a.raw[key]
	if !ok {
		return def
	}
	a.used[key] = true
	b, ok := v.(bool)
	if !ok {
		a.errf("%s: param %q must be a boolean, got %T", a.owner, key, v)
		return def
	}
	return b
}

// String reads a string parameter.
func (a *Args) String(key, def string) string {
	v, ok := a.raw[key]
	if !ok {
		return def
	}
	a.used[key] = true
	s, ok := v.(string)
	if !ok {
		a.errf("%s: param %q must be a string, got %T", a.owner, key, v)
		return def
	}
	return s
}

// Duration reads a duration parameter written as a string ("36h").
func (a *Args) Duration(key string, def time.Duration) time.Duration {
	v, ok := a.raw[key]
	if !ok {
		return def
	}
	a.used[key] = true
	s, ok := v.(string)
	if !ok {
		a.errf("%s: param %q must be a duration string like \"36h\", got %T", a.owner, key, v)
		return def
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		a.errf("%s: param %q: %v", a.owner, key, err)
		return def
	}
	return d
}

// Component reads a nested component parameter (a {name, params} object
// or bare string), for wrappers like for-action.
func (a *Args) Component(key string) (Component, bool) {
	v, ok := a.raw[key]
	if !ok {
		return Component{}, false
	}
	a.used[key] = true
	switch t := v.(type) {
	case string:
		return Component{Name: t}, true
	case map[string]any:
		var c Component
		name, _ := t["name"].(string)
		c.Name = name
		if p, ok := t["params"].(map[string]any); ok {
			c.Params = p
		}
		for k := range t {
			if k != "name" && k != "params" {
				a.errf("%s: param %q: unknown component field %q", a.owner, key, k)
			}
		}
		if c.Name == "" {
			a.errf("%s: param %q: nested component missing name", a.owner, key)
			return Component{}, false
		}
		return c, true
	default:
		a.errf("%s: param %q must be a component, got %T", a.owner, key, v)
		return Component{}, false
	}
}

// finish reports accumulated decode errors plus any parameter the
// factory never consumed.
func (a *Args) finish() error {
	var unknown []string
	for key := range a.raw {
		if !a.used[key] {
			unknown = append(unknown, key)
		}
	}
	sort.Strings(unknown)
	errs := a.errs
	for _, key := range unknown {
		errs = append(errs, fmt.Sprintf("%s: unknown param %q", a.owner, key))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("policy: %s", strings.Join(errs, "; "))
}

// ParseAction maps an action type's kebab-case name back to the type.
func ParseAction(s string) (core.ActionType, error) {
	for _, a := range core.ActionTypes() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown action %q", s)
}

// builtins is the shared built-in registry; NewRegistry copies it and
// the zero Env resolves against it directly.
var builtins = func() *Registry {
	r := &Registry{byKind: make(map[Kind]map[string]Factory)}

	// Generators (§4.1 work-unit scopes).
	r.Register(KindGenerator, "table-scope", func(*Builder, *Args) (any, error) {
		return core.TableScopeGenerator{}, nil
	})
	r.Register(KindGenerator, "partition-scope", func(*Builder, *Args) (any, error) {
		return core.PartitionScopeGenerator{}, nil
	})
	r.Register(KindGenerator, "hybrid-scope", func(*Builder, *Args) (any, error) {
		return core.HybridScopeGenerator{}, nil
	})
	r.Register(KindGenerator, "snapshot-scope", func(b *Builder, a *Args) (any, error) {
		window := a.Duration("window", 0)
		if window <= 0 {
			return nil, fmt.Errorf("policy: snapshot-scope requires a positive \"window\" duration")
		}
		return core.SnapshotScopeGenerator{Window: window, Now: b.Env.Now}, nil
	})

	// Filters (§3.3, §4.1 refinement points).
	r.Register(KindFilter, "min-table-age", func(b *Builder, a *Args) (any, error) {
		min := a.Duration("min", 0)
		if min <= 0 {
			return nil, fmt.Errorf("policy: min-table-age requires a positive \"min\" duration")
		}
		return core.MinTableAge{Min: min, Now: b.Env.Now}, nil
	})
	r.Register(KindFilter, "not-intermediate", func(*Builder, *Args) (any, error) {
		return core.NotIntermediate{}, nil
	})
	r.Register(KindFilter, "quiet-window", func(b *Builder, a *Args) (any, error) {
		min := a.Duration("min", 0)
		if min <= 0 {
			return nil, fmt.Errorf("policy: quiet-window requires a positive \"min\" duration")
		}
		return core.QuietWindow{Min: min, Now: b.Env.Now}, nil
	})
	r.Register(KindFilter, "candidate-quiet", func(b *Builder, a *Args) (any, error) {
		min := a.Duration("min", 0)
		if min <= 0 {
			return nil, fmt.Errorf("policy: candidate-quiet requires a positive \"min\" duration")
		}
		return core.CandidateQuiet{Min: min, Now: b.Env.Now}, nil
	})
	r.Register(KindFilter, "min-small-files", func(_ *Builder, a *Args) (any, error) {
		min := a.Int("min", 0)
		if min < 1 {
			return nil, fmt.Errorf("policy: min-small-files requires \"min\" >= 1")
		}
		return core.MinSmallFiles{Min: min}, nil
	})
	r.Register(KindFilter, "min-total-bytes", func(_ *Builder, a *Args) (any, error) {
		min := a.Int64("min_bytes", 0)
		if min < 1 {
			return nil, fmt.Errorf("policy: min-total-bytes requires \"min_bytes\" >= 1")
		}
		return core.MinTotalBytes{Min: min}, nil
	})
	r.Register(KindFilter, "min-metadata-reduction", func(_ *Builder, a *Args) (any, error) {
		min := a.Int("min", 0)
		if min < 1 {
			return nil, fmt.Errorf("policy: min-metadata-reduction requires \"min\" >= 1")
		}
		return core.MinMetadataReduction{Min: min}, nil
	})
	r.Register(KindFilter, "max-trait", func(_ *Builder, a *Args) (any, error) {
		trait := a.String("trait", "")
		if trait == "" {
			return nil, fmt.Errorf("policy: max-trait requires a \"trait\" name")
		}
		return core.MaxTraitValue{TraitName: trait, Max: a.Float("max", 0)}, nil
	})
	r.Register(KindFilter, "for-action", func(b *Builder, a *Args) (any, error) {
		action, err := ParseAction(a.String("action", ""))
		if err != nil {
			return nil, err
		}
		inner, ok := a.Component("filter")
		if !ok {
			return nil, fmt.Errorf("policy: for-action requires a nested \"filter\" component")
		}
		f, err := b.Filter(inner)
		if err != nil {
			return nil, err
		}
		return core.ForAction{Action: action, Inner: f}, nil
	})

	// Traits (§4.2), named after their core Name() values so spec
	// objectives, trait lists, and explain output all speak one
	// vocabulary.
	r.Register(KindTrait, "file_count_reduction", func(*Builder, *Args) (any, error) {
		return core.FileCountReduction{}, nil
	})
	r.Register(KindTrait, "relative_file_count_reduction", func(*Builder, *Args) (any, error) {
		return core.RelativeFileCountReduction{}, nil
	})
	r.Register(KindTrait, "compute_cost_gbhr", func(b *Builder, a *Args) (any, error) {
		return core.ComputeCost{
			ExecutorMemoryGB:    a.Float("executor_memory_gb", b.Env.ExecutorMemoryGB),
			RewriteBytesPerHour: a.Float("rewrite_bytes_per_hour", b.Env.RewriteBytesPerHour),
		}, nil
	})
	r.Register(KindTrait, "metadata_reduction", func(*Builder, *Args) (any, error) {
		return core.MetadataReduction{}, nil
	})
	r.Register(KindTrait, "file_entropy", func(b *Builder, a *Args) (any, error) {
		return core.FileEntropy{TargetFileSize: a.Int64("target_file_size", b.Env.TargetFileSize)}, nil
	})
	r.Register(KindTrait, "quota_pressure", func(*Builder, *Args) (any, error) {
		return core.QuotaPressure{}, nil
	})
	r.Register(KindTrait, "delta_file_debt", func(*Builder, *Args) (any, error) {
		return core.DeltaFileDebt{}, nil
	})
	r.Register(KindTrait, "layout_debt_bytes", func(*Builder, *Args) (any, error) {
		return core.LayoutDebt{}, nil
	})
	r.Register(KindTrait, "access_frequency", func(*Builder, *Args) (any, error) {
		return core.AccessFrequency{}, nil
	})

	// Selectors (§4.3).
	r.Register(KindSelector, "all", func(*Builder, *Args) (any, error) {
		return core.SelectAll{}, nil
	})
	r.Register(KindSelector, "top-k", func(_ *Builder, a *Args) (any, error) {
		k := a.Int("k", 0)
		if k < 1 {
			return nil, fmt.Errorf("policy: top-k requires \"k\" >= 1")
		}
		return core.TopK{K: k}, nil
	})
	r.Register(KindSelector, "budget", func(_ *Builder, a *Args) (any, error) {
		budget := a.Float("budget_gbhr", 0)
		if budget <= 0 {
			return nil, fmt.Errorf("policy: budget selector requires a positive \"budget_gbhr\"")
		}
		return core.BudgetSelector{
			BudgetGBHr: budget,
			CostTrait:  a.String("cost_trait", ""),
			MaxK:       a.Int("max_k", 0),
		}, nil
	})

	// Act-phase schedulers (§4.4).
	r.Register(KindScheduler, "sequential", func(*Builder, *Args) (any, error) {
		return core.SequentialScheduler{}, nil
	})
	r.Register(KindScheduler, "tables-parallel", func(_ *Builder, a *Args) (any, error) {
		return core.TablesParallelPartitionsSequential{MaxParallel: a.Int("max_parallel", 0)}, nil
	})

	return r
}()
