package policy_test

import (
	"fmt"
	"path/filepath"

	"autocomp/internal/policy"
)

// Example_shippedSpecs compiles every policy spec shipped under
// examples/policies — the same files CI validates with
// `lakectl policy validate` — proving they parse, resolve every
// component, and pass weight/parameter validation.
func Example_shippedSpecs() {
	for _, name := range []string{"default.json", "metadata-heavy.json", "incremental-fleet.json"} {
		spec, err := policy.LoadFile(filepath.Join("..", "..", "examples", "policies", name))
		if err != nil {
			fmt.Println(err)
			continue
		}
		comp, err := policy.Compile(spec, policy.StubEnv(), policy.Bindings{})
		if err != nil {
			fmt.Println(err)
			continue
		}
		planes := ""
		if comp.HasExecution {
			planes += " +execution"
		}
		if comp.Incremental {
			planes += " +incremental"
		}
		fmt.Printf("%s: %s%s\n", name, spec.Name, planes)
	}
	// Output:
	// default.json: default +execution
	// metadata-heavy.json: metadata-heavy +execution
	// incremental-fleet.json: incremental-fleet +execution +incremental
}
