package changefeed

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autocomp/internal/core"
)

// feedPart is one decide shard's slice of the retained candidate pool.
// Parts are keyed by core.ShardOf on the table name, so the sharded
// decide plane's per-shard generation touches exactly one part and
// parts never contend with each other. The atomic mirrors let pool
// accounting aggregate across parts without taking their locks.
type feedPart struct {
	mu sync.Mutex
	// retained maps table full name → the candidates emitted at the
	// table's last (re)generation; clean tables re-enter the pool from
	// here with stats served by the cache.
	retained map[string][]*core.Candidate
	// cands and tbls mirror the retained candidate and table counts.
	cands atomic.Int64
	tbls  atomic.Int64
}

// syncLocked refreshes the part's atomic mirrors; the caller holds
// p.mu.
func (p *feedPart) syncLocked() {
	n := 0
	for _, cs := range p.retained {
		n += len(cs)
	}
	p.cands.Store(int64(n))
	p.tbls.Store(int64(len(p.retained)))
}

// Feed bundles one lake's incremental-observation state: the commit
// bus, the dirty-set tracker, the stats cache, and the retained
// candidate pool the incremental generator re-emits for clean tables.
// Build one with NewFeed (or NewFeedSharded to align the retained pool
// and lock stripes with a sharded decide plane), attach publishers to
// Feed.Bus, and wrap a service's connector/generator/observer with
// Connector, Generator, and Observer — the core pipeline then runs
// unmodified.
type Feed struct {
	// Bus receives commit events; the tracker and cache are subscribed.
	Bus *Bus
	// Tracker owns the dirty set.
	Tracker *Tracker
	// Cache holds version-keyed observations.
	Cache *StatsCache

	// ReconcileEvery runs a full enumeration every Nth cycle as a
	// safety net for missed events (a publisher detached, an event
	// dropped): every table is re-listed, re-generated, and — where the
	// cache was invalidated or the version moved — re-observed.
	// 0 disables reconciliation (cold-start full scan still happens).
	ReconcileEvery int

	// mu guards the cycle state and the shard layout (shards, parts
	// slice identity); the parts' contents have their own locks. Lock
	// order is always mu before a part's mu, never the reverse.
	mu     sync.Mutex
	shards int
	parts  []*feedPart
	cycle  int64
	// full marks the current cycle as a full enumeration.
	full bool
	// scanned is the table list served to the generator this cycle.
	scanned  []core.Table
	lastPool int
}

// NewFeed builds a single-shard feed: a fresh bus with the tracker
// (using policy; nil = every commit) and cache invalidation subscribed,
// and the given reconciliation interval.
func NewFeed(policy PolicyFunc, reconcileEvery int) *Feed {
	return NewFeedSharded(policy, reconcileEvery, 1)
}

// NewFeedSharded builds a feed partitioned for a sharded decide plane:
// the retained pool splits into shards parts and the tracker and cache
// stripe their locks to match, so decide shards generate and observe
// without cross-shard contention. Shard count is fixed per feed; policy
// hot-reload builds a fresh feed, which is why decide-shard changes
// only ever take effect at a cycle boundary.
func NewFeedSharded(policy PolicyFunc, reconcileEvery, shards int) *Feed {
	if shards < 1 {
		shards = 1
	}
	f := &Feed{
		Bus:            NewBus(),
		Tracker:        NewTrackerSharded(policy, shards),
		Cache:          NewStatsCacheSharded(shards),
		ReconcileEvery: reconcileEvery,
		shards:         shards,
		parts:          newParts(shards),
	}
	f.Bus.Subscribe(f.Tracker.HandleEvent)
	f.Bus.Subscribe(func(e Event) {
		if e.Dropped {
			f.Cache.Drop(e.Table)
			f.mu.Lock()
			p := f.parts[core.ShardOf(e.Table, f.shards)]
			p.mu.Lock()
			delete(p.retained, e.Table)
			p.syncLocked()
			p.mu.Unlock()
			f.mu.Unlock()
			return
		}
		f.Cache.InvalidateTable(e.Table)
	})
	return f
}

func newParts(shards int) []*feedPart {
	parts := make([]*feedPart, shards)
	for i := range parts {
		parts[i] = &feedPart{retained: make(map[string][]*core.Candidate)}
	}
	return parts
}

// Shards returns the feed's retained-pool partition count.
func (f *Feed) Shards() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards
}

// ensureShards re-partitions the retained pool when a decide plane with
// a different shard count attaches mid-life — a robustness path (the
// policy compiler always builds feed and engine with matching counts);
// it rehashes every retained entry once, at a cycle boundary.
func (f *Feed) ensureShards(shards int) {
	if shards < 1 {
		shards = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if shards == f.shards {
		return
	}
	parts := newParts(shards)
	for _, old := range f.parts {
		old.mu.Lock()
		for name, cs := range old.retained {
			parts[core.ShardOf(name, shards)].retained[name] = cs
		}
		old.mu.Unlock()
	}
	for _, p := range parts {
		p.syncLocked()
	}
	f.shards, f.parts = shards, parts
}

// Connector wraps full so Tables() serves only the dirty set between
// reconciling full scans. Use together with Generator on the same feed:
// the pair shares per-cycle state and must be called in lockstep, which
// core.Service.Decide does.
func (f *Feed) Connector(full core.Connector) *IncrementalConnector {
	return &IncrementalConnector{feed: f, Full: full}
}

// Generator wraps inner so Candidates() regenerates only the tables the
// connector served this cycle and re-emits retained candidates for the
// rest. The wrapper is also a core.ShardedGenerator: a sharded decide
// plane calls ShardCandidates per shard and each call works one
// retained-pool part.
func (f *Feed) Generator(inner core.Generator) *IncrementalGenerator {
	return &IncrementalGenerator{feed: f, Inner: inner}
}

// Observer wraps inner in a CachingObserver over the feed's cache.
// refresh must mirror the clock- and quota-dependent fields inner sets
// (see CachingObserver.Refresh).
func (f *Feed) Observer(inner core.Observer, refresh func(*core.Candidate, *core.Stats)) CachingObserver {
	return CachingObserver{Inner: inner, Cache: f.Cache, Refresh: refresh}
}

// beginCycle starts an observation cycle: a full enumeration at cold
// start and every ReconcileEvery-th cycle, the dirty set otherwise.
func (f *Feed) beginCycle(full core.Connector) []core.Table {
	f.mu.Lock()
	f.cycle++
	coldStart := f.cycle == 1
	doFull := coldStart ||
		(f.ReconcileEvery > 0 && f.cycle%int64(f.ReconcileEvery) == 0)
	f.full = doFull
	f.mu.Unlock()

	var ts []core.Table
	if doFull {
		ts = full.Tables()
		// The full scan observes everything: register refs, reset
		// pending accumulation, consume outstanding dirty flags, and
		// forget tables the authoritative enumeration no longer lists —
		// in the tracker and in the cache.
		f.Tracker.NoteFullScan(ts)
		keep := make(map[string]struct{}, len(ts))
		for _, t := range ts {
			keep[t.FullName()] = struct{}{}
		}
		f.Cache.RetainOnly(keep)
	} else {
		ts = f.Tracker.TakeDirty()
	}
	f.mu.Lock()
	f.scanned = ts
	f.mu.Unlock()
	mode := "dirty"
	if doFull {
		mode = "full"
	}
	mScans.With(mode).Inc()
	mScannedTables.Set(float64(len(ts)))
	return ts
}

// notePool refreshes the emitted-pool accounting from the parts'
// mirrors. During a sharded cycle it runs once per finished shard; the
// last shard leaves the exact totals.
func (f *Feed) notePool() {
	f.mu.Lock()
	defer f.mu.Unlock()
	var cands, tbls int64
	for _, p := range f.parts {
		cands += p.cands.Load()
		tbls += p.tbls.Load()
	}
	f.lastPool = int(cands)
	mPoolSize.Set(float64(cands))
	mRetainedTables.Set(float64(tbls))
}

// isFull reports whether the current cycle is a full enumeration.
func (f *Feed) isFull() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.full
}

// part returns the shard's retained-pool partition.
func (f *Feed) part(shard int) *feedPart {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.parts[shard]
}

// ScanInfo describes the feed's most recent observation cycle.
type ScanInfo struct {
	// Cycle is the 1-based cycle counter.
	Cycle int64
	// Full reports whether the cycle was a full enumeration.
	Full bool
	// Scanned is how many tables were served to the generator.
	Scanned int
	// Pool is the candidate-pool size the generator emitted.
	Pool int
}

// LastScan returns a snapshot of the most recent cycle.
func (f *Feed) LastScan() ScanInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return ScanInfo{Cycle: f.cycle, Full: f.full, Scanned: len(f.scanned), Pool: f.lastPool}
}

// ScannedNames returns the full names of the tables served in the most
// recent cycle, sorted (for logging and the runnable example).
func (f *Feed) ScannedNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.scanned))
	for i, t := range f.scanned {
		out[i] = t.FullName()
	}
	sort.Strings(out)
	return out
}

// IncrementalConnector serves the dirty set instead of the whole lake.
// Quota and clock queries pass through to the full connector.
type IncrementalConnector struct {
	feed *Feed
	// Full is the wrapped whole-lake connector, consulted for full
	// enumerations (cold start, reconciliation) and passthrough queries.
	Full core.Connector
}

// Tables implements core.Connector: the dirty tables mid-stream, the
// full enumeration at cold start and on reconcile cycles.
func (c *IncrementalConnector) Tables() []core.Table {
	return c.feed.beginCycle(c.Full)
}

// QuotaUtilization implements core.Connector.
func (c *IncrementalConnector) QuotaUtilization(db string) float64 {
	return c.Full.QuotaUtilization(db)
}

// Now implements core.Connector.
func (c *IncrementalConnector) Now() time.Duration { return c.Full.Now() }

// IncrementalGenerator regenerates candidates only for the tables the
// connector served this cycle, re-emitting every other table's retained
// candidates unchanged. With a state-deterministic inner generator this
// keeps the emitted pool set-equal to a full scan's (see the package
// doc for the exact parity conditions). It implements
// core.ShardedGenerator over the feed's retained-pool parts.
type IncrementalGenerator struct {
	feed *Feed
	// Inner is the wrapped whole-lake generator.
	Inner core.Generator
}

// Name implements core.Generator.
func (g *IncrementalGenerator) Name() string { return "incremental(" + g.Inner.Name() + ")" }

// Candidates implements core.Generator. tables must be the list the
// paired IncrementalConnector returned this cycle.
func (g *IncrementalGenerator) Candidates(tables []core.Table) []*core.Candidate {
	fresh := g.Inner.Candidates(tables)
	f := g.feed
	full := f.isFull()
	f.mu.Lock()
	parts, shards := f.parts, f.shards
	f.mu.Unlock()

	var out []*core.Candidate
	if full {
		// Full rebuild: the retained pool becomes exactly this scan's
		// output; entries of dropped tables vanish with the old maps.
		for _, p := range parts {
			p.mu.Lock()
			p.retained = make(map[string][]*core.Candidate)
			p.mu.Unlock()
		}
		for _, c := range fresh {
			name := c.Table.FullName()
			p := parts[core.ShardOf(name, shards)]
			p.mu.Lock()
			p.retained[name] = append(p.retained[name], c)
			p.mu.Unlock()
		}
		for _, p := range parts {
			p.mu.Lock()
			p.syncLocked()
			p.mu.Unlock()
		}
		out = fresh
	} else {
		// Replace the regenerated tables' entries (a table whose state
		// no longer yields candidates drops out), keep the rest.
		for _, t := range tables {
			name := t.FullName()
			p := parts[core.ShardOf(name, shards)]
			p.mu.Lock()
			delete(p.retained, name)
			p.mu.Unlock()
		}
		for _, c := range fresh {
			name := c.Table.FullName()
			p := parts[core.ShardOf(name, shards)]
			p.mu.Lock()
			p.retained[name] = append(p.retained[name], c)
			p.mu.Unlock()
		}
		for _, p := range parts {
			p.mu.Lock()
			for _, cs := range p.retained {
				out = append(out, cs...)
			}
			p.syncLocked()
			p.mu.Unlock()
		}
		// Deterministic pool order; ranking is order-independent (score
		// plus ID tie-break), so this only stabilizes logs and tests.
		sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	}
	f.notePool()
	return out
}

// ShardCandidates implements core.ShardedGenerator: one decide shard's
// slice of the incremental pool. tables must be the shard's partition
// (by core.ShardOf) of the list the paired connector returned this
// cycle; the call regenerates exactly those tables within the shard's
// retained part and re-emits the part's remaining (clean) tables'
// candidates. Concatenated over all shards this emits the same pool as
// one Candidates call — the core.ShardedGenerator contract — because
// the parts partition the same retained state Candidates operates on.
func (g *IncrementalGenerator) ShardCandidates(shard, shards int, tables []core.Table) []*core.Candidate {
	f := g.feed
	f.ensureShards(shards)
	full := f.isFull()
	fresh := g.Inner.Candidates(tables)

	p := f.part(shard)
	p.mu.Lock()
	var out []*core.Candidate
	if full {
		p.retained = make(map[string][]*core.Candidate, len(tables))
		for _, c := range fresh {
			name := c.Table.FullName()
			p.retained[name] = append(p.retained[name], c)
		}
		out = fresh
	} else {
		for _, t := range tables {
			delete(p.retained, t.FullName())
		}
		for _, c := range fresh {
			name := c.Table.FullName()
			p.retained[name] = append(p.retained[name], c)
		}
		out = make([]*core.Candidate, 0, len(fresh))
		for _, cs := range p.retained {
			out = append(out, cs...)
		}
		// Per-shard deterministic order, mirroring the serial path's
		// ID sort (ranking itself is order-independent).
		sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	}
	p.syncLocked()
	p.mu.Unlock()
	f.notePool()
	return out
}

// RetainedCount returns how many candidates the feed currently retains.
func (f *Feed) RetainedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, p := range f.parts {
		n += p.cands.Load()
	}
	return int(n)
}

// RetainedTables returns the sorted full names of the tables whose
// candidates the feed currently retains — the invariant surface scenario
// harnesses audit (a retained candidate must never reference a table
// that left the lake).
func (f *Feed) RetainedTables() []string {
	f.mu.Lock()
	parts := f.parts
	f.mu.Unlock()
	var out []string
	for _, p := range parts {
		p.mu.Lock()
		for name := range p.retained {
			out = append(out, name)
		}
		p.mu.Unlock()
	}
	sort.Strings(out)
	return out
}
