package changefeed

import (
	"sort"
	"sync"
	"time"

	"autocomp/internal/core"
)

// Feed bundles one lake's incremental-observation state: the commit
// bus, the dirty-set tracker, the stats cache, and the retained
// candidate pool the incremental generator re-emits for clean tables.
// Build one with NewFeed, attach publishers to Feed.Bus, and wrap a
// service's connector/generator/observer with Connector, Generator, and
// Observer — the core pipeline then runs unmodified.
type Feed struct {
	// Bus receives commit events; the tracker and cache are subscribed.
	Bus *Bus
	// Tracker owns the dirty set.
	Tracker *Tracker
	// Cache holds version-keyed observations.
	Cache *StatsCache

	// ReconcileEvery runs a full enumeration every Nth cycle as a
	// safety net for missed events (a publisher detached, an event
	// dropped): every table is re-listed, re-generated, and — where the
	// cache was invalidated or the version moved — re-observed.
	// 0 disables reconciliation (cold-start full scan still happens).
	ReconcileEvery int

	mu    sync.Mutex
	cycle int64
	// full marks the current cycle as a full enumeration.
	full bool
	// scanned is the table list served to the generator this cycle.
	scanned []core.Table
	// retained maps table full name → the candidates emitted at the
	// table's last (re)generation; clean tables re-enter the pool from
	// here with stats served by the cache.
	retained map[string][]*core.Candidate
	lastPool int
}

// NewFeed builds a feed: a fresh bus with the tracker (using policy;
// nil = every commit) and cache invalidation subscribed, and the given
// reconciliation interval.
func NewFeed(policy PolicyFunc, reconcileEvery int) *Feed {
	f := &Feed{
		Bus:            NewBus(),
		Tracker:        NewTracker(policy),
		Cache:          NewStatsCache(),
		ReconcileEvery: reconcileEvery,
		retained:       make(map[string][]*core.Candidate),
	}
	f.Bus.Subscribe(f.Tracker.HandleEvent)
	f.Bus.Subscribe(func(e Event) {
		if e.Dropped {
			f.Cache.Drop(e.Table)
			f.mu.Lock()
			delete(f.retained, e.Table)
			f.mu.Unlock()
			return
		}
		f.Cache.InvalidateTable(e.Table)
	})
	return f
}

// Connector wraps full so Tables() serves only the dirty set between
// reconciling full scans. Use together with Generator on the same feed:
// the pair shares per-cycle state and must be called in lockstep, which
// core.Service.Decide does.
func (f *Feed) Connector(full core.Connector) *IncrementalConnector {
	return &IncrementalConnector{feed: f, Full: full}
}

// Generator wraps inner so Candidates() regenerates only the tables the
// connector served this cycle and re-emits retained candidates for the
// rest.
func (f *Feed) Generator(inner core.Generator) *IncrementalGenerator {
	return &IncrementalGenerator{feed: f, Inner: inner}
}

// Observer wraps inner in a CachingObserver over the feed's cache.
// refresh must mirror the clock- and quota-dependent fields inner sets
// (see CachingObserver.Refresh).
func (f *Feed) Observer(inner core.Observer, refresh func(*core.Candidate, *core.Stats)) CachingObserver {
	return CachingObserver{Inner: inner, Cache: f.Cache, Refresh: refresh}
}

// beginCycle starts an observation cycle: a full enumeration at cold
// start and every ReconcileEvery-th cycle, the dirty set otherwise.
func (f *Feed) beginCycle(full core.Connector) []core.Table {
	f.mu.Lock()
	f.cycle++
	coldStart := len(f.retained) == 0 && f.cycle == 1
	doFull := coldStart ||
		(f.ReconcileEvery > 0 && f.cycle%int64(f.ReconcileEvery) == 0)
	f.full = doFull
	f.mu.Unlock()

	var ts []core.Table
	if doFull {
		ts = full.Tables()
		// The full scan observes everything: register refs, reset
		// pending accumulation, consume outstanding dirty flags, and
		// forget tables the authoritative enumeration no longer lists —
		// in the tracker and in the cache.
		f.Tracker.NoteFullScan(ts)
		keep := make(map[string]struct{}, len(ts))
		for _, t := range ts {
			keep[t.FullName()] = struct{}{}
		}
		f.Cache.RetainOnly(keep)
	} else {
		ts = f.Tracker.TakeDirty()
	}
	f.mu.Lock()
	f.scanned = ts
	f.mu.Unlock()
	mode := "dirty"
	if doFull {
		mode = "full"
	}
	mScans.With(mode).Inc()
	mScannedTables.Set(float64(len(ts)))
	return ts
}

// ScanInfo describes the feed's most recent observation cycle.
type ScanInfo struct {
	// Cycle is the 1-based cycle counter.
	Cycle int64
	// Full reports whether the cycle was a full enumeration.
	Full bool
	// Scanned is how many tables were served to the generator.
	Scanned int
	// Pool is the candidate-pool size the generator emitted.
	Pool int
}

// LastScan returns a snapshot of the most recent cycle.
func (f *Feed) LastScan() ScanInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return ScanInfo{Cycle: f.cycle, Full: f.full, Scanned: len(f.scanned), Pool: f.lastPool}
}

// ScannedNames returns the full names of the tables served in the most
// recent cycle, sorted (for logging and the runnable example).
func (f *Feed) ScannedNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.scanned))
	for i, t := range f.scanned {
		out[i] = t.FullName()
	}
	sort.Strings(out)
	return out
}

// IncrementalConnector serves the dirty set instead of the whole lake.
// Quota and clock queries pass through to the full connector.
type IncrementalConnector struct {
	feed *Feed
	// Full is the wrapped whole-lake connector, consulted for full
	// enumerations (cold start, reconciliation) and passthrough queries.
	Full core.Connector
}

// Tables implements core.Connector: the dirty tables mid-stream, the
// full enumeration at cold start and on reconcile cycles.
func (c *IncrementalConnector) Tables() []core.Table {
	return c.feed.beginCycle(c.Full)
}

// QuotaUtilization implements core.Connector.
func (c *IncrementalConnector) QuotaUtilization(db string) float64 {
	return c.Full.QuotaUtilization(db)
}

// Now implements core.Connector.
func (c *IncrementalConnector) Now() time.Duration { return c.Full.Now() }

// IncrementalGenerator regenerates candidates only for the tables the
// connector served this cycle, re-emitting every other table's retained
// candidates unchanged. With a state-deterministic inner generator this
// keeps the emitted pool set-equal to a full scan's (see the package
// doc for the exact parity conditions).
type IncrementalGenerator struct {
	feed *Feed
	// Inner is the wrapped whole-lake generator.
	Inner core.Generator
}

// Name implements core.Generator.
func (g *IncrementalGenerator) Name() string { return "incremental(" + g.Inner.Name() + ")" }

// Candidates implements core.Generator. tables must be the list the
// paired IncrementalConnector returned this cycle.
func (g *IncrementalGenerator) Candidates(tables []core.Table) []*core.Candidate {
	fresh := g.Inner.Candidates(tables)
	f := g.feed
	f.mu.Lock()
	defer f.mu.Unlock()

	if f.full {
		// Full rebuild: the retained pool becomes exactly this scan's
		// output; entries of dropped tables vanish with the old map.
		f.retained = make(map[string][]*core.Candidate, len(tables))
		for _, c := range fresh {
			name := c.Table.FullName()
			f.retained[name] = append(f.retained[name], c)
		}
		f.lastPool = len(fresh)
		mPoolSize.Set(float64(f.lastPool))
		mRetainedTables.Set(float64(len(f.retained)))
		return fresh
	}

	// Replace the regenerated tables' entries (a table whose state no
	// longer yields candidates drops out), keep the rest.
	for _, t := range tables {
		delete(f.retained, t.FullName())
	}
	for _, c := range fresh {
		name := c.Table.FullName()
		f.retained[name] = append(f.retained[name], c)
	}
	out := make([]*core.Candidate, 0, len(fresh))
	for _, cs := range f.retained {
		out = append(out, cs...)
	}
	// Deterministic pool order; ranking is order-independent (score
	// plus ID tie-break), so this only stabilizes logs and tests.
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	f.lastPool = len(out)
	mPoolSize.Set(float64(f.lastPool))
	mRetainedTables.Set(float64(len(f.retained)))
	return out
}

// RetainedCount returns how many candidates the feed currently retains.
func (f *Feed) RetainedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, cs := range f.retained {
		n += len(cs)
	}
	return n
}

// RetainedTables returns the sorted full names of the tables whose
// candidates the feed currently retains — the invariant surface scenario
// harnesses audit (a retained candidate must never reference a table
// that left the lake).
func (f *Feed) RetainedTables() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.retained))
	for name := range f.retained {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
