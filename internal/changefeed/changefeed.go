// Package changefeed is AutoComp's incremental observation plane: a
// commit-event bus that table writers publish to, per-table dirty-set
// tracking with declarative trigger policies, a stats cache keyed by
// table version, and connector/generator/observer wrappers that feed
// only changed tables into the existing filter→orient→decide→act
// pipeline — the pipeline itself runs unmodified.
//
// The full-scan OODA loop re-enumerates and re-observes the entire
// fleet every cycle, O(tables) per cycle regardless of activity. The
// paper's LinkedIn deployment avoids this by reacting to table activity
// instead of polling everything (§5's event-driven deployment mode);
// transformation-embedded designs fold reorganization into the write
// path the same way (Mycelium, arXiv 2506.08923), and the LSM
// compaction design-space analysis (arXiv 2202.04522) names trigger
// granularity as a first-class design axis. This package makes that
// axis explicit: a TriggerPolicy decides how much write activity
// promotes a table into the dirty set, and only dirty tables are
// re-observed.
//
// Decision equivalence: with every-commit triggering
// (TriggerPolicy.EveryCommits = 1) and a state-deterministic generator
// (one whose output for a table depends only on the table's current
// state, like the table-scope and maintenance generators), the
// incremental pipeline produces the same post-filter candidate pool —
// and therefore the same ranked, selected plan — as a full scan,
// byte-identical per seed. Clean tables' candidates are re-emitted from
// the retained pool with stats served from the version-keyed cache;
// dirty tables are regenerated and re-observed. Lazier trigger policies
// (EveryCommits > 1, byte thresholds) keep written-but-untriggered
// tables out of the dirty set — their candidates are not regenerated
// and the plan churns less — but the version-keyed cache still
// re-observes them on their next pool appearance (correctness and
// missed-event self-healing are never traded away); the observe-call
// savings come from the tables with no activity at all, the dominant
// population in a mostly-cold fleet. Time-windowed generators (e.g.
// snapshot scope) need every-cycle regeneration and are outside the
// parity guarantee.
package changefeed

import (
	"sort"
	"sync"
	"time"

	"autocomp/internal/core"
)

// Event is one table-commit notification published on the Bus. Writers
// (lst transactions, fleet writer commits, daily organic growth) publish
// one event per commit batch; maintenance executors publish events with
// Maintenance set so consumers can distinguish work the system did from
// work users caused.
type Event struct {
	// Table is the full table name (database.table).
	Table string
	// Ref is the committed table itself, when the publisher has it. The
	// tracker uses it to hand dirty tables straight to the candidate
	// generator without a catalog lookup.
	Ref core.Table
	// Version is the table's metadata version after the commit.
	Version int64
	// Commits is how many commits the event covers (batched publishers
	// fold a day of commits into one event).
	Commits int64
	// Bytes is the data volume the commit(s) added.
	Bytes int64
	// At is the virtual publish time.
	At time.Duration
	// Maintenance marks state changes made by maintenance actions
	// (compaction, expiry, checkpoint, manifest rewrite) rather than
	// user writers. Maintenance events bypass trigger accumulation: the
	// table is re-observed once so its refreshed state replaces the
	// stale candidate, regardless of how lazy the trigger policy is.
	Maintenance bool
	// Dropped marks the table's removal from the lake: subscribers
	// forget it (dirty state, cached stats, retained candidates)
	// instead of accumulating. Reconciling full scans also prune
	// tables absent from the enumeration, for publishers that cannot
	// signal drops.
	Dropped bool
}

// Bus is a synchronous publish/subscribe channel for commit events.
// Publish delivers to every subscriber in subscription order, on the
// publisher's goroutine. Subscribers must not block and must take their
// own locks; publishers must not hold locks a subscriber needs.
type Bus struct {
	mu        sync.Mutex
	subs      []func(Event)
	published int64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers fn for every subsequent Publish.
func (b *Bus) Subscribe(fn func(Event)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, fn)
}

// Publish delivers e to every subscriber.
func (b *Bus) Publish(e Event) {
	b.mu.Lock()
	subs := b.subs
	b.published++
	b.mu.Unlock()
	mEvents.Inc()
	for _, fn := range subs {
		fn(e)
	}
}

// Published returns how many events have been published.
func (b *Bus) Published() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published
}

// TriggerPolicy decides how much accumulated write activity promotes a
// table into the dirty set — the trigger-granularity axis of the LSM
// compaction design space (arXiv 2202.04522). The zero value triggers
// on every commit.
type TriggerPolicy struct {
	// EveryCommits fires the trigger once this many commits accumulate
	// since the table was last taken for observation (min 1: every
	// commit). 1 preserves full-scan decision parity.
	EveryCommits int64
	// BytesWritten, when positive, also fires the trigger once this many
	// bytes accumulate — so a single huge commit on a lazy table does
	// not wait out the commit counter.
	BytesWritten int64
}

// PolicyFunc supplies the trigger policy for a table. Implementations
// must be cheap; the tracker consults it on every event.
type PolicyFunc func(t core.Table) TriggerPolicy

// StaticTriggers applies one trigger policy to every table.
func StaticTriggers(p TriggerPolicy) PolicyFunc {
	return func(core.Table) TriggerPolicy { return p }
}

// tableState is the tracker's per-table record.
type tableState struct {
	ref            core.Table
	pendingCommits int64
	pendingBytes   int64
	dirty          bool
}

// Tracker maintains the per-table dirty set: which tables have seen
// enough activity (per their trigger policy) since their last
// observation to need re-observing. It is a Bus subscriber; all methods
// are safe for concurrent use.
type Tracker struct {
	mu     sync.Mutex
	policy PolicyFunc
	tables map[string]*tableState
	// dropped tombstones tables removed from the lake: a commit event
	// racing the drop (its publisher read the hook before detachment)
	// must not resurrect tracker state for a deleted table. Tombstones
	// are cleared by the next authoritative full scan.
	dropped map[string]struct{}

	events    int64
	triggered int64
	// dirtyNow mirrors the current dirty-set size incrementally so the
	// telemetry gauge never needs an O(tables) recount on the event path.
	dirtyNow int64
}

// markDirtyLocked promotes s into the dirty set (no-op when already
// dirty), maintaining the promotion counter and the telemetry gauge.
func (tr *Tracker) markDirtyLocked(s *tableState) {
	if s.dirty {
		return
	}
	s.dirty = true
	tr.triggered++
	tr.dirtyNow++
	mTriggered.Inc()
	mDirtyTables.Set(float64(tr.dirtyNow))
}

// NewTracker returns a tracker using policy (nil = every commit).
func NewTracker(policy PolicyFunc) *Tracker {
	return &Tracker{
		policy:  policy,
		tables:  make(map[string]*tableState),
		dropped: make(map[string]struct{}),
	}
}

// HandleEvent folds one commit event into the dirty-set state: pending
// activity accumulates until the table's trigger policy fires, at which
// point the table turns dirty and the accumulators reset. Maintenance
// events dirty the table immediately (its state changed under the
// system's own hands; the retained candidate must refresh).
func (tr *Tracker) HandleEvent(e Event) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.events++
	if e.Dropped {
		if s, ok := tr.tables[e.Table]; ok && s.dirty {
			tr.dirtyNow--
			mDirtyTables.Set(float64(tr.dirtyNow))
		}
		delete(tr.tables, e.Table)
		tr.dropped[e.Table] = struct{}{}
		return
	}
	if _, gone := tr.dropped[e.Table]; gone {
		// A commit that raced the drop: the table is deleted; ignore.
		return
	}
	s := tr.ensureLocked(e.Table, e.Ref)
	if e.Maintenance {
		s.pendingCommits, s.pendingBytes = 0, 0
		tr.markDirtyLocked(s)
		return
	}
	commits := e.Commits
	if commits < 1 {
		commits = 1
	}
	s.pendingCommits += commits
	s.pendingBytes += e.Bytes
	pol := TriggerPolicy{}
	if tr.policy != nil && s.ref != nil {
		pol = tr.policy(s.ref)
	}
	every := pol.EveryCommits
	if every < 1 {
		every = 1
	}
	fire := s.pendingCommits >= every ||
		(pol.BytesWritten > 0 && s.pendingBytes >= pol.BytesWritten)
	if fire {
		s.pendingCommits, s.pendingBytes = 0, 0
		tr.markDirtyLocked(s)
	}
}

func (tr *Tracker) ensureLocked(name string, ref core.Table) *tableState {
	s, ok := tr.tables[name]
	if !ok {
		s = &tableState{}
		tr.tables[name] = s
	}
	if ref != nil {
		s.ref = ref
	}
	return s
}

// TakeDirty returns the dirty tables sorted by name and clears their
// dirty flags — the observation cycle consumes the dirt it is about to
// observe. Tables whose reference is unknown (events without a Ref)
// stay dirty until a reconciling full scan supplies one. A cycle that
// fails after taking (an observer error aborting Decide) does not lose
// information: candidate regeneration precedes observation, so the
// taken tables' fresh candidates are already retained and their next
// observation is a cache miss.
func (tr *Tracker) TakeDirty() []core.Table {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	names := make([]string, 0, len(tr.tables))
	for name, s := range tr.tables {
		if s.dirty && s.ref != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]core.Table, len(names))
	for i, name := range names {
		s := tr.tables[name]
		s.dirty = false
		tr.dirtyNow--
		out[i] = s.ref
	}
	mDirtyTables.Set(float64(tr.dirtyNow))
	return out
}

// NoteFullScan absorbs a full enumeration — cold start or a
// reconciling scan. The enumeration is authoritative: every listed
// table is registered with its dirty flag and pending accumulation
// cleared (the scan observes it now), and tables absent from the list
// are forgotten (dropped from the lake without a Dropped event).
func (tr *Tracker) NoteFullScan(ts []core.Table) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	// The enumeration supersedes drop tombstones: a reused name is a
	// legitimately new table from here on.
	tr.dropped = make(map[string]struct{})
	listed := make(map[string]struct{}, len(ts))
	for _, t := range ts {
		listed[t.FullName()] = struct{}{}
		s := tr.ensureLocked(t.FullName(), t)
		s.pendingCommits, s.pendingBytes = 0, 0
		s.dirty = false
	}
	for name := range tr.tables {
		if _, ok := listed[name]; !ok {
			delete(tr.tables, name)
		}
	}
	// Every survivor was just cleared and every absentee deleted: the
	// dirty set is empty by construction.
	tr.dirtyNow = 0
	mDirtyTables.Set(0)
}

// Redirty marks a known table dirty regardless of its trigger policy —
// the conflict-retry path: a job that exhausted its attempts leaves the
// table unmaintained, so it must be reconsidered next cycle even if no
// further writer activity crosses the trigger.
func (tr *Tracker) Redirty(name string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if s, ok := tr.tables[name]; ok {
		tr.markDirtyLocked(s)
	}
}

// DirtyCount returns how many tables are currently dirty.
func (tr *Tracker) DirtyCount() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, s := range tr.tables {
		if s.dirty {
			n++
		}
	}
	return n
}

// KnownCount returns how many tables the tracker has seen.
func (tr *Tracker) KnownCount() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.tables)
}

// Events returns how many events the tracker has handled; Triggered
// returns how many dirty-set promotions those events caused.
func (tr *Tracker) Events() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.events
}

// Triggered returns how many times a table was promoted into the dirty
// set (by trigger fire, maintenance event, or Redirty).
func (tr *Tracker) Triggered() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.triggered
}
