// Package changefeed is AutoComp's incremental observation plane: a
// commit-event bus that table writers publish to, per-table dirty-set
// tracking with declarative trigger policies, a stats cache keyed by
// table version, and connector/generator/observer wrappers that feed
// only changed tables into the existing filter→orient→decide→act
// pipeline — the pipeline itself runs unmodified.
//
// The full-scan OODA loop re-enumerates and re-observes the entire
// fleet every cycle, O(tables) per cycle regardless of activity. The
// paper's LinkedIn deployment avoids this by reacting to table activity
// instead of polling everything (§5's event-driven deployment mode);
// transformation-embedded designs fold reorganization into the write
// path the same way (Mycelium, arXiv 2506.08923), and the LSM
// compaction design-space analysis (arXiv 2202.04522) names trigger
// granularity as a first-class design axis. This package makes that
// axis explicit: a TriggerPolicy decides how much write activity
// promotes a table into the dirty set, and only dirty tables are
// re-observed.
//
// Decision equivalence: with every-commit triggering
// (TriggerPolicy.EveryCommits = 1) and a state-deterministic generator
// (one whose output for a table depends only on the table's current
// state, like the table-scope and maintenance generators), the
// incremental pipeline produces the same post-filter candidate pool —
// and therefore the same ranked, selected plan — as a full scan,
// byte-identical per seed. Clean tables' candidates are re-emitted from
// the retained pool with stats served from the version-keyed cache;
// dirty tables are regenerated and re-observed. Lazier trigger policies
// (EveryCommits > 1, byte thresholds) keep written-but-untriggered
// tables out of the dirty set — their candidates are not regenerated
// and the plan churns less — but the version-keyed cache still
// re-observes them on their next pool appearance (correctness and
// missed-event self-healing are never traded away); the observe-call
// savings come from the tables with no activity at all, the dominant
// population in a mostly-cold fleet. Time-windowed generators (e.g.
// snapshot scope) need every-cycle regeneration and are outside the
// parity guarantee.
//
// Lock striping: the tracker and the stats cache partition their state
// across S stripes keyed by core.ShardOf on the table name — the same
// hash the sharded decide plane (internal/decideshard) partitions
// tables with, so a decide shard's observations land on stripes no
// other shard is writing and the decide fan-out never serializes on a
// global mutex. Striping is invisible at the API: every method keeps
// its exact single-lock semantics (TakeDirty still returns the dirty
// set sorted by name, counters still aggregate), and the default
// constructors build one stripe.
package changefeed

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autocomp/internal/core"
)

// Event is one table-commit notification published on the Bus. Writers
// (lst transactions, fleet writer commits, daily organic growth) publish
// one event per commit batch; maintenance executors publish events with
// Maintenance set so consumers can distinguish work the system did from
// work users caused.
type Event struct {
	// Table is the full table name (database.table).
	Table string
	// Ref is the committed table itself, when the publisher has it. The
	// tracker uses it to hand dirty tables straight to the candidate
	// generator without a catalog lookup.
	Ref core.Table
	// Version is the table's metadata version after the commit.
	Version int64
	// Commits is how many commits the event covers (batched publishers
	// fold a day of commits into one event).
	Commits int64
	// Bytes is the data volume the commit(s) added.
	Bytes int64
	// At is the virtual publish time.
	At time.Duration
	// Maintenance marks state changes made by maintenance actions
	// (compaction, expiry, checkpoint, manifest rewrite) rather than
	// user writers. Maintenance events bypass trigger accumulation: the
	// table is re-observed once so its refreshed state replaces the
	// stale candidate, regardless of how lazy the trigger policy is.
	Maintenance bool
	// Dropped marks the table's removal from the lake: subscribers
	// forget it (dirty state, cached stats, retained candidates)
	// instead of accumulating. Reconciling full scans also prune
	// tables absent from the enumeration, for publishers that cannot
	// signal drops.
	Dropped bool
}

// Bus is a synchronous publish/subscribe channel for commit events.
// Publish delivers to every subscriber in subscription order, on the
// publisher's goroutine. Subscribers must not block and must take their
// own locks; publishers must not hold locks a subscriber needs.
type Bus struct {
	mu        sync.Mutex
	subs      []func(Event)
	published int64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers fn for every subsequent Publish.
func (b *Bus) Subscribe(fn func(Event)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, fn)
}

// Publish delivers e to every subscriber.
func (b *Bus) Publish(e Event) {
	b.mu.Lock()
	subs := b.subs
	b.published++
	b.mu.Unlock()
	mEvents.Inc()
	for _, fn := range subs {
		fn(e)
	}
}

// Published returns how many events have been published.
func (b *Bus) Published() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published
}

// TriggerPolicy decides how much accumulated write activity promotes a
// table into the dirty set — the trigger-granularity axis of the LSM
// compaction design space (arXiv 2202.04522). The zero value triggers
// on every commit.
type TriggerPolicy struct {
	// EveryCommits fires the trigger once this many commits accumulate
	// since the table was last taken for observation (min 1: every
	// commit). 1 preserves full-scan decision parity.
	EveryCommits int64
	// BytesWritten, when positive, also fires the trigger once this many
	// bytes accumulate — so a single huge commit on a lazy table does
	// not wait out the commit counter.
	BytesWritten int64
}

// PolicyFunc supplies the trigger policy for a table. Implementations
// must be cheap; the tracker consults it on every event.
type PolicyFunc func(t core.Table) TriggerPolicy

// StaticTriggers applies one trigger policy to every table.
func StaticTriggers(p TriggerPolicy) PolicyFunc {
	return func(core.Table) TriggerPolicy { return p }
}

// tableState is the tracker's per-table record.
type tableState struct {
	ref            core.Table
	pendingCommits int64
	pendingBytes   int64
	dirty          bool
}

// trackerStripe is one lock-striped partition of the tracker's state.
// A table's stripe is core.ShardOf(name, stripes), so concurrent event
// handling and decide-shard fan-out contend only within a stripe.
type trackerStripe struct {
	mu     sync.Mutex
	tables map[string]*tableState
	// dropped tombstones tables removed from the lake: a commit event
	// racing the drop (its publisher read the hook before detachment)
	// must not resurrect tracker state for a deleted table. Tombstones
	// are cleared by the next authoritative full scan.
	dropped map[string]struct{}
}

// Tracker maintains the per-table dirty set: which tables have seen
// enough activity (per their trigger policy) since their last
// observation to need re-observing. It is a Bus subscriber; all methods
// are safe for concurrent use. State is lock-striped by table name
// (see the package doc); counters are tracker-level atomics so striping
// never changes what the accessors report.
type Tracker struct {
	policy  PolicyFunc
	stripes []*trackerStripe

	events    atomic.Int64
	triggered atomic.Int64
	// dirtyNow mirrors the current dirty-set size incrementally so the
	// telemetry gauge never needs an O(tables) recount on the event path.
	dirtyNow atomic.Int64
}

// NewTracker returns a single-stripe tracker using policy (nil = every
// commit).
func NewTracker(policy PolicyFunc) *Tracker {
	return NewTrackerSharded(policy, 1)
}

// NewTrackerSharded returns a tracker whose state is partitioned across
// stripes lock stripes (min 1), aligned with the decide-shard mapping.
func NewTrackerSharded(policy PolicyFunc, stripes int) *Tracker {
	if stripes < 1 {
		stripes = 1
	}
	tr := &Tracker{policy: policy, stripes: make([]*trackerStripe, stripes)}
	for i := range tr.stripes {
		tr.stripes[i] = &trackerStripe{
			tables:  make(map[string]*tableState),
			dropped: make(map[string]struct{}),
		}
	}
	return tr
}

// Stripes returns the tracker's lock-stripe count.
func (tr *Tracker) Stripes() int { return len(tr.stripes) }

func (tr *Tracker) stripe(name string) *trackerStripe {
	return tr.stripes[core.ShardOf(name, len(tr.stripes))]
}

// markDirtyLocked promotes s into the dirty set (no-op when already
// dirty), maintaining the promotion counter and the telemetry gauge.
// The caller holds the stripe lock owning s.
func (tr *Tracker) markDirtyLocked(s *tableState) {
	if s.dirty {
		return
	}
	s.dirty = true
	tr.triggered.Add(1)
	mTriggered.Inc()
	mDirtyTables.Set(float64(tr.dirtyNow.Add(1)))
}

// HandleEvent folds one commit event into the dirty-set state: pending
// activity accumulates until the table's trigger policy fires, at which
// point the table turns dirty and the accumulators reset. Maintenance
// events dirty the table immediately (its state changed under the
// system's own hands; the retained candidate must refresh).
func (tr *Tracker) HandleEvent(e Event) {
	tr.events.Add(1)
	st := tr.stripe(e.Table)
	st.mu.Lock()
	defer st.mu.Unlock()
	if e.Dropped {
		if s, ok := st.tables[e.Table]; ok && s.dirty {
			mDirtyTables.Set(float64(tr.dirtyNow.Add(-1)))
		}
		delete(st.tables, e.Table)
		st.dropped[e.Table] = struct{}{}
		return
	}
	if _, gone := st.dropped[e.Table]; gone {
		// A commit that raced the drop: the table is deleted; ignore.
		return
	}
	s := st.ensureLocked(e.Table, e.Ref)
	if e.Maintenance {
		s.pendingCommits, s.pendingBytes = 0, 0
		tr.markDirtyLocked(s)
		return
	}
	commits := e.Commits
	if commits < 1 {
		commits = 1
	}
	s.pendingCommits += commits
	s.pendingBytes += e.Bytes
	pol := TriggerPolicy{}
	if tr.policy != nil && s.ref != nil {
		pol = tr.policy(s.ref)
	}
	every := pol.EveryCommits
	if every < 1 {
		every = 1
	}
	fire := s.pendingCommits >= every ||
		(pol.BytesWritten > 0 && s.pendingBytes >= pol.BytesWritten)
	if fire {
		s.pendingCommits, s.pendingBytes = 0, 0
		tr.markDirtyLocked(s)
	}
}

func (st *trackerStripe) ensureLocked(name string, ref core.Table) *tableState {
	s, ok := st.tables[name]
	if !ok {
		s = &tableState{}
		st.tables[name] = s
	}
	if ref != nil {
		s.ref = ref
	}
	return s
}

// TakeDirty returns the dirty tables sorted by name and clears their
// dirty flags — the observation cycle consumes the dirt it is about to
// observe. Tables whose reference is unknown (events without a Ref)
// stay dirty until a reconciling full scan supplies one. A cycle that
// fails after taking (an observer error aborting Decide) does not lose
// information: candidate regeneration precedes observation, so the
// taken tables' fresh candidates are already retained and their next
// observation is a cache miss.
func (tr *Tracker) TakeDirty() []core.Table {
	type taken struct {
		name string
		ref  core.Table
	}
	var all []taken
	for _, st := range tr.stripes {
		st.mu.Lock()
		for name, s := range st.tables {
			if s.dirty && s.ref != nil {
				s.dirty = false
				tr.dirtyNow.Add(-1)
				all = append(all, taken{name: name, ref: s.ref})
			}
		}
		st.mu.Unlock()
	}
	mDirtyTables.Set(float64(tr.dirtyNow.Load()))
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	out := make([]core.Table, len(all))
	for i := range all {
		out[i] = all[i].ref
	}
	return out
}

// NoteFullScan absorbs a full enumeration — cold start or a
// reconciling scan. The enumeration is authoritative: every listed
// table is registered with its dirty flag and pending accumulation
// cleared (the scan observes it now), and tables absent from the list
// are forgotten (dropped from the lake without a Dropped event).
func (tr *Tracker) NoteFullScan(ts []core.Table) {
	perStripe := make([][]core.Table, len(tr.stripes))
	for _, t := range ts {
		s := core.ShardOf(t.FullName(), len(tr.stripes))
		perStripe[s] = append(perStripe[s], t)
	}
	for i, st := range tr.stripes {
		st.mu.Lock()
		// The enumeration supersedes drop tombstones: a reused name is a
		// legitimately new table from here on.
		st.dropped = make(map[string]struct{})
		listed := make(map[string]struct{}, len(perStripe[i]))
		for _, t := range perStripe[i] {
			listed[t.FullName()] = struct{}{}
			s := st.ensureLocked(t.FullName(), t)
			s.pendingCommits, s.pendingBytes = 0, 0
			s.dirty = false
		}
		for name := range st.tables {
			if _, ok := listed[name]; !ok {
				delete(st.tables, name)
			}
		}
		st.mu.Unlock()
	}
	// Every survivor was just cleared and every absentee deleted: the
	// dirty set is empty by construction.
	tr.dirtyNow.Store(0)
	mDirtyTables.Set(0)
}

// Redirty marks a known table dirty regardless of its trigger policy —
// the conflict-retry path: a job that exhausted its attempts leaves the
// table unmaintained, so it must be reconsidered next cycle even if no
// further writer activity crosses the trigger.
func (tr *Tracker) Redirty(name string) {
	st := tr.stripe(name)
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok := st.tables[name]; ok {
		tr.markDirtyLocked(s)
	}
}

// DirtyCount returns how many tables are currently dirty.
func (tr *Tracker) DirtyCount() int {
	n := 0
	for _, st := range tr.stripes {
		st.mu.Lock()
		for _, s := range st.tables {
			if s.dirty {
				n++
			}
		}
		st.mu.Unlock()
	}
	return n
}

// KnownCount returns how many tables the tracker has seen.
func (tr *Tracker) KnownCount() int {
	n := 0
	for _, st := range tr.stripes {
		st.mu.Lock()
		n += len(st.tables)
		st.mu.Unlock()
	}
	return n
}

// Events returns how many events the tracker has handled; Triggered
// returns how many dirty-set promotions those events caused.
func (tr *Tracker) Events() int64 { return tr.events.Load() }

// Triggered returns how many times a table was promoted into the dirty
// set (by trigger fire, maintenance event, or Redirty).
func (tr *Tracker) Triggered() int64 { return tr.triggered.Load() }
