package changefeed_test

import (
	"fmt"
	"testing"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/lst"
	"autocomp/internal/maintenance"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// stubTable is a minimal versioned core.Table for cache and feed tests.
type stubTable struct {
	db, name   string
	version    int64
	smallFiles int
}

func (t *stubTable) Database() string                       { return t.db }
func (t *stubTable) Name() string                           { return t.name }
func (t *stubTable) FullName() string                       { return t.db + "." + t.name }
func (t *stubTable) Spec() lst.PartitionSpec                { return lst.PartitionSpec{} }
func (t *stubTable) Mode() lst.WriteMode                    { return lst.CopyOnWrite }
func (t *stubTable) Prop(string) string                     { return "" }
func (t *stubTable) Created() time.Duration                 { return 0 }
func (t *stubTable) LastWrite() time.Duration               { return 0 }
func (t *stubTable) WriteCount() int64                      { return t.version }
func (t *stubTable) FileCount() int                         { return t.smallFiles }
func (t *stubTable) TotalBytes() int64                      { return int64(t.smallFiles) * storage.MB }
func (t *stubTable) Partitions() []string                   { return nil }
func (t *stubTable) LiveFiles() []lst.DataFile              { return nil }
func (t *stubTable) FilesInPartition(string) []lst.DataFile { return nil }
func (t *stubTable) Version() int64                         { return t.version }

// stubObserver counts expensive observations.
type stubObserver struct{ calls int }

func (o *stubObserver) Observe(c *core.Candidate) (core.Stats, error) {
	o.calls++
	st := c.Table.(*stubTable)
	return core.Stats{SmallFiles: st.smallFiles, FileCount: st.smallFiles}, nil
}

func event(t *stubTable, commits, bytes int64, maint bool) changefeed.Event {
	return changefeed.Event{
		Table: t.FullName(), Ref: t, Version: t.version,
		Commits: commits, Bytes: bytes, Maintenance: maint,
	}
}

func TestIncrementalTrackerTriggers(t *testing.T) {
	tbl := &stubTable{db: "d", name: "a"}
	tr := changefeed.NewTracker(changefeed.StaticTriggers(
		changefeed.TriggerPolicy{EveryCommits: 3, BytesWritten: 100}))

	// Commits accumulate until the count trigger fires.
	tr.HandleEvent(event(tbl, 1, 10, false))
	tr.HandleEvent(event(tbl, 1, 10, false))
	if got := tr.DirtyCount(); got != 0 {
		t.Fatalf("dirty after 2/3 commits = %d, want 0", got)
	}
	tr.HandleEvent(event(tbl, 1, 10, false))
	if got := tr.DirtyCount(); got != 1 {
		t.Fatalf("dirty after 3/3 commits = %d, want 1", got)
	}

	// TakeDirty consumes the dirt and resets accumulation.
	took := tr.TakeDirty()
	if len(took) != 1 || took[0].FullName() != "d.a" {
		t.Fatalf("TakeDirty = %v", took)
	}
	if tr.DirtyCount() != 0 {
		t.Fatal("dirty not consumed")
	}

	// The byte threshold fires ahead of the commit counter.
	tr.HandleEvent(event(tbl, 1, 150, false))
	if got := tr.DirtyCount(); got != 1 {
		t.Fatalf("dirty after byte burst = %d, want 1", got)
	}
	tr.TakeDirty()

	// Maintenance events dirty immediately, bypassing the trigger.
	tr.HandleEvent(event(tbl, 0, 0, true))
	if got := tr.DirtyCount(); got != 1 {
		t.Fatalf("dirty after maintenance event = %d, want 1", got)
	}
	tr.TakeDirty()

	// Redirty marks a known table without any event.
	tr.Redirty("d.a")
	if got := tr.DirtyCount(); got != 1 {
		t.Fatalf("dirty after Redirty = %d, want 1", got)
	}
}

func TestIncrementalStatsCacheAccounting(t *testing.T) {
	sc := changefeed.NewStatsCache()
	s := core.Stats{SmallFiles: 7}

	if _, hit := sc.Get("d.a", "d.a", 1); hit {
		t.Fatal("hit on empty cache")
	}
	sc.Put("d.a", "d.a", 1, s)
	got, hit := sc.Get("d.a", "d.a", 1)
	if !hit || got.SmallFiles != 7 {
		t.Fatalf("get = %+v hit=%v", got, hit)
	}
	// A version advance misses even without an invalidation.
	if _, hit := sc.Get("d.a", "d.a", 2); hit {
		t.Fatal("hit at advanced version")
	}
	// Invalidation drops all of the table's entries.
	sc.Put("d.a", "d.a#snapshot-expiry", 1, s)
	sc.InvalidateTable("d.a")
	if _, hit := sc.Get("d.a", "d.a", 1); hit {
		t.Fatal("hit after invalidation")
	}

	cc := sc.Counters()
	if cc.Hits != 1 || cc.Misses != 3 || cc.Invalidations != 1 || cc.Entries != 0 {
		t.Fatalf("counters = %+v", cc)
	}
}

// feedPipeline builds a tiny incremental service over stub tables.
func feedPipeline(tables []*stubTable, reconcileEvery int) (*core.Service, *changefeed.Feed, *stubObserver, error) {
	list := make([]core.Table, len(tables))
	for i, t := range tables {
		list[i] = t
	}
	obs := &stubObserver{}
	feed := changefeed.NewFeed(nil, reconcileEvery)
	cfg := core.Config{
		Connector: feed.Connector(core.StaticConnector{TableList: list}),
		Generator: feed.Generator(core.TableScopeGenerator{}),
		Observer:  feed.Observer(obs, nil),
		Traits:    []core.Trait{core.FileCountReduction{}},
		Ranker:    core.ThresholdPolicy{Trait: core.FileCountReduction{}, Threshold: 0},
	}
	svc, err := core.NewService(cfg)
	return svc, feed, obs, err
}

func TestIncrementalCacheInvalidationOnCommit(t *testing.T) {
	tables := []*stubTable{
		{db: "d", name: "a", smallFiles: 10},
		{db: "d", name: "b", smallFiles: 20},
		{db: "d", name: "c", smallFiles: 30},
	}
	svc, feed, obs, err := feedPipeline(tables, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Cold start observes the whole lake.
	if _, err := svc.Decide(); err != nil {
		t.Fatal(err)
	}
	if obs.calls != 3 {
		t.Fatalf("cold start observes = %d, want 3", obs.calls)
	}

	// A quiet cycle observes nothing: every table answers from cache.
	d, err := svc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if obs.calls != 3 {
		t.Fatalf("quiet cycle observes = %d, want 3 (all cached)", obs.calls)
	}
	if d.Generated != 3 {
		t.Fatalf("retained pool = %d, want 3", d.Generated)
	}

	// One commit invalidates exactly that table.
	tables[1].version++
	tables[1].smallFiles = 25
	feed.Bus.Publish(event(tables[1], 1, storage.MB, false))
	d, err = svc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if obs.calls != 4 {
		t.Fatalf("post-commit observes = %d, want 4 (one re-observation)", obs.calls)
	}
	for _, c := range d.Ranked {
		if c.Table.FullName() == "d.b" && c.Stats.SmallFiles != 25 {
			t.Fatalf("d.b stats stale: %d small files, want 25", c.Stats.SmallFiles)
		}
	}

	cc := feed.Cache.Counters()
	if cc.Hits != 5 { // 3 quiet + 2 clean tables on the commit cycle
		t.Fatalf("cache hits = %d, want 5", cc.Hits)
	}
}

// mutableConnector serves a table list the test can grow mid-run.
type mutableConnector struct{ tables *[]core.Table }

func (c mutableConnector) Tables() []core.Table            { return *c.tables }
func (c mutableConnector) QuotaUtilization(string) float64 { return 0 }
func (c mutableConnector) Now() time.Duration              { return 0 }

func TestIncrementalReconcilerCatchesDroppedEvent(t *testing.T) {
	a := &stubTable{db: "d", name: "a", smallFiles: 10}
	b := &stubTable{db: "d", name: "b", smallFiles: 20}
	list := []core.Table{a, b}
	obs := &stubObserver{}
	feed := changefeed.NewFeed(nil, 3) // cycles 3, 6, ... reconcile
	svc, err := core.NewService(core.Config{
		Connector: feed.Connector(mutableConnector{tables: &list}),
		Generator: feed.Generator(core.TableScopeGenerator{}),
		Observer:  feed.Observer(obs, nil),
		Traits:    []core.Trait{core.FileCountReduction{}},
		Ranker:    core.ThresholdPolicy{Trait: core.FileCountReduction{}, Threshold: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Decide(); err != nil { // cycle 1: cold start
		t.Fatal(err)
	}
	if obs.calls != 2 {
		t.Fatalf("cold start observes = %d, want 2", obs.calls)
	}

	// A silent version-advancing change (dropped commit event) is
	// self-healed by the version-keyed cache: the retained candidate's
	// lookup misses at the new version and re-observes immediately.
	a.version++
	a.smallFiles = 99
	d, err := svc.Decide() // cycle 2: dirty-only
	if err != nil {
		t.Fatal(err)
	}
	if obs.calls != 3 {
		t.Fatalf("cycle-2 observes = %d, want 3 (version-keyed self-heal)", obs.calls)
	}
	for _, c := range d.Ranked {
		if c.Table.FullName() == "d.a" && c.Stats.SmallFiles != 99 {
			t.Fatalf("version-keyed cache served stale stats: %d", c.Stats.SmallFiles)
		}
	}

	// An enumeration-level drop — a new table whose onboarding event was
	// lost — is invisible to the dirty set and the cache: only the
	// reconciling full scan can discover it.
	c := &stubTable{db: "d", name: "c", smallFiles: 30}
	list = append(list, c)
	if d.Generated != 2 {
		t.Fatalf("pool before discovery = %d, want 2", d.Generated)
	}

	d, err = svc.Decide() // cycle 3: reconcile
	if err != nil {
		t.Fatal(err)
	}
	scan := feed.LastScan()
	if !scan.Full {
		t.Fatalf("cycle 3 not a full scan: %+v", scan)
	}
	if d.Generated != 3 {
		t.Fatalf("reconciled pool = %d, want 3 (dropped table discovered)", d.Generated)
	}
	if obs.calls != 4 {
		t.Fatalf("reconcile observes = %d, want 4 (only the new table misses)", obs.calls)
	}
	found := false
	for _, cand := range d.Ranked {
		if cand.Table.FullName() == "d.c" {
			found = true
			if cand.Stats.SmallFiles != 30 {
				t.Fatalf("discovered table stats = %d, want 30", cand.Stats.SmallFiles)
			}
		}
	}
	if !found {
		t.Fatal("d.c missing from reconciled pool")
	}
}

func TestIncrementalLSTAndCatalogPublish(t *testing.T) {
	clock := sim.NewClock()
	rng := sim.NewRNG(7)
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng)
	cp := catalog.New(fs, clock)
	if _, err := cp.CreateDatabase("d", "tenant", 0); err != nil {
		t.Fatal(err)
	}
	tbl, err := cp.CreateTable("d", lst.TableConfig{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}

	bus := changefeed.NewBus()
	var got []changefeed.Event
	bus.Subscribe(func(e changefeed.Event) { got = append(got, e) })
	changefeed.AttachCatalog(bus, cp)

	// A commit publishes a writer event with the snapshot's bytes.
	if _, err := tbl.AppendFiles([]lst.FileSpec{{SizeBytes: 4 * storage.MB}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Maintenance || got[0].Table != "d.a" || got[0].Bytes != 4*storage.MB {
		t.Fatalf("commit event = %+v", got)
	}
	if got[0].Version != tbl.Version() {
		t.Fatalf("event version %d != table version %d", got[0].Version, tbl.Version())
	}

	// Tables created after attachment publish too.
	tbl2, err := cp.CreateTable("d", lst.TableConfig{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl2.AppendFiles([]lst.FileSpec{{SizeBytes: storage.MB}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Table != "d.b" {
		t.Fatalf("post-attach table did not publish: %+v", got)
	}

	// Maintenance operations publish maintenance events.
	for i := 0; i < 5; i++ {
		if _, err := tbl.AppendFiles([]lst.FileSpec{{SizeBytes: storage.MB}}); err != nil {
			t.Fatal(err)
		}
	}
	n := len(got)
	if _, err := tbl.ExpireSnapshots(1); err != nil {
		t.Fatal(err)
	}
	if len(got) != n+1 || !got[n].Maintenance {
		t.Fatalf("expiry event missing: %+v", got[len(got)-1])
	}
}

func TestIncrementalFleetParity(t *testing.T) {
	// Two identically seeded fleets, one full-scan and one incremental,
	// must select byte-identical plans every cycle and therefore evolve
	// in lockstep — the experiment's parity property at unit-test scale.
	cfg := fleet.DefaultConfig()
	cfg.InitialTables = 120
	cfg.DailyWriteProb = 0.1
	model := fleet.DefaultModel(512 * storage.MB)
	pol := maintenance.DefaultPolicy()
	sel := core.TopK{K: 15}

	fFull := fleet.New(cfg, sim.NewClock())
	fIncr := fleet.New(cfg, sim.NewClock())
	full, err := fFull.MaintenanceService(sel, model, pol)
	if err != nil {
		t.Fatal(err)
	}
	incr, feed, err := fIncr.IncrementalMaintenanceService(sel, model, pol, fleet.IncrOptions{})
	if err != nil {
		t.Fatal(err)
	}

	plan := func(d *core.Decision) string {
		out := ""
		for _, c := range d.Selected {
			out += c.ID() + ","
		}
		return out
	}
	for cycle := 1; cycle <= 5; cycle++ {
		fFull.AdvanceDay()
		fIncr.AdvanceDay()
		dFull, err := full.Decide()
		if err != nil {
			t.Fatal(err)
		}
		dIncr, err := incr.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if pf, pi := plan(dFull), plan(dIncr); pf != pi {
			t.Fatalf("cycle %d plans diverged:\nfull: %s\nincr: %s", cycle, pf, pi)
		}
		if dFull.Generated != dIncr.Generated {
			t.Fatalf("cycle %d pool sizes diverged: %d vs %d", cycle, dFull.Generated, dIncr.Generated)
		}
		if _, err := full.Act(dFull); err != nil {
			t.Fatal(err)
		}
		if _, err := incr.Act(dIncr); err != nil {
			t.Fatal(err)
		}
		if cycle > 1 {
			scan := feed.LastScan()
			if scan.Full {
				t.Fatalf("cycle %d unexpectedly full-scanned", cycle)
			}
			if scan.Scanned >= fIncr.TableCount() {
				t.Fatalf("cycle %d scanned the whole fleet (%d tables)", cycle, scan.Scanned)
			}
		}
	}
	if fFull.TotalFiles() != fIncr.TotalFiles() {
		t.Fatalf("fleets diverged: %d vs %d files", fFull.TotalFiles(), fIncr.TotalFiles())
	}
}

func TestIncrementalDroppedTableForgotten(t *testing.T) {
	clock := sim.NewClock()
	rng := sim.NewRNG(11)
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, rng)
	cp := catalog.New(fs, clock)
	if _, err := cp.CreateDatabase("d", "tenant", 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		tbl, err := cp.CreateTable("d", lst.TableConfig{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.AppendFiles([]lst.FileSpec{{SizeBytes: storage.MB}, {SizeBytes: storage.MB}}); err != nil {
			t.Fatal(err)
		}
	}
	feed := changefeed.NewFeed(nil, 0)
	changefeed.AttachCatalog(feed.Bus, cp)
	svc, err := core.NewService(core.Config{
		Connector: feed.Connector(core.CatalogConnector{CP: cp}),
		Generator: feed.Generator(core.TableScopeGenerator{}),
		Observer:  feed.Observer(core.StatsObserver{TargetFileSize: 64 * storage.MB}, nil),
		Traits:    []core.Trait{core.FileCountReduction{}},
		Ranker:    core.ThresholdPolicy{Trait: core.FileCountReduction{}, Threshold: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Decide(); err != nil { // cold start retains both
		t.Fatal(err)
	}
	if feed.RetainedCount() != 2 || feed.Tracker.KnownCount() != 2 {
		t.Fatalf("retained=%d known=%d, want 2/2", feed.RetainedCount(), feed.Tracker.KnownCount())
	}

	// Dropping the table must purge it from the whole incremental
	// plane: retained pool, tracker, and cache.
	if err := cp.DropTable("d", "a"); err != nil {
		t.Fatal(err)
	}
	if feed.Tracker.KnownCount() != 1 {
		t.Fatalf("tracker still knows the dropped table: %d", feed.Tracker.KnownCount())
	}
	d, err := svc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Generated != 1 {
		t.Fatalf("pool after drop = %d, want 1", d.Generated)
	}
	for _, c := range d.Ranked {
		if c.Table.FullName() == "d.a" {
			t.Fatal("dropped table still in the candidate pool")
		}
	}

	// A commit event that raced the drop (publisher read the hook
	// before detachment) must not resurrect the dropped table.
	feed.Bus.Publish(changefeed.Event{Table: "d.a", Version: 3, Commits: 1})
	if feed.Tracker.KnownCount() != 1 || feed.Tracker.DirtyCount() != 0 {
		t.Fatalf("racing commit resurrected dropped table: known=%d dirty=%d",
			feed.Tracker.KnownCount(), feed.Tracker.DirtyCount())
	}
}

func TestIncrementalBusCounts(t *testing.T) {
	bus := changefeed.NewBus()
	n := 0
	bus.Subscribe(func(changefeed.Event) { n++ })
	for i := 0; i < 3; i++ {
		bus.Publish(changefeed.Event{Table: fmt.Sprintf("d.t%d", i)})
	}
	if n != 3 || bus.Published() != 3 {
		t.Fatalf("delivered=%d published=%d", n, bus.Published())
	}
}
