package changefeed

import (
	"autocomp/internal/telemetry"
)

// Runtime metrics of the incremental observation plane. Recording is
// passive and atomic; the dirty-set gauge is maintained incrementally so
// the per-event cost stays O(1).
var (
	mEvents = telemetry.Default().Counter(
		"autocomp_changefeed_events_total",
		"Commit events published on changefeed buses.")
	mTriggered = telemetry.Default().Counter(
		"autocomp_changefeed_triggered_total",
		"Dirty-set promotions (trigger fires, maintenance events, conflict re-dirties).")
	mDirtyTables = telemetry.Default().Gauge(
		"autocomp_changefeed_dirty_tables",
		"Tables currently in the dirty set awaiting re-observation.")
	mCacheHits = telemetry.Default().Counter(
		"autocomp_changefeed_cache_hits_total",
		"Stats-cache lookups served without an expensive observe call.")
	mCacheMisses = telemetry.Default().Counter(
		"autocomp_changefeed_cache_misses_total",
		"Stats-cache lookups that fell through to the full observer.")
	mCacheInvalidations = telemetry.Default().Counter(
		"autocomp_changefeed_cache_invalidations_total",
		"Per-table cache invalidations (commit events, drops).")
	mCacheEntries = telemetry.Default().Gauge(
		"autocomp_changefeed_cache_entries",
		"Cached observations currently held.")
	mObservesSaved = telemetry.Default().Counter(
		"autocomp_changefeed_observes_saved_total",
		"Expensive observe calls avoided versus a full scan (cache hits).")
	mScans = telemetry.Default().CounterVec(
		"autocomp_changefeed_scans_total",
		"Observation cycles by mode (dirty-set walk vs reconciling full enumeration).",
		"mode")
	mScannedTables = telemetry.Default().Gauge(
		"autocomp_changefeed_scanned_tables",
		"Tables served to the generator in the most recent cycle.")
	mPoolSize = telemetry.Default().Gauge(
		"autocomp_changefeed_candidate_pool",
		"Candidate-pool size the incremental generator emitted last cycle.")
	mRetainedTables = telemetry.Default().Gauge(
		"autocomp_changefeed_retained_tables",
		"Tables with retained candidates in the incremental pool.")
)
