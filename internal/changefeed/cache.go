package changefeed

import (
	"sync"
	"sync/atomic"
	"time"

	"autocomp/internal/core"
)

// Versioned is implemented by tables exposing a monotonically increasing
// metadata version (both *lst.Table and *fleet.Table do). The cache keys
// entries by it: an entry recorded at an older version misses, so a
// missed invalidation degrades to a re-observation, never to serving
// stale statistics for a version-advancing change.
type Versioned interface {
	Version() int64
}

// cacheEntry is one cached observation.
type cacheEntry struct {
	version int64
	stats   core.Stats
}

// CacheCounters is a snapshot of the cache's accounting.
type CacheCounters struct {
	// Hits and Misses count CachingObserver lookups; Misses equals the
	// inner (expensive) Observe calls made.
	Hits, Misses int64
	// Invalidations counts per-table invalidations (commit events).
	Invalidations int64
	// Entries is the current number of cached observations.
	Entries int
}

// cacheStripe is one lock-striped partition of the cache, holding the
// entries and invalidation epochs of the tables that hash to it.
type cacheStripe struct {
	mu sync.Mutex
	// tables maps table full name → candidate ID → entry, so a commit
	// event drops all of a table's entries without scanning the cache.
	tables map[string]map[string]cacheEntry
	// epochs counts invalidations per table. Writers capture the epoch
	// before observing and their Put is dropped if it advanced in the
	// meantime — otherwise a version-preserving mutation (fleet
	// compaction, metadata rewrite) racing an observation could
	// re-insert pre-mutation stats under the still-current version,
	// where no later version advance would ever evict them.
	epochs map[string]int64
}

// StatsCache caches observe-phase statistics keyed by (table, candidate
// ID, table version). Commit events invalidate a table's entries in
// O(1); version keying covers any invalidation that never arrives. All
// methods are safe for concurrent use. State is lock-striped by table
// name with the decide-shard hash (see the package doc), so the sharded
// decide plane's parallel observe fan-out misses and fills without
// serializing on one mutex; accounting lives in cache-level atomics and
// is unchanged by striping.
type StatsCache struct {
	stripes       []*cacheStripe
	hits, misses  atomic.Int64
	invalidations atomic.Int64
	entries       atomic.Int64
}

// NewStatsCache returns an empty single-stripe cache.
func NewStatsCache() *StatsCache {
	return NewStatsCacheSharded(1)
}

// NewStatsCacheSharded returns an empty cache partitioned across
// stripes lock stripes (min 1), aligned with the decide-shard mapping.
func NewStatsCacheSharded(stripes int) *StatsCache {
	if stripes < 1 {
		stripes = 1
	}
	sc := &StatsCache{stripes: make([]*cacheStripe, stripes)}
	for i := range sc.stripes {
		sc.stripes[i] = &cacheStripe{
			tables: make(map[string]map[string]cacheEntry),
			epochs: make(map[string]int64),
		}
	}
	return sc
}

// Stripes returns the cache's lock-stripe count.
func (sc *StatsCache) Stripes() int { return len(sc.stripes) }

func (sc *StatsCache) stripe(table string) *cacheStripe {
	return sc.stripes[core.ShardOf(table, len(sc.stripes))]
}

// Get returns the cached stats for candidate id of table at version, and
// whether the lookup hit.
func (sc *StatsCache) Get(table, id string, version int64) (core.Stats, bool) {
	st := sc.stripe(table)
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.tables[table][id]; ok && e.version == version {
		sc.hits.Add(1)
		mCacheHits.Inc()
		mObservesSaved.Inc()
		return e.stats, true
	}
	sc.misses.Add(1)
	mCacheMisses.Inc()
	return core.Stats{}, false
}

// Put records the stats observed for candidate id of table at version.
func (sc *StatsCache) Put(table, id string, version int64, s core.Stats) {
	st := sc.stripe(table)
	st.mu.Lock()
	defer st.mu.Unlock()
	sc.putLocked(st, table, id, version, s)
}

// putLocked inserts under st's lock, held by the caller.
func (sc *StatsCache) putLocked(st *cacheStripe, table, id string, version int64, s core.Stats) {
	m, ok := st.tables[table]
	if !ok {
		m = make(map[string]cacheEntry)
		st.tables[table] = m
	}
	if _, existed := m[id]; !existed {
		mCacheEntries.Set(float64(sc.entries.Add(1)))
	}
	m[id] = cacheEntry{version: version, stats: s}
}

// epoch returns the table's invalidation epoch.
func (sc *StatsCache) epoch(table string) int64 {
	st := sc.stripe(table)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epochs[table]
}

// putAt records the stats only if the table's invalidation epoch still
// equals epoch — the observation is discarded when an invalidation
// landed while it was in flight.
func (sc *StatsCache) putAt(table, id string, version, epoch int64, s core.Stats) {
	st := sc.stripe(table)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.epochs[table] != epoch {
		return
	}
	sc.putLocked(st, table, id, version, s)
}

// InvalidateTable drops every cached entry of the named table — wired to
// the bus so any commit (writer or maintenance) evicts the table's
// observations. Maintenance actions that mutate state without advancing
// the version (aggregate-model compactions, metadata rewrites) depend on
// this path; versioned commits would expire naturally.
func (sc *StatsCache) InvalidateTable(name string) {
	st := sc.stripe(name)
	st.mu.Lock()
	defer st.mu.Unlock()
	if m, ok := st.tables[name]; ok {
		sc.entries.Add(int64(-len(m)))
		delete(st.tables, name)
	}
	st.epochs[name]++
	sc.invalidations.Add(1)
	mCacheInvalidations.Inc()
	mCacheEntries.Set(float64(sc.entries.Load()))
}

// Drop removes every trace of a table — entries and its invalidation
// epoch — when the table leaves the lake, so long-running services do
// not accrete state for dropped tables. An observation already in
// flight for the table may re-insert one entry (its captured epoch
// matches the reset one); the next full scan's RetainOnly prunes it.
func (sc *StatsCache) Drop(name string) {
	st := sc.stripe(name)
	st.mu.Lock()
	defer st.mu.Unlock()
	if m, ok := st.tables[name]; ok {
		sc.entries.Add(int64(-len(m)))
		delete(st.tables, name)
	}
	delete(st.epochs, name)
	sc.invalidations.Add(1)
	mCacheInvalidations.Inc()
	mCacheEntries.Set(float64(sc.entries.Load()))
}

// RetainOnly drops every table not in keep — wired to reconciling full
// scans, whose enumeration is authoritative, so tables that vanished
// without a Dropped event do not leak cache state.
func (sc *StatsCache) RetainOnly(keep map[string]struct{}) {
	for _, st := range sc.stripes {
		st.mu.Lock()
		for name, m := range st.tables {
			if _, ok := keep[name]; !ok {
				sc.entries.Add(int64(-len(m)))
				delete(st.tables, name)
			}
		}
		for name := range st.epochs {
			if _, ok := keep[name]; !ok {
				delete(st.epochs, name)
			}
		}
		st.mu.Unlock()
	}
	mCacheEntries.Set(float64(sc.entries.Load()))
}

// MaxVersions returns, per cached table, the highest version any of its
// entries carries — the invariant surface scenario harnesses audit: a
// cached version beyond the table's live version would mean the cache is
// serving observations from a state the table never reached.
func (sc *StatsCache) MaxVersions() map[string]int64 {
	out := make(map[string]int64)
	for _, st := range sc.stripes {
		st.mu.Lock()
		for name, m := range st.tables {
			var max int64 = -1
			for _, e := range m {
				if e.version > max {
					max = e.version
				}
			}
			out[name] = max
		}
		st.mu.Unlock()
	}
	return out
}

// Counters returns a snapshot of the cache accounting.
func (sc *StatsCache) Counters() CacheCounters {
	return CacheCounters{
		Hits:          sc.hits.Load(),
		Misses:        sc.misses.Load(),
		Invalidations: sc.invalidations.Load(),
		Entries:       int(sc.entries.Load()),
	}
}

// CachingObserver consults the stats cache before falling back to the
// full (expensive) observer: a hit serves the cached statistics with the
// time- and quota-dependent fields refreshed; a miss delegates to Inner
// and caches the result at the table's current version. Tables that do
// not expose a version bypass the cache entirely.
type CachingObserver struct {
	// Inner is the full observer consulted on a miss.
	Inner core.Observer
	// Cache holds prior observations.
	Cache *StatsCache
	// Refresh, when set, is called on every hit to update the fields a
	// fresh observation would derive from the current clock or from
	// state outside the table (TableAge, SinceLastWrite, quota
	// utilization) — required for byte-identical decision parity with a
	// full scan. It must mirror exactly what Inner sets.
	Refresh func(c *core.Candidate, s *core.Stats)
}

// StatsObserverRefresher returns a Refresh function mirroring
// core.StatsObserver: it recomputes the table ages from now, the write
// count from the table, and — when quota is non-nil — the tenant's
// quota utilization, the fields a fresh StatsObserver observation
// derives from outside the candidate's (unchanged) file set.
func StatsObserverRefresher(now func() time.Duration, quota func(db string) float64) func(*core.Candidate, *core.Stats) {
	return func(c *core.Candidate, s *core.Stats) {
		if now != nil {
			n := now()
			s.TableAge = n - c.Table.Created()
			s.SinceLastWrite = n - c.Table.LastWrite()
		}
		s.WriteCount = c.Table.WriteCount()
		if quota != nil {
			s.QuotaUtilization = quota(c.Table.Database())
		}
	}
}

// Observe implements core.Observer.
func (o CachingObserver) Observe(c *core.Candidate) (core.Stats, error) {
	v, ok := c.Table.(Versioned)
	if !ok || o.Cache == nil {
		return o.Inner.Observe(c)
	}
	table, id := c.Table.FullName(), c.ID()
	// The epoch is captured before the version and the observation, so
	// an invalidation racing this observe drops the Put below instead
	// of caching pre-mutation stats under a still-current version.
	epoch := o.Cache.epoch(table)
	version := v.Version()
	if s, hit := o.Cache.Get(table, id, version); hit {
		if o.Refresh != nil {
			o.Refresh(c, &s)
		}
		return s, nil
	}
	s, err := o.Inner.Observe(c)
	if err != nil {
		return s, err
	}
	o.Cache.putAt(table, id, version, epoch, s)
	return s, nil
}
