package changefeed

import (
	"autocomp/internal/catalog"
	"autocomp/internal/core"
	"autocomp/internal/lst"
)

// lstHook adapts lst commit events onto the bus.
func lstHook(bus *Bus) lst.CommitHook {
	return func(e lst.CommitEvent) {
		ev := Event{
			Table:       e.Table.FullName(),
			Ref:         e.Table,
			Version:     e.Version,
			Commits:     1,
			At:          e.At,
			Maintenance: e.Maintenance,
		}
		if e.Snapshot != nil {
			ev.Bytes = e.Snapshot.AddedBytes
		}
		bus.Publish(ev)
	}
}

// AttachTable publishes one table's commits (transactions and
// maintenance operations) to bus.
func AttachTable(bus *Bus, t *lst.Table) {
	t.SetCommitHook(lstHook(bus))
}

// AttachCatalog publishes every commit in the control plane's lake —
// existing tables and tables created later — to bus, and publishes a
// Dropped event when a table is removed so subscribers forget it.
func AttachCatalog(bus *Bus, cp *catalog.ControlPlane) {
	cp.SetCommitHook(lstHook(bus))
	cp.SetDropHook(func(db, name string) {
		bus.Publish(Event{Table: db + "." + name, Dropped: true})
	})
}

// CatalogTriggers builds a PolicyFunc from the control plane's layered
// policies (database-level overrides, then per-table fields):
// TriggerEveryCommits / TriggerBytesWritten where set, def for unset
// fields and unknown tables.
func CatalogTriggers(cp *catalog.ControlPlane, def TriggerPolicy) PolicyFunc {
	return func(t core.Table) TriggerPolicy {
		out := def
		pol, err := cp.EffectivePolicies(t.Database(), t.Name())
		if err != nil {
			return out
		}
		if pol.TriggerEveryCommits > 0 {
			out.EveryCommits = pol.TriggerEveryCommits
		}
		if pol.TriggerBytesWritten > 0 {
			out.BytesWritten = pol.TriggerBytesWritten
		}
		return out
	}
}
