package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"autocomp/internal/autotune"
	"autocomp/internal/policy"
	"autocomp/internal/scenario"
)

// tuneJob is one asynchronous tune run hosted by the daemon. It mirrors
// the tenant.Run lifecycle: submitted → running → done/error, with a
// cursor-addressable event log (trial records keyed by trial number)
// that /events streams the same way /runs/{id}/events streams cycles.
type tuneJob struct {
	id      string
	started time.Time

	mu      sync.Mutex
	status  string // "running", "done", "error"
	errMsg  string
	records []autotune.TrialRecord
	result  *autotune.Result
	done    chan struct{}
}

// TuneJobInfo is the wire snapshot of a tune job.
type TuneJobInfo struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
	Trials  int    `json:"trials"`
	Started string `json:"started"`
	// Best is the best composite so far (zero until a valid trial).
	Best float64 `json:"best,omitempty"`
}

func (j *tuneJob) info() TuneJobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := TuneJobInfo{
		ID:      j.id,
		Status:  j.status,
		Error:   j.errMsg,
		Trials:  len(j.records),
		Started: j.started.UTC().Format(time.RFC3339),
	}
	if n := len(j.records); n > 0 {
		info.Best = j.records[n-1].Best
	}
	return info
}

// eventsAfter returns trial records with Trial > after.
func (j *tuneJob) eventsAfter(after int) []autotune.TrialRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, rec := range j.records {
		if rec.Trial > after {
			out := make([]autotune.TrialRecord, len(j.records)-i)
			copy(out, j.records[i:])
			return out
		}
	}
	return nil
}

// tuneRequest is the POST /api/tune body. Scenarios resolve by name
// from the daemon's scenarios directory, or arrive inline via "specs";
// both may be combined. The space is always inline.
type tuneRequest struct {
	// Space is the inline search-space definition (required).
	Space json.RawMessage `json:"space"`
	// Scenarios names shipped scenarios in the daemon's scenarios dir.
	Scenarios []string `json:"scenarios,omitempty"`
	// Specs carries inline scenario definitions.
	Specs []json.RawMessage `json:"specs,omitempty"`
	// Base is an inline policy spec to tune (omit for the default).
	Base json.RawMessage `json:"base,omitempty"`
	// Optimizer, Budget, and Seed parameterize the search (defaults:
	// cfo, 16, 1).
	Optimizer string `json:"optimizer,omitempty"`
	Budget    int    `json:"budget,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
}

// registerTune mounts the tuning routes (called from Register).
func (s *Server) registerTune(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/tune", s.handleSubmitTune)
	mux.HandleFunc("GET /api/tune", s.handleListTunes)
	mux.HandleFunc("GET /api/tune/{tune}", s.withTune(s.handleTuneStatus))
	mux.HandleFunc("GET /api/tune/{tune}/events", s.withTune(s.handleTuneEvents))
	mux.HandleFunc("GET /api/tune/{tune}/result", s.withTune(s.handleTuneResult))
}

// withTune resolves the {tune} path segment.
func (s *Server) withTune(h func(http.ResponseWriter, *http.Request, *tuneJob)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("tune")
		s.tuneMu.Lock()
		job, ok := s.tunes[id]
		s.tuneMu.Unlock()
		if !ok {
			writeError(w, http.StatusNotFound, "no tune job %q", id)
			return
		}
		h(w, r, job)
	}
}

// handleSubmitTune: POST /api/tune — validate the request synchronously
// (bad spaces and unknown scenarios fail with 4xx before a job exists),
// then run the tune in the background and return 202 with the job id.
func (s *Server) handleSubmitTune(w http.ResponseWriter, r *http.Request) {
	var req tuneRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Space) == 0 {
		writeError(w, http.StatusBadRequest, `body needs "space" (inline search-space definition)`)
		return
	}
	space, err := autotune.ParseSpace(req.Space)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	var scenarios []*scenario.Spec
	for _, name := range req.Scenarios {
		sp, err := s.findScenario(name)
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		scenarios = append(scenarios, sp)
	}
	for i, raw := range req.Specs {
		sp, err := scenario.Parse(raw)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "spec %d: %v", i, err)
			return
		}
		scenarios = append(scenarios, sp)
	}
	if len(scenarios) == 0 {
		writeError(w, http.StatusBadRequest, `body needs "scenarios" (names) or "specs" (inline)`)
		return
	}
	var base *policy.Spec
	if len(req.Base) > 0 {
		if base, err = policy.Parse(req.Base); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "base: %v", err)
			return
		}
	}
	if base == nil {
		base = policy.DefaultSpec()
	}
	if err := space.Validate(base); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	s.tuneMu.Lock()
	if s.tunes == nil {
		s.tunes = map[string]*tuneJob{}
	}
	s.tuneSeq++
	job := &tuneJob{
		id:      fmt.Sprintf("tune-%d", s.tuneSeq),
		started: time.Now(),
		status:  "running",
		done:    make(chan struct{}),
	}
	s.tunes[job.id] = job
	s.tuneOrder = append(s.tuneOrder, job.id)
	s.tuneMu.Unlock()

	cfg := autotune.Config{
		Space:     space,
		Base:      base,
		Scenarios: scenarios,
		Optimizer: req.Optimizer,
		Budget:    req.Budget,
		Seed:      req.Seed,
		Workers:   s.TuneWorkers,
		OnTrial: func(rec autotune.TrialRecord) {
			job.mu.Lock()
			job.records = append(job.records, rec)
			job.mu.Unlock()
		},
	}
	s.logf("mgmt: tune %s started (optimizer=%s budget=%d seed=%d scenarios=%d)",
		job.id, req.Optimizer, req.Budget, req.Seed, len(scenarios))
	go func() {
		res, err := autotune.Run(cfg)
		job.mu.Lock()
		if err != nil {
			job.status = "error"
			job.errMsg = err.Error()
		} else {
			job.status = "done"
			job.result = res
		}
		job.mu.Unlock()
		close(job.done)
		if err != nil {
			s.logf("mgmt: tune %s failed: %v", job.id, err)
		} else {
			s.logf("mgmt: tune %s done: best composite %.4f over %d trials",
				job.id, res.Report.BestComposite, res.Report.Trials)
		}
	}()
	writeJSON(w, http.StatusAccepted, job.info())
}

// handleListTunes: GET /api/tune → job snapshots in submission order.
func (s *Server) handleListTunes(w http.ResponseWriter, r *http.Request) {
	s.tuneMu.Lock()
	jobs := make([]*tuneJob, 0, len(s.tuneOrder))
	for _, id := range s.tuneOrder {
		jobs = append(jobs, s.tunes[id])
	}
	s.tuneMu.Unlock()
	out := make([]TuneJobInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.info())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTuneStatus: GET /api/tune/{id}.
func (s *Server) handleTuneStatus(w http.ResponseWriter, r *http.Request, job *tuneJob) {
	writeJSON(w, http.StatusOK, job.info())
}

// tuneResult is the GET /api/tune/{id}/result body.
type tuneResult struct {
	ID     string          `json:"id"`
	Winner *policy.Spec    `json:"winner"`
	Report autotune.Report `json:"report"`
}

// handleTuneResult: GET /api/tune/{id}/result — winner spec + report
// once the job is done (409 while running, 500 body for failed jobs).
func (s *Server) handleTuneResult(w http.ResponseWriter, r *http.Request, job *tuneJob) {
	job.mu.Lock()
	status, errMsg, res := job.status, job.errMsg, job.result
	job.mu.Unlock()
	switch status {
	case "running":
		writeError(w, http.StatusConflict, "tune %s is running; result is available once done", job.id)
	case "error":
		writeError(w, http.StatusInternalServerError, "tune %s failed: %s", job.id, errMsg)
	default:
		writeJSON(w, http.StatusOK, tuneResult{ID: job.id, Winner: res.Winner, Report: res.Report})
	}
}

// handleTuneEvents: GET /api/tune/{id}/events — trial records as JSONL,
// streamed until the job reaches a terminal state (?after=N resumes a
// cursor; ?follow=0 polls). The same shape as /runs/{id}/events, with
// the trial number as the cursor.
func (s *Server) handleTuneEvents(w http.ResponseWriter, r *http.Request, job *tuneJob) {
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad after=%q: %v", v, err)
			return
		}
		after = n
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	write := func() {
		for _, rec := range job.eventsAfter(after) {
			_ = enc.Encode(rec)
			after = rec.Trial
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	write()
	if !follow {
		return
	}
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-job.done:
			write()
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			write()
		}
	}
}
