package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/policy"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/telemetry"
	"autocomp/internal/tenant"
)

const scenariosDir = "../../examples/scenarios"

// newTestServer boots the management API over a fresh manager on an
// httptest listener.
func newTestServer(t *testing.T) (*httptest.Server, *tenant.Manager) {
	t.Helper()
	mgr := tenant.NewManager()
	srv := &Server{Mgr: mgr, ScenariosDir: scenariosDir}
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() { _ = mgr.Shutdown(10 * time.Second) })
	t.Cleanup(ts.Close)
	return ts, mgr
}

// doJSON issues a request with a JSON body and decodes the JSON reply.
func doJSON(t *testing.T, method, url string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding reply: %v", method, url, err)
		}
	}
	return resp
}

// stepAndReport runs one cycle on a tenant the test owns (created
// paused, so the manager's loop never competes) and returns the report.
func stepAndReport(t *testing.T, tn *tenant.Tenant) *core.Report {
	t.Helper()
	if err := tn.StepCycle(); err != nil {
		t.Fatal(err)
	}
	rep := tn.LastReport()
	if rep == nil {
		t.Fatal("no report after cycle")
	}
	return rep
}

// TestTenantCRUD exercises create/list/status over the wire.
func TestTenantCRUD(t *testing.T) {
	ts, _ := newTestServer(t)

	// Empty daemon lists no tenants.
	var snaps []tenant.Snapshot
	doJSON(t, http.MethodGet, ts.URL+"/api/tenants", nil, &snaps)
	if len(snaps) != 0 {
		t.Fatalf("fresh manager lists %d tenants", len(snaps))
	}

	// Create a running tenant.
	var snap tenant.Snapshot
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/tenants",
		[]byte(`{"name":"crud","seed":3,"days":2,"initial_tables":15}`), &snap)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	if snap.Name != "crud" || snap.DaysPlanned != 2 {
		t.Fatalf("create snapshot = %+v", snap)
	}

	// Duplicate name is rejected.
	resp = doJSON(t, http.MethodPost, ts.URL+"/api/tenants",
		[]byte(`{"name":"crud"}`), &apiError{})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate create status = %d", resp.StatusCode)
	}

	// Unknown tenant 404s.
	resp = doJSON(t, http.MethodGet, ts.URL+"/api/tenants/ghost", nil, &apiError{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost status = %d", resp.StatusCode)
	}

	// The run finishes and the snapshot reflects it.
	waitFor(t, func() bool {
		var s tenant.Snapshot
		doJSON(t, http.MethodGet, ts.URL+"/api/tenants/crud", nil, &s)
		return s.State == tenant.StateStopped && s.Day == 2
	})
}

// TestLifecycleEndpoints drives pause/resume/stop over the wire. The
// tenant's day budget is far beyond what the test lets it run, so every
// transition happens from a live loop.
func TestLifecycleEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/api/tenants",
		[]byte(`{"name":"lc","days":1000000,"initial_tables":10}`), &tenant.Snapshot{})

	var snap tenant.Snapshot
	doJSON(t, http.MethodPost, ts.URL+"/api/tenants/lc/pause", nil, &snap)
	if snap.State != tenant.StatePaused {
		t.Fatalf("state after pause = %v", snap.State)
	}
	doJSON(t, http.MethodPost, ts.URL+"/api/tenants/lc/resume", nil, &snap)
	if snap.State != tenant.StateRunning {
		t.Fatalf("state after resume = %v", snap.State)
	}
	doJSON(t, http.MethodPost, ts.URL+"/api/tenants/lc/stop", nil, &snap)
	waitFor(t, func() bool {
		var s tenant.Snapshot
		doJSON(t, http.MethodGet, ts.URL+"/api/tenants/lc", nil, &s)
		return s.State == tenant.StateStopped
	})
}

// localWatcherFingerprints ages a lake whose policy hot-reloads from a
// file watcher — the local half of the wire-parity contract.
func localWatcherFingerprints(t *testing.T, days, switchAfter int, next *policy.Spec) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "policy.json")
	writeSpec(t, path, policy.DefaultSpec())
	watcher, initial, err := policy.NewWatcher(path, policy.StubEnv())
	if err != nil {
		t.Fatal(err)
	}
	tn, err := tenant.New(tenant.Config{Name: "local", Seed: 31, Days: days, InitialTables: 30},
		initial, tenant.Options{
			PollPolicy: func() (*policy.Spec, bool, error) { return watcher.Poll() },
		})
	if err != nil {
		t.Fatal(err)
	}
	var prints []string
	for d := 1; d <= days; d++ {
		if d == switchAfter+1 {
			writeSpec(t, path, next)
		}
		prints = append(prints, testkit.DecisionFingerprint(stepAndReport(t, tn).Decision))
	}
	return prints
}

// TestPolicyPushWireParity is the over-the-wire half of the parity
// criterion: a policy pushed through PUT /policy must decide
// byte-identically to the same spec hot-reloaded from a file by a
// policy.Watcher, cycle for cycle, at the same seed.
func TestPolicyPushWireParity(t *testing.T) {
	const days, switchAfter = 6, 3
	next := policy.DefaultDataSpec(false)
	next.Name = "wire-alternate"
	next.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(5)}}
	next.Execution = nil

	want := localWatcherFingerprints(t, days, switchAfter, next)

	// Remote lake: same seed, created paused so the test owns the cycle
	// boundary; the policy arrives over real HTTP.
	ts, mgr := newTestServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/api/tenants",
		[]byte(`{"name":"remote","seed":31,"days":6,"initial_tables":30,"paused":true}`), &tenant.Snapshot{})
	tn, ok := mgr.Get("remote")
	if !ok {
		t.Fatal("remote tenant not registered")
	}

	specJSON, err := next.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var prints []string
	for d := 1; d <= days; d++ {
		if d == switchAfter+1 {
			var push struct {
				Diff []string `json:"diff"`
			}
			resp := doJSON(t, http.MethodPut, ts.URL+"/api/tenants/remote/policy", specJSON, &push)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("push status = %d", resp.StatusCode)
			}
			if len(push.Diff) == 0 {
				t.Fatal("push reported no diff")
			}
		}
		prints = append(prints, testkit.DecisionFingerprint(stepAndReport(t, tn).Decision))
	}

	for i := range want {
		if prints[i] != want[i] {
			t.Fatalf("day %d: wire-pushed decisions diverged from local hot reload:\nlocal:\n%s\nwire:\n%s",
				i+1, want[i], prints[i])
		}
	}

	// Provenance reflects the wire push.
	var view struct {
		Name       string `json:"name"`
		Provenance string `json:"provenance"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/api/tenants/remote/policy", nil, &view)
	if view.Name != "wire-alternate" || view.Provenance != "api" {
		t.Fatalf("policy view after push = %+v", view)
	}
}

// TestPolicyPushRejectedOverWire pins the rejected-edit contract at
// the HTTP layer: a 422 carrying the compile errors, the old spec
// still reported, and the pipeline still deciding as before.
func TestPolicyPushRejectedOverWire(t *testing.T) {
	ts, mgr := newTestServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/api/tenants",
		[]byte(`{"name":"rej","seed":31,"days":6,"initial_tables":30,"paused":true}`), &tenant.Snapshot{})
	tn, ok := mgr.Get("rej")
	if !ok {
		t.Fatal("rej tenant not registered")
	}
	stepAndReport(t, tn)

	var apiErr apiError
	resp := doJSON(t, http.MethodPut, ts.URL+"/api/tenants/rej/policy",
		[]byte(`{"name":"bad","generators":[{"name":"no-such-generator"}]}`), &apiErr)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad push status = %d", resp.StatusCode)
	}
	if !strings.Contains(apiErr.Error, "no-such-generator") {
		t.Fatalf("422 body does not carry the compile error: %q", apiErr.Error)
	}

	var view struct {
		Name string `json:"name"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/api/tenants/rej/policy", nil, &view)
	if view.Name != policy.DefaultSpec().Name {
		t.Fatalf("policy after rejected push = %q", view.Name)
	}

	// The lake keeps deciding: a control tenant at the same seed that
	// never saw the bad push produces the same next decision.
	control, err := tenant.New(tenant.Config{Name: "rej-control", Seed: 31, Days: 6, InitialTables: 30}, nil, tenant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepAndReport(t, control)
	ctrl := stepAndReport(t, control)
	got := stepAndReport(t, tn)
	if testkit.DecisionFingerprint(got.Decision) != testkit.DecisionFingerprint(ctrl.Decision) {
		t.Fatal("pipeline decisions changed after a rejected push")
	}
}

// TestRunGoldenTraceOverAPI is the acceptance test: an API-submitted
// run of a shipped scenario must produce a trace byte-identical to its
// committed golden file.
func TestRunGoldenTraceOverAPI(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/api/tenants",
		[]byte(`{"name":"runner","days":1,"initial_tables":10}`), &tenant.Snapshot{})

	var info tenant.RunInfo
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/tenants/runner/runs",
		[]byte(`{"scenario":"steady-state"}`), &info)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if info.Scenario != "steady-state" {
		t.Fatalf("submitted scenario = %q", info.Scenario)
	}

	// Trace before completion is a 409 (unless the run already won the
	// race to finish).
	early, err := http.Get(ts.URL + "/api/tenants/runner/runs/" + info.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	early.Body.Close()
	if early.StatusCode != http.StatusConflict && early.StatusCode != http.StatusOK {
		t.Fatalf("early trace status = %d", early.StatusCode)
	}

	waitFor(t, func() bool {
		var i tenant.RunInfo
		doJSON(t, http.MethodGet, ts.URL+"/api/tenants/runner/runs/"+info.ID, nil, &i)
		if i.Status == tenant.RunFailed {
			t.Fatalf("run failed: %s", i.Error)
		}
		return i.Status == tenant.RunDone
	})

	httpResp, err := http.Get(ts.URL + "/api/tenants/runner/runs/" + info.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join(scenariosDir, "golden", "steady-state.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), golden) {
		t.Fatalf("API-run trace differs from committed golden (%d vs %d bytes)", got.Len(), len(golden))
	}

	// The events stream carries one labeled CycleEvent per day.
	evResp, err := http.Get(ts.URL + "/api/tenants/runner/runs/" + info.ID + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	var events bytes.Buffer
	if _, err := events.ReadFrom(evResp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) != info.Days {
		t.Fatalf("events stream has %d lines, want %d", len(lines), info.Days)
	}
	var ev telemetry.CycleEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Tenant != "runner" || ev.Day != 1 {
		t.Fatalf("first event = tenant %q day %d", ev.Tenant, ev.Day)
	}
}

// TestSubmitInlineScenario submits a spec inline instead of by name,
// and pins the 404/400 paths of run submission.
func TestSubmitInlineScenario(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/api/tenants",
		[]byte(`{"name":"inline","days":1,"initial_tables":10}`), &tenant.Snapshot{})

	spec := `{"spec":{"name":"tiny","seed":9,"days":2,"fleet":{"initial_tables":12}}}`
	var info tenant.RunInfo
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/tenants/inline/runs", []byte(spec), &info)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("inline submit status = %d", resp.StatusCode)
	}
	waitFor(t, func() bool {
		var i tenant.RunInfo
		doJSON(t, http.MethodGet, ts.URL+"/api/tenants/inline/runs/"+info.ID, nil, &i)
		if i.Status == tenant.RunFailed {
			t.Fatalf("inline run failed: %s", i.Error)
		}
		return i.Status == tenant.RunDone
	})

	resp = doJSON(t, http.MethodPost, ts.URL+"/api/tenants/inline/runs",
		[]byte(`{"scenario":"no-such-scenario"}`), &apiError{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scenario status = %d", resp.StatusCode)
	}
	resp = doJSON(t, http.MethodPost, ts.URL+"/api/tenants/inline/runs", []byte(`{}`), &apiError{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty submission status = %d", resp.StatusCode)
	}
}

func writeSpec(t *testing.T, path string, sp *policy.Spec) {
	t.Helper()
	b, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never reached")
}
