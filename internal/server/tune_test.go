package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"autocomp/internal/autotune"
	"autocomp/internal/policy"
)

// tuneBody builds a minimal POST /api/tune request over the shipped
// tuning-micro scenario.
func tuneBody(t *testing.T) []byte {
	t.Helper()
	body := map[string]any{
		"space": json.RawMessage(`{
			"name": "api-micro",
			"dimensions": [
				{"field": "selector.budget_gbhr", "min": 8, "max": 65536, "log": true},
				{"field": "execution.workers", "min": 1, "max": 32}
			]
		}`),
		"scenarios": []string{"tuning-micro"},
		"optimizer": "cfo",
		"budget":    4,
		"seed":      1,
	}
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTuneAPI drives the async tune surface end to end: submit, poll
// status, stream trial events, and fetch the winner.
func TestTuneAPI(t *testing.T) {
	ts, _ := newTestServer(t)

	var info TuneJobInfo
	resp := doJSON(t, "POST", ts.URL+"/api/tune", tuneBody(t), &info)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if info.ID == "" || info.Status != "running" {
		t.Fatalf("submit info: %+v", info)
	}

	// The events stream follows until the job finishes; every line is a
	// valid trial record with contiguous numbering.
	evResp, err := http.Get(ts.URL + "/api/tune/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	var lines [][]byte
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("streamed %d trial events, want 4", len(lines))
	}
	if err := autotune.CheckTrialLog(bytes.NewReader(bytes.Join(lines, []byte("\n")))); err != nil {
		t.Fatalf("streamed trial log: %v", err)
	}

	// Terminal status.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp = doJSON(t, "GET", ts.URL+"/api/tune/"+info.ID, nil, &info)
		if info.Status == "done" || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if info.Status != "done" || info.Trials != 4 {
		t.Fatalf("final info: %+v", info)
	}

	// The result carries a compile-clean winner and a report whose first
	// trajectory point is the warm start at the base spec.
	var res struct {
		ID     string          `json:"id"`
		Winner *policy.Spec    `json:"winner"`
		Report autotune.Report `json:"report"`
	}
	resp = doJSON(t, "GET", ts.URL+"/api/tune/"+info.ID+"/result", nil, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	if res.Winner == nil || res.Winner.Name != "default-tuned" {
		t.Fatalf("winner: %+v", res.Winner)
	}
	if res.Report.Trajectory[0] != 1.0 {
		t.Fatalf("trajectory does not warm-start at 1.0: %v", res.Report.Trajectory)
	}
	if res.Report.BestComposite > 1.0 {
		t.Fatalf("best composite %v worse than baseline", res.Report.BestComposite)
	}

	// Cursor poll: ?after=2&follow=0 returns only the tail.
	pollResp, err := http.Get(ts.URL + "/api/tune/" + info.ID + "/events?after=2&follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer pollResp.Body.Close()
	var tail []autotune.TrialRecord
	psc := bufio.NewScanner(pollResp.Body)
	for psc.Scan() {
		var rec autotune.TrialRecord
		if err := json.Unmarshal(psc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, rec)
	}
	if len(tail) != 2 || tail[0].Trial != 3 || tail[1].Trial != 4 {
		t.Fatalf("after=2 tail: %+v", tail)
	}

	// The job list includes the finished job.
	var list []TuneJobInfo
	doJSON(t, "GET", ts.URL+"/api/tune", nil, &list)
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("list: %+v", list)
	}
}

// TestTuneAPIRejects covers the synchronous 4xx paths: no job is
// created for a request that cannot run.
func TestTuneAPIRejects(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"no space", `{"scenarios":["tuning-micro"]}`, http.StatusBadRequest},
		{"bad space", `{"space":{"dimensions":[{"field":"no.such","min":1,"max":2}]},"scenarios":["tuning-micro"]}`, http.StatusUnprocessableEntity},
		{"no scenarios", `{"space":{"dimensions":[{"field":"execution.workers","min":1,"max":4}]}}`, http.StatusBadRequest},
		{"unknown scenario", `{"space":{"dimensions":[{"field":"execution.workers","min":1,"max":4}]},"scenarios":["no-such"]}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp := doJSON(t, "POST", ts.URL+"/api/tune", []byte(tc.body), new(apiError))
		if resp.StatusCode != tc.code {
			t.Errorf("%s: %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
	var list []TuneJobInfo
	doJSON(t, "GET", ts.URL+"/api/tune", nil, &list)
	if len(list) != 0 {
		t.Fatalf("rejected requests created jobs: %+v", list)
	}
	resp := doJSON(t, "GET", ts.URL+"/api/tune/tune-1", nil, new(apiError))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
}
