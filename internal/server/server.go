// Package server is the daemon's HTTP management API: the write half
// of the serving story. It mounts on the same mux as the read-only
// telemetry endpoints (/metrics, /statusz) and exposes the hosted
// tenants — list/create, lifecycle, policy show/push with validate +
// diff + atomic between-cycle swap, and scenario runs with JSONL event
// streaming. Endpoint reference with curl examples: docs/management.md.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"autocomp/internal/policy"
	"autocomp/internal/scenario"
	"autocomp/internal/tenant"
)

// maxBodyBytes bounds management-request bodies (specs are small).
const maxBodyBytes = 1 << 20

// Server serves the management API over a tenant.Manager.
type Server struct {
	// Mgr hosts the tenants the API manages.
	Mgr *tenant.Manager
	// ScenariosDir is where run submissions resolve scenarios by name
	// ("" disables by-name submission; inline specs always work).
	ScenariosDir string
	// Logf receives operational messages (nil discards them). It is also
	// handed to tenants created through the API.
	Logf func(format string, args ...any)
	// TuneWorkers bounds each tune job's evaluation pool (0 =
	// GOMAXPROCS). The worker count never changes a tune's result bytes.
	TuneWorkers int

	// Tune-job registry (POST /api/tune).
	tuneMu    sync.Mutex
	tunes     map[string]*tuneJob
	tuneOrder []string
	tuneSeq   int
}

// Register mounts every management route on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/tenants", s.handleListTenants)
	mux.HandleFunc("POST /api/tenants", s.handleCreateTenant)
	mux.HandleFunc("GET /api/tenants/{tenant}", s.withTenant(s.handleTenantStatus))
	mux.HandleFunc("POST /api/tenants/{tenant}/pause", s.withTenant(s.handlePause))
	mux.HandleFunc("POST /api/tenants/{tenant}/resume", s.withTenant(s.handleResume))
	mux.HandleFunc("POST /api/tenants/{tenant}/stop", s.withTenant(s.handleStop))
	mux.HandleFunc("GET /api/tenants/{tenant}/policy", s.withTenant(s.handlePolicyShow))
	mux.HandleFunc("PUT /api/tenants/{tenant}/policy", s.withTenant(s.handlePolicyPush))
	mux.HandleFunc("GET /api/tenants/{tenant}/runs", s.withTenant(s.handleListRuns))
	mux.HandleFunc("POST /api/tenants/{tenant}/runs", s.withTenant(s.handleSubmitRun))
	mux.HandleFunc("GET /api/tenants/{tenant}/runs/{run}", s.withRun(s.handleRunStatus))
	mux.HandleFunc("GET /api/tenants/{tenant}/runs/{run}/events", s.withRun(s.handleRunEvents))
	mux.HandleFunc("GET /api/tenants/{tenant}/runs/{run}/trace", s.withRun(s.handleRunTrace))
	s.registerTune(mux)
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// withTenant resolves the {tenant} path segment.
func (s *Server) withTenant(h func(http.ResponseWriter, *http.Request, *tenant.Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		t, ok := s.Mgr.Get(name)
		if !ok {
			writeError(w, http.StatusNotFound, "no such tenant %q", name)
			return
		}
		h(w, r, t)
	}
}

// withRun resolves {tenant} and {run}.
func (s *Server) withRun(h func(http.ResponseWriter, *http.Request, *tenant.Tenant, *tenant.Run)) http.HandlerFunc {
	return s.withTenant(func(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
		id := r.PathValue("run")
		run, ok := t.Run(id)
		if !ok {
			writeError(w, http.StatusNotFound, "tenant %s has no run %q", t.Name(), id)
			return
		}
		h(w, r, t, run)
	})
}

// handleListTenants: GET /api/tenants → snapshots in registration order.
func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	tenants := s.Mgr.List()
	out := make([]tenant.Snapshot, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, t.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// createTenantRequest is the POST /api/tenants body: the fleet config
// plus an optional inline policy spec (default policy otherwise).
type createTenantRequest struct {
	tenant.Config
	// Policy is the tenant's initial policy spec (omit for the default).
	Policy json.RawMessage `json:"policy,omitempty"`
	// Paused, when true, registers the tenant without starting its cycle
	// loop (start later with resume — created tenants accept resume).
	Paused bool `json:"paused,omitempty"`
}

// handleCreateTenant: POST /api/tenants → create (and normally start)
// a tenant.
func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req createTenantRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var spec *policy.Spec
	if len(req.Policy) > 0 {
		sp, err := policy.Parse(req.Policy)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "policy: %v", err)
			return
		}
		spec = sp
	}
	t, err := s.Mgr.Create(req.Config, spec, tenant.Options{
		Provenance: "api",
		Logf:       s.Logf,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if !req.Paused {
		if err := s.Mgr.Start(t); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	s.logf("mgmt: created tenant %s (days=%d seed=%d)", t.Name(), t.Config().Days, t.Config().Seed)
	writeJSON(w, http.StatusCreated, t.Status())
}

// handleTenantStatus: GET /api/tenants/{t} → fleet/dirty-set/scheduler
// snapshot.
func (s *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	writeJSON(w, http.StatusOK, t.Status())
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	if err := t.Pause(); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, t.Status())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	if t.State() == tenant.StateCreated {
		// A tenant created with {"paused": true} starts here.
		if err := s.Mgr.Start(t); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, t.Status())
		return
	}
	if err := t.Resume(); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, t.Status())
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	t.Stop()
	writeJSON(w, http.StatusOK, t.Status())
}

// policyView is the GET /policy body: the spec plus its provenance.
type policyView struct {
	Name       string       `json:"name"`
	Provenance string       `json:"provenance"`
	Spec       *policy.Spec `json:"spec"`
}

// handlePolicyShow: GET /api/tenants/{t}/policy.
func (s *Server) handlePolicyShow(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	spec, name, provenance := t.PolicyInfo()
	writeJSON(w, http.StatusOK, policyView{Name: name, Provenance: provenance, Spec: spec})
}

// policyPushResponse reports an accepted push: the field-wise diff that
// will take effect at the tenant's next cycle boundary.
type policyPushResponse struct {
	Tenant  string   `json:"tenant"`
	Policy  string   `json:"policy"`
	Diff    []string `json:"diff"`
	Applied string   `json:"applied"`
}

// handlePolicyPush: PUT /api/tenants/{t}/policy — validate, diff, and
// stage an atomic between-cycle swap. Rejected specs return the compile
// errors with 422 and leave the running pipeline untouched (the same
// contract as the file watcher's hot reload).
func (s *Server) handlePolicyPush(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp, err := policy.Parse(body)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	diff, err := t.PushPolicy(sp)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.logf("mgmt: tenant %s staged policy %q (%d change(s))", t.Name(), sp.Name, len(diff))
	writeJSON(w, http.StatusOK, policyPushResponse{
		Tenant:  t.Name(),
		Policy:  sp.Name,
		Diff:    diff,
		Applied: "next cycle boundary",
	})
}

// handleListRuns: GET /api/tenants/{t}/runs.
func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	runs := t.Runs()
	out := make([]tenant.RunInfo, 0, len(runs))
	for _, run := range runs {
		out = append(out, run.Info())
	}
	writeJSON(w, http.StatusOK, out)
}

// submitRunRequest names a shipped scenario or carries one inline.
type submitRunRequest struct {
	// Scenario names a spec in the daemon's scenarios directory.
	Scenario string `json:"scenario,omitempty"`
	// Spec is an inline scenario definition (wins over Scenario).
	Spec json.RawMessage `json:"spec,omitempty"`
}

// handleSubmitRun: POST /api/tenants/{t}/runs.
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	var req submitRunRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var spec *scenario.Spec
	switch {
	case len(req.Spec) > 0:
		sp, err := scenario.Parse(req.Spec)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		spec = sp
	case req.Scenario != "":
		sp, err := s.findScenario(req.Scenario)
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		spec = sp
	default:
		writeError(w, http.StatusBadRequest, `body needs "scenario" (name) or "spec" (inline)`)
		return
	}
	run, err := t.SubmitRun(spec)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.logf("mgmt: tenant %s run %s started (scenario=%s days=%d)", t.Name(), run.ID(), spec.Name, spec.Days)
	writeJSON(w, http.StatusAccepted, run.Info())
}

// findScenario resolves a scenario by name from the scenarios dir.
func (s *Server) findScenario(name string) (*scenario.Spec, error) {
	if s.ScenariosDir == "" {
		return nil, errors.New("server: no scenarios directory configured; submit an inline spec")
	}
	specs, err := scenario.LoadDir(s.ScenariosDir)
	if err != nil {
		return nil, fmt.Errorf("server: loading scenarios: %w", err)
	}
	for _, sp := range specs {
		if sp.Name == name {
			return sp, nil
		}
	}
	return nil, fmt.Errorf("server: no scenario named %q in %s", name, s.ScenariosDir)
}

// handleRunStatus: GET /api/tenants/{t}/runs/{id}.
func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request, t *tenant.Tenant, run *tenant.Run) {
	writeJSON(w, http.StatusOK, run.Info())
}

// handleRunTrace: GET /api/tenants/{t}/runs/{id}/trace — the canonical
// scenario trace bytes (byte-identical to the committed golden file
// when the scenario and seed match).
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request, t *tenant.Tenant, run *tenant.Run) {
	info := run.Info()
	if info.Status != tenant.RunDone {
		writeError(w, http.StatusConflict, "run %s is %s; trace is available once done", run.ID(), info.Status)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(run.Trace())
}

// handleRunEvents: GET /api/tenants/{t}/runs/{id}/events — the run's
// per-cycle CycleEvents as JSONL, streamed until the run reaches a
// terminal state (or from ?after=N for a plain poll).
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request, t *tenant.Tenant, run *tenant.Run) {
	after := int64(0)
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad after=%q: %v", v, err)
			return
		}
		after = n
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	write := func() {
		for _, ev := range run.Events(after) {
			_ = enc.Encode(ev)
			after = ev.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	write()
	if !follow {
		return
	}
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-run.Done():
			write()
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			write()
		}
	}
}

func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	b, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if len(b) == 0 {
		return nil, errors.New("empty body")
	}
	return b, nil
}

func decodeBody(r *http.Request, v any) error {
	b, err := readBody(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("decoding body: %w", err)
	}
	return nil
}
