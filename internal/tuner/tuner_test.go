package tuner

import (
	"math"
	"testing"
)

// bowl is a smooth objective minimized at (3, 7).
func bowl(p map[string]float64) float64 {
	dx := p["x"] - 3
	dy := p["y"] - 7
	return dx*dx + dy*dy
}

var bowlParams = []Param{
	{Name: "x", Min: 0, Max: 10},
	{Name: "y", Min: 0, Max: 10},
}

func TestRandomSearchFindsDecentPoint(t *testing.T) {
	trials := RandomSearch{Params: bowlParams, Seed: 1}.Optimize(bowl, 200)
	if len(trials) != 200 {
		t.Fatalf("trials = %d", len(trials))
	}
	best := Best(trials)
	if best.Score > 2 {
		t.Fatalf("random search best = %v", best.Score)
	}
}

func TestCFOConvergesBetterThanRandom(t *testing.T) {
	const iters = 60
	rnd := Best(RandomSearch{Params: bowlParams, Seed: 5}.Optimize(bowl, iters))
	cfo := Best(CFO{Params: bowlParams, Seed: 5}.Optimize(bowl, iters))
	if cfo.Score > rnd.Score*1.5 {
		t.Fatalf("CFO %v much worse than random %v", cfo.Score, rnd.Score)
	}
	if cfo.Score > 1.0 {
		t.Fatalf("CFO did not converge: %v", cfo.Score)
	}
}

func TestCFODeterministic(t *testing.T) {
	a := CFO{Params: bowlParams, Seed: 9}.Optimize(bowl, 40)
	b := CFO{Params: bowlParams, Seed: 9}.Optimize(bowl, 40)
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Fatalf("trial %d differs", i)
		}
	}
}

func TestCFOStartsLowCostFirst(t *testing.T) {
	trials := CFO{Params: bowlParams, Seed: 1}.Optimize(bowl, 10)
	if trials[0].Params["x"] != 0 || trials[0].Params["y"] != 0 {
		t.Fatalf("first trial = %+v, want low end", trials[0].Params)
	}
}

func TestCFORespectsBounds(t *testing.T) {
	trials := CFO{Params: bowlParams, Seed: 3}.Optimize(bowl, 100)
	for _, tr := range trials {
		for _, p := range bowlParams {
			v := tr.Params[p.Name]
			if v < p.Min || v > p.Max {
				t.Fatalf("param %s=%v outside [%v,%v]", p.Name, v, p.Min, p.Max)
			}
		}
	}
}

func TestLogSpaceSampling(t *testing.T) {
	params := []Param{{Name: "t", Min: 1, Max: 10000, Log: true}}
	trials := RandomSearch{Params: params, Seed: 2}.Optimize(func(p map[string]float64) float64 {
		return p["t"]
	}, 500)
	below100 := 0
	for _, tr := range trials {
		v := tr.Params["t"]
		if v < 1 || v > 10000 {
			t.Fatalf("log sample out of range: %v", v)
		}
		if v < 100 {
			below100++
		}
	}
	// Log-uniform: half the mass below sqrt(1*10000)=100.
	if below100 < 200 || below100 > 300 {
		t.Fatalf("log-uniform spread: %d/500 below 100", below100)
	}
}

func TestGridSearchCoversGrid(t *testing.T) {
	g := GridSearch{Params: []Param{{Name: "x", Min: 0, Max: 1}}, PointsPerDim: 5}
	trials := g.Optimize(func(p map[string]float64) float64 { return p["x"] }, 0)
	if len(trials) != 5 {
		t.Fatalf("grid points = %d", len(trials))
	}
	if trials[0].Params["x"] != 0 || trials[4].Params["x"] != 1 {
		t.Fatalf("grid endpoints: %v .. %v", trials[0].Params["x"], trials[4].Params["x"])
	}
	// Multi-dim cartesian product.
	g2 := GridSearch{Params: bowlParams, PointsPerDim: 3}
	if got := len(g2.Optimize(bowl, 0)); got != 9 {
		t.Fatalf("2d grid = %d", got)
	}
	// Iteration cap honored.
	if got := len(g2.Optimize(bowl, 4)); got != 4 {
		t.Fatalf("capped grid = %d", got)
	}
}

func TestBestAndScores(t *testing.T) {
	trials := []Trial{{Score: 5}, {Score: 1}, {Score: 3}}
	if Best(trials).Score != 1 {
		t.Fatal("best")
	}
	s := Scores(trials)
	if len(s) != 3 || s[1] != 1 {
		t.Fatalf("scores = %v", s)
	}
	if Best(nil).Score != 0 {
		t.Fatal("empty best")
	}
}

func TestCFOStartPoint(t *testing.T) {
	start := map[string]float64{"x": 4, "y": 12} // y beyond Max: clamped
	trials := CFO{Params: bowlParams, Seed: 1, Start: start}.Optimize(bowl, 10)
	if trials[0].Params["x"] != 4 || trials[0].Params["y"] != 10 {
		t.Fatalf("first trial = %+v, want clamped start", trials[0].Params)
	}
}

// TestCFOStreamIndependence pins the satellite hygiene guarantee: the
// restart points CFO draws are a function of the seed alone, not of how
// many perturbation draws the search consumed before the step collapsed.
// Two objectives with very different acceptance patterns — a smooth bowl
// that keeps improving for a while versus a constant objective that
// rejects every proposal and forces the earliest possible restarts —
// must draw the identical sequence of restart configurations. Under the
// pre-split single-stream design the second run's restart draws would
// land at different stream offsets and differ.
func TestCFOStreamIndependence(t *testing.T) {
	const iters = 400
	restarts := func(obj Objective) [][2]float64 {
		var out [][2]float64
		for _, tr := range (CFO{Params: bowlParams, Seed: 11}).Optimize(obj, iters) {
			if tr.Restart {
				out = append(out, [2]float64{tr.Params["x"], tr.Params["y"]})
			}
		}
		return out
	}
	a := restarts(bowl)
	b := restarts(func(map[string]float64) float64 { return 1 }) // never improves
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("expected restarts in both runs (got %d and %d)", len(a), len(b))
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("restart %d differs across objectives: %v vs %v", i, a[i], b[i])
		}
	}
	// The two runs must actually have restarted at different iterations,
	// or the assertion above proves nothing about stream independence.
	iterOf := func(obj Objective) int {
		for _, tr := range (CFO{Params: bowlParams, Seed: 11}).Optimize(obj, iters) {
			if tr.Restart {
				return tr.Iteration
			}
		}
		return -1
	}
	if ia, ib := iterOf(bowl), iterOf(func(map[string]float64) float64 { return 1 }); ia == ib {
		t.Fatalf("both runs restarted first at iteration %d; test needs divergent timing", ia)
	}
}

func TestLogSpaceCFO(t *testing.T) {
	// Objective minimized at t=100 in log space.
	obj := func(p map[string]float64) float64 {
		d := math.Log10(p["t"]) - 2
		return d * d
	}
	params := []Param{{Name: "t", Min: 1, Max: 100000, Log: true}}
	best := Best(CFO{Params: params, Seed: 4}.Optimize(obj, 80))
	if best.Score > 0.5 {
		t.Fatalf("log-space CFO best = %v (t=%v)", best.Score, best.Params["t"])
	}
}
