// Package tuner implements the black-box parameter optimization the paper
// uses for auto-tuning compaction triggers (§6.3): the MLOS framework
// drives the FLAML optimizer to iteratively refine threshold values that
// minimize end-to-end workload duration.
//
// Two optimizers are provided: RandomSearch (the baseline) and CFO, a
// FLAML-style randomized direct-search method (local search with adaptive
// step size and restarts). Both are deterministic given a seed.
package tuner

import (
	"math"
	"sort"

	"autocomp/internal/sim"
)

// Param is one tunable dimension.
type Param struct {
	Name string
	Min  float64
	Max  float64
	// Log searches the dimension in log space (for thresholds spanning
	// orders of magnitude).
	Log bool
}

// clamp keeps v inside the parameter's range.
func (p Param) clamp(v float64) float64 {
	if v < p.Min {
		return p.Min
	}
	if v > p.Max {
		return p.Max
	}
	return v
}

// Trial is one evaluated configuration. Lower scores are better (the
// paper's objective is end-to-end experiment duration).
type Trial struct {
	Iteration int
	Params    map[string]float64
	Score     float64
	// Restart marks trials whose configuration was drawn fresh from the
	// restart stream rather than proposed from the incumbent (CFO only).
	Restart bool
}

// Objective evaluates a configuration and returns its score (lower is
// better).
type Objective func(params map[string]float64) float64

// Optimizer searches a parameter space.
type Optimizer interface {
	Name() string
	// Optimize runs iters evaluations of obj and returns every trial in
	// execution order.
	Optimize(obj Objective, iters int) []Trial
}

// Best returns the lowest-scoring trial (the earliest on ties).
func Best(trials []Trial) Trial {
	if len(trials) == 0 {
		return Trial{}
	}
	best := trials[0]
	for _, t := range trials[1:] {
		if t.Score < best.Score {
			best = t
		}
	}
	return best
}

// Scores projects trial scores in execution order (the y-axis of the
// paper's Figure 9).
func Scores(trials []Trial) []float64 {
	out := make([]float64, len(trials))
	for i, t := range trials {
		out[i] = t.Score
	}
	return out
}

// RandomSearch samples configurations uniformly (log-uniformly for Log
// params).
type RandomSearch struct {
	Params []Param
	Seed   int64
}

// Name implements Optimizer.
func (RandomSearch) Name() string { return "random-search" }

// Optimize implements Optimizer.
func (r RandomSearch) Optimize(obj Objective, iters int) []Trial {
	rng := sim.NewRNG(r.Seed)
	trials := make([]Trial, 0, iters)
	for i := 0; i < iters; i++ {
		params := map[string]float64{}
		for _, p := range r.Params {
			params[p.Name] = sample(rng, p)
		}
		trials = append(trials, Trial{Iteration: i, Params: params, Score: obj(params)})
	}
	return trials
}

func sample(rng *sim.RNG, p Param) float64 {
	if p.Log && p.Min > 0 {
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		return math.Exp(lo + rng.Float64()*(hi-lo))
	}
	return p.Min + rng.Float64()*(p.Max-p.Min)
}

// CFO is a FLAML-style randomized direct-search optimizer: starting from
// a low-cost point, it proposes a random direction at the current step
// size, moves on improvement (doubling the step), shrinks the step on
// repeated failure, and restarts from a fresh random point when the step
// collapses.
type CFO struct {
	Params []Param
	Seed   int64
	// InitialStep is the step size as a fraction of each dimension's
	// range (default 0.25).
	InitialStep float64
	// ShrinkAfter is the number of consecutive failures before the step
	// halves (default 2).
	ShrinkAfter int
	// Start, if non-nil, is the first configuration evaluated (clamped
	// into range; missing dimensions fall back to their Min). When nil
	// the search keeps FLAML's low-cost-first start at the Min corner.
	Start map[string]float64
}

// Name implements Optimizer.
func (CFO) Name() string { return "flaml-cfo" }

// Optimize implements Optimizer.
func (c CFO) Optimize(obj Objective, iters int) []Trial {
	if c.InitialStep <= 0 {
		c.InitialStep = 0.25
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 2
	}
	// Perturbation and restart randomness come from independent Child
	// streams of the seed. With a single shared stream the position of
	// every restart draw would depend on how many perturbation draws
	// preceded it, so changing when restarts fire (a property of the
	// objective's scores) would silently reroll every later proposal;
	// split streams keep the k-th restart point a pure function of
	// (Seed, k) no matter what the objective returns.
	perturb := sim.Child(c.Seed, "tuner/cfo/perturb")
	restart := sim.Child(c.Seed, "tuner/cfo/restart")
	var trials []Trial

	eval := func(i int, params map[string]float64, fresh bool) Trial {
		t := Trial{Iteration: i, Params: clone(params), Score: obj(params), Restart: fresh}
		trials = append(trials, t)
		return t
	}

	// Start from the low end of each range (FLAML's low-cost-first
	// heuristic: cheap configurations are tried before expensive ones)
	// unless the caller supplied a warm start.
	current := map[string]float64{}
	for _, p := range c.Params {
		if v, ok := c.Start[p.Name]; ok {
			current[p.Name] = p.clamp(v)
		} else {
			current[p.Name] = p.Min
		}
	}
	best := eval(0, current, false)
	step := c.InitialStep
	failures := 0

	for i := 1; i < iters; i++ {
		proposal := clone(best.Params)
		for _, p := range c.Params {
			if p.Log && p.Min > 0 {
				// Log-space move.
				lo, hi := math.Log(p.Min), math.Log(p.Max)
				cur := math.Log(proposal[p.Name])
				cur += (2*perturb.Float64() - 1) * step * (hi - lo)
				proposal[p.Name] = p.clamp(math.Exp(cur))
				continue
			}
			delta := (2*perturb.Float64() - 1) * step * (p.Max - p.Min)
			proposal[p.Name] = p.clamp(proposal[p.Name] + delta)
		}
		t := eval(i, proposal, false)
		if t.Score < best.Score {
			best = t
			step = math.Min(step*2, 0.5)
			failures = 0
			continue
		}
		failures++
		if failures >= c.ShrinkAfter {
			step /= 2
			failures = 0
		}
		if step < 0.01 {
			// Restart from a fresh random point.
			fresh := map[string]float64{}
			for _, p := range c.Params {
				fresh[p.Name] = sample(restart, p)
			}
			if i+1 < iters {
				i++
				t := eval(i, fresh, true)
				if t.Score < best.Score {
					best = t
				}
			}
			step = c.InitialStep
		}
	}
	return trials
}

func clone(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// GridSearch evaluates an even grid over each parameter (full factorial);
// useful for the ablation studies.
type GridSearch struct {
	Params []Param
	// PointsPerDim is the grid resolution (default 5).
	PointsPerDim int
}

// Name implements Optimizer.
func (GridSearch) Name() string { return "grid-search" }

// Optimize implements Optimizer; iters caps the number of grid points
// evaluated (0 = all).
func (g GridSearch) Optimize(obj Objective, iters int) []Trial {
	n := g.PointsPerDim
	if n <= 1 {
		n = 5
	}
	grids := make([][]float64, len(g.Params))
	for i, p := range g.Params {
		grids[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			frac := float64(j) / float64(n-1)
			if p.Log && p.Min > 0 {
				lo, hi := math.Log(p.Min), math.Log(p.Max)
				grids[i][j] = math.Exp(lo + frac*(hi-lo))
			} else {
				grids[i][j] = p.Min + frac*(p.Max-p.Min)
			}
		}
	}
	var trials []Trial
	var walk func(dim int, params map[string]float64)
	walk = func(dim int, params map[string]float64) {
		if iters > 0 && len(trials) >= iters {
			return
		}
		if dim == len(g.Params) {
			trials = append(trials, Trial{
				Iteration: len(trials),
				Params:    clone(params),
				Score:     obj(params),
			})
			return
		}
		for _, v := range grids[dim] {
			params[g.Params[dim].Name] = v
			walk(dim+1, params)
		}
	}
	walk(0, map[string]float64{})
	// Keep deterministic order by iteration.
	sort.Slice(trials, func(i, j int) bool { return trials[i].Iteration < trials[j].Iteration })
	return trials
}
