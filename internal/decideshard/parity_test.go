package decideshard_test

// Decision-parity suite: the sharded decide plane must be byte-identical
// to the serial pass — same funnel counts, same ranked order and scores,
// same selection and plan — across seeds, shard counts, ranker kinds,
// and the full maintenance action mix. The fingerprints compared here
// print every ranked candidate with its score at full float precision,
// so "parity" means the bits, not the gist.

import (
	"testing"

	"autocomp/internal/core"
	"autocomp/internal/decideshard"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/sim"
)

// twinFleets builds two identically seeded fleets that will evolve in
// lockstep as long as their decisions match.
func twinFleets(seed int64, tables int) (*fleet.Fleet, *fleet.Fleet) {
	cfg := testkit.FleetConfig(seed, tables)
	return fleet.New(cfg, sim.NewClock()), fleet.New(cfg, sim.NewClock())
}

// shardedMaintenanceService wires the unified maintenance pipeline with
// the sharded decide plane attached.
func shardedMaintenanceService(t *testing.T, f *fleet.Fleet, shards, workers int) *core.Service {
	t.Helper()
	cfg := f.MaintenanceConfig(core.TopK{K: 25}, testkit.Model(), maintenance.DefaultPolicy())
	eng := decideshard.New(decideshard.Options{Shards: shards, Workers: workers})
	cfg.Decider = eng.Decide
	svc, err := core.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestShardDecisionParityMaintenance is the headline parity matrix:
// seeds {1,7,42} × shard counts {1,2,4,16} over the unified maintenance
// pipeline (data compaction competing with snapshot expiry, metadata
// checkpoints, and manifest rewrites — the PR 1 action mix), acting on
// every decision so the fleets age through state the decisions created.
func TestShardDecisionParityMaintenance(t *testing.T) {
	seeds := []int64{1, 7, 42}
	shardCounts := []int{1, 2, 4, 16}
	days := 4
	tables := 150
	if testing.Short() {
		days, tables = 3, 90
	}
	for _, seed := range seeds {
		for _, shards := range shardCounts {
			serialFleet, shardFleet := twinFleets(seed, tables)
			serialCfg := serialFleet.MaintenanceConfig(core.TopK{K: 25}, testkit.Model(), maintenance.DefaultPolicy())
			serialSvc, err := core.NewService(serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			shardSvc := shardedMaintenanceService(t, shardFleet, shards, 4)

			for day := 0; day < days; day++ {
				serialFleet.AdvanceDay()
				shardFleet.AdvanceDay()
				dSerial, err := serialSvc.Decide()
				if err != nil {
					t.Fatalf("seed %d shards %d day %d: serial decide: %v", seed, shards, day, err)
				}
				dShard, err := shardSvc.Decide()
				if err != nil {
					t.Fatalf("seed %d shards %d day %d: sharded decide: %v", seed, shards, day, err)
				}
				fpSerial, fpShard := testkit.DecisionFingerprint(dSerial), testkit.DecisionFingerprint(dShard)
				if fpSerial != fpShard {
					t.Fatalf("seed %d shards %d day %d: decision fingerprints diverge\nserial:\n%s\nsharded:\n%s",
						seed, shards, day, testkit.Head(fpSerial, 25), testkit.Head(fpShard, 25))
				}
				if _, err := serialSvc.Act(dSerial); err != nil {
					t.Fatal(err)
				}
				if _, err := shardSvc.Act(dShard); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestShardParityThresholdRanker covers the second ranker family: the
// threshold policy's per-candidate admission sharded across 4 shards.
func TestShardParityThresholdRanker(t *testing.T) {
	serialFleet, shardFleet := twinFleets(11, 120)
	mkCfg := func(f *fleet.Fleet) core.Config {
		cfg := f.ServiceConfig(core.SelectAll{}, testkit.Model())
		cfg.Ranker = core.ThresholdPolicy{Trait: core.RelativeFileCountReduction{}, Threshold: 0.10}
		return cfg
	}
	serialSvc, err := core.NewService(mkCfg(serialFleet))
	if err != nil {
		t.Fatal(err)
	}
	shardCfg := mkCfg(shardFleet)
	shardCfg.Decider = decideshard.New(decideshard.Options{Shards: 4}).Decide
	shardSvc, err := core.NewService(shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		serialFleet.AdvanceDay()
		shardFleet.AdvanceDay()
		dSerial, err := serialSvc.Decide()
		if err != nil {
			t.Fatal(err)
		}
		dShard, err := shardSvc.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if a, b := testkit.DecisionFingerprint(dSerial), testkit.DecisionFingerprint(dShard); a != b {
			t.Fatalf("day %d: threshold parity broken\nserial:\n%s\nsharded:\n%s",
				day, testkit.Head(a, 20), testkit.Head(b, 20))
		}
	}
}

// nonLocalGenerator wraps a real generator while withholding the
// table-local declaration, forcing the engine's serial-generation
// fallback with hash partitioning.
type nonLocalGenerator struct{ inner core.Generator }

func (g nonLocalGenerator) Name() string { return "non-local(" + g.inner.Name() + ")" }
func (g nonLocalGenerator) Candidates(tables []core.Table) []*core.Candidate {
	return g.inner.Candidates(tables)
}

// TestShardParityGeneratorFallback proves the set-preserving fallback:
// a generator the engine cannot fan out is generated once serially,
// hash-partitioned, and still ranked byte-identically.
func TestShardParityGeneratorFallback(t *testing.T) {
	serialFleet, shardFleet := twinFleets(7, 100)
	serialCfg := serialFleet.ServiceConfig(core.TopK{K: 10}, testkit.Model())
	serialSvc, err := core.NewService(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	shardCfg := shardFleet.ServiceConfig(core.TopK{K: 10}, testkit.Model())
	shardCfg.Generator = nonLocalGenerator{inner: shardCfg.Generator}
	shardCfg.Decider = decideshard.New(decideshard.Options{Shards: 4}).Decide
	shardSvc, err := core.NewService(shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	serialFleet.AdvanceDay()
	shardFleet.AdvanceDay()
	dSerial, err := serialSvc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	dShard, err := shardSvc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := testkit.DecisionFingerprint(dSerial), testkit.DecisionFingerprint(dShard); a != b {
		t.Fatalf("fallback parity broken\nserial:\n%s\nsharded:\n%s",
			testkit.Head(a, 20), testkit.Head(b, 20))
	}
}

// TestShardParityBudgetSelector pins the selector interaction: the
// budget selector walks the full merged ranking (greedy skip, not
// stop), so any ordering slip past the top-k would surface here.
func TestShardParityBudgetSelector(t *testing.T) {
	serialFleet, shardFleet := twinFleets(3, 140)
	sel := core.BudgetSelector{BudgetGBHr: 600, MaxK: 40}
	serialSvc, err := core.NewService(serialFleet.ServiceConfig(sel, testkit.Model()))
	if err != nil {
		t.Fatal(err)
	}
	shardCfg := shardFleet.ServiceConfig(sel, testkit.Model())
	shardCfg.Decider = decideshard.New(decideshard.Options{Shards: 16, Workers: 2}).Decide
	shardSvc, err := core.NewService(shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		serialFleet.AdvanceDay()
		shardFleet.AdvanceDay()
		dSerial, err := serialSvc.Decide()
		if err != nil {
			t.Fatal(err)
		}
		dShard, err := shardSvc.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if a, b := testkit.DecisionFingerprint(dSerial), testkit.DecisionFingerprint(dShard); a != b {
			t.Fatalf("day %d: budget-selector parity broken\nserial:\n%s\nsharded:\n%s",
				day, testkit.Head(a, 20), testkit.Head(b, 20))
		}
		if _, err := serialSvc.Act(dSerial); err != nil {
			t.Fatal(err)
		}
		if _, err := shardSvc.Act(dShard); err != nil {
			t.Fatal(err)
		}
	}
}
