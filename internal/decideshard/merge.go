package decideshard

import "autocomp/internal/core"

// MergeRanked merges per-shard rankings — each sorted by core.RankLess —
// into one fully ranked list with a deterministic k-way heap. The output
// equals sorting the concatenation (in shard order) with the serial
// ranker's stable sort: RankLess decides between heads, and when two
// heads compare equal both ways (tied score and tied ID, only possible
// with duplicate candidate IDs) the lower shard index wins, mirroring
// stable-sort order over shard-concatenated input. Emitting straight
// from the heap is O(n log S) and never re-sorts the merged tail —
// selectors consume a ready-ordered list.
//
// The full ranking is merged, not a truncated top-k: Decision.Ranked is
// part of the decision surface (fingerprints, traces, explainability
// funnels all print it), so byte parity requires every position, and
// the heap emits them already in order.
func MergeRanked(shards [][]*core.Candidate) []*core.Candidate {
	nonEmpty, total := 0, 0
	last := -1
	for s, part := range shards {
		if len(part) > 0 {
			nonEmpty++
			total += len(part)
			last = s
		}
	}
	switch nonEmpty {
	case 0:
		return nil
	case 1:
		return shards[last]
	}

	// cursor is one shard's read position in the heap.
	type cursor struct {
		part  []*core.Candidate
		shard int
		pos   int
	}
	less := func(a, b *cursor) bool {
		ca, cb := a.part[a.pos], b.part[b.pos]
		if core.RankLess(ca, cb) {
			return true
		}
		if core.RankLess(cb, ca) {
			return false
		}
		return a.shard < b.shard
	}
	heap := make([]*cursor, 0, nonEmpty)
	for s, part := range shards {
		if len(part) > 0 {
			heap = append(heap, &cursor{part: part, shard: s})
		}
	}
	// Standard binary-heap sift; container/heap would box every cursor
	// through an interface on this hot path.
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	for i := nonEmpty/2 - 1; i >= 0; i-- {
		siftDown(i)
	}

	out := make([]*core.Candidate, 0, total)
	for len(heap) > 0 {
		top := heap[0]
		out = append(out, top.part[top.pos])
		top.pos++
		if top.pos == len(top.part) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return out
}
