package decideshard

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
)

// mergeTable is a minimal core.Table for synthetic merge candidates.
type mergeTable struct{ name string }

func (t mergeTable) Database() string                       { return "db" }
func (t mergeTable) Name() string                           { return t.name }
func (t mergeTable) FullName() string                       { return t.name }
func (t mergeTable) Spec() lst.PartitionSpec                { return lst.PartitionSpec{} }
func (t mergeTable) Mode() lst.WriteMode                    { return lst.CopyOnWrite }
func (t mergeTable) Prop(string) string                     { return "" }
func (t mergeTable) Created() time.Duration                 { return 0 }
func (t mergeTable) LastWrite() time.Duration               { return 0 }
func (t mergeTable) WriteCount() int64                      { return 0 }
func (t mergeTable) FileCount() int                         { return 1 }
func (t mergeTable) TotalBytes() int64                      { return 1 }
func (t mergeTable) Partitions() []string                   { return nil }
func (t mergeTable) LiveFiles() []lst.DataFile              { return nil }
func (t mergeTable) FilesInPartition(string) []lst.DataFile { return nil }

// TestMergeRankedMatchesStableSortProperty drives 500 random cases
// through MergeRanked and checks the defining property: merging
// per-shard stable-sorted rankings equals stable-sorting the shard
// concatenation with core.RankLess. Scores are drawn from a tiny pool
// (deliberate ties, signed zero, infinities) and candidate IDs are
// sometimes duplicated across shards, so the heap's lower-shard
// tie-break — the stable-sort mirror — is exercised, not just the happy
// path of a total order.
func TestMergeRankedMatchesStableSortProperty(t *testing.T) {
	negZero := math.Copysign(0, -1)
	scorePool := []float64{-1.5, 0, negZero, 0.25, 0.25, 2.5, math.Inf(1), math.Inf(-1)}
	for ci := 0; ci < 500; ci++ {
		rng := sim.Child(42, fmt.Sprintf("merge-case-%d", ci))
		shards := rng.IntBetween(1, 9)
		parts := make([][]*core.Candidate, shards)
		var names []string
		for i, n := 0, rng.Intn(48); i < n; i++ {
			var name string
			if len(names) > 0 && rng.Bernoulli(0.15) {
				name = names[rng.Intn(len(names))] // duplicate ID, maybe cross-shard
			} else {
				name = fmt.Sprintf("db%d.t%03d", rng.Intn(4), i)
			}
			names = append(names, name)
			c := &core.Candidate{
				Table: mergeTable{name},
				Score: scorePool[rng.Intn(len(scorePool))],
			}
			s := rng.Intn(shards)
			parts[s] = append(parts[s], c)
		}
		var all []*core.Candidate
		for _, p := range parts {
			all = append(all, p...)
		}
		want := make([]*core.Candidate, len(all))
		copy(want, all)
		sort.SliceStable(want, func(i, j int) bool { return core.RankLess(want[i], want[j]) })
		for _, p := range parts {
			sort.SliceStable(p, func(i, j int) bool { return core.RankLess(p[i], p[j]) })
		}
		got := MergeRanked(parts)
		if len(got) != len(want) {
			t.Fatalf("case %d: merged %d candidates, want %d", ci, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d: position %d: merged %s (%v), stable sort has %s (%v)",
					ci, i, got[i].ID(), got[i].Score, want[i].ID(), want[i].Score)
			}
		}
	}
}

// TestMOOPShardRankEquivalenceProperty checks the ParallelRanker
// factorization of the MOOP over 500 random pools: partitioning by
// core.ShardOf, merging per-shard bounds, ranking each shard against
// them, and k-way-merging must reproduce the serial Rank bit for bit —
// same order, same Float64bits of every score. Trait values span
// adversarial ground (1e±300 magnitudes, negatives, constant columns
// that collapse the min-max span) and weights are NaN-free but include
// zeros and wildly skewed magnitudes before normalization.
func TestMOOPShardRankEquivalenceProperty(t *testing.T) {
	traitPool := []float64{0, 1, -3.5, 1e-300, 1e300, -1e300, 7, 7, 0.125}
	weightPool := []float64{0, 1e-8, 0.5, 1, 1e6}
	for ci := 0; ci < 500; ci++ {
		rng := sim.Child(7, fmt.Sprintf("moop-case-%d", ci))
		nObj := rng.IntBetween(1, 4)
		objectives := make([]core.Objective, nObj)
		sum := 0.0
		raw := make([]float64, nObj)
		for i := range raw {
			raw[i] = weightPool[rng.Intn(len(weightPool))]
			sum += raw[i]
		}
		if sum == 0 {
			raw[0], sum = 1, 1
		}
		for i := range objectives {
			dir := core.Benefit
			if rng.Bernoulli(0.4) {
				dir = core.Cost
			}
			objectives[i] = core.Objective{
				Trait:  core.TraitFunc{TraitName: fmt.Sprintf("t%d", i), Dir: dir},
				Weight: raw[i] / sum,
			}
		}
		ranker := core.MOOPRanker{Objectives: objectives}

		nCands := rng.Intn(60)
		constant := rng.Bernoulli(0.2) // collapse one trait's span to zero
		cands := make([]*core.Candidate, nCands)
		for i := range cands {
			traits := make(map[string]float64, nObj)
			for j := 0; j < nObj; j++ {
				v := traitPool[rng.Intn(len(traitPool))]
				if constant && j == 0 {
					v = 42
				}
				traits[fmt.Sprintf("t%d", j)] = v
			}
			cands[i] = &core.Candidate{
				Table:  mergeTable{fmt.Sprintf("db%d.t%04d", rng.Intn(8), i)},
				Traits: traits,
			}
		}

		type scored struct {
			id   string
			bits uint64
		}
		capture := func(ranked []*core.Candidate) []scored {
			out := make([]scored, len(ranked))
			for i, c := range ranked {
				out[i] = scored{c.ID(), math.Float64bits(c.Score)}
			}
			return out
		}

		serial := capture(ranker.Rank(cands))

		shards := rng.IntBetween(2, 16)
		parts := make([][]*core.Candidate, shards)
		for _, c := range cands {
			s := core.ShardOf(c.Table.FullName(), shards)
			parts[s] = append(parts[s], c)
		}
		stats := make([]any, shards)
		for s, p := range parts {
			stats[s] = ranker.ShardStats(p)
		}
		global := ranker.MergeStats(stats)
		ranked := make([][]*core.Candidate, shards)
		for s, p := range parts {
			ranked[s] = ranker.RankShard(p, global)
		}
		sharded := capture(MergeRanked(ranked))

		if len(sharded) != len(serial) {
			t.Fatalf("case %d: sharded ranked %d, serial %d", ci, len(sharded), len(serial))
		}
		for i := range serial {
			if sharded[i] != serial[i] {
				t.Fatalf("case %d (%d shards, %d objectives): position %d: sharded %s/%016x, serial %s/%016x",
					ci, shards, nObj, i, sharded[i].id, sharded[i].bits, serial[i].id, serial[i].bits)
			}
		}
	}
}
