// Package decideshard is the sharded decide plane: it partitions the
// fleet into S shards with a stable hash on the full table name
// (core.ShardOf — the same mapping the scheduler's GBHr budget shards
// use, so a table's budget shard and decide shard always align) and runs
// candidate generation, the three filter refinement points, observation,
// trait batching, and MOOP scoring per shard on a bounded worker pool.
// A deterministic k-way heap merge then reassembles the global ranking.
//
// # Byte-identical parity
//
// The engine's contract is not "similar decisions faster" but the same
// bytes: for every configuration whose ranker implements
// core.ParallelRanker, Decide returns exactly what core's serial pass
// returns — same funnel counts, same ranked order, same scores, same
// selection and plan. Three properties deliver this:
//
//  1. Candidate partitioning is by table, and every pipeline stage up to
//     ranking is per-candidate, so shard-local filtering/observation/
//     orientation computes exactly the serial values.
//  2. The only cross-candidate coupling — MOOP min-max normalization —
//     factors into per-shard trait extrema merged exactly (min/max has
//     no accumulation error), after which each shard scores its
//     candidates with bit-identical arithmetic (core.ParallelRanker).
//  3. Ranking order is a total order (score desc, candidate ID asc) for
//     unique IDs, so independently sorted shards merge into the exact
//     serial ordering regardless of shard completion order; MergeRanked
//     emits it without re-sorting the merged tail.
//
// Configurations outside the contract — a generator that is neither
// core.ShardedGenerator nor table-local, or a ranker that is not a
// core.ParallelRanker — degrade that stage to the serial path (counted
// in autocomp_decideshard_serial_fallbacks_total) so correctness never
// depends on a component opting in.
//
// # Allocation discipline
//
// The engine is a persistent object: per-shard table partitions,
// candidate partitions, bounds and cursor buffers are scratch pools
// reused across cycles (hit rate in autocomp_decideshard_pool_*_total).
// Candidate and Stats values themselves flow into the Decision — they
// outlive the cycle in reports, retained pools, and traces — so the
// engine pools the buffers that carry them, never the objects.
//
// # Concurrency requirements
//
// Decide serializes itself (an engine runs one cycle at a time), but
// within a cycle the configured Observer, Generator (per-shard calls),
// Filters, and Traits execute concurrently on disjoint candidate sets
// and must be safe for that: anything they share internally (stats
// caches, quota lookups) needs its own synchronization. The changefeed's
// cache and tracker are lock-striped for exactly this fan-out. Shard
// count is fixed for the engine's lifetime; policy hot-reload swaps in a
// new engine between cycles, so shard count only ever changes at a cycle
// boundary.
package decideshard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autocomp/internal/core"
)

// Options parameterizes an Engine.
type Options struct {
	// Shards is the number of decide shards tables hash onto; values
	// <= 1 decide serially.
	Shards int
	// Workers bounds the goroutines running shard work; 0 defaults to
	// min(Shards, GOMAXPROCS). More workers than shards is never useful
	// (work is per-shard) and is capped.
	Workers int
	// Clock, when set, supplies the instants the engine's per-shard
	// timing stats and latency histograms are stamped with — a
	// simulation passes its virtual clock so the metric stream is
	// seed-deterministic; nil means the process wall clock.
	Clock func() time.Duration
}

// procStart anchors the wall-clock fallback for timing stamps.
var procStart = time.Now()

// Engine is a sharded decide plane bound to a fixed shard count. Create
// one with New and attach its Decide method as core.Config.Decider (the
// policy compiler does this for decide_shards > 1). Safe for concurrent
// Decide calls, which serialize on an internal mutex.
type Engine struct {
	shards  int
	workers int
	clock   func() time.Duration

	mu sync.Mutex
	// Scratch pools, reused across cycles (see the package doc).
	tableBuf [][]core.Table
	candBuf  [][]*core.Candidate
	statsBuf []any
	rankBuf  [][]*core.Candidate
	outsBuf  []shardOut
	last     CycleStats
}

// CycleStats is the engine's timing breakdown of its most recent decide
// cycle — the basis for the shard experiment's critical-path projection
// (on a host with fewer cores than shards, wall time cannot show the
// parallel win; max-shard time plus merge time is what wall time becomes
// with enough cores).
type CycleStats struct {
	// Shards is the cycle's shard count (0 = no sharded cycle yet).
	Shards int
	// ShardPipeline is each shard's generate→trait-filter duration;
	// ShardRank each shard's rank-phase duration (zero when the ranker
	// fell back to serial).
	ShardPipeline []time.Duration
	ShardRank     []time.Duration
	// Merge is the k-way merge duration.
	Merge time.Duration
	// ShardCandidates is each shard's generated-candidate count.
	ShardCandidates []int
	// GenerateFallback and RankFallback report serial-path degradations
	// (see the package doc).
	GenerateFallback, RankFallback bool
}

// CriticalPath is the cycle's ideal-parallel decide time: the slowest
// shard's pipeline+rank chain plus the serial merge.
func (cs CycleStats) CriticalPath() time.Duration {
	var max time.Duration
	for s := range cs.ShardPipeline {
		d := cs.ShardPipeline[s]
		if s < len(cs.ShardRank) {
			d += cs.ShardRank[s]
		}
		if d > max {
			max = d
		}
	}
	return max + cs.Merge
}

// LastCycle returns a copy of the most recent sharded cycle's stats.
func (e *Engine) LastCycle() CycleStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	cs := e.last
	cs.ShardPipeline = append([]time.Duration(nil), e.last.ShardPipeline...)
	cs.ShardRank = append([]time.Duration(nil), e.last.ShardRank...)
	cs.ShardCandidates = append([]int(nil), e.last.ShardCandidates...)
	return cs
}

// shardOut is one shard's per-cycle pipeline result.
type shardOut struct {
	generated  int
	afterPre   int
	afterStats int
	afterTrait int
	stats      any
	err        error
}

// New returns an engine with opts applied and defaults filled.
func New(opts Options) *Engine {
	s := opts.Shards
	if s < 1 {
		s = 1
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > s {
		w = s
	}
	if w < 1 {
		w = 1
	}
	return &Engine{shards: s, workers: w, clock: opts.Clock}
}

// now returns the instant timing stats are stamped with: the configured
// clock, or monotonic process wall time.
func (e *Engine) now() time.Duration {
	if e.clock != nil {
		return e.clock()
	}
	return time.Since(procStart)
}

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return e.shards }

// Workers returns the engine's worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// Decide implements core.Decider: one observe→orient→decide pass with
// per-shard fan-out, byte-identical to cfg.DecideSerial() under the
// parity contract in the package doc.
func (e *Engine) Decide(cfg *core.Config) (*core.Decision, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shards <= 1 {
		return cfg.DecideSerial()
	}
	mDecides.Inc()
	mShardsGauge.Set(float64(e.shards))
	mWorkersGauge.Set(float64(e.workers))
	e.last = CycleStats{
		Shards:          e.shards,
		ShardPipeline:   make([]time.Duration, e.shards),
		ShardRank:       make([]time.Duration, e.shards),
		ShardCandidates: make([]int, e.shards),
	}

	d := &core.Decision{At: cfg.Connector.Now()}
	tables := cfg.Connector.Tables()
	parts := e.candParts()
	genFn := e.generatorFor(cfg, tables, parts)

	// Phase A, per shard: generate → pre-filter → observe →
	// stats-filter → orient (trait evaluation batched per shard pass) →
	// trait-filter → ranking summary.
	outs := e.outs()
	pr, parallelRank := cfg.Ranker.(core.ParallelRanker)
	e.runShards(func(s int) {
		started := e.now()
		out := &outs[s]
		cands := genFn(s)
		out.generated = len(cands)
		e.last.ShardCandidates[s] = len(cands)
		mShardCandidates.Observe(float64(len(cands)))

		cands = core.ApplyFilters(cands, cfg.PreFilters)
		out.afterPre = len(cands)
		for _, c := range cands {
			if err := cfg.ObserveCandidate(c); err != nil {
				out.err = err
				return
			}
		}
		cands = core.ApplyFilters(cands, cfg.StatsFilters)
		out.afterStats = len(cands)

		core.Orient(cands, cfg.Traits)
		cands = core.ApplyFilters(cands, cfg.TraitFilters)
		out.afterTrait = len(cands)
		parts[s] = cands
		if parallelRank {
			out.stats = pr.ShardStats(cands)
		}
		e.last.ShardPipeline[s] = e.now() - started
		mShardSeconds.With("pipeline").Observe(e.last.ShardPipeline[s].Seconds())
	})
	for s := range outs {
		if err := outs[s].err; err != nil {
			return nil, err
		}
		d.Generated += outs[s].generated
		d.AfterPreFilters += outs[s].afterPre
		d.AfterStatsFilter += outs[s].afterStats
		d.AfterTraitFilter += outs[s].afterTrait
	}

	// Phase B: rank per shard against exactly-merged global stats, then
	// the deterministic k-way merge.
	if parallelRank {
		stats := e.stats()
		for s := range outs {
			stats[s] = outs[s].stats
		}
		global := pr.MergeStats(stats)
		ranked := e.ranked()
		e.runShards(func(s int) {
			started := e.now()
			ranked[s] = pr.RankShard(parts[s], global)
			e.last.ShardRank[s] = e.now() - started
			mShardSeconds.With("rank").Observe(e.last.ShardRank[s].Seconds())
		})
		started := e.now()
		d.Ranked = MergeRanked(ranked)
		e.last.Merge = e.now() - started
		mMergeSeconds.Observe(e.last.Merge.Seconds())
	} else {
		e.last.RankFallback = true
		mFallbacks.With("rank").Inc()
		all := make([]*core.Candidate, 0, d.AfterTraitFilter)
		for s := range parts {
			all = append(all, parts[s]...)
		}
		d.Ranked = cfg.Ranker.Rank(all)
	}

	d.Selected = cfg.Selector.Select(d.Ranked)
	d.Plan = cfg.Scheduler.Plan(d.Selected)
	return d, nil
}

// generatorFor resolves this cycle's per-shard candidate source, in
// preference order: a ShardedGenerator partitions its own pool (the
// changefeed's retained partitions); a table-local generator runs on the
// engine's table partition; anything else generates serially once and
// the pool is hash-partitioned into parts — set-preserving in every
// case, which is all ranking order depends on.
func (e *Engine) generatorFor(cfg *core.Config, tables []core.Table, parts [][]*core.Candidate) func(int) []*core.Candidate {
	if g, ok := cfg.Generator.(core.ShardedGenerator); ok {
		tp := e.partitionTables(tables)
		return func(s int) []*core.Candidate {
			return g.ShardCandidates(s, e.shards, tp[s])
		}
	}
	if core.GeneratorIsTableLocal(cfg.Generator) {
		tp := e.partitionTables(tables)
		return func(s int) []*core.Candidate {
			return cfg.Generator.Candidates(tp[s])
		}
	}
	e.last.GenerateFallback = true
	mFallbacks.With("generate").Inc()
	all := cfg.Generator.Candidates(tables)
	for _, c := range all {
		s := core.ShardOf(c.Table.FullName(), e.shards)
		parts[s] = append(parts[s], c)
	}
	return func(s int) []*core.Candidate { return parts[s] }
}

// partitionTables splits tables by core.ShardOf into pooled per-shard
// buffers, preserving relative order within each shard.
func (e *Engine) partitionTables(tables []core.Table) [][]core.Table {
	if e.tableBuf == nil {
		e.tableBuf = make([][]core.Table, e.shards)
		mPoolMisses.Inc()
	} else {
		mPoolHits.Inc()
	}
	for s := range e.tableBuf {
		e.tableBuf[s] = e.tableBuf[s][:0]
	}
	for _, t := range tables {
		s := core.ShardOf(t.FullName(), e.shards)
		e.tableBuf[s] = append(e.tableBuf[s], t)
	}
	return e.tableBuf
}

// candParts returns the pooled per-shard candidate partitions, reset.
func (e *Engine) candParts() [][]*core.Candidate {
	if e.candBuf == nil {
		e.candBuf = make([][]*core.Candidate, e.shards)
		mPoolMisses.Inc()
	} else {
		mPoolHits.Inc()
	}
	for s := range e.candBuf {
		e.candBuf[s] = e.candBuf[s][:0]
	}
	return e.candBuf
}

// stats returns the pooled per-shard ranking-summary slice, reset.
func (e *Engine) stats() []any {
	if e.statsBuf == nil {
		e.statsBuf = make([]any, e.shards)
		mPoolMisses.Inc()
	} else {
		mPoolHits.Inc()
	}
	for s := range e.statsBuf {
		e.statsBuf[s] = nil
	}
	return e.statsBuf
}

// ranked returns the pooled per-shard ranked-output slice, reset. The
// ranked slices themselves come from the ranker and flow into the
// Decision; only the slice-of-slices header is pooled.
func (e *Engine) ranked() [][]*core.Candidate {
	if e.rankBuf == nil {
		e.rankBuf = make([][]*core.Candidate, e.shards)
		mPoolMisses.Inc()
	} else {
		mPoolHits.Inc()
	}
	for s := range e.rankBuf {
		e.rankBuf[s] = nil
	}
	return e.rankBuf
}

// outs returns the pooled per-shard pipeline results, reset.
func (e *Engine) outs() []shardOut {
	if e.outsBuf == nil {
		e.outsBuf = make([]shardOut, e.shards)
		mPoolMisses.Inc()
	} else {
		mPoolHits.Inc()
	}
	for s := range e.outsBuf {
		e.outsBuf[s] = shardOut{}
	}
	return e.outsBuf
}

// runShards runs fn(0..shards-1) on the bounded worker pool and waits.
// Shard indices are pulled from an atomic counter so slow shards never
// idle a worker that could take the next one.
func (e *Engine) runShards(fn func(int)) {
	w := e.workers
	if w > e.shards {
		w = e.shards
	}
	if w <= 1 {
		for s := 0; s < e.shards; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1))
				if s >= e.shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}
