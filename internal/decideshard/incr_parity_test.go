package decideshard_test

import (
	"testing"

	"autocomp/internal/core"
	"autocomp/internal/decideshard"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/sim"
)

// TestShardParityIncremental locks the three-way equivalence the
// observation and decide planes promise when composed: a full-scan
// serial pipeline, an incremental serial pipeline (every-commit
// trigger), and an incremental pipeline decided across 4 shards —
// where the feed serves each decide shard from its own retained
// partition via ShardCandidates — must produce byte-identical decisions
// day after day, acting on each so divergence would compound.
func TestShardParityIncremental(t *testing.T) {
	const seed, tables, days = 9, 130, 5
	cfg := testkit.FleetConfig(seed, tables)
	fFull := fleet.New(cfg, sim.NewClock())
	fIncr := fleet.New(cfg, sim.NewClock())
	fShard := fleet.New(cfg, sim.NewClock())

	mkBase := func(f *fleet.Fleet) core.Config {
		return f.MaintenanceConfig(core.TopK{K: 25}, testkit.Model(), maintenance.DefaultPolicy())
	}
	fullSvc, err := core.NewService(mkBase(fFull))
	if err != nil {
		t.Fatal(err)
	}
	incrCfg, _ := fIncr.IncrementalConfig(mkBase(fIncr), fleet.IncrOptions{ReconcileEvery: 4})
	incrSvc, err := core.NewService(incrCfg)
	if err != nil {
		t.Fatal(err)
	}
	shardCfg, _ := fShard.IncrementalConfig(mkBase(fShard),
		fleet.IncrOptions{ReconcileEvery: 4, DecideShards: 4})
	shardCfg.Decider = decideshard.New(decideshard.Options{Shards: 4, Workers: 2}).Decide
	shardSvc, err := core.NewService(shardCfg)
	if err != nil {
		t.Fatal(err)
	}

	for day := 0; day < days; day++ {
		fFull.AdvanceDay()
		fIncr.AdvanceDay()
		fShard.AdvanceDay()
		dFull, err := fullSvc.Decide()
		if err != nil {
			t.Fatalf("day %d: full scan: %v", day, err)
		}
		dIncr, err := incrSvc.Decide()
		if err != nil {
			t.Fatalf("day %d: incremental: %v", day, err)
		}
		dShard, err := shardSvc.Decide()
		if err != nil {
			t.Fatalf("day %d: sharded incremental: %v", day, err)
		}
		fpFull := testkit.DecisionFingerprint(dFull)
		fpIncr := testkit.DecisionFingerprint(dIncr)
		fpShard := testkit.DecisionFingerprint(dShard)
		if fpIncr != fpFull {
			t.Fatalf("day %d: incremental diverged from full scan\nfull:\n%s\nincremental:\n%s",
				day, testkit.Head(fpFull, 25), testkit.Head(fpIncr, 25))
		}
		if fpShard != fpIncr {
			t.Fatalf("day %d: sharded incremental diverged\nincremental:\n%s\nsharded:\n%s",
				day, testkit.Head(fpIncr, 25), testkit.Head(fpShard, 25))
		}
		if _, err := fullSvc.Act(dFull); err != nil {
			t.Fatalf("day %d: act full: %v", day, err)
		}
		if _, err := incrSvc.Act(dIncr); err != nil {
			t.Fatalf("day %d: act incremental: %v", day, err)
		}
		if _, err := shardSvc.Act(dShard); err != nil {
			t.Fatalf("day %d: act sharded: %v", day, err)
		}
	}
}
