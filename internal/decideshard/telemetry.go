package decideshard

import "autocomp/internal/telemetry"

// Runtime metrics of the sharded decide plane. Like the core pipeline's
// families, instrumentation is strictly passive: it records what the
// engine did and never influences a decision, so parity with the serial
// pass holds with or without a scraper attached.
var (
	mDecides = telemetry.Default().Counter(
		"autocomp_decideshard_decides_total",
		"Decide cycles run by the sharded engine.")
	mShardSeconds = telemetry.Default().HistogramVec(
		"autocomp_decideshard_shard_seconds",
		"Per-shard wall time of one decide cycle, by stage: the "+
			"generate-through-trait-filter pipeline and the rank pass.",
		telemetry.ExpBuckets(0.0001, 4, 10),
		"stage")
	mShardCandidates = telemetry.Default().Histogram(
		"autocomp_decideshard_shard_candidates",
		"Candidates one shard generated in one decide cycle.",
		telemetry.ExpBuckets(1, 4, 12))
	mMergeSeconds = telemetry.Default().Histogram(
		"autocomp_decideshard_merge_seconds",
		"Wall time of the deterministic k-way merge of ranked shards.",
		telemetry.ExpBuckets(0.00001, 4, 10))
	mShardsGauge = telemetry.Default().Gauge(
		"autocomp_decideshard_shards",
		"Decide shards of the most recently deciding engine.")
	mWorkersGauge = telemetry.Default().Gauge(
		"autocomp_decideshard_workers",
		"Worker-pool size of the most recently deciding engine.")
	mPoolHits = telemetry.Default().Counter(
		"autocomp_decideshard_pool_hits_total",
		"Per-shard scratch buffers reused without reallocation.")
	mPoolMisses = telemetry.Default().Counter(
		"autocomp_decideshard_pool_misses_total",
		"Per-shard scratch buffers that had to be (re)allocated.")
	mFallbacks = telemetry.Default().CounterVec(
		"autocomp_decideshard_serial_fallbacks_total",
		"Decide stages that fell back to the serial path, by reason: "+
			"'generate' (generator neither sharded nor table-local) or "+
			"'rank' (ranker does not factor across shards).",
		"stage")
)
