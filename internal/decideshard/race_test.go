package decideshard_test

// Concurrency battery for the sharded decide plane, meant to run under
// -race: commit events and table drops hammer the striped changefeed
// from writer goroutines while sharded decide cycles run, and a mid-run
// policy hot-reload swaps in a fresh feed and engine with a different
// shard count at a cycle boundary — the only point shard counts may
// change, because recompiling a policy builds both from scratch.

import (
	"sync"
	"sync/atomic"
	"testing"

	"autocomp/internal/changefeed"
	"autocomp/internal/core"
	"autocomp/internal/decideshard"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/sim"
)

func TestShardDecideRaceConcurrentFeed(t *testing.T) {
	f := fleet.New(testkit.FleetConfig(5, 120), sim.NewClock())

	// mk mirrors a policy compile: a fresh striped feed and a fresh
	// decide engine, partition counts aligned.
	mk := func(shards int) (*core.Service, *changefeed.Feed) {
		cfg, feed := f.IncrementalConfig(
			f.MaintenanceConfig(core.TopK{K: 20}, testkit.Model(), maintenance.DefaultPolicy()),
			fleet.IncrOptions{ReconcileEvery: 3, DecideShards: shards})
		cfg.Decider = decideshard.New(decideshard.Options{Shards: shards, Workers: 2}).Decide
		svc, err := core.NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return svc, feed
	}
	svc, feed := mk(4)
	var cur atomic.Pointer[changefeed.Feed]
	cur.Store(feed)

	tables := fleet.Connector{Fleet: f}.Tables()
	if len(tables) == 0 {
		t.Fatal("no tables")
	}

	// Writer goroutines: synthetic commit events (and the occasional
	// drop) against whichever feed is current, racing the decide cycles
	// below and each other across tracker/cache stripes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.Child(int64(w+1), "race-hammer-writer")
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tb := tables[rng.Intn(len(tables))]
				fd := cur.Load()
				fd.Bus.Publish(changefeed.Event{
					Table: tb.FullName(), Ref: tb, Version: i, Commits: 1, Bytes: 4096,
				})
				if rng.Bernoulli(0.02) {
					fd.Bus.Publish(changefeed.Event{Table: tb.FullName(), Dropped: true})
				}
			}
		}(w)
	}

	for day := 0; day < 10; day++ {
		if day == 5 {
			// Mid-run hot-reload: new shard count takes effect here and
			// only here. The old feed keeps absorbing stray events until
			// the writers observe the swap; it is simply garbage after.
			svc, feed = mk(8)
			cur.Store(feed)
		}
		f.AdvanceDay()
		d, err := svc.Decide()
		if err != nil {
			t.Fatalf("day %d: decide: %v", day, err)
		}
		// Decisions race the event stream, so their content is not
		// reproducible — but they must stay well-formed: ranked order
		// intact, selection within the ranking, funnel monotone.
		for i := 1; i < len(d.Ranked); i++ {
			if core.RankLess(d.Ranked[i], d.Ranked[i-1]) {
				t.Fatalf("day %d: ranked order violated at position %d", day, i)
			}
		}
		if len(d.Selected) > len(d.Ranked) {
			t.Fatalf("day %d: selected %d > ranked %d", day, len(d.Selected), len(d.Ranked))
		}
		if d.AfterTraitFilter > d.Generated {
			t.Fatalf("day %d: funnel not monotone: %d survived of %d generated",
				day, d.AfterTraitFilter, d.Generated)
		}
		if _, err := svc.Act(d); err != nil {
			t.Fatalf("day %d: act: %v", day, err)
		}
	}
	close(stop)
	wg.Wait()
	if feed.Tracker.Events() == 0 {
		t.Fatal("tracker saw no events")
	}
}
