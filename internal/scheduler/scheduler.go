// Package scheduler is AutoComp's concurrent execution plane: it takes
// the ranked, selected candidates a core.Service decided on and runs them
// on a pool of W workers over S budget shards, instead of the serial
// one-after-another loop of the act phase.
//
// The plane models what a production compaction fleet actually contends
// with (§4.4, §7; see also "Online Bigtable Merge Compaction",
// arXiv:1407.3008, for scheduling merges under resource constraints):
//
//   - a priority job queue fed by the ranked plan, with linear aging so a
//     low-priority table that keeps losing to fresh high-priority work
//     still runs eventually (no starvation);
//   - per-table exclusive leases — two jobs never touch one table
//     concurrently, the discipline that produced zero cluster-side
//     conflicts in Table 1;
//   - optimistic-concurrency commit: a job records the table's snapshot
//     version when it starts and re-reads it at commit time; if live
//     writers advanced the table past the staleness bound, the job
//     conflicts and retries with bounded exponential backoff;
//   - per-shard GBHr budgets with backpressure: tables hash onto S budget
//     shards, and once a shard's spend reaches its budget mid-cycle its
//     remaining jobs are deferred to the next cycle;
//   - a Clock abstraction so the identical Pool state machine runs
//     deterministically on sim.Clock/sim.EventQueue (simulated service
//     times, reproducible from a seed) or on wall-clock goroutines.
//
// The Pool itself is a single-threaded state machine; the drivers in
// sim.go and real.go own synchronization.
package scheduler

import (
	"fmt"
	"sort"
	"time"

	"autocomp/internal/compaction"
	"autocomp/internal/core"
	"autocomp/internal/sim"
)

// Clock abstracts the pool's notion of time: virtual (sim.Clock) for
// deterministic simulation, wall (WallClock) for the real path.
type Clock interface {
	Now() time.Duration
}

// WallClock implements Clock over real time, as an offset from its
// construction instant.
type WallClock struct{ epoch time.Time }

// NewWallClock returns a wall clock whose Now starts at zero.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() time.Duration { return time.Since(w.epoch) }

// Versioned is implemented by tables that expose a monotonically
// increasing snapshot/commit version. Tables that do not implement it are
// treated as never advancing (no commit conflicts arise).
type Versioned interface {
	Version() int64
}

// Config parameterizes a Pool.
type Config struct {
	// Workers is the number of concurrent job slots W (min 1).
	Workers int
	// Shards is the number of budget shards S tables hash onto (min 1).
	Shards int
	// ShardBudgetGBHr is each shard's per-cycle compute budget.
	// Admission reserves each in-flight job's estimated cost, so a
	// burst of dispatches cannot overrun the budget by more than one
	// job per shard; once committed spend reaches the budget, the
	// shard's remaining jobs are deferred to the next cycle
	// (backpressure). Zero or negative means unlimited.
	ShardBudgetGBHr float64

	// StalenessBound is how many versions a table may advance between
	// job start and commit before the commit aborts and retries. The
	// default 0 means any concurrent writer commit forces a retry;
	// negative disables the check entirely.
	StalenessBound int64
	// MaxAttempts bounds retries per job (total attempts; min 1). Zero
	// means DefaultMaxAttempts.
	MaxAttempts int
	// RetryBase and RetryMax bound the exponential backoff between
	// attempts: attempt n waits min(RetryBase·2^(n−1), RetryMax) with
	// ±20% deterministic jitter. Zero values take the defaults.
	RetryBase time.Duration
	RetryMax  time.Duration

	// AgingRatePerHour is how many priority points a queued job gains
	// per hour of waiting (linear aging). Zero means DefaultAgingRate;
	// negative disables aging.
	AgingRatePerHour float64

	// ServiceTime models how long a job occupies its worker before it is
	// ready to commit. Nil uses EstimatedServiceTime with
	// DefaultExecutorMemoryGB.
	ServiceTime func(*core.Candidate) time.Duration

	// OnTerminal, when set, is called each time a job reaches a terminal
	// state (done, conflicted, deferred, failed). Deployments that drive
	// the pool directly (RunReal, custom drivers) use it to settle
	// per-job bookkeeping as it happens — e.g. re-dirtying a conflicted
	// table in the incremental observation plane's tracker without
	// waiting for a report fold. It runs inside the pool's
	// synchronization domain (under the driver lock on the real path)
	// and must not call back into the pool.
	OnTerminal func(*Job)

	// Seed drives the deterministic backoff jitter.
	Seed int64
}

// Defaults.
const (
	// DefaultMaxAttempts is the retry budget when Config.MaxAttempts is
	// unset.
	DefaultMaxAttempts = 4
	// DefaultRetryBase is the first backoff window when Config.RetryBase
	// is unset.
	DefaultRetryBase = 30 * time.Second
	// DefaultRetryMax caps the exponential backoff when Config.RetryMax
	// is unset.
	DefaultRetryMax = 8 * time.Minute
	// DefaultAgingRate is the priority points a queued job gains per
	// hour when Config.AgingRatePerHour is unset.
	DefaultAgingRate = 1.0
	// DefaultExecutorMemoryGB prices service times from the
	// compute_cost_gbhr trait when no ServiceTime is configured.
	DefaultExecutorMemoryGB = 64.0
	// MinServiceTime floors modeled service times: even a trivial job
	// pays scheduling and startup latency.
	MinServiceTime = 30 * time.Second
)

func (cfg Config) withDefaults() Config {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.AgingRatePerHour == 0 {
		cfg.AgingRatePerHour = DefaultAgingRate
	} else if cfg.AgingRatePerHour < 0 {
		cfg.AgingRatePerHour = 0
	}
	if cfg.ServiceTime == nil {
		cfg.ServiceTime = EstimatedServiceTime(DefaultExecutorMemoryGB)
	}
	return cfg
}

// EstimatedServiceTime derives a job's service time from its decide-time
// compute_cost_gbhr trait: GBHr over the executor memory yields hours of
// occupancy, floored at MinServiceTime.
func EstimatedServiceTime(executorMemoryGB float64) func(*core.Candidate) time.Duration {
	if executorMemoryGB <= 0 {
		executorMemoryGB = DefaultExecutorMemoryGB
	}
	return func(c *core.Candidate) time.Duration {
		gbhr := c.Trait(core.ComputeCost{}.Name())
		d := time.Duration(gbhr / executorMemoryGB * float64(time.Hour))
		if d < MinServiceTime {
			d = MinServiceTime
		}
		return d
	}
}

// Status is a job's lifecycle state.
type Status int

// Job states. Queued and Running are transient; the rest are terminal
// for the cycle.
const (
	// StatusQueued means the job awaits dispatch (or a backoff window).
	StatusQueued Status = iota
	// StatusRunning means the job occupies a worker slot.
	StatusRunning
	// StatusDone means the job committed (or its runner skipped it).
	StatusDone
	// StatusConflicted means the job exhausted its attempts on commit
	// conflicts.
	StatusConflicted
	// StatusDeferred means the job's shard ran out of budget mid-cycle
	// (backpressure): it never ran and should re-enter next cycle.
	StatusDeferred
	// StatusFailed means the runner reported an error.
	StatusFailed
)

// String renders the status name.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusConflicted:
		return "conflicted"
	case StatusDeferred:
		return "deferred"
	case StatusFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Job is one scheduled work unit wrapping a selected candidate.
type Job struct {
	Candidate *core.Candidate
	// Shard is the budget shard the job's table hashes onto.
	Shard int
	// BasePriority comes from rank order at submission (higher = runs
	// earlier); aging adds to it while the job waits.
	BasePriority float64
	// Status is the job's current lifecycle state.
	Status Status
	// Attempts counts execution attempts (including the successful one).
	Attempts int
	// Result is the executed outcome (terminal states only).
	Result compaction.Result

	// Enqueued, Started, Finished are pool-clock instants; Waited is the
	// total time spent queued across attempts.
	Enqueued time.Duration
	Started  time.Duration
	Finished time.Duration
	Waited   time.Duration

	seq          int64
	readyAt      time.Duration
	startVersion int64
	queuedSince  time.Duration
	// estCost is the decide-time compute_cost_gbhr estimate, reserved
	// against the shard budget while the job is in flight.
	estCost float64
	// wastedGBHr accumulates the cost of commit-aborted attempts: the
	// work ran for its full service time and was thrown away, so it
	// still burns budget (the same convention as the two-phase
	// executor, which charges GBHr on conflicted rewrites).
	wastedGBHr float64
}

// key is the time-independent priority sort key. Comparing
// base + rate·(now − enqueued) across jobs is equivalent to comparing
// base − rate·enqueued, so linear aging never needs re-sorting.
func (j *Job) key(rate float64) float64 {
	return j.BasePriority - rate*j.Enqueued.Hours()
}

// Stats summarizes one drained cycle.
type Stats struct {
	Workers   int
	Shards    int
	Submitted int

	Done       int
	Skipped    int // runner reported nothing to do
	Conflicted int // terminal: attempts exhausted
	Deferred   int // shard budget backpressure
	Failed     int

	// Conflicts counts every aborted commit; Retries counts the aborts
	// that were re-queued (Conflicts − terminal conflict aborts).
	Conflicts int
	Retries   int

	// Makespan is first-dispatch to last-completion on the pool clock.
	Makespan time.Duration
	// BusyTime sums service time across workers; utilization is
	// BusyTime / (Workers × Makespan).
	BusyTime time.Duration
	// TotalWait sums queue waiting time across jobs and attempts.
	TotalWait time.Duration

	// MaxQueueDepth and MeanQueueDepth sample the pending-queue length
	// at every dispatch.
	MaxQueueDepth  int
	MeanQueueDepth float64
	depthSum       float64
	depthSamples   int

	// MaxWorkersBusy is the peak number of jobs in flight at once
	// (bounded by Workers). Per-table concurrency is always ≤ 1 — the
	// lease manager panics on a violation.
	MaxWorkersBusy int

	// SpentGBHr is committed compute per shard.
	SpentGBHr []float64
}

// Utilization returns BusyTime over total worker-time.
func (s Stats) Utilization() float64 {
	if s.Makespan <= 0 || s.Workers <= 0 {
		return 0
	}
	return s.BusyTime.Hours() / (float64(s.Workers) * s.Makespan.Hours())
}

// TotalSpentGBHr sums shard spend.
func (s Stats) TotalSpentGBHr() float64 {
	var t float64
	for _, v := range s.SpentGBHr {
		t += v
	}
	return t
}

// String renders the one-line operator summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"scheduler: %d jobs on %dw/%ds: done=%d skipped=%d conflicted=%d deferred=%d failed=%d | conflicts=%d retries=%d | makespan=%v util=%.0f%% qdepth max=%d mean=%.1f",
		s.Submitted, s.Workers, s.Shards, s.Done, s.Skipped, s.Conflicted,
		s.Deferred, s.Failed, s.Conflicts, s.Retries,
		s.Makespan.Round(time.Second), 100*s.Utilization(),
		s.MaxQueueDepth, s.MeanQueueDepth)
}

// Pool is the scheduler state machine. It is not safe for concurrent use;
// the sim driver is single-threaded and the real driver wraps it in a
// mutex.
type Pool struct {
	cfg    Config
	clock  Clock
	runner core.Runner
	rng    *sim.RNG

	pending  []*Job // sorted by key desc, seq asc
	jobs     []*Job // submission order
	leases   map[string]*Job
	running  int
	spent    []float64
	reserved []float64 // estimated GBHr of in-flight jobs, per shard
	inFlight []int     // in-flight job count per shard
	seq      int64

	started    bool
	firstStart time.Duration
	lastFinish time.Duration
	stats      Stats

	// notify, when set by a driver, is called after Submit enqueues new
	// jobs so idle workers pick them up mid-run.
	notify func()
}

// New builds a pool that executes jobs with runner and reads time from
// clock.
func New(cfg Config, runner core.Runner, clock Clock) *Pool {
	cfg = cfg.withDefaults()
	return &Pool{
		cfg:      cfg,
		clock:    clock,
		runner:   runner,
		rng:      sim.NewRNG(cfg.Seed),
		leases:   make(map[string]*Job),
		spent:    make([]float64, cfg.Shards),
		reserved: make([]float64, cfg.Shards),
		inFlight: make([]int, cfg.Shards),
		stats:    Stats{Workers: cfg.Workers, Shards: cfg.Shards},
	}
}

// ShardOf returns the budget shard a table hashes onto. It delegates to
// core.ShardOf, the system-wide shard mapping, so budget shards and
// decide shards always align for a given table.
func ShardOf(fullName string, shards int) int {
	return core.ShardOf(fullName, shards)
}

// Submit enqueues the ranked, selected candidates. Rank order sets base
// priority: the first candidate gets the highest.
func (p *Pool) Submit(selected []*core.Candidate) {
	now := p.clock.Now()
	for i, c := range selected {
		p.seq++
		j := &Job{
			Candidate:    c,
			Shard:        ShardOf(c.Table.FullName(), p.cfg.Shards),
			BasePriority: float64(len(selected) - i),
			Enqueued:     now,
			queuedSince:  now,
			seq:          p.seq,
		}
		if est := c.Trait(core.ComputeCost{}.Name()); est > 0 {
			j.estCost = est
		}
		p.jobs = append(p.jobs, j)
		p.enqueue(j)
		p.stats.Submitted++
		mSubmitted.Inc()
	}
	mQueueDepth.Set(float64(len(p.pending)))
	if len(selected) > 0 && p.notify != nil {
		p.notify()
	}
}

// enqueue inserts j into pending, keeping key-desc, seq-asc order.
func (p *Pool) enqueue(j *Job) {
	j.Status = StatusQueued
	rate := p.cfg.AgingRatePerHour
	i := sort.Search(len(p.pending), func(i int) bool {
		ki, kj := p.pending[i].key(rate), j.key(rate)
		if ki != kj {
			return ki < kj
		}
		return p.pending[i].seq > j.seq
	})
	p.pending = append(p.pending, nil)
	copy(p.pending[i+1:], p.pending[i:])
	p.pending[i] = j
}

// next pops the highest-priority runnable job, or nil. A job is runnable
// when its backoff window has passed, no lease is held on its table, and
// its shard still has budget. Jobs whose shard is exhausted are deferred
// on the spot (backpressure). earliestReady reports the soonest backoff
// expiry among the jobs skipped for backoff (0 when none), so drivers
// know when to wake.
func (p *Pool) next(now time.Duration) (j *Job, earliestReady time.Duration) {
	for i := 0; i < len(p.pending); i++ {
		cand := p.pending[i]
		if p.shardExhausted(cand.Shard) {
			// Backpressure: this shard is out of budget for the cycle.
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			i--
			cand.Status = StatusDeferred
			cand.Finished = now
			cand.Result = compaction.Result{
				Table:   cand.Candidate.Table.FullName(),
				Skipped: true,
				// Conflict-aborted attempts before the deferral already
				// burned budget; keep the report consistent with spend.
				GBHr: cand.wastedGBHr,
			}
			p.stats.Deferred++
			mDeferrals.Inc()
			mJobs.With("deferred").Inc()
			// Deferral is a terminal outcome: it closes the makespan
			// window like any other finish (a retried job can be
			// deferred after the last successful commit).
			p.noteFinish(cand, now)
			continue
		}
		if cand.readyAt > now {
			if earliestReady == 0 || cand.readyAt < earliestReady {
				earliestReady = cand.readyAt
			}
			continue
		}
		if _, held := p.leases[cand.Candidate.Table.FullName()]; held {
			mLeaseWaits.Inc()
			continue
		}
		if !p.shardAdmits(cand) {
			// Reserved in-flight estimates would bust the budget: the job
			// stays queued and is reconsidered when a commit releases its
			// reservation.
			continue
		}
		p.pending = append(p.pending[:i], p.pending[i+1:]...)
		return cand, earliestReady
	}
	return nil, earliestReady
}

func (p *Pool) shardExhausted(shard int) bool {
	return p.cfg.ShardBudgetGBHr > 0 && p.spent[shard] >= p.cfg.ShardBudgetGBHr
}

// shardAdmits applies reservation-aware admission: committed spend plus
// the estimates of in-flight jobs plus this job's estimate must fit the
// budget. A shard with nothing in flight always admits one job while
// budget remains (progress guarantee — gated on the integer in-flight
// count, not the float reservation sum, which can carry rounding
// residue), so overshoot is bounded by one job per shard rather than one
// per worker.
func (p *Pool) shardAdmits(j *Job) bool {
	if p.cfg.ShardBudgetGBHr <= 0 {
		return true
	}
	if p.inFlight[j.Shard] == 0 {
		return true // shardExhausted already ruled out spent ≥ budget
	}
	return p.spent[j.Shard]+p.reserved[j.Shard]+j.estCost <= p.cfg.ShardBudgetGBHr
}

// dispatch marks j running under its table lease and records the start
// snapshot version for the commit-time staleness check.
func (p *Pool) dispatch(j *Job, now time.Duration) {
	name := j.Candidate.Table.FullName()
	if prev, held := p.leases[name]; held {
		panic(fmt.Sprintf("scheduler: lease violation on %s (held by job %d)", name, prev.seq))
	}
	p.leases[name] = j
	p.reserved[j.Shard] += j.estCost
	p.inFlight[j.Shard]++
	p.running++
	if p.running > p.stats.MaxWorkersBusy {
		p.stats.MaxWorkersBusy = p.running
	}
	j.Status = StatusRunning
	j.Attempts++
	j.Started = now
	j.Waited += now - j.queuedSince
	p.stats.TotalWait += now - j.queuedSince
	mWaitTime.Observe((now - j.queuedSince).Seconds())
	mWorkersBusy.Set(float64(p.running))
	mQueueDepth.Set(float64(len(p.pending)))
	j.startVersion = p.versionOf(j.Candidate.Table)
	if !p.started {
		p.started = true
		p.firstStart = now
	}
	p.stats.depthSum += float64(len(p.pending))
	p.stats.depthSamples++
	if len(p.pending) > p.stats.MaxQueueDepth {
		p.stats.MaxQueueDepth = len(p.pending)
	}
}

func (p *Pool) versionOf(t core.Table) int64 {
	if v, ok := t.(Versioned); ok {
		return v.Version()
	}
	return 0
}

// commit finishes a job whose service time elapsed: it re-reads the
// table's snapshot version and either retries (writers advanced the table
// past the staleness bound) or executes the runner and charges the shard.
// It returns true when the job reached a terminal state.
func (p *Pool) commit(j *Job, now time.Duration) bool {
	name := j.Candidate.Table.FullName()
	if p.leases[name] != j {
		panic(fmt.Sprintf("scheduler: commit without lease on %s", name))
	}
	delete(p.leases, name)
	p.running--
	p.reserved[j.Shard] -= j.estCost
	p.inFlight[j.Shard]--
	if p.inFlight[j.Shard] <= 0 || p.reserved[j.Shard] < 0 {
		// Zero the reservation when the shard empties: interleaved float
		// adds and subtracts can leave residue that would otherwise
		// poison the admission arithmetic.
		p.reserved[j.Shard] = 0
	}
	p.stats.BusyTime += now - j.Started

	mWorkersBusy.Set(float64(p.running))

	if p.cfg.StalenessBound >= 0 {
		if adv := p.versionOf(j.Candidate.Table) - j.startVersion; adv > p.cfg.StalenessBound {
			p.stats.Conflicts++
			mConflicts.Inc()
			// The aborted attempt ran for its full service time: its
			// estimated cost is burned budget, not a free pass.
			j.wastedGBHr += j.estCost
			p.spent[j.Shard] += j.estCost
			mSchedSpend.Add(j.estCost)
			if j.Attempts >= p.cfg.MaxAttempts {
				j.Status = StatusConflicted
				mJobs.With("conflicted").Inc()
				j.Finished = now
				j.Result = compaction.Result{
					Table:         name,
					Conflict:      true,
					ConflictCount: j.Attempts,
					GBHr:          j.wastedGBHr,
				}
				p.noteFinish(j, now)
				return true
			}
			p.stats.Retries++
			mRetries.Inc()
			j.readyAt = now + p.backoff(j.Attempts)
			j.queuedSince = now
			p.enqueue(j)
			return false
		}
	}

	res := p.runner.Run(j.Candidate)
	p.spent[j.Shard] += res.GBHr
	mSchedSpend.Add(res.GBHr)
	// Earlier aborted attempts were already charged to the shard; fold
	// them into the job's reported cost so Report.ActualGBHr sees the
	// retries' wasted work too.
	res.GBHr += j.wastedGBHr
	j.Result = res
	j.Finished = now
	switch {
	case res.Err != nil:
		j.Status = StatusFailed
		p.stats.Failed++
		mJobs.With("failed").Inc()
	case res.Conflict:
		j.Status = StatusConflicted
		p.stats.Conflicts++
		mConflicts.Inc()
		mJobs.With("conflicted").Inc()
	case res.Skipped:
		j.Status = StatusDone
		p.stats.Skipped++
		mJobs.With("skipped").Inc()
	default:
		j.Status = StatusDone
		p.stats.Done++
		mJobs.With("done").Inc()
	}
	p.noteFinish(j, now)
	return true
}

// noteFinish records a terminal transition: it closes the makespan
// window and notifies the terminal-state observer.
func (p *Pool) noteFinish(j *Job, now time.Duration) {
	if now > p.lastFinish {
		p.lastFinish = now
	}
	if p.cfg.OnTerminal != nil {
		p.cfg.OnTerminal(j)
	}
}

// backoff returns the wait before attempt n+1: exponential in the attempt
// count, capped, with ±20% deterministic jitter.
func (p *Pool) backoff(attempt int) time.Duration {
	d := p.cfg.RetryBase
	for i := 1; i < attempt && d < p.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > p.cfg.RetryMax {
		d = p.cfg.RetryMax
	}
	return time.Duration(p.rng.Jitter(float64(d), 0.2))
}

// serviceTime models j's worker occupancy.
func (p *Pool) serviceTime(j *Job) time.Duration {
	d := p.cfg.ServiceTime(j.Candidate)
	if d <= 0 {
		d = MinServiceTime
	}
	return d
}

// finalize closes the books on a drained cycle: terminal-conflict and
// queue-depth aggregates, makespan, and the per-shard spend snapshot.
func (p *Pool) finalize() Stats {
	p.stats.Conflicted = 0
	for _, j := range p.jobs {
		if j.Status == StatusConflicted {
			p.stats.Conflicted++
		}
	}
	if p.started {
		p.stats.Makespan = p.lastFinish - p.firstStart
		mMakespan.Observe(p.stats.Makespan.Seconds())
		mOccupancy.Observe(p.stats.Utilization())
	}
	if p.stats.depthSamples > 0 {
		p.stats.MeanQueueDepth = p.stats.depthSum / float64(p.stats.depthSamples)
	}
	p.stats.SpentGBHr = append([]float64(nil), p.spent...)
	return p.stats
}

// Jobs returns every submitted job in submission order (inspect after the
// drivers drain the pool).
func (p *Pool) Jobs() []*Job { return p.jobs }

// Idle reports whether the pool has neither queued nor running jobs.
func (p *Pool) Idle() bool { return len(p.pending) == 0 && p.running == 0 }

// FoldInto adds every terminal job's outcome to a core report, so the
// scheduled act phase feeds the same estimator/feedback loop as the
// serial one.
func (p *Pool) FoldInto(rep *core.Report) {
	for _, j := range p.jobs {
		switch j.Status {
		case StatusQueued, StatusRunning:
			continue
		}
		rep.AddResult(j.Candidate, j.Result)
	}
}
