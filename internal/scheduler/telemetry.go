package scheduler

import (
	"autocomp/internal/telemetry"
)

// Runtime metrics of the execution plane. Multiple pools in one process
// share these families (per-cycle sub-pools of a daemon, concurrent
// tests); counters aggregate across pools and gauges reflect the most
// recent writer. Recording is passive — the pool's state machine never
// reads a metric back.
var (
	mSubmitted = telemetry.Default().Counter(
		"autocomp_sched_jobs_submitted_total",
		"Jobs submitted to execution pools.")
	mJobs = telemetry.Default().CounterVec(
		"autocomp_sched_jobs_total",
		"Jobs reaching a terminal state, by status.",
		"status")
	mConflicts = telemetry.Default().Counter(
		"autocomp_sched_commit_conflicts_total",
		"Optimistic-concurrency commit aborts (writers advanced the table).")
	mRetries = telemetry.Default().Counter(
		"autocomp_sched_commit_retries_total",
		"Commit aborts that re-queued the job with backoff.")
	mLeaseWaits = telemetry.Default().Counter(
		"autocomp_sched_lease_waits_total",
		"Dispatch passes skipping a runnable job because its table lease was held.")
	mQueueDepth = telemetry.Default().Gauge(
		"autocomp_sched_queue_depth",
		"Pending jobs in the most recently active pool.")
	mWorkersBusy = telemetry.Default().Gauge(
		"autocomp_sched_workers_busy",
		"Jobs in flight in the most recently active pool.")
	mWaitTime = telemetry.Default().Histogram(
		"autocomp_sched_job_wait_seconds",
		"Pool-clock time a job waited in the queue before each dispatch.",
		[]float64{1, 10, 60, 300, 900, 3600, 14400, 86400})
	mMakespan = telemetry.Default().Histogram(
		"autocomp_sched_cycle_makespan_seconds",
		"Pool-clock makespan of drained cycles (first dispatch to last completion).",
		[]float64{60, 300, 900, 1800, 3600, 7200, 14400, 43200, 86400})
	mOccupancy = telemetry.Default().Histogram(
		"autocomp_sched_cycle_utilization_ratio",
		"Worker occupancy of drained cycles (busy time over worker-time).",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
	mSchedSpend = telemetry.Default().Counter(
		"autocomp_sched_gbhr_spent_total",
		"Compute charged against shard budgets (GB-hours), wasted attempts included.")
	mDeferrals = telemetry.Default().Counter(
		"autocomp_sched_budget_deferrals_total",
		"Jobs pushed to the next cycle by shard-budget backpressure.")
)
