package scheduler

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autocomp/internal/compaction"
	"autocomp/internal/core"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
)

// memTable is a minimal core.Table with an atomic snapshot version, so
// writer goroutines can race commits in the -race tests.
type memTable struct {
	name    string
	version atomic.Int64
}

func (t *memTable) Database() string                       { return "db" }
func (t *memTable) Name() string                           { return t.name }
func (t *memTable) FullName() string                       { return "db." + t.name }
func (t *memTable) Spec() lst.PartitionSpec                { return lst.PartitionSpec{} }
func (t *memTable) Mode() lst.WriteMode                    { return lst.CopyOnWrite }
func (t *memTable) Prop(string) string                     { return "" }
func (t *memTable) Created() time.Duration                 { return 0 }
func (t *memTable) LastWrite() time.Duration               { return 0 }
func (t *memTable) WriteCount() int64                      { return 0 }
func (t *memTable) FileCount() int                         { return 100 }
func (t *memTable) TotalBytes() int64                      { return 1 << 30 }
func (t *memTable) Partitions() []string                   { return nil }
func (t *memTable) LiveFiles() []lst.DataFile              { return nil }
func (t *memTable) FilesInPartition(string) []lst.DataFile { return nil }
func (t *memTable) Version() int64                         { return t.version.Load() }

// cand builds a candidate whose compute_cost_gbhr trait yields the given
// service time under EstimatedServiceTime(64).
func cand(t *memTable, serviceHours float64) *core.Candidate {
	return &core.Candidate{
		Table:  t,
		Traits: map[string]float64{core.ComputeCost{}.Name(): serviceHours * 64},
	}
}

// okRunner succeeds instantly with the given GBHr per job.
func okRunner(gbhr float64) core.Runner {
	return core.RunnerFunc(func(c *core.Candidate) compaction.Result {
		return compaction.Result{
			Table:        c.Table.FullName(),
			FilesRemoved: 10,
			FilesAdded:   1,
			GBHr:         gbhr,
		}
	})
}

func newSimPool(cfg Config, r core.Runner) (*Pool, *sim.EventQueue) {
	clock := sim.NewClock()
	q := sim.NewEventQueue(clock)
	return New(cfg, r, clock), q
}

// assertNoTableOverlap checks the acceptance invariant: no two jobs of
// the same table have overlapping [Started, Finished) execution windows.
func assertNoTableOverlap(t *testing.T, jobs []*Job) {
	t.Helper()
	byTable := map[string][]*Job{}
	for _, j := range jobs {
		if j.Attempts == 0 {
			continue
		}
		name := j.Candidate.Table.FullName()
		byTable[name] = append(byTable[name], j)
	}
	for name, js := range byTable {
		for i := 0; i < len(js); i++ {
			for k := i + 1; k < len(js); k++ {
				a, b := js[i], js[k]
				if a.Started < b.Finished && b.Started < a.Finished {
					t.Fatalf("table %s executed concurrently: [%v,%v) and [%v,%v)",
						name, a.Started, a.Finished, b.Started, b.Finished)
				}
			}
		}
	}
}

func TestSimDrainsAllJobs(t *testing.T) {
	p, q := newSimPool(Config{Workers: 3, Shards: 2, Seed: 1}, okRunner(5))
	var cands []*core.Candidate
	for i := 0; i < 12; i++ {
		cands = append(cands, cand(&memTable{name: fmt.Sprintf("t%02d", i)}, 0.5))
	}
	p.Submit(cands)
	st := RunSim(p, q)
	if st.Submitted != 12 || st.Done != 12 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Makespan <= 0 {
		t.Fatalf("makespan = %v", st.Makespan)
	}
	if st.MaxWorkersBusy != 3 {
		t.Fatalf("peak busy workers = %d, want 3", st.MaxWorkersBusy)
	}
	if st.Utilization() <= 0 || st.Utilization() > 1.0001 {
		t.Fatalf("utilization = %v", st.Utilization())
	}
	assertNoTableOverlap(t, p.Jobs())
}

func TestMakespanDecreasesWithWorkers(t *testing.T) {
	makespan := func(workers int) time.Duration {
		p, q := newSimPool(Config{Workers: workers, Seed: 1}, okRunner(5))
		var cands []*core.Candidate
		for i := 0; i < 32; i++ {
			cands = append(cands, cand(&memTable{name: fmt.Sprintf("t%02d", i)}, 1))
		}
		p.Submit(cands)
		return RunSim(p, q).Makespan
	}
	m1, m8 := makespan(1), makespan(8)
	if m8 >= m1 {
		t.Fatalf("8 workers (%v) not faster than 1 (%v)", m8, m1)
	}
	// 32 equal 1h jobs: serial ≈ 32h, 8-way ≈ 4h.
	if ratio := float64(m1) / float64(m8); ratio < 6 {
		t.Fatalf("speedup %0.1fx, want ≥6x for 32 uniform jobs on 8 workers", ratio)
	}
}

func TestSameTableJobsNeverOverlap(t *testing.T) {
	// 4 jobs per table on 3 tables with 8 workers: leases must force
	// per-table serial execution even with idle workers available.
	p, q := newSimPool(Config{Workers: 8, Seed: 1}, okRunner(1))
	tables := []*memTable{{name: "a"}, {name: "b"}, {name: "c"}}
	var cands []*core.Candidate
	for i := 0; i < 4; i++ {
		for _, tb := range tables {
			cands = append(cands, cand(tb, 1))
		}
	}
	p.Submit(cands)
	st := RunSim(p, q)
	if st.Done != 12 {
		t.Fatalf("done = %d", st.Done)
	}
	if st.MaxWorkersBusy > 3 {
		t.Fatalf("more jobs in flight (%d) than distinct tables (3)", st.MaxWorkersBusy)
	}
	assertNoTableOverlap(t, p.Jobs())
}

func TestConflictRetriesThenSucceeds(t *testing.T) {
	tb := &memTable{name: "hot"}
	p, q := newSimPool(Config{Workers: 1, Seed: 1}, okRunner(1))
	p.Submit([]*core.Candidate{cand(tb, 1)})
	// A writer commits mid-execution (service time is 1h): the first
	// commit attempt must conflict, the retry must succeed.
	q.ScheduleAt(30*time.Minute, func() { tb.version.Add(1) })
	st := RunSim(p, q)
	if st.Conflicts != 1 || st.Retries != 1 || st.Done != 1 || st.Conflicted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	j := p.Jobs()[0]
	if j.Attempts != 2 || j.Status != StatusDone {
		t.Fatalf("job = %+v", j)
	}
	// The aborted first attempt burned its estimated 64 GBHr (1h × 64GB)
	// on top of the successful run's 1 GBHr.
	if got := st.TotalSpentGBHr(); got != 65 {
		t.Fatalf("spent = %v, want 65 (64 wasted + 1 committed)", got)
	}
	if j.Result.GBHr != 65 {
		t.Fatalf("result GBHr = %v, want wasted attempts included", j.Result.GBHr)
	}
}

func TestConflictExhaustsAttempts(t *testing.T) {
	tb := &memTable{name: "hot"}
	p, q := newSimPool(Config{Workers: 1, MaxAttempts: 3, Seed: 1}, okRunner(1))
	p.Submit([]*core.Candidate{cand(tb, 1)})
	// A writer that commits every 10 minutes defeats every attempt.
	tick := func() {}
	tick = func() {
		tb.version.Add(1)
		if !p.Idle() {
			q.ScheduleAfter(10*time.Minute, tick)
		}
	}
	q.ScheduleAfter(10*time.Minute, tick)
	st := RunSim(p, q)
	if st.Conflicted != 1 || st.Done != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Conflicts != 3 || st.Retries != 2 {
		t.Fatalf("conflicts=%d retries=%d, want 3/2", st.Conflicts, st.Retries)
	}
	j := p.Jobs()[0]
	if j.Status != StatusConflicted || !j.Result.Conflict || j.Result.ConflictCount != 3 {
		t.Fatalf("job = %+v result = %+v", j, j.Result)
	}
	// All three aborted attempts cost their estimated 64 GBHr each.
	if j.Result.GBHr != 192 || st.TotalSpentGBHr() != 192 {
		t.Fatalf("GBHr = %v spent = %v, want 192/192", j.Result.GBHr, st.TotalSpentGBHr())
	}
}

func TestStalenessBoundTolerance(t *testing.T) {
	tb := &memTable{name: "warm"}
	p, q := newSimPool(Config{Workers: 1, StalenessBound: 2, Seed: 1}, okRunner(1))
	p.Submit([]*core.Candidate{cand(tb, 1)})
	// Two writer commits during execution are within the bound of 2.
	q.ScheduleAt(20*time.Minute, func() { tb.version.Add(1) })
	q.ScheduleAt(40*time.Minute, func() { tb.version.Add(1) })
	st := RunSim(p, q)
	if st.Conflicts != 0 || st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardBudgetBackpressure(t *testing.T) {
	// One shard, 10 GBHr budget, 6 GBHr per job: the first job commits
	// and pushes spend to 6 (< 10), the second commits too (12 ≥ 10),
	// every remaining job is deferred on sight.
	p, q := newSimPool(Config{Workers: 1, Shards: 1, ShardBudgetGBHr: 10, Seed: 1}, okRunner(6))
	var cands []*core.Candidate
	for i := 0; i < 5; i++ {
		cands = append(cands, cand(&memTable{name: fmt.Sprintf("t%d", i)}, 1))
	}
	p.Submit(cands)
	st := RunSim(p, q)
	if st.Done != 2 || st.Deferred != 3 {
		t.Fatalf("done=%d deferred=%d, want 2/3", st.Done, st.Deferred)
	}
	if got := st.TotalSpentGBHr(); got != 12 {
		t.Fatalf("spent = %v", got)
	}
	for _, j := range p.Jobs() {
		if j.Status == StatusDeferred && !j.Result.Skipped {
			t.Fatalf("deferred job result not marked skipped: %+v", j.Result)
		}
	}
}

func TestShardsArbitrateIndependently(t *testing.T) {
	// Two tables that hash to different shards; budget admits one job per
	// shard. Both shards should commit one job each.
	names := []string{}
	for i := 0; len(names) < 2; i++ {
		n := fmt.Sprintf("t%d", i)
		if len(names) == 0 || ShardOf("db."+n, 2) != ShardOf("db."+names[0], 2) {
			names = append(names, n)
		}
	}
	p, q := newSimPool(Config{Workers: 2, Shards: 2, ShardBudgetGBHr: 5, Seed: 1}, okRunner(6))
	p.Submit([]*core.Candidate{
		cand(&memTable{name: names[0]}, 1), cand(&memTable{name: names[0]}, 1),
		cand(&memTable{name: names[1]}, 1), cand(&memTable{name: names[1]}, 1),
	})
	st := RunSim(p, q)
	if st.Done != 2 || st.Deferred != 2 {
		t.Fatalf("done=%d deferred=%d, want 2/2", st.Done, st.Deferred)
	}
}

func TestShardReservationBoundsOvershoot(t *testing.T) {
	// Eight 9-GBHr jobs against a single 10-GBHr shard with eight idle
	// workers: without in-flight reservations all eight would dispatch
	// at t=0 and spend 72 GBHr. Reservations admit one at a time, so
	// exactly two commit (the second is the bounded overshoot) and the
	// rest feel backpressure.
	var cands []*core.Candidate
	for i := 0; i < 8; i++ {
		cands = append(cands, &core.Candidate{
			Table:  &memTable{name: fmt.Sprintf("t%d", i)},
			Traits: map[string]float64{core.ComputeCost{}.Name(): 9},
		})
	}
	p, q := newSimPool(Config{Workers: 8, Shards: 1, ShardBudgetGBHr: 10, Seed: 1}, okRunner(9))
	p.Submit(cands)
	st := RunSim(p, q)
	if st.Done != 2 || st.Deferred != 6 {
		t.Fatalf("done=%d deferred=%d, want 2/6", st.Done, st.Deferred)
	}
	if got := st.TotalSpentGBHr(); got != 18 {
		t.Fatalf("spent = %v, want 18 (≤ one job of overshoot)", got)
	}
}

func TestShardAdmissionSurvivesFloatResidue(t *testing.T) {
	// Interleaved reservation adds/releases leave float residue (0.1 +
	// 0.3 − 0.1 − 0.3 ≠ 0); the progress guarantee must key off the
	// integer in-flight count, or the last job is stranded forever.
	mk := func(name string, est float64) *core.Candidate {
		return &core.Candidate{
			Table:  &memTable{name: name},
			Traits: map[string]float64{core.ComputeCost{}.Name(): est},
		}
	}
	p, q := newSimPool(Config{Workers: 2, Shards: 1, ShardBudgetGBHr: 10, Seed: 1}, okRunner(0.5))
	p.Submit([]*core.Candidate{mk("a", 0.1), mk("b", 0.3), mk("c", 9.95)})
	st := RunSim(p, q)
	if st.Done != 3 {
		t.Fatalf("stats = %+v; float residue stranded a job", st)
	}
}

func TestAgingPreventsStarvation(t *testing.T) {
	// Low-priority job a is submitted at t=0 behind b1, which occupies
	// the single worker for 24 hours. Twelve hours in, a burst of eight
	// fresher, higher-base-priority jobs lands. With linear aging, a's
	// 12 hours of waiting outweigh the burst's rank advantage; without
	// aging the burst starves it.
	run := func(agingRate float64) []string {
		clock := sim.NewClock()
		q := sim.NewEventQueue(clock)
		var order []string
		r := core.RunnerFunc(func(c *core.Candidate) compaction.Result {
			order = append(order, c.Table.FullName())
			return compaction.Result{Table: c.Table.FullName(), FilesRemoved: 2, FilesAdded: 1}
		})
		p := New(Config{Workers: 1, AgingRatePerHour: agingRate, Seed: 1}, r, clock)
		p.Submit([]*core.Candidate{cand(&memTable{name: "b1"}, 24), cand(&memTable{name: "a"}, 1)})
		q.ScheduleAt(12*time.Hour, func() {
			var burst []*core.Candidate
			for i := 0; i < 8; i++ {
				burst = append(burst, cand(&memTable{name: fmt.Sprintf("b2-%d", i)}, 1))
			}
			p.Submit(burst)
		})
		RunSim(p, q)
		return order
	}
	if order := run(DefaultAgingRate); order[1] != "db.a" {
		t.Fatalf("with aging, order = %v, want a second", order)
	}
	if order := run(-1); order[1] == "db.a" {
		t.Fatalf("without aging, order = %v, want the burst to preempt a", order)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (Stats, []Status, []time.Duration) {
		p, q := newSimPool(Config{Workers: 4, Shards: 4, ShardBudgetGBHr: 40, MaxAttempts: 3, Seed: 9}, okRunner(7))
		tables := make([]*memTable, 10)
		var cands []*core.Candidate
		for i := range tables {
			tables[i] = &memTable{name: fmt.Sprintf("t%02d", i)}
			cands = append(cands, cand(tables[i], 0.5+0.25*float64(i%4)))
			if i%2 == 0 {
				cands = append(cands, cand(tables[i], 0.25))
			}
		}
		p.Submit(cands)
		// A deterministic writer races the pool.
		wrng := sim.NewRNG(3)
		var tick func()
		tick = func() {
			tables[wrng.Intn(len(tables))].version.Add(1)
			if !p.Idle() {
				q.ScheduleAfter(13*time.Minute, tick)
			}
		}
		q.ScheduleAfter(13*time.Minute, tick)
		st := RunSim(p, q)
		var statuses []Status
		var finishes []time.Duration
		for _, j := range p.Jobs() {
			statuses = append(statuses, j.Status)
			finishes = append(finishes, j.Finished)
		}
		return st, statuses, finishes
	}
	s1, st1, f1 := run()
	s2, st2, f2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats differ:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(st1, st2) || !reflect.DeepEqual(f1, f2) {
		t.Fatalf("job outcomes differ across identical runs")
	}
	if s1.Conflicts == 0 {
		t.Fatal("writer produced no conflicts; test lost its teeth")
	}
}

func TestFoldIntoReport(t *testing.T) {
	p, q := newSimPool(Config{Workers: 1, Shards: 1, ShardBudgetGBHr: 10, Seed: 1}, okRunner(6))
	var cands []*core.Candidate
	for i := 0; i < 3; i++ {
		cands = append(cands, cand(&memTable{name: fmt.Sprintf("t%d", i)}, 1))
	}
	p.Submit(cands)
	RunSim(p, q)
	rep := &core.Report{}
	p.FoldInto(rep)
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if rep.FilesReduced != 18 { // two committed jobs × (10−1)
		t.Fatalf("files reduced = %d", rep.FilesReduced)
	}
	if rep.Skipped != 1 {
		t.Fatalf("skipped = %d", rep.Skipped)
	}
}

func TestMidRunSubmitToIdlePool(t *testing.T) {
	// The first wave drains completely before an event submits a second
	// wave: the late submission must wake the (fully idle) workers
	// instead of stranding the jobs in the queue.
	p, q := newSimPool(Config{Workers: 2, Seed: 1}, okRunner(1))
	p.Submit([]*core.Candidate{cand(&memTable{name: "early"}, 1)})
	q.ScheduleAt(6*time.Hour, func() {
		p.Submit([]*core.Candidate{cand(&memTable{name: "late"}, 1)})
	})
	st := RunSim(p, q)
	if st.Done != 2 {
		t.Fatalf("done = %d, want both waves executed", st.Done)
	}
	late := p.Jobs()[1]
	if late.Started < 6*time.Hour {
		t.Fatalf("late job started at %v, before it was submitted", late.Started)
	}
}

func TestRunRealRejectsSimClock(t *testing.T) {
	p := New(Config{Workers: 1}, okRunner(1), sim.NewClock())
	defer func() {
		if recover() == nil {
			t.Fatal("RunReal on a sim clock did not panic")
		}
	}()
	RunReal(p, nil)
}

func TestRunSimRejectsForeignClock(t *testing.T) {
	p := New(Config{Workers: 1}, okRunner(1), sim.NewClock())
	q := sim.NewEventQueue(sim.NewClock())
	defer func() {
		if recover() == nil {
			t.Fatal("RunSim with a foreign clock did not panic")
		}
	}()
	RunSim(p, q)
}

func TestShardOf(t *testing.T) {
	if ShardOf("db.t", 1) != 0 {
		t.Fatal("single shard must map to 0")
	}
	for i := 0; i < 100; i++ {
		s := ShardOf(fmt.Sprintf("db.t%d", i), 7)
		if s < 0 || s >= 7 {
			t.Fatalf("shard out of range: %d", s)
		}
		if s != ShardOf(fmt.Sprintf("db.t%d", i), 7) {
			t.Fatal("ShardOf not stable")
		}
	}
}

func TestEstimatedServiceTime(t *testing.T) {
	st := EstimatedServiceTime(64)
	c := &core.Candidate{Traits: map[string]float64{core.ComputeCost{}.Name(): 128}}
	if got := st(c); got != 2*time.Hour {
		t.Fatalf("service time = %v, want 2h", got)
	}
	if got := st(&core.Candidate{}); got != MinServiceTime {
		t.Fatalf("floor = %v", got)
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		StatusQueued: "queued", StatusRunning: "running", StatusDone: "done",
		StatusConflicted: "conflicted", StatusDeferred: "deferred",
		StatusFailed: "failed", Status(99): "unknown",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

// --- wall-clock driver, exercised under -race ---

func TestRealPoolConcurrencyAndLeases(t *testing.T) {
	const tables, jobsPerTable, workers = 8, 3, 8
	tbs := make([]*memTable, tables)
	var cands []*core.Candidate
	for i := range tbs {
		tbs[i] = &memTable{name: fmt.Sprintf("t%d", i)}
	}
	for j := 0; j < jobsPerTable; j++ {
		for _, tb := range tbs {
			cands = append(cands, cand(tb, 1))
		}
	}

	var mu sync.Mutex
	inFlight := map[string]int{}
	maxInFlight := 0
	work := func(c *core.Candidate) {
		name := c.Table.FullName()
		mu.Lock()
		inFlight[name]++
		if inFlight[name] > maxInFlight {
			maxInFlight = inFlight[name]
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inFlight[name]--
		mu.Unlock()
	}

	var ran atomic.Int64
	r := core.RunnerFunc(func(c *core.Candidate) compaction.Result {
		ran.Add(1)
		return compaction.Result{Table: c.Table.FullName(), FilesRemoved: 3, FilesAdded: 1, GBHr: 1}
	})
	p := New(Config{Workers: workers, Shards: 4, Seed: 1}, r, NewWallClock())
	p.Submit(cands)
	st := RunReal(p, work)
	if st.Done != tables*jobsPerTable || ran.Load() != tables*jobsPerTable {
		t.Fatalf("done=%d ran=%d, want %d", st.Done, ran.Load(), tables*jobsPerTable)
	}
	if maxInFlight != 1 {
		t.Fatalf("per-table in-flight peak = %d, want 1 (lease violated)", maxInFlight)
	}
	if st.Makespan <= 0 || st.MaxWorkersBusy < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRealShardBackpressureTerminates(t *testing.T) {
	// Shard-budget deferral inside next() can make the pool idle with
	// the deciding worker about to wait; RunReal must notice and return
	// instead of deadlocking (regression test).
	var cands []*core.Candidate
	for i := 0; i < 3; i++ {
		cands = append(cands, &core.Candidate{
			Table:  &memTable{name: fmt.Sprintf("t%d", i)},
			Traits: map[string]float64{core.ComputeCost{}.Name(): 9},
		})
	}
	p := New(Config{Workers: 1, Shards: 1, ShardBudgetGBHr: 10, Seed: 1}, okRunner(9), NewWallClock())
	p.Submit(cands)
	done := make(chan Stats, 1)
	go func() { done <- RunReal(p, nil) }()
	select {
	case st := <-done:
		if st.Done != 2 || st.Deferred != 1 {
			t.Fatalf("stats = %+v, want 2 done / 1 deferred", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunReal deadlocked on shard-budget deferral")
	}
}

func TestRealConflictRetry(t *testing.T) {
	tb := &memTable{name: "hot"}
	var attempts atomic.Int64
	work := func(c *core.Candidate) {
		// The writer races the first execution only.
		if attempts.Add(1) == 1 {
			tb.version.Add(1)
		}
		time.Sleep(time.Millisecond)
	}
	p := New(Config{
		Workers: 2, Seed: 1,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
	}, okRunner(1), NewWallClock())
	p.Submit([]*core.Candidate{cand(tb, 1)})
	st := RunReal(p, work)
	if st.Done != 1 || st.Conflicts != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if p.Jobs()[0].Attempts != 2 {
		t.Fatalf("attempts = %d", p.Jobs()[0].Attempts)
	}
}

func TestOnTerminalObservesEveryOutcome(t *testing.T) {
	// One job succeeds; one conflicts terminally (a writer advances its
	// table before every commit). OnTerminal must see both settle.
	quiet := &memTable{name: "quiet"}
	hot := &memTable{name: "hot"}
	got := map[string]Status{}
	cfg := Config{
		Workers:     2,
		MaxAttempts: 2,
		RetryBase:   time.Second,
		OnTerminal: func(j *Job) {
			got[j.Candidate.Table.FullName()] = j.Status
		},
	}
	p, q := newSimPool(cfg, okRunner(1))
	p.Submit([]*core.Candidate{cand(quiet, 1), cand(hot, 1)})
	// Advance the hot table past the staleness bound on every attempt.
	writer := func() { hot.version.Add(1) }
	q.ScheduleAfter(30*time.Minute, writer)
	q.ScheduleAfter(90*time.Minute, writer)
	RunSim(p, q)

	if got["db.quiet"] != StatusDone {
		t.Fatalf("quiet outcome = %v, want done", got["db.quiet"])
	}
	if got["db.hot"] != StatusConflicted {
		t.Fatalf("hot outcome = %v, want conflicted", got["db.hot"])
	}
}
